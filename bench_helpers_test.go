package repro_test

import (
	"repro/internal/cache"
	"repro/internal/policy"
)

// newBenchCache builds the paper's case-study cache with an LRU engine for
// the micro-benchmarks.
func newBenchCache() (*cache.Cache, error) {
	return cache.New(cache.DefaultConfig(), policy.NewLRU())
}
