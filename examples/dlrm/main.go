// DLRM scenario: recommendation-model inference over CXL-expanded memory.
//
// Embedding tables for production recommenders run to hundreds of GiB —
// exactly the workload the paper's introduction motivates (its dlrm trace
// shows the highest miss rates in Fig. 6, ~37% under LRU). This example
// builds the embedding-gather workload, trains the GMM engine, and breaks
// down where the latency reduction comes from: admission filtering of
// long-tail rows vs score-based eviction of stale hot rows.
//
// Run with: go run ./examples/dlrm
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gmm"
	"repro/internal/policy"
	"repro/internal/workload"
)

func main() {
	// 1 GiB of embedding tables (8 tables x 128 MiB), 55% of gathers on
	// popular rows, the rest a Zipf long tail.
	gen := workload.NewDLRM()
	tr := gen.Generate(400_000, 7)

	cfg := core.DefaultConfig()
	cfg.Train = gmm.TrainConfig{K: 128, MaxIters: 30, Seed: 1, MaxSamples: 15000}

	tg, err := core.Train(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GMM: K=%d, %d EM iterations (converged=%v), admission threshold %.3g\n\n",
		tg.Result.Model.K(), tg.Result.Iters, tg.Result.Converged, tg.Threshold)

	cmp, err := core.CompareTrained("dlrm", tr, tg, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("policy                  miss rate   bypassed    writebacks   avg latency")
	for _, r := range []core.RunResult{cmp.LRU, cmp.Caching, cmp.Eviction, cmp.Combined} {
		fmt.Printf("%-22s  %7.2f%%   %8d   %9d   %v\n",
			r.Policy, r.MissRatePct(), r.Cache.Bypasses, r.Cache.WriteBacks, r.AvgLatency)
	}

	// Latency breakdown for the combined strategy: what a "miss" costs on
	// average is dominated by SSD reads; admission bypass avoids filling
	// the cache with one-shot tail rows, protecting the hot rows.
	best := cmp.BestGMM()
	fmt.Printf("\nbest strategy: %s\n", best.Policy)
	fmt.Printf("LRU     avg %v over %d requests (%d SSD reads, %d SSD writes)\n",
		cmp.LRU.AvgLatency, cmp.LRU.Cache.Accesses(), cmp.LRU.SSDReads, cmp.LRU.SSDWrites)
	fmt.Printf("GMM     avg %v over %d requests (%d SSD reads, %d SSD writes)\n",
		best.AvgLatency, best.Cache.Accesses(), best.SSDReads, best.SSDWrites)
	fmt.Printf("latency reduction: %.2f%% (paper reports 17.30%% for dlrm)\n",
		cmp.LatencyReductionPct())

	// How much of the win is admission vs eviction? Compare the two
	// single-mechanism strategies against LRU.
	fmt.Printf("\nmechanism attribution (miss-rate delta vs LRU):\n")
	fmt.Printf("  smart caching only:   %+.2f pp\n", cmp.Caching.MissRatePct()-cmp.LRU.MissRatePct())
	fmt.Printf("  smart eviction only:  %+.2f pp\n", cmp.Eviction.MissRatePct()-cmp.LRU.MissRatePct())
	fmt.Printf("  combined:             %+.2f pp\n", cmp.Combined.MissRatePct()-cmp.LRU.MissRatePct())

	_ = policy.GMMCachingEviction // documented entry point for custom use
}
