// Serve-session: embedding the declarative ServeSpec + checkpointable
// Session API, end to end.
//
//  1. Parse a ServeSpec — the single JSON document that fully describes a
//     serving run (here a 2-tenant QoS scenario with elastic shares and a
//     mid-run working-set shift; pass -spec to run your own).
//  2. Open a Session (trains the initial GMM) and serve half the run one
//     batch at a time.
//  3. Checkpoint: the full mutable state — model, cache contents, tenant
//     budgets, controller state, histograms, RNG cursors — as one JSON
//     document.
//  4. Scrape the live telemetry endpoint: the run exposes /status,
//     /metrics and /debug/pprof on a loopback debug server, and the paused
//     state is visible there — without perturbing the metric stream.
//  5. Detach the paused session (Close refuses after a Checkpoint — the
//     resumed copy owns the rest of the stream), then Resume a fresh
//     session from the checkpoint and run it to completion.
//  6. Verify the pause/resume contract: the concatenated metric stream is
//     byte-identical to an uninterrupted run of the same spec — telemetry
//     on or off.
//
// Run with: go run ./examples/serve-session [-spec run.json]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// defaultSpec is the embedded demo scenario: two tenants under the adaptive
// controller, tenant b growing its working set mid-run so the elastic share
// lever has something to do, sync refresh riding the drift detector.
const defaultSpec = `{
  "version": 1,
  "shards": 2, "partitions": 4, "ops": 16384, "warmup": 16000,
  "batch": 1024, "report": 4,
  "cache": {"size_mb": 1, "ways": 8},
  "train": {"k": 4, "max_iters": 6, "max_samples": 2000, "lloyd_iters": 2, "shot": 128},
  "refresh": {"mode": "sync", "window": 4096, "min": 1024,
   "drift_delta": 0.10, "drift_sustain": 1, "drift_warmup": 4, "drift_alpha": 0.2},
  "control": {"every": 2, "step": 1.6, "min_mult": 0.125, "max_mult": 8,
   "share_adapt": true, "share_quantum": 4, "share_hold": 2, "share_cooldown": 1, "share_floor": 4},
  "tenants": [
   {"name": "a",
    "custom": {"Name": "a-ws", "TotalPages": 300,
     "Clusters": [{"CenterPage": 80, "Spread": 25}, {"CenterPage": 220, "Spread": 20}],
     "WriteFrac": 0.2},
    "seed": 1, "rate": 20000, "share": 0.6,
    "shift_after": 8192, "shift_offset_pages": 524288,
    "qos": {"metric": "hit_ratio", "target": 0.7, "band": 0.1}},
   {"name": "b",
    "custom": {"Name": "b-ws", "TotalPages": 160,
     "Clusters": [{"CenterPage": 60, "Spread": 20}], "WriteFrac": 0.3},
    "seed": 2, "rate": 10000, "offset_pages": 65536, "share": 0.4,
    "shift_after": 6144, "shift_offset_pages": 131072,
    "shift_custom": {"Name": "b-grown", "TotalPages": 400,
     "Clusters": [{"CenterPage": 100, "Spread": 45}, {"CenterPage": 300, "Spread": 45}],
     "WriteFrac": 0.3},
    "qos": {"metric": "hit_ratio", "target": 0.6, "band": 0.15}}
  ]
}`

func main() {
	specPath := flag.String("spec", "", "run spec JSON file (default: the embedded 2-tenant demo)")
	flag.Parse()

	data := []byte(defaultSpec)
	if *specPath != "" {
		b, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		data = b
	}
	spec, err := serve.ParseSpec(data)
	if err != nil {
		log.Fatal(err)
	}

	// Reference: the uninterrupted run.
	var uninterrupted bytes.Buffer
	ref, err := serve.Open(spec, &uninterrupted)
	if err != nil {
		log.Fatal(err)
	}
	refSnap, err := ref.Run()
	if err != nil {
		log.Fatal(err)
	}

	// The same run, paused halfway and resumed from its checkpoint — this
	// time with live telemetry: a registry fed at batch boundaries, served
	// over HTTP. Telemetry is read-side only, so the byte-identity check at
	// the end still holds against the telemetry-free reference run.
	reg := telemetry.NewRegistry()
	tsrv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		log.Fatal(err)
	}
	defer tsrv.Close()

	var first bytes.Buffer
	sess, err := serve.Open(spec, &first)
	if err != nil {
		log.Fatal(err)
	}
	sess.Observe(telemetry.SessionObserver(reg, nil, "demo"))
	batch := spec.Batch
	if batch == 0 {
		batch = 8192
	}
	half := int(spec.EffectiveOps()/uint64(batch)) / 2
	if half < 1 {
		half = 1
	}
	if n, err := sess.Step(half); err != nil || n == 0 {
		log.Fatalf("serving first half: n=%d err=%v", n, err)
	}
	var ckpt bytes.Buffer
	if err := sess.Checkpoint(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed at batch %d: %d bytes of state (model, caches, budgets, controller, RNG cursors)\n",
		sess.Batches(), ckpt.Len())
	// Publish the paused session's state and scrape /status over the wire —
	// the same view an operator gets mid-flight with curl.
	reg.PublishProgress("demo", sess.Batches(), false)
	reg.PublishSnapshot("demo", sess.Metrics())
	status, err := scrape("http://" + tsrv.Addr() + "/status")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live /status between checkpoint and resume:\n%s", status)
	// The resumed copy owns the rest of the metric stream now, so the paused
	// session must Detach — release its resources without emitting the final
	// records (Close would, and therefore refuses after a Checkpoint).
	sess.Detach()
	// A fresh session — same process here, any process in general — picks
	// the run back up.
	var second bytes.Buffer
	resumed, err := serve.Resume(&ckpt, &second)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := resumed.Run()
	if err != nil {
		log.Fatal(err)
	}

	concat := append(append([]byte(nil), first.Bytes()...), second.Bytes()...)
	if !bytes.Equal(concat, uninterrupted.Bytes()) {
		log.Fatalf("pause/resume broke determinism: %d vs %d metric bytes", len(concat), uninterrupted.Len())
	}
	fmt.Printf("resumed run is byte-identical to the uninterrupted run (%d JSONL bytes)\n", len(concat))
	fmt.Printf("served %d ops, hit ratio %.4f, refreshes %d\n", snap.Ops, snap.HitRatio(), snap.Refreshes)
	for i := range snap.Tenants {
		ts := &snap.Tenants[i]
		fmt.Printf("  tenant %-6s ops=%-6d hit=%.3f blocks=%d/%d\n",
			ts.Tenant, ts.Ops, ts.HitRatio(), ts.ResidentBlocks, ts.BudgetBlocks)
	}
	_ = refSnap
}

// scrape GETs a telemetry endpoint and returns its body.
func scrape(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
