// Q16-study: accuracy vs. throughput of the Q16.16 fixed-point scorer.
//
// The quantized datapath (spec "scoring": "q16") emulates the paper's FPGA
// weight buffer: every model constant lives in Q16.16 two's-complement and
// inference runs on the dequantized constants. This study quantifies what
// that costs on the committed q16 scenario (cmd/icgmm-serve/testdata/
// spec-q16.json):
//
//  1. Run the identical scenario under float64 and q16 scoring and compare
//     aggregate and per-tenant hit ratios end to end — quantization error
//     feeds back through admission decisions, cache contents, eviction
//     scores and the adaptive controller, so end-to-end hit ratio is the
//     honest accuracy metric.
//  2. Score a dense grid over the normalized feature square with both
//     trained bundles and report the admission-decision disagreement
//     fraction (each scorer against its own calibrated threshold — GMM
//     densities are only comparable within one datapath).
//
// Run with: go run ./examples/q16-study [-spec file.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/serve"
)

func runOnce(spec serve.Spec, scoring string) *serve.Snapshot {
	spec.Scoring = scoring
	sess, err := serve.Open(spec, nil)
	if err != nil {
		log.Fatalf("%s run: %v", scoring, err)
	}
	snap, err := sess.Run()
	if err != nil {
		log.Fatalf("%s run: %v", scoring, err)
	}
	return snap
}

func main() {
	specPath := flag.String("spec", filepath.Join("cmd", "icgmm-serve", "testdata", "spec-q16.json"),
		"run spec JSON (the scoring field is overridden per arm)")
	flag.Parse()

	data, err := os.ReadFile(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := serve.ParseSpec(data)
	if err != nil {
		log.Fatal(err)
	}

	// Arm 1 + 2: the same scenario end to end under each datapath.
	fSnap := runOnce(spec, "float64")
	qSnap := runOnce(spec, "q16")

	fmt.Printf("scenario: %s (%d ops, %d tenants)\n\n", *specPath, fSnap.Ops, len(fSnap.Tenants))
	fmt.Printf("%-12s %12s %12s %12s\n", "hit ratio", "float64", "q16", "delta")
	fmt.Printf("%-12s %12.4f %12.4f %+12.4f\n", "aggregate",
		fSnap.HitRatio(), qSnap.HitRatio(), qSnap.HitRatio()-fSnap.HitRatio())
	for i := range fSnap.Tenants {
		ft, qt := fSnap.Tenants[i], qSnap.Tenants[i]
		fmt.Printf("%-12s %12.4f %12.4f %+12.4f\n", ft.Tenant,
			ft.HitRatio(), qt.HitRatio(), qt.HitRatio()-ft.HitRatio())
	}
	fmt.Printf("\nrefreshes: float64 %d (failed %d), q16 %d (failed %d)\n",
		fSnap.Refreshes, fSnap.RefreshesFailed, qSnap.Refreshes, qSnap.RefreshesFailed)

	// Admission-decision disagreement: train one bundle per datapath (same
	// deterministic warm trace underneath — the q16 arm quantizes the fitted
	// model and recalibrates the threshold on the quantized density scale),
	// then compare per-point admit/bypass decisions on a dense grid over the
	// normalized feature square. The normalizer maps the warm working set to
	// [0,1]^2, so a slightly padded grid covers it plus the tails.
	fSpec, qSpec := spec, spec
	fSpec.Scoring = "float64"
	qSpec.Scoring = "q16"
	fb, err := serve.TrainBundleFromSpec(fSpec)
	if err != nil {
		log.Fatal(err)
	}
	qb, err := serve.TrainBundleFromSpec(qSpec)
	if err != nil {
		log.Fatal(err)
	}
	const n = 512
	disagree, total := 0, 0
	for pi := 0; pi < n; pi++ {
		page := -0.05 + 1.10*float64(pi)/float64(n-1)
		for ti := 0; ti < n; ti++ {
			ts := -0.05 + 1.10*float64(ti)/float64(n-1)
			fAdmit := fb.Scorer.ScorePageTime(page, ts) >= fb.Threshold
			qAdmit := qb.Scorer.ScorePageTime(page, ts) >= qb.Threshold
			if fAdmit != qAdmit {
				disagree++
			}
			total++
		}
	}
	fmt.Printf("\nadmission decisions on a %dx%d normalized grid: %d/%d disagree (%.4f%%)\n",
		n, n, disagree, total, 100*float64(disagree)/float64(total))
	fmt.Printf("thresholds: float64 %.6g, q16 %.6g (different density scales by design)\n",
		fb.Threshold, qb.Threshold)
	fmt.Printf("q16 quantization report: %d saturated constants, max abs error %.3g\n",
		qb.Quant.Saturated, qb.Quant.MaxAbsErr)
}
