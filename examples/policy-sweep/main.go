// Policy sweep: how do cache geometry and policy choice interact?
//
// This example sweeps the DRAM cache size across a range around the paper's
// 64 MiB case study and compares five policies — LRU, FIFO, the Belady
// oracle (offline upper bound), and the GMM engine in eviction-only and
// combined modes — on the sysbench OLTP workload. It prints the crossover
// table a capacity-planning engineer would want: at which cache sizes does
// intelligent caching buy the most, and how close does the GMM get to the
// clairvoyant optimum.
//
// Run with: go run ./examples/policy-sweep
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/gmm"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	tr := workload.NewSysbench().Generate(300_000, 11)

	table := stats.NewTable(
		"sysbench miss rate (%) by cache size and policy",
		"Cache", "LRU", "FIFO", "GMM evict", "GMM combined", "Belady (OPT)")

	for _, mb := range []uint64{16, 32, 64, 128, 256} {
		cfg := core.DefaultConfig()
		cfg.Cache = cache.Config{SizeBytes: mb << 20, BlockBytes: trace.PageSize, Ways: 8}
		cfg.Train = gmm.TrainConfig{K: 128, MaxIters: 30, Seed: 1, MaxSamples: 15000}

		tg, err := core.Train(tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		row := []string{fmt.Sprintf("%d MiB", mb)}
		runs := []struct {
			p        cache.Policy
			overhead bool
		}{
			{policy.NewLRU(), false},
			{policy.NewFIFO(), false},
			{tg.Policy(policy.GMMEvictionOnly), true},
			{tg.Policy(policy.GMMCachingEviction), true},
			{policy.NewBelady(tr, false), false},
		}
		for _, r := range runs {
			overhead := cfg.GMMInference
			if !r.overhead {
				overhead = 0
			}
			res, err := core.Run(tr, r.p, overhead, cfg)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%.2f", res.MissRatePct()))
		}
		table.AddRowStrings(row...)
	}
	fmt.Println(table)
	fmt.Println("Reading the table: the GMM's advantage over LRU peaks when the hot set")
	fmt.Println("overflows the cache (small sizes) and vanishes once everything fits;")
	fmt.Println("Belady bounds what any replacement policy could achieve.")
}
