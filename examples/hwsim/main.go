// Hardware simulation: the FPGA dataflow architecture of Fig. 5.
//
// This example runs the cycle-level model of the ICGMM prototype: the
// functional cache simulation decides hit/miss/write-back per request, and
// the dataflow timing model replays those events through the
// FIFO-connected kernels (cache control engine, GMM policy engine, SSD
// latency emulator) at the prototype's 233 MHz clock. It demonstrates the
// three hardware claims of Sec. 4/5.3:
//
//  1. GMM inference (3 us) hides completely behind SSD access (75 us) —
//     the dataflow overlap;
//  2. the GMM PE is a deep II=1 pipeline: K + depth cycles per inference;
//  3. the GMM engine is ~15,000x faster and far smaller than the LSTM
//     engine (Table 2).
//
// Run with: go run ./examples/hwsim
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/gmm"
	"repro/internal/policy"
	"repro/internal/workload"
)

func main() {
	// Functional pass: run the heap workload through the cache to get the
	// per-request outcomes the timing model needs.
	tr := workload.NewHeap().Generate(50_000, 3)
	cfg := core.DefaultConfig()
	cfg.Train = gmm.TrainConfig{K: 64, MaxIters: 20, Seed: 1, MaxSamples: 10000}
	tg, err := core.Train(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	c, err := cache.New(cfg.Cache, tg.Policy(policy.GMMCachingEviction))
	if err != nil {
		log.Fatal(err)
	}
	events := make([]fpga.AccessEvent, len(tr))
	for i, rec := range tr {
		res := c.Access(rec.Page(), rec.Op.String() == "W")
		events[i] = fpga.AccessEvent{
			Page:      rec.Page(),
			Write:     rec.Op.String() == "W",
			Hit:       res.Hit,
			WriteBack: res.WriteBack,
			Bypassed:  !res.Hit && !res.Admitted,
		}
	}
	fmt.Printf("functional pass: %d requests, miss rate %.2f%%\n\n",
		len(tr), 100*c.Stats().MissRate())

	// Timing pass 1: dataflow overlap on vs off.
	on, err := fpga.SimulateDataflow(events, fpga.DefaultDataflowConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfgOff := fpga.DefaultDataflowConfig()
	cfgOff.Overlap = false
	off, err := fpga.SimulateDataflow(events, cfgOff)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataflow timing at 233 MHz:")
	fmt.Printf("  overlapped:  total %v, mean latency %v/request, GMM cycles hidden: %d\n",
		fpga.CyclesToDuration(on.TotalCycles),
		fpga.CyclesToDuration(int64(on.MeanLatencyCycles())),
		on.HiddenGMMCycles)
	fmt.Printf("  serialized:  total %v, mean latency %v/request\n",
		fpga.CyclesToDuration(off.TotalCycles),
		fpga.CyclesToDuration(int64(off.MeanLatencyCycles())))
	fmt.Printf("  overlap saves %.2f%% of total execution time\n\n",
		100*float64(off.TotalCycles-on.TotalCycles)/float64(off.TotalCycles))

	// Timing pass 2: the GMM PE pipeline, cycle by cycle.
	pe := fpga.PaperGMMEngine()
	sim, err := fpga.NewPipelineSim(pe.K, pe.PipelineDepth)
	if err != nil {
		log.Fatal(err)
	}
	cycles := sim.Run()
	fmt.Printf("GMM PE pipeline: K=%d Gaussians, depth %d, II=1 -> %d cycles = %v\n\n",
		pe.K, pe.PipelineDepth, cycles, fpga.CyclesToDuration(cycles))

	// Table 2: resource and latency comparison.
	cmp := fpga.CompareEngines()
	fmt.Println("policy engine comparison (Table 2):")
	fmt.Printf("  LSTM: %v\n", cmp.LSTM)
	fmt.Printf("  GMM:  %v\n", cmp.GMM)
	fmt.Printf("  GMM gain: %.0fx less BRAM, %.0fx faster\n", cmp.BRAMRatio, cmp.Speedup)
	u50 := fpga.U50
	fmt.Printf("  GMM on Alveo U50: %.1f%% BRAM, %.1f%% DSP, %.1f%% LUT, %.1f%% FF\n",
		100*float64(cmp.GMM.BRAM)/float64(u50.BRAM),
		100*float64(cmp.GMM.DSP)/float64(u50.DSP),
		100*float64(cmp.GMM.LUT)/float64(u50.LUT),
		100*float64(cmp.GMM.FF)/float64(u50.FF))
}
