// Quickstart: the minimal end-to-end ICGMM flow in ~40 lines.
//
//  1. Generate a benchmark memory trace.
//  2. Train the 2-D GMM cache policy engine on it (offline EM, Sec. 3).
//  3. Simulate the CXL memory-expansion system with the LRU baseline and
//     with the GMM engine.
//  4. Compare miss rate and average memory access latency.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gmm"
	"repro/internal/workload"
)

func main() {
	// 1. A hashmap workload (one of the paper's synthetic benchmarks):
	// hash-chain islands of hot buckets, uniform probe noise, and periodic
	// rehash bursts, 400k requests.
	tr := workload.NewHashmap().Generate(400_000, 42)

	// 2+3. Config mirrors the paper's case study: 64 MiB / 4 KiB / 8-way
	// cache, TLC SSD (75 us read, 900 us write), 1 us cache hits, 3 us GMM
	// inference overlapped with SSD access. A smaller K keeps the demo
	// quick; the paper deploys K = 256.
	cfg := core.DefaultConfig()
	cfg.Train = gmm.TrainConfig{K: 128, MaxIters: 30, Seed: 1, MaxSamples: 20000}

	cmp, err := core.Compare("hashmap", tr, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report, Fig. 6 / Table 1 style.
	fmt.Println("policy                  miss rate   avg access latency")
	for _, r := range []core.RunResult{cmp.LRU, cmp.Caching, cmp.Eviction, cmp.Combined} {
		fmt.Printf("%-22s  %7.2f%%   %v\n", r.Policy, r.MissRatePct(), r.AvgLatency)
	}
	best := cmp.BestGMM()
	fmt.Printf("\nbest GMM strategy %q cuts miss rate %.2f%% -> %.2f%% and latency by %.1f%%\n",
		best.Policy, cmp.LRU.MissRatePct(), best.MissRatePct(), cmp.LatencyReductionPct())
}
