# Development and CI entry points. CI runs `make ci`; every target is safe
# to run locally with a stock Go toolchain (no external dependencies).

GO ?= go

.PHONY: build test race bench serve-smoke test-tenants cover fuzz-smoke fmt vet fmt-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark in the root harness and
# the serving subsystem, enough to catch bit-rot without waiting for stable
# numbers.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' . ./internal/serve

# Serving smoke: a short icgmm-serve run under the race detector, exercising
# ingest, batched admission, a drift-triggered sync refresh, and JSONL
# metrics end to end.
serve-smoke:
	$(GO) run -race ./cmd/icgmm-serve -workload parsec -ops 49152 -batch 1024 \
		-warmup 60000 -shot 500 -k 16 -shards 4 -refresh sync -drift -out /dev/null

# Multi-tenant suite: the tenant/controller/golden-determinism tests plus a
# 3-tenant icgmm-serve smoke (per-tenant QoS, capacity shares, adaptive
# controller) under the race detector.
test-tenants:
	$(GO) test ./internal/serve -run 'Tenant|Golden|ValidateWarmup|ParseTenantSpecs' -race
	$(GO) test ./internal/workload -run 'Mux' -race
	$(GO) run -race ./cmd/icgmm-serve -ops 32768 -batch 1024 -warmup 60000 -shot 500 \
		-k 16 -shards 4 -cache-mb 16 -out /dev/null \
		-tenants cmd/icgmm-serve/testdata/tenants-sample.json

# Ratcheted coverage floors for the packages the test subsystem hardens.
# Raise a floor when coverage grows; never lower one.
COVER_FLOORS := ./internal/serve:85 ./internal/workload:95
cover:
	@fail=0; \
	for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; min=$${spec##*:}; \
		if ! $(GO) test -coverprofile=cover.tmp.out $$pkg > cover.tmp.log 2>&1; then \
			cat cover.tmp.log; rm -f cover.tmp.out cover.tmp.log; exit 1; \
		fi; \
		pct=$$($(GO) tool cover -func=cover.tmp.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "coverage $$pkg: $$pct% (floor $$min%)"; \
		if [ "$$(awk -v p=$$pct -v m=$$min 'BEGIN {print (p >= m) ? 1 : 0}')" != 1 ]; then \
			echo "FAIL: coverage for $$pkg fell below the ratcheted floor"; fail=1; \
		fi; \
	done; \
	rm -f cover.tmp.out cover.tmp.log; exit $$fail

# Fuzz smoke: 20 seconds per target against the trace CSV parser and the
# -tenants JSON spec parser. -run='^$$' skips the unit tests so the time
# budget goes entirely to fuzzing.
fuzz-smoke:
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzParseRecord -fuzztime=20s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzTenantSpec -fuzztime=20s

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet build race cover bench serve-smoke test-tenants fuzz-smoke
