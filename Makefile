# Development and CI entry points. CI runs `make ci`; every target is safe
# to run locally with a stock Go toolchain (no external dependencies).

GO ?= go

.PHONY: build test race bench serve-smoke fmt vet fmt-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark in the root harness and
# the serving subsystem, enough to catch bit-rot without waiting for stable
# numbers.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' . ./internal/serve

# Serving smoke: a short icgmm-serve run under the race detector, exercising
# ingest, batched admission, a drift-triggered sync refresh, and JSONL
# metrics end to end.
serve-smoke:
	$(GO) run -race ./cmd/icgmm-serve -workload parsec -ops 49152 -batch 1024 \
		-warmup 60000 -shot 500 -k 16 -shards 4 -refresh sync -drift -out /dev/null

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet build race bench serve-smoke
