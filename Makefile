# Development and CI entry points. CI runs `make ci`; every target is safe
# to run locally with a stock Go toolchain (no external dependencies).

GO ?= go

.PHONY: build test race bench bench-json serve-smoke test-tenants test-shares test-spec test-cluster test-telemetry test-device test-scenario cover fuzz-smoke fmt vet fmt-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark in the root harness and
# the serving subsystem, enough to catch bit-rot without waiting for stable
# numbers.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' . ./internal/serve

# Machine-readable benchmarks: run the root and serving benchmarks with
# -benchmem, keep the raw text for benchstat (BENCH_<date>.txt) and render a
# JSON trajectory point next to it (BENCH_<date>.json) via cmd/benchjson.
# Override BENCHTIME (e.g. BENCHTIME=5x) for steadier numbers.
BENCHTIME ?= 1x
BENCHSTAMP := $(shell date +%Y%m%d)
bench-json:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -benchmem -run='^$$' . ./internal/serve \
		| tee BENCH_$(BENCHSTAMP).txt \
		| $(GO) run ./cmd/benchjson > BENCH_$(BENCHSTAMP).json
	@echo "wrote BENCH_$(BENCHSTAMP).txt and BENCH_$(BENCHSTAMP).json"

# Serving smoke: a short icgmm-serve run under the race detector, exercising
# ingest, batched admission, a drift-triggered sync refresh, and JSONL
# metrics end to end.
serve-smoke:
	$(GO) run -race ./cmd/icgmm-serve -spec cmd/icgmm-serve/testdata/spec-smoke.json \
		-out /dev/null

# Multi-tenant suite: the tenant/controller/golden-determinism tests plus a
# 3-tenant icgmm-serve smoke (per-tenant QoS, capacity shares, adaptive
# controller) under the race detector.
test-tenants:
	$(GO) test ./internal/serve -run 'Tenant|Golden|ValidateWarmup|ParseTenantSpecs' -race
	$(GO) test ./internal/workload -run 'Mux' -race
	$(GO) run -race ./cmd/icgmm-serve -spec cmd/icgmm-serve/testdata/spec-tenants.json \
		-out /dev/null

# Elastic-share suite: the share-adaptation unit/property/golden tests plus a
# 3-tenant icgmm-serve smoke whose mid-run working-set growth drives the
# controller's capacity lever (share transfers + block migration) under the
# race detector.
test-shares:
	$(GO) test ./internal/serve -run 'Share|Controller|ResidencyAudit|Golden' -race
	$(GO) test ./internal/cache -run 'EvictAt|Victim' -race
	$(GO) test ./internal/workload -run 'ShiftTo' -race
	$(GO) run -race ./cmd/icgmm-serve -spec cmd/icgmm-serve/testdata/spec-elastic.json \
		-shards 4 -out /dev/null

# Spec & Session suite: declarative-spec validation, round-trip and
# field-path strictness tests, the checkpoint/resume golden (byte-identical
# across a pause at shards 1/2/8) and every-batch-boundary property tests,
# workload stream-state round trips — all under the race detector — plus an
# icgmm-serve run driven entirely by the committed spec file.
test-spec:
	$(GO) test ./internal/serve -run 'Spec|Session|Checkpoint|Resume|RateDerived|RateFloor' -race
	$(GO) test ./internal/workload -run 'State' -race
	$(GO) test ./cmd/icgmm-serve -race
	$(GO) run -race ./cmd/icgmm-serve -spec cmd/icgmm-serve/testdata/spec-elastic.json \
		-shards 4 -out /dev/null

# Cluster suite: the coordinator/worker/protocol tests (golden byte-identity
# across forced migration and forced kill+replay at shards 1/2/8) under the
# race detector, then the icgmm-cluster binary driving the sample spec with
# real spawned worker processes — one live migration, one SIGKILL'd worker —
# and -verify byte-comparing every committed stream against an uninterrupted
# in-process rerun.
test-cluster:
	$(GO) test ./internal/cluster ./internal/strictjson -race
	$(GO) test ./cmd/icgmm-cluster -race
	$(GO) run -race ./cmd/icgmm-cluster -spec cmd/icgmm-cluster/testdata/cluster-sample.json \
		-merged /dev/null -verify -v

# Telemetry suite: the registry/trace/debug-server unit tests, the golden
# determinism-equivalence tests (telemetry on, scraped live, must emit the
# telemetry-off byte stream — serve at shards 1/2/8, cluster across faults),
# and the CLI test that scrapes /metrics + /status from a live spec-driven
# run mid-flight — all under the race detector.
test-telemetry:
	$(GO) test ./internal/telemetry -race
	$(GO) test ./internal/serve -run 'MetricsSink' -race
	$(GO) test ./internal/cluster -run 'Telemetry|WorkerDebug' -race
	$(GO) test ./cmd/icgmm-serve -run 'TelemetryLiveScrape' -race

# Device-timing suite: the fpga timeline / device model / cxl link unit
# tests, the serve-path dataflow tests (committed golden at shards 1/2/8
# with a mid-run checkpoint/resume, queue-depth QoS lever regression,
# congestion events, flat-default byte-compatibility) under the race
# detector, then an icgmm-serve smoke driven by the committed dataflow spec.
test-device:
	$(GO) test ./internal/fpga ./internal/device ./internal/cxl -race
	$(GO) test ./internal/serve -run 'Dataflow|Device|QueueDepth|TimingKind' -race
	$(GO) run -race ./cmd/icgmm-serve -spec cmd/icgmm-serve/testdata/spec-dataflow.json \
		-shards 4 -out /dev/null

# Scenario suite: the timeline/event-engine unit tests, the closed-loop
# client tests, the scenario golden (tenant churn + diurnal rates + phase
# swap + shadow LSTM, byte-identical at shards 1/2/8 across a checkpoint
# that straddles a leave and a join), the shadow no-live-effect and
# closed-loop feedback tests, and the EWMA donor-headroom regression — all
# under the race detector — then an icgmm-serve smoke driven by the
# committed scenario spec.
test-scenario:
	$(GO) test ./internal/scenario -race
	$(GO) test ./internal/lstm -race
	$(GO) test ./internal/workload -run 'ClosedLoop|Mux' -race
	$(GO) test ./internal/serve -run 'Scenario|Shadow|ClosedLoop|EWMA' -race
	$(GO) run -race ./cmd/icgmm-serve -spec cmd/icgmm-serve/testdata/spec-scenario.json \
		-out /dev/null

# Ratcheted coverage floors for the packages the test subsystem hardens.
# Raise a floor when coverage grows; never lower one.
COVER_FLOORS := ./internal/serve:91 ./internal/workload:95 ./internal/cluster:75 ./internal/strictjson:95 ./internal/telemetry:85 ./internal/fpga:80 ./internal/cxl:80 ./internal/device:90 ./internal/scenario:95 ./internal/lstm:95
cover:
	@fail=0; \
	for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; min=$${spec##*:}; \
		if ! $(GO) test -coverprofile=cover.tmp.out $$pkg > cover.tmp.log 2>&1; then \
			cat cover.tmp.log; rm -f cover.tmp.out cover.tmp.log; exit 1; \
		fi; \
		pct=$$($(GO) tool cover -func=cover.tmp.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "coverage $$pkg: $$pct% (floor $$min%)"; \
		if [ "$$(awk -v p=$$pct -v m=$$min 'BEGIN {print (p >= m) ? 1 : 0}')" != 1 ]; then \
			echo "FAIL: coverage for $$pkg fell below the ratcheted floor"; fail=1; \
		fi; \
	done; \
	rm -f cover.tmp.out cover.tmp.log; exit $$fail

# Fuzz smoke: 20 seconds per target against the trace CSV parser, the
# -tenants JSON spec parser, the declarative run-spec wire format, the spec's
# device-timing block, the scenario/clients/shadow blocks, and the Q16.16
# quantizer's batch/scalar parity contract. -run='^$$' skips the unit tests
# so the time budget goes entirely to fuzzing.
fuzz-smoke:
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzParseRecord -fuzztime=20s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzTenantSpec -fuzztime=20s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzServeSpec -fuzztime=20s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzDeviceSpec -fuzztime=20s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzScenarioSpec -fuzztime=20s
	$(GO) test ./internal/gmm -run='^$$' -fuzz=FuzzQuantizeRoundTrip -fuzztime=20s

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet build race cover bench serve-smoke test-tenants test-shares test-spec test-cluster test-telemetry test-device test-scenario fuzz-smoke
