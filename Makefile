# Development and CI entry points. CI runs `make ci`; every target is safe
# to run locally with a stock Go toolchain (no external dependencies).

GO ?= go

.PHONY: build test race bench serve-smoke test-tenants test-shares test-spec cover fuzz-smoke fmt vet fmt-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark in the root harness and
# the serving subsystem, enough to catch bit-rot without waiting for stable
# numbers.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' . ./internal/serve

# Serving smoke: a short icgmm-serve run under the race detector, exercising
# ingest, batched admission, a drift-triggered sync refresh, and JSONL
# metrics end to end.
serve-smoke:
	$(GO) run -race ./cmd/icgmm-serve -workload parsec -ops 49152 -batch 1024 \
		-warmup 60000 -shot 500 -k 16 -shards 4 -refresh sync -drift -out /dev/null

# Multi-tenant suite: the tenant/controller/golden-determinism tests plus a
# 3-tenant icgmm-serve smoke (per-tenant QoS, capacity shares, adaptive
# controller) under the race detector.
test-tenants:
	$(GO) test ./internal/serve -run 'Tenant|Golden|ValidateWarmup|ParseTenantSpecs' -race
	$(GO) test ./internal/workload -run 'Mux' -race
	$(GO) run -race ./cmd/icgmm-serve -ops 32768 -batch 1024 -warmup 60000 -shot 500 \
		-k 16 -shards 4 -cache-mb 16 -out /dev/null \
		-tenants cmd/icgmm-serve/testdata/tenants-sample.json

# Elastic-share suite: the share-adaptation unit/property/golden tests plus a
# 3-tenant icgmm-serve smoke whose mid-run working-set growth drives the
# controller's capacity lever (share transfers + block migration) under the
# race detector.
test-shares:
	$(GO) test ./internal/serve -run 'Share|Controller|ResidencyAudit|Golden' -race
	$(GO) test ./internal/cache -run 'EvictAt|Victim' -race
	$(GO) test ./internal/workload -run 'ShiftTo' -race
	$(GO) run -race ./cmd/icgmm-serve -ops 163840 -batch 1024 -warmup 30000 -shot 256 \
		-k 8 -shards 4 -partitions 8 -cache-mb 4 -refresh sync -out /dev/null \
		-refresh-window 8192 -refresh-min 2048 \
		-drift-delta 0.08 -drift-sustain 8 -drift-warmup 8 -drift-alpha 0.2 \
		-control-every 8 -control-step 1.6 -control-min-mult 0.0625 -control-max-mult 16 \
		-share-adapt -share-quantum 8 -share-hold 2 -share-cooldown 1 \
		-tenants cmd/icgmm-serve/testdata/tenants-elastic.json

# Spec & Session suite: declarative-spec validation, round-trip and
# field-path strictness tests, the checkpoint/resume golden (byte-identical
# across a pause at shards 1/2/8) and every-batch-boundary property tests,
# workload stream-state round trips — all under the race detector — plus an
# icgmm-serve run driven entirely by the committed spec file.
test-spec:
	$(GO) test ./internal/serve -run 'Spec|Session|Checkpoint|Resume|RateDerived|RateFloor' -race
	$(GO) test ./internal/workload -run 'State' -race
	$(GO) test ./cmd/icgmm-serve -race
	$(GO) run -race ./cmd/icgmm-serve -spec cmd/icgmm-serve/testdata/spec-elastic.json \
		-shards 4 -out /dev/null

# Ratcheted coverage floors for the packages the test subsystem hardens.
# Raise a floor when coverage grows; never lower one.
COVER_FLOORS := ./internal/serve:91 ./internal/workload:95
cover:
	@fail=0; \
	for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; min=$${spec##*:}; \
		if ! $(GO) test -coverprofile=cover.tmp.out $$pkg > cover.tmp.log 2>&1; then \
			cat cover.tmp.log; rm -f cover.tmp.out cover.tmp.log; exit 1; \
		fi; \
		pct=$$($(GO) tool cover -func=cover.tmp.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "coverage $$pkg: $$pct% (floor $$min%)"; \
		if [ "$$(awk -v p=$$pct -v m=$$min 'BEGIN {print (p >= m) ? 1 : 0}')" != 1 ]; then \
			echo "FAIL: coverage for $$pkg fell below the ratcheted floor"; fail=1; \
		fi; \
	done; \
	rm -f cover.tmp.out cover.tmp.log; exit $$fail

# Fuzz smoke: 20 seconds per target against the trace CSV parser, the
# -tenants JSON spec parser, and the declarative run-spec wire format.
# -run='^$$' skips the unit tests so the time budget goes entirely to
# fuzzing.
fuzz-smoke:
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzParseRecord -fuzztime=20s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzTenantSpec -fuzztime=20s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzServeSpec -fuzztime=20s

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet build race cover bench serve-smoke test-tenants test-shares test-spec fuzz-smoke
