package lstm

import (
	"errors"
	"fmt"
	"math"
)

// grads mirrors the parameter layout of the network.
type grads struct {
	wx, wh [][][]float64 // per layer
	b      [][]float64
	wy     []float64
	by     float64
}

func newGrads(n *Network) *grads {
	g := &grads{wy: make([]float64, len(n.wy))}
	for _, l := range n.layers {
		g.wx = append(g.wx, zerosLike(l.wx))
		g.wh = append(g.wh, zerosLike(l.wh))
		g.b = append(g.b, make([]float64, len(l.b)))
	}
	return g
}

func zerosLike(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = make([]float64, len(m[i]))
	}
	return out
}

// forwardTraining runs the sequence keeping every activation, returning the
// prediction and the per-layer, per-step caches.
func (n *Network) forwardTraining(seq [][]float64) (float64, [][]*stepCache) {
	states := make([]cellState, len(n.layers))
	for i := range states {
		states[i] = newCellState(n.cfg.HiddenDim)
	}
	caches := make([][]*stepCache, len(n.layers))
	for li := range caches {
		caches[li] = make([]*stepCache, len(seq))
	}
	for t, x := range seq {
		cur := x
		for li, l := range n.layers {
			var c *stepCache
			states[li], c = l.step(cur, states[li], true)
			caches[li][t] = c
			cur = states[li].h
		}
	}
	out := n.by
	top := states[len(states)-1].h
	for j, w := range n.wy {
		out += w * top[j]
	}
	return out, caches
}

// backward accumulates gradients of 0.5*(pred-target)^2 into g and returns
// the squared error.
func (n *Network) backward(seq [][]float64, target float64, g *grads) float64 {
	pred, caches := n.forwardTraining(seq)
	diff := pred - target

	h := n.cfg.HiddenDim
	T := len(seq)
	L := len(n.layers)

	// dh[li] is the gradient flowing into layer li's hidden state at the
	// current timestep; dc likewise for the cell state.
	dh := make([][]float64, L)
	dc := make([][]float64, L)
	for li := range dh {
		dh[li] = make([]float64, h)
		dc[li] = make([]float64, h)
	}

	// Head gradients feed the top layer at the last step.
	top := caches[L-1][T-1].h
	for j := 0; j < h; j++ {
		g.wy[j] += diff * top[j]
		dh[L-1][j] += diff * n.wy[j]
	}
	g.by += diff

	// dxNext[t] collects the gradient each layer passes to the layer below
	// at timestep t (input gradient).
	for t := T - 1; t >= 0; t-- {
		for li := L - 1; li >= 0; li-- {
			l := n.layers[li]
			c := caches[li][t]
			dhl, dcl := dh[li], dc[li]
			// Through h = o * tanh(c).
			dpre := make([]float64, 4*h)
			for j := 0; j < h; j++ {
				do := dhl[j] * c.tanhC[j]
				dcj := dcl[j] + dhl[j]*c.o[j]*(1-c.tanhC[j]*c.tanhC[j])
				di := dcj * c.g[j]
				dg := dcj * c.i[j]
				df := dcj * c.cPrev[j]
				dcPrev := dcj * c.f[j]

				dpre[j] = di * c.i[j] * (1 - c.i[j])
				dpre[h+j] = df * c.f[j] * (1 - c.f[j])
				dpre[2*h+j] = dg * (1 - c.g[j]*c.g[j])
				dpre[3*h+j] = do * c.o[j] * (1 - c.o[j])
				dcl[j] = dcPrev
			}
			// Parameter gradients and propagation to x and hPrev.
			dx := make([]float64, l.inDim)
			dhPrev := make([]float64, h)
			for r := 0; r < 4*h; r++ {
				dp := dpre[r]
				if dp == 0 {
					continue
				}
				wxr, whr := l.wx[r], l.wh[r]
				gx, gh := g.wx[li][r], g.wh[li][r]
				for j := 0; j < l.inDim; j++ {
					gx[j] += dp * c.x[j]
					dx[j] += dp * wxr[j]
				}
				for j := 0; j < h; j++ {
					gh[j] += dp * c.hPrev[j]
					dhPrev[j] += dp * whr[j]
				}
				g.b[li][r] += dp
			}
			// Hidden gradient for the previous timestep of this layer.
			copy(dh[li], dhPrev)
			// Input gradient feeds the layer below at the same timestep.
			if li > 0 {
				below := dh[li-1]
				for j := 0; j < h; j++ {
					below[j] += dx[j]
				}
			}
		}
	}
	return diff * diff
}

// adamState holds first/second moment estimates matching grads.
type adamState struct {
	m, v *grads
	t    int
}

// TrainConfig controls SGD.
type TrainConfig struct {
	LearningRate float64
	Epochs       int
	ClipNorm     float64
}

// DefaultTrainConfig returns a reasonable Adam setup.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{LearningRate: 1e-3, Epochs: 10, ClipNorm: 5}
}

// Sample is one training example: an input sequence and a target frequency.
type Sample struct {
	Seq    [][]float64
	Target float64
}

// TrainResult reports per-epoch mean squared error.
type TrainResult struct {
	EpochMSE []float64
}

// Train fits the network with Adam on the given samples. It is honest
// work — a 3x128 network on thousands of length-32 sequences takes real
// time, which is exactly the software-overhead point the paper makes.
func (n *Network) Train(samples []Sample, cfg TrainConfig) (*TrainResult, error) {
	if len(samples) == 0 {
		return nil, errors.New("lstm: no training samples")
	}
	if cfg.LearningRate <= 0 || cfg.Epochs <= 0 {
		return nil, errors.New("lstm: invalid training config")
	}
	for i, s := range samples {
		if len(s.Seq) != n.cfg.SeqLen {
			return nil, fmt.Errorf("lstm: sample %d has length %d, want %d", i, len(s.Seq), n.cfg.SeqLen)
		}
	}
	ad := &adamState{m: newGrads(n), v: newGrads(n)}
	res := &TrainResult{}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		sse := 0.0
		for _, s := range samples {
			g := newGrads(n)
			sse += n.backward(s.Seq, s.Target, g)
			clip(g, cfg.ClipNorm)
			ad.t++
			n.applyAdam(g, ad, cfg.LearningRate)
		}
		res.EpochMSE = append(res.EpochMSE, sse/float64(len(samples)))
	}
	return res, nil
}

func clip(g *grads, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	var sq float64
	visit(g, func(v *float64) { sq += *v * *v })
	norm := math.Sqrt(sq)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	visit(g, func(v *float64) { *v *= scale })
}

// visit walks every gradient scalar.
func visit(g *grads, f func(*float64)) {
	for li := range g.wx {
		for r := range g.wx[li] {
			for j := range g.wx[li][r] {
				f(&g.wx[li][r][j])
			}
		}
		for r := range g.wh[li] {
			for j := range g.wh[li][r] {
				f(&g.wh[li][r][j])
			}
		}
		for r := range g.b[li] {
			f(&g.b[li][r])
		}
	}
	for j := range g.wy {
		f(&g.wy[j])
	}
	f(&g.by)
}

const (
	beta1 = 0.9
	beta2 = 0.999
	eps   = 1e-8
)

func (n *Network) applyAdam(g *grads, ad *adamState, lr float64) {
	bc1 := 1 - math.Pow(beta1, float64(ad.t))
	bc2 := 1 - math.Pow(beta2, float64(ad.t))
	step := func(p, gv, m, v *float64) {
		*m = beta1**m + (1-beta1)**gv
		*v = beta2**v + (1-beta2)**gv**gv
		mh := *m / bc1
		vh := *v / bc2
		*p -= lr * mh / (math.Sqrt(vh) + eps)
	}
	for li, l := range n.layers {
		for r := range l.wx {
			for j := range l.wx[r] {
				step(&l.wx[r][j], &g.wx[li][r][j], &ad.m.wx[li][r][j], &ad.v.wx[li][r][j])
			}
			for j := range l.wh[r] {
				step(&l.wh[r][j], &g.wh[li][r][j], &ad.m.wh[li][r][j], &ad.v.wh[li][r][j])
			}
			step(&l.b[r], &g.b[li][r], &ad.m.b[li][r], &ad.v.b[li][r])
		}
	}
	for j := range n.wy {
		step(&n.wy[j], &g.wy[j], &ad.m.wy[j], &ad.v.wy[j])
	}
	step(&n.by, &g.by, &ad.m.by, &ad.v.by)
}
