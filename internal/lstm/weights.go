package lstm

import "fmt"

// LayerWeights is one LSTM layer's parameter block in export form. Gates are
// ordered i, f, g, o, matching the internal layout: Wx is [4*hidden][inDim],
// Wh is [4*hidden][hidden], B is [4*hidden].
type LayerWeights struct {
	Wx [][]float64 `json:"wx"`
	Wh [][]float64 `json:"wh"`
	B  []float64   `json:"b"`
}

// Weights is a network's full parameter set plus the shape that produced it.
// It serializes cleanly, so a trained network can be persisted, diffed in
// tests, or rebuilt on another process without replaying training.
type Weights struct {
	Config Config         `json:"config"`
	Layers []LayerWeights `json:"layers"`
	Wy     []float64      `json:"wy"`
	By     float64        `json:"by"`
}

// Export deep-copies the network's parameters.
func (n *Network) Export() Weights {
	w := Weights{
		Config: n.cfg,
		Layers: make([]LayerWeights, len(n.layers)),
		Wy:     append([]float64(nil), n.wy...),
		By:     n.by,
	}
	for li, l := range n.layers {
		w.Layers[li] = LayerWeights{
			Wx: copyMat(l.wx),
			Wh: copyMat(l.wh),
			B:  append([]float64(nil), l.b...),
		}
	}
	return w
}

// Restore replaces the network's parameters with a deep copy of w. The
// weight shapes must match the receiver's config exactly.
func (n *Network) Restore(w Weights) error {
	if w.Config != n.cfg {
		return fmt.Errorf("lstm: weights shaped %+v, network shaped %+v", w.Config, n.cfg)
	}
	if len(w.Layers) != len(n.layers) {
		return fmt.Errorf("lstm: weights have %d layers, network has %d", len(w.Layers), len(n.layers))
	}
	if len(w.Wy) != n.cfg.HiddenDim {
		return fmt.Errorf("lstm: head has %d weights, want %d", len(w.Wy), n.cfg.HiddenDim)
	}
	for li, l := range n.layers {
		lw := w.Layers[li]
		if err := checkMat(lw.Wx, 4*l.hidden, l.inDim); err != nil {
			return fmt.Errorf("lstm: layer %d wx: %w", li, err)
		}
		if err := checkMat(lw.Wh, 4*l.hidden, l.hidden); err != nil {
			return fmt.Errorf("lstm: layer %d wh: %w", li, err)
		}
		if len(lw.B) != 4*l.hidden {
			return fmt.Errorf("lstm: layer %d bias length %d, want %d", li, len(lw.B), 4*l.hidden)
		}
	}
	for li, l := range n.layers {
		lw := w.Layers[li]
		l.wx = copyMat(lw.Wx)
		l.wh = copyMat(lw.Wh)
		l.b = append([]float64(nil), lw.B...)
	}
	n.wy = append([]float64(nil), w.Wy...)
	n.by = w.By
	return nil
}

func copyMat(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}

func checkMat(m [][]float64, rows, cols int) error {
	if len(m) != rows {
		return fmt.Errorf("has %d rows, want %d", len(m), rows)
	}
	for i := range m {
		if len(m[i]) != cols {
			return fmt.Errorf("row %d has %d cols, want %d", i, len(m[i]), cols)
		}
	}
	return nil
}
