package lstm

import (
	"math"
	"math/rand"
	"testing"
)

// tinyConfig keeps tests fast.
func tinyConfig() Config {
	return Config{InputDim: 2, HiddenDim: 8, Layers: 2, SeqLen: 5}
}

func TestConfigValidate(t *testing.T) {
	if err := PaperBaseline().Validate(); err != nil {
		t.Error(err)
	}
	bad := []Config{
		{},
		{InputDim: 1, HiddenDim: 0, Layers: 1, SeqLen: 1},
		{InputDim: 1, HiddenDim: 1, Layers: 1, SeqLen: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}, 1); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestParamCount(t *testing.T) {
	// 1 layer, in=2, h=4: 4*4*(2+4+1) = 112, head 4+1 = 5 → 117.
	c := Config{InputDim: 2, HiddenDim: 4, Layers: 1, SeqLen: 3}
	if got := c.ParamCount(); got != 117 {
		t.Errorf("ParamCount = %d, want 117", got)
	}
	// Paper baseline: layer1 4*128*(2+128+1), layers 2-3 4*128*(128+128+1).
	pb := PaperBaseline()
	want := 4*128*(2+128+1) + 2*4*128*(128+128+1) + 128 + 1
	if got := pb.ParamCount(); got != want {
		t.Errorf("paper ParamCount = %d, want %d", got, want)
	}
}

func TestMACsPerInference(t *testing.T) {
	c := Config{InputDim: 2, HiddenDim: 4, Layers: 1, SeqLen: 3}
	// per step: 4*4*(2+4) = 96; 3 steps = 288; head 4 → 292.
	if got := c.MACsPerInference(); got != 292 {
		t.Errorf("MACs = %d, want 292", got)
	}
	// The paper baseline runs ~10.8M MACs, which at ~1 MAC/cycle on the
	// FPGA explains the 46.3 ms Table 2 latency.
	pb := PaperBaseline()
	if got := pb.MACsPerInference(); got < 10_000_000 || got > 12_000_000 {
		t.Errorf("paper MACs = %d, want ~10.8M", got)
	}
}

func seqOf(cfg Config, f func(t int) []float64) [][]float64 {
	seq := make([][]float64, cfg.SeqLen)
	for i := range seq {
		seq[i] = f(i)
	}
	return seq
}

func TestForwardShapeErrors(t *testing.T) {
	n, err := New(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Forward(nil); err == nil {
		t.Error("wrong sequence length accepted")
	}
	seq := seqOf(tinyConfig(), func(int) []float64 { return []float64{1} })
	if _, err := n.Forward(seq); err == nil {
		t.Error("wrong input dim accepted")
	}
}

func TestForwardDeterministic(t *testing.T) {
	cfg := tinyConfig()
	n1, _ := New(cfg, 7)
	n2, _ := New(cfg, 7)
	seq := seqOf(cfg, func(i int) []float64 { return []float64{float64(i), 0.5} })
	a, err := n1.Forward(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := n2.Forward(seq)
	if a != b {
		t.Errorf("same seed gave different outputs: %v vs %v", a, b)
	}
	n3, _ := New(cfg, 8)
	c, _ := n3.Forward(seq)
	if a == c {
		t.Error("different seeds gave identical outputs")
	}
}

func TestForwardBoundedActivations(t *testing.T) {
	cfg := tinyConfig()
	n, _ := New(cfg, 3)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		seq := seqOf(cfg, func(int) []float64 {
			return []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		})
		y, err := n.Forward(seq)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(y) || math.IsInf(y, 0) {
			t.Fatalf("non-finite output %v", y)
		}
	}
}

func TestGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny network validates the BPTT
	// implementation end to end.
	cfg := Config{InputDim: 2, HiddenDim: 3, Layers: 2, SeqLen: 4}
	n, _ := New(cfg, 11)
	seq := seqOf(cfg, func(i int) []float64 { return []float64{0.3 * float64(i), -0.2} })
	target := 0.7

	g := newGrads(n)
	n.backward(seq, target, g)

	loss := func() float64 {
		p, _ := n.Forward(seq)
		return 0.5 * (p - target) * (p - target)
	}
	const h = 1e-6
	check := func(p *float64, analytic float64, name string) {
		orig := *p
		*p = orig + h
		lp := loss()
		*p = orig - h
		lm := loss()
		*p = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("%s: numeric %v vs analytic %v", name, numeric, analytic)
		}
	}
	// Spot-check representative parameters from every group.
	check(&n.wy[0], g.wy[0], "wy[0]")
	check(&n.by, g.by, "by")
	check(&n.layers[0].wx[0][0], g.wx[0][0][0], "l0.wx[0][0]")
	check(&n.layers[0].wh[5][1], g.wh[0][5][1], "l0.wh[5][1]")
	check(&n.layers[0].b[2], g.b[0][2], "l0.b[2]")
	check(&n.layers[1].wx[1][2], g.wx[1][1][2], "l1.wx[1][2]")
	check(&n.layers[1].wh[10][0], g.wh[1][10][0], "l1.wh[10][0]")
	check(&n.layers[1].b[7], g.b[1][7], "l1.b[7]")
}

func TestTrainReducesLoss(t *testing.T) {
	// A tiny LSTM must be able to learn a simple function: target is the
	// mean of the first input channel.
	cfg := Config{InputDim: 2, HiddenDim: 8, Layers: 1, SeqLen: 6}
	n, _ := New(cfg, 5)
	rng := rand.New(rand.NewSource(6))
	var samples []Sample
	for i := 0; i < 60; i++ {
		sum := 0.0
		seq := seqOf(cfg, func(int) []float64 {
			v := rng.Float64()
			sum += v
			return []float64{v, rng.Float64()}
		})
		samples = append(samples, Sample{Seq: seq, Target: sum / float64(cfg.SeqLen)})
	}
	res, err := n.Train(samples, TrainConfig{LearningRate: 5e-3, Epochs: 30, ClipNorm: 5})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.EpochMSE[0], res.EpochMSE[len(res.EpochMSE)-1]
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
	if last > 0.05 {
		t.Errorf("final MSE %v too high for a learnable target", last)
	}
}

func TestTrainValidation(t *testing.T) {
	n, _ := New(tinyConfig(), 1)
	if _, err := n.Train(nil, DefaultTrainConfig()); err == nil {
		t.Error("empty samples accepted")
	}
	bad := []Sample{{Seq: [][]float64{{1, 2}}, Target: 0}} // wrong length
	if _, err := n.Train(bad, DefaultTrainConfig()); err == nil {
		t.Error("wrong-length sample accepted")
	}
	good := []Sample{{
		Seq:    seqOf(tinyConfig(), func(int) []float64 { return []float64{0, 0} }),
		Target: 0,
	}}
	if _, err := n.Train(good, TrainConfig{LearningRate: 0, Epochs: 1}); err == nil {
		t.Error("zero learning rate accepted")
	}
}

func TestClipNorm(t *testing.T) {
	cfg := Config{InputDim: 1, HiddenDim: 2, Layers: 1, SeqLen: 2}
	n, _ := New(cfg, 1)
	g := newGrads(n)
	g.wy[0] = 30
	g.wy[1] = 40 // norm 50
	clip(g, 5)
	norm := math.Hypot(g.wy[0], g.wy[1])
	if math.Abs(norm-5) > 1e-9 {
		t.Errorf("clipped norm = %v, want 5", norm)
	}
	// Below the threshold: unchanged.
	g2 := newGrads(n)
	g2.wy[0] = 1
	clip(g2, 5)
	if g2.wy[0] != 1 {
		t.Error("clip modified small gradient")
	}
}
