package lstm

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// trainedNet fits a tiny network on a deterministic synthetic task: the
// target is the mean of the first feature across the sequence, which a
// single-gate path can learn in a few epochs.
func trainedNet(t testing.TB, seed int64) *Network {
	t.Helper()
	n, err := New(tinyConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]Sample, 24)
	for i := range samples {
		sum := 0.0
		seq := seqOf(tinyConfig(), func(int) []float64 {
			x := rng.Float64()
			sum += x
			return []float64{x, rng.Float64()}
		})
		samples[i] = Sample{Seq: seq, Target: sum / float64(tinyConfig().SeqLen)}
	}
	if _, err := n.Train(samples, TrainConfig{LearningRate: 1e-2, Epochs: 3, ClipNorm: 5}); err != nil {
		t.Fatal(err)
	}
	return n
}

// probeSeqs returns fixed input sequences for score-parity checks.
func probeSeqs(seed int64) [][][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][][]float64, 8)
	for i := range out {
		out[i] = seqOf(tinyConfig(), func(int) []float64 {
			return []float64{rng.Float64(), rng.Float64()}
		})
	}
	return out
}

// TestTrainDeterministic pins the whole train path: two networks built from
// the same seed and fitted on the same samples must export bit-identical
// parameters — the property the serve layer's shadow policy relies on to
// retrain (rather than checkpoint) its weights on resume.
func TestTrainDeterministic(t *testing.T) {
	a, b := trainedNet(t, 7), trainedNet(t, 7)
	if !reflect.DeepEqual(a.Export(), b.Export()) {
		t.Fatal("identical seed + samples produced different trained weights")
	}
	c := trainedNet(t, 8)
	if reflect.DeepEqual(a.Export(), c.Export()) {
		t.Fatal("different seeds produced identical trained weights")
	}
}

// TestWeightsRestoreScoreParity round-trips a trained network through
// Export → JSON → Restore into a freshly (differently) initialized network
// and demands exact score parity on fixed probe sequences. encoding/json
// emits the shortest float64 form that round-trips exactly, so the scores
// must match to the last bit, not to a tolerance.
func TestWeightsRestoreScoreParity(t *testing.T) {
	src := trainedNet(t, 42)
	blob, err := json.Marshal(src.Export())
	if err != nil {
		t.Fatal(err)
	}
	var w Weights
	if err := json.Unmarshal(blob, &w); err != nil {
		t.Fatal(err)
	}
	dst, err := New(tinyConfig(), 999)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(w); err != nil {
		t.Fatal(err)
	}
	for i, seq := range probeSeqs(42) {
		want, err := src.Forward(seq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dst.Forward(seq)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("probe %d: restored score %v, want exactly %v", i, got, want)
		}
		if math.IsNaN(got) {
			t.Errorf("probe %d: NaN score", i)
		}
	}
}

// TestWeightsExportIsDeepCopy mutates an exported parameter set and checks
// the source network still scores identically — Export must not alias the
// live weights, or a persisted checkpoint could corrupt a serving policy.
func TestWeightsExportIsDeepCopy(t *testing.T) {
	n := trainedNet(t, 3)
	seq := probeSeqs(3)[0]
	before, err := n.Forward(seq)
	if err != nil {
		t.Fatal(err)
	}
	w := n.Export()
	w.Layers[0].Wx[0][0] += 100
	w.Layers[0].Wh[0][0] += 100
	w.Layers[0].B[0] += 100
	w.Wy[0] += 100
	after, err := n.Forward(seq)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("mutating exported weights changed the live network: %v -> %v", before, after)
	}
}

// TestWeightsRestoreShapeErrors rejects every malformed parameter set.
func TestWeightsRestoreShapeErrors(t *testing.T) {
	n, err := New(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	good := n.Export()
	mutate := []struct {
		name string
		fn   func(w *Weights)
	}{
		{"config mismatch", func(w *Weights) { w.Config.HiddenDim++ }},
		{"layer count", func(w *Weights) { w.Layers = w.Layers[:1] }},
		{"head length", func(w *Weights) { w.Wy = w.Wy[:3] }},
		{"wx rows", func(w *Weights) { w.Layers[0].Wx = w.Layers[0].Wx[:5] }},
		{"wx cols", func(w *Weights) { w.Layers[1].Wx[2] = w.Layers[1].Wx[2][:1] }},
		{"wh rows", func(w *Weights) { w.Layers[0].Wh = w.Layers[0].Wh[:5] }},
		{"wh cols", func(w *Weights) { w.Layers[0].Wh[0] = nil }},
		{"bias length", func(w *Weights) { w.Layers[1].B = w.Layers[1].B[:2] }},
	}
	for _, m := range mutate {
		// Re-export for a fresh deep copy each round so one mutation cannot
		// leak into the next case.
		w := n.Export()
		m.fn(&w)
		if err := n.Restore(w); err == nil {
			t.Errorf("%s: malformed weights accepted", m.name)
		}
	}
	if err := n.Restore(good); err != nil {
		t.Errorf("restoring a clean export failed: %v", err)
	}
}
