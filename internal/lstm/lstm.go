// Package lstm implements the LSTM-based cache policy engine the paper
// compares against in Table 2 (the DeepCache/Glider family): a stacked
// 3-layer LSTM with hidden dimension 128 consuming sequences of 32
// (page, timestamp) inputs and regressing the future access frequency.
//
// It is a complete implementation — forward pass, backpropagation through
// time, Adam optimizer — not a cost stub: the Table 2 latency and resource
// ratios are derived from the same per-layer arithmetic this code performs,
// and the paper's observation that a lightweight LSTM struggles to converge
// on long traces can be reproduced by training it.
package lstm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config shapes the network. The paper's baseline uses 3 layers, hidden
// dimension 128 and input sequence length 32.
type Config struct {
	InputDim  int
	HiddenDim int
	Layers    int
	SeqLen    int
}

// PaperBaseline returns the Table 2 comparison network.
func PaperBaseline() Config {
	return Config{InputDim: 2, HiddenDim: 128, Layers: 3, SeqLen: 32}
}

// Validate checks the shape.
func (c Config) Validate() error {
	if c.InputDim <= 0 || c.HiddenDim <= 0 || c.Layers <= 0 || c.SeqLen <= 0 {
		return errors.New("lstm: non-positive dimension")
	}
	return nil
}

// ParamCount returns the number of trainable parameters: per layer the
// four gates' input and recurrent weights plus biases, and the final
// regression head.
func (c Config) ParamCount() int {
	total := 0
	in := c.InputDim
	for l := 0; l < c.Layers; l++ {
		total += 4 * c.HiddenDim * (in + c.HiddenDim + 1)
		in = c.HiddenDim
	}
	total += c.HiddenDim + 1 // linear head
	return total
}

// MACsPerInference returns the multiply-accumulate count of one full
// sequence inference, the quantity behind the Table 2 latency model.
func (c Config) MACsPerInference() int {
	perStep := 0
	in := c.InputDim
	for l := 0; l < c.Layers; l++ {
		perStep += 4 * c.HiddenDim * (in + c.HiddenDim)
		in = c.HiddenDim
	}
	return c.SeqLen*perStep + c.HiddenDim
}

// layer holds one LSTM layer's parameters. Gates are ordered i, f, g, o.
// Weights are stored row-major: w[gate*H+j] is the row producing hidden
// unit j of that gate.
type layer struct {
	inDim, hidden int
	// wx: [4*hidden][inDim], wh: [4*hidden][hidden], b: [4*hidden]
	wx, wh [][]float64
	b      []float64
}

func newLayer(inDim, hidden int, rng *rand.Rand) *layer {
	l := &layer{inDim: inDim, hidden: hidden}
	scale := 1 / math.Sqrt(float64(inDim+hidden))
	l.wx = randMat(4*hidden, inDim, scale, rng)
	l.wh = randMat(4*hidden, hidden, scale, rng)
	l.b = make([]float64, 4*hidden)
	// Forget-gate bias starts at 1, the standard trick for gradient flow.
	for j := 0; j < hidden; j++ {
		l.b[hidden+j] = 1
	}
	return l
}

func randMat(rows, cols int, scale float64, rng *rand.Rand) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64() * scale
		}
	}
	return m
}

// Network is the stacked LSTM with a linear regression head.
type Network struct {
	cfg    Config
	layers []*layer
	// Head: y = wy . h + by.
	wy []float64
	by float64
}

// New builds a network with Xavier-style initialization.
func New(cfg Config, seed int64) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Network{cfg: cfg}
	in := cfg.InputDim
	for l := 0; l < cfg.Layers; l++ {
		n.layers = append(n.layers, newLayer(in, cfg.HiddenDim, rng))
		in = cfg.HiddenDim
	}
	n.wy = make([]float64, cfg.HiddenDim)
	scale := 1 / math.Sqrt(float64(cfg.HiddenDim))
	for i := range n.wy {
		n.wy[i] = rng.NormFloat64() * scale
	}
	return n, nil
}

// Config returns the network shape.
func (n *Network) Config() Config { return n.cfg }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// cellState carries (h, c) for one layer.
type cellState struct {
	h, c []float64
}

func newCellState(hidden int) cellState {
	return cellState{h: make([]float64, hidden), c: make([]float64, hidden)}
}

// stepCache stores the intermediate activations BPTT needs.
type stepCache struct {
	x          []float64 // layer input
	i, f, g, o []float64 // gate activations
	cPrev, c   []float64
	hPrev, h   []float64
	tanhC      []float64
}

// step runs one layer for one timestep, optionally recording a cache.
func (l *layer) step(x []float64, st cellState, keep bool) (cellState, *stepCache) {
	h := l.hidden
	pre := make([]float64, 4*h)
	for r := 0; r < 4*h; r++ {
		s := l.b[r]
		wxr := l.wx[r]
		for j, xv := range x {
			s += wxr[j] * xv
		}
		whr := l.wh[r]
		for j, hv := range st.h {
			s += whr[j] * hv
		}
		pre[r] = s
	}
	next := newCellState(h)
	var cache *stepCache
	if keep {
		cache = &stepCache{
			x: append([]float64(nil), x...),
			i: make([]float64, h), f: make([]float64, h),
			g: make([]float64, h), o: make([]float64, h),
			cPrev: append([]float64(nil), st.c...),
			hPrev: append([]float64(nil), st.h...),
			tanhC: make([]float64, h),
		}
	}
	for j := 0; j < h; j++ {
		ig := sigmoid(pre[j])
		fg := sigmoid(pre[h+j])
		gg := math.Tanh(pre[2*h+j])
		og := sigmoid(pre[3*h+j])
		c := fg*st.c[j] + ig*gg
		tc := math.Tanh(c)
		next.c[j] = c
		next.h[j] = og * tc
		if keep {
			cache.i[j], cache.f[j], cache.g[j], cache.o[j] = ig, fg, gg, og
			cache.tanhC[j] = tc
		}
	}
	if keep {
		cache.c = append([]float64(nil), next.c...)
		cache.h = append([]float64(nil), next.h...)
	}
	return next, cache
}

// Forward runs a full sequence and returns the scalar prediction. seq must
// have length cfg.SeqLen, each element length cfg.InputDim.
func (n *Network) Forward(seq [][]float64) (float64, error) {
	if len(seq) != n.cfg.SeqLen {
		return 0, fmt.Errorf("lstm: sequence length %d, want %d", len(seq), n.cfg.SeqLen)
	}
	states := make([]cellState, len(n.layers))
	for i := range states {
		states[i] = newCellState(n.cfg.HiddenDim)
	}
	for _, x := range seq {
		if len(x) != n.cfg.InputDim {
			return 0, fmt.Errorf("lstm: input dim %d, want %d", len(x), n.cfg.InputDim)
		}
		cur := x
		for li, l := range n.layers {
			states[li], _ = l.step(cur, states[li], false)
			cur = states[li].h
		}
	}
	out := n.by
	top := states[len(states)-1].h
	for j, w := range n.wy {
		out += w * top[j]
	}
	return out, nil
}
