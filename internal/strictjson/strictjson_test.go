package strictjson

import (
	"encoding/json"
	"strings"
	"testing"
)

type inner struct {
	Gamma int             `json:"gamma"`
	Raw   json.RawMessage `json:"raw"`
}

type embedded struct {
	FromEmbed string `json:"from_embed"`
}

type outer struct {
	embedded
	Alpha    int              `json:"alpha"`
	Renamed  string           `json:"renamed,omitempty"`
	Untagged float64          // effective name "Untagged"
	Skipped  string           `json:"-"`
	hidden   int              //nolint:unused // pins the unexported-field skip
	Nested   *inner           `json:"nested"`
	List     []inner          `json:"list"`
	ByKey    map[string]inner `json:"by_key"`
}

func TestUnmarshalAccepts(t *testing.T) {
	t.Parallel()
	doc := `{
	 "alpha": 1, "renamed": "x", "Untagged": 2.5, "from_embed": "e",
	 "nested": {"gamma": 3, "raw": {"anything": ["goes", "here"]}},
	 "list": [{"gamma": 1}, {"gamma": 2}],
	 "by_key": {"k": {"gamma": 9}}
	}`
	var v outer
	if err := Unmarshal([]byte(doc), &v, "doc"); err != nil {
		t.Fatal(err)
	}
	if v.Alpha != 1 || v.FromEmbed != "e" || v.Nested.Gamma != 3 || len(v.List) != 2 {
		t.Errorf("decoded %+v", v)
	}
	// Case-insensitive key matching follows encoding/json.
	if err := Unmarshal([]byte(`{"ALPHA": 4}`), &outer{}, "doc"); err != nil {
		t.Errorf("case-insensitive key rejected: %v", err)
	}
}

func TestUnmarshalRejectsByPath(t *testing.T) {
	t.Parallel()
	cases := []struct {
		doc  string
		path string
	}{
		{`{"aplha": 1}`, "doc.aplha"},
		{`{"skipped": "x"}`, "doc.skipped"}, // json:"-" is not a wire name
		{`{"nested": {"gmma": 3}}`, "doc.nested.gmma"},
		{`{"list": [{"gamma": 1}, {"gmma": 2}]}`, "doc.list[1].gmma"},
		{`{"by_key": {"some-key": {"gmma": 1}}}`, "doc.by_key.some-key.gmma"},
		{`{"zz": 1, "aa": 2}`, "doc.aa"}, // sorted: deterministic first report
	}
	for _, tc := range cases {
		err := Unmarshal([]byte(tc.doc), &outer{}, "doc")
		if err == nil {
			t.Errorf("%s: accepted", tc.doc)
			continue
		}
		if !strings.Contains(err.Error(), tc.path+": unknown field") {
			t.Errorf("%s: error %q does not name path %q", tc.doc, err, tc.path)
		}
	}
}

func TestUnmarshalRawMessagePassthrough(t *testing.T) {
	t.Parallel()
	// Keys inside a RawMessage belong to a later decode, not this document.
	doc := `{"nested": {"raw": {"utterly": {"unknown": true}}}}`
	var v outer
	if err := Unmarshal([]byte(doc), &v, "doc"); err != nil {
		t.Fatal(err)
	}
	want := `{"utterly": {"unknown": true}}`
	if string(v.Nested.Raw) != want {
		t.Errorf("RawMessage bytes not preserved: %s", v.Nested.Raw)
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	t.Parallel()
	if err := Unmarshal([]byte(`{"alpha": `), &outer{}, "doc"); err == nil || !strings.Contains(err.Error(), "doc:") {
		t.Errorf("truncated document: %v", err)
	}
	if err := Unmarshal([]byte(`{} trailing`), &outer{}, "doc"); err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Errorf("trailing data: %v", err)
	}
}
