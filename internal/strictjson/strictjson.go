// Package strictjson decodes JSON wire formats strictly: any object key
// that does not correspond to a field of the destination struct is rejected
// with an error naming the key by its full path in the document. The serve
// spec/tenant formats and the cluster coordinator/worker protocol all decode
// through it, so a typo anywhere in a remotely-supplied document fails
// loudly at the exact offending key instead of silently configuring a
// default.
package strictjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Unmarshal decodes JSON into v like encoding/json, but rejects any object
// key that does not correspond to a field of the destination struct — and
// names the offending key by its full path (e.g. "spec.tenants[1].sahre")
// instead of the bare field name the standard library's
// DisallowUnknownFields reports. Wire-format typos therefore fail with an
// error that points at the exact spot in the document, which matters once
// documents nest several levels deep.
//
// root labels the document in error messages. v must be a non-nil pointer.
func Unmarshal(data []byte, v any, root string) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return fmt.Errorf("%s: %w", root, err)
	}
	if dec.More() {
		return fmt.Errorf("%s: trailing data after JSON document", root)
	}
	if err := checkUnknownFields(tree, reflect.TypeOf(v).Elem(), root); err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// checkUnknownFields walks the decoded JSON tree alongside the destination
// type, reporting the first unknown object key with its path. Shape
// mismatches (an object where a number belongs, etc.) are left for
// json.Unmarshal to diagnose; this pass cares only about keys that would be
// silently dropped.
func checkUnknownFields(tree any, t reflect.Type, path string) error {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	// json.RawMessage fields pass through verbatim — their contents belong
	// to whatever format later decodes them, not to this document.
	if t == reflect.TypeOf(json.RawMessage(nil)) {
		return nil
	}
	switch node := tree.(type) {
	case map[string]any:
		switch t.Kind() {
		case reflect.Struct:
			fields := jsonFields(t)
			// Sorted key order keeps the reported path deterministic when a
			// document carries several typos.
			keys := make([]string, 0, len(node))
			for k := range node {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				ft, ok := lookupJSONField(fields, k)
				if !ok {
					return fmt.Errorf("%s.%s: unknown field", path, k)
				}
				if err := checkUnknownFields(node[k], ft, path+"."+k); err != nil {
					return err
				}
			}
		case reflect.Map:
			for k, v := range node {
				if err := checkUnknownFields(v, t.Elem(), path+"."+k); err != nil {
					return err
				}
			}
		}
	case []any:
		if t.Kind() == reflect.Slice || t.Kind() == reflect.Array {
			for i, el := range node {
				if err := checkUnknownFields(el, t.Elem(), fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// jsonFields maps a struct's effective JSON names to field types, flattening
// embedded structs the way encoding/json does.
func jsonFields(t reflect.Type) map[string]reflect.Type {
	out := make(map[string]reflect.Type)
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" && !f.Anonymous { // unexported
			continue
		}
		tag := f.Tag.Get("json")
		if tag == "-" {
			continue
		}
		name := strings.Split(tag, ",")[0]
		if name == "" {
			if f.Anonymous {
				ft := f.Type
				for ft.Kind() == reflect.Pointer {
					ft = ft.Elem()
				}
				if ft.Kind() == reflect.Struct {
					for n, sub := range jsonFields(ft) {
						if _, exists := out[n]; !exists {
							out[n] = sub
						}
					}
					continue
				}
			}
			name = f.Name
		}
		out[name] = f.Type
	}
	return out
}

// lookupJSONField resolves a document key against the field map with
// encoding/json's matching rule: exact match first, then case-insensitive.
func lookupJSONField(fields map[string]reflect.Type, key string) (reflect.Type, bool) {
	if t, ok := fields[key]; ok {
		return t, true
	}
	for name, t := range fields {
		if strings.EqualFold(name, key) {
			return t, true
		}
	}
	return nil, false
}
