package core

import (
	"reflect"
	"testing"

	"repro/internal/gmm"
	"repro/internal/policy"
	"repro/internal/workload"
)

// TestPrescoredReplayMatchesLive pins the batching contract: a replay fed
// precomputed block scores must produce exactly the result of a replay that
// scores one access at a time.
func TestPrescoredReplayMatchesLive(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.Train = gmm.TrainConfig{K: 8, MaxIters: 10, Seed: 1, MaxSamples: 4000}
	tr := workload.NewHashmap().Generate(30_000, 1)
	tg, err := Train(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scores := tg.PrescoreTrace(tr)
	for _, mode := range []policy.GMMMode{policy.GMMCachingOnly, policy.GMMEvictionOnly, policy.GMMCachingEviction} {
		live, err := Run(tr, tg.Policy(mode), cfg.GMMInference, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pre, err := Run(tr, tg.policyWithScores(mode, tg.Threshold, scores), cfg.GMMInference, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live, pre) {
			t.Errorf("%v: prescored replay diverged from live replay:\nlive %+v\npre  %+v", mode, live, pre)
		}
	}
}

// TestCompareTrainedDeterministicAcrossWorkers pins that the parallel policy
// fan-out does not perturb any result.
func TestCompareTrainedDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.Train = gmm.TrainConfig{K: 8, MaxIters: 10, Seed: 1, MaxSamples: 4000}
	tr := workload.NewHashmap().Generate(30_000, 1)
	run := func(workers int) *Comparison {
		c := cfg
		c.Workers = workers
		tg, err := Train(tr, c)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := CompareTrained("hashmap", tr, tg, c)
		if err != nil {
			t.Fatal(err)
		}
		return cmp
	}
	if seq, par := run(1), run(8); !reflect.DeepEqual(seq, par) {
		t.Errorf("comparison differs between 1 and 8 workers:\nseq %+v\npar %+v", seq, par)
	}
}

// TestPrescoreTraceLength sanity-checks the prescoring pass shape.
func TestPrescoreTraceLength(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.Train = gmm.TrainConfig{K: 4, MaxIters: 5, Seed: 1, MaxSamples: 2000}
	cfg.AutoThreshold = false
	tr := workload.NewHeap().Generate(10_000, 1)
	tg, err := Train(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scores := tg.PrescoreTrace(tr)
	if len(scores) != len(tr) {
		t.Fatalf("prescored %d accesses, want %d", len(scores), len(tr))
	}
	for i, s := range scores {
		if s < 0 {
			t.Fatalf("negative density %v at access %d", s, i)
		}
	}
}
