package core

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/gmm"
	"repro/internal/policy"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testConfig returns a small, fast configuration for unit tests: a 1 MiB
// cache and a tiny GMM.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Cache = cache.Config{SizeBytes: 1 << 20, BlockBytes: 4096, Ways: 8}
	cfg.Train = gmm.TrainConfig{K: 8, MaxIters: 15, Seed: 1, MaxSamples: 4000}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	t.Parallel()
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	c := DefaultConfig()
	c.HitLatency = 0
	if err := c.Validate(); err == nil {
		t.Error("zero hit latency accepted")
	}
	c = DefaultConfig()
	c.ThresholdPct = 2
	if err := c.Validate(); err == nil {
		t.Error("threshold pct > 1 accepted")
	}
	c = DefaultConfig()
	c.SSD = ssd.Profile{}
	if err := c.Validate(); err == nil {
		t.Error("invalid SSD profile accepted")
	}
}

func TestRunAllHitsLatency(t *testing.T) {
	t.Parallel()
	// Single page accessed repeatedly: 1 cold miss then hits at 1 us.
	var tr trace.Trace
	for i := 0; i < 1000; i++ {
		tr = append(tr, trace.Record{Op: trace.Read, Addr: 0})
	}
	tr.Stamp()
	res, err := Run(tr, policy.NewLRU(), 0, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Misses != 1 || res.Cache.Hits != 999 {
		t.Fatalf("stats = %+v", res.Cache)
	}
	// Mean = (75us + 999 * 1us) / 1000 ≈ 1.074us.
	if res.AvgLatency < time.Microsecond || res.AvgLatency > 2*time.Microsecond {
		t.Errorf("AvgLatency = %v, want ~1.07us", res.AvgLatency)
	}
	if res.SSDReads != 1 || res.SSDWrites != 0 {
		t.Errorf("SSD ops = %d/%d", res.SSDReads, res.SSDWrites)
	}
}

func TestRunMissLatencyIncludesWriteback(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	// Cache with a single set of 1 way: every distinct page evicts.
	cfg.Cache = cache.Config{SizeBytes: 4096, BlockBytes: 4096, Ways: 1}
	tr := trace.Trace{
		{Op: trace.Write, Addr: 0},                   // miss, fill, dirty
		{Op: trace.Read, Addr: 1 << trace.PageShift}, // miss, evict dirty 0
		{Op: trace.Read, Addr: 2 << trace.PageShift}, // miss, evict clean 1
	}
	tr.Stamp()
	res, err := Run(tr, policy.NewLRU(), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.WriteBacks != 1 {
		t.Fatalf("writebacks = %d, want 1", res.Cache.WriteBacks)
	}
	// Total: 75 (fill) + 75+900 (fill+wb) + 75 (fill) = 1125 us over 3 reqs.
	wantMean := time.Duration(1125000/3) * time.Nanosecond
	if res.AvgLatency != wantMean {
		t.Errorf("AvgLatency = %v, want %v", res.AvgLatency, wantMean)
	}
	if res.SSDReads != 3 || res.SSDWrites != 1 {
		t.Errorf("SSD ops = %d reads/%d writes", res.SSDReads, res.SSDWrites)
	}
}

func TestRunOverlapHidesEngineLatency(t *testing.T) {
	t.Parallel()
	tr := trace.Trace{{Op: trace.Read, Addr: 0}}
	tr.Stamp()
	cfg := testConfig()
	cfg.Overlap = true
	res, err := Run(tr, policy.NewLRU(), 3*time.Microsecond, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3us inference hides entirely behind the 75us SSD read.
	if res.AvgLatency != 75*time.Microsecond {
		t.Errorf("overlapped AvgLatency = %v, want 75us", res.AvgLatency)
	}
	if res.EngineBusy != 0 {
		t.Errorf("EngineBusy = %v, want 0 with overlap", res.EngineBusy)
	}

	cfg.Overlap = false
	res, err = Run(tr, policy.NewLRU(), 3*time.Microsecond, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency != 78*time.Microsecond {
		t.Errorf("serialized AvgLatency = %v, want 78us", res.AvgLatency)
	}
	if res.EngineBusy != 3*time.Microsecond {
		t.Errorf("EngineBusy = %v, want 3us", res.EngineBusy)
	}
}

func TestRunOverlapEngineSlowerThanSSD(t *testing.T) {
	t.Parallel()
	// If the engine were slower than the SSD (as an LSTM would be), the
	// excess becomes visible even with overlap.
	tr := trace.Trace{{Op: trace.Read, Addr: 0}}
	tr.Stamp()
	cfg := testConfig()
	cfg.Overlap = true
	res, err := Run(tr, policy.NewLRU(), 46300*time.Microsecond, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency != 46300*time.Microsecond {
		t.Errorf("AvgLatency = %v, want 46.3ms (engine-bound)", res.AvgLatency)
	}
	if res.EngineBusy != 46300*time.Microsecond-75*time.Microsecond {
		t.Errorf("EngineBusy = %v", res.EngineBusy)
	}
}

func TestTrainProducesUsableEngine(t *testing.T) {
	t.Parallel()
	tr := workload.NewParsec().Generate(60000, 1)
	cfg := testConfig()
	tg, err := Train(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tg.Result.Model.K() == 0 {
		t.Fatal("empty model")
	}
	if err := tg.Result.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	if tg.Quantized.K() != tg.Result.Model.K() {
		t.Error("quantized model K mismatch")
	}
	// Each Policy() call must be independent (fresh Algorithm 1 clock).
	p1 := tg.Policy(policy.GMMCachingEviction)
	p2 := tg.Policy(policy.GMMCachingEviction)
	if p1 == p2 {
		t.Error("Policy returned shared engine")
	}
	if p1.Threshold() != tg.Threshold {
		t.Error("policy threshold mismatch")
	}
}

func TestTrainQuantizedScorer(t *testing.T) {
	t.Parallel()
	tr := workload.NewParsec().Generate(40000, 2)
	cfg := testConfig()
	cfg.Quantized = true
	tg, err := Train(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tg.Scorer().(*gmm.QuantizedModel); !ok {
		t.Errorf("Scorer() = %T, want *gmm.QuantizedModel", tg.Scorer())
	}
	cfg.Quantized = false
	tg2, err := Train(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tg2.Scorer().(*gmm.Model); !ok {
		t.Errorf("Scorer() = %T, want *gmm.Model", tg2.Scorer())
	}
}

func TestCompareGMMBeatsLRU(t *testing.T) {
	t.Parallel()
	// The headline claim (Fig. 6): on a workload with hot clusters plus
	// scan pollution, the best GMM strategy has a lower miss rate than LRU.
	tr := workload.NewParsec().Generate(120000, 3)
	cfg := testConfig()
	cmp, err := Compare("parsec", tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best := cmp.BestGMM()
	if best.Cache.MissRate() >= cmp.LRU.Cache.MissRate() {
		t.Errorf("best GMM miss rate %.4f >= LRU %.4f",
			best.Cache.MissRate(), cmp.LRU.Cache.MissRate())
	}
	if cmp.LatencyReductionPct() <= 0 {
		t.Errorf("latency reduction = %.2f%%, want > 0", cmp.LatencyReductionPct())
	}
}

func TestComparisonBestGMMPicksMinimum(t *testing.T) {
	t.Parallel()
	mk := func(misses uint64) RunResult {
		return RunResult{Cache: cache.Stats{Hits: 100 - misses, Misses: misses}}
	}
	c := Comparison{
		LRU:      mk(50),
		Caching:  mk(30),
		Eviction: mk(20),
		Combined: mk(25),
	}
	if got := c.BestGMM(); got.Cache.Misses != 20 {
		t.Errorf("BestGMM picked %d misses, want 20", got.Cache.Misses)
	}
}

func TestLatencyReductionPctZeroLRU(t *testing.T) {
	t.Parallel()
	var c Comparison
	if c.LatencyReductionPct() != 0 {
		t.Error("zero LRU latency should give 0 reduction")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.Cache.Ways = 0
	if _, err := Run(trace.Trace{}, policy.NewLRU(), 0, cfg); err == nil {
		t.Error("invalid cache config accepted")
	}
	if _, err := Train(trace.Trace{}, cfg); err == nil {
		t.Error("Train accepted invalid config")
	}
}

func TestRunBypassedWritePaysProgramLatency(t *testing.T) {
	t.Parallel()
	// A policy that rejects everything: write misses go straight to SSD.
	cfg := testConfig()
	tr := trace.Trace{{Op: trace.Write, Addr: 0}}
	tr.Stamp()
	res, err := Run(tr, rejectAll{}, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency != 900*time.Microsecond {
		t.Errorf("bypassed write latency = %v, want 900us", res.AvgLatency)
	}
	if res.SSDWrites != 1 {
		t.Errorf("SSD writes = %d, want 1", res.SSDWrites)
	}
	// Bypassed read pays the read latency.
	tr2 := trace.Trace{{Op: trace.Read, Addr: 0}}
	tr2.Stamp()
	res, err = Run(tr2, rejectAll{}, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency != 75*time.Microsecond {
		t.Errorf("bypassed read latency = %v, want 75us", res.AvgLatency)
	}
}

type rejectAll struct{}

func (rejectAll) Name() string                      { return "reject-all" }
func (rejectAll) Attach(int, int)                   {}
func (rejectAll) OnAccess(cache.Request)            {}
func (rejectAll) OnHit(int, int, cache.Request)     {}
func (rejectAll) Admit(cache.Request) bool          { return false }
func (rejectAll) Victim(int, []cache.BlockView) int { return 0 }
func (rejectAll) OnEvict(int, int, uint64)          {}
func (rejectAll) OnInsert(int, int, cache.Request)  {}
