package core

import (
	"testing"

	"repro/internal/gmm"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workload"
)

// These integration tests exercise whole-pipeline properties that span
// modules: quantized inference end to end, the Belady bound, generative
// round trips, and classic-policy orderings on the benchmark workloads.

func TestQuantizedPipelineMatchesFloatClosely(t *testing.T) {
	t.Parallel()
	tr := workload.NewHashmap().Generate(80000, 4)
	cfgF := testConfig()
	tgF, err := Train(tr, cfgF)
	if err != nil {
		t.Fatal(err)
	}
	cfgQ := testConfig()
	cfgQ.Quantized = true
	tgQ, err := Train(tr, cfgQ)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(tr, tgF.Policy(policy.GMMCachingEviction), cfgF.GMMInference, cfgF)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := Run(tr, tgQ.Policy(policy.GMMCachingEviction), cfgQ.GMMInference, cfgQ)
	if err != nil {
		t.Fatal(err)
	}
	// Q16.16 quantization must not change the decisions enough to move
	// the miss rate by more than 2 percentage points.
	diff := rf.Cache.MissRate() - rq.Cache.MissRate()
	if diff < -0.02 || diff > 0.02 {
		t.Errorf("float miss %.4f vs quantized %.4f differ too much",
			rf.Cache.MissRate(), rq.Cache.MissRate())
	}
}

func TestNoPolicyBeatsBelady(t *testing.T) {
	t.Parallel()
	// Belady is the offline optimum for eviction; with admission the GMM
	// could in principle skip never-reused pages Belady caches, so compare
	// against belady-bypass, the admission-aware oracle.
	tr := workload.NewHeap().Generate(60000, 5)
	cfg := testConfig()
	tg, err := Train(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Run(tr, policy.NewBelady(tr, true), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	policies := map[string]func() (RunResult, error){
		"lru": func() (RunResult, error) { return Run(tr, policy.NewLRU(), 0, cfg) },
		"gmm": func() (RunResult, error) {
			return Run(tr, tg.Policy(policy.GMMCachingEviction), cfg.GMMInference, cfg)
		},
		"slru":  func() (RunResult, error) { return Run(tr, policy.NewSLRU(), 0, cfg) },
		"srrip": func() (RunResult, error) { return Run(tr, policy.NewSRRIP(), 0, cfg) },
	}
	for name, run := range policies {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache.MissRate() < oracle.Cache.MissRate()-1e-9 {
			t.Errorf("%s miss rate %.4f beats the Belady-bypass oracle %.4f",
				name, res.Cache.MissRate(), oracle.Cache.MissRate())
		}
	}
}

func TestSynthesizedTraceDrivesSystem(t *testing.T) {
	t.Parallel()
	// Generative round trip at the system level: train on a benchmark,
	// synthesize a trace from the model, and run the full pipeline on the
	// synthetic trace.
	orig := workload.NewParsec().Generate(60000, 6)
	cfg := testConfig()
	tg, err := Train(orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	synth, err := gmm.SynthesizeTrace(tg.Result.Model, tg.Norm, cfg.Transform, 30000, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare("parsec-synth", synth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic trace is by construction GMM-shaped: the engine must
	// not lose to LRU on it.
	if cmp.BestGMM().Cache.MissRate() > cmp.LRU.Cache.MissRate()+1e-9 {
		t.Errorf("GMM lost on its own synthetic trace: %.4f vs %.4f",
			cmp.BestGMM().Cache.MissRate(), cmp.LRU.Cache.MissRate())
	}
}

func TestAllPoliciesRunAllBenchmarks(t *testing.T) {
	t.Parallel()
	// Smoke matrix: every policy engine must survive every benchmark
	// without violating cache invariants. Short traces keep it quick.
	if testing.Short() {
		t.Skip("matrix test skipped in -short mode")
	}
	cfg := testConfig()
	for _, g := range workload.Registry() {
		tr := g.Generate(15000, 8)
		for _, mk := range []func() (string, func() (RunResult, error)){
			func() (string, func() (RunResult, error)) {
				return "lru", func() (RunResult, error) { return Run(tr, policy.NewLRU(), 0, cfg) }
			},
			func() (string, func() (RunResult, error)) {
				return "fifo", func() (RunResult, error) { return Run(tr, policy.NewFIFO(), 0, cfg) }
			},
			func() (string, func() (RunResult, error)) {
				return "lfu", func() (RunResult, error) { return Run(tr, policy.NewLFU(), 0, cfg) }
			},
			func() (string, func() (RunResult, error)) {
				return "random", func() (RunResult, error) { return Run(tr, policy.NewRandom(3), 0, cfg) }
			},
			func() (string, func() (RunResult, error)) {
				return "clock", func() (RunResult, error) { return Run(tr, policy.NewClock(), 0, cfg) }
			},
			func() (string, func() (RunResult, error)) {
				return "slru", func() (RunResult, error) { return Run(tr, policy.NewSLRU(), 0, cfg) }
			},
			func() (string, func() (RunResult, error)) {
				return "srrip", func() (RunResult, error) { return Run(tr, policy.NewSRRIP(), 0, cfg) }
			},
			func() (string, func() (RunResult, error)) {
				return "belady", func() (RunResult, error) { return Run(tr, policy.NewBelady(tr, false), 0, cfg) }
			},
		} {
			name, run := mk()
			res, err := run()
			if err != nil {
				t.Fatalf("%s on %s: %v", name, g.Name(), err)
			}
			if res.Cache.Accesses() != 15000 {
				t.Errorf("%s on %s: %d accesses", name, g.Name(), res.Cache.Accesses())
			}
		}
	}
}

func TestTrainWithChooseKIntegration(t *testing.T) {
	t.Parallel()
	// ChooseK feeding the deployment path: pick K by BIC, then run the
	// selected model through the simulator.
	tr := workload.NewMemtier().Generate(50000, 9)
	cfg := testConfig()
	samples := trace.Preprocess(tr, cfg.Transform)
	norm := trace.FitNormalizer(samples)
	best, sweep, err := gmm.ChooseK(norm.ApplyAll(samples),
		[]int{2, 8, 16}, gmm.TrainConfig{MaxIters: 10, Seed: 1, MaxSamples: 4000}, gmm.ByBIC)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 3 {
		t.Fatalf("sweep entries = %d", len(sweep))
	}
	quant, _ := gmm.Quantize(best.Result.Model)
	tg := &TrainedGMM{
		Result:    best.Result,
		Quantized: quant,
		Norm:      norm,
		Threshold: 0,
		Transform: cfg.Transform,
	}
	res, err := Run(tr, tg.Policy(policy.GMMEvictionOnly), cfg.GMMInference, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Accesses() != 50000 {
		t.Errorf("accesses = %d", res.Cache.Accesses())
	}
}

func TestCalibrateThresholdForLoadedModel(t *testing.T) {
	t.Parallel()
	// A model loaded from disk arrives without a calibrated threshold; the
	// exported sweep must pick one at least as good (on the calibration
	// trace) as any fixed quantile.
	tr := workload.NewDLRM().Generate(40000, 10)
	cfg := testConfig()
	tg, err := Train(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wipe the threshold as a fresh load would and re-calibrate.
	loaded := &TrainedGMM{
		Result:    tg.Result,
		Quantized: tg.Quantized,
		Norm:      tg.Norm,
		Transform: tg.Transform,
	}
	th, err := CalibrateThreshold(tr, loaded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold != th {
		t.Error("threshold not stored in the bundle")
	}
	calibrated, err := Run(tr, loaded.Policy(policy.GMMCachingEviction), cfg.GMMInference, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate fixed choice: threshold at the 50% quantile.
	fixed := *loaded
	samples := loaded.Norm.ApplyAll(trace.Preprocess(tr, loaded.Transform))
	fixed.Threshold = policy.CalibrateThreshold(loaded.Scorer(), samples, 0.5)
	fixedRes, err := Run(tr, fixed.Policy(policy.GMMCachingEviction), cfg.GMMInference, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calibrated.Cache.MissRate() > fixedRes.Cache.MissRate()+1e-9 {
		t.Errorf("calibrated threshold miss %.4f worse than fixed-quantile %.4f",
			calibrated.Cache.MissRate(), fixedRes.Cache.MissRate())
	}
	cfgBad := cfg
	cfgBad.Cache.Ways = 0
	if _, err := CalibrateThreshold(tr, loaded, cfgBad); err == nil {
		t.Error("invalid config accepted")
	}
}
