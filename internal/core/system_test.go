package core

import (
	"testing"
	"time"

	"repro/internal/cxl"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testSystemConfig() SystemConfig {
	cfg := DefaultSystemConfig(policy.NewLRU())
	cfg.Core = testConfig()
	cfg.AddressMap = cxl.AddressMap{HostBytes: 1 << 20, ExpandedBytes: 1 << 30}
	return cfg
}

func TestNewSystemValidation(t *testing.T) {
	t.Parallel()
	cfg := testSystemConfig()
	cfg.Policy = nil
	if _, err := NewSystem(cfg); err == nil {
		t.Error("nil policy accepted")
	}
	cfg = testSystemConfig()
	cfg.HostDRAMLatency = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Error("zero host latency accepted")
	}
	cfg = testSystemConfig()
	cfg.AddressMap = cxl.AddressMap{}
	if _, err := NewSystem(cfg); err == nil {
		t.Error("empty address map accepted")
	}
	cfg = testSystemConfig()
	cfg.Core.Cache.Ways = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Error("invalid core config accepted")
	}
}

func TestSystemHostPathIsFast(t *testing.T) {
	t.Parallel()
	s, err := NewSystem(testSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	lat, err := s.Access(0, false) // host DRAM
	if err != nil {
		t.Fatal(err)
	}
	if lat != 100*time.Nanosecond {
		t.Errorf("host access latency = %v, want 100ns", lat)
	}
	st := s.Stats()
	if st.HostAccesses != 1 || st.ExpandedAccesses != 0 {
		t.Errorf("routing counters wrong: %+v", st)
	}
	if st.Link.Messages != 0 {
		t.Error("host access crossed the CXL link")
	}
}

func TestSystemExpandedMissAndHit(t *testing.T) {
	t.Parallel()
	s, err := NewSystem(testSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(1<<20) + 42*trace.PageSize
	// Cold miss: link + SSD read + HBM fill.
	miss, err := s.Access(addr, false)
	if err != nil {
		t.Fatal(err)
	}
	if miss < 75*time.Microsecond {
		t.Errorf("miss latency %v below the SSD read floor", miss)
	}
	// Hit: link + HBM only.
	hit, err := s.Access(addr, false)
	if err != nil {
		t.Fatal(err)
	}
	if hit >= miss {
		t.Errorf("hit %v not faster than miss %v", hit, miss)
	}
	if hit < time.Microsecond {
		t.Errorf("hit %v below the HBM floor", hit)
	}
	st := s.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v", st.Cache)
	}
	if st.Link.Messages != 4 { // 2 round trips
		t.Errorf("link messages = %d, want 4", st.Link.Messages)
	}
	if st.SSD.Reads != 1 {
		t.Errorf("SSD reads = %d, want 1", st.SSD.Reads)
	}
}

func TestSystemInvalidAddress(t *testing.T) {
	t.Parallel()
	s, err := NewSystem(testSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Access(1<<20+1<<30, false); err == nil {
		t.Error("out-of-range address accepted")
	}
	if s.Stats().InvalidAccesses != 1 {
		t.Error("invalid access not counted")
	}
}

func TestSystemOverheadOverlap(t *testing.T) {
	t.Parallel()
	cfg := testSystemConfig()
	cfg.PolicyOverhead = 3 * time.Microsecond
	cfg.Core.Overlap = true
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(1 << 20)
	overlapped, err := s.Access(addr, false)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Core.Overlap = false
	s2, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serialized, err := s2.Access(addr, false)
	if err != nil {
		t.Fatal(err)
	}
	if serialized-overlapped != 3*time.Microsecond {
		t.Errorf("serialization penalty = %v, want 3us", serialized-overlapped)
	}
}

func TestSystemReplayExpanded(t *testing.T) {
	t.Parallel()
	tr := workload.NewHashmap().Generate(20000, 1)
	s, err := NewSystem(testSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReplayExpanded(tr); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ExpandedAccesses != 20000 {
		t.Errorf("expanded accesses = %d, want 20000", st.ExpandedAccesses)
	}
	if st.Overall.Count != 20000 {
		t.Errorf("latency samples = %d", st.Overall.Count)
	}
	if st.Device.Count != 20000 || st.Host.Count != 0 {
		t.Error("per-region summaries wrong")
	}
	if st.Overall.Mean <= time.Microsecond {
		t.Errorf("mean latency %v implausibly low", st.Overall.Mean)
	}
	// Link flit accounting: every request is one round trip with a 4 KiB
	// payload on one leg = 1 + 64 flits.
	if st.Link.Flits != 20000*65 {
		t.Errorf("flits = %d, want %d", st.Link.Flits, 20000*65)
	}
}

func TestSystemMixedHostAndExpanded(t *testing.T) {
	t.Parallel()
	s, err := NewSystem(testSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Access(uint64(i)*64, false); err != nil { // host
			t.Fatal(err)
		}
		if _, err := s.Access(1<<20+uint64(i%4)*trace.PageSize, true); err != nil { // expanded
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.HostAccesses != 100 || st.ExpandedAccesses != 100 {
		t.Errorf("routing = %d host / %d expanded", st.HostAccesses, st.ExpandedAccesses)
	}
	// Host mean must be far below device mean.
	if st.Host.Mean >= st.Device.Mean {
		t.Errorf("host mean %v >= device mean %v", st.Host.Mean, st.Device.Mean)
	}
}

func TestSystemWithGMMEngine(t *testing.T) {
	t.Parallel()
	// Integration: train a GMM and run it as the device policy engine in
	// the whole-system model.
	tr := workload.NewHashmap().Generate(40000, 2)
	coreCfg := testConfig()
	tg, err := Train(tr, coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testSystemConfig()
	cfg.Core = coreCfg
	cfg.Policy = tg.Policy(policy.GMMCachingEviction)
	cfg.PolicyOverhead = coreCfg.GMMInference
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReplayExpanded(tr); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Cache.Accesses() != 40000 {
		t.Errorf("cache accesses = %d", st.Cache.Accesses())
	}
	if st.Cache.HitRate() == 0 {
		t.Error("GMM-managed cache produced no hits")
	}
}
