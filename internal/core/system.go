package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/hbm"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/trace"
)

// System models the complete Fig. 1 picture, one level above Run: a host
// with native DRAM, a CXL.mem link, and the ICGMM device (DRAM cache +
// policy engine + SSD) behind it. Requests carry full unified-space
// physical addresses; the address map routes them either to host memory
// (served locally) or across the link into the device.
//
// Run() remains the Table 1 workhorse — it operates directly in device page
// space with the paper's measured end-to-end constants. System exists for
// whole-machine studies: how much host traffic the expansion absorbs, what
// the link adds, and what the blended average access time looks like.
type System struct {
	cfg      SystemConfig
	addrMap  cxl.AddressMap
	link     *cxl.Link
	devCache *cache.Cache
	devMem   *hbm.Memory
	devSSD   *ssd.Device
	// timing is the shared flat device model (internal/device) the serve
	// path also uses; System owns the functional cache and routing, the
	// model owns the miss/overhead/link arithmetic.
	timing *device.Flat

	now        int64
	hostHits   stats.Counter
	expanded   stats.Counter
	invalid    stats.Counter
	latency    *stats.Histogram
	hostLat    *stats.Histogram
	devLat     *stats.Histogram
	hostDRAMNs int64
}

// SystemConfig assembles a System.
type SystemConfig struct {
	// Core is the device-side configuration (cache, SSD, latencies).
	Core Config
	// AddressMap lays out host DRAM and the expanded region.
	AddressMap cxl.AddressMap
	// Link characterizes the CXL port.
	Link cxl.LinkConfig
	// HBM models the device DRAM banks.
	HBM hbm.Config
	// HostDRAMLatency is the host's native memory access time.
	HostDRAMLatency time.Duration
	// Policy is the device cache policy engine.
	Policy cache.Policy
	// PolicyOverhead is the engine's per-miss inference latency.
	PolicyOverhead time.Duration
}

// DefaultSystemConfig mirrors the paper's setup on a 16 GiB host expanding
// into a 1 TiB SSD.
func DefaultSystemConfig(pol cache.Policy) SystemConfig {
	return SystemConfig{
		Core:            DefaultConfig(),
		AddressMap:      cxl.DefaultAddressMap(),
		Link:            cxl.DefaultLinkConfig(),
		HBM:             hbm.DefaultConfig(),
		HostDRAMLatency: 100 * time.Nanosecond,
		Policy:          pol,
	}
}

// NewSystem wires the components together.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Policy == nil {
		return nil, errors.New("core: system needs a policy engine")
	}
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.AddressMap.Validate(); err != nil {
		return nil, err
	}
	if cfg.HostDRAMLatency <= 0 {
		return nil, errors.New("core: non-positive host DRAM latency")
	}
	c, err := cache.New(cfg.Core.Cache, cfg.Policy)
	if err != nil {
		return nil, err
	}
	link, err := cxl.NewLink(cfg.Link)
	if err != nil {
		return nil, err
	}
	mem, err := hbm.New(cfg.HBM)
	if err != nil {
		return nil, err
	}
	dev, err := ssd.New(cfg.Core.SSD, 8)
	if err != nil {
		return nil, err
	}
	return &System{
		cfg:      cfg,
		addrMap:  cfg.AddressMap,
		link:     link,
		devCache: c,
		devMem:   mem,
		devSSD:   dev,
		timing: &device.Flat{
			Mem:        mem,
			Dev:        dev,
			Link:       link,
			OverheadNs: cfg.PolicyOverhead.Nanoseconds(),
			Overlap:    cfg.Core.Overlap,
		},
		latency:    stats.DefaultLatencyHistogram(),
		hostLat:    stats.DefaultLatencyHistogram(),
		devLat:     stats.DefaultLatencyHistogram(),
		hostDRAMNs: cfg.HostDRAMLatency.Nanoseconds(),
	}, nil
}

// Access issues one unified-space request and returns its latency. Invalid
// addresses return an error without advancing time.
func (s *System) Access(addr uint64, write bool) (time.Duration, error) {
	switch s.addrMap.Route(addr) {
	case cxl.RegionHost:
		s.hostHits.Inc()
		lat := s.hostDRAMNs
		s.latency.Observe(lat)
		s.hostLat.Observe(lat)
		s.now += lat
		return time.Duration(lat), nil
	case cxl.RegionExpanded:
		page, err := s.addrMap.DevicePage(addr)
		if err != nil {
			return 0, err
		}
		s.expanded.Inc()
		lat := s.deviceAccess(page, write)
		s.latency.Observe(lat)
		s.devLat.Observe(lat)
		s.now += lat
		return time.Duration(lat), nil
	default:
		s.invalid.Inc()
		return 0, fmt.Errorf("core: address %#x outside the unified space", addr)
	}
}

// deviceAccess runs the device-side path — functional cache lookup, then the
// shared flat timing model (link round trip wrapping HBM/SSD service plus
// policy-engine overhead) — returning the total latency in ns.
func (s *System) deviceAccess(page uint64, write bool) int64 {
	res := s.devCache.Access(page, write)
	rt, dev, _ := s.timing.Serve(page, device.OutcomeOf(res, write), s.now)
	return rt + dev
}

// SystemStats summarizes a run.
type SystemStats struct {
	HostAccesses     uint64
	ExpandedAccesses uint64
	InvalidAccesses  uint64
	Cache            cache.Stats
	Link             cxl.Stats
	SSD              ssd.Stats
	// Overall/Host/Device are latency summaries for all, host-routed and
	// expanded-routed requests respectively.
	Overall, Host, Device stats.Summary
}

// Stats returns a snapshot.
func (s *System) Stats() SystemStats {
	return SystemStats{
		HostAccesses:     s.hostHits.Value(),
		ExpandedAccesses: s.expanded.Value(),
		InvalidAccesses:  s.invalid.Value(),
		Cache:            s.devCache.Stats(),
		Link:             s.link.Stats(),
		SSD:              s.devSSD.Stats(),
		Overall:          s.latency.Summarize(),
		Host:             s.hostLat.Summarize(),
		Device:           s.devLat.Summarize(),
	}
}

// ReplayExpanded replays a device-page trace through the expanded region
// (offsetting each page into the unified space), the bridge from the
// benchmark traces to whole-system simulation.
func (s *System) ReplayExpanded(tr trace.Trace) error {
	base := s.addrMap.HostBytes
	for _, r := range tr {
		addr := base + r.Addr
		if _, err := s.Access(addr, r.Op == trace.Write); err != nil {
			return err
		}
	}
	return nil
}
