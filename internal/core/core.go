// Package core assembles the full ICGMM system of Fig. 1: host requests
// enter the unified CXL memory space; requests routed to the expanded region
// hit the device-side DRAM cache managed by a policy engine; misses pay the
// SSD penalty, with the GMM inference overlapped against the SSD access by
// the dataflow architecture (Sec. 4.3).
//
// The package provides offline GMM training on a trace (the Sec. 3 flow),
// the closed-loop latency simulator behind Table 1, and the policy
// comparison harness behind Fig. 6.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/gmm"
	"repro/internal/policy"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config gathers every knob of the end-to-end system. Defaults reproduce
// the paper's case study (Sec. 5.1).
type Config struct {
	// Cache is the DRAM cache geometry: 64 MiB, 4 KiB blocks, 8-way.
	Cache cache.Config
	// SSD is the emulated storage profile: TLC, 75 us read / 900 us write.
	SSD ssd.Profile
	// HitLatency is the measured end-to-end DRAM cache hit time (1 us).
	HitLatency time.Duration
	// GMMInference is the measured policy-engine inference time (3 us).
	GMMInference time.Duration
	// Overlap enables the dataflow overlap of GMM inference with SSD
	// access (Sec. 4.3); disabling it serializes the two, the
	// configuration the overlap ablation measures.
	Overlap bool
	// Transform holds the Sec. 3.1 trace-processing parameters.
	Transform trace.TransformConfig
	// Train holds the EM training parameters (K = 256 in the paper).
	Train gmm.TrainConfig
	// ThresholdPct is the admission-threshold quantile over training-set
	// scores (see policy.CalibrateThreshold). It is the starting point;
	// with AutoThreshold set, Train sweeps ThresholdCandidates and keeps
	// the quantile that minimizes simulated miss rate on a calibration
	// slice of the trace (the paper picks its threshold empirically the
	// same way it picks the Algorithm 1 window sizes).
	ThresholdPct float64
	// AutoThreshold enables the empirical threshold sweep.
	AutoThreshold bool
	// ThresholdCandidates are the quantiles the sweep tries; empty uses a
	// default ladder.
	ThresholdCandidates []float64
	// CalibrationRequests bounds the calibration slice length.
	CalibrationRequests int
	// Quantized runs inference through the fixed-point weight-buffer model
	// instead of float64, as the hardware does.
	Quantized bool
	// Workers bounds the harness parallelism (policy comparisons, threshold
	// sweeps): 0 means one worker per core, 1 forces sequential execution.
	// It affects wall-clock only — results are bit-identical at any value.
	Workers int
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Cache:         cache.DefaultConfig(),
		SSD:           ssd.TLC(),
		HitLatency:    time.Microsecond,
		GMMInference:  3 * time.Microsecond,
		Overlap:       true,
		Transform:     trace.DefaultTransformConfig(),
		Train:         gmm.DefaultTrainConfig(),
		ThresholdPct:  0.02,
		AutoThreshold: true,
	}
}

// defaultThresholdCandidates is the quantile ladder the empirical sweep
// tries: from "admit everything" to "admit only the hottest half".
var defaultThresholdCandidates = []float64{0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5}

// runner builds the task runner for this configuration's worker bound.
func (c Config) runner() *engine.Runner { return engine.NewRunner(c.Workers) }

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if err := c.SSD.Validate(); err != nil {
		return err
	}
	if c.HitLatency <= 0 {
		return errors.New("core: non-positive hit latency")
	}
	if c.GMMInference < 0 {
		return errors.New("core: negative GMM inference latency")
	}
	if c.ThresholdPct < 0 || c.ThresholdPct > 1 {
		return errors.New("core: threshold percentile outside [0,1]")
	}
	return nil
}

// TrainedGMM bundles everything a deployed policy engine needs: the model,
// the coordinate normalizer, the calibrated admission threshold, and the
// windowing parameters that must match between training and inference.
type TrainedGMM struct {
	Result    *gmm.TrainResult
	Quantized *gmm.QuantizedModel
	// QuantReport records how faithfully the weight-buffer quantization
	// represented the model (clamp count, worst representable error).
	QuantReport gmm.QuantReport
	Norm        trace.Normalizer
	Threshold   float64
	Transform   trace.TransformConfig
	useQuant    bool
}

// Train runs the offline Sec. 3 flow on a trace: preprocess, fit the GMM
// with EM, quantize for the weight buffer, and calibrate the admission
// threshold on the training scores.
func Train(tr trace.Trace, cfg Config) (*TrainedGMM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tcfg := cfg.Train
	if tcfg.Workers == 0 {
		// EM's E-step shards over the same worker bound as the harness
		// fan-outs; both zero means one worker per core either way.
		tcfg.Workers = cfg.Workers
	}
	res, norm, err := gmm.FitTrace(tr, cfg.Transform, tcfg)
	if err != nil {
		return nil, fmt.Errorf("core: training GMM: %w", err)
	}
	samples := norm.ApplyAll(trace.Preprocess(tr, cfg.Transform))
	quant, qrep := gmm.Quantize(res.Model)
	if cfg.Quantized && qrep.Saturated > 0 {
		return nil, fmt.Errorf("core: quantized inference requested but %d model constants saturate Q16.16", qrep.Saturated)
	}
	var scorer policy.Scorer = res.Model
	if cfg.Quantized {
		scorer = quant
	}
	tg := &TrainedGMM{
		Result:      res,
		Quantized:   quant,
		QuantReport: qrep,
		Norm:        norm,
		Transform:   cfg.Transform,
		useQuant:    cfg.Quantized,
	}
	tg.Threshold = policy.CalibrateThreshold(scorer, samples, cfg.ThresholdPct)
	if cfg.AutoThreshold {
		if th, err := sweepThreshold(tr, tg, samples, cfg); err == nil {
			tg.Threshold = th
		} else {
			return nil, err
		}
	}
	return tg, nil
}

// CalibrateThreshold re-runs the empirical admission-threshold sweep for a
// TrainedGMM against a (possibly different) trace — the path for models
// loaded from disk, where Train's in-line sweep never ran. The bundle's
// Threshold is updated in place and also returned.
func CalibrateThreshold(tr trace.Trace, tg *TrainedGMM, cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	samples := tg.Norm.ApplyAll(trace.Preprocess(tr, tg.Transform))
	th, err := sweepThreshold(tr, tg, samples, cfg)
	if err != nil {
		return 0, err
	}
	tg.Threshold = th
	return th, nil
}

// sweepThreshold empirically selects the admission threshold: for each
// candidate quantile it simulates the combined caching+eviction strategy on
// a calibration slice of the trace and keeps the quantile with the lowest
// miss rate. Candidates whose thresholds coincide are simulated once.
//
// The candidate simulations share one batched scoring pass: per-access GMM
// scores depend only on the trace and the model, never on the threshold, so
// they are precomputed in blocks and every candidate replay reuses them. The
// surviving candidate replays then run in parallel on cfg.Workers workers;
// the selection scan stays sequential in candidate order, so the sweep picks
// the same threshold as the original inline loop at any worker count.
func sweepThreshold(tr trace.Trace, tg *TrainedGMM, samples []trace.Sample, cfg Config) (float64, error) {
	cands := cfg.ThresholdCandidates
	if len(cands) == 0 {
		cands = defaultThresholdCandidates
	}
	// The sweep simulates on the whole trace by default: a contiguous
	// sub-window would see only one phase of phased workloads and overfit
	// the threshold to it. CalibrationRequests > 0 bounds the cost for
	// very long traces.
	slice := tr
	if limit := cfg.CalibrationRequests; limit > 0 && len(slice) > limit {
		start := (len(slice) - limit) / 2
		slice = slice[start : start+limit]
	}
	// Threshold 0 admits everything (densities are non-negative), making
	// the combined strategy degrade gracefully to eviction-only when
	// admission filtering cannot help this trace.
	thresholds := append([]float64{0}, policy.CalibrateThresholds(tg.Scorer(), samples, cands)...)
	seen := make(map[float64]bool, len(thresholds))
	unique := thresholds[:0]
	for _, th := range thresholds {
		if !seen[th] {
			seen[th] = true
			unique = append(unique, th)
		}
	}
	scores := tg.PrescoreTrace(slice)
	results, err := engine.Map(cfg.runner(), unique, func(_ int, th float64) (RunResult, error) {
		pol := tg.policyWithScores(policy.GMMCachingEviction, th, scores)
		res, err := Run(slice, pol, cfg.GMMInference, cfg)
		if err != nil {
			return RunResult{}, fmt.Errorf("core: threshold sweep: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return 0, err
	}
	bestTh := tg.Threshold
	bestMiss := 2.0
	for i, res := range results {
		if mr := res.Cache.MissRate(); mr < bestMiss {
			bestMiss = mr
			bestTh = unique[i]
		}
	}
	return bestTh, nil
}

// Scorer returns the inference engine the deployment uses (float or
// quantized per the training config).
func (tg *TrainedGMM) Scorer() policy.Scorer {
	if tg.useQuant {
		return tg.Quantized
	}
	return tg.Result.Model
}

// Policy builds a fresh policy engine for the given Fig. 6 strategy. Each
// call returns an independent engine (with its own Algorithm 1 clock), so
// one trained model can drive several simulations.
func (tg *TrainedGMM) Policy(mode policy.GMMMode) *policy.GMM {
	return tg.policyWithScores(mode, tg.Threshold, nil)
}

// PolicyPrescored is Policy with precomputed per-access scores from
// PrescoreTrace: the replay skips live inference and reads scores by access
// index. One prescoring pass serves every mode replayed over the same
// trace.
func (tg *TrainedGMM) PolicyPrescored(mode policy.GMMMode, scores []float64) *policy.GMM {
	return tg.policyWithScores(mode, tg.Threshold, scores)
}

// policyWithScores builds a policy engine with an explicit threshold and
// optional precomputed per-access scores (see PrescoreTrace).
func (tg *TrainedGMM) policyWithScores(mode policy.GMMMode, threshold float64, scores []float64) *policy.GMM {
	return policy.NewGMM(policy.GMMConfig{
		Scorer:     tg.Scorer(),
		Normalizer: tg.Norm,
		Transform:  tg.Transform,
		Threshold:  threshold,
		Mode:       mode,
		Scores:     scores,
	})
}

// PrescoreTrace computes the per-access GMM score for every request of the
// trace in blocks (through the scorer's batch path when it has one), exactly
// mirroring the timestamp clock a live policy engine would run. The returned
// slice feeds policy replays via GMMConfig.Scores, replacing one inference
// call per access with block evaluation; batched scoring is bit-identical to
// live scoring, so replay results do not change.
//
// The scores are threshold- and mode-independent, so one prescoring pass
// serves every policy variant replayed over the same trace.
func (tg *TrainedGMM) PrescoreTrace(tr trace.Trace) []float64 {
	pages := make([]float64, len(tr))
	times := make([]float64, len(tr))
	tt := trace.NewTimestampTransformer(tg.Transform)
	for i, rec := range tr {
		pages[i], times[i] = tg.Norm.ApplyPageTime(rec.Page(), tt.Next())
	}
	scores := make([]float64, len(tr))
	if bs, ok := tg.Scorer().(policy.BatchScorer); ok {
		bs.ScorePageTimeBatch(pages, times, scores)
	} else {
		s := tg.Scorer()
		for i := range scores {
			scores[i] = s.ScorePageTime(pages[i], times[i])
		}
	}
	return scores
}

// RunResult reports one simulation.
type RunResult struct {
	Policy string
	Cache  cache.Stats
	// AvgLatency is the mean per-request memory access latency, the
	// Table 1 metric.
	AvgLatency time.Duration
	// Latency summarizes the full latency distribution.
	Latency stats.Summary
	// SSDReads/SSDWrites count device operations (fills and write-backs).
	SSDReads, SSDWrites uint64
	// EngineBusy is the total time the policy engine spent on inference
	// that was NOT hidden by SSD access (0 with full overlap).
	EngineBusy time.Duration
}

// MissRatePct returns the miss rate in percent, the Fig. 6 unit.
func (r RunResult) MissRatePct() float64 { return 100 * r.Cache.MissRate() }

// Run drives the trace through a cache with the given policy engine and the
// paper's latency model:
//
//	hit                  -> HitLatency (1 us measured on board)
//	miss, admitted       -> SSD read (75 us) + SSD write-back (900 us) when
//	                        the victim block is dirty (975 us total penalty)
//	miss, bypassed read  -> SSD read straight to the host (75 us)
//	miss, bypassed write -> SSD program (900 us)
//
// policyOverhead is the engine's per-miss inference latency (3 us for the
// GMM, 0 for LRU); with cfg.Overlap it is hidden behind the SSD access
// (Sec. 4.3) and only any excess over the SSD latency is visible.
func Run(tr trace.Trace, pol cache.Policy, policyOverhead time.Duration, cfg Config) (RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return RunResult{}, err
	}
	c, err := cache.New(cfg.Cache, pol)
	if err != nil {
		return RunResult{}, err
	}
	dev, err := ssd.New(cfg.SSD, 8)
	if err != nil {
		return RunResult{}, err
	}
	hist := stats.DefaultLatencyHistogram()
	hitNs := cfg.HitLatency.Nanoseconds()
	engNs := policyOverhead.Nanoseconds()
	var now int64
	var engineBusy int64

	for _, rec := range tr {
		page := rec.Page()
		write := rec.Op == trace.Write
		res := c.Access(page, write)

		var lat int64
		switch {
		case res.Hit:
			lat = hitNs
		case res.Admitted:
			// Fill from SSD (write-allocate: even store misses first read
			// the page into the cache).
			done := dev.Access(ssd.OpRead, page, now)
			lat = done - now
			if res.WriteBack {
				wbDone := dev.Access(ssd.OpWrite, res.VictimPage, now)
				lat += wbDone - now
			}
		case write:
			// Bypassed store: program the SSD directly.
			done := dev.Access(ssd.OpWrite, page, now)
			lat = done - now
		default:
			// Bypassed load: SSD to host without caching.
			done := dev.Access(ssd.OpRead, page, now)
			lat = done - now
		}

		if !res.Hit && engNs > 0 {
			if cfg.Overlap {
				// The dataflow triggers the policy engine and the SSD
				// access concurrently; only inference beyond the SSD
				// latency shows up.
				if engNs > lat {
					engineBusy += engNs - lat
					lat = engNs
				}
			} else {
				engineBusy += engNs
				lat += engNs
			}
		}

		hist.Observe(lat)
		now += lat
	}

	devStats := dev.Stats()
	return RunResult{
		Policy:     pol.Name(),
		Cache:      c.Stats(),
		AvgLatency: time.Duration(int64(hist.Mean())),
		Latency:    hist.Summarize(),
		SSDReads:   devStats.Reads,
		SSDWrites:  devStats.Writes,
		EngineBusy: time.Duration(engineBusy),
	}, nil
}

// Comparison holds the Fig. 6 policy sweep for one benchmark: the LRU
// baseline and the three GMM strategies.
type Comparison struct {
	Benchmark string
	LRU       RunResult
	Caching   RunResult
	Eviction  RunResult
	Combined  RunResult
}

// BestGMM returns the GMM strategy with the lowest miss rate, the dashed
// bar Fig. 6 highlights per benchmark.
func (c Comparison) BestGMM() RunResult {
	best := c.Caching
	if c.Eviction.Cache.MissRate() < best.Cache.MissRate() {
		best = c.Eviction
	}
	if c.Combined.Cache.MissRate() < best.Cache.MissRate() {
		best = c.Combined
	}
	return best
}

// LatencyReductionPct returns the Table 1 metric: percent reduction of the
// best GMM strategy's average latency relative to LRU.
func (c Comparison) LatencyReductionPct() float64 {
	lru := float64(c.LRU.AvgLatency)
	if lru == 0 {
		return 0
	}
	return 100 * (lru - float64(c.BestGMM().AvgLatency)) / lru
}

// Compare trains a GMM on the trace and runs the four Fig. 6 policies over
// it with the paper's latency model.
func Compare(benchmark string, tr trace.Trace, cfg Config) (*Comparison, error) {
	tg, err := Train(tr, cfg)
	if err != nil {
		return nil, err
	}
	return CompareTrained(benchmark, tr, tg, cfg)
}

// CompareTrained is Compare with a pre-trained model, so callers can reuse
// one training run across configurations. The four policy replays are
// independent simulations, so they run as engine tasks on cfg.Workers
// workers, and the three GMM replays share one batched prescoring pass over
// the trace instead of scoring per miss.
func CompareTrained(benchmark string, tr trace.Trace, tg *TrainedGMM, cfg Config) (*Comparison, error) {
	scores := tg.PrescoreTrace(tr)
	tasks := []func() (RunResult, error){
		func() (RunResult, error) { return Run(tr, policy.NewLRU(), 0, cfg) },
		func() (RunResult, error) {
			return Run(tr, tg.policyWithScores(policy.GMMCachingOnly, tg.Threshold, scores), cfg.GMMInference, cfg)
		},
		func() (RunResult, error) {
			return Run(tr, tg.policyWithScores(policy.GMMEvictionOnly, tg.Threshold, scores), cfg.GMMInference, cfg)
		},
		func() (RunResult, error) {
			return Run(tr, tg.policyWithScores(policy.GMMCachingEviction, tg.Threshold, scores), cfg.GMMInference, cfg)
		},
	}
	results, err := engine.Map(cfg.runner(), tasks, func(_ int, task func() (RunResult, error)) (RunResult, error) {
		return task()
	})
	if err != nil {
		return nil, err
	}
	return &Comparison{
		Benchmark: benchmark,
		LRU:       results[0],
		Caching:   results[1],
		Eviction:  results[2],
		Combined:  results[3],
	}, nil
}
