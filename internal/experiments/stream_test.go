package experiments

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// collectSink retains emitted results for assertions.
type collectSink struct {
	got    []ScenarioResult
	closed bool
}

func (s *collectSink) Emit(r ScenarioResult) error {
	s.got = append(s.got, r)
	return nil
}
func (s *collectSink) Close() error { s.closed = true; return nil }

// TestRunGridStreamMatchesRunGrid: the streaming path must deliver exactly
// the buffered path's results, in grid order, at any worker count.
func TestRunGridStreamMatchesRunGrid(t *testing.T) {
	t.Parallel()
	o := fastOptions()
	scens, err := fastGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunGrid(o, scens, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		o.Config.Workers = workers
		var sink collectSink
		if err := RunGridStream(o, scens, &sink, nil); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(sink.got) != len(want) {
			t.Fatalf("workers=%d: streamed %d results, want %d", workers, len(sink.got), len(want))
		}
		for i := range want {
			if RecordFor(sink.got[i]) != RecordFor(want[i]) {
				t.Fatalf("workers=%d result %d: streamed %+v != buffered %+v",
					workers, i, RecordFor(sink.got[i]), RecordFor(want[i]))
			}
		}
	}
}

func TestRunGridStreamSinkErrorAborts(t *testing.T) {
	t.Parallel()
	o := fastOptions()
	scens, err := fastGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	if err := RunGridStream(o, scens, failAfter(2, boom), nil); !errors.Is(err, boom) {
		t.Fatalf("sink error not propagated: %v", err)
	}
}

type failingSink struct {
	n   int
	err error
}

func failAfter(n int, err error) *failingSink { return &failingSink{n: n, err: err} }
func (s *failingSink) Emit(ScenarioResult) error {
	if s.n == 0 {
		return s.err
	}
	s.n--
	return nil
}
func (s *failingSink) Close() error { return nil }

func TestJSONLSinkRoundTrip(t *testing.T) {
	t.Parallel()
	o := fastOptions()
	scens, err := fastGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := RunGridStream(o, scens, NewJSONLSink(&out), nil); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	var recs []GridRecord
	for sc.Scan() {
		var r GridRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != len(scens) {
		t.Fatalf("got %d JSONL records, want %d", len(recs), len(scens))
	}
	for i, r := range recs {
		if r.Index != i {
			t.Fatalf("record %d carries index %d; stream out of grid order", i, r.Index)
		}
		if r.Workload == "" || r.Policy == "" || r.AvgLatencyNs <= 0 {
			t.Fatalf("degenerate record: %+v", r)
		}
	}
}

func TestCSVSink(t *testing.T) {
	t.Parallel()
	o := fastOptions()
	scens, err := fastGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	sink := NewCSVSink(&out)
	if err := RunGridStream(o, scens, sink, nil); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(scens)+1 {
		t.Fatalf("got %d CSV rows, want header + %d", len(rows), len(scens))
	}
	if rows[0][0] != "index" || rows[0][8] != "miss_pct" {
		t.Fatalf("unexpected header: %v", rows[0])
	}
}

func TestSinkForPath(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	if _, err := SinkForPath("out.jsonl", &sb); err != nil {
		t.Error(err)
	}
	if _, err := SinkForPath("out.csv", &sb); err != nil {
		t.Error(err)
	}
	if _, err := SinkForPath("out.txt", &sb); err == nil {
		t.Error("unknown extension accepted")
	}
}
