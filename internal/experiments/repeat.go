package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RepeatedResult aggregates one benchmark's miss rates across seeds.
type RepeatedResult struct {
	Benchmark string
	Seeds     int
	// LRU and BestGMM accumulate the per-seed miss rates (percent).
	LRU, BestGMM stats.Welford
	// Decrease accumulates the per-seed (LRU − best GMM) deltas, which is
	// the right unit for a paired comparison: the delta's spread is much
	// tighter than either policy's own spread.
	Decrease stats.Welford
}

// RunRepeated replays the Fig. 6 comparison across several workload seeds
// and aggregates mean ± std, quantifying how sensitive the headline result
// is to trace randomness. Training repeats per seed, exactly as a fresh
// deployment would.
//
// The (benchmark, seed) grid is flattened into engine tasks and sharded over
// Config.Workers workers; aggregation walks the results in grid order, so
// the Welford accumulators see the same observation sequence — and produce
// the same bytes — at any worker count.
func RunRepeated(o Options, seeds []int64, progress io.Writer) ([]*RepeatedResult, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	type cell struct {
		g    workload.Generator
		seed int64
	}
	cells := make([]cell, 0, len(gens)*len(seeds))
	for _, g := range gens {
		for _, seed := range seeds {
			cells = append(cells, cell{g, seed})
		}
	}
	em := engine.NewOrderedEmitter(progress)
	defer em.Flush()
	type missPair struct{ lru, best float64 }
	pairs, err := engine.Map(o.runner(), cells, func(i int, c cell) (missPair, error) {
		tr := c.g.Generate(o.Requests, c.seed)
		cmp, err := core.Compare(c.g.Name(), tr, o.Config)
		if err != nil {
			return missPair{}, fmt.Errorf("experiments: %s seed %d: %w", c.g.Name(), c.seed, err)
		}
		p := missPair{lru: cmp.LRU.MissRatePct(), best: cmp.BestGMM().MissRatePct()}
		em.Emit(i, fmt.Sprintf("%-9s seed %-3d LRU %.2f%% best %.2f%%\n",
			c.g.Name(), c.seed, p.lru, p.best))
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*RepeatedResult, 0, len(gens))
	for gi, g := range gens {
		rr := &RepeatedResult{Benchmark: g.Name(), Seeds: len(seeds)}
		for si := range seeds {
			p := pairs[gi*len(seeds)+si]
			rr.LRU.Observe(p.lru)
			rr.BestGMM.Observe(p.best)
			rr.Decrease.Observe(p.lru - p.best)
		}
		out = append(out, rr)
	}
	return out, nil
}

// RepeatedTable renders the multi-seed aggregation.
func RepeatedTable(rs []*RepeatedResult) *stats.Table {
	t := stats.NewTable("Fig. 6 across seeds — miss rate (%) mean ± std",
		"Benchmark", "Seeds", "LRU", "Best GMM", "Decrease (pp)")
	for _, r := range rs {
		t.AddRowStrings(
			r.Benchmark,
			fmt.Sprint(r.Seeds),
			fmt.Sprintf("%.2f ± %.2f", r.LRU.Mean(), r.LRU.Std()),
			fmt.Sprintf("%.2f ± %.2f", r.BestGMM.Mean(), r.BestGMM.Std()),
			fmt.Sprintf("%.2f ± %.2f", r.Decrease.Mean(), r.Decrease.Std()),
		)
	}
	return t
}
