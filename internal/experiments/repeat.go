package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/stats"
)

// RepeatedResult aggregates one benchmark's miss rates across seeds.
type RepeatedResult struct {
	Benchmark string
	Seeds     int
	// LRU and BestGMM accumulate the per-seed miss rates (percent).
	LRU, BestGMM stats.Welford
	// Decrease accumulates the per-seed (LRU − best GMM) deltas, which is
	// the right unit for a paired comparison: the delta's spread is much
	// tighter than either policy's own spread.
	Decrease stats.Welford
}

// RunRepeated replays the Fig. 6 comparison across several workload seeds
// and aggregates mean ± std, quantifying how sensitive the headline result
// is to trace randomness. Training repeats per seed, exactly as a fresh
// deployment would.
func RunRepeated(o Options, seeds []int64, progress io.Writer) ([]*RepeatedResult, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	out := make([]*RepeatedResult, 0, len(gens))
	for _, g := range gens {
		rr := &RepeatedResult{Benchmark: g.Name(), Seeds: len(seeds)}
		for _, seed := range seeds {
			tr := g.Generate(o.Requests, seed)
			cmp, err := core.Compare(g.Name(), tr, o.Config)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s seed %d: %w", g.Name(), seed, err)
			}
			lru := cmp.LRU.MissRatePct()
			best := cmp.BestGMM().MissRatePct()
			rr.LRU.Observe(lru)
			rr.BestGMM.Observe(best)
			rr.Decrease.Observe(lru - best)
			if progress != nil {
				fmt.Fprintf(progress, "%-9s seed %-3d LRU %.2f%% best %.2f%%\n",
					g.Name(), seed, lru, best)
			}
		}
		out = append(out, rr)
	}
	return out, nil
}

// RepeatedTable renders the multi-seed aggregation.
func RepeatedTable(rs []*RepeatedResult) *stats.Table {
	t := stats.NewTable("Fig. 6 across seeds — miss rate (%) mean ± std",
		"Benchmark", "Seeds", "LRU", "Best GMM", "Decrease (pp)")
	for _, r := range rs {
		t.AddRowStrings(
			r.Benchmark,
			fmt.Sprint(r.Seeds),
			fmt.Sprintf("%.2f ± %.2f", r.LRU.Mean(), r.LRU.Std()),
			fmt.Sprintf("%.2f ± %.2f", r.BestGMM.Mean(), r.BestGMM.Std()),
			fmt.Sprintf("%.2f ± %.2f", r.Decrease.Mean(), r.Decrease.Std()),
		)
	}
	return t
}
