package experiments

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/stats"
)

// Table2 renders the policy-engine hardware comparison in the paper's
// Table 2 layout: resource utilization and inference latency for the LSTM
// baseline and the GMM engine, plus the GMM's gain row.
func Table2() *stats.Table {
	c := fpga.CompareEngines()
	t := stats.NewTable("Table 2 — policy engine resource utilization and latency",
		"Engine", "BRAM", "DSP", "LUT", "FF", "Latency")
	t.AddRowStrings("LSTM",
		fmt.Sprint(c.LSTM.BRAM), fmt.Sprint(c.LSTM.DSP),
		fmt.Sprint(c.LSTM.LUT), fmt.Sprint(c.LSTM.FF),
		fmt.Sprint(c.LSTM.Latency))
	t.AddRowStrings("GMM",
		fmt.Sprint(c.GMM.BRAM), fmt.Sprint(c.GMM.DSP),
		fmt.Sprint(c.GMM.LUT), fmt.Sprint(c.GMM.FF),
		fmt.Sprint(c.GMM.Latency))
	t.AddRowStrings("GMM gain",
		fmt.Sprintf("%.0fx", c.BRAMRatio),
		fmt.Sprintf("%.1fx", c.DSPRatio),
		fmt.Sprintf("%.1fx", c.LUTRatio),
		fmt.Sprintf("%.2fx", c.FFRatio),
		fmt.Sprintf("%.0fx faster", c.Speedup))
	return t
}
