package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gmm"
)

// fastOptions keeps experiment tests quick: short traces, small K, one or
// two benchmarks.
func fastOptions(benchmarks ...string) Options {
	o := DefaultOptions()
	o.Requests = 60_000
	o.Config.Train = gmm.TrainConfig{K: 16, MaxIters: 10, Seed: 1, MaxSamples: 5000}
	o.Benchmarks = benchmarks
	return o
}

func TestRunAllSingleBenchmark(t *testing.T) {
	t.Parallel()
	cmps, err := RunAll(fastOptions("hashmap"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 1 || cmps[0].Benchmark != "hashmap" {
		t.Fatalf("unexpected comparisons: %+v", cmps)
	}
	if cmps[0].LRU.Cache.Accesses() == 0 {
		t.Error("no traffic simulated")
	}
}

func TestRunAllUnknownBenchmark(t *testing.T) {
	t.Parallel()
	if _, err := RunAll(fastOptions("nosuch"), nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunAllProgressOutput(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	if _, err := RunAll(fastOptions("parsec"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "parsec") {
		t.Errorf("progress output missing benchmark name: %q", sb.String())
	}
}

func TestFig6TableLayout(t *testing.T) {
	t.Parallel()
	cmps, err := RunAll(fastOptions("heap"), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Fig6Table(cmps).String()
	for _, want := range []string{"Fig. 6", "heap", "LRU", "GMM caching-only", "Decrease"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 table missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Layout(t *testing.T) {
	t.Parallel()
	cmps, err := RunAll(fastOptions("heap"), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Table1(cmps).String()
	for _, want := range []string{"Table 1", "heap", "us", "Reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2MatchesPaperShape(t *testing.T) {
	t.Parallel()
	out := Table2().String()
	// The calibrated hardware model must print the paper's headline
	// values.
	for _, want := range []string{"339", "113", "58353", "46.3", "LSTM", "GMM gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Series(t *testing.T) {
	t.Parallel()
	spatial, temporal, err := Fig2Series("dlrm", 30_000, 1, 32, 500)
	if err != nil {
		t.Fatal(err)
	}
	if spatial.Len() != 32 {
		t.Errorf("spatial bins = %d, want 32", spatial.Len())
	}
	if temporal.Len() == 0 || temporal.Len() > 550 {
		t.Errorf("temporal points = %d", temporal.Len())
	}
	total := 0.0
	for _, y := range spatial.Y {
		total += y
	}
	if total != 30_000 {
		t.Errorf("spatial histogram mass %v, want 30000", total)
	}
	if _, _, err := Fig2Series("nosuch", 100, 1, 4, 4); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestAblationK(t *testing.T) {
	t.Parallel()
	o := fastOptions("hashmap")
	tbl, err := AblationK(o, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "K=4") || !strings.Contains(out, "K=8") {
		t.Errorf("ablation table missing K columns:\n%s", out)
	}
	if !strings.Contains(out, "hashmap") {
		t.Errorf("ablation table missing benchmark row:\n%s", out)
	}
}

func TestAblation1D(t *testing.T) {
	t.Parallel()
	tbl, err := Ablation1D(fastOptions("memtier"))
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"1D GMM", "2D GMM", "memtier"} {
		if !strings.Contains(out, want) {
			t.Errorf("1D ablation missing %q:\n%s", want, out)
		}
	}
}

func TestAblationThreshold(t *testing.T) {
	t.Parallel()
	o := fastOptions("parsec")
	o.Config.AutoThreshold = false
	tbl, err := AblationThreshold(o, []float64{0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "q=0.10") {
		t.Errorf("threshold ablation missing column:\n%s", tbl.String())
	}
}

func TestAblationWindow(t *testing.T) {
	t.Parallel()
	tbl, err := AblationWindow(fastOptions("parsec"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "w=32 shot=10000") {
		t.Errorf("window ablation missing paper config column:\n%s", tbl.String())
	}
}

func TestOverlapAblation(t *testing.T) {
	t.Parallel()
	tbl, err := OverlapAblation(fastOptions("heap"))
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "Overlapped") || !strings.Contains(out, "Serialized") {
		t.Errorf("overlap ablation layout wrong:\n%s", out)
	}
}

func TestDefaultOptionsAreValid(t *testing.T) {
	t.Parallel()
	o := DefaultOptions()
	if err := o.Config.Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	gens, err := o.generators()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 7 {
		t.Errorf("default generators = %d, want 7", len(gens))
	}
}

func TestComparisonIntegration(t *testing.T) {
	t.Parallel()
	// Cross-module integration: the full train+compare flow on a fast
	// config must produce self-consistent statistics.
	o := fastOptions("stream")
	cmps, err := RunAll(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cmps[0]
	for _, r := range []core.RunResult{c.LRU, c.Caching, c.Eviction, c.Combined} {
		if r.Cache.Accesses() != uint64(o.Requests) {
			t.Errorf("%s: %d accesses, want %d", r.Policy, r.Cache.Accesses(), o.Requests)
		}
		if r.AvgLatency <= 0 {
			t.Errorf("%s: non-positive latency", r.Policy)
		}
		if r.Cache.Hits+r.Cache.Misses != r.Cache.Accesses() {
			t.Errorf("%s: hits+misses != accesses", r.Policy)
		}
	}
}

func TestAblationPrecision(t *testing.T) {
	t.Parallel()
	o := fastOptions("hashmap")
	tbl, err := AblationPrecision(o)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"float64", "Q16.16", "diagonal cov", "hashmap"} {
		if !strings.Contains(out, want) {
			t.Errorf("precision ablation missing %q:\n%s", want, out)
		}
	}
}

func TestRunRepeated(t *testing.T) {
	t.Parallel()
	o := fastOptions("hashmap")
	o.Requests = 40_000
	rs, err := RunRepeated(o, []int64{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Seeds != 2 {
		t.Fatalf("results = %+v", rs)
	}
	if rs[0].LRU.Count() != 2 || rs[0].BestGMM.Count() != 2 {
		t.Error("per-seed observations missing")
	}
	out := RepeatedTable(rs).String()
	for _, want := range []string{"hashmap", "±", "Decrease"} {
		if !strings.Contains(out, want) {
			t.Errorf("repeated table missing %q:\n%s", want, out)
		}
	}
}

func TestRunRepeatedDefaultSeeds(t *testing.T) {
	t.Parallel()
	o := fastOptions("parsec")
	o.Requests = 30_000
	rs, err := RunRepeated(o, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Seeds != 3 {
		t.Errorf("default seeds = %d, want 3", rs[0].Seeds)
	}
}

func TestRunRepeatedUnknownBenchmark(t *testing.T) {
	t.Parallel()
	if _, err := RunRepeated(fastOptions("nope"), []int64{1}, nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
