// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5): Fig. 2 (access distributions), Fig. 6 (miss-rate
// comparison), Table 1 (average SSD access time), and Table 2 (policy-engine
// hardware cost), plus the ablation sweeps DESIGN.md calls out. The
// cmd/experiments binary and the repository benchmarks are thin wrappers
// over this package.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options configures a full experiment run.
type Options struct {
	// Requests is the trace length per benchmark.
	Requests int
	// Seed drives the workload generators.
	Seed int64
	// Config is the system configuration (cache geometry, SSD profile,
	// GMM training parameters).
	Config core.Config
	// Benchmarks restricts the run to the named benchmarks; empty means
	// all seven.
	Benchmarks []string
}

// DefaultOptions mirrors the paper's setup at a laptop-friendly trace
// length.
func DefaultOptions() Options {
	return Options{
		Requests: 600_000,
		Seed:     1,
		Config:   core.DefaultConfig(),
	}
}

// runner builds the task runner for the run's worker bound
// (Config.Workers: 0 = one per core, 1 = sequential).
func (o Options) runner() *engine.Runner { return engine.NewRunner(o.Config.Workers) }

func (o Options) generators() ([]workload.Generator, error) {
	if len(o.Benchmarks) == 0 {
		return workload.Registry(), nil
	}
	gens := make([]workload.Generator, 0, len(o.Benchmarks))
	for _, name := range o.Benchmarks {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		gens = append(gens, g)
	}
	return gens, nil
}

// RunAll trains and compares the four Fig. 6 policies on every selected
// benchmark. The returned comparisons feed both Fig. 6 and Table 1. When
// progress is non-nil, a line is printed per benchmark.
//
// Benchmarks run as engine tasks sharded over Config.Workers workers; the
// comparisons come back in benchmark order and the progress lines are
// serialized into the same order, so on a successful run the output is
// byte-identical at any worker count. (On failure the error is the same one
// a sequential loop would surface, but how many progress lines made it out
// first depends on scheduling.)
func RunAll(o Options, progress io.Writer) ([]*core.Comparison, error) {
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	em := engine.NewOrderedEmitter(progress)
	defer em.Flush()
	return engine.Map(o.runner(), gens, func(i int, g workload.Generator) (*core.Comparison, error) {
		tr := g.Generate(o.Requests, o.Seed)
		cmp, err := core.Compare(g.Name(), tr, o.Config)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", g.Name(), err)
		}
		em.Emit(i, fmt.Sprintf("%-9s LRU %.2f%%  best GMM %.2f%% (%s)  latency %-8v -> %-8v (-%.2f%%)\n",
			g.Name(), 100*cmp.LRU.Cache.MissRate(), 100*cmp.BestGMM().Cache.MissRate(),
			cmp.BestGMM().Policy, cmp.LRU.AvgLatency, cmp.BestGMM().AvgLatency,
			cmp.LatencyReductionPct()))
		return cmp, nil
	})
}

// Fig6Table renders the miss-rate comparison in the paper's Fig. 6 layout:
// one row per benchmark, columns for LRU and the three GMM strategies, the
// winning strategy, and the miss-rate decrease of the best strategy.
func Fig6Table(cmps []*core.Comparison) *stats.Table {
	t := stats.NewTable("Fig. 6 — cache miss rate (%) by policy",
		"Benchmark", "LRU", "GMM caching-only", "GMM eviction-only",
		"GMM caching-eviction", "Best", "Decrease (pp)")
	for _, c := range cmps {
		best := c.BestGMM()
		t.AddRowStrings(
			c.Benchmark,
			fmt.Sprintf("%.2f", c.LRU.MissRatePct()),
			fmt.Sprintf("%.2f", c.Caching.MissRatePct()),
			fmt.Sprintf("%.2f", c.Eviction.MissRatePct()),
			fmt.Sprintf("%.2f", c.Combined.MissRatePct()),
			best.Policy,
			fmt.Sprintf("%.2f", c.LRU.MissRatePct()-best.MissRatePct()),
		)
	}
	return t
}

// Table1 renders the average SSD access time comparison in the paper's
// Table 1 layout.
func Table1(cmps []*core.Comparison) *stats.Table {
	t := stats.NewTable("Table 1 — average SSD access time by cache policy",
		"Benchmark", "LRU", "GMM", "Reduction (%)")
	for _, c := range cmps {
		best := c.BestGMM()
		t.AddRowStrings(
			c.Benchmark,
			fmt.Sprintf("%.2f us", float64(c.LRU.AvgLatency.Nanoseconds())/1000),
			fmt.Sprintf("%.2f us", float64(best.AvgLatency.Nanoseconds())/1000),
			fmt.Sprintf("%.2f", c.LatencyReductionPct()),
		)
	}
	return t
}

// Fig2Series produces the data behind one benchmark's Fig. 2 panels: the
// spatial histogram (page-bin center vs access count) and the temporal
// scatter (time vs page).
func Fig2Series(name string, requests int, seed int64, bins, scatterPoints int) (spatial, temporal stats.Series, err error) {
	g, err := workload.ByName(name)
	if err != nil {
		return spatial, temporal, err
	}
	tr := g.Generate(requests, seed)
	centers, counts := trace.SpatialHistogram(tr, bins)
	spatial.Name = name + "-spatial"
	for i := range centers {
		spatial.Append(centers[i], float64(counts[i]))
	}
	times, pages := trace.TemporalScatter(tr, scatterPoints)
	temporal.Name = name + "-temporal"
	for i := range times {
		temporal.Append(times[i], pages[i])
	}
	return spatial, temporal, nil
}
