package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gmm"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ablationBenchmarks picks a representative subset when the caller has not
// restricted the benchmark set: one low-miss (parsec), one Zipf (memtier)
// and one scan-heavy (stream) workload keep the sweeps affordable.
func (o Options) ablationBenchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return []string{"parsec", "memtier", "stream"}
}

// sweepCells evaluates a benchmarks × variants grid of experiment cells on
// the run's worker pool and returns one row of rendered cells per benchmark,
// in grid order. Each benchmark's trace is generated once and shared by its
// row of cells. Each cell is an independent engine task, so a sweep scales
// with cores while the assembled table stays byte-identical to a sequential
// double loop (errors included: the lowest-index failing cell wins).
func sweepCells(o Options, benches []string, nCols int, cellFn func(bench string, tr trace.Trace, col int) (string, error)) ([][]string, error) {
	traces, err := engine.Map(o.runner(), benches, func(_ int, name string) (trace.Trace, error) {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		return g.Generate(o.Requests, o.Seed), nil
	})
	if err != nil {
		return nil, err
	}
	type cellIdx struct{ bi, ci int }
	cells := make([]cellIdx, 0, len(benches)*nCols)
	for bi := range benches {
		for ci := 0; ci < nCols; ci++ {
			cells = append(cells, cellIdx{bi, ci})
		}
	}
	vals, err := engine.Map(o.runner(), cells, func(_ int, c cellIdx) (string, error) {
		return cellFn(benches[c.bi], traces[c.bi], c.ci)
	})
	if err != nil {
		return nil, err
	}
	rows := make([][]string, len(benches))
	for bi := range benches {
		rows[bi] = vals[bi*nCols : (bi+1)*nCols]
	}
	return rows, nil
}

// AblationK sweeps the number of GMM components (the paper deploys K = 256)
// and reports the best-strategy miss rate per benchmark.
func AblationK(o Options, ks []int) (*stats.Table, error) {
	t := stats.NewTable("Ablation — GMM component count K vs best miss rate (%)",
		append([]string{"Benchmark"}, intHeaders("K=", ks)...)...)
	benches := o.ablationBenchmarks()
	rows, err := sweepCells(o, benches, len(ks), func(name string, tr trace.Trace, ci int) (string, error) {
		cfg := o.Config
		cfg.Train.K = ks[ci]
		cmp, err := core.Compare(name, tr, cfg)
		if err != nil {
			return "", fmt.Errorf("K=%d: %w", ks[ci], err)
		}
		return fmt.Sprintf("%.2f", cmp.BestGMM().MissRatePct()), nil
	})
	if err != nil {
		return nil, err
	}
	for bi, name := range benches {
		t.AddRowStrings(append([]string{name}, rows[bi]...)...)
	}
	return t, nil
}

// Ablation1D compares the full 2-D GMM against a spatial-only variant
// (timestamp dimension zeroed out), quantifying the paper's Sec. 2.3 claim
// that temporal information is required.
func Ablation1D(o Options) (*stats.Table, error) {
	t := stats.NewTable("Ablation — 2-D GMM vs spatial-only (1-D) GMM, miss rate (%)",
		"Benchmark", "LRU", "1D GMM", "2D GMM")
	benches := o.ablationBenchmarks()
	rows, err := engine.Map(o.runner(), benches, func(_ int, name string) ([]string, error) {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr := g.Generate(o.Requests, o.Seed)

		cmp2d, err := core.Compare(name, tr, o.Config)
		if err != nil {
			return nil, err
		}

		// 1-D variant: train and score with every timestamp collapsed to
		// zero, leaving only the spatial dimension informative.
		samples := trace.Preprocess(tr, o.Config.Transform)
		for i := range samples {
			samples[i].Timestamp = 0
		}
		norm := trace.FitNormalizer(samples)
		res, err := gmm.Fit(norm.ApplyAll(samples), o.Config.Train)
		if err != nil {
			return nil, err
		}
		th := policy.CalibrateThreshold(res.Model, norm.ApplyAll(samples), o.Config.ThresholdPct)
		best := cmp2d.LRU
		first := true
		for _, mode := range []policy.GMMMode{policy.GMMCachingOnly, policy.GMMEvictionOnly, policy.GMMCachingEviction} {
			p := policy.NewGMM(policy.GMMConfig{
				Scorer:     spatialOnly{res.Model},
				Normalizer: norm,
				Transform:  o.Config.Transform,
				Threshold:  th,
				Mode:       mode,
			})
			r, err := core.Run(tr, p, o.Config.GMMInference, o.Config)
			if err != nil {
				return nil, err
			}
			if first || r.Cache.MissRate() < best.Cache.MissRate() {
				best = r
				first = false
			}
		}
		return []string{name,
			fmt.Sprintf("%.2f", cmp2d.LRU.MissRatePct()),
			fmt.Sprintf("%.2f", best.MissRatePct()),
			fmt.Sprintf("%.2f", cmp2d.BestGMM().MissRatePct()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRowStrings(row...)
	}
	return t, nil
}

// spatialOnly wraps a scorer and discards the temporal coordinate, so the
// policy effectively runs a 1-D GMM.
type spatialOnly struct{ s policy.Scorer }

func (w spatialOnly) ScorePageTime(page, _ float64) float64 {
	return w.s.ScorePageTime(page, 0)
}

// AblationThreshold sweeps the admission-threshold quantile.
func AblationThreshold(o Options, pcts []float64) (*stats.Table, error) {
	t := stats.NewTable("Ablation — admission threshold quantile vs combined-strategy miss rate (%)",
		append([]string{"Benchmark"}, floatHeaders("q=", pcts)...)...)
	benches := o.ablationBenchmarks()
	rows, err := sweepCells(o, benches, len(pcts), func(name string, tr trace.Trace, ci int) (string, error) {
		cfg := o.Config
		cfg.ThresholdPct = pcts[ci]
		// The sweep's whole point is to pin the quantile per column; the
		// empirical auto-sweep would overwrite it and flatten every column
		// to the same number.
		cfg.AutoThreshold = false
		tg, err := core.Train(tr, cfg)
		if err != nil {
			return "", err
		}
		r, err := core.Run(tr, tg.Policy(policy.GMMCachingEviction), cfg.GMMInference, cfg)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%.2f", 100*r.Cache.MissRate()), nil
	})
	if err != nil {
		return nil, err
	}
	for bi, name := range benches {
		t.AddRowStrings(append([]string{name}, rows[bi]...)...)
	}
	return t, nil
}

// AblationWindow sweeps the Algorithm 1 parameters around the paper's
// empirical choice (len_window = 32, len_access_shot = 10000).
func AblationWindow(o Options) (*stats.Table, error) {
	configs := []trace.TransformConfig{
		{LenWindow: 8, LenAccessShot: 10000, WarmupFrac: 0.2, TailFrac: 0.1},
		{LenWindow: 32, LenAccessShot: 10000, WarmupFrac: 0.2, TailFrac: 0.1},
		{LenWindow: 128, LenAccessShot: 10000, WarmupFrac: 0.2, TailFrac: 0.1},
		{LenWindow: 32, LenAccessShot: 1000, WarmupFrac: 0.2, TailFrac: 0.1},
		{LenWindow: 32, LenAccessShot: 100000, WarmupFrac: 0.2, TailFrac: 0.1},
	}
	headers := []string{"Benchmark"}
	for _, c := range configs {
		headers = append(headers, fmt.Sprintf("w=%d shot=%d", c.LenWindow, c.LenAccessShot))
	}
	t := stats.NewTable("Ablation — Algorithm 1 windowing vs best miss rate (%)", headers...)
	benches := o.ablationBenchmarks()
	rows, err := sweepCells(o, benches, len(configs), func(name string, tr trace.Trace, ci int) (string, error) {
		cfg := o.Config
		cfg.Transform = configs[ci]
		cmp, err := core.Compare(name, tr, cfg)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%.2f", cmp.BestGMM().MissRatePct()), nil
	})
	if err != nil {
		return nil, err
	}
	for bi, name := range benches {
		t.AddRowStrings(append([]string{name}, rows[bi]...)...)
	}
	return t, nil
}

// OverlapAblation quantifies the dataflow architecture's contribution
// (Sec. 4.3): average latency with the GMM inference overlapped against the
// SSD access versus serialized after it.
func OverlapAblation(o Options) (*stats.Table, error) {
	t := stats.NewTable("Ablation — dataflow overlap of GMM inference with SSD access",
		"Benchmark", "Overlapped avg", "Serialized avg", "Penalty (%)")
	benches := o.ablationBenchmarks()
	rows, err := engine.Map(o.runner(), benches, func(_ int, name string) ([]string, error) {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr := g.Generate(o.Requests, o.Seed)
		tg, err := core.Train(tr, o.Config)
		if err != nil {
			return nil, err
		}
		cfgOn := o.Config
		cfgOn.Overlap = true
		on, err := core.Run(tr, tg.Policy(policy.GMMCachingEviction), cfgOn.GMMInference, cfgOn)
		if err != nil {
			return nil, err
		}
		cfgOff := o.Config
		cfgOff.Overlap = false
		off, err := core.Run(tr, tg.Policy(policy.GMMCachingEviction), cfgOff.GMMInference, cfgOff)
		if err != nil {
			return nil, err
		}
		penalty := 0.0
		if on.AvgLatency > 0 {
			penalty = 100 * (float64(off.AvgLatency) - float64(on.AvgLatency)) / float64(on.AvgLatency)
		}
		return []string{name,
			fmt.Sprint(on.AvgLatency), fmt.Sprint(off.AvgLatency),
			fmt.Sprintf("%.2f", penalty)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRowStrings(row...)
	}
	return t, nil
}

func intHeaders(prefix string, vals []int) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%s%d", prefix, v)
	}
	return out
}

func floatHeaders(prefix string, vals []float64) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%s%.2f", prefix, v)
	}
	return out
}
