package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/trace"
)

// AblationPrecision compares three policy-engine datapaths on the combined
// strategy: float64 inference, the Q16.16 fixed-point weight buffer the FPGA
// actually runs, and a diagonal-covariance model (two multiplies per
// Gaussian exponent instead of five). The paper deploys the quantized
// full-covariance engine; this sweep quantifies what each hardware
// simplification costs in miss rate.
func AblationPrecision(o Options) (*stats.Table, error) {
	t := stats.NewTable("Ablation — policy engine datapath vs miss rate (%)",
		"Benchmark", "LRU", "float64", "Q16.16", "diagonal cov")
	variants := []struct {
		label  string
		mutate func(*core.Config)
	}{
		{"lru", nil},
		{"float64", func(*core.Config) {}},
		{"Q16.16", func(c *core.Config) { c.Quantized = true }},
		{"diagonal", func(c *core.Config) { c.Train.DiagonalCov = true }},
	}
	benches := o.ablationBenchmarks()
	rows, err := sweepCells(o, benches, len(variants), func(name string, tr trace.Trace, ci int) (string, error) {
		v := variants[ci]
		if v.mutate == nil {
			lru, err := core.Run(tr, policy.NewLRU(), 0, o.Config)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%.2f", lru.MissRatePct()), nil
		}
		cfg := o.Config
		v.mutate(&cfg)
		tg, err := core.Train(tr, cfg)
		if err != nil {
			return "", fmt.Errorf("%s/%s: %w", name, v.label, err)
		}
		r, err := core.Run(tr, tg.Policy(policy.GMMCachingEviction), cfg.GMMInference, cfg)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%.2f", r.MissRatePct()), nil
	})
	if err != nil {
		return nil, err
	}
	for bi, name := range benches {
		t.AddRowStrings(append([]string{name}, rows[bi]...)...)
	}
	return t, nil
}
