package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/engine"
)

// ResultSink consumes scenario results incrementally, in grid order. Sinks
// are called from the streaming runner's ordered-delivery layer, one call at
// a time (never concurrently).
type ResultSink interface {
	Emit(ScenarioResult) error
	Close() error
}

// GridRecord is the flat, serialization-stable view of one scenario result:
// the JSONL object and the CSV row both spell exactly these fields, so
// downstream tooling can join streams from different runs on the scenario
// columns.
type GridRecord struct {
	Index        int     `json:"index"`
	Workload     string  `json:"workload"`
	Policy       string  `json:"policy"`
	CacheMB      int     `json:"cache_mb"`
	Ways         int     `json:"ways"`
	Seed         int64   `json:"seed"`
	Requests     int     `json:"requests"`
	K            int     `json:"k"`
	MissPct      float64 `json:"miss_pct"`
	Bypasses     uint64  `json:"bypasses"`
	AvgLatencyNs int64   `json:"avg_latency_ns"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	SSDReads     uint64  `json:"ssd_reads"`
	SSDWrites    uint64  `json:"ssd_writes"`
}

// RecordFor flattens one scenario result.
func RecordFor(r ScenarioResult) GridRecord {
	return GridRecord{
		Index:        r.Scenario.Index,
		Workload:     r.Scenario.Workload,
		Policy:       r.Scenario.Policy,
		CacheMB:      r.Scenario.CacheMB,
		Ways:         r.Scenario.Ways,
		Seed:         r.Scenario.Seed,
		Requests:     r.Scenario.Requests,
		K:            r.Scenario.K,
		MissPct:      r.Result.MissRatePct(),
		Bypasses:     r.Result.Cache.Bypasses,
		AvgLatencyNs: r.Result.AvgLatency.Nanoseconds(),
		P50Ns:        r.Result.Latency.P50.Nanoseconds(),
		P99Ns:        r.Result.Latency.P99.Nanoseconds(),
		SSDReads:     r.Result.SSDReads,
		SSDWrites:    r.Result.SSDWrites,
	}
}

// jsonlSink streams one JSON object per line.
type jsonlSink struct {
	enc *json.Encoder
}

// NewJSONLSink streams results to w as JSON Lines.
func NewJSONLSink(w io.Writer) ResultSink {
	return &jsonlSink{enc: json.NewEncoder(w)}
}

func (s *jsonlSink) Emit(r ScenarioResult) error { return s.enc.Encode(RecordFor(r)) }
func (s *jsonlSink) Close() error                { return nil }

// csvSink streams a header plus one row per result, flushed per row so a
// killed sweep leaves every completed scenario on disk.
type csvSink struct {
	w      *csv.Writer
	header bool
}

// NewCSVSink streams results to w as CSV.
func NewCSVSink(w io.Writer) ResultSink {
	return &csvSink{w: csv.NewWriter(w)}
}

var csvHeader = []string{
	"index", "workload", "policy", "cache_mb", "ways", "seed", "requests", "k",
	"miss_pct", "bypasses", "avg_latency_ns", "p50_ns", "p99_ns", "ssd_reads", "ssd_writes",
}

func (s *csvSink) Emit(r ScenarioResult) error {
	if !s.header {
		if err := s.w.Write(csvHeader); err != nil {
			return err
		}
		s.header = true
	}
	rec := RecordFor(r)
	if err := s.w.Write([]string{
		strconv.Itoa(rec.Index), rec.Workload, rec.Policy,
		strconv.Itoa(rec.CacheMB), strconv.Itoa(rec.Ways),
		strconv.FormatInt(rec.Seed, 10), strconv.Itoa(rec.Requests), strconv.Itoa(rec.K),
		strconv.FormatFloat(rec.MissPct, 'f', 4, 64),
		strconv.FormatUint(rec.Bypasses, 10),
		strconv.FormatInt(rec.AvgLatencyNs, 10),
		strconv.FormatInt(rec.P50Ns, 10), strconv.FormatInt(rec.P99Ns, 10),
		strconv.FormatUint(rec.SSDReads, 10), strconv.FormatUint(rec.SSDWrites, 10),
	}); err != nil {
		return err
	}
	s.w.Flush()
	return s.w.Error()
}

func (s *csvSink) Close() error {
	s.w.Flush()
	return s.w.Error()
}

// SinkForPath picks the stream format from the file extension: .jsonl or
// .ndjson for JSON Lines, .csv for CSV.
func SinkForPath(path string, w io.Writer) (ResultSink, error) {
	switch filepath.Ext(path) {
	case ".jsonl", ".ndjson":
		return NewJSONLSink(w), nil
	case ".csv":
		return NewCSVSink(w), nil
	}
	return nil, fmt.Errorf("experiments: cannot infer stream format from %q (want .jsonl, .ndjson or .csv)", path)
}

// orderedSink serializes concurrent scenario completions into grid order
// before they reach the sink: task i's result is held until results 0..i-1
// have been emitted, mirroring engine.OrderedEmitter for structured values.
// A sink error is sticky and propagates to the task that hit it (and every
// later task), so the engine aborts the sweep with it.
type orderedSink struct {
	sink ResultSink
	mu   sync.Mutex
	next int
	buf  map[int]ScenarioResult
	err  error
}

func newOrderedSink(sink ResultSink) *orderedSink {
	return &orderedSink{sink: sink, buf: make(map[int]ScenarioResult)}
}

func (o *orderedSink) emit(i int, r ScenarioResult) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.err != nil {
		return o.err
	}
	o.buf[i] = r
	for {
		res, ok := o.buf[o.next]
		if !ok {
			return nil
		}
		delete(o.buf, o.next)
		o.next++
		if err := o.sink.Emit(res); err != nil {
			o.err = err
			return err
		}
	}
}

// RunGridFileStream loads a grid declaration, expands it, and streams it to
// the sink (see RunGridStream), returning the scenario count.
func RunGridFileStream(path string, o Options, sink ResultSink, progress io.Writer) (int, error) {
	g, err := engine.LoadGrid(path)
	if err != nil {
		return 0, err
	}
	scens, err := g.Expand()
	if err != nil {
		return 0, err
	}
	if err := RunGridStream(o, scens, sink, progress); err != nil {
		return 0, err
	}
	return len(scens), sink.Close()
}
