package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ScenarioResult pairs one grid cell with its simulation outcome.
type ScenarioResult struct {
	Scenario engine.Scenario
	Result   core.RunResult
}

// configFor maps a grid scenario onto the base configuration.
func (o Options) configFor(s engine.Scenario) core.Config {
	cfg := o.Config
	cfg.Cache = cache.Config{SizeBytes: uint64(s.CacheMB) << 20, BlockBytes: trace.PageSize, Ways: s.Ways}
	cfg.Train.K = s.K
	cfg.Overlap = s.Overlap
	cfg.Quantized = s.Quantized
	return cfg
}

// gmmMode maps a GMM policy name to its strategy; ok is false for baseline
// policies, which need no trained model.
func gmmMode(pol string) (mode policy.GMMMode, ok bool) {
	switch pol {
	case "gmm-caching-only":
		return policy.GMMCachingOnly, true
	case "gmm-eviction-only":
		return policy.GMMEvictionOnly, true
	case "gmm-caching-eviction":
		return policy.GMMCachingEviction, true
	}
	return 0, false
}

// needsGMM reports whether the scenario's policy requires a trained model.
func needsGMM(pol string) bool {
	_, ok := gmmMode(pol)
	return ok
}

// PolicyByName builds the named cache policy. GMM policies draw on the
// trained bundle (which may be nil for the rest); the Belady oracles need
// the full trace. The returned duration is the per-miss policy-engine
// overhead the latency model charges.
func PolicyByName(name string, tr trace.Trace, tg *core.TrainedGMM, cfg core.Config) (cache.Policy, time.Duration, error) {
	switch name {
	case "lru":
		return policy.NewLRU(), 0, nil
	case "fifo":
		return policy.NewFIFO(), 0, nil
	case "lfu":
		return policy.NewLFU(), 0, nil
	case "random":
		return policy.NewRandom(1), 0, nil
	case "clock":
		return policy.NewClock(), 0, nil
	case "slru":
		return policy.NewSLRU(), 0, nil
	case "srrip":
		return policy.NewSRRIP(), 0, nil
	case "belady":
		return policy.NewBelady(tr, false), 0, nil
	case "belady-bypass":
		return policy.NewBelady(tr, true), 0, nil
	case "gmm-caching-only":
		return tg.Policy(policy.GMMCachingOnly), cfg.GMMInference, nil
	case "gmm-eviction-only":
		return tg.Policy(policy.GMMEvictionOnly), cfg.GMMInference, nil
	case "gmm-caching-eviction":
		return tg.Policy(policy.GMMCachingEviction), cfg.GMMInference, nil
	default:
		return nil, 0, fmt.Errorf("experiments: unknown policy %q", name)
	}
}

// trainKey identifies the (trace, training-config) combination a scenario's
// model depends on; scenarios sharing a key share one trace generation and
// one training run.
type trainKey struct {
	workload  string
	seed      int64
	requests  int
	cacheMB   int
	ways      int
	k         int
	overlap   bool
	quantized bool
}

func scenarioKey(s engine.Scenario) trainKey {
	return trainKey{
		workload: s.Workload, seed: s.Seed, requests: s.Requests,
		cacheMB: s.CacheMB, ways: s.Ways, k: s.K,
		overlap: s.Overlap, quantized: s.Quantized,
	}
}

// gridPrep holds the shared stages of a grid run: the distinct traces and
// trained models every scenario replay draws on.
type gridPrep struct {
	o        Options
	traceFor func(engine.Scenario) trace.Trace
	models   []trained
	trainIdx map[trainKey]int
}

// trained pairs a model with its prescored trace: the scores are threshold-
// and mode-independent, so every GMM replay of this training shares them
// instead of scoring live per miss.
type trained struct {
	tg     *core.TrainedGMM
	scores []float64
}

// prepareGrid runs the shared stages on the worker pool: traces are
// generated once per distinct (workload, seed, length) and models trained
// once per distinct training configuration.
func prepareGrid(o Options, scens []engine.Scenario, runner *engine.Runner) (*gridPrep, error) {
	// Stage 1: distinct traces, in first-use order.
	type traceKey struct {
		workload string
		seed     int64
		requests int
	}
	traceKeys := make([]traceKey, 0)
	traceIdx := make(map[traceKey]int)
	for _, s := range scens {
		k := traceKey{s.Workload, s.Seed, s.Requests}
		if _, ok := traceIdx[k]; !ok {
			traceIdx[k] = len(traceKeys)
			traceKeys = append(traceKeys, k)
		}
	}
	traces, err := engine.Map(runner, traceKeys, func(_ int, k traceKey) (trace.Trace, error) {
		g, err := workload.ByName(k.workload)
		if err != nil {
			return nil, err
		}
		return g.Generate(k.requests, k.seed), nil
	})
	if err != nil {
		return nil, err
	}
	traceFor := func(s engine.Scenario) trace.Trace {
		return traces[traceIdx[traceKey{s.Workload, s.Seed, s.Requests}]]
	}

	// Stage 2: distinct trainings (only for scenarios that need a model),
	// in first-use order.
	trainKeys := make([]trainKey, 0)
	trainScen := make(map[trainKey]engine.Scenario)
	trainIdx := make(map[trainKey]int)
	for _, s := range scens {
		if !needsGMM(s.Policy) {
			continue
		}
		k := scenarioKey(s)
		if _, ok := trainIdx[k]; !ok {
			trainIdx[k] = len(trainKeys)
			trainKeys = append(trainKeys, k)
			trainScen[k] = s
		}
	}
	// Each training also prescores its trace in blocks (see trained).
	models, err := engine.Map(runner, trainKeys, func(_ int, k trainKey) (trained, error) {
		s := trainScen[k]
		tr := traceFor(s)
		tg, err := core.Train(tr, o.configFor(s))
		if err != nil {
			return trained{}, fmt.Errorf("experiments: training %s: %w", s.Label(), err)
		}
		return trained{tg: tg, scores: tg.PrescoreTrace(tr)}, nil
	})
	if err != nil {
		return nil, err
	}
	return &gridPrep{o: o, traceFor: traceFor, models: models, trainIdx: trainIdx}, nil
}

// run replays one scenario against the shared prep.
func (gp *gridPrep) run(s engine.Scenario) (ScenarioResult, error) {
	cfg := gp.o.configFor(s)
	tr := gp.traceFor(s)
	var pol cache.Policy
	var overhead time.Duration
	if mode, ok := gmmMode(s.Policy); ok {
		m := gp.models[gp.trainIdx[scenarioKey(s)]]
		pol, overhead = m.tg.PolicyPrescored(mode, m.scores), cfg.GMMInference
	} else {
		var err error
		pol, overhead, err = PolicyByName(s.Policy, tr, nil, cfg)
		if err != nil {
			return ScenarioResult{}, err
		}
	}
	res, err := core.Run(tr, pol, overhead, cfg)
	if err != nil {
		return ScenarioResult{}, fmt.Errorf("experiments: %s: %w", s.Label(), err)
	}
	return ScenarioResult{Scenario: s, Result: res}, nil
}

// progressLine renders one scenario's progress output.
func progressLine(r ScenarioResult) string {
	return fmt.Sprintf("%-44s miss %6.2f%%  avg latency %v\n",
		r.Scenario.Label(), r.Result.MissRatePct(), r.Result.AvgLatency)
}

// RunGrid fans the scenario grid out over the run's worker pool (see
// prepareGrid); every scenario replay is an independent engine task. Results
// come back in grid order and, like every engine fan-out, are bit-identical
// at any worker count (progress lines included on successful runs). progress
// (which may be nil) receives one line per finished scenario, serialized
// into grid order. For sweeps too large to buffer, use RunGridStream.
func RunGrid(o Options, scens []engine.Scenario, progress io.Writer) ([]ScenarioResult, error) {
	runner := o.runner()
	gp, err := prepareGrid(o, scens, runner)
	if err != nil {
		return nil, err
	}
	em := engine.NewOrderedEmitter(progress)
	defer em.Flush()
	return engine.Map(runner, scens, func(i int, s engine.Scenario) (ScenarioResult, error) {
		res, err := gp.run(s)
		if err != nil {
			return ScenarioResult{}, err
		}
		em.Emit(i, progressLine(res))
		return res, nil
	})
}

// RunGridStream is RunGrid for sweeps that should not be buffered whole:
// each finished scenario is handed to the sink incrementally, in grid order
// (out-of-order completions wait in a bounded reorder window), and no result
// slice is retained. A sink error aborts the run like a failing scenario.
func RunGridStream(o Options, scens []engine.Scenario, sink ResultSink, progress io.Writer) error {
	runner := o.runner()
	gp, err := prepareGrid(o, scens, runner)
	if err != nil {
		return err
	}
	em := engine.NewOrderedEmitter(progress)
	defer em.Flush()
	ord := newOrderedSink(sink)
	return engine.ForEach(runner, scens, func(i int, s engine.Scenario) error {
		res, err := gp.run(s)
		if err != nil {
			return err
		}
		em.Emit(i, progressLine(res))
		return ord.emit(i, res)
	})
}

// RunGridFile is the CLI entry point shared by cmd/experiments and
// cmd/icgmm-sim: load a JSON grid declaration, expand it, and run it.
func RunGridFile(path string, o Options, progress io.Writer) ([]ScenarioResult, error) {
	g, err := engine.LoadGrid(path)
	if err != nil {
		return nil, err
	}
	scens, err := g.Expand()
	if err != nil {
		return nil, err
	}
	return RunGrid(o, scens, progress)
}

// GridTable renders grid results with one row per scenario.
func GridTable(results []ScenarioResult) *stats.Table {
	t := stats.NewTable("Scenario grid",
		"Workload", "Policy", "Cache", "Seed", "Miss (%)", "Avg latency", "SSD reads", "SSD writes")
	for _, r := range results {
		t.AddRowStrings(
			r.Scenario.Workload,
			r.Scenario.Policy,
			fmt.Sprintf("%d MiB", r.Scenario.CacheMB),
			fmt.Sprint(r.Scenario.Seed),
			fmt.Sprintf("%.2f", r.Result.MissRatePct()),
			fmt.Sprint(r.Result.AvgLatency),
			fmt.Sprint(r.Result.SSDReads),
			fmt.Sprint(r.Result.SSDWrites),
		)
	}
	return t
}
