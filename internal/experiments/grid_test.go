package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
)

func fastGrid() engine.Grid {
	return engine.Grid{
		Workloads: []string{"hashmap", "parsec"},
		Policies:  []string{"lru", "gmm-caching-eviction"},
		CacheMB:   []int{16},
		Seeds:     []int64{1, 2},
		Requests:  30_000,
		K:         8,
	}
}

func TestRunGrid(t *testing.T) {
	t.Parallel()
	o := fastOptions()
	scens, err := fastGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	results, err := RunGrid(o, scens, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(scens) {
		t.Fatalf("results = %d, want %d", len(results), len(scens))
	}
	for i, r := range results {
		if r.Scenario.Index != i {
			t.Errorf("result %d carries scenario %d", i, r.Scenario.Index)
		}
		if r.Result.Cache.Accesses() != uint64(r.Scenario.Requests) {
			t.Errorf("%s: %d accesses, want %d",
				r.Scenario.Label(), r.Result.Cache.Accesses(), r.Scenario.Requests)
		}
	}
	if got := strings.Count(sb.String(), "\n"); got != len(scens) {
		t.Errorf("progress lines = %d, want %d", got, len(scens))
	}
	out := GridTable(results).String()
	for _, want := range []string{"hashmap", "parsec", "lru", "gmm-caching-eviction", "16 MiB"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid table missing %q:\n%s", want, out)
		}
	}
}

func TestRunGridUnknownWorkload(t *testing.T) {
	t.Parallel()
	g := fastGrid()
	g.Workloads = []string{"nosuch"}
	scens, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunGrid(fastOptions(), scens, nil); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunGridUnknownPolicy(t *testing.T) {
	t.Parallel()
	g := fastGrid()
	g.Workloads = []string{"hashmap"}
	g.Policies = []string{"nosuch"}
	scens, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunGrid(fastOptions(), scens, nil); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunGridBaselinePolicies(t *testing.T) {
	t.Parallel()
	g := fastGrid()
	g.Workloads = []string{"hashmap"}
	g.Policies = []string{"fifo", "lfu", "random", "clock", "slru", "srrip", "belady", "belady-bypass"}
	g.Seeds = []int64{1}
	g.Requests = 20_000
	scens, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunGrid(fastOptions(), scens, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(g.Policies) {
		t.Fatalf("results = %d, want %d", len(results), len(g.Policies))
	}
}

// TestRunGridDeterministicAcrossWorkers is the engine's core contract: the
// same grid at -workers=1 and -workers=8 must produce bit-identical results
// and byte-identical progress output.
func TestRunGridDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	scens, err := fastGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) ([]ScenarioResult, string) {
		o := fastOptions()
		o.Config.Workers = workers
		var sb strings.Builder
		results, err := RunGrid(o, scens, &sb)
		if err != nil {
			t.Fatal(err)
		}
		return results, sb.String()
	}
	seq, seqOut := run(1)
	par, parOut := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Error("grid results differ between 1 and 8 workers")
	}
	if seqOut != parOut {
		t.Errorf("progress output differs between 1 and 8 workers:\n%q\nvs\n%q", seqOut, parOut)
	}
}

// TestRunAllDeterministicAcrossWorkers pins the same contract for the
// paper's headline comparison.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	run := func(workers int) (string, string) {
		o := fastOptions("hashmap", "stream")
		o.Requests = 30_000
		o.Config.Workers = workers
		var sb strings.Builder
		cmps, err := RunAll(o, &sb)
		if err != nil {
			t.Fatal(err)
		}
		return Fig6Table(cmps).String() + Table1(cmps).String(), sb.String()
	}
	seqTable, seqOut := run(1)
	parTable, parOut := run(8)
	if seqTable != parTable {
		t.Errorf("tables differ between 1 and 8 workers:\n%s\nvs\n%s", seqTable, parTable)
	}
	if seqOut != parOut {
		t.Errorf("progress output differs:\n%q\nvs\n%q", seqOut, parOut)
	}
}

// TestRunRepeatedDeterministicAcrossWorkers covers the flattened
// (benchmark × seed) fan-out and its order-sensitive Welford aggregation.
func TestRunRepeatedDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	run := func(workers int) string {
		o := fastOptions("hashmap")
		o.Requests = 20_000
		o.Config.Workers = workers
		rs, err := RunRepeated(o, []int64{1, 2, 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return RepeatedTable(rs).String()
	}
	if seq, par := run(1), run(8); seq != par {
		t.Errorf("repeated results differ between 1 and 8 workers:\n%s\nvs\n%s", seq, par)
	}
}
