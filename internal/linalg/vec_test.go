package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestVec2Arithmetic(t *testing.T) {
	v := V2(1, 2)
	w := V2(3, -4)
	if got := v.Add(w); got != V2(4, -2) {
		t.Errorf("Add = %v, want (4, -2)", got)
	}
	if got := v.Sub(w); got != V2(-2, 6) {
		t.Errorf("Sub = %v, want (-2, 6)", got)
	}
	if got := v.Scale(2); got != V2(2, 4) {
		t.Errorf("Scale = %v, want (2, 4)", got)
	}
	if got := v.Dot(w); got != 3-8 {
		t.Errorf("Dot = %v, want -5", got)
	}
}

func TestVec2Norm(t *testing.T) {
	v := V2(3, 4)
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
	if V2(0, 0).Norm() != 0 {
		t.Error("zero vector norm should be 0")
	}
}

func TestVec2Outer(t *testing.T) {
	v := V2(1, 2)
	w := V2(3, 5)
	m := v.Outer(w)
	want := Mat2{A: 3, B: 5, C: 6, D: 10}
	if m != want {
		t.Errorf("Outer = %v, want %v", m, want)
	}
	s := v.OuterSelf()
	if s != (Sym2{XX: 1, XY: 2, YY: 4}) {
		t.Errorf("OuterSelf = %v", s)
	}
}

func TestVec2IsFinite(t *testing.T) {
	if !V2(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	for _, v := range []Vec2{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if v.IsFinite() {
			t.Errorf("%v reported finite", v)
		}
	}
}

func TestVec2String(t *testing.T) {
	if got := V2(1, -2.5).String(); got != "(1, -2.5)" {
		t.Errorf("String = %q", got)
	}
}

// Property: dot product is symmetric and bilinear.
func TestVec2DotProperties(t *testing.T) {
	f := func(ax, ay, bx, by, s float64) bool {
		if anyBad(ax, ay, bx, by, s) {
			return true
		}
		a, b := V2(ax, ay), V2(bx, by)
		if a.Dot(b) != b.Dot(a) {
			return false
		}
		return almostEq(a.Scale(s).Dot(b), s*a.Dot(b), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |<a,b>| <= |a||b|.
func TestCauchySchwarz(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		a, b := V2(ax, ay), V2(bx, by)
		return math.Abs(a.Dot(b)) <= a.Norm()*b.Norm()*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// anyBad filters out quick-generated values that make float comparisons
// meaningless (NaN, Inf, or magnitudes that overflow intermediate products).
func anyBad(fs ...float64) bool {
	for _, f := range fs {
		if math.IsNaN(f) || math.IsInf(f, 0) || math.Abs(f) > 1e150 {
			return true
		}
	}
	return false
}
