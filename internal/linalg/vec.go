// Package linalg provides the small dense linear-algebra substrate used by
// the 2-D Gaussian mixture model at the heart of ICGMM: 2-vectors, 2x2
// matrices (general and symmetric), determinants, inverses, Cholesky
// factorizations and Mahalanobis distances.
//
// The GMM only ever works in two dimensions (page index, timestamp), so the
// package is deliberately specialized: every operation is closed-form,
// allocation-free and branch-light, which is what makes the hardware pipeline
// model in internal/fpga credible (each Gaussian evaluation lowers to a fixed
// number of multiply-adds).
package linalg

import (
	"fmt"
	"math"
)

// Vec2 is a column vector in R^2. In ICGMM the first component is the
// (normalized) page index and the second the transformed timestamp.
type Vec2 struct {
	X, Y float64
}

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s*v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Dot returns the inner product <v, w>.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean norm of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean norm of v.
func (v Vec2) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Outer returns the outer product v * w^T as a general 2x2 matrix.
func (v Vec2) Outer(w Vec2) Mat2 {
	return Mat2{
		A: v.X * w.X, B: v.X * w.Y,
		C: v.Y * w.X, D: v.Y * w.Y,
	}
}

// OuterSelf returns v * v^T, which is symmetric by construction.
func (v Vec2) OuterSelf() Sym2 {
	return Sym2{XX: v.X * v.X, XY: v.X * v.Y, YY: v.Y * v.Y}
}

// IsFinite reports whether both components are finite (not NaN or ±Inf).
func (v Vec2) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// String renders the vector for diagnostics.
func (v Vec2) String() string { return fmt.Sprintf("(%g, %g)", v.X, v.Y) }
