package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMat2Mul(t *testing.T) {
	m := Mat2{A: 1, B: 2, C: 3, D: 4}
	n := Mat2{A: 5, B: 6, C: 7, D: 8}
	got := m.Mul(n)
	want := Mat2{A: 19, B: 22, C: 43, D: 50}
	if got != want {
		t.Errorf("Mul = %v, want %v", got, want)
	}
	if id := Identity2(); m.Mul(id) != m || id.Mul(m) != m {
		t.Error("identity is not a multiplicative unit")
	}
}

func TestMat2MulVec(t *testing.T) {
	m := Mat2{A: 1, B: 2, C: 3, D: 4}
	if got := m.MulVec(V2(1, 1)); got != V2(3, 7) {
		t.Errorf("MulVec = %v, want (3, 7)", got)
	}
}

func TestMat2Inverse(t *testing.T) {
	m := Mat2{A: 4, B: 7, C: 2, D: 6}
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("invertible matrix reported singular")
	}
	prod := m.Mul(inv)
	id := Identity2()
	for _, pair := range [][2]float64{
		{prod.A, id.A}, {prod.B, id.B}, {prod.C, id.C}, {prod.D, id.D},
	} {
		if !almostEq(pair[0], pair[1], 1e-12) {
			t.Errorf("m*m^-1 = %v, want identity", prod)
		}
	}
	if _, ok := (Mat2{A: 1, B: 2, C: 2, D: 4}).Inverse(); ok {
		t.Error("singular matrix reported invertible")
	}
}

func TestMat2TransposeDetTrace(t *testing.T) {
	m := Mat2{A: 1, B: 2, C: 3, D: 4}
	if m.Transpose() != (Mat2{A: 1, B: 3, C: 2, D: 4}) {
		t.Error("bad transpose")
	}
	if m.Det() != -2 {
		t.Errorf("Det = %v, want -2", m.Det())
	}
	if m.Trace() != 5 {
		t.Errorf("Trace = %v, want 5", m.Trace())
	}
}

func TestMat2SymPart(t *testing.T) {
	m := Mat2{A: 1, B: 2, C: 4, D: 5}
	s := m.Sym()
	if s != (Sym2{XX: 1, XY: 3, YY: 5}) {
		t.Errorf("Sym = %v", s)
	}
}

func TestSym2Inverse(t *testing.T) {
	s := Sym2{XX: 2, XY: 0.5, YY: 3}
	inv, ok := s.Inverse()
	if !ok {
		t.Fatal("PD matrix reported singular")
	}
	prod := s.Mat().Mul(inv.Mat())
	if !almostEq(prod.A, 1, 1e-12) || !almostEq(prod.D, 1, 1e-12) ||
		!almostEq(prod.B, 0, 1e-12) || !almostEq(prod.C, 0, 1e-12) {
		t.Errorf("s*s^-1 = %v, want identity", prod)
	}
}

func TestSym2PositiveDefinite(t *testing.T) {
	cases := []struct {
		s    Sym2
		want bool
	}{
		{SymIdentity(), true},
		{Sym2{XX: 2, XY: 1, YY: 2}, true},
		{Sym2{XX: -1, YY: 1}, false},
		{Sym2{XX: 1, XY: 2, YY: 1}, false}, // indefinite
		{Sym2{XX: 0, YY: 0}, false},        // PSD but not PD
	}
	for _, c := range cases {
		if got := c.s.IsPositiveDefinite(); got != c.want {
			t.Errorf("IsPositiveDefinite(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestSym2Cholesky(t *testing.T) {
	s := Sym2{XX: 4, XY: 2, YY: 3}
	l, ok := s.Cholesky()
	if !ok {
		t.Fatal("PD matrix has no Cholesky factor")
	}
	// Reconstruct L * L^T.
	re := l.Mul(l.Transpose())
	if !almostEq(re.A, s.XX, 1e-12) || !almostEq(re.B, s.XY, 1e-12) ||
		!almostEq(re.D, s.YY, 1e-12) {
		t.Errorf("L*L^T = %v, want %v", re, s)
	}
	if l.B != 0 {
		t.Error("Cholesky factor is not lower triangular")
	}
	if _, ok := (Sym2{XX: -1, YY: 1}).Cholesky(); ok {
		t.Error("non-PD matrix factored")
	}
}

func TestSym2QuadForm(t *testing.T) {
	s := Sym2{XX: 2, XY: 1, YY: 3}
	v := V2(1, 2)
	// v^T s v = 2*1 + 2*1*2*1 + 3*4 = 2 + 4 + 12 = 18
	if got := s.QuadForm(v); got != 18 {
		t.Errorf("QuadForm = %v, want 18", got)
	}
}

func TestSym2Eigenvalues(t *testing.T) {
	s := SymDiag(5, 2)
	hi, lo := s.Eigenvalues()
	if hi != 5 || lo != 2 {
		t.Errorf("Eigenvalues = %v, %v, want 5, 2", hi, lo)
	}
	// Rotationally mixed matrix: eigenvalues preserved under similarity.
	s2 := Sym2{XX: 3.5, XY: 1.5, YY: 3.5}
	hi2, lo2 := s2.Eigenvalues()
	if !almostEq(hi2, 5, 1e-12) || !almostEq(lo2, 2, 1e-12) {
		t.Errorf("Eigenvalues = %v, %v, want 5, 2", hi2, lo2)
	}
}

func TestSym2Regularize(t *testing.T) {
	s := Sym2{XX: 0, XY: 0, YY: 0}
	r := s.Regularize(1e-6)
	if !r.IsPositiveDefinite() {
		t.Error("regularized zero matrix should be PD")
	}
	if r.XY != 0 {
		t.Error("regularization must not touch off-diagonal")
	}
}

func TestMahalanobis(t *testing.T) {
	// With identity precision, Mahalanobis^2 == squared Euclidean distance.
	x, mu := V2(3, 4), V2(0, 0)
	if got := MahalanobisSquared(x, mu, SymIdentity()); got != 25 {
		t.Errorf("MahalanobisSquared = %v, want 25", got)
	}
}

// randPD returns a random positive definite Sym2 built as A^T A + eps I.
func randPD(r *rand.Rand) Sym2 {
	a := Mat2{A: r.NormFloat64(), B: r.NormFloat64(), C: r.NormFloat64(), D: r.NormFloat64()}
	s := a.Transpose().Mul(a).Sym().Regularize(0.1)
	return s
}

// Property: inverse of a PD matrix is PD and involutive.
func TestSym2InverseProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		s := randPD(r)
		inv, ok := s.Inverse()
		if !ok {
			t.Fatalf("PD matrix %v reported singular", s)
		}
		if !inv.IsPositiveDefinite() {
			t.Fatalf("inverse %v of PD matrix not PD", inv)
		}
		back, _ := inv.Inverse()
		if !almostEq(back.XX, s.XX, 1e-9) || !almostEq(back.XY, s.XY, 1e-6) ||
			!almostEq(back.YY, s.YY, 1e-9) {
			t.Fatalf("(s^-1)^-1 = %v, want %v", back, s)
		}
	}
}

// Property: Mahalanobis distance is non-negative for PD precision matrices
// and zero iff x == mu.
func TestMahalanobisNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		s := randPD(r)
		prec, _ := s.Inverse()
		x := V2(r.NormFloat64()*10, r.NormFloat64()*10)
		mu := V2(r.NormFloat64()*10, r.NormFloat64()*10)
		d := MahalanobisSquared(x, mu, prec)
		if d < 0 {
			t.Fatalf("negative Mahalanobis %v", d)
		}
	}
	if MahalanobisSquared(V2(1, 1), V2(1, 1), SymIdentity()) != 0 {
		t.Error("distance to self should be zero")
	}
}

// Property: det(m*n) == det(m)*det(n).
func TestDetMultiplicative(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i float64) bool {
		if anyBad(a, b, c, d, e, g, h, i) {
			return true
		}
		// Keep magnitudes tame so products stay finite.
		clamp := func(x float64) float64 { return math.Mod(x, 1e3) }
		m := Mat2{clamp(a), clamp(b), clamp(c), clamp(d)}
		n := Mat2{clamp(e), clamp(g), clamp(h), clamp(i)}
		return almostEq(m.Mul(n).Det(), m.Det()*n.Det(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cholesky round-trips every PD matrix.
func TestCholeskyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		s := randPD(r)
		l, ok := s.Cholesky()
		if !ok {
			t.Fatalf("PD matrix %v not factored", s)
		}
		re := l.Mul(l.Transpose())
		if !almostEq(re.A, s.XX, 1e-9) || !almostEq(re.C, s.XY, 1e-9) ||
			!almostEq(re.D, s.YY, 1e-9) {
			t.Fatalf("round-trip %v != %v", re, s)
		}
	}
}

func TestSym2EigenvaluesMatchTraceDet(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		s := randPD(r)
		hi, lo := s.Eigenvalues()
		if hi < lo {
			t.Fatalf("eigenvalues out of order: %v < %v", hi, lo)
		}
		if !almostEq(hi+lo, s.Trace(), 1e-9) {
			t.Fatalf("eigensum %v != trace %v", hi+lo, s.Trace())
		}
		if !almostEq(hi*lo, s.Det(), 1e-6) {
			t.Fatalf("eigenproduct %v != det %v", hi*lo, s.Det())
		}
		if lo <= 0 {
			t.Fatalf("PD matrix has non-positive eigenvalue %v", lo)
		}
	}
}

func TestSym2IsFinite(t *testing.T) {
	if !(Sym2{1, 2, 3}).IsFinite() {
		t.Error("finite matrix reported non-finite")
	}
	if (Sym2{math.NaN(), 0, 0}).IsFinite() {
		t.Error("NaN matrix reported finite")
	}
	if (Sym2{0, math.Inf(1), 0}).IsFinite() {
		t.Error("Inf matrix reported finite")
	}
}
