package linalg

import (
	"fmt"
	"math"
)

// Mat2 is a general 2x2 matrix laid out as
//
//	| A B |
//	| C D |
type Mat2 struct {
	A, B, C, D float64
}

// Identity2 returns the 2x2 identity matrix.
func Identity2() Mat2 { return Mat2{A: 1, D: 1} }

// Add returns m + n.
func (m Mat2) Add(n Mat2) Mat2 {
	return Mat2{m.A + n.A, m.B + n.B, m.C + n.C, m.D + n.D}
}

// Sub returns m - n.
func (m Mat2) Sub(n Mat2) Mat2 {
	return Mat2{m.A - n.A, m.B - n.B, m.C - n.C, m.D - n.D}
}

// Scale returns s*m.
func (m Mat2) Scale(s float64) Mat2 {
	return Mat2{s * m.A, s * m.B, s * m.C, s * m.D}
}

// Mul returns the matrix product m*n.
func (m Mat2) Mul(n Mat2) Mat2 {
	return Mat2{
		A: m.A*n.A + m.B*n.C, B: m.A*n.B + m.B*n.D,
		C: m.C*n.A + m.D*n.C, D: m.C*n.B + m.D*n.D,
	}
}

// MulVec returns m*v.
func (m Mat2) MulVec(v Vec2) Vec2 {
	return Vec2{m.A*v.X + m.B*v.Y, m.C*v.X + m.D*v.Y}
}

// Transpose returns m^T.
func (m Mat2) Transpose() Mat2 { return Mat2{m.A, m.C, m.B, m.D} }

// Det returns the determinant of m.
func (m Mat2) Det() float64 { return m.A*m.D - m.B*m.C }

// Trace returns the trace of m.
func (m Mat2) Trace() float64 { return m.A + m.D }

// Inverse returns m^-1 and reports whether m was invertible. A matrix whose
// determinant is exactly zero (or not finite) is reported as singular.
func (m Mat2) Inverse() (Mat2, bool) {
	det := m.Det()
	if det == 0 || math.IsNaN(det) || math.IsInf(det, 0) {
		return Mat2{}, false
	}
	inv := 1 / det
	return Mat2{A: m.D * inv, B: -m.B * inv, C: -m.C * inv, D: m.A * inv}, true
}

// Sym returns the symmetric part (m + m^T)/2 of m.
func (m Mat2) Sym() Sym2 {
	return Sym2{XX: m.A, XY: 0.5 * (m.B + m.C), YY: m.D}
}

// String renders the matrix for diagnostics.
func (m Mat2) String() string {
	return fmt.Sprintf("[[%g %g] [%g %g]]", m.A, m.B, m.C, m.D)
}

// Sym2 is a symmetric 2x2 matrix stored by its three free entries:
//
//	| XX XY |
//	| XY YY |
//
// Covariance matrices of the 2-D GMM are Sym2 values.
type Sym2 struct {
	XX, XY, YY float64
}

// SymIdentity returns the symmetric identity matrix.
func SymIdentity() Sym2 { return Sym2{XX: 1, YY: 1} }

// SymDiag returns diag(x, y).
func SymDiag(x, y float64) Sym2 { return Sym2{XX: x, YY: y} }

// Add returns s + t.
func (s Sym2) Add(t Sym2) Sym2 {
	return Sym2{s.XX + t.XX, s.XY + t.XY, s.YY + t.YY}
}

// Sub returns s - t.
func (s Sym2) Sub(t Sym2) Sym2 {
	return Sym2{s.XX - t.XX, s.XY - t.XY, s.YY - t.YY}
}

// Scale returns c*s.
func (s Sym2) Scale(c float64) Sym2 {
	return Sym2{c * s.XX, c * s.XY, c * s.YY}
}

// Mat returns the symmetric matrix as a general Mat2.
func (s Sym2) Mat() Mat2 { return Mat2{A: s.XX, B: s.XY, C: s.XY, D: s.YY} }

// MulVec returns s*v.
func (s Sym2) MulVec(v Vec2) Vec2 {
	return Vec2{s.XX*v.X + s.XY*v.Y, s.XY*v.X + s.YY*v.Y}
}

// Det returns the determinant of s.
func (s Sym2) Det() float64 { return s.XX*s.YY - s.XY*s.XY }

// Trace returns the trace of s.
func (s Sym2) Trace() float64 { return s.XX + s.YY }

// Inverse returns s^-1 (still symmetric) and whether s was invertible.
func (s Sym2) Inverse() (Sym2, bool) {
	det := s.Det()
	if det == 0 || math.IsNaN(det) || math.IsInf(det, 0) {
		return Sym2{}, false
	}
	inv := 1 / det
	return Sym2{XX: s.YY * inv, XY: -s.XY * inv, YY: s.XX * inv}, true
}

// IsPositiveDefinite reports whether s is positive definite, using Sylvester's
// criterion (leading principal minors strictly positive).
func (s Sym2) IsPositiveDefinite() bool {
	return s.XX > 0 && s.Det() > 0
}

// Cholesky returns the lower-triangular factor L with s = L*L^T, and whether
// the factorization exists (s must be positive definite). L is returned as a
// Mat2 with B == 0.
func (s Sym2) Cholesky() (Mat2, bool) {
	if !s.IsPositiveDefinite() {
		return Mat2{}, false
	}
	l11 := math.Sqrt(s.XX)
	l21 := s.XY / l11
	rem := s.YY - l21*l21
	if rem <= 0 {
		return Mat2{}, false
	}
	return Mat2{A: l11, B: 0, C: l21, D: math.Sqrt(rem)}, true
}

// QuadForm returns v^T * s * v.
func (s Sym2) QuadForm(v Vec2) float64 {
	return v.X*v.X*s.XX + 2*v.X*v.Y*s.XY + v.Y*v.Y*s.YY
}

// Regularize returns s + eps*I. EM uses it to keep covariance estimates
// positive definite when a mixture component collapses onto few points.
func (s Sym2) Regularize(eps float64) Sym2 {
	return Sym2{XX: s.XX + eps, XY: s.XY, YY: s.YY + eps}
}

// Eigenvalues returns the two (real) eigenvalues of s in descending order.
func (s Sym2) Eigenvalues() (hi, lo float64) {
	m := 0.5 * s.Trace()
	// Discriminant of the characteristic polynomial; non-negative for
	// symmetric matrices up to rounding.
	d := math.Sqrt(math.Max(0, m*m-s.Det()))
	return m + d, m - d
}

// IsFinite reports whether all entries are finite.
func (s Sym2) IsFinite() bool {
	for _, f := range [3]float64{s.XX, s.XY, s.YY} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

// String renders the matrix for diagnostics.
func (s Sym2) String() string {
	return fmt.Sprintf("[[%g %g] [%g %g]]", s.XX, s.XY, s.XY, s.YY)
}

// MahalanobisSquared returns (x-mu)^T * sigmaInv * (x-mu), the squared
// Mahalanobis distance given the precision (inverse covariance) matrix.
func MahalanobisSquared(x, mu Vec2, sigmaInv Sym2) float64 {
	return sigmaInv.QuadForm(x.Sub(mu))
}
