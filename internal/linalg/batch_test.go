package linalg

import (
	"math/rand"
	"testing"
)

func TestMahalanobisSquaredBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Sym2{XX: 2, XY: 0.5, YY: 3}
	mu := V2(0.3, -0.7)
	xs := make([]Vec2, 257)
	for i := range xs {
		xs[i] = V2(rng.NormFloat64(), rng.NormFloat64())
	}
	dst := make([]float64, len(xs))
	MahalanobisSquaredBatch(dst, xs, mu, s)
	for i, x := range xs {
		if want := MahalanobisSquared(x, mu, s); dst[i] != want {
			t.Fatalf("point %d: batch %v != scalar %v", i, dst[i], want)
		}
	}
}

// TestLogDensityBatchMatchesQuadForm pins the fused kernel to the exact
// arithmetic of the unfused path (QuadForm on the difference vector, then the
// -1/2 fold): the serving goldens depend on the two producing identical bits.
func TestLogDensityBatchMatchesQuadForm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prec := Sym2{XX: 40, XY: -3, YY: 25}
	mu := V2(0.4, 0.6)
	const logCoef = -2.25
	n := 131
	xs := make([]float64, n)
	ys := make([]float64, n)
	dst := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()*20 - 10
		ys[i] = rng.Float64()*20 - 10
	}
	LogDensityBatch(dst, xs, ys, mu.X, mu.Y, prec.XX, prec.XY, prec.YY, logCoef)
	for i := range xs {
		q := prec.QuadForm(V2(xs[i], ys[i]).Sub(mu))
		if want := logCoef - 0.5*q; dst[i] != want {
			t.Fatalf("point %d: fused %v != unfused %v (must be bit-identical)", i, dst[i], want)
		}
	}
}

// TestFoldedLogDensityBatch pins the quantized-path kernel, whose precision
// entries arrive with the -1/2 factor pre-folded.
func TestFoldedLogDensityBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	folded := Sym2{XX: -20, XY: 1.5, YY: -12.5}
	mu := V2(-0.2, 0.9)
	const logCoef = -1.125
	n := 65
	xs := make([]float64, n)
	ys := make([]float64, n)
	dst := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()*4 - 2
		ys[i] = rng.Float64()*4 - 2
	}
	FoldedLogDensityBatch(dst, xs, ys, mu.X, mu.Y, folded.XX, folded.XY, folded.YY, logCoef)
	for i := range xs {
		dx, dy := xs[i]-mu.X, ys[i]-mu.Y
		want := logCoef + (dx*dx*folded.XX + 2*dx*dy*folded.XY + dy*dy*folded.YY)
		if dst[i] != want {
			t.Fatalf("point %d: fused %v != unfused %v", i, dst[i], want)
		}
	}
}

func TestBatchKernelsEmpty(t *testing.T) {
	LogDensityBatch(nil, nil, nil, 0, 0, 1, 0, 1, 0)
	FoldedLogDensityBatch(nil, nil, nil, 0, 0, -1, 0, -1, 0)
	MahalanobisSquaredBatch(nil, nil, Vec2{}, Sym2{XX: 1, YY: 1})
}

func TestLogDensityBatchAllocs(t *testing.T) {
	n := 256
	xs := make([]float64, n)
	ys := make([]float64, n)
	dst := make([]float64, n)
	if a := testing.AllocsPerRun(20, func() {
		LogDensityBatch(dst, xs, ys, 0.5, 0.5, 30, -2, 20, -1)
	}); a != 0 {
		t.Errorf("LogDensityBatch allocates %v per run", a)
	}
}
