package linalg

// MahalanobisSquaredBatch writes (x_i - mu)^T sigmaInv (x_i - mu) for every
// x into dst. It is the block form of MahalanobisSquared: the caller hoists
// one component's mean and precision and streams a block of points through
// them, which keeps the component parameters in registers instead of
// reloading them per point. dst must be at least len(xs) long.
//
// Each distance is computed with exactly the arithmetic of
// MahalanobisSquared, so batched and per-point scoring are bit-identical.
func MahalanobisSquaredBatch(dst []float64, xs []Vec2, mu Vec2, sigmaInv Sym2) {
	if len(xs) == 0 {
		return
	}
	_ = dst[len(xs)-1]
	for i, x := range xs {
		dst[i] = sigmaInv.QuadForm(x.Sub(mu))
	}
}
