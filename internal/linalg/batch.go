package linalg

// MahalanobisSquaredBatch writes (x_i - mu)^T sigmaInv (x_i - mu) for every
// x into dst. It is the block form of MahalanobisSquared: the caller hoists
// one component's mean and precision and streams a block of points through
// them, which keeps the component parameters in registers instead of
// reloading them per point. dst must be at least len(xs) long.
//
// Each distance is computed with exactly the arithmetic of
// MahalanobisSquared, so batched and per-point scoring are bit-identical.
func MahalanobisSquaredBatch(dst []float64, xs []Vec2, mu Vec2, sigmaInv Sym2) {
	if len(xs) == 0 {
		return
	}
	_ = dst[len(xs)-1]
	for i, x := range xs {
		dst[i] = sigmaInv.QuadForm(x.Sub(mu))
	}
}

// LogDensityBatch is the fused SoA form of Component.LogDensity: for every
// point (xs[i], ys[i]) it writes logCoef - 0.5*d² into dst, where d² is the
// squared Mahalanobis distance to mean (muX, muY) under the precision matrix
// (pxx, pxy, pyy). Fusing the distance and the log-density fold lets the
// caller hold one component's six constants in registers while streaming a
// block of points, with no intermediate distance buffer.
//
// Each output is computed with exactly the expression shapes of
// Sym2.QuadForm followed by logCoef - 0.5*q, so fused and per-point scoring
// are bit-identical. dst, xs and ys must all be at least len(xs) long.
func LogDensityBatch(dst, xs, ys []float64, muX, muY, pxx, pxy, pyy, logCoef float64) {
	if len(xs) == 0 {
		return
	}
	_ = dst[len(xs)-1]
	_ = ys[len(xs)-1]
	for i, x := range xs {
		dx := x - muX
		dy := ys[i] - muY
		q := dx*dx*pxx + 2*dx*dy*pxy + dy*dy*pyy
		dst[i] = logCoef - 0.5*q
	}
}

// FoldedLogDensityBatch is LogDensityBatch for precision entries that already
// fold the -1/2 exponent factor — the quantized weight-buffer layout, where
// PrecXX/PrecXY/PrecYY store -(1/2)·Σ⁻¹. The exponent is logCoef + q with
// the same quadratic-form expression shape as LogDensityBatch, so batched and
// per-point quantized scoring stay bit-identical.
func FoldedLogDensityBatch(dst, xs, ys []float64, muX, muY, pxx, pxy, pyy, logCoef float64) {
	if len(xs) == 0 {
		return
	}
	_ = dst[len(xs)-1]
	_ = ys[len(xs)-1]
	for i, x := range xs {
		dx := x - muX
		dy := ys[i] - muY
		q := dx*dx*pxx + 2*dx*dy*pxy + dy*dy*pyy
		dst[i] = logCoef + q
	}
}
