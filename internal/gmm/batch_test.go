package gmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// batchTestModel builds a mixture spread over the unit square, large enough
// to exercise several blocks per call.
func batchTestModel(t testing.TB, k int) *Model {
	t.Helper()
	comps := make([]Component, k)
	for i := range comps {
		comps[i] = Component{
			Weight: float64(i + 1),
			Mean:   linalg.V2(float64(i)/float64(k), float64(i%7)/7),
			Cov:    linalg.Sym2{XX: 0.02, XY: 0.005, YY: 0.03},
		}
	}
	m, err := New(comps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLogScoreBatchMatchesScalar(t *testing.T) {
	t.Parallel()
	m := batchTestModel(t, 17)
	rng := rand.New(rand.NewSource(1))
	// Spread points well outside the training range too, where densities
	// underflow and the log-sum-exp guard matters.
	xs := make([]linalg.Vec2, 3*scoreBlock+5)
	for i := range xs {
		xs[i] = linalg.V2(rng.Float64()*40-20, rng.Float64()*40-20)
	}
	dst := make([]float64, len(xs))
	m.LogScoreBatch(xs, dst)
	for i, x := range xs {
		want := m.LogScore(x)
		if dst[i] != want && !(math.IsInf(dst[i], -1) && math.IsInf(want, -1)) {
			t.Fatalf("point %d: batch %v != scalar %v (must be bit-identical)", i, dst[i], want)
		}
	}
}

func TestScorePageTimeBatchMatchesScalar(t *testing.T) {
	t.Parallel()
	m := batchTestModel(t, 5)
	rng := rand.New(rand.NewSource(2))
	n := scoreBlock + 3
	pages := make([]float64, n)
	times := make([]float64, n)
	dst := make([]float64, n)
	for i := range pages {
		pages[i] = rng.Float64()
		times[i] = rng.Float64()
	}
	m.ScorePageTimeBatch(pages, times, dst)
	for i := range pages {
		if want := m.ScorePageTime(pages[i], times[i]); dst[i] != want {
			t.Fatalf("point %d: batch %v != scalar %v", i, dst[i], want)
		}
	}
}

func TestLogScoreBatchEmpty(t *testing.T) {
	t.Parallel()
	m := batchTestModel(t, 3)
	m.LogScoreBatch(nil, nil) // must not panic
	m.ScorePageTimeBatch(nil, nil, nil)
}

func BenchmarkScoreScalar(b *testing.B) {
	m := batchTestModel(b, 256)
	rng := rand.New(rand.NewSource(3))
	xs := make([]linalg.Vec2, 4096)
	for i := range xs {
		xs[i] = linalg.V2(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			m.LogScore(x)
		}
	}
}

func BenchmarkScoreBatch(b *testing.B) {
	m := batchTestModel(b, 256)
	rng := rand.New(rand.NewSource(3))
	xs := make([]linalg.Vec2, 4096)
	dst := make([]float64, len(xs))
	for i := range xs {
		xs[i] = linalg.V2(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LogScoreBatch(xs, dst)
	}
}
