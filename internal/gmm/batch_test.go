package gmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// batchTestModel builds a mixture spread over the unit square, large enough
// to exercise several blocks per call.
func batchTestModel(t testing.TB, k int) *Model {
	t.Helper()
	comps := make([]Component, k)
	for i := range comps {
		comps[i] = Component{
			Weight: float64(i + 1),
			Mean:   linalg.V2(float64(i)/float64(k), float64(i%7)/7),
			Cov:    linalg.Sym2{XX: 0.02, XY: 0.005, YY: 0.03},
		}
	}
	m, err := New(comps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLogScoreBatchMatchesScalar(t *testing.T) {
	t.Parallel()
	m := batchTestModel(t, 17)
	rng := rand.New(rand.NewSource(1))
	// Spread points well outside the training range too, where densities
	// underflow and the log-sum-exp guard matters.
	xs := make([]linalg.Vec2, 3*scoreBlock+5)
	for i := range xs {
		xs[i] = linalg.V2(rng.Float64()*40-20, rng.Float64()*40-20)
	}
	dst := make([]float64, len(xs))
	m.LogScoreBatch(xs, dst)
	for i, x := range xs {
		want := m.LogScore(x)
		if dst[i] != want && !(math.IsInf(dst[i], -1) && math.IsInf(want, -1)) {
			t.Fatalf("point %d: batch %v != scalar %v (must be bit-identical)", i, dst[i], want)
		}
	}
}

func TestScorePageTimeBatchMatchesScalar(t *testing.T) {
	t.Parallel()
	m := batchTestModel(t, 5)
	rng := rand.New(rand.NewSource(2))
	n := scoreBlock + 3
	pages := make([]float64, n)
	times := make([]float64, n)
	dst := make([]float64, n)
	for i := range pages {
		pages[i] = rng.Float64()
		times[i] = rng.Float64()
	}
	m.ScorePageTimeBatch(pages, times, dst)
	for i := range pages {
		if want := m.ScorePageTime(pages[i], times[i]); dst[i] != want {
			t.Fatalf("point %d: batch %v != scalar %v", i, dst[i], want)
		}
	}
}

func TestLogScoreBatchEmpty(t *testing.T) {
	t.Parallel()
	m := batchTestModel(t, 3)
	m.LogScoreBatch(nil, nil) // must not panic
	m.ScorePageTimeBatch(nil, nil, nil)
}

func TestBatchScratchMatchesPooled(t *testing.T) {
	t.Parallel()
	m := batchTestModel(t, 9)
	rng := rand.New(rand.NewSource(6))
	n := 2*scoreBlock + 7
	xs := make([]linalg.Vec2, n)
	pages := make([]float64, n)
	times := make([]float64, n)
	for i := range xs {
		xs[i] = linalg.V2(rng.Float64(), rng.Float64())
		pages[i], times[i] = rng.Float64(), rng.Float64()
	}
	a, b := make([]float64, n), make([]float64, n)
	var s Scratch
	m.LogScoreBatch(xs, a)
	m.LogScoreBatchScratch(xs, b, &s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("LogScoreBatch point %d: pooled %v != scratch %v", i, a[i], b[i])
		}
	}
	m.ScorePageTimeBatch(pages, times, a)
	m.ScorePageTimeBatchScratch(pages, times, b, &s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ScorePageTimeBatch point %d: pooled %v != scratch %v", i, a[i], b[i])
		}
	}
}

// TestBatchScorerAllocs pins the float batch kernels at zero steady-state
// allocations, the property the serving hot path relies on.
func TestBatchScorerAllocs(t *testing.T) {
	m := batchTestModel(t, 32)
	rng := rand.New(rand.NewSource(7))
	n := 2*scoreBlock + 9
	xs := make([]linalg.Vec2, n)
	pages := make([]float64, n)
	times := make([]float64, n)
	dst := make([]float64, n)
	for i := range xs {
		xs[i] = linalg.V2(rng.Float64(), rng.Float64())
		pages[i], times[i] = rng.Float64(), rng.Float64()
	}
	var s Scratch
	m.LogScoreBatchScratch(xs, dst, &s) // grow the scratch once
	m.ScorePageTimeBatchScratch(pages, times, dst, &s)
	if a := testing.AllocsPerRun(20, func() { m.LogScoreBatchScratch(xs, dst, &s) }); a != 0 {
		t.Errorf("LogScoreBatchScratch allocates %v per run at steady state", a)
	}
	if a := testing.AllocsPerRun(20, func() { m.ScorePageTimeBatchScratch(pages, times, dst, &s) }); a != 0 {
		t.Errorf("ScorePageTimeBatchScratch allocates %v per run at steady state", a)
	}
	if a := testing.AllocsPerRun(20, func() { m.LogScoreBatch(xs, dst) }); a != 0 {
		t.Errorf("pooled LogScoreBatch allocates %v per run at steady state", a)
	}
	if a := testing.AllocsPerRun(20, func() { m.ScorePageTimeBatch(pages, times, dst) }); a != 0 {
		t.Errorf("pooled ScorePageTimeBatch allocates %v per run at steady state", a)
	}
}

func BenchmarkScoreScalar(b *testing.B) {
	m := batchTestModel(b, 256)
	rng := rand.New(rand.NewSource(3))
	xs := make([]linalg.Vec2, 4096)
	for i := range xs {
		xs[i] = linalg.V2(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			m.LogScore(x)
		}
	}
}

func BenchmarkScoreBatch(b *testing.B) {
	m := batchTestModel(b, 256)
	rng := rand.New(rand.NewSource(3))
	xs := make([]linalg.Vec2, 4096)
	dst := make([]float64, len(xs))
	for i := range xs {
		xs[i] = linalg.V2(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LogScoreBatch(xs, dst)
	}
}

// BenchmarkScoreBatchQ16 is the quantized counterpart of BenchmarkScoreBatch:
// the same batch size through the Q16.16 weight-buffer datapath (dequantized
// SoA plus linear-domain fold), the form the serve path dispatches to.
func BenchmarkScoreBatchQ16(b *testing.B) {
	m := batchTestModel(b, 256)
	q, rep := Quantize(m)
	if rep.Saturated != 0 {
		b.Fatalf("%d constants saturate", rep.Saturated)
	}
	rng := rand.New(rand.NewSource(3))
	pages := make([]float64, 4096)
	times := make([]float64, 4096)
	dst := make([]float64, 4096)
	for i := range pages {
		pages[i] = rng.Float64()
		times[i] = rng.Float64()
	}
	var s Scratch
	q.ScorePageTimeBatchScratch(pages, times, dst, &s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ScorePageTimeBatchScratch(pages, times, dst, &s)
	}
}
