package gmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/trace"
)

// TrainConfig controls EM training (Sec. 3.3).
type TrainConfig struct {
	// K is the number of Gaussian components; the paper deploys K = 256.
	K int
	// MaxIters bounds the number of EM iterations.
	MaxIters int
	// Tol is the convergence threshold on the change in mean log-likelihood
	// between iterations (the paper's "change in MLE" criterion).
	Tol float64
	// CovReg is added to covariance diagonals each M-step to keep estimates
	// positive definite when a component collapses.
	CovReg float64
	// Seed drives initialization; fixed seeds give reproducible models.
	Seed int64
	// MaxSamples, when positive, caps the training set by uniform
	// subsampling. EM is O(N*K) per iteration, and traces can run to tens
	// of millions of records; subsampling preserves the density shape.
	MaxSamples int
	// LloydIters is the number of k-means refinement sweeps used to place
	// the initial component means.
	LloydIters int
	// DiagonalCov constrains covariances to be diagonal. The hardware
	// exponent then needs two multiplies instead of five per Gaussian —
	// the cheaper-datapath ablation — at the cost of not modeling
	// page/time correlation within a component.
	DiagonalCov bool
	// Workers bounds the E-step fan-out: 0 uses one worker per core, 1
	// forces sequential execution. The E-step is sharded over fixed-size
	// point chunks whose partial statistics are reduced in chunk order, so
	// the trained model is bit-identical at any worker count (the engine's
	// determinism contract); Workers affects wall clock only.
	Workers int
}

// DefaultTrainConfig mirrors the paper's deployed configuration.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		K:          256,
		MaxIters:   50,
		Tol:        1e-4,
		CovReg:     1e-6,
		Seed:       1,
		MaxSamples: 20000,
		LloydIters: 4,
	}
}

func (c TrainConfig) sanitized() TrainConfig {
	d := DefaultTrainConfig()
	if c.K <= 0 {
		c.K = d.K
	}
	if c.MaxIters <= 0 {
		c.MaxIters = d.MaxIters
	}
	if c.Tol <= 0 {
		c.Tol = d.Tol
	}
	if c.CovReg <= 0 {
		c.CovReg = d.CovReg
	}
	if c.LloydIters < 0 {
		c.LloydIters = d.LloydIters
	}
	return c
}

// TrainResult reports how training went.
type TrainResult struct {
	Model *Model
	// Iters is the number of EM iterations performed.
	Iters int
	// Converged reports whether the Tol criterion stopped training (as
	// opposed to hitting MaxIters).
	Converged bool
	// LogLikelihood is the final mean log-likelihood of the training set.
	LogLikelihood float64
	// History holds the mean log-likelihood after each iteration.
	History []float64
	// SamplesUsed is the size of the (possibly subsampled) training set.
	SamplesUsed int
}

// Fit trains a GMM on normalized samples with the EM algorithm. Samples
// should already be normalized (see trace.Normalizer); training on raw page
// indices spanning 2^40 would be numerically hopeless.
func Fit(samples []trace.Sample, cfg TrainConfig) (*TrainResult, error) {
	cfg = cfg.sanitized()
	if len(samples) < 2 {
		return nil, errors.New("gmm: need at least 2 samples to fit")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	points := make([]linalg.Vec2, len(samples))
	for i, s := range samples {
		points[i] = linalg.V2(s.Page, s.Timestamp)
	}
	if cfg.MaxSamples > 0 && len(points) > cfg.MaxSamples {
		points = subsample(points, cfg.MaxSamples, rng)
	}
	k := cfg.K
	if k > len(points) {
		k = len(points)
	}

	model, err := initialModel(points, k, rng, cfg)
	if err != nil {
		return nil, err
	}

	res := &TrainResult{Model: model, SamplesUsed: len(points)}
	prevLL := math.Inf(-1)
	runner := engine.NewRunner(cfg.Workers)
	chunks := chunkRanges(len(points), emChunk)

	for iter := 0; iter < cfg.MaxIters; iter++ {
		// E-step: accumulate responsibility-weighted sufficient statistics,
		// sharded over fixed point chunks. Chunk boundaries depend only on
		// the point count, and the partials are reduced in chunk order below,
		// so the accumulated statistics are independent of worker count.
		partials, err := engine.Map(runner, chunks, func(_ int, c chunk) (*eStepStats, error) {
			return eStep(model, points[c.lo:c.hi], k), nil
		})
		if err != nil {
			return nil, err
		}
		ll := 0.0
		nk := make([]float64, k)
		meanSum := make([]linalg.Vec2, k)
		for _, p := range partials {
			ll += p.ll
			for j := 0; j < k; j++ {
				nk[j] += p.nk[j]
				meanSum[j] = meanSum[j].Add(p.meanSum[j])
			}
		}

		// M-step part 1: means and weights.
		n := float64(len(points))
		for j := 0; j < k; j++ {
			if nk[j] < 1e-10 {
				// Dead component: re-seed on a random point with a broad
				// covariance so it can recapture mass.
				model.Components[j].Mean = points[rng.Intn(len(points))]
				model.Components[j].Weight = 1 / n
				model.Components[j].Cov = linalg.SymDiag(0.05, 0.05)
				continue
			}
			model.Components[j].Weight = nk[j] / n
			model.Components[j].Mean = meanSum[j].Scale(1 / nk[j])
		}

		// M-step part 2: covariances need the new means; the responsibility
		// recomputation shards over the same chunks.
		covParts, err := engine.Map(runner, chunks, func(_ int, c chunk) ([]linalg.Sym2, error) {
			return covStep(model, points[c.lo:c.hi], k), nil
		})
		if err != nil {
			return nil, err
		}
		covSum := make([]linalg.Sym2, k)
		for _, p := range covParts {
			for j := 0; j < k; j++ {
				covSum[j] = covSum[j].Add(p[j])
			}
		}
		for j := 0; j < k; j++ {
			if nk[j] < 1e-10 {
				continue
			}
			cov := covSum[j].Scale(1 / nk[j]).Regularize(cfg.CovReg)
			if cfg.DiagonalCov {
				cov.XY = 0
			}
			if !cov.IsPositiveDefinite() {
				cov = cov.Regularize(1e-3)
			}
			model.Components[j].Cov = cov
		}
		renormalize(model)
		if err := prepareAll(model); err != nil {
			return nil, fmt.Errorf("gmm: iteration %d: %w", iter, err)
		}

		meanLL := ll / n
		res.History = append(res.History, meanLL)
		res.Iters = iter + 1
		res.LogLikelihood = meanLL
		if iter > 0 && math.Abs(meanLL-prevLL) < cfg.Tol {
			res.Converged = true
			break
		}
		prevLL = meanLL
	}
	if err := res.Model.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// FitTrace is the end-to-end convenience path: preprocess a raw trace per
// Sec. 3.1 (trim, page index, Algorithm 1 timestamps), fit the normalizer,
// and train. It returns the trained model along with the normalizer needed
// to score future requests in the same coordinate system.
func FitTrace(t trace.Trace, tcfg trace.TransformConfig, cfg TrainConfig) (*TrainResult, trace.Normalizer, error) {
	samples := trace.Preprocess(t, tcfg)
	if len(samples) < 2 {
		return nil, trace.Normalizer{}, errors.New("gmm: trace too short after preprocessing")
	}
	norm := trace.FitNormalizer(samples)
	res, err := Fit(norm.ApplyAll(samples), cfg)
	return res, norm, err
}

// emChunk is the number of points per E-step task. The chunk layout is a
// pure function of the point count — never of the worker count — which is
// what keeps chunked accumulation (and therefore the trained model)
// bit-identical at any TrainConfig.Workers value. 2048 points keep a chunk's
// working set (points + K responsibilities) well inside L2 while leaving
// enough tasks to feed a worker pool on the 20k-sample default training set.
const emChunk = 2048

// chunk is one half-open E-step point range.
type chunk struct{ lo, hi int }

// chunkRanges splits n points into emChunk-sized ranges.
func chunkRanges(n, size int) []chunk {
	out := make([]chunk, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, chunk{lo, hi})
	}
	return out
}

// eStepStats are one chunk's responsibility-weighted sufficient statistics.
type eStepStats struct {
	ll      float64
	nk      []float64
	meanSum []linalg.Vec2
}

// eStep accumulates first-moment sufficient statistics over one point chunk.
// It only reads the model, so chunks evaluate concurrently.
func eStep(model *Model, points []linalg.Vec2, k int) *eStepStats {
	st := &eStepStats{nk: make([]float64, k), meanSum: make([]linalg.Vec2, k)}
	resp := make([]float64, k)
	for _, x := range points {
		st.ll += model.Responsibilities(x, resp)
		for j := 0; j < k; j++ {
			r := resp[j]
			if r == 0 {
				continue
			}
			st.nk[j] += r
			st.meanSum[j] = st.meanSum[j].Add(x.Scale(r))
		}
	}
	return st
}

// covStep accumulates the second-moment statistics around the updated means
// over one point chunk.
func covStep(model *Model, points []linalg.Vec2, k int) []linalg.Sym2 {
	covSum := make([]linalg.Sym2, k)
	resp := make([]float64, k)
	for _, x := range points {
		model.Responsibilities(x, resp)
		for j := 0; j < k; j++ {
			r := resp[j]
			if r == 0 {
				continue
			}
			d := x.Sub(model.Components[j].Mean)
			covSum[j] = covSum[j].Add(d.OuterSelf().Scale(r))
		}
	}
	return covSum
}

func subsample(points []linalg.Vec2, n int, rng *rand.Rand) []linalg.Vec2 {
	out := make([]linalg.Vec2, n)
	// Uniform stride with random phase keeps temporal coverage while the
	// random phase avoids aliasing with periodic workloads.
	stride := float64(len(points)) / float64(n)
	phase := rng.Float64() * stride
	for i := range out {
		idx := int(phase + float64(i)*stride)
		if idx >= len(points) {
			idx = len(points) - 1
		}
		out[i] = points[idx]
	}
	return out
}

func initialModel(points []linalg.Vec2, k int, rng *rand.Rand, cfg TrainConfig) (*Model, error) {
	centers := kMeansPlusPlus(points, k, rng, cfg.LloydIters)
	comps := make([]Component, len(centers))
	// Start with a shared spherical covariance scaled to the data spread.
	spread := dataSpread(points)
	init := math.Max(spread*spread/float64(k), 1e-4)
	for i, c := range centers {
		comps[i] = Component{
			Weight: 1 / float64(len(centers)),
			Mean:   c,
			Cov:    linalg.SymDiag(init, init),
		}
	}
	return New(comps)
}

func dataSpread(points []linalg.Vec2) float64 {
	if len(points) == 0 {
		return 1
	}
	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points[1:] {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return math.Max(maxX-minX, math.Max(maxY-minY, 1e-3))
}

func renormalize(m *Model) {
	total := 0.0
	for i := range m.Components {
		total += m.Components[i].Weight
	}
	if total <= 0 {
		u := 1 / float64(len(m.Components))
		for i := range m.Components {
			m.Components[i].Weight = u
		}
		return
	}
	for i := range m.Components {
		m.Components[i].Weight /= total
	}
}

func prepareAll(m *Model) error {
	for i := range m.Components {
		if err := m.Components[i].prepare(); err != nil {
			return fmt.Errorf("component %d: %w", i, err)
		}
	}
	m.rebuildSOA()
	return nil
}
