package gmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/trace"
)

// TrainConfig controls EM training (Sec. 3.3).
type TrainConfig struct {
	// K is the number of Gaussian components; the paper deploys K = 256.
	K int
	// MaxIters bounds the number of EM iterations.
	MaxIters int
	// Tol is the convergence threshold on the change in mean log-likelihood
	// between iterations (the paper's "change in MLE" criterion).
	Tol float64
	// CovReg is added to covariance diagonals each M-step to keep estimates
	// positive definite when a component collapses.
	CovReg float64
	// Seed drives initialization; fixed seeds give reproducible models.
	Seed int64
	// MaxSamples, when positive, caps the training set by uniform
	// subsampling. EM is O(N*K) per iteration, and traces can run to tens
	// of millions of records; subsampling preserves the density shape.
	MaxSamples int
	// LloydIters is the number of k-means refinement sweeps used to place
	// the initial component means.
	LloydIters int
	// DiagonalCov constrains covariances to be diagonal. The hardware
	// exponent then needs two multiplies instead of five per Gaussian —
	// the cheaper-datapath ablation — at the cost of not modeling
	// page/time correlation within a component.
	DiagonalCov bool
}

// DefaultTrainConfig mirrors the paper's deployed configuration.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		K:          256,
		MaxIters:   50,
		Tol:        1e-4,
		CovReg:     1e-6,
		Seed:       1,
		MaxSamples: 20000,
		LloydIters: 4,
	}
}

func (c TrainConfig) sanitized() TrainConfig {
	d := DefaultTrainConfig()
	if c.K <= 0 {
		c.K = d.K
	}
	if c.MaxIters <= 0 {
		c.MaxIters = d.MaxIters
	}
	if c.Tol <= 0 {
		c.Tol = d.Tol
	}
	if c.CovReg <= 0 {
		c.CovReg = d.CovReg
	}
	if c.LloydIters < 0 {
		c.LloydIters = d.LloydIters
	}
	return c
}

// TrainResult reports how training went.
type TrainResult struct {
	Model *Model
	// Iters is the number of EM iterations performed.
	Iters int
	// Converged reports whether the Tol criterion stopped training (as
	// opposed to hitting MaxIters).
	Converged bool
	// LogLikelihood is the final mean log-likelihood of the training set.
	LogLikelihood float64
	// History holds the mean log-likelihood after each iteration.
	History []float64
	// SamplesUsed is the size of the (possibly subsampled) training set.
	SamplesUsed int
}

// Fit trains a GMM on normalized samples with the EM algorithm. Samples
// should already be normalized (see trace.Normalizer); training on raw page
// indices spanning 2^40 would be numerically hopeless.
func Fit(samples []trace.Sample, cfg TrainConfig) (*TrainResult, error) {
	cfg = cfg.sanitized()
	if len(samples) < 2 {
		return nil, errors.New("gmm: need at least 2 samples to fit")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	points := make([]linalg.Vec2, len(samples))
	for i, s := range samples {
		points[i] = linalg.V2(s.Page, s.Timestamp)
	}
	if cfg.MaxSamples > 0 && len(points) > cfg.MaxSamples {
		points = subsample(points, cfg.MaxSamples, rng)
	}
	k := cfg.K
	if k > len(points) {
		k = len(points)
	}

	model, err := initialModel(points, k, rng, cfg)
	if err != nil {
		return nil, err
	}

	res := &TrainResult{Model: model, SamplesUsed: len(points)}
	prevLL := math.Inf(-1)
	resp := make([]float64, k)

	// Accumulators for the M-step.
	nk := make([]float64, k)
	meanSum := make([]linalg.Vec2, k)
	covSum := make([]linalg.Sym2, k)

	for iter := 0; iter < cfg.MaxIters; iter++ {
		for i := range nk {
			nk[i] = 0
			meanSum[i] = linalg.Vec2{}
			covSum[i] = linalg.Sym2{}
		}
		ll := 0.0

		// E-step: accumulate responsibility-weighted sufficient statistics.
		for _, x := range points {
			ll += model.Responsibilities(x, resp)
			for j := 0; j < k; j++ {
				r := resp[j]
				if r == 0 {
					continue
				}
				nk[j] += r
				meanSum[j] = meanSum[j].Add(x.Scale(r))
			}
		}

		// M-step part 1: means and weights.
		n := float64(len(points))
		for j := 0; j < k; j++ {
			if nk[j] < 1e-10 {
				// Dead component: re-seed on a random point with a broad
				// covariance so it can recapture mass.
				model.Components[j].Mean = points[rng.Intn(len(points))]
				model.Components[j].Weight = 1 / n
				model.Components[j].Cov = linalg.SymDiag(0.05, 0.05)
				continue
			}
			model.Components[j].Weight = nk[j] / n
			model.Components[j].Mean = meanSum[j].Scale(1 / nk[j])
		}

		// M-step part 2: covariances need the new means.
		for _, x := range points {
			model.Responsibilities(x, resp)
			for j := 0; j < k; j++ {
				r := resp[j]
				if r == 0 {
					continue
				}
				d := x.Sub(model.Components[j].Mean)
				covSum[j] = covSum[j].Add(d.OuterSelf().Scale(r))
			}
		}
		for j := 0; j < k; j++ {
			if nk[j] < 1e-10 {
				continue
			}
			cov := covSum[j].Scale(1 / nk[j]).Regularize(cfg.CovReg)
			if cfg.DiagonalCov {
				cov.XY = 0
			}
			if !cov.IsPositiveDefinite() {
				cov = cov.Regularize(1e-3)
			}
			model.Components[j].Cov = cov
		}
		renormalize(model)
		if err := prepareAll(model); err != nil {
			return nil, fmt.Errorf("gmm: iteration %d: %w", iter, err)
		}

		meanLL := ll / n
		res.History = append(res.History, meanLL)
		res.Iters = iter + 1
		res.LogLikelihood = meanLL
		if iter > 0 && math.Abs(meanLL-prevLL) < cfg.Tol {
			res.Converged = true
			break
		}
		prevLL = meanLL
	}
	if err := res.Model.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// FitTrace is the end-to-end convenience path: preprocess a raw trace per
// Sec. 3.1 (trim, page index, Algorithm 1 timestamps), fit the normalizer,
// and train. It returns the trained model along with the normalizer needed
// to score future requests in the same coordinate system.
func FitTrace(t trace.Trace, tcfg trace.TransformConfig, cfg TrainConfig) (*TrainResult, trace.Normalizer, error) {
	samples := trace.Preprocess(t, tcfg)
	if len(samples) < 2 {
		return nil, trace.Normalizer{}, errors.New("gmm: trace too short after preprocessing")
	}
	norm := trace.FitNormalizer(samples)
	res, err := Fit(norm.ApplyAll(samples), cfg)
	return res, norm, err
}

func subsample(points []linalg.Vec2, n int, rng *rand.Rand) []linalg.Vec2 {
	out := make([]linalg.Vec2, n)
	// Uniform stride with random phase keeps temporal coverage while the
	// random phase avoids aliasing with periodic workloads.
	stride := float64(len(points)) / float64(n)
	phase := rng.Float64() * stride
	for i := range out {
		idx := int(phase + float64(i)*stride)
		if idx >= len(points) {
			idx = len(points) - 1
		}
		out[i] = points[idx]
	}
	return out
}

func initialModel(points []linalg.Vec2, k int, rng *rand.Rand, cfg TrainConfig) (*Model, error) {
	centers := kMeansPlusPlus(points, k, rng, cfg.LloydIters)
	comps := make([]Component, len(centers))
	// Start with a shared spherical covariance scaled to the data spread.
	spread := dataSpread(points)
	init := math.Max(spread*spread/float64(k), 1e-4)
	for i, c := range centers {
		comps[i] = Component{
			Weight: 1 / float64(len(centers)),
			Mean:   c,
			Cov:    linalg.SymDiag(init, init),
		}
	}
	return New(comps)
}

func dataSpread(points []linalg.Vec2) float64 {
	if len(points) == 0 {
		return 1
	}
	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points[1:] {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return math.Max(maxX-minX, math.Max(maxY-minY, 1e-3))
}

func renormalize(m *Model) {
	total := 0.0
	for i := range m.Components {
		total += m.Components[i].Weight
	}
	if total <= 0 {
		u := 1 / float64(len(m.Components))
		for i := range m.Components {
			m.Components[i].Weight = u
		}
		return
	}
	for i := range m.Components {
		m.Components[i].Weight /= total
	}
}

func prepareAll(m *Model) error {
	for i := range m.Components {
		if err := m.Components[i].prepare(); err != nil {
			return fmt.Errorf("component %d: %w", i, err)
		}
	}
	return nil
}
