package gmm

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"repro/internal/linalg"
	"repro/internal/trace"
)

// This file makes the trained mixture generative: Sample draws points from
// the density, and SynthesizeTrace turns a model fitted on one trace into a
// statistically similar synthetic trace. That closes a loop the paper only
// implies — the GMM is a workload model, so it can also *produce* workloads
// (for capacity planning, fuzzing the cache controller, or sharing traces
// without sharing raw addresses).

// Sample draws n points from the mixture. The model must have been built
// through New/Fit (positive-definite covariances).
func (m *Model) Sample(n int, rng *rand.Rand) ([]linalg.Vec2, error) {
	if n < 0 {
		return nil, errors.New("gmm: negative sample count")
	}
	// Component CDF over weights.
	cdf := make([]float64, m.K())
	acc := 0.0
	for i := range m.Components {
		acc += m.Components[i].Weight
		cdf[i] = acc
	}
	out := make([]linalg.Vec2, n)
	for i := 0; i < n; i++ {
		u := rng.Float64() * acc
		ci := len(cdf) - 1
		for j, c := range cdf {
			if u <= c {
				ci = j
				break
			}
		}
		comp := &m.Components[ci]
		l, ok := comp.Cov.Cholesky()
		if !ok {
			return nil, errors.New("gmm: component covariance not factorable")
		}
		z := linalg.V2(rng.NormFloat64(), rng.NormFloat64())
		out[i] = comp.Mean.Add(l.MulVec(z))
	}
	return out, nil
}

// SynthesizeTrace generates a trace of n records whose (page, window)
// density follows the model. The normalizer maps model coordinates back to
// raw page indices; writeFrac sets the store mix; cfg supplies the window
// length so each sampled point expands into one request at the right
// position in time. Sampled points are bucketed by timestamp and emitted in
// time order, so the synthetic trace exhibits the same temporal phasing the
// model learned.
func SynthesizeTrace(m *Model, norm trace.Normalizer, cfg trace.TransformConfig, n int, writeFrac float64, seed int64) (trace.Trace, error) {
	if n <= 0 {
		return nil, errors.New("gmm: non-positive trace length")
	}
	rng := rand.New(rand.NewSource(seed))
	pts, err := m.Sample(n, rng)
	if err != nil {
		return nil, err
	}
	// Invert the normalizer: raw = normalized/scale + offset.
	pageScale := norm.PageScale
	if pageScale == 0 {
		pageScale = 1
	}
	timeScale := norm.TimeScale
	if timeScale == 0 {
		timeScale = 1
	}
	maxTS := cfg.LenAccessShot
	if maxTS <= 0 {
		maxTS = trace.DefaultTransformConfig().LenAccessShot
	}
	// Bucket by transformed timestamp.
	buckets := make(map[int][]uint64)
	order := make([]int, 0, 64)
	for _, p := range pts {
		rawPage := p.X/pageScale + norm.PageOffset
		if rawPage < 0 {
			rawPage = 0
		}
		rawTS := int(math.Round(p.Y/timeScale + norm.TimeOffset))
		if rawTS < 0 {
			rawTS = 0
		}
		if rawTS >= maxTS {
			rawTS = maxTS - 1
		}
		if _, ok := buckets[rawTS]; !ok {
			order = append(order, rawTS)
		}
		buckets[rawTS] = append(buckets[rawTS], uint64(rawPage))
	}
	// Emit buckets in timestamp order.
	sort.Ints(order)
	tr := make(trace.Trace, 0, n)
	for _, ts := range order {
		for _, page := range buckets[ts] {
			op := trace.Read
			if rng.Float64() < writeFrac {
				op = trace.Write
			}
			offset := uint64(rng.Intn(trace.PageSize/64)) * 64
			tr = append(tr, trace.Record{Op: op, Addr: page<<trace.PageShift | offset})
		}
	}
	tr.Stamp()
	return tr, nil
}
