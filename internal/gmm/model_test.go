package gmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

// twoBlobModel builds a simple well-separated two-component mixture.
func twoBlobModel(t *testing.T) *Model {
	t.Helper()
	m, err := New([]Component{
		{Weight: 0.5, Mean: linalg.V2(0, 0), Cov: linalg.SymDiag(1, 1)},
		{Weight: 0.5, Mean: linalg.V2(10, 10), Cov: linalg.SymDiag(1, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty component list accepted")
	}
	if _, err := New([]Component{{Weight: -1, Cov: linalg.SymIdentity()}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := New([]Component{{Weight: 0}}); err == nil {
		t.Error("zero total weight accepted")
	}
	if _, err := New([]Component{{Weight: 1, Cov: linalg.SymDiag(-1, 1)}}); err == nil {
		t.Error("non-PD covariance accepted")
	}
}

func TestNewRenormalizesWeights(t *testing.T) {
	m, err := New([]Component{
		{Weight: 2, Mean: linalg.V2(0, 0), Cov: linalg.SymIdentity()},
		{Weight: 6, Mean: linalg.V2(5, 5), Cov: linalg.SymIdentity()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Components[0].Weight-0.25) > 1e-12 {
		t.Errorf("weight 0 = %v, want 0.25", m.Components[0].Weight)
	}
	if math.Abs(m.WeightsSum()-1) > 1e-12 {
		t.Errorf("weights sum = %v", m.WeightsSum())
	}
}

func TestScoreSingleGaussian(t *testing.T) {
	m, err := New([]Component{
		{Weight: 1, Mean: linalg.V2(0, 0), Cov: linalg.SymIdentity()},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Standard bivariate normal at origin: 1/(2*pi).
	want := 1 / (2 * math.Pi)
	if got := m.Score(linalg.V2(0, 0)); math.Abs(got-want) > 1e-12 {
		t.Errorf("Score(0,0) = %v, want %v", got, want)
	}
	// At distance r the density is (1/2pi) exp(-r^2/2).
	want1 := want * math.Exp(-0.5)
	if got := m.Score(linalg.V2(1, 0)); math.Abs(got-want1) > 1e-12 {
		t.Errorf("Score(1,0) = %v, want %v", got, want1)
	}
}

func TestScoreHigherNearMass(t *testing.T) {
	m := twoBlobModel(t)
	near := m.Score(linalg.V2(0.1, -0.1))
	far := m.Score(linalg.V2(5, 5))
	if near <= far {
		t.Errorf("score near blob %v <= score at saddle %v", near, far)
	}
	if m.ScorePageTime(10, 10) <= far {
		t.Error("ScorePageTime disagrees with Score")
	}
}

func TestLogScoreUnderflowSafe(t *testing.T) {
	m := twoBlobModel(t)
	// Far enough that exp underflows but log-domain stays finite.
	ls := m.LogScore(linalg.V2(1e4, 1e4))
	if math.IsInf(ls, 0) || math.IsNaN(ls) {
		t.Errorf("LogScore far away = %v, want finite", ls)
	}
	if s := m.Score(linalg.V2(1e4, 1e4)); s != 0 {
		// density underflow to 0 is acceptable in the density domain
		if math.IsNaN(s) {
			t.Error("Score produced NaN")
		}
	}
}

func TestResponsibilities(t *testing.T) {
	m := twoBlobModel(t)
	resp := make([]float64, m.K())
	m.Responsibilities(linalg.V2(0, 0), resp)
	if resp[0] < 0.999 {
		t.Errorf("resp[0] = %v, want ~1 near blob 0", resp[0])
	}
	sum := resp[0] + resp[1]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("responsibilities sum to %v", sum)
	}
	// Midpoint: symmetric responsibilities.
	m.Responsibilities(linalg.V2(5, 5), resp)
	if math.Abs(resp[0]-resp[1]) > 1e-9 {
		t.Errorf("midpoint responsibilities %v not symmetric", resp)
	}
}

// Property: responsibilities always form a probability vector.
func TestResponsibilitiesSimplexProperty(t *testing.T) {
	m := twoBlobModel(t)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		// Clamp magnitude to avoid degenerate all-underflow cases being
		// handled by the uniform fallback (still a valid simplex).
		resp := make([]float64, m.K())
		m.Responsibilities(linalg.V2(math.Mod(x, 1e6), math.Mod(y, 1e6)), resp)
		sum := 0.0
		for _, r := range resp {
			if r < 0 || r > 1 || math.IsNaN(r) {
				return false
			}
			sum += r
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanLogLikelihood(t *testing.T) {
	m := twoBlobModel(t)
	if m.MeanLogLikelihood(nil) != 0 {
		t.Error("empty point set should give 0")
	}
	pts := []linalg.Vec2{{X: 0, Y: 0}, {X: 10, Y: 10}}
	ll := m.MeanLogLikelihood(pts)
	if ll >= 0 {
		t.Errorf("LL = %v, densities < 1 should give negative LL", ll)
	}
}

func TestValidate(t *testing.T) {
	m := twoBlobModel(t)
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := &Model{}
	if err := bad.Validate(); err == nil {
		t.Error("empty model accepted")
	}
	m2 := twoBlobModel(t)
	m2.Components[0].Weight = 0.9 // breaks simplex
	if err := m2.Validate(); err == nil {
		t.Error("non-normalized weights accepted")
	}
	m3 := twoBlobModel(t)
	m3.Components[1].Cov = linalg.SymDiag(-1, 1)
	if err := m3.Validate(); err == nil {
		t.Error("non-PD covariance accepted")
	}
}

// sampleMixture draws n points from a reference mixture for training tests.
func sampleMixture(n int, rng *rand.Rand) []linalg.Vec2 {
	pts := make([]linalg.Vec2, n)
	for i := range pts {
		if rng.Float64() < 0.7 {
			pts[i] = linalg.V2(rng.NormFloat64()*0.05+0.2, rng.NormFloat64()*0.05+0.3)
		} else {
			pts[i] = linalg.V2(rng.NormFloat64()*0.05+0.8, rng.NormFloat64()*0.05+0.7)
		}
	}
	return pts
}

func TestScoreMatchesComponentSum(t *testing.T) {
	// LogScore via log-sum-exp must agree with the naive density sum where
	// the naive sum is representable.
	m := twoBlobModel(t)
	for _, x := range []linalg.Vec2{{X: 0, Y: 0}, {X: 3, Y: 2}, {X: 10, Y: 10}, {X: 5, Y: 5}} {
		naive := 0.0
		for i := range m.Components {
			naive += math.Exp(m.Components[i].LogDensity(x))
		}
		if got := m.Score(x); math.Abs(got-naive) > 1e-12*math.Max(1, naive) {
			t.Errorf("Score(%v) = %v, naive sum %v", x, got, naive)
		}
	}
}
