// Package gmm implements the two-dimensional Gaussian Mixture Model that is
// the algorithmic contribution of ICGMM (Sec. 2.3 and Sec. 3). The model
// takes a (page index, transformed timestamp) point and returns a score that
// predicts the future access frequency of the page; the cache policy engine
// uses the score for admission and eviction decisions.
//
// The package provides the model itself, Expectation-Maximization training
// (Sec. 3.3) with k-means++ initialization, JSON serialization, and a
// fixed-point quantized variant mirroring the FPGA weight-buffer layout.
package gmm

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// log(2*pi), the normalization constant exponent shared by all 2-D Gaussians.
const log2Pi = 1.8378770664093453

// Component is one weighted 2-D Gaussian in the mixture.
type Component struct {
	// Weight is the mixing proportion pi_k; weights sum to 1 across the model.
	Weight float64
	// Mean is the component mean mu_k in (page, timestamp) space.
	Mean linalg.Vec2
	// Cov is the full 2x2 covariance Sigma_k.
	Cov linalg.Sym2

	// Cached derived quantities, rebuilt by prepare().
	precision linalg.Sym2 // Sigma_k^-1
	logCoef   float64     // log(pi_k) - log(2*pi) - 0.5*log|Sigma_k|
	valid     bool
}

// prepare computes the cached precision matrix and log-coefficient. It
// returns an error when the covariance is not positive definite or the
// weight is non-positive (such a component cannot contribute density).
func (c *Component) prepare() error {
	det := c.Cov.Det()
	if !c.Cov.IsPositiveDefinite() {
		return fmt.Errorf("gmm: covariance %v not positive definite", c.Cov)
	}
	prec, ok := c.Cov.Inverse()
	if !ok {
		return fmt.Errorf("gmm: covariance %v not invertible", c.Cov)
	}
	if c.Weight <= 0 {
		c.precision = prec
		c.logCoef = math.Inf(-1)
		c.valid = true
		return nil
	}
	c.precision = prec
	c.logCoef = math.Log(c.Weight) - log2Pi - 0.5*math.Log(det)
	c.valid = true
	return nil
}

// LogDensity returns log(pi_k * N(x | mu_k, Sigma_k)).
func (c *Component) LogDensity(x linalg.Vec2) float64 {
	return c.logCoef - 0.5*linalg.MahalanobisSquared(x, c.Mean, c.precision)
}

// Model is a K-component 2-D Gaussian mixture.
type Model struct {
	Components []Component

	// soa is the packed scoring bundle the batch kernels read; rebuilt by
	// rebuildSOA whenever the components are (re-)prepared.
	soa soa
}

// New builds a model from components, validating and caching the derived
// per-component quantities. Weights are renormalized to sum to one.
func New(components []Component) (*Model, error) {
	if len(components) == 0 {
		return nil, errors.New("gmm: model needs at least one component")
	}
	total := 0.0
	for i := range components {
		if components[i].Weight < 0 {
			return nil, fmt.Errorf("gmm: component %d has negative weight", i)
		}
		total += components[i].Weight
	}
	if total <= 0 {
		return nil, errors.New("gmm: weights sum to zero")
	}
	m := &Model{Components: make([]Component, len(components))}
	copy(m.Components, components)
	for i := range m.Components {
		m.Components[i].Weight /= total
		if err := m.Components[i].prepare(); err != nil {
			return nil, fmt.Errorf("component %d: %w", i, err)
		}
	}
	m.rebuildSOA()
	return m, nil
}

// K returns the number of mixture components.
func (m *Model) K() int { return len(m.Components) }

// Score evaluates the mixture density G(x) = sum_k pi_k N(x | mu_k, Sigma_k),
// the paper's Eq. 3. Higher scores predict more frequent future access.
func (m *Model) Score(x linalg.Vec2) float64 {
	return math.Exp(m.LogScore(x))
}

// ScorePageTime is a convenience wrapper taking the two GMM inputs directly.
func (m *Model) ScorePageTime(page, timestamp float64) float64 {
	return m.Score(linalg.V2(page, timestamp))
}

// LogScore evaluates log G(x) in the log domain via log-sum-exp, which stays
// finite even when every component density underflows float64.
func (m *Model) LogScore(x linalg.Vec2) float64 {
	maxLog := math.Inf(-1)
	for i := range m.Components {
		if ld := m.Components[i].LogDensity(x); ld > maxLog {
			maxLog = ld
		}
	}
	if math.IsInf(maxLog, -1) {
		return maxLog
	}
	sum := 0.0
	for i := range m.Components {
		sum += math.Exp(m.Components[i].LogDensity(x) - maxLog)
	}
	return maxLog + math.Log(sum)
}

// Responsibilities fills resp with the posterior probability of each
// component for x (the E-step quantity), returning the log total density.
// resp must have length K.
func (m *Model) Responsibilities(x linalg.Vec2, resp []float64) float64 {
	maxLog := math.Inf(-1)
	for i := range m.Components {
		resp[i] = m.Components[i].LogDensity(x)
		if resp[i] > maxLog {
			maxLog = resp[i]
		}
	}
	if math.IsInf(maxLog, -1) {
		// No component claims the point; spread responsibility uniformly.
		u := 1 / float64(len(resp))
		for i := range resp {
			resp[i] = u
		}
		return maxLog
	}
	sum := 0.0
	for i := range resp {
		resp[i] = math.Exp(resp[i] - maxLog)
		sum += resp[i]
	}
	inv := 1 / sum
	for i := range resp {
		resp[i] *= inv
	}
	return maxLog + math.Log(sum)
}

// MeanLogLikelihood returns the average log density over the points, the
// quantity EM monitors for convergence.
func (m *Model) MeanLogLikelihood(points []linalg.Vec2) float64 {
	if len(points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range points {
		sum += m.LogScore(p)
	}
	return sum / float64(len(points))
}

// WeightsSum returns the sum of mixing weights (1.0 up to rounding for any
// model built through New or Fit); exposed for invariant checks.
func (m *Model) WeightsSum() float64 {
	s := 0.0
	for i := range m.Components {
		s += m.Components[i].Weight
	}
	return s
}

// Validate checks the model invariants: weights form a probability simplex
// and every covariance is positive definite with finite entries.
func (m *Model) Validate() error {
	if len(m.Components) == 0 {
		return errors.New("gmm: empty model")
	}
	sum := 0.0
	for i := range m.Components {
		c := &m.Components[i]
		if c.Weight < 0 || c.Weight > 1+1e-9 {
			return fmt.Errorf("gmm: component %d weight %v outside [0,1]", i, c.Weight)
		}
		sum += c.Weight
		if !c.Cov.IsPositiveDefinite() {
			return fmt.Errorf("gmm: component %d covariance not PD", i)
		}
		if !c.Cov.IsFinite() || !c.Mean.IsFinite() {
			return fmt.Errorf("gmm: component %d has non-finite parameters", i)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("gmm: weights sum to %v, want 1", sum)
	}
	return nil
}
