package gmm

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/trace"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res, err := Fit(samplesFromPoints(sampleMixture(1000, rng)), TrainConfig{K: 4, MaxIters: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	norm := trace.Normalizer{PageOffset: 100, PageScale: 0.001, TimeOffset: 5, TimeScale: 0.01}
	var buf bytes.Buffer
	if err := Save(&buf, res.Model, norm); err != nil {
		t.Fatal(err)
	}
	m2, norm2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if norm2 != norm {
		t.Errorf("normalizer round trip: %+v != %+v", norm2, norm)
	}
	if m2.K() != res.Model.K() {
		t.Fatalf("K mismatch")
	}
	// Scores must agree at several probe points.
	for _, x := range []linalg.Vec2{{X: 0.2, Y: 0.3}, {X: 0.8, Y: 0.7}, {X: 0.5, Y: 0.5}} {
		a, b := res.Model.LogScore(x), m2.LogScore(x)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("LogScore(%v) = %v vs %v after round trip", x, a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := Load(strings.NewReader(`{"format":"other","k":1}`)); err == nil {
		t.Error("unknown format accepted")
	}
	if _, _, err := Load(strings.NewReader(`{"format":"icgmm-gmm-v1","k":0,"components":[]}`)); err == nil {
		t.Error("empty component list accepted")
	}
}

func TestSaveRejectsInvalidModel(t *testing.T) {
	m := &Model{Components: []Component{{Weight: 2, Cov: linalg.SymDiag(-1, -1)}}}
	var buf bytes.Buffer
	if err := Save(&buf, m, trace.Normalizer{}); err == nil {
		t.Error("invalid model saved without error")
	}
}

func TestLoadDefaultsZeroScales(t *testing.T) {
	in := `{"format":"icgmm-gmm-v1","k":1,
		"components":[{"weight":1,"mean":[0,0],"cov":[1,0,1]}],
		"normalizer":{"page_offset":0,"page_scale":0,"time_offset":0,"time_scale":0}}`
	_, norm, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if norm.PageScale != 1 || norm.TimeScale != 1 {
		t.Errorf("zero scales not defaulted: %+v", norm)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	m, err := New([]Component{
		{Weight: 0.6, Mean: linalg.V2(0.2, 0.3), Cov: linalg.SymDiag(0.01, 0.02)},
		{Weight: 0.4, Mean: linalg.V2(0.8, 0.7), Cov: linalg.Sym2{XX: 0.02, XY: 0.005, YY: 0.01}},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, rep := Quantize(m)
	if q.K() != 2 {
		t.Fatalf("K = %d", q.K())
	}
	if rep.Saturated != 0 {
		t.Fatalf("moderate model saturated %d constants", rep.Saturated)
	}
	// Quantized scores should track float scores closely near the data.
	for _, x := range []linalg.Vec2{{X: 0.2, Y: 0.3}, {X: 0.8, Y: 0.7}, {X: 0.5, Y: 0.5}} {
		f := m.LogScore(x)
		qs := q.LogScore(x)
		if math.Abs(f-qs) > 0.05*math.Abs(f)+0.05 {
			t.Errorf("LogScore(%v): float %v vs quantized %v", x, f, qs)
		}
	}
	// Ranking must be preserved: in-cluster beats out-of-cluster.
	if q.Score(linalg.V2(0.2, 0.3)) <= q.Score(linalg.V2(0.5, 0.0)) {
		t.Error("quantized ranking inverted")
	}
}

func TestQuantizedWeightBufferSize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	res, err := Fit(samplesFromPoints(sampleMixture(2000, rng)), TrainConfig{K: 16, MaxIters: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := Quantize(res.Model)
	if got := q.WeightBufferBytes(); got != 16*24 {
		t.Errorf("WeightBufferBytes = %d, want %d", got, 16*24)
	}
}

func TestToQSaturation(t *testing.T) {
	if toQ(1e10) != math.MaxInt32 {
		t.Error("positive overflow not saturated")
	}
	if toQ(-1e10) != math.MinInt32 {
		t.Error("negative overflow not saturated")
	}
	if got := fromQ(toQ(1.5)); got != 1.5 {
		t.Errorf("round trip 1.5 = %v", got)
	}
}
