package gmm

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/linalg"
	"repro/internal/trace"
)

// modelJSON is the on-disk form of a trained model plus the normalizer that
// maps raw (page, timestamp) pairs into model coordinates. Persisting the
// two together mirrors the FPGA flow, where the affine map is baked into the
// trace decoder next to the weight buffer.
type modelJSON struct {
	Format     string          `json:"format"`
	K          int             `json:"k"`
	Components []componentJSON `json:"components"`
	Normalizer normalizerJSON  `json:"normalizer"`
}

type componentJSON struct {
	Weight float64    `json:"weight"`
	Mean   [2]float64 `json:"mean"`
	// Cov stores [xx, xy, yy] of the symmetric covariance.
	Cov [3]float64 `json:"cov"`
}

type normalizerJSON struct {
	PageOffset float64 `json:"page_offset"`
	PageScale  float64 `json:"page_scale"`
	TimeOffset float64 `json:"time_offset"`
	TimeScale  float64 `json:"time_scale"`
}

const formatName = "icgmm-gmm-v1"

// Save writes the model and normalizer as JSON.
func Save(w io.Writer, m *Model, norm trace.Normalizer) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("gmm: refusing to save invalid model: %w", err)
	}
	out := modelJSON{
		Format: formatName,
		K:      m.K(),
		Normalizer: normalizerJSON{
			PageOffset: norm.PageOffset, PageScale: norm.PageScale,
			TimeOffset: norm.TimeOffset, TimeScale: norm.TimeScale,
		},
	}
	for _, c := range m.Components {
		out.Components = append(out.Components, componentJSON{
			Weight: c.Weight,
			Mean:   [2]float64{c.Mean.X, c.Mean.Y},
			Cov:    [3]float64{c.Cov.XX, c.Cov.XY, c.Cov.YY},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load reads a model and normalizer written by Save.
func Load(r io.Reader) (*Model, trace.Normalizer, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, trace.Normalizer{}, fmt.Errorf("gmm: decoding model: %w", err)
	}
	if in.Format != formatName {
		return nil, trace.Normalizer{}, fmt.Errorf("gmm: unknown format %q", in.Format)
	}
	comps := make([]Component, len(in.Components))
	for i, c := range in.Components {
		comps[i] = Component{
			Weight: c.Weight,
			Mean:   linalg.V2(c.Mean[0], c.Mean[1]),
			Cov:    linalg.Sym2{XX: c.Cov[0], XY: c.Cov[1], YY: c.Cov[2]},
		}
	}
	m, err := New(comps)
	if err != nil {
		return nil, trace.Normalizer{}, err
	}
	norm := trace.Normalizer{
		PageOffset: in.Normalizer.PageOffset, PageScale: in.Normalizer.PageScale,
		TimeOffset: in.Normalizer.TimeOffset, TimeScale: in.Normalizer.TimeScale,
	}
	if norm.PageScale == 0 {
		norm.PageScale = 1
	}
	if norm.TimeScale == 0 {
		norm.TimeScale = 1
	}
	return m, norm, nil
}
