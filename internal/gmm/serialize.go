package gmm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/linalg"
	"repro/internal/trace"
)

// modelJSON is the on-disk form of a trained model plus the normalizer that
// maps raw (page, timestamp) pairs into model coordinates. Persisting the
// two together mirrors the FPGA flow, where the affine map is baked into the
// trace decoder next to the weight buffer.
type modelJSON struct {
	Format     string          `json:"format"`
	K          int             `json:"k"`
	Components []componentJSON `json:"components"`
	Normalizer normalizerJSON  `json:"normalizer"`
}

type componentJSON struct {
	Weight float64    `json:"weight"`
	Mean   [2]float64 `json:"mean"`
	// Cov stores [xx, xy, yy] of the symmetric covariance.
	Cov [3]float64 `json:"cov"`
}

type normalizerJSON struct {
	PageOffset float64 `json:"page_offset"`
	PageScale  float64 `json:"page_scale"`
	TimeOffset float64 `json:"time_offset"`
	TimeScale  float64 `json:"time_scale"`
}

const formatName = "icgmm-gmm-v1"

// Save writes the model and normalizer as JSON.
func Save(w io.Writer, m *Model, norm trace.Normalizer) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("gmm: refusing to save invalid model: %w", err)
	}
	out := modelJSON{
		Format: formatName,
		K:      m.K(),
		Normalizer: normalizerJSON{
			PageOffset: norm.PageOffset, PageScale: norm.PageScale,
			TimeOffset: norm.TimeOffset, TimeScale: norm.TimeScale,
		},
	}
	for _, c := range m.Components {
		out.Components = append(out.Components, componentJSON{
			Weight: c.Weight,
			Mean:   [2]float64{c.Mean.X, c.Mean.Y},
			Cov:    [3]float64{c.Cov.XX, c.Cov.XY, c.Cov.YY},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// RestoreModel rebuilds a model from components exactly as they sit in an
// existing Model — without the weight renormalization New applies. New
// divides every weight by their sum, and for weights that already sum to
// ~1.0 that division perturbs the low-order bits, so a Save/Load/New round
// trip scores within 1e-9 but not bit-identically. Checkpoint/resume of the
// serving subsystem needs the stronger guarantee: serialize m.Components
// verbatim (float64s survive JSON exactly) and RestoreModel re-derives the
// cached per-component quantities from those identical bits, giving a model
// whose every score matches the original to the last bit.
func RestoreModel(components []Component) (*Model, error) {
	if len(components) == 0 {
		return nil, errors.New("gmm: model needs at least one component")
	}
	m := &Model{Components: make([]Component, len(components))}
	copy(m.Components, components)
	for i := range m.Components {
		if m.Components[i].Weight < 0 {
			return nil, fmt.Errorf("gmm: component %d has negative weight", i)
		}
		if err := m.Components[i].prepare(); err != nil {
			return nil, fmt.Errorf("component %d: %w", i, err)
		}
	}
	m.rebuildSOA()
	return m, nil
}

// Load reads a model and normalizer written by Save.
func Load(r io.Reader) (*Model, trace.Normalizer, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, trace.Normalizer{}, fmt.Errorf("gmm: decoding model: %w", err)
	}
	if in.Format != formatName {
		return nil, trace.Normalizer{}, fmt.Errorf("gmm: unknown format %q", in.Format)
	}
	comps := make([]Component, len(in.Components))
	for i, c := range in.Components {
		comps[i] = Component{
			Weight: c.Weight,
			Mean:   linalg.V2(c.Mean[0], c.Mean[1]),
			Cov:    linalg.Sym2{XX: c.Cov[0], XY: c.Cov[1], YY: c.Cov[2]},
		}
	}
	m, err := New(comps)
	if err != nil {
		return nil, trace.Normalizer{}, err
	}
	norm := trace.Normalizer{
		PageOffset: in.Normalizer.PageOffset, PageScale: in.Normalizer.PageScale,
		TimeOffset: in.Normalizer.TimeOffset, TimeScale: in.Normalizer.TimeScale,
	}
	if norm.PageScale == 0 {
		norm.PageScale = 1
	}
	if norm.TimeScale == 0 {
		norm.TimeScale = 1
	}
	return m, norm, nil
}
