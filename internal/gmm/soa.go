package gmm

import "sync"

// soa is the packed structure-of-arrays view of a prepared model: six
// parallel slices, one entry per component, holding exactly the constants
// the fused block kernel consumes per Gaussian — the mean coordinates, the
// precision-matrix entries and the log coefficient. It mirrors the FPGA
// weight-buffer layout (six words per component) in float64 and is rebuilt
// whenever the components are re-prepared, so scoring never walks the AoS
// Component structs on the hot path.
type soa struct {
	meanX, meanY  []float64
	pxx, pxy, pyy []float64
	logCoef       []float64
}

// resize makes every slice exactly k long, reusing capacity.
func (s *soa) resize(k int) {
	if cap(s.meanX) < k {
		buf := make([]float64, 6*k)
		s.meanX, s.meanY = buf[:k:k], buf[k:2*k:2*k]
		s.pxx, s.pxy = buf[2*k:3*k:3*k], buf[3*k:4*k:4*k]
		s.pyy, s.logCoef = buf[4*k:5*k:5*k], buf[5*k:6*k:6*k]
		return
	}
	s.meanX, s.meanY = s.meanX[:k], s.meanY[:k]
	s.pxx, s.pxy, s.pyy = s.pxx[:k], s.pxy[:k], s.pyy[:k]
	s.logCoef = s.logCoef[:k]
}

// rebuildSOA repacks the prepared components into the scoring bundle. Every
// path that prepares components (New, RestoreModel, each EM iteration) calls
// it, so the bundle is always in sync with the AoS truth.
func (m *Model) rebuildSOA() {
	m.soa.resize(len(m.Components))
	for i := range m.Components {
		c := &m.Components[i]
		m.soa.meanX[i], m.soa.meanY[i] = c.Mean.X, c.Mean.Y
		m.soa.pxx[i], m.soa.pxy[i], m.soa.pyy[i] = c.precision.XX, c.precision.XY, c.precision.YY
		m.soa.logCoef[i] = c.logCoef
	}
}

// Scratch is caller-owned scoring scratch for the batch kernels: the
// component-major block buffer (K·scoreBlock floats) plus staging for Vec2
// input. The zero value is ready to use and grows on demand; after the first
// call at a given K, scoring through it allocates nothing.
//
// A Scratch may not be shared by concurrent callers — the serving path keeps
// one per partition, since partitions are drained on independent shard
// goroutines against the same shared model.
type Scratch struct {
	ld     []float64 // ld[c*scoreBlock+i]: component c's log-density at block point i
	bx, by []float64 // block coordinate staging for Vec2 input
}

// block returns the K-component block buffer, growing it if needed.
func (s *Scratch) block(k int) []float64 {
	if cap(s.ld) < k*scoreBlock {
		s.ld = make([]float64, k*scoreBlock)
	}
	return s.ld[:k*scoreBlock]
}

// stage returns the two scoreBlock-long coordinate staging buffers.
func (s *Scratch) stage() (bx, by []float64) {
	if cap(s.bx) < scoreBlock {
		s.bx = make([]float64, scoreBlock)
		s.by = make([]float64, scoreBlock)
	}
	return s.bx[:scoreBlock], s.by[:scoreBlock]
}

// scratchPool backs the scratch-less batch entry points so compatibility
// callers (offline replay prescoring, threshold calibration) stay
// allocation-free at steady state without threading a Scratch themselves.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}
