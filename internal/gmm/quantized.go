package gmm

import (
	"math"

	"repro/internal/linalg"
)

// QuantizedModel is the fixed-point form of a trained GMM as it would live in
// the FPGA's on-board weight buffer (Sec. 4.1). Each component is reduced to
// the five constants the pipelined PE consumes per Gaussian: the two mean
// coordinates, the three precision-matrix entries folded with the -1/2
// exponent factor, and the log coefficient. Values are stored in Q16.16
// two's-complement, matching a 32-bit datapath.
type QuantizedModel struct {
	// Per-component quantized parameters, parallel slices of length K.
	MeanX, MeanY []int32
	// PrecXX/PrecXY/PrecYY hold -(1/2) * Sigma^-1 entries.
	PrecXX, PrecXY, PrecYY []int32
	LogCoef                []int32
}

// QFracBits is the number of fractional bits in the Q16.16 representation.
const QFracBits = 16

const qScale = 1 << QFracBits

// toQ converts a float64 to Q16.16 with saturation.
func toQ(f float64) int32 {
	v := math.Round(f * qScale)
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return int32(v)
}

// fromQ converts Q16.16 back to float64.
func fromQ(q int32) float64 { return float64(q) / qScale }

// Quantize converts a prepared model into its fixed-point hardware form.
func Quantize(m *Model) *QuantizedModel {
	k := m.K()
	q := &QuantizedModel{
		MeanX: make([]int32, k), MeanY: make([]int32, k),
		PrecXX: make([]int32, k), PrecXY: make([]int32, k), PrecYY: make([]int32, k),
		LogCoef: make([]int32, k),
	}
	for i := range m.Components {
		c := &m.Components[i]
		q.MeanX[i] = toQ(c.Mean.X)
		q.MeanY[i] = toQ(c.Mean.Y)
		q.PrecXX[i] = toQ(-0.5 * c.precision.XX)
		q.PrecXY[i] = toQ(-0.5 * c.precision.XY)
		q.PrecYY[i] = toQ(-0.5 * c.precision.YY)
		lc := c.logCoef
		if math.IsInf(lc, -1) {
			lc = -32768 // saturates to the most negative representable exponent
		}
		q.LogCoef[i] = toQ(lc)
	}
	return q
}

// K returns the number of components.
func (q *QuantizedModel) K() int { return len(q.MeanX) }

// LogScore evaluates the mixture log-density using only the quantized
// constants and float64 exp/log for the transcendental steps, emulating the
// PE datapath (per-Gaussian multiply-adds on fixed-point weights).
func (q *QuantizedModel) LogScore(x linalg.Vec2) float64 {
	maxLog := math.Inf(-1)
	logs := make([]float64, q.K())
	for i := range logs {
		dx := x.X - fromQ(q.MeanX[i])
		dy := x.Y - fromQ(q.MeanY[i])
		// exponent = logCoef + dx^2*pxx + 2*dx*dy*pxy + dy^2*pyy
		e := fromQ(q.LogCoef[i]) +
			dx*dx*fromQ(q.PrecXX[i]) +
			2*dx*dy*fromQ(q.PrecXY[i]) +
			dy*dy*fromQ(q.PrecYY[i])
		logs[i] = e
		if e > maxLog {
			maxLog = e
		}
	}
	if math.IsInf(maxLog, -1) {
		return maxLog
	}
	sum := 0.0
	for _, e := range logs {
		sum += math.Exp(e - maxLog)
	}
	return maxLog + math.Log(sum)
}

// Score is the density-domain counterpart of LogScore.
func (q *QuantizedModel) Score(x linalg.Vec2) float64 { return math.Exp(q.LogScore(x)) }

// ScorePageTime evaluates the density at a (page, timestamp) pair; it makes
// the quantized model satisfy the policy engine's Scorer interface alongside
// the float Model.
func (q *QuantizedModel) ScorePageTime(page, timestamp float64) float64 {
	return q.Score(linalg.V2(page, timestamp))
}

// WeightBufferBytes returns the on-chip storage the quantized model needs:
// six 32-bit words per component. With K = 256 this is 6 KiB, which is why
// the paper's design holds the whole model in a single on-board buffer and
// never touches HBM during inference.
func (q *QuantizedModel) WeightBufferBytes() int { return q.K() * 6 * 4 }
