package gmm

import (
	"math"

	"repro/internal/linalg"
)

// QuantizedModel is the fixed-point form of a trained GMM as it would live in
// the FPGA's on-board weight buffer (Sec. 4.1). Each component is reduced to
// the five constants the pipelined PE consumes per Gaussian: the two mean
// coordinates, the three precision-matrix entries folded with the -1/2
// exponent factor, and the log coefficient. Values are stored in Q16.16
// two's-complement, matching a 32-bit datapath.
type QuantizedModel struct {
	// Per-component quantized parameters, parallel slices of length K.
	MeanX, MeanY []int32
	// PrecXX/PrecXY/PrecYY hold -(1/2) * Sigma^-1 entries.
	PrecXX, PrecXY, PrecYY []int32
	LogCoef                []int32

	// dq is the dequantized SoA scoring bundle (fromQ of every constant,
	// precision entries still carrying the folded -1/2), built by Quantize so
	// the batch kernels never convert per point. Models assembled by hand
	// rather than through Quantize leave it empty; the batch entry points
	// fall back to per-point scoring then.
	dq soa
}

// QFracBits is the number of fractional bits in the Q16.16 representation.
const QFracBits = 16

const qScale = 1 << QFracBits

// qLogCoefFloor is the quantized log-coefficient assigned to components that
// contribute no density (weight 0, logCoef -Inf). toQ(-32768) is exactly
// math.MinInt32, the most negative representable exponent; math.Exp
// underflows it to zero density just as -Inf would. The floor is a deliberate
// encoding, not saturation, so Quantize excludes it from the QuantReport.
const qLogCoefFloor = -32768.0

// QuantReport describes how faithfully Quantize represented a model in
// Q16.16: how many constants fell outside the representable range and had to
// be clamped (a saturating quantization scores a wrong density with no other
// signal), and the largest absolute representable error among the constants
// that did fit (bounded by 2^-17 by construction of round-to-nearest).
type QuantReport struct {
	// Saturated counts constants clamped to the int32 range. Any non-zero
	// value means the quantized model's densities are unfaithful to the
	// float model; serving refuses such models.
	Saturated int
	// MaxAbsErr is the largest |fromQ(toQ(f)) - f| over the non-saturated
	// constants — the worst per-constant representation error.
	MaxAbsErr float64
}

// toQ converts a float64 to Q16.16 with saturation.
func toQ(f float64) int32 {
	v := math.Round(f * qScale)
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return int32(v)
}

// fromQ converts Q16.16 back to float64.
func fromQ(q int32) float64 { return float64(q) / qScale }

// Quantize converts a prepared model into its fixed-point hardware form and
// reports how faithfully the constants survived: the clamp count and the
// worst representable error. Callers that serve through the quantized model
// must check Report.Saturated — a tight component whose precision entry
// exceeds the Q16.16 range quantizes to an arbitrarily wrong density with no
// other signal.
func Quantize(m *Model) (*QuantizedModel, QuantReport) {
	k := m.K()
	q := &QuantizedModel{
		MeanX: make([]int32, k), MeanY: make([]int32, k),
		PrecXX: make([]int32, k), PrecXY: make([]int32, k), PrecYY: make([]int32, k),
		LogCoef: make([]int32, k),
	}
	var rep QuantReport
	quant := func(f float64) int32 {
		v := math.Round(f * qScale)
		if v > math.MaxInt32 || v < math.MinInt32 {
			rep.Saturated++
			if v > 0 {
				return math.MaxInt32
			}
			return math.MinInt32
		}
		qv := int32(v)
		if err := math.Abs(fromQ(qv) - f); err > rep.MaxAbsErr {
			rep.MaxAbsErr = err
		}
		return qv
	}
	for i := range m.Components {
		c := &m.Components[i]
		q.MeanX[i] = quant(c.Mean.X)
		q.MeanY[i] = quant(c.Mean.Y)
		q.PrecXX[i] = quant(-0.5 * c.precision.XX)
		q.PrecXY[i] = quant(-0.5 * c.precision.XY)
		q.PrecYY[i] = quant(-0.5 * c.precision.YY)
		if lc := c.logCoef; math.IsInf(lc, -1) {
			q.LogCoef[i] = toQ(qLogCoefFloor) // deliberate floor, not saturation
		} else {
			q.LogCoef[i] = quant(lc)
		}
	}
	q.rebuildDQ()
	return q, rep
}

// rebuildDQ repacks the dequantized constants into the SoA scoring bundle.
func (q *QuantizedModel) rebuildDQ() {
	k := q.K()
	q.dq.resize(k)
	for i := 0; i < k; i++ {
		q.dq.meanX[i], q.dq.meanY[i] = fromQ(q.MeanX[i]), fromQ(q.MeanY[i])
		q.dq.pxx[i], q.dq.pxy[i], q.dq.pyy[i] = fromQ(q.PrecXX[i]), fromQ(q.PrecXY[i]), fromQ(q.PrecYY[i])
		q.dq.logCoef[i] = fromQ(q.LogCoef[i])
	}
}

// K returns the number of components.
func (q *QuantizedModel) K() int { return len(q.MeanX) }

// logDensity is component i's exponent at (x, y): logCoef + the folded
// quadratic form. The expression shape matches linalg.FoldedLogDensityBatch
// exactly, so per-point and batched quantized scoring are bit-identical.
func (q *QuantizedModel) logDensity(i int, x, y float64) float64 {
	dx := x - fromQ(q.MeanX[i])
	dy := y - fromQ(q.MeanY[i])
	qf := dx*dx*fromQ(q.PrecXX[i]) + 2*dx*dy*fromQ(q.PrecXY[i]) + dy*dy*fromQ(q.PrecYY[i])
	return fromQ(q.LogCoef[i]) + qf
}

// LogScore evaluates the mixture log-density using only the quantized
// constants and float64 exp/log for the transcendental steps, emulating the
// PE datapath (per-Gaussian multiply-adds on fixed-point weights). Two
// passes — max, then sum — so it allocates nothing, like the float model's
// LogScore.
func (q *QuantizedModel) LogScore(x linalg.Vec2) float64 {
	maxLog := math.Inf(-1)
	for i := 0; i < q.K(); i++ {
		if e := q.logDensity(i, x.X, x.Y); e > maxLog {
			maxLog = e
		}
	}
	if math.IsInf(maxLog, -1) {
		return maxLog
	}
	sum := 0.0
	for i := 0; i < q.K(); i++ {
		sum += math.Exp(q.logDensity(i, x.X, x.Y) - maxLog)
	}
	return maxLog + math.Log(sum)
}

// Score is the density-domain counterpart of LogScore.
func (q *QuantizedModel) Score(x linalg.Vec2) float64 { return math.Exp(q.LogScore(x)) }

// ScorePageTime evaluates the density at a (page, timestamp) pair; it makes
// the quantized model satisfy the policy engine's Scorer interface alongside
// the float Model.
func (q *QuantizedModel) ScorePageTime(page, timestamp float64) float64 {
	return q.Score(linalg.V2(page, timestamp))
}

// logScoreBlock scores one block of at most scoreBlock points through the
// dequantized SoA bundle: per-component fused folded-exponent sweeps, then
// the same max-then-sum log-sum-exp as LogScore per point.
func (q *QuantizedModel) logScoreBlock(dst, xs, ys, ld []float64) {
	k := q.K()
	n := len(xs)
	for c := 0; c < k; c++ {
		linalg.FoldedLogDensityBatch(ld[c*scoreBlock:c*scoreBlock+n], xs, ys,
			q.dq.meanX[c], q.dq.meanY[c],
			q.dq.pxx[c], q.dq.pxy[c], q.dq.pyy[c], q.dq.logCoef[c])
	}
	for i := 0; i < n; i++ {
		maxLog := math.Inf(-1)
		for c := 0; c < k; c++ {
			if v := ld[c*scoreBlock+i]; v > maxLog {
				maxLog = v
			}
		}
		if math.IsInf(maxLog, -1) {
			dst[i] = maxLog
			continue
		}
		sum := 0.0
		for c := 0; c < k; c++ {
			sum += math.Exp(ld[c*scoreBlock+i] - maxLog)
		}
		dst[i] = maxLog + math.Log(sum)
	}
}

// ScorePageTimeBatchScratch fills dst with the quantized mixture density at
// each (page, timestamp) pair through the caller-owned scratch, bit-identical
// to per-point ScorePageTime. It is the zero-allocation batch form the
// serving path threads per-partition scratch through.
func (q *QuantizedModel) ScorePageTimeBatchScratch(pages, times, dst []float64, s *Scratch) {
	if len(pages) == 0 {
		return
	}
	_ = dst[len(pages)-1]
	_ = times[len(pages)-1]
	if len(q.dq.logCoef) != q.K() {
		// Hand-assembled model without the Quantize-built bundle: score
		// per point rather than racing a lazy rebuild.
		for i, p := range pages {
			dst[i] = q.ScorePageTime(p, times[i])
		}
		return
	}
	ld := s.block(q.K())
	for start := 0; start < len(pages); start += scoreBlock {
		end := start + scoreBlock
		if end > len(pages) {
			end = len(pages)
		}
		out := dst[start:end]
		q.logScoreBlock(out, pages[start:end], times[start:end], ld)
		for i := range out {
			out[i] = math.Exp(out[i])
		}
	}
}

// ScorePageTimeBatch is the pooled-scratch batch form; it implements the
// policy package's BatchScorer interface for the quantized datapath.
func (q *QuantizedModel) ScorePageTimeBatch(pages, times, dst []float64) {
	s := scratchPool.Get().(*Scratch)
	q.ScorePageTimeBatchScratch(pages, times, dst, s)
	scratchPool.Put(s)
}

// WeightBufferBytes returns the on-chip storage the quantized model needs:
// six 32-bit words per component. With K = 256 this is 6 KiB, which is why
// the paper's design holds the whole model in a single on-board buffer and
// never touches HBM during inference.
func (q *QuantizedModel) WeightBufferBytes() int { return q.K() * 6 * 4 }
