package gmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// TestQuantizedParityOnTrainedModel bounds the log-density error the Q16.16
// datapath introduces on a realistically trained model: near the data the
// per-constant 2^-17 representation error stays far below the admission
// threshold's resolution.
func TestQuantizedParityOnTrainedModel(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	pts := sampleMixture(2000, rng)
	res, err := Fit(samplesFromPoints(pts), TrainConfig{K: 8, MaxIters: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q, rep := Quantize(res.Model)
	if rep.Saturated != 0 {
		t.Fatalf("trained unit-square model saturated %d constants", rep.Saturated)
	}
	if rep.MaxAbsErr > 0.5/qScale+1e-12 {
		t.Fatalf("MaxAbsErr %v exceeds the round-to-nearest bound %v", rep.MaxAbsErr, 0.5/qScale)
	}
	worst := 0.0
	for _, p := range pts[:500] {
		f := res.Model.LogScore(p)
		qs := q.LogScore(p)
		if d := math.Abs(f - qs); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Errorf("max |log-density delta| on training points = %v, want <= 0.05", worst)
	}
}

// TestQuantizeSaturationTightComponent: a near-degenerate component's
// precision entries exceed the Q16.16 integer range and must be reported, not
// silently clamped.
func TestQuantizeSaturationTightComponent(t *testing.T) {
	t.Parallel()
	m, err := New([]Component{
		{Weight: 1, Mean: linalg.V2(0.5, 0.5), Cov: linalg.SymDiag(1e-6, 1e-6)},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, rep := Quantize(m)
	// -0.5 * precision = -5e5, far outside [-32768, 32767].
	if rep.Saturated < 2 {
		t.Fatalf("tight component reported %d saturated constants, want >= 2", rep.Saturated)
	}
	if q.PrecXX[0] != math.MinInt32 || q.PrecYY[0] != math.MinInt32 {
		t.Errorf("saturated precisions not clamped to MinInt32: %d, %d", q.PrecXX[0], q.PrecYY[0])
	}
}

// TestQuantizedBatchMatchesScalar pins the quantized batch kernel to the
// per-point path bit for bit, including far-out points where densities
// underflow.
func TestQuantizedBatchMatchesScalar(t *testing.T) {
	t.Parallel()
	m := batchTestModel(t, 17)
	q, rep := Quantize(m)
	if rep.Saturated != 0 {
		t.Fatalf("test model saturated %d constants", rep.Saturated)
	}
	rng := rand.New(rand.NewSource(4))
	n := 3*scoreBlock + 5
	pages := make([]float64, n)
	times := make([]float64, n)
	dst := make([]float64, n)
	for i := range pages {
		pages[i] = rng.Float64()*40 - 20
		times[i] = rng.Float64()*40 - 20
	}
	var s Scratch
	q.ScorePageTimeBatchScratch(pages, times, dst, &s)
	for i := range pages {
		if want := q.ScorePageTime(pages[i], times[i]); dst[i] != want {
			t.Fatalf("point %d: batch %v != scalar %v (must be bit-identical)", i, dst[i], want)
		}
	}
	// The pooled entry point goes through the same kernel.
	dst2 := make([]float64, n)
	q.ScorePageTimeBatch(pages, times, dst2)
	for i := range dst {
		if dst[i] != dst2[i] {
			t.Fatalf("point %d: pooled %v != scratch %v", i, dst2[i], dst[i])
		}
	}
}

// TestQuantizedHandAssembledFallback: a QuantizedModel built field by field
// (no Quantize call, so no dequantized bundle) must still score batches,
// through the per-point fallback.
func TestQuantizedHandAssembledFallback(t *testing.T) {
	t.Parallel()
	q := &QuantizedModel{
		MeanX: []int32{toQ(0.5)}, MeanY: []int32{toQ(0.5)},
		PrecXX: []int32{toQ(-0.5 * 10)}, PrecXY: []int32{0}, PrecYY: []int32{toQ(-0.5 * 10)},
		LogCoef: []int32{toQ(-1)},
	}
	pages := []float64{0.5, 0.7, 0.1}
	times := []float64{0.5, 0.2, 0.9}
	dst := make([]float64, 3)
	q.ScorePageTimeBatch(pages, times, dst)
	for i := range pages {
		if want := q.ScorePageTime(pages[i], times[i]); dst[i] != want {
			t.Fatalf("point %d: fallback batch %v != scalar %v", i, dst[i], want)
		}
	}
}

// TestQuantizeZeroWeightComponent: a weight-0 component's -Inf log
// coefficient maps to the deliberate floor encoding, not a saturation report,
// and the mixture still scores through its live components.
func TestQuantizeZeroWeightComponent(t *testing.T) {
	t.Parallel()
	m, err := New([]Component{
		{Weight: 0, Mean: linalg.V2(0.2, 0.2), Cov: linalg.SymDiag(0.01, 0.01)},
		{Weight: 1, Mean: linalg.V2(0.8, 0.8), Cov: linalg.SymDiag(0.01, 0.01)},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, rep := Quantize(m)
	if rep.Saturated != 0 {
		t.Fatalf("floor encoding misreported as saturation (%d)", rep.Saturated)
	}
	if q.LogCoef[0] != math.MinInt32 {
		t.Errorf("dead component logCoef = %d, want MinInt32 floor", q.LogCoef[0])
	}
	got := q.LogScore(linalg.V2(0.8, 0.8))
	want := m.LogScore(linalg.V2(0.8, 0.8))
	if math.Abs(got-want) > 0.05 {
		t.Errorf("LogScore with dead component: quantized %v vs float %v", got, want)
	}
}

// TestQuantizedScoreAllocs pins the quantized scoring paths at zero
// allocations: scalar, scratch-threaded batch, and the pooled batch at steady
// state.
func TestQuantizedScoreAllocs(t *testing.T) {
	m := batchTestModel(t, 32)
	q, _ := Quantize(m)
	rng := rand.New(rand.NewSource(5))
	n := 2*scoreBlock + 9
	pages := make([]float64, n)
	times := make([]float64, n)
	dst := make([]float64, n)
	for i := range pages {
		pages[i], times[i] = rng.Float64(), rng.Float64()
	}
	if a := testing.AllocsPerRun(20, func() { q.LogScore(linalg.V2(0.3, 0.4)) }); a != 0 {
		t.Errorf("LogScore allocates %v per run", a)
	}
	var s Scratch
	q.ScorePageTimeBatchScratch(pages, times, dst, &s) // grow the scratch once
	if a := testing.AllocsPerRun(20, func() { q.ScorePageTimeBatchScratch(pages, times, dst, &s) }); a != 0 {
		t.Errorf("ScorePageTimeBatchScratch allocates %v per run at steady state", a)
	}
	if a := testing.AllocsPerRun(20, func() { q.ScorePageTimeBatch(pages, times, dst) }); a != 0 {
		t.Errorf("pooled ScorePageTimeBatch allocates %v per run at steady state", a)
	}
}

// FuzzQuantizeRoundTrip drives Quantize plus the batch/scalar parity contract
// with arbitrary two-component models.
func FuzzQuantizeRoundTrip(f *testing.F) {
	f.Add(0.6, 0.4, 0.2, 0.3, 0.01, 0.002, 0.02, 0.5, 0.5)
	f.Add(1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, -3.0, 7.0)
	f.Add(0.5, 0.5, 0.9, -0.9, 1e-5, 0.0, 1e-5, 0.9, 0.9)
	f.Fuzz(func(t *testing.T, w1, w2, mx, my, cxx, cxy, cyy, px, py float64) {
		// Keep inputs in the regime the serving path feeds (normalized
		// coordinates); extreme magnitudes only exercise float overflow, not
		// the quantizer.
		for _, v := range []float64{w1, w2, mx, my, cxx, cxy, cyy, px, py} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		m, err := New([]Component{
			{Weight: math.Abs(w1), Mean: linalg.V2(mx, my), Cov: linalg.Sym2{XX: cxx, XY: cxy, YY: cyy}},
			{Weight: math.Abs(w2), Mean: linalg.V2(-my, mx), Cov: linalg.SymDiag(0.5, 0.25)},
		})
		if err != nil {
			t.Skip() // invalid covariance or all-zero weights: not a model
		}
		q, rep := Quantize(m)
		if rep.Saturated < 0 || rep.MaxAbsErr < 0 {
			t.Fatalf("malformed report %+v", rep)
		}
		if rep.MaxAbsErr > 0.5/qScale+1e-12 {
			t.Fatalf("MaxAbsErr %v exceeds the round-to-nearest bound", rep.MaxAbsErr)
		}
		if got := q.WeightBufferBytes(); got != 2*6*4 {
			t.Fatalf("WeightBufferBytes = %d", got)
		}
		scalar := q.ScorePageTime(px, py)
		pages, times, dst := []float64{px}, []float64{py}, []float64{0}
		var s Scratch
		q.ScorePageTimeBatchScratch(pages, times, dst, &s)
		if dst[0] != scalar && !(math.IsNaN(dst[0]) && math.IsNaN(scalar)) {
			t.Fatalf("batch %v != scalar %v", dst[0], scalar)
		}
	})
}
