package gmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/trace"
)

func samplesFromPoints(pts []linalg.Vec2) []trace.Sample {
	out := make([]trace.Sample, len(pts))
	for i, p := range pts {
		out[i] = trace.Sample{Page: p.X, Timestamp: p.Y}
	}
	return out
}

func TestFitRecoversTwoClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := sampleMixture(4000, rng)
	cfg := TrainConfig{K: 2, MaxIters: 100, Tol: 1e-6, Seed: 7}
	res, err := Fit(samplesFromPoints(pts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.K() != 2 {
		t.Fatalf("K = %d", res.Model.K())
	}
	// Identify the components by their mean X.
	a, b := res.Model.Components[0], res.Model.Components[1]
	if a.Mean.X > b.Mean.X {
		a, b = b, a
	}
	if math.Abs(a.Mean.X-0.2) > 0.05 || math.Abs(a.Mean.Y-0.3) > 0.05 {
		t.Errorf("cluster A mean = %v, want ~(0.2, 0.3)", a.Mean)
	}
	if math.Abs(b.Mean.X-0.8) > 0.05 || math.Abs(b.Mean.Y-0.7) > 0.05 {
		t.Errorf("cluster B mean = %v, want ~(0.8, 0.7)", b.Mean)
	}
	// Mixing weights should approximate 0.7/0.3.
	if math.Abs(a.Weight-0.7) > 0.07 {
		t.Errorf("cluster A weight = %v, want ~0.7", a.Weight)
	}
}

func TestFitLikelihoodMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := sampleMixture(2000, rng)
	res, err := Fit(samplesFromPoints(pts), TrainConfig{K: 4, MaxIters: 30, Tol: 1e-12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// EM guarantees non-decreasing likelihood (up to component re-seeding
	// and numerics); allow a tiny tolerance.
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1]-1e-6 {
			t.Errorf("LL decreased at iter %d: %v -> %v", i, res.History[i-1], res.History[i])
		}
	}
}

func TestFitConvergesAndValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := sampleMixture(3000, rng)
	res, err := Fit(samplesFromPoints(pts), TrainConfig{K: 8, MaxIters: 200, Tol: 1e-5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("EM did not converge in 200 iterations on easy data")
	}
	if err := res.Model.Validate(); err != nil {
		t.Errorf("trained model invalid: %v", err)
	}
	if res.SamplesUsed != 3000 {
		t.Errorf("SamplesUsed = %d", res.SamplesUsed)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, TrainConfig{}); err == nil {
		t.Error("empty sample set accepted")
	}
	if _, err := Fit([]trace.Sample{{Page: 1, Timestamp: 1}}, TrainConfig{}); err == nil {
		t.Error("single sample accepted")
	}
}

func TestFitHandlesDuplicatePoints(t *testing.T) {
	// All identical points: covariance regularization must keep PD.
	samples := make([]trace.Sample, 100)
	for i := range samples {
		samples[i] = trace.Sample{Page: 0.5, Timestamp: 0.5}
	}
	res, err := Fit(samples, TrainConfig{K: 3, MaxIters: 10, Seed: 2})
	if err != nil {
		t.Fatalf("degenerate data broke EM: %v", err)
	}
	if err := res.Model.Validate(); err != nil {
		t.Errorf("model invalid on degenerate data: %v", err)
	}
}

func TestFitKClampedToSampleCount(t *testing.T) {
	samples := []trace.Sample{
		{Page: 0, Timestamp: 0}, {Page: 1, Timestamp: 1}, {Page: 0.5, Timestamp: 0.2},
	}
	res, err := Fit(samples, TrainConfig{K: 256, MaxIters: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.K() > 3 {
		t.Errorf("K = %d, want <= 3", res.Model.K())
	}
}

func TestFitSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := sampleMixture(50000, rng)
	cfg := TrainConfig{K: 4, MaxIters: 20, Seed: 8, MaxSamples: 5000}
	res, err := Fit(samplesFromPoints(pts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesUsed != 5000 {
		t.Errorf("SamplesUsed = %d, want 5000", res.SamplesUsed)
	}
	if err := res.Model.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFitDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := sampleMixture(1000, rng)
	samples := samplesFromPoints(pts)
	cfg := TrainConfig{K: 4, MaxIters: 15, Seed: 11}
	r1, err := Fit(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fit(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Model.Components {
		c1, c2 := r1.Model.Components[i], r2.Model.Components[i]
		if c1.Mean != c2.Mean || c1.Weight != c2.Weight || c1.Cov != c2.Cov {
			t.Fatalf("component %d differs across identical runs", i)
		}
	}
}

func TestFitTraceEndToEnd(t *testing.T) {
	// Synthetic trace with two hot page clusters.
	rng := rand.New(rand.NewSource(77))
	var tr trace.Trace
	for i := 0; i < 20000; i++ {
		var page uint64
		if rng.Float64() < 0.5 {
			page = uint64(1000 + rng.Intn(50))
		} else {
			page = uint64(9000 + rng.Intn(50))
		}
		tr = append(tr, trace.Record{Op: trace.Read, Addr: page << trace.PageShift})
	}
	tr.Stamp()
	res, norm, err := FitTrace(tr, trace.DefaultTransformConfig(), TrainConfig{K: 8, MaxIters: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Hot cluster centers should score far above a cold page.
	p1, t1 := norm.ApplyPageTime(1025, 0)
	pc, tc := norm.ApplyPageTime(5000, 0)
	hot := res.Model.ScorePageTime(p1, t1)
	cold := res.Model.ScorePageTime(pc, tc)
	if hot <= cold {
		t.Errorf("hot page score %v <= cold page score %v", hot, cold)
	}
}

func TestFitTraceTooShort(t *testing.T) {
	tr := trace.Trace{{Op: trace.Read, Addr: 0}}
	if _, _, err := FitTrace(tr, trace.DefaultTransformConfig(), TrainConfig{}); err == nil {
		t.Error("short trace accepted")
	}
}

func TestKMeansPlusPlus(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := sampleMixture(1000, rng)
	centers := kMeansPlusPlus(pts, 2, rng, 10)
	if len(centers) != 2 {
		t.Fatalf("got %d centers", len(centers))
	}
	a, b := centers[0], centers[1]
	if a.X > b.X {
		a, b = b, a
	}
	if math.Abs(a.X-0.2) > 0.1 || math.Abs(b.X-0.8) > 0.1 {
		t.Errorf("centers %v, %v not near cluster means", a, b)
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if kMeansPlusPlus(nil, 3, rand.New(rand.NewSource(1)), 2) != nil {
		t.Error("empty points should give nil")
	}
	pts := []linalg.Vec2{{X: 1, Y: 1}}
	c := kMeansPlusPlus(pts, 5, rand.New(rand.NewSource(1)), 2)
	if len(c) != 1 {
		t.Errorf("k clamp failed: %d centers", len(c))
	}
	// All-identical points: must not loop forever.
	same := make([]linalg.Vec2, 10)
	for i := range same {
		same[i] = linalg.V2(2, 2)
	}
	c = kMeansPlusPlus(same, 3, rand.New(rand.NewSource(1)), 2)
	if len(c) != 3 {
		t.Errorf("identical points: %d centers, want 3", len(c))
	}
}

func TestTrainConfigSanitized(t *testing.T) {
	c := TrainConfig{}.sanitized()
	d := DefaultTrainConfig()
	if c.K != d.K || c.MaxIters != d.MaxIters || c.Tol != d.Tol {
		t.Errorf("sanitized zero config = %+v", c)
	}
}

// TestFitParallelEStepBitIdentical pins the E-step sharding contract: chunk
// boundaries and the reduction order depend only on the point count, so the
// trained model is bit-identical at any worker count.
func TestFitParallelEStepBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := sampleMixture(6000, rng)
	samples := samplesFromPoints(pts)
	fit := func(workers int) *TrainResult {
		res, err := Fit(samples, TrainConfig{K: 16, MaxIters: 12, Seed: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := fit(1), fit(8)
	if seq.Iters != par.Iters || seq.LogLikelihood != par.LogLikelihood {
		t.Fatalf("iters/LL differ: seq %d/%v par %d/%v",
			seq.Iters, seq.LogLikelihood, par.Iters, par.LogLikelihood)
	}
	for i := range seq.History {
		if seq.History[i] != par.History[i] {
			t.Fatalf("history[%d]: seq %v != par %v", i, seq.History[i], par.History[i])
		}
	}
	for i := range seq.Model.Components {
		a, b := seq.Model.Components[i], par.Model.Components[i]
		if a.Weight != b.Weight || a.Mean != b.Mean || a.Cov != b.Cov {
			t.Fatalf("component %d differs between workers=1 and workers=8:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestChunkRanges(t *testing.T) {
	cs := chunkRanges(5000, 2048)
	if len(cs) != 3 || cs[0] != (chunk{0, 2048}) || cs[2] != (chunk{4096, 5000}) {
		t.Fatalf("chunkRanges(5000, 2048) = %v", cs)
	}
	if got := chunkRanges(0, 2048); len(got) != 0 {
		t.Fatalf("chunkRanges(0) = %v", got)
	}
	if got := chunkRanges(10, 2048); len(got) != 1 || got[0] != (chunk{0, 10}) {
		t.Fatalf("chunkRanges(10) = %v", got)
	}
}
