package gmm

import (
	"math"

	"repro/internal/linalg"
)

// scoreBlock is the number of points scored per block. A block's scratch is
// K*scoreBlock float64s (128 KiB at the paper's K = 256), sized to stay in
// L2 while amortizing the per-component parameter loads across the block.
const scoreBlock = 64

// logScoreBlock scores one block of at most scoreBlock points into dst: each
// component's fused log-density sweep over the packed SoA constants, then the
// same max-then-sum log-sum-exp as LogScore per point. ld is the caller's
// component-major block buffer (Scratch.block). The arithmetic — per-point
// component order included — matches LogScore exactly, so batched and
// per-call scoring are bit-identical.
func (m *Model) logScoreBlock(dst, xs, ys, ld []float64) {
	k := len(m.Components)
	n := len(xs)
	for c := 0; c < k; c++ {
		linalg.LogDensityBatch(ld[c*scoreBlock:c*scoreBlock+n], xs, ys,
			m.soa.meanX[c], m.soa.meanY[c],
			m.soa.pxx[c], m.soa.pxy[c], m.soa.pyy[c], m.soa.logCoef[c])
	}
	for i := 0; i < n; i++ {
		maxLog := math.Inf(-1)
		for c := 0; c < k; c++ {
			if v := ld[c*scoreBlock+i]; v > maxLog {
				maxLog = v
			}
		}
		if math.IsInf(maxLog, -1) {
			dst[i] = maxLog
			continue
		}
		sum := 0.0
		for c := 0; c < k; c++ {
			sum += math.Exp(ld[c*scoreBlock+i] - maxLog)
		}
		dst[i] = maxLog + math.Log(sum)
	}
}

// LogScoreBatchScratch writes log G(x) for every x into dst, scoring
// block-wise through the caller-owned scratch; it allocates nothing once the
// scratch has grown to this model's K. dst must be at least len(xs) long.
func (m *Model) LogScoreBatchScratch(xs []linalg.Vec2, dst []float64, s *Scratch) {
	if len(xs) == 0 {
		return
	}
	_ = dst[len(xs)-1]
	ld := s.block(len(m.Components))
	bx, by := s.stage()
	for start := 0; start < len(xs); start += scoreBlock {
		end := start + scoreBlock
		if end > len(xs) {
			end = len(xs)
		}
		n := end - start
		for i, x := range xs[start:end] {
			bx[i], by[i] = x.X, x.Y
		}
		m.logScoreBlock(dst[start:end], bx[:n], by[:n], ld)
	}
}

// LogScoreBatch is LogScoreBatchScratch over pooled scratch — the
// compatibility entry point for callers that do not manage their own. It is
// allocation-free at steady state (the pool retains warm scratch), but
// callers on a hot path with a natural owner (one scratch per partition,
// say) should thread a Scratch explicitly.
func (m *Model) LogScoreBatch(xs []linalg.Vec2, dst []float64) {
	s := scratchPool.Get().(*Scratch)
	m.LogScoreBatchScratch(xs, dst, s)
	scratchPool.Put(s)
}

// ScorePageTimeBatchScratch fills dst with the mixture density at each
// (page, timestamp) pair, scoring directly from the coordinate slices — no
// intermediate point buffer — through the caller-owned scratch. It is the
// zero-allocation form of the policy package's batch-scoring hook.
func (m *Model) ScorePageTimeBatchScratch(pages, times, dst []float64, s *Scratch) {
	if len(pages) == 0 {
		return
	}
	_ = dst[len(pages)-1]
	_ = times[len(pages)-1]
	ld := s.block(len(m.Components))
	for start := 0; start < len(pages); start += scoreBlock {
		end := start + scoreBlock
		if end > len(pages) {
			end = len(pages)
		}
		out := dst[start:end]
		m.logScoreBlock(out, pages[start:end], times[start:end], ld)
		for i := range out {
			out[i] = math.Exp(out[i])
		}
	}
}

// ScorePageTimeBatch is the block form of ScorePageTime over pooled scratch.
// It implements the policy package's BatchScorer interface, the hook the
// replay engine uses to precompute per-access scores in blocks instead of
// one inference call per access.
func (m *Model) ScorePageTimeBatch(pages, times, dst []float64) {
	s := scratchPool.Get().(*Scratch)
	m.ScorePageTimeBatchScratch(pages, times, dst, s)
	scratchPool.Put(s)
}
