package gmm

import (
	"math"

	"repro/internal/linalg"
)

// scoreBlock is the number of points scored per block. A block's scratch is
// K*scoreBlock float64s (128 KiB at the paper's K = 256), sized to stay in
// L2 while amortizing the per-component parameter loads across the block.
const scoreBlock = 64

// LogScoreBatch writes log G(x) for every x into dst, evaluating the
// mixture block-wise: for each block of points it streams every component's
// Mahalanobis distances through linalg.MahalanobisSquaredBatch, then runs
// the same max-then-sum log-sum-exp as LogScore per point. The arithmetic
// (per-point component order included) matches LogScore exactly, so batched
// and per-call scoring are bit-identical — the property that lets the
// replay engine precompute scores without changing any simulation result.
//
// dst must be at least len(xs) long.
func (m *Model) LogScoreBatch(xs []linalg.Vec2, dst []float64) {
	if len(xs) == 0 {
		return
	}
	_ = dst[len(xs)-1]
	k := len(m.Components)
	// ld[c*scoreBlock+i] is component c's log-density at block point i.
	ld := make([]float64, k*scoreBlock)
	for start := 0; start < len(xs); start += scoreBlock {
		end := start + scoreBlock
		if end > len(xs) {
			end = len(xs)
		}
		block := xs[start:end]
		n := len(block)
		for c := range m.Components {
			comp := &m.Components[c]
			row := ld[c*scoreBlock : c*scoreBlock+n]
			linalg.MahalanobisSquaredBatch(row, block, comp.Mean, comp.precision)
			for i := range row {
				row[i] = comp.logCoef - 0.5*row[i]
			}
		}
		for i := 0; i < n; i++ {
			maxLog := math.Inf(-1)
			for c := 0; c < k; c++ {
				if v := ld[c*scoreBlock+i]; v > maxLog {
					maxLog = v
				}
			}
			if math.IsInf(maxLog, -1) {
				dst[start+i] = maxLog
				continue
			}
			sum := 0.0
			for c := 0; c < k; c++ {
				sum += math.Exp(ld[c*scoreBlock+i] - maxLog)
			}
			dst[start+i] = maxLog + math.Log(sum)
		}
	}
}

// ScorePageTimeBatch is the block form of ScorePageTime: it fills dst with
// the mixture density at each (page, timestamp) pair. It implements the
// policy package's BatchScorer interface, the hook the replay engine uses to
// precompute per-access scores in blocks instead of one inference call per
// access.
func (m *Model) ScorePageTimeBatch(pages, times, dst []float64) {
	xs := make([]linalg.Vec2, len(pages))
	for i := range pages {
		xs[i] = linalg.V2(pages[i], times[i])
	}
	m.LogScoreBatch(xs, dst)
	for i := range dst[:len(xs)] {
		dst[i] = math.Exp(dst[i])
	}
}
