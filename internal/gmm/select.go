package gmm

import (
	"errors"
	"math"

	"repro/internal/linalg"
	"repro/internal/trace"
)

// This file adds model selection on top of the EM trainer. The paper fixes
// K = 256 empirically; these utilities quantify that choice: information
// criteria score the likelihood/complexity trade-off, and ChooseK sweeps a
// ladder of K values the way a deployment would tune the engine for a new
// workload class.

// freeParameters returns the number of free parameters of a K-component
// 2-D full-covariance mixture: per component 2 mean + 3 covariance entries,
// plus K-1 free mixing weights.
func freeParameters(k int) int { return k*5 + (k - 1) }

// BIC returns the Bayesian Information Criterion of the model on the
// points: -2*logL + p*ln(n). Lower is better; the ln(n) complexity term
// penalizes large K harder as the training set grows.
func (m *Model) BIC(points []linalg.Vec2) float64 {
	n := float64(len(points))
	if n == 0 {
		return math.Inf(1)
	}
	logL := m.MeanLogLikelihood(points) * n
	return -2*logL + float64(freeParameters(m.K()))*math.Log(n)
}

// AIC returns the Akaike Information Criterion: -2*logL + 2p.
func (m *Model) AIC(points []linalg.Vec2) float64 {
	n := float64(len(points))
	if n == 0 {
		return math.Inf(1)
	}
	logL := m.MeanLogLikelihood(points) * n
	return -2*logL + 2*float64(freeParameters(m.K()))
}

// Criterion selects the scoring rule for ChooseK.
type Criterion int

const (
	// ByBIC selects by Bayesian Information Criterion.
	ByBIC Criterion = iota
	// ByAIC selects by Akaike Information Criterion.
	ByAIC
)

// KSelection reports one sweep entry.
type KSelection struct {
	K     int
	Score float64
	// Result is the trained model for this K.
	Result *TrainResult
}

// ChooseK trains one model per candidate K and returns the winner under the
// criterion together with the full sweep (ascending K). Candidates larger
// than the sample count are clamped by Fit; duplicate effective K values are
// still evaluated once each as given.
func ChooseK(samples []trace.Sample, ks []int, cfg TrainConfig, crit Criterion) (best KSelection, sweep []KSelection, err error) {
	if len(ks) == 0 {
		return best, nil, errors.New("gmm: no K candidates")
	}
	points := make([]linalg.Vec2, len(samples))
	for i, s := range samples {
		points[i] = linalg.V2(s.Page, s.Timestamp)
	}
	for i, k := range ks {
		c := cfg
		c.K = k
		res, ferr := Fit(samples, c)
		if ferr != nil {
			return best, sweep, ferr
		}
		var score float64
		if crit == ByAIC {
			score = res.Model.AIC(points)
		} else {
			score = res.Model.BIC(points)
		}
		entry := KSelection{K: k, Score: score, Result: res}
		sweep = append(sweep, entry)
		if i == 0 || score < best.Score {
			best = entry
		}
	}
	return best, sweep, nil
}
