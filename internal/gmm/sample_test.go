package gmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/trace"
)

func TestSampleMatchesMoments(t *testing.T) {
	m, err := New([]Component{
		{Weight: 1, Mean: linalg.V2(2, -1), Cov: linalg.Sym2{XX: 0.5, XY: 0.2, YY: 0.3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts, err := m.Sample(50000, rng)
	if err != nil {
		t.Fatal(err)
	}
	var mx, my float64
	for _, p := range pts {
		mx += p.X
		my += p.Y
	}
	n := float64(len(pts))
	mx /= n
	my /= n
	if math.Abs(mx-2) > 0.02 || math.Abs(my+1) > 0.02 {
		t.Errorf("sample mean (%v, %v), want (2, -1)", mx, my)
	}
	var cxx, cxy, cyy float64
	for _, p := range pts {
		dx, dy := p.X-mx, p.Y-my
		cxx += dx * dx
		cxy += dx * dy
		cyy += dy * dy
	}
	cxx /= n
	cxy /= n
	cyy /= n
	if math.Abs(cxx-0.5) > 0.02 || math.Abs(cxy-0.2) > 0.02 || math.Abs(cyy-0.3) > 0.02 {
		t.Errorf("sample covariance (%v, %v, %v), want (0.5, 0.2, 0.3)", cxx, cxy, cyy)
	}
}

func TestSampleMixtureWeights(t *testing.T) {
	m, err := New([]Component{
		{Weight: 0.8, Mean: linalg.V2(0, 0), Cov: linalg.SymDiag(0.01, 0.01)},
		{Weight: 0.2, Mean: linalg.V2(10, 10), Cov: linalg.SymDiag(0.01, 0.01)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	pts, err := m.Sample(10000, rng)
	if err != nil {
		t.Fatal(err)
	}
	near := 0
	for _, p := range pts {
		if p.X < 5 {
			near++
		}
	}
	frac := float64(near) / float64(len(pts))
	if math.Abs(frac-0.8) > 0.02 {
		t.Errorf("component 0 fraction = %v, want 0.8", frac)
	}
}

func TestSampleErrors(t *testing.T) {
	m, _ := New([]Component{{Weight: 1, Mean: linalg.V2(0, 0), Cov: linalg.SymIdentity()}})
	if _, err := m.Sample(-1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative count accepted")
	}
	if pts, err := m.Sample(0, rand.New(rand.NewSource(1))); err != nil || len(pts) != 0 {
		t.Error("zero count should give empty slice")
	}
}

func TestSynthesizeTraceRoundTrip(t *testing.T) {
	// Fit a model on a two-cluster trace, synthesize a new trace from it,
	// and verify the synthetic trace concentrates on the same clusters.
	var orig trace.Trace
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30000; i++ {
		var page uint64
		if rng.Float64() < 0.6 {
			page = uint64(1000 + rng.Intn(60))
		} else {
			page = uint64(8000 + rng.Intn(60))
		}
		orig = append(orig, trace.Record{Op: trace.Read, Addr: page << trace.PageShift})
	}
	orig.Stamp()
	cfg := trace.DefaultTransformConfig()
	res, norm, err := FitTrace(orig, cfg, TrainConfig{K: 4, MaxIters: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	synth, err := SynthesizeTrace(res.Model, norm, cfg, 20000, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(synth) != 20000 {
		t.Fatalf("synthetic length %d", len(synth))
	}
	// Most synthetic pages must land near one of the original clusters.
	inCluster := 0
	writes := 0
	for _, r := range synth {
		p := r.Page()
		if (p >= 800 && p <= 1300) || (p >= 7800 && p <= 8300) {
			inCluster++
		}
		if r.Op == trace.Write {
			writes++
		}
	}
	if frac := float64(inCluster) / float64(len(synth)); frac < 0.9 {
		t.Errorf("only %.1f%% of synthetic pages near original clusters", 100*frac)
	}
	wf := float64(writes) / float64(len(synth))
	if wf < 0.2 || wf > 0.3 {
		t.Errorf("write fraction %v, want ~0.25", wf)
	}
	// Timestamps must be stamped in arrival order.
	for i := 1; i < len(synth); i++ {
		if synth[i].Time != synth[i-1].Time+1 {
			t.Fatal("synthetic trace not stamped")
		}
	}
}

func TestSynthesizeTraceErrors(t *testing.T) {
	m, _ := New([]Component{{Weight: 1, Mean: linalg.V2(0.5, 0.5), Cov: linalg.SymDiag(0.01, 0.01)}})
	if _, err := SynthesizeTrace(m, trace.Normalizer{PageScale: 1, TimeScale: 1},
		trace.DefaultTransformConfig(), 0, 0, 1); err == nil {
		t.Error("zero length accepted")
	}
	// Zero scales are defaulted rather than dividing by zero.
	tr, err := SynthesizeTrace(m, trace.Normalizer{}, trace.TransformConfig{}, 100, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 100 {
		t.Errorf("length %d", len(tr))
	}
}

func TestSynthesizedTraceIsGMMFriendly(t *testing.T) {
	// The loop closes: a GMM trained on a synthetic trace produced by
	// another GMM should recover similar structure (high likelihood).
	m, _ := New([]Component{
		{Weight: 0.5, Mean: linalg.V2(0.2, 0.3), Cov: linalg.SymDiag(0.002, 0.01)},
		{Weight: 0.5, Mean: linalg.V2(0.8, 0.7), Cov: linalg.SymDiag(0.002, 0.01)},
	})
	norm := trace.Normalizer{PageOffset: 0, PageScale: 1.0 / 10000, TimeOffset: 0, TimeScale: 1.0 / 9999}
	cfg := trace.DefaultTransformConfig()
	synth, err := SynthesizeTrace(m, norm, cfg, 30000, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := FitTrace(synth, cfg, TrainConfig{K: 2, MaxIters: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Model.Validate(); err != nil {
		t.Error(err)
	}
	// Two clusters at page ~2000 and ~8000: the refit means must split.
	a, b := res.Model.Components[0].Mean.X, res.Model.Components[1].Mean.X
	if a > b {
		a, b = b, a
	}
	if b-a < 0.3 {
		t.Errorf("refit means %v and %v did not separate", a, b)
	}
}
