package gmm

import (
	"math/rand"

	"repro/internal/linalg"
)

// kMeansPlusPlus picks k initial centers from points using the k-means++
// D^2-weighted seeding, then refines them with a bounded number of Lloyd
// iterations. It is the initialization step of the EM trainer: starting EM
// from spread-out centers avoids the degenerate local optima that random
// starts routinely hit on clustered memory traces.
func kMeansPlusPlus(points []linalg.Vec2, k int, rng *rand.Rand, lloydIters int) []linalg.Vec2 {
	if len(points) == 0 || k <= 0 {
		return nil
	}
	if k > len(points) {
		k = len(points)
	}
	centers := make([]linalg.Vec2, 0, k)
	centers = append(centers, points[rng.Intn(len(points))])

	// D^2 sampling for the remaining centers.
	d2 := make([]float64, len(points))
	for len(centers) < k {
		total := 0.0
		last := centers[len(centers)-1]
		for i, p := range points {
			d := p.Sub(last).Norm2()
			if len(centers) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All points coincide with existing centers; duplicate one.
			centers = append(centers, points[rng.Intn(len(points))])
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		chosen := len(points) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				chosen = i
				break
			}
		}
		centers = append(centers, points[chosen])
	}

	// Lloyd refinement.
	assign := make([]int, len(points))
	for iter := 0; iter < lloydIters; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, p.Sub(centers[0]).Norm2()
			for c := 1; c < len(centers); c++ {
				if d := p.Sub(centers[c]).Norm2(); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		sums := make([]linalg.Vec2, len(centers))
		counts := make([]int, len(centers))
		for i, p := range points {
			sums[assign[i]] = sums[assign[i]].Add(p)
			counts[assign[i]]++
		}
		for c := range centers {
			if counts[c] > 0 {
				centers[c] = sums[c].Scale(1 / float64(counts[c]))
			}
		}
	}
	return centers
}
