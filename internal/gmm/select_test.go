package gmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestInformationCriteria(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := sampleMixture(2000, rng)
	samples := samplesFromPoints(pts)

	res2, err := Fit(samples, TrainConfig{K: 2, MaxIters: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Fit(samples, TrainConfig{K: 1, MaxIters: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The data has two clusters: K=2 must score better (lower) than K=1
	// under both criteria.
	if res2.Model.BIC(pts) >= res1.Model.BIC(pts) {
		t.Errorf("BIC(K=2)=%v >= BIC(K=1)=%v on 2-cluster data",
			res2.Model.BIC(pts), res1.Model.BIC(pts))
	}
	if res2.Model.AIC(pts) >= res1.Model.AIC(pts) {
		t.Errorf("AIC(K=2) >= AIC(K=1) on 2-cluster data")
	}
	// Empty point set: +Inf.
	if !math.IsInf(res2.Model.BIC(nil), 1) || !math.IsInf(res2.Model.AIC(nil), 1) {
		t.Error("criteria on empty data should be +Inf")
	}
}

func TestBICPenalizesComplexityOnSimpleData(t *testing.T) {
	// Single Gaussian data: a huge mixture should NOT win under BIC.
	rng := rand.New(rand.NewSource(2))
	pts := make([]linalg.Vec2, 1500)
	for i := range pts {
		pts[i] = linalg.V2(rng.NormFloat64()*0.1+0.5, rng.NormFloat64()*0.1+0.5)
	}
	samples := samplesFromPoints(pts)
	res1, err := Fit(samples, TrainConfig{K: 1, MaxIters: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res40, err := Fit(samples, TrainConfig{K: 40, MaxIters: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res40.Model.BIC(pts) < res1.Model.BIC(pts) {
		t.Errorf("BIC preferred K=40 (%v) over K=1 (%v) on single-cluster data",
			res40.Model.BIC(pts), res1.Model.BIC(pts))
	}
}

func TestChooseK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := samplesFromPoints(sampleMixture(2000, rng))
	best, sweep, err := ChooseK(samples, []int{1, 2, 6}, TrainConfig{MaxIters: 30, Seed: 1}, ByBIC)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 3 {
		t.Fatalf("sweep has %d entries", len(sweep))
	}
	if best.K != 2 {
		t.Errorf("ChooseK picked K=%d, want 2 for two-cluster data", best.K)
	}
	for _, e := range sweep {
		if e.Result == nil || e.Result.Model.K() == 0 {
			t.Error("sweep entry missing trained model")
		}
	}
	if _, _, err := ChooseK(samples, nil, TrainConfig{}, ByBIC); err == nil {
		t.Error("empty K list accepted")
	}
}

func TestChooseKByAIC(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := samplesFromPoints(sampleMixture(1500, rng))
	best, _, err := ChooseK(samples, []int{1, 2}, TrainConfig{MaxIters: 25, Seed: 2}, ByAIC)
	if err != nil {
		t.Fatal(err)
	}
	if best.K != 2 {
		t.Errorf("AIC picked K=%d, want 2", best.K)
	}
}

func TestDiagonalCovTraining(t *testing.T) {
	// Correlated data: full covariance captures the tilt, diagonal cannot,
	// but the diagonal model must still train, validate, and have XY == 0.
	rng := rand.New(rand.NewSource(5))
	pts := make([]linalg.Vec2, 2000)
	for i := range pts {
		x := rng.NormFloat64() * 0.2
		pts[i] = linalg.V2(x+0.5, 0.8*x+0.5+rng.NormFloat64()*0.05)
	}
	samples := samplesFromPoints(pts)

	diag, err := Fit(samples, TrainConfig{K: 2, MaxIters: 30, Seed: 1, DiagonalCov: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range diag.Model.Components {
		if c.Cov.XY != 0 {
			t.Errorf("component %d has off-diagonal covariance %v", i, c.Cov.XY)
		}
	}
	if err := diag.Model.Validate(); err != nil {
		t.Error(err)
	}
	full, err := Fit(samples, TrainConfig{K: 2, MaxIters: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Full covariance must fit tilted data at least as well.
	if full.LogLikelihood < diag.LogLikelihood {
		t.Errorf("full-cov LL %v < diagonal LL %v on correlated data",
			full.LogLikelihood, diag.LogLikelihood)
	}
}
