package device

import (
	"repro/internal/cxl"
	"repro/internal/fpga"
	"repro/internal/trace"
)

// NsToCycles converts virtual nanoseconds to device clock cycles at the
// fpga package's 233 MHz fabric clock. Pure float64 arithmetic on int64
// inputs: deterministic across platforms.
func NsToCycles(ns int64) int64 {
	return int64(float64(ns) * fpga.ClockMHz / 1000)
}

// CyclesToNs converts device clock cycles back to nanoseconds.
func CyclesToNs(c int64) int64 {
	return int64(float64(c) * fpga.CycleNs)
}

// Result reports one request's trip through a Dataflow model.
type Result struct {
	// DoneNs is the completion time; LinkNs and DevNs are the CXL round-trip
	// and device-pipeline components of the sojourn (DoneNs = arrival +
	// LinkNs + DevNs).
	DoneNs, LinkNs, DevNs int64
	// QueueDepth is the outstanding-window occupancy the arrival observed,
	// before this request entered.
	QueueDepth int
	// Stalled marks arrivals gated by a full outstanding window.
	Stalled bool
}

// Dataflow routes device accesses through the Fig. 5 pipeline model: a CXL
// round trip wraps entry into a per-module cycle timeline (tag compare,
// policy-engine inference, overlapped SSD read/write-back) behind a bounded
// outstanding-request window, so latencies reflect queueing and backpressure
// instead of table lookups. Pages below HostPages never reach the device:
// they are host-DRAM resident and served locally at HostLatNs.
type Dataflow struct {
	Link     *cxl.Link
	Timeline *fpga.DeviceTimeline
	// HostPages bounds the host-DRAM-resident prefix of the page space
	// (0 routes everything to the device); HostLatNs is its access time.
	HostPages uint64
	HostLatNs int64
}

// HostRoute reports whether the page is host-DRAM resident and, if so, its
// local access latency.
func (d *Dataflow) HostRoute(page uint64) (int64, bool) {
	if page < d.HostPages {
		return d.HostLatNs, true
	}
	return 0, false
}

// Serve routes one device access arriving at arrivalNs through the link and
// the pipeline timeline. Arrivals must be fed in non-decreasing order.
func (d *Dataflow) Serve(page uint64, out Outcome, arrivalNs int64) Result {
	rt := d.Link.RoundTrip(!out.Write, trace.PageSize, arrivalNs) - arrivalNs
	ev := fpga.AccessEvent{
		Page:      page,
		Write:     out.Write,
		Hit:       out.Hit,
		WriteBack: out.WriteBack,
		Bypassed:  out.Bypassed(),
	}
	arrivalCycle := NsToCycles(arrivalNs)
	depth := d.Timeline.Depth(arrivalCycle)
	_, resp, stalled := d.Timeline.Advance(ev, arrivalCycle)
	devNs := CyclesToNs(resp) - CyclesToNs(arrivalCycle)
	return Result{
		DoneNs:     arrivalNs + rt + devNs,
		LinkNs:     rt,
		DevNs:      devNs,
		QueueDepth: depth,
		Stalled:    stalled,
	}
}
