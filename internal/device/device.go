// Package device holds the ICGMM device timing models shared by the online
// serving path (internal/serve) and the whole-machine simulator
// (internal/core): given a functional cache outcome, a model answers "how
// long did this access take". Two implementations exist — Flat, the
// latency-constant arithmetic both callers historically duplicated, and
// Dataflow, which routes requests through the fpga package's per-module
// pipeline timeline so sojourn times reflect queueing and backpressure.
package device

import (
	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/hbm"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// Outcome is a functional cache access result annotated with the request
// direction — everything a timing model needs to know about what the device
// did, decoupled from who asked.
type Outcome struct {
	Hit       bool
	Admitted  bool
	WriteBack bool
	Write     bool
	// VictimPage is the dirty victim written back when WriteBack is set.
	VictimPage uint64
}

// Bypassed marks misses the policy declined to cache.
func (o Outcome) Bypassed() bool { return !o.Hit && !o.Admitted }

// OutcomeOf annotates a cache access result with the request direction.
func OutcomeOf(res cache.AccessResult, write bool) Outcome {
	return Outcome{
		Hit:        res.Hit,
		Admitted:   res.Admitted,
		WriteBack:  res.WriteBack,
		Write:      write,
		VictimPage: res.VictimPage,
	}
}

// Flat is the latency-constant timing model: HBM on hits, SSD read (plus
// victim write-back) on fills, direct SSD on bypasses, a fixed policy-engine
// inference overhead per miss (hidden behind the device time when Overlap is
// set), and one CXL round trip wrapping every access.
type Flat struct {
	Mem  *hbm.Memory
	Dev  *ssd.Device
	Link *cxl.Link
	// OverheadNs is the policy engine's per-miss inference latency; Overlap
	// hides it behind the SSD access as in Sec. 4.3.
	OverheadNs int64
	Overlap    bool
}

// Serve times one device access beginning at startNs. It returns the CXL
// round-trip and device-internal components of the latency (total = rt +
// dev), plus the policy-engine busy time the access accounted for — the
// overhead cycles not hidden behind the device time.
func (f *Flat) Serve(page uint64, out Outcome, startNs int64) (rtNs, devNs, busyNs int64) {
	switch {
	case out.Hit:
		devNs = f.Mem.Access(page, startNs) - startNs
	case out.Admitted:
		done := f.Dev.Access(ssd.OpRead, page, startNs)
		devNs = done - startNs
		if out.WriteBack {
			wb := f.Dev.Access(ssd.OpWrite, out.VictimPage, startNs)
			devNs += wb - startNs
		}
		// Fill lands in device DRAM before the completion returns.
		devNs += f.Mem.Access(page, startNs+devNs) - (startNs + devNs)
	case out.Write:
		devNs = f.Dev.Access(ssd.OpWrite, page, startNs) - startNs
	default:
		devNs = f.Dev.Access(ssd.OpRead, page, startNs) - startNs
	}

	if !out.Hit && f.OverheadNs > 0 {
		if f.Overlap {
			if f.OverheadNs > devNs {
				busyNs = f.OverheadNs - devNs
				devNs = f.OverheadNs
			}
		} else {
			busyNs = f.OverheadNs
			devNs += f.OverheadNs
		}
	}

	// CXL round trip wraps the device service time: request over, data back
	// (page payload on the read completion).
	rtNs = f.Link.RoundTrip(!out.Write, trace.PageSize, startNs) - startNs
	return rtNs, devNs, busyNs
}
