package device

import (
	"testing"
	"time"

	"repro/internal/cxl"
	"repro/internal/fpga"
	"repro/internal/hbm"
	"repro/internal/ssd"
)

func newFlat(t *testing.T, overheadNs int64, overlap bool) *Flat {
	t.Helper()
	mem, err := hbm.New(hbm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ssd.New(ssd.TLC(), 8)
	if err != nil {
		t.Fatal(err)
	}
	link, err := cxl.NewLink(cxl.DefaultLinkConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &Flat{Mem: mem, Dev: dev, Link: link, OverheadNs: overheadNs, Overlap: overlap}
}

func TestFlatServePaths(t *testing.T) {
	hbmNs := hbm.DefaultConfig().AccessLatency.Nanoseconds()
	readNs := ssd.TLC().ReadLatency.Nanoseconds()
	writeNs := ssd.TLC().WriteLatency.Nanoseconds()
	overhead := (3 * time.Microsecond).Nanoseconds()

	f := newFlat(t, overhead, true)
	rt0, _, _ := f.Serve(1, Outcome{Hit: true}, 0)

	cases := []struct {
		name    string
		out     Outcome
		wantDev int64
		wantBsy int64
	}{
		// Fresh pages each case: no bank/channel queueing between cases.
		{"hit", Outcome{Hit: true}, hbmNs, 0},
		{"fill", Outcome{Admitted: true}, readNs + hbmNs, 0},
		{"fill+writeback", Outcome{Admitted: true, WriteBack: true, VictimPage: 900}, readNs + writeNs + hbmNs, 0},
		{"bypass read", Outcome{}, readNs, 0},
		{"bypass write", Outcome{Write: true}, writeNs, 0},
	}
	start := int64(0)
	for i, tc := range cases {
		f := newFlat(t, overhead, true)
		page := uint64(100*i + 1)
		rt, dev, busy := f.Serve(page, tc.out, start)
		if rt != rt0 && tc.out.Write == cases[0].out.Write {
			t.Errorf("%s: round trip %d, want %d", tc.name, rt, rt0)
		}
		if dev != tc.wantDev {
			t.Errorf("%s: dev %d ns, want %d", tc.name, dev, tc.wantDev)
		}
		if busy != tc.wantBsy {
			t.Errorf("%s: busy %d ns, want %d", tc.name, busy, tc.wantBsy)
		}
	}
}

// With overlap the overhead only surfaces (and accrues busy time) when it
// exceeds the device time; serialized it always adds on top.
func TestFlatServeOverheadAccounting(t *testing.T) {
	hbmNs := hbm.DefaultConfig().AccessLatency.Nanoseconds()
	readNs := ssd.TLC().ReadLatency.Nanoseconds()
	long := readNs + 10*hbmNs // overhead larger than any single device access

	overlap := newFlat(t, long, true)
	if _, dev, busy := overlap.Serve(1, Outcome{}, 0); dev != long || busy != long-readNs {
		t.Fatalf("overlapped long overhead: dev=%d busy=%d, want dev=%d busy=%d",
			dev, busy, long, long-readNs)
	}
	// Hits never pay the engine.
	if _, dev, busy := overlap.Serve(2, Outcome{Hit: true}, 0); dev != hbmNs || busy != 0 {
		t.Fatalf("hit paid the engine: dev=%d busy=%d", dev, busy)
	}

	serial := newFlat(t, 1000, false)
	if _, dev, busy := serial.Serve(1, Outcome{}, 0); dev != readNs+1000 || busy != 1000 {
		t.Fatalf("serialized overhead: dev=%d busy=%d, want dev=%d busy=1000",
			dev, busy, readNs+1000)
	}

	hidden := newFlat(t, 1000, true)
	if _, dev, busy := hidden.Serve(1, Outcome{}, 0); dev != readNs || busy != 0 {
		t.Fatalf("hidden overhead surfaced: dev=%d busy=%d", dev, busy)
	}
}

func TestOutcomeOfAndBypassed(t *testing.T) {
	if !(Outcome{}).Bypassed() {
		t.Fatal("miss without admission must be bypassed")
	}
	if (Outcome{Hit: true}).Bypassed() || (Outcome{Admitted: true}).Bypassed() {
		t.Fatal("hits and fills are not bypasses")
	}
}

func TestCycleConversionRoundTrip(t *testing.T) {
	for _, ns := range []int64{0, 1, 1000, 75_000, 1_000_000, 123_456_789} {
		c := NsToCycles(ns)
		back := CyclesToNs(c)
		// One cycle is ~4.29 ns; conversion truncates, so the round trip
		// may lose up to one cycle's worth.
		if back > ns || ns-back > 5 {
			t.Fatalf("ns=%d -> cycles=%d -> ns=%d drifted", ns, c, back)
		}
	}
}

func newDataflow(t *testing.T, cfg fpga.DataflowConfig, hostPages uint64) *Dataflow {
	t.Helper()
	link, err := cxl.NewLink(cxl.DefaultLinkConfig())
	if err != nil {
		t.Fatal(err)
	}
	tl, err := fpga.NewDeviceTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &Dataflow{Link: link, Timeline: tl, HostPages: hostPages, HostLatNs: 100}
}

func TestDataflowHostRoute(t *testing.T) {
	d := newDataflow(t, fpga.DefaultDataflowConfig(), 64)
	if lat, ok := d.HostRoute(63); !ok || lat != 100 {
		t.Fatalf("page 63 should be host-resident at 100 ns, got %d,%v", lat, ok)
	}
	if _, ok := d.HostRoute(64); ok {
		t.Fatal("page 64 should route to the device")
	}
	all := newDataflow(t, fpga.DefaultDataflowConfig(), 0)
	if _, ok := all.HostRoute(0); ok {
		t.Fatal("HostPages=0 must route everything to the device")
	}
}

func TestDataflowServeQueueing(t *testing.T) {
	cfg := fpga.DefaultDataflowConfig()
	cfg.Outstanding = 2
	d := newDataflow(t, cfg, 0)

	// Hits clear the pipe fast; the first sees an empty window.
	r0 := d.Serve(1, Outcome{Hit: true}, 0)
	if r0.QueueDepth != 0 || r0.Stalled {
		t.Fatalf("first arrival saw depth=%d stalled=%v", r0.QueueDepth, r0.Stalled)
	}
	if r0.DoneNs != r0.LinkNs+r0.DevNs {
		t.Fatalf("done %d != link %d + dev %d at arrival 0", r0.DoneNs, r0.LinkNs, r0.DevNs)
	}
	if r0.DevNs < CyclesToNs(cfg.HitCycles) {
		t.Fatalf("hit dev time %d ns below the hit cycles %d ns", r0.DevNs, CyclesToNs(cfg.HitCycles))
	}

	// Three immediate back-to-back misses against a 75 us SSD: the third
	// must find the window full and stall behind the first response.
	d2 := newDataflow(t, cfg, 0)
	var last Result
	for i := 0; i < 3; i++ {
		last = d2.Serve(uint64(10+i), Outcome{}, int64(i))
	}
	if !last.Stalled || last.QueueDepth != 2 {
		t.Fatalf("third miss: depth=%d stalled=%v, want depth=2 stalled=true",
			last.QueueDepth, last.Stalled)
	}
	if got := d2.Timeline.Stalls(); got != 1 {
		t.Fatalf("stall counter %d, want 1", got)
	}
}
