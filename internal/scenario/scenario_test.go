package scenario_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func tenants() []string { return []string{"alpha", "beta", "gamma"} }

func TestValidateAcceptsWellFormedTimeline(t *testing.T) {
	s := &scenario.Spec{Events: []scenario.Event{
		{Batch: 4, Kind: scenario.KindDiurnal, Tenant: "alpha", Rate: 20000, Amp: 0.5, Period: 16},
		{Batch: 8, Kind: scenario.KindLeave, Tenant: "beta"},
		{Batch: 8, Kind: scenario.KindPhase, Tenant: "gamma", Workload: "stream"},
		{Batch: 12, Kind: scenario.KindRate, Tenant: "alpha", Rate: 15000},
		{Batch: 16, Kind: scenario.KindJoin, Tenant: "beta"},
		{Batch: 20, Kind: scenario.KindLeave, Tenant: "gamma"},
	}}
	if err := s.Validate(tenants()); err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		ev   []scenario.Event
		want string
	}{
		{"batch zero", []scenario.Event{{Batch: 0, Kind: scenario.KindLeave, Tenant: "alpha"}}, "batch must be >= 1"},
		{"out of order", []scenario.Event{
			{Batch: 8, Kind: scenario.KindLeave, Tenant: "alpha"},
			{Batch: 4, Kind: scenario.KindJoin, Tenant: "alpha"},
		}, "out of order"},
		{"unknown tenant", []scenario.Event{{Batch: 1, Kind: scenario.KindLeave, Tenant: "delta"}}, "unknown tenant"},
		{"missing tenant", []scenario.Event{{Batch: 1, Kind: scenario.KindLeave}}, "missing tenant"},
		{"unknown kind", []scenario.Event{{Batch: 1, Kind: "pause", Tenant: "alpha"}}, "unknown kind"},
		{"join active", []scenario.Event{{Batch: 1, Kind: scenario.KindJoin, Tenant: "alpha"}}, "already active"},
		{"leave departed", []scenario.Event{
			{Batch: 1, Kind: scenario.KindLeave, Tenant: "alpha"},
			{Batch: 2, Kind: scenario.KindLeave, Tenant: "alpha"},
		}, "not active"},
		{"leave last", []scenario.Event{
			{Batch: 1, Kind: scenario.KindLeave, Tenant: "alpha"},
			{Batch: 2, Kind: scenario.KindLeave, Tenant: "beta"},
			{Batch: 3, Kind: scenario.KindLeave, Tenant: "gamma"},
		}, "last active tenant"},
		{"join params", []scenario.Event{
			{Batch: 1, Kind: scenario.KindLeave, Tenant: "beta"},
			{Batch: 2, Kind: scenario.KindJoin, Tenant: "beta", Rate: 5},
		}, "takes no parameters"},
		{"leave params", []scenario.Event{
			{Batch: 1, Kind: scenario.KindLeave, Tenant: "beta", Workload: "stream"},
		}, "takes no parameters"},
		{"rate zero", []scenario.Event{{Batch: 1, Kind: scenario.KindRate, Tenant: "alpha"}}, "rate must be positive"},
		{"rate nan", []scenario.Event{{Batch: 1, Kind: scenario.KindRate, Tenant: "alpha", Rate: math.NaN()}}, "rate must be positive"},
		{"rate extras", []scenario.Event{{Batch: 1, Kind: scenario.KindRate, Tenant: "alpha", Rate: 5, Amp: 0.1}}, "takes only a rate"},
		{"diurnal base", []scenario.Event{{Batch: 1, Kind: scenario.KindDiurnal, Tenant: "alpha", Rate: math.Inf(1), Amp: 0.5, Period: 8}}, "base rate must be positive"},
		{"diurnal amp", []scenario.Event{{Batch: 1, Kind: scenario.KindDiurnal, Tenant: "alpha", Rate: 5, Amp: 1, Period: 8}}, "amp must be in"},
		{"diurnal period", []scenario.Event{{Batch: 1, Kind: scenario.KindDiurnal, Tenant: "alpha", Rate: 5, Amp: 0.5, Period: 1}}, "period must be >= 2"},
		{"diurnal workload", []scenario.Event{{Batch: 1, Kind: scenario.KindDiurnal, Tenant: "alpha", Rate: 5, Amp: 0.5, Period: 8, Workload: "stream"}}, "takes no workload"},
		{"phase unknown workload", []scenario.Event{{Batch: 1, Kind: scenario.KindPhase, Tenant: "alpha", Workload: "nope"}}, "unknown benchmark"},
		{"phase missing workload", []scenario.Event{{Batch: 1, Kind: scenario.KindPhase, Tenant: "alpha"}}, "needs a workload"},
		{"phase extras", []scenario.Event{{Batch: 1, Kind: scenario.KindPhase, Tenant: "alpha", Workload: "stream", Rate: 5}}, "takes only a workload"},
	}
	for _, tc := range cases {
		s := &scenario.Spec{Events: tc.ev}
		err := s.Validate(tenants())
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateNilAndEmpty(t *testing.T) {
	var s *scenario.Spec
	if err := s.Validate(tenants()); err != nil {
		t.Fatalf("nil spec rejected: %v", err)
	}
	if err := (&scenario.Spec{}).Validate(tenants()); err != nil {
		t.Fatalf("empty spec rejected: %v", err)
	}
}

func TestTimelineTakeAndReplay(t *testing.T) {
	s := &scenario.Spec{Events: []scenario.Event{
		{Batch: 2, Kind: scenario.KindLeave, Tenant: "beta"},
		{Batch: 5, Kind: scenario.KindRate, Tenant: "alpha", Rate: 10},
		{Batch: 5, Kind: scenario.KindJoin, Tenant: "beta"},
		{Batch: 9, Kind: scenario.KindLeave, Tenant: "gamma"},
	}}
	tl := scenario.NewTimeline(s)
	var applied []scenario.Event
	for b := uint64(0); b < 12; b++ {
		applied = append(applied, tl.Take(b)...)
	}
	if len(applied) != 4 || tl.Pending() != 0 {
		t.Fatalf("walked timeline applied %d events, %d pending", len(applied), tl.Pending())
	}
	for i, ev := range applied {
		if ev != s.Events[i] {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}

	// A resumed cursor replays the already-applied prefix, then Take picks
	// up exactly where the uninterrupted walk would be.
	// A nil spec yields an empty timeline that is safe to walk.
	empty := scenario.NewTimeline(nil)
	if got := empty.Take(1); len(got) != 0 || empty.Pending() != 0 {
		t.Fatalf("nil-spec timeline not empty: %v, %d pending", got, empty.Pending())
	}

	rt := scenario.NewTimeline(s)
	replayed := rt.Replay(5)
	if len(replayed) != 1 || replayed[0].Batch != 2 {
		t.Fatalf("replay(5) = %+v, want the batch-2 event only", replayed)
	}
	if got := rt.Take(5); len(got) != 2 {
		t.Fatalf("take(5) after replay = %+v, want 2 events", got)
	}
	if got := rt.Take(9); len(got) != 1 || got[0].Tenant != "gamma" {
		t.Fatalf("take(9) = %+v", got)
	}
}

func TestDiurnalRate(t *testing.T) {
	// Phase zero and every full period return exactly the base rate.
	if got := scenario.DiurnalRate(1000, 0.5, 8, 16, 8); got != 1000 {
		t.Fatalf("start batch rate = %v, want 1000", got)
	}
	p1 := scenario.DiurnalRate(1000, 0.5, 8, 16, 8+16)
	p2 := scenario.DiurnalRate(1000, 0.5, 8, 16, 8+32)
	if math.Abs(p1-p2) > 1e-9 {
		t.Fatalf("diurnal profile not periodic: %v vs %v", p1, p2)
	}
	// Quarter period is the peak, three quarters the trough.
	peak := scenario.DiurnalRate(1000, 0.5, 0, 16, 4)
	trough := scenario.DiurnalRate(1000, 0.5, 0, 16, 12)
	if math.Abs(peak-1500) > 1e-9 || math.Abs(trough-500) > 1e-9 {
		t.Fatalf("peak/trough = %v/%v, want 1500/500", peak, trough)
	}
	// Positive for every batch when amp < 1.
	for b := uint64(0); b < 64; b++ {
		if r := scenario.DiurnalRate(100, 0.99, 0, 7, b); r <= 0 {
			t.Fatalf("rate %v at batch %d not positive", r, b)
		}
	}
}
