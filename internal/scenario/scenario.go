// Package scenario defines the serving subsystem's deterministic event
// timeline: a list of batch-indexed events — tenant join/leave with capacity
// rebalance, per-tenant rate schedules (step changes and diurnal sine
// profiles), and workload-phase swaps drawn from the benchmark registry —
// that the session applies at batch boundaries. Because every event is keyed
// to a batch index (never wall time) and applied on the ingest goroutine
// before the batch it names is pulled, scenario runs stay bit-identical at
// any shard count and replay exactly through checkpoint/resume: the
// configuration effects of past events are a pure function of (spec,
// batches), so resume re-derives them instead of checkpointing them.
package scenario

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/workload"
)

// Event kinds, as the spec's "kind" field spells them.
const (
	// KindJoin re-activates a departed tenant: its stream merges back into
	// the arrival mux and the capacity rebalance returns its share.
	KindJoin = "join"
	// KindLeave deactivates a tenant: its stream stops emitting (its virtual
	// clock still advances, so a later join resumes without a burst) and its
	// HBM share is redistributed to the remaining tenants.
	KindLeave = "leave"
	// KindRate sets the tenant's open-loop rate (or closed-loop think-time
	// base) to a new constant, cancelling any active diurnal profile.
	KindRate = "rate"
	// KindDiurnal starts a sinusoidal rate profile: rate(b) = base * (1 +
	// amp*sin(2π*(b-start)/period)), recomputed at every batch boundary.
	KindDiurnal = "diurnal"
	// KindPhase swaps the tenant's workload generator to a named benchmark
	// from the registry; the in-flight trace segment is regenerated in place.
	KindPhase = "phase"
)

// Event is one timeline entry. Batch is the index of the ingest batch the
// event applies before (the first batch after warmup is batch 0; events
// require batch >= 1 so the initial spec state covers at least one batch).
type Event struct {
	Batch  uint64 `json:"batch"`
	Kind   string `json:"kind"`
	Tenant string `json:"tenant"`
	// Rate is the new base rate in req/s (kinds rate and diurnal).
	Rate float64 `json:"rate,omitempty"`
	// Amp is the diurnal amplitude in (0, 1).
	Amp float64 `json:"amp,omitempty"`
	// Period is the diurnal period in batches (>= 2).
	Period uint64 `json:"period,omitempty"`
	// Workload is the registry benchmark name (kind phase).
	Workload string `json:"workload,omitempty"`
}

// Spec is the serve spec's "scenario" block: the event timeline, sorted by
// batch (ties apply in list order).
type Spec struct {
	Events []Event `json:"events"`
}

// Validate checks the timeline against the run's tenant set: events sorted
// by batch with batch >= 1, every event naming a known tenant, per-kind
// parameter ranges, and a join/leave sequence that is always consistent
// (join only a departed tenant, leave only an active one, and never the last
// active tenant — an empty arrival mux would stall the run forever).
func (s *Spec) Validate(tenants []string) error {
	if s == nil {
		return nil
	}
	known := make(map[string]bool, len(tenants))
	active := make(map[string]bool, len(tenants))
	for _, name := range tenants {
		known[name] = true
		active[name] = true
	}
	nActive := len(tenants)
	var prev uint64
	for i, ev := range s.Events {
		if ev.Batch < 1 {
			return fmt.Errorf("scenario: event %d: batch must be >= 1", i)
		}
		if ev.Batch < prev {
			return fmt.Errorf("scenario: event %d: batch %d out of order (previous %d)", i, ev.Batch, prev)
		}
		prev = ev.Batch
		if ev.Tenant == "" {
			return fmt.Errorf("scenario: event %d: missing tenant", i)
		}
		if !known[ev.Tenant] {
			return fmt.Errorf("scenario: event %d: unknown tenant %q", i, ev.Tenant)
		}
		switch ev.Kind {
		case KindJoin:
			if err := noParams(ev); err != nil {
				return fmt.Errorf("scenario: event %d: %v", i, err)
			}
			if active[ev.Tenant] {
				return fmt.Errorf("scenario: event %d: tenant %q joins but is already active", i, ev.Tenant)
			}
			active[ev.Tenant] = true
			nActive++
		case KindLeave:
			if err := noParams(ev); err != nil {
				return fmt.Errorf("scenario: event %d: %v", i, err)
			}
			if !active[ev.Tenant] {
				return fmt.Errorf("scenario: event %d: tenant %q leaves but is not active", i, ev.Tenant)
			}
			if nActive == 1 {
				return fmt.Errorf("scenario: event %d: tenant %q is the last active tenant", i, ev.Tenant)
			}
			active[ev.Tenant] = false
			nActive--
		case KindRate:
			if !(ev.Rate > 0) || math.IsInf(ev.Rate, 0) {
				return fmt.Errorf("scenario: event %d: rate must be positive and finite", i)
			}
			if ev.Amp != 0 || ev.Period != 0 || ev.Workload != "" {
				return fmt.Errorf("scenario: event %d: rate event takes only a rate", i)
			}
		case KindDiurnal:
			if !(ev.Rate > 0) || math.IsInf(ev.Rate, 0) {
				return fmt.Errorf("scenario: event %d: diurnal base rate must be positive and finite", i)
			}
			if !(ev.Amp > 0) || ev.Amp >= 1 {
				return fmt.Errorf("scenario: event %d: diurnal amp must be in (0, 1)", i)
			}
			if ev.Period < 2 {
				return fmt.Errorf("scenario: event %d: diurnal period must be >= 2 batches", i)
			}
			if ev.Workload != "" {
				return fmt.Errorf("scenario: event %d: diurnal event takes no workload", i)
			}
		case KindPhase:
			if ev.Workload == "" {
				return fmt.Errorf("scenario: event %d: phase event needs a workload", i)
			}
			if _, err := workload.ByName(ev.Workload); err != nil {
				return fmt.Errorf("scenario: event %d: %v", i, err)
			}
			if ev.Rate != 0 || ev.Amp != 0 || ev.Period != 0 {
				return fmt.Errorf("scenario: event %d: phase event takes only a workload", i)
			}
		default:
			return fmt.Errorf("scenario: event %d: unknown kind %q (valid: join|leave|rate|diurnal|phase)", i, ev.Kind)
		}
	}
	return nil
}

// noParams rejects payload fields on the parameterless kinds.
func noParams(ev Event) error {
	if ev.Rate != 0 || ev.Amp != 0 || ev.Period != 0 || ev.Workload != "" {
		return errors.New(ev.Kind + " event takes no parameters")
	}
	return nil
}

// DiurnalRate evaluates the sinusoidal profile at a batch boundary: the
// offered rate for batch b of a profile started at batch start. Pure
// function, so replay after resume lands on the identical float.
func DiurnalRate(base, amp float64, start, period, batch uint64) float64 {
	phase := 2 * math.Pi * float64(batch-start) / float64(period)
	return base * (1 + amp*math.Sin(phase))
}

// Timeline walks a validated spec's events in batch order. The session holds
// one cursor and consumes events as batch boundaries pass; Replay fast-
// forwards the cursor through the prefix a resumed run has already applied.
type Timeline struct {
	events []Event
	next   int
}

// NewTimeline builds a cursor over the spec's events (nil spec -> empty
// timeline).
func NewTimeline(s *Spec) *Timeline {
	if s == nil {
		return &Timeline{}
	}
	return &Timeline{events: s.Events}
}

// Take returns the events scheduled for exactly the given batch, advancing
// the cursor past them. Call with every batch index in order.
func (t *Timeline) Take(batch uint64) []Event {
	start := t.next
	for t.next < len(t.events) && t.events[t.next].Batch == batch {
		t.next++
	}
	return t.events[start:t.next]
}

// Replay returns every event strictly before the given batch, advancing the
// cursor past them — the already-applied prefix a resumed session re-derives
// its configuration state from.
func (t *Timeline) Replay(batch uint64) []Event {
	start := t.next
	for t.next < len(t.events) && t.events[t.next].Batch < batch {
		t.next++
	}
	return t.events[start:t.next]
}

// Pending reports how many events the cursor has not yet passed.
func (t *Timeline) Pending() int { return len(t.events) - t.next }
