// Package cxl models the CXL-enabled memory expansion fabric of Fig. 1: a
// unified physical address space in which the host's native DRAM and the
// SSD-backed expanded region appear as one flat memory, plus a CXL.mem
// transaction layer whose latency and flit accounting connect the host to
// the ICGMM device.
//
// The model is deliberately at the transaction level (not flit-by-flit
// timing): what the paper's evaluation depends on is which region a request
// routes to and what round-trip latency the link adds, both of which are
// captured here.
package cxl

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Region identifies which memory a physical address belongs to.
type Region uint8

const (
	// RegionHost is native host DRAM (served without touching the device).
	RegionHost Region = iota
	// RegionExpanded is the CXL device's SSD-backed expansion space.
	RegionExpanded
	// RegionInvalid is an address beyond the unified space.
	RegionInvalid
)

// String names the region.
func (r Region) String() string {
	switch r {
	case RegionHost:
		return "host"
	case RegionExpanded:
		return "expanded"
	default:
		return "invalid"
	}
}

// AddressMap lays out the unified memory space: host DRAM at the bottom,
// the expanded SSD space above it.
type AddressMap struct {
	// HostBytes is the size of native host DRAM.
	HostBytes uint64
	// ExpandedBytes is the size of the SSD-backed expansion.
	ExpandedBytes uint64
}

// DefaultAddressMap models a host with 16 GiB of DRAM expanding into a
// 1 TiB SSD.
func DefaultAddressMap() AddressMap {
	return AddressMap{HostBytes: 16 << 30, ExpandedBytes: 1 << 40}
}

// Validate checks the map.
func (m AddressMap) Validate() error {
	if m.ExpandedBytes == 0 {
		return errors.New("cxl: empty expanded region")
	}
	return nil
}

// TotalBytes returns the unified space size.
func (m AddressMap) TotalBytes() uint64 { return m.HostBytes + m.ExpandedBytes }

// Route classifies a physical address.
func (m AddressMap) Route(addr uint64) Region {
	switch {
	case addr < m.HostBytes:
		return RegionHost
	case addr < m.HostBytes+m.ExpandedBytes:
		return RegionExpanded
	default:
		return RegionInvalid
	}
}

// DevicePage translates a unified-space address in the expanded region to a
// page index local to the device (what the DRAM cache and SSD index by).
func (m AddressMap) DevicePage(addr uint64) (uint64, error) {
	if m.Route(addr) != RegionExpanded {
		return 0, fmt.Errorf("cxl: address %#x not in expanded region", addr)
	}
	return (addr - m.HostBytes) >> trace.PageShift, nil
}

// MsgType is a CXL.mem transaction type (the master-to-subordinate and
// subordinate-to-master opcode classes relevant to memory expansion).
type MsgType uint8

const (
	// MemRd requests a read of one cacheline/page.
	MemRd MsgType = iota
	// MemWr writes data to the device.
	MemWr
	// Cmp is the subordinate completion for a read (with data) or write.
	Cmp
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MemRd:
		return "MemRd"
	case MemWr:
		return "MemWr"
	default:
		return "Cmp"
	}
}

// Message is one transaction-layer message.
type Message struct {
	Type MsgType
	Addr uint64
	// PayloadBytes is the data carried (0 for requests without data).
	PayloadBytes uint64
}

// LinkConfig characterizes the CXL link. Defaults approximate a x8 CXL 2.0
// port: ~25 GB/s usable bandwidth and ~150 ns one-way port-to-port latency
// (consistent with published CXL memory-expansion measurements).
type LinkConfig struct {
	OneWayLatency time.Duration
	BytesPerNs    float64
	FlitBytes     uint64
}

// DefaultLinkConfig returns the x8 CXL 2.0 approximation.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		OneWayLatency: 150 * time.Nanosecond,
		BytesPerNs:    25,
		FlitBytes:     64,
	}
}

// Validate checks the link parameters.
func (c LinkConfig) Validate() error {
	if c.OneWayLatency <= 0 || c.BytesPerNs <= 0 || c.FlitBytes == 0 {
		return errors.New("cxl: invalid link config")
	}
	return nil
}

// Link models the CXL.mem port: latency plus serialization delay, with flit
// counting for bandwidth accounting.
type Link struct {
	cfg      LinkConfig
	flits    stats.Counter
	messages stats.Counter
	bytes    stats.Counter
}

// NewLink builds a link.
func NewLink(cfg LinkConfig) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Link{cfg: cfg}, nil
}

// Transfer models sending one message across the link at virtual time
// nowNs, returning its arrival time at the far side. Serialization delay is
// payload size over bandwidth; every message costs at least one flit.
func (l *Link) Transfer(msg Message, nowNs int64) int64 {
	l.messages.Inc()
	flits := uint64(1)
	if msg.PayloadBytes > 0 {
		flits = (msg.PayloadBytes + l.cfg.FlitBytes - 1) / l.cfg.FlitBytes
	}
	l.flits.Add(flits)
	l.bytes.Add(msg.PayloadBytes)
	ser := int64(float64(msg.PayloadBytes) / l.cfg.BytesPerNs)
	return nowNs + l.cfg.OneWayLatency.Nanoseconds() + ser
}

// RoundTrip models a request/completion pair: request (no payload for
// reads; page payload for writes) then completion (page payload for reads).
// It returns the completion arrival time at the host.
func (l *Link) RoundTrip(read bool, payloadBytes uint64, nowNs int64) int64 {
	var reqPayload, cmpPayload uint64
	if read {
		cmpPayload = payloadBytes
	} else {
		reqPayload = payloadBytes
	}
	reqType := MemWr
	if read {
		reqType = MemRd
	}
	arrive := l.Transfer(Message{Type: reqType, PayloadBytes: reqPayload}, nowNs)
	return l.Transfer(Message{Type: Cmp, PayloadBytes: cmpPayload}, arrive)
}

// Stats summarizes link activity.
type Stats struct {
	Messages uint64
	Flits    uint64
	Bytes    uint64
}

// Stats returns a snapshot of link counters.
func (l *Link) Stats() Stats {
	return Stats{Messages: l.messages.Value(), Flits: l.flits.Value(), Bytes: l.bytes.Value()}
}

// RestoreStats replaces the link's accumulated counters — its only mutable
// state (the transfer model itself is a pure function of its config). Part
// of the serving subsystem's checkpoint surface.
func (l *Link) RestoreStats(s Stats) {
	l.messages.Reset()
	l.messages.Add(s.Messages)
	l.flits.Reset()
	l.flits.Add(s.Flits)
	l.bytes.Reset()
	l.bytes.Add(s.Bytes)
}
