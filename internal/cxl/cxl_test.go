package cxl

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func TestAddressMapRouting(t *testing.T) {
	m := AddressMap{HostBytes: 1 << 20, ExpandedBytes: 1 << 20}
	cases := []struct {
		addr uint64
		want Region
	}{
		{0, RegionHost},
		{1<<20 - 1, RegionHost},
		{1 << 20, RegionExpanded},
		{2<<20 - 1, RegionExpanded},
		{2 << 20, RegionInvalid},
	}
	for _, c := range cases {
		if got := m.Route(c.addr); got != c.want {
			t.Errorf("Route(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestRegionString(t *testing.T) {
	if RegionHost.String() != "host" || RegionExpanded.String() != "expanded" ||
		RegionInvalid.String() != "invalid" {
		t.Error("region names wrong")
	}
}

func TestDevicePage(t *testing.T) {
	m := AddressMap{HostBytes: 1 << 20, ExpandedBytes: 1 << 30}
	p, err := m.DevicePage(1<<20 + 2*trace.PageSize + 17)
	if err != nil {
		t.Fatal(err)
	}
	if p != 2 {
		t.Errorf("DevicePage = %d, want 2", p)
	}
	if _, err := m.DevicePage(0); err == nil {
		t.Error("host address translated")
	}
	if _, err := m.DevicePage(1<<20 + 1<<30); err == nil {
		t.Error("out-of-range address translated")
	}
}

func TestAddressMapValidate(t *testing.T) {
	if err := DefaultAddressMap().Validate(); err != nil {
		t.Error(err)
	}
	if err := (AddressMap{HostBytes: 1}).Validate(); err == nil {
		t.Error("empty expansion accepted")
	}
	m := DefaultAddressMap()
	if m.TotalBytes() != m.HostBytes+m.ExpandedBytes {
		t.Error("TotalBytes wrong")
	}
}

func TestLinkTransferLatency(t *testing.T) {
	l, err := NewLink(DefaultLinkConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Request without payload: one-way latency only.
	arrive := l.Transfer(Message{Type: MemRd}, 0)
	if arrive != 150 {
		t.Errorf("no-payload transfer = %d ns, want 150", arrive)
	}
	// 4 KiB payload at 25 B/ns adds ~163 ns serialization.
	arrive = l.Transfer(Message{Type: Cmp, PayloadBytes: 4096}, 0)
	want := int64(150 + 4096/25)
	if arrive != want {
		t.Errorf("payload transfer = %d ns, want %d", arrive, want)
	}
}

func TestLinkRoundTrip(t *testing.T) {
	l, _ := NewLink(DefaultLinkConfig())
	// Read: request (no payload) + completion (4 KiB payload).
	done := l.RoundTrip(true, 4096, 0)
	want := int64(150 + 150 + 4096/25)
	if done != want {
		t.Errorf("read round trip = %d, want %d", done, want)
	}
	// Write: payload travels on the request.
	done = l.RoundTrip(false, 4096, 1000)
	if done != 1000+want {
		t.Errorf("write round trip = %d, want %d", done, 1000+want)
	}
}

func TestLinkFlitAccounting(t *testing.T) {
	l, _ := NewLink(DefaultLinkConfig())
	l.Transfer(Message{Type: MemRd}, 0)                    // 1 flit
	l.Transfer(Message{Type: Cmp, PayloadBytes: 4096}, 0)  // 64 flits
	l.Transfer(Message{Type: MemWr, PayloadBytes: 100}, 0) // 2 flits
	st := l.Stats()
	if st.Messages != 3 {
		t.Errorf("messages = %d", st.Messages)
	}
	if st.Flits != 1+64+2 {
		t.Errorf("flits = %d, want 67", st.Flits)
	}
	if st.Bytes != 4196 {
		t.Errorf("bytes = %d", st.Bytes)
	}
}

func TestLinkConfigValidate(t *testing.T) {
	if err := DefaultLinkConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := []LinkConfig{
		{},
		{OneWayLatency: time.Nanosecond, BytesPerNs: 0, FlitBytes: 64},
		{OneWayLatency: time.Nanosecond, BytesPerNs: 1, FlitBytes: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewLink(LinkConfig{}); err == nil {
		t.Error("NewLink accepted invalid config")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MemRd.String() != "MemRd" || MemWr.String() != "MemWr" || Cmp.String() != "Cmp" {
		t.Error("message type names wrong")
	}
}
