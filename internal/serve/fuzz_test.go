package serve_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/serve"
)

// FuzzTenantSpec fuzzes the -tenants JSON wire format: arbitrary bytes must
// never panic, and every accepted spec list must satisfy the documented
// invariants (unique names, positive rates, shares in (0,1] summing to at
// most 1) and survive a marshal/parse round trip unchanged.
func FuzzTenantSpec(f *testing.F) {
	f.Add([]byte(`[{"name":"a","workload":"dlrm","seed":1,"rate":1e6,"share":0.5}]`))
	f.Add([]byte(`[{"name":"a","workload":"parsec","rate":1,"share":0.3,
	  "qos":{"metric":"hit_ratio","target":0.7,"band":0.2}},
	 {"name":"b","custom":{"Name":"c","TotalPages":64,"Clusters":[{"CenterPage":8,"Spread":2}]},
	  "rate":2,"share":0.7,"burst":0.5,"offset_pages":1048576,"shift_after":100,"shift_offset_pages":4096}]`))
	f.Add([]byte(`[{"name":"g","workload":"dlrm","rate":1,"share":0.2,"shift_after":8192,
	  "shift_custom":{"Name":"grown","TotalPages":480,"Clusters":[{"CenterPage":120,"Spread":55}]}}]`))
	f.Add([]byte(`[{"name":"g","workload":"dlrm","rate":1,"share":0.2,
	  "shift_custom":{"Name":"grown","TotalPages":480,"Clusters":[{"CenterPage":120,"Spread":55}]}}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"share":1e308},{"share":1e308}]`))
	f.Add([]byte(`[{"name":"a","workload":"dlrm","rate":1,"share":"NaN"}]`))
	f.Add([]byte(`{"name":"a"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		specs, err := serve.ParseTenantSpecs(data)
		if err != nil {
			return
		}
		seen := map[string]bool{}
		var shareSum float64
		for _, ts := range specs {
			if ts.Name == "" || seen[ts.Name] {
				t.Fatalf("accepted spec with missing/duplicate name: %+v", specs)
			}
			seen[ts.Name] = true
			if ts.RatePerSec <= 0 {
				t.Fatalf("accepted non-positive rate: %+v", ts)
			}
			if ts.Share <= 0 || ts.Share > 1 {
				t.Fatalf("accepted share outside (0,1]: %+v", ts)
			}
			if ts.BurstAmp < 0 || ts.BurstAmp >= 1 {
				t.Fatalf("accepted burst outside [0,1): %+v", ts)
			}
			shareSum += ts.Share
		}
		if shareSum > 1+1e-6 {
			t.Fatalf("accepted over-committed shares (sum %v): %s", shareSum, data)
		}
		// Accepted specs are canonical: marshal/parse must be lossless.
		out, err := json.Marshal(specs)
		if err != nil {
			t.Fatalf("marshalling accepted specs: %v", err)
		}
		again, err := serve.ParseTenantSpecs(out)
		if err != nil {
			t.Fatalf("re-parsing %s: %v", out, err)
		}
		if !reflect.DeepEqual(specs, again) {
			t.Fatalf("round trip changed specs:\n%+v\n%+v", specs, again)
		}
	})
}
