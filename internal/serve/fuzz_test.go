package serve_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/serve"
)

// FuzzServeSpec fuzzes the declarative run-spec wire format: arbitrary bytes
// must never panic, and every accepted document must satisfy the Spec
// invariants (supported version, workload/tenants exclusion, a buildable
// configuration) and survive a Marshal/ParseSpec round trip unchanged — the
// lossless-wire-format guarantee the distributed-run story leans on.
func FuzzServeSpec(f *testing.F) {
	f.Add([]byte(`{"version":1,"ops":4096,"warmup":16000,"train":{"k":4,"shot":128}}`))
	f.Add([]byte(`{"version":1,"warmup":16000,"train":{"shot":128},
	 "workload":{"name":"parsec","rate":-1,"burst":0.5,"drift":true}}`))
	f.Add([]byte(`{"version":1,"warmup":16000,"shards":4,"partitions":8,"batch":1024,"report":-1,
	 "mode":"gmm-eviction-only","cache":{"size_mb":4,"ways":8,"ssd":"slc","ssd_channels":4},
	 "train":{"k":8,"seed":3,"max_iters":10,"max_samples":-1,"lloyd_iters":2,"shot":128,"threshold_pct":0.05},
	 "refresh":{"mode":"sync","window":8192,"min":2048,"drift_delta":0.08,"drift_sustain":8,"drift_warmup":8,"drift_alpha":0.2},
	 "control":{"every":8,"step":1.6,"min_mult":0.0625,"max_mult":16,"share_adapt":true,
	  "share_quantum":8,"share_hold":2,"share_cooldown":0,"share_floor":8,"share_floor_rate_frac":0.5},
	 "tenants":[{"name":"a","workload":"dlrm","seed":1,"rate":15000,"share":0.5,
	  "qos":{"metric":"hit_ratio","target":0.75,"band":0.1}}]}`))
	f.Add([]byte(`{"version":1,"duration":"10s","output":"m.jsonl","warmup":16000,"train":{"shot":128}}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"shrads":4}`))
	f.Add([]byte(`{"version":1,"warmup":16000,"train":{"shot":128},"workload":{"name":"dlrm"},
	 "tenants":[{"name":"a","workload":"dlrm","rate":1,"share":0.5}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := serve.ParseSpec(data)
		if err != nil {
			return
		}
		if spec.Version != serve.SpecVersion {
			t.Fatalf("accepted unsupported version %d", spec.Version)
		}
		if spec.Workload != nil && len(spec.Tenants) > 0 {
			t.Fatalf("accepted spec with both workload and tenants: %s", data)
		}
		if _, err := spec.Config(); err != nil {
			t.Fatalf("accepted spec does not build a config: %v", err)
		}
		out, err := spec.Marshal()
		if err != nil {
			t.Fatalf("marshalling accepted spec: %v", err)
		}
		again, err := serve.ParseSpec(out)
		if err != nil {
			t.Fatalf("re-parsing %s: %v", out, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round trip changed the spec:\n%+v\n%+v", spec, again)
		}
	})
}

// FuzzScenarioSpec fuzzes the spec's "scenario", "clients" and "shadow"
// blocks: arbitrary bytes must never panic, every accepted document must
// satisfy the timeline invariants (batches ordered from 1, only known kinds
// against declared tenants, per-kind parameter exclusivity), and the parsed
// spec must survive a Marshal/ParseSpec round trip unchanged — the property
// that lets a scheduled run be shipped to a cluster worker losslessly.
func FuzzScenarioSpec(f *testing.F) {
	const base = `"warmup":16000,"train":{"k":4,"shot":128},
	 "tenants":[{"name":"a","workload":"dlrm","seed":1,"rate":15000,"share":0.5},
	  {"name":"b","workload":"parsec","seed":2,"rate":9000,"share":0.5}]`
	f.Add([]byte(`{"version":1,` + base + `,"scenario":{"events":[
	 {"batch":16,"kind":"diurnal","tenant":"a","rate":15000,"amp":0.5,"period":32},
	 {"batch":24,"kind":"leave","tenant":"b"},
	 {"batch":40,"kind":"phase","tenant":"a","workload":"stream"},
	 {"batch":56,"kind":"join","tenant":"b"},
	 {"batch":56,"kind":"rate","tenant":"b","rate":4500}]}}`))
	f.Add([]byte(`{"version":1,` + base + `,"clients":{"users":4,"alpha":0.3},
	 "shadow":{"policy":"lstm","hidden":8,"seq_len":4,"epochs":1,"max_examples":96,"divergence":0.05}}`))
	f.Add([]byte(`{"version":1,` + base + `,"scenario":{"events":[{"batch":0,"kind":"rate","tenant":"a","rate":1}]}}`))
	f.Add([]byte(`{"version":1,` + base + `,"scenario":{"events":[
	 {"batch":8,"kind":"leave","tenant":"a"},{"batch":4,"kind":"join","tenant":"a"}]}}`))
	f.Add([]byte(`{"version":1,` + base + `,"scenario":{"events":[{"batch":8,"kind":"vanish","tenant":"a"}]}}`))
	f.Add([]byte(`{"version":1,` + base + `,"scenario":{"events":[{"batch":8,"kind":"rate","tenant":"zz","rate":1}]}}`))
	f.Add([]byte(`{"version":1,` + base + `,"scenario":{"events":[{"batch":8,"kind":"join","tenant":"a"}]}}`))
	f.Add([]byte(`{"version":1,` + base + `,"scenario":{"events":[
	 {"batch":8,"kind":"leave","tenant":"a"},{"batch":12,"kind":"leave","tenant":"b"}]}}`))
	f.Add([]byte(`{"version":1,` + base + `,"scenario":{"events":[
	 {"batch":8,"kind":"diurnal","tenant":"a","rate":15000,"amp":1.5,"period":1}]}}`))
	f.Add([]byte(`{"version":1,` + base + `,"scenario":{"events":[
	 {"batch":8,"kind":"rate","tenant":"a","rate":1,"workload":"stream"}]}}`))
	f.Add([]byte(`{"version":1,` + base + `,"clients":{"users":-1}}`))
	f.Add([]byte(`{"version":1,` + base + `,"clients":{"users":4,"alpha":1.5}}`))
	f.Add([]byte(`{"version":1,` + base + `,"shadow":{"policy":"gmm2"}}`))
	f.Add([]byte(`{"version":1,"warmup":16000,"train":{"shot":128},"workload":{"name":"dlrm"},
	 "scenario":{"events":[{"batch":8,"kind":"rate","tenant":"a","rate":1}]}}`))
	f.Add([]byte(`{"version":1,` + base + `,"scenario":{"evnets":[]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := serve.ParseSpec(data)
		if err != nil {
			return
		}
		if sc := spec.Scenario; sc != nil {
			if len(spec.Tenants) == 0 {
				t.Fatalf("accepted a scenario without tenants: %s", data)
			}
			names := make(map[string]bool, len(spec.Tenants))
			for _, ts := range spec.Tenants {
				names[ts.Name] = true
			}
			var prev uint64
			for i, ev := range sc.Events {
				if ev.Batch < 1 || ev.Batch < prev {
					t.Fatalf("accepted event %d at batch %d after %d: %s", i, ev.Batch, prev, data)
				}
				prev = ev.Batch
				if !names[ev.Tenant] {
					t.Fatalf("accepted event %d against unknown tenant %q", i, ev.Tenant)
				}
				switch ev.Kind {
				case "join", "leave", "rate", "diurnal", "phase":
				default:
					t.Fatalf("accepted event %d with unknown kind %q", i, ev.Kind)
				}
			}
		}
		if c := spec.Clients; c != nil {
			if c.Users < 0 || c.Alpha < 0 || c.Alpha > 1 {
				t.Fatalf("accepted invalid clients block %+v", c)
			}
		}
		if _, err := spec.Config(); err != nil {
			t.Fatalf("accepted spec does not build a config: %v", err)
		}
		out, err := spec.Marshal()
		if err != nil {
			t.Fatalf("marshalling accepted spec: %v", err)
		}
		again, err := serve.ParseSpec(out)
		if err != nil {
			t.Fatalf("re-parsing %s: %v", out, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round trip changed the spec:\n%+v\n%+v", spec, again)
		}
	})
}

// FuzzDeviceSpec fuzzes the spec's "device" block: arbitrary bytes must
// never panic, unknown keys anywhere under "device" (including the nested
// "link" object) must be rejected with a field-path error, and every accepted
// document must build a validated device configuration and survive a
// Marshal/ParseSpec round trip unchanged.
func FuzzDeviceSpec(f *testing.F) {
	const base = `"warmup":16000,"train":{"k":4,"shot":128}`
	f.Add([]byte(`{"version":1,` + base + `,"device":{"timing":"flat"}}`))
	f.Add([]byte(`{"version":1,` + base + `,"device":{"timing":"dataflow","outstanding":4,
	 "overlap":false,"tag_compare_cycles":3,"hit_cycles":200,"ssd_read_cycles":10000,
	 "ssd_write_cycles":120000,"inference_cycles":512,"host_pages":4096,"host_latency_ns":90,
	 "link":{"one_way_ns":120,"bytes_per_ns":32,"flit_bytes":128}}}`))
	f.Add([]byte(`{"version":1,` + base + `,"device":{"timing":"dataflow"}}`))
	f.Add([]byte(`{"version":1,` + base + `,"device":{"timing":"warp"}}`))
	f.Add([]byte(`{"version":1,` + base + `,"device":{"outstandng":4}}`))
	f.Add([]byte(`{"version":1,` + base + `,"device":{"link":{"one_way_sn":120}}}`))
	f.Add([]byte(`{"version":1,` + base + `,"device":{"timing":"dataflow","hit_cycles":-1}}`))
	f.Add([]byte(`{"version":1,` + base + `,"device":{"timing":"dataflow","host_pages":64,"host_latency_ns":-5}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := serve.ParseSpec(data)
		if err != nil {
			return
		}
		cfg, err := spec.Config()
		if err != nil {
			t.Fatalf("accepted spec does not build a config: %v", err)
		}
		if err := cfg.Device.Validate(); err != nil {
			t.Fatalf("accepted spec builds an invalid device config: %v", err)
		}
		out, err := spec.Marshal()
		if err != nil {
			t.Fatalf("marshalling accepted spec: %v", err)
		}
		again, err := serve.ParseSpec(out)
		if err != nil {
			t.Fatalf("re-parsing %s: %v", out, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round trip changed the spec:\n%+v\n%+v", spec, again)
		}
	})
}

// FuzzTenantSpec fuzzes the -tenants JSON wire format: arbitrary bytes must
// never panic, and every accepted spec list must satisfy the documented
// invariants (unique names, positive rates, shares in (0,1] summing to at
// most 1) and survive a marshal/parse round trip unchanged.
func FuzzTenantSpec(f *testing.F) {
	f.Add([]byte(`[{"name":"a","workload":"dlrm","seed":1,"rate":1e6,"share":0.5}]`))
	f.Add([]byte(`[{"name":"a","workload":"parsec","rate":1,"share":0.3,
	  "qos":{"metric":"hit_ratio","target":0.7,"band":0.2}},
	 {"name":"b","custom":{"Name":"c","TotalPages":64,"Clusters":[{"CenterPage":8,"Spread":2}]},
	  "rate":2,"share":0.7,"burst":0.5,"offset_pages":1048576,"shift_after":100,"shift_offset_pages":4096}]`))
	f.Add([]byte(`[{"name":"g","workload":"dlrm","rate":1,"share":0.2,"shift_after":8192,
	  "shift_custom":{"Name":"grown","TotalPages":480,"Clusters":[{"CenterPage":120,"Spread":55}]}}]`))
	f.Add([]byte(`[{"name":"g","workload":"dlrm","rate":1,"share":0.2,
	  "shift_custom":{"Name":"grown","TotalPages":480,"Clusters":[{"CenterPage":120,"Spread":55}]}}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"share":1e308},{"share":1e308}]`))
	f.Add([]byte(`[{"name":"a","workload":"dlrm","rate":1,"share":"NaN"}]`))
	f.Add([]byte(`{"name":"a"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		specs, err := serve.ParseTenantSpecs(data)
		if err != nil {
			return
		}
		seen := map[string]bool{}
		var shareSum float64
		for _, ts := range specs {
			if ts.Name == "" || seen[ts.Name] {
				t.Fatalf("accepted spec with missing/duplicate name: %+v", specs)
			}
			seen[ts.Name] = true
			if ts.RatePerSec <= 0 {
				t.Fatalf("accepted non-positive rate: %+v", ts)
			}
			if ts.Share <= 0 || ts.Share > 1 {
				t.Fatalf("accepted share outside (0,1]: %+v", ts)
			}
			if ts.BurstAmp < 0 || ts.BurstAmp >= 1 {
				t.Fatalf("accepted burst outside [0,1): %+v", ts)
			}
			shareSum += ts.Share
		}
		if shareSum > 1+1e-6 {
			t.Fatalf("accepted over-committed shares (sum %v): %s", shareSum, data)
		}
		// Accepted specs are canonical: marshal/parse must be lossless.
		out, err := json.Marshal(specs)
		if err != nil {
			t.Fatalf("marshalling accepted specs: %v", err)
		}
		again, err := serve.ParseTenantSpecs(out)
		if err != nil {
			t.Fatalf("re-parsing %s: %v", out, err)
		}
		if !reflect.DeepEqual(specs, again) {
			t.Fatalf("round trip changed specs:\n%+v\n%+v", specs, again)
		}
	})
}
