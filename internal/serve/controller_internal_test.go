package serve

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/trace"
)

// ctrlHarness builds a minimal Service around hand-constructed partitions so
// controller steps can be driven directly: no workload, no training — the
// control-interval counters are set by hand between steps.
type ctrlHarness struct {
	svc *Service
	out bytes.Buffer
}

func newCtrlHarness(t *testing.T, specs []TenantSpec, budgets []int, cfg ControlConfig) *ctrlHarness {
	t.Helper()
	h := &ctrlHarness{}
	s := &Service{
		cfg:     Config{Tenants: specs, Control: cfg},
		runner:  engine.NewRunner(1),
		tenants: make([]*tenantState, len(specs)),
	}
	s.metrics = newMetricsWriter(&h.out)
	for i, ts := range specs {
		s.tenants[i] = &tenantState{spec: ts, mult: 1, threshold: 1, ctrlDir: -1}
	}
	for pi := 0; pi < 2; pi++ {
		pol := newTenantGMM(policy.GMMCachingEviction, budgets, 0)
		blocks := 0
		for _, b := range budgets {
			blocks += b
		}
		c, err := cache.New(cache.Config{
			SizeBytes:  uint64(blocks) * trace.PageSize,
			BlockBytes: trace.PageSize,
			Ways:       blocks,
		}, pol)
		if err != nil {
			t.Fatal(err)
		}
		pol.bindCache(c)
		ten := make([]tenantPartStats, len(specs))
		for i := range ten {
			ten[i] = newTenantPartStats(true)
		}
		s.parts = append(s.parts, &partition{cache: c, pol: pol, ten: ten})
	}
	s.refresher = newRefresher(s, &Bundle{Threshold: 1})
	s.ctrl = newController(s, cfg)
	if s.ctrl == nil {
		t.Fatal("controller did not activate for QoS tenants")
	}
	h.svc = s
	return h
}

// observe charges one interval's worth of traffic to tenant ti (all in
// partition 0; the controller merges across partitions anyway).
func (h *ctrlHarness) observe(ti int, ops, hits uint64) {
	cell := &h.svc.parts[0].ten[ti]
	cell.ctrlOps += ops
	cell.ctrlHits += hits
}

// fill inserts n distinct pages for tenant ti so share shrinks have resident
// blocks to evict.
func (h *ctrlHarness) fill(t *testing.T, ti, n int) {
	t.Helper()
	for pi, p := range h.svc.parts {
		for i := 0; i < n; i++ {
			p.pol.Begin(ti, float64(i))
			if res := p.cache.Access(uint64(1000*ti+i), false); !res.Admitted {
				t.Fatalf("partition %d: setup fill for tenant %d not admitted", pi, ti)
			}
		}
	}
}

func hitQoS(target float64) *QoSSpec {
	return &QoSSpec{Metric: QoSHitRatio, Target: target, Band: 0.10}
}

// TestControllerZeroOpIntervalHolds is the idle-tenant regression test: a
// tenant with no arrivals in a control window must hold everything — no
// threshold or share step, no NaN metric, no control record — and the
// violated-step chain must break so the next measured interval does not
// judge improvement against a metric from before the gap.
func TestControllerZeroOpIntervalHolds(t *testing.T) {
	t.Parallel()
	specs := []TenantSpec{
		{Name: "busy", Share: 0.5, QoS: hitQoS(0.8)},
		{Name: "idle", Share: 0.5, QoS: hitQoS(0.8)},
	}
	h := newCtrlHarness(t, specs, []int{4, 4}, ControlConfig{Every: 1, Step: 2})
	s := h.svc

	// Interval 1: busy violated (hit ratio 0.10), idle serves nothing.
	h.observe(0, 100, 10)
	s.ctrl.step()
	busy, idle := s.tenants[0], s.tenants[1]
	if idle.mult != 1 || idle.lastValid || idle.threshold != 1 {
		t.Fatalf("idle tenant stepped: mult=%v lastValid=%v threshold=%v", idle.mult, idle.lastValid, idle.threshold)
	}
	if !busy.lastValid || busy.mult != 0.5 {
		t.Fatalf("busy tenant did not step: mult=%v", busy.mult)
	}
	if out := h.out.String(); strings.Contains(out, `"tenant":"idle"`) {
		t.Errorf("idle tenant emitted a control record:\n%s", out)
	}

	// Interval 2: busy goes idle too — its chain must break.
	if !busy.ctrlPrevViolate {
		t.Fatal("setup: busy tenant should carry a violated step")
	}
	s.ctrl.step()
	if busy.ctrlPrevViolate {
		t.Error("idle interval did not break the violated-step chain")
	}
	if busy.mult != 0.5 || !busy.lastValid {
		t.Errorf("idle interval moved busy tenant state: mult=%v lastValid=%v", busy.mult, busy.lastValid)
	}

	// Interval 3: busy violated again, with a *worse* metric than interval
	// 1. Without the chain break the controller would see "no improvement"
	// against the stale pre-gap metric and reverse direction (mult up); with
	// it, the step continues loosening (mult down).
	h.observe(0, 100, 5)
	s.ctrl.step()
	if busy.mult != 0.25 {
		t.Errorf("post-gap violated step reversed against a stale metric: mult=%v, want 0.25", busy.mult)
	}
}

// TestControllerShareTransfer drives the elastic-share lever end to end on
// the harness: a persistently violated tenant with a saturated threshold
// lever takes one quantum per partition from the comfortable tenant, the
// donor's overflow blocks are evicted, a "share" record is emitted, and the
// cooldown then keeps a second transfer from following immediately.
func TestControllerShareTransfer(t *testing.T) {
	t.Parallel()
	specs := []TenantSpec{
		{Name: "starved", Share: 0.5, QoS: hitQoS(0.8)},
		{Name: "cozy", Share: 0.5, QoS: hitQoS(0.4)},
	}
	cfg := ControlConfig{
		Every: 1, Step: 2, MinMult: 0.5, MaxMult: 2,
		ShareAdapt: true, ShareQuantum: 1, ShareHold: 2, ShareCooldown: 2, ShareFloor: 1,
	}
	h := newCtrlHarness(t, specs, []int{4, 4}, cfg)
	s := h.svc
	h.fill(t, 0, 4) // starved presses its cap: capacity is its binding constraint
	h.fill(t, 1, 4) // cozy holds its full budget in every partition

	violatedComfortable := func() {
		h.observe(0, 100, 10) // starved: 0.10 against a 0.80 floor
		h.observe(1, 100, 90) // cozy: 0.90 against a 0.40 floor
	}

	// Interval 1: starved's first violated step clamps mult at MinMult
	// (saturation 1 of 2). No transfer yet.
	violatedComfortable()
	s.ctrl.step()
	if got := s.parts[0].pol.Budget(0); got != 4 {
		t.Fatalf("transfer before ShareHold intervals: budget=%d", got)
	}
	if s.tenants[0].satHold != 1 {
		t.Fatalf("satHold = %d after first clamped step", s.tenants[0].satHold)
	}

	// Interval 2: saturation reaches ShareHold — one quantum moves in every
	// partition, and the donor's overflow is evicted immediately.
	violatedComfortable()
	s.ctrl.step()
	for pi, p := range s.parts {
		if p.pol.Budget(0) != 5 || p.pol.Budget(1) != 3 {
			t.Fatalf("partition %d budgets after transfer = %d/%d, want 5/3", pi, p.pol.Budget(0), p.pol.Budget(1))
		}
		if p.pol.Resident(1) != 3 {
			t.Fatalf("partition %d donor resident = %d after shrink, want 3", pi, p.pol.Resident(1))
		}
		if err := p.pol.checkShares(); err != nil {
			t.Fatalf("partition %d after transfer: %v", pi, err)
		}
	}
	out := h.out.String()
	if !strings.Contains(out, `"kind":"share"`) ||
		!strings.Contains(out, `"tenant":"starved"`) ||
		!strings.Contains(out, `"donor":"cozy"`) {
		t.Errorf("share record missing or mislabeled:\n%s", out)
	}
	if !strings.Contains(out, `"quantum_blocks":2`) || !strings.Contains(out, `"evicted_blocks":2`) {
		t.Errorf("share record counts wrong:\n%s", out)
	}

	// Intervals 3-4: cooldown — same pressure, no transfer.
	for i := 0; i < 2; i++ {
		violatedComfortable()
		s.ctrl.step()
		if got := s.parts[0].pol.Budget(0); got != 5 {
			t.Fatalf("transfer during cooldown (interval %d): budget=%d", 3+i, got)
		}
	}

	// Interval 5: cooldown over — the next quantum moves.
	violatedComfortable()
	s.ctrl.step()
	if got := s.parts[0].pol.Budget(0); got != 6 {
		t.Fatalf("post-cooldown transfer missing: budget=%d", got)
	}
}

// TestControllerShareRequiresCapPressure: a violated, saturated tenant that
// cannot even fill its current budget is not capacity-limited — its
// threshold or model is the bottleneck — so the share lever must not drain a
// donor for it.
func TestControllerShareRequiresCapPressure(t *testing.T) {
	t.Parallel()
	specs := []TenantSpec{
		{Name: "starved", Share: 0.5, QoS: hitQoS(0.8)},
		{Name: "cozy", Share: 0.5, QoS: hitQoS(0.4)},
	}
	cfg := ControlConfig{
		Every: 1, Step: 2, MinMult: 0.5, MaxMult: 2,
		ShareAdapt: true, ShareQuantum: 1, ShareHold: 1, ShareCooldown: 1, ShareFloor: 1,
	}
	h := newCtrlHarness(t, specs, []int{4, 4}, cfg)
	s := h.svc
	h.fill(t, 1, 4) // donor full; receiver holds nothing
	for i := 0; i < 3; i++ {
		h.observe(0, 100, 10)
		h.observe(1, 100, 90)
		s.ctrl.step()
	}
	if b := s.parts[0].pol; b.Budget(0) != 4 || b.Budget(1) != 4 {
		t.Fatalf("empty receiver was granted capacity: budgets %d/%d", b.Budget(0), b.Budget(1))
	}
	if strings.Contains(h.out.String(), `"kind":"share"`) {
		t.Error("share record emitted for a receiver with no cap pressure")
	}
}

// TestControllerDonorUsesEWMAHeadroom is the oscillating-donor regression
// test: donor selection ranks candidates by the EWMA of their measured
// headroom, not the instantaneous value, so a tenant whose metric swings
// around its band edge cannot win the widest-headroom contest on one lucky
// interval. "oscil" spends its history barely comfortable, then spikes to
// the widest instantaneous headroom exactly when the transfer fires;
// "steady" has been comfortably wide the whole time. Instantaneous selection
// would drain oscil — the EWMA must pick steady.
func TestControllerDonorUsesEWMAHeadroom(t *testing.T) {
	t.Parallel()
	specs := []TenantSpec{
		{Name: "starved", Share: 0.4, QoS: hitQoS(0.8)},
		{Name: "oscil", Share: 0.3, QoS: hitQoS(0.4)},
		{Name: "steady", Share: 0.3, QoS: hitQoS(0.4)},
	}
	cfg := ControlConfig{
		Every: 1, Step: 2, MinMult: 0.5, MaxMult: 2,
		ShareAdapt: true, ShareQuantum: 1, ShareHold: 1, ShareCooldown: 4, ShareFloor: 1,
	}
	h := newCtrlHarness(t, specs, []int{4, 4, 4}, cfg)
	s := h.svc
	h.fill(t, 0, 4) // starved presses its cap
	h.fill(t, 1, 4)
	h.fill(t, 2, 4)

	// History: starved idle (no receiver, so no transfer), oscil barely
	// comfortable at 0.45 (headroom 0.125), steady wide at 0.90 (headroom
	// 1.25). Four intervals pin both EWMAs near those values.
	for i := 0; i < 4; i++ {
		h.observe(1, 100, 45)
		h.observe(2, 100, 90)
		s.ctrl.step()
	}
	if ew := s.tenants[1].headroomEWMA; ew > 0.2 {
		t.Fatalf("setup: oscil's EWMA %v did not settle low", ew)
	}

	// Decision interval: starved violated and instantly saturated (first
	// step clamps mult at MinMult), oscil spikes to 0.95 — instantaneous
	// headroom 1.375, the widest in the pool — while steady holds 0.90
	// (headroom 1.25). The EWMA still ranks steady far above oscil.
	h.observe(0, 100, 10)
	h.observe(1, 100, 95)
	h.observe(2, 100, 90)
	s.ctrl.step()

	out := h.out.String()
	if !strings.Contains(out, `"kind":"share"`) {
		t.Fatalf("no share transfer fired:\n%s", out)
	}
	if !strings.Contains(out, `"donor":"steady"`) || strings.Contains(out, `"donor":"oscil"`) {
		t.Errorf("donor selection followed the instantaneous spike instead of the EWMA:\n%s", out)
	}
	if b := s.parts[0].pol; b.Budget(1) != 4 || b.Budget(2) != 3 {
		t.Errorf("budgets after transfer = %d/%d/%d, want 5/4/3", b.Budget(0), b.Budget(1), b.Budget(2))
	}
}

// TestControlConfigShareValidation pins the share-lever config contract.
func TestControlConfigShareValidation(t *testing.T) {
	t.Parallel()
	base := ControlConfig{ShareAdapt: true}
	if err := base.Validate(); err != nil {
		t.Fatalf("defaulted share config rejected: %v", err)
	}
	bad := map[string]ControlConfig{
		"negative quantum":  {ShareAdapt: true, ShareQuantum: -1},
		"negative hold":     {ShareAdapt: true, ShareHold: -1},
		"negative cooldown": {ShareAdapt: true, ShareCooldown: -3},
		"negative floor":    {ShareAdapt: true, ShareFloor: -2},
	}
	for name, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestControllerShareFloorAndEligibility: a donor at the floor never gives,
// a tenant that is merely holding (inside its band) neither gives nor takes,
// and tenants without QoS targets are never touched.
func TestControllerShareFloorAndEligibility(t *testing.T) {
	t.Parallel()
	specs := []TenantSpec{
		{Name: "starved", Share: 0.25, QoS: hitQoS(0.8)},
		{Name: "floor", Share: 0.25, QoS: hitQoS(0.4)},
		{Name: "static", Share: 0.5},
	}
	cfg := ControlConfig{
		Every: 1, Step: 2, MinMult: 0.5, MaxMult: 2,
		ShareAdapt: true, ShareQuantum: 2, ShareHold: 1, ShareCooldown: 1, ShareFloor: 3,
	}
	h := newCtrlHarness(t, specs, []int{2, 4, 8}, cfg)
	s := h.svc

	// floor is comfortable but holds 4 blocks: giving 2 would leave 2 < 3.
	h.observe(0, 100, 10)
	h.observe(1, 100, 90)
	s.ctrl.step()
	if b := s.parts[0].pol; b.Budget(0) != 2 || b.Budget(1) != 4 || b.Budget(2) != 8 {
		t.Fatalf("floor-protected donor gave anyway: budgets %d/%d/%d", b.Budget(0), b.Budget(1), b.Budget(2))
	}
	if h.out.Len() > 0 && strings.Contains(h.out.String(), `"kind":"share"`) {
		t.Error("share record emitted without a transfer")
	}

	// A holding tenant (inside the band) is not a donor either — and the
	// QoS-less tenant's share must never move, no matter the pressure.
	h.observe(0, 100, 10)
	h.observe(1, 100, 42) // 0.42 against target 0.40, inside the 10% band
	s.ctrl.step()
	if b := s.parts[0].pol; b.Budget(0) != 2 || b.Budget(2) != 8 {
		t.Fatalf("holding/static tenants were raided: budgets %d/%d/%d", b.Budget(0), b.Budget(1), b.Budget(2))
	}
}
