package serve_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/serve"
)

// elasticSpec loads the committed 3-tenant elastic scenario spec — the same
// document cmd/icgmm-serve ships in its testdata — and pins it to the given
// shard count. One spec file on disk is both the CLI's golden input and this
// package's session fixture, so the two can never drift apart.
func elasticSpec(t testing.TB, shards int) serve.Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "cmd", "icgmm-serve", "testdata", "spec-elastic.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := serve.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = shards
	return spec
}

// TestSessionGoldenAcrossCheckpoint extends the golden determinism contract
// across a checkpoint boundary: the pinned 3-tenant elastic scenario is run
// to batch 80, checkpointed, resumed into a fresh session (fresh Service,
// fresh caches, fresh streams — a process-equivalent restart), and the
// concatenated JSONL must equal the committed golden byte stream at shards
// 1, 2 and 8. The scenario's single share transfer (batch 88) lands in the
// resumed half, so the controller's saturation/cooldown state provably
// survives the boundary.
func TestSessionGoldenAcrossCheckpoint(t *testing.T) {
	t.Parallel()
	golden, err := os.ReadFile(filepath.Join("testdata", "tenant_golden.jsonl"))
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}

	// The uninterrupted session must reproduce the golden stream — the
	// Session lifecycle is a byte-compatible replacement for Service.Run.
	var full bytes.Buffer
	sess, err := serve.Open(elasticSpec(t, 1), &full)
	if err != nil {
		t.Fatal(err)
	}
	snapFull, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full.Bytes(), golden) {
		t.Errorf("uninterrupted session JSONL diverges from the golden file (%d vs %d bytes)", full.Len(), len(golden))
	}
	if snapFull.Refreshes == 0 {
		t.Error("session run lost the scenario's refresh coverage")
	}

	for _, shards := range []int{1, 2, 8} {
		var pre bytes.Buffer
		sess, err := serve.Open(elasticSpec(t, shards), &pre)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := sess.Step(80); err != nil || n != 80 {
			t.Fatalf("shards=%d: Step(80) = %d, %v", shards, n, err)
		}
		var ckpt bytes.Buffer
		if err := sess.Checkpoint(&ckpt); err != nil {
			t.Fatalf("shards=%d: checkpoint: %v", shards, err)
		}
		// The paused session is abandoned, never closed: the resumed one
		// continues its metric stream.
		var post bytes.Buffer
		resumed, err := serve.Resume(bytes.NewReader(ckpt.Bytes()), &post)
		if err != nil {
			t.Fatalf("shards=%d: resume: %v", shards, err)
		}
		if got := resumed.Batches(); got != 80 {
			t.Fatalf("shards=%d: resumed at batch %d, want 80", shards, got)
		}
		snap, err := resumed.Run()
		if err != nil {
			t.Fatal(err)
		}
		concat := append(append([]byte(nil), pre.Bytes()...), post.Bytes()...)
		if !bytes.Equal(concat, golden) {
			t.Errorf("shards=%d: checkpoint-resumed JSONL diverges from the golden file (%d vs %d bytes)",
				shards, len(concat), len(golden))
		}
		if !bytes.Contains(post.Bytes(), []byte(`"kind":"share"`)) {
			t.Errorf("shards=%d: the share transfer did not survive the checkpoint boundary", shards)
		}
		if !reflect.DeepEqual(snap, snapFull) {
			t.Errorf("shards=%d: resumed final snapshot differs from the uninterrupted run", shards)
		}
	}
}

// smallSessionSpec is a fast 2-tenant scenario exercising every piece of
// checkpointed state: QoS controller with elastic shares, a mid-run
// working-set growth, and sync refresh.
func smallSessionSpec(t testing.TB) serve.Spec {
	t.Helper()
	spec, err := serve.ParseSpec([]byte(`{
	 "version": 1, "shards": 2, "partitions": 4, "ops": 16384, "warmup": 16000,
	 "batch": 1024, "report": 4,
	 "cache": {"size_mb": 1, "ways": 8},
	 "train": {"k": 4, "max_iters": 6, "max_samples": 2000, "lloyd_iters": 2, "shot": 128},
	 "refresh": {"mode": "sync", "window": 4096, "min": 1024,
	  "drift_delta": 0.10, "drift_sustain": 1, "drift_warmup": 4, "drift_alpha": 0.2},
	 "control": {"every": 2, "step": 1.6, "min_mult": 0.125, "max_mult": 8,
	  "share_adapt": true, "share_quantum": 4, "share_hold": 2, "share_cooldown": 1, "share_floor": 4},
	 "tenants": [
	  {"name": "a",
	   "custom": {"Name": "a-ws", "TotalPages": 300,
	    "Clusters": [{"CenterPage": 80, "Spread": 25}, {"CenterPage": 220, "Spread": 20}],
	    "WriteFrac": 0.2},
	   "seed": 1, "rate": 20000, "share": 0.6,
	   "shift_after": 8192, "shift_offset_pages": 524288,
	   "qos": {"metric": "hit_ratio", "target": 0.7, "band": 0.1}},
	  {"name": "b",
	   "custom": {"Name": "b-ws", "TotalPages": 160,
	    "Clusters": [{"CenterPage": 60, "Spread": 20}], "WriteFrac": 0.3},
	   "seed": 2, "rate": 10000, "offset_pages": 65536, "share": 0.4,
	   "shift_after": 6144, "shift_offset_pages": 131072,
	   "shift_custom": {"Name": "b-grown", "TotalPages": 400,
	    "Clusters": [{"CenterPage": 100, "Spread": 45}, {"CenterPage": 300, "Spread": 45}],
	    "WriteFrac": 0.3},
	   "qos": {"metric": "hit_ratio", "target": 0.6, "band": 0.15}}
	 ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestSessionCheckpointEveryBoundary is the resume property test: one
// uninterrupted run is checkpointed at EVERY batch boundary (including
// batch 0 and the final boundary), every checkpoint is resumed to
// completion, and each resumed JSONL — concatenated after the bytes the
// paused run had emitted — must equal the uninterrupted stream, with a
// deep-equal final snapshot. Checkpointing is non-destructive, so one live
// session provides all the boundaries.
func TestSessionCheckpointEveryBoundary(t *testing.T) {
	t.Parallel()
	spec := smallSessionSpec(t)
	var full bytes.Buffer
	sess, err := serve.Open(spec, &full)
	if err != nil {
		t.Fatal(err)
	}
	type mark struct {
		ckpt      []byte
		prefixLen int
		batch     uint64
	}
	var marks []mark
	for {
		var ckpt bytes.Buffer
		if err := sess.Checkpoint(&ckpt); err != nil {
			t.Fatal(err)
		}
		marks = append(marks, mark{ckpt: ckpt.Bytes(), prefixLen: full.Len(), batch: sess.Batches()})
		n, err := sess.Step(1)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	snapFull, err := sess.Run() // already exhausted: emits the final records
	if err != nil {
		t.Fatal(err)
	}
	fullBytes := append([]byte(nil), full.Bytes()...)
	if len(marks) != 17 { // 16 batches -> 17 boundaries
		t.Fatalf("expected 17 checkpoint boundaries, got %d", len(marks))
	}
	if snapFull.Refreshes == 0 {
		t.Error("scenario lost its refresh coverage")
	}

	for _, m := range marks {
		var post bytes.Buffer
		resumed, err := serve.Resume(bytes.NewReader(m.ckpt), &post)
		if err != nil {
			t.Fatalf("batch %d: resume: %v", m.batch, err)
		}
		snap, err := resumed.Run()
		if err != nil {
			t.Fatalf("batch %d: %v", m.batch, err)
		}
		concat := append(append([]byte(nil), fullBytes[:m.prefixLen]...), post.Bytes()...)
		if !bytes.Equal(concat, fullBytes) {
			t.Errorf("batch %d: resumed JSONL diverges from the uninterrupted run (%d vs %d bytes)",
				m.batch, len(concat), len(fullBytes))
		}
		if !reflect.DeepEqual(snap, snapFull) {
			t.Errorf("batch %d: resumed snapshot differs from the uninterrupted run", m.batch)
		}
	}
}

// TestSessionCheckpointSingleStream covers the open-loop (non-tenant) source
// across a checkpoint that brackets a working-set drift and its sync
// refresh: the stream's segment cursor, shift flag and virtual clock must
// all survive serialization.
func TestSessionCheckpointSingleStream(t *testing.T) {
	t.Parallel()
	spec, err := serve.ParseSpec([]byte(`{
	 "version": 1, "shards": 2, "partitions": 8, "ops": 61440, "warmup": 30000,
	 "batch": 1024, "report": 8,
	 "cache": {"size_mb": 1, "ways": 8},
	 "train": {"k": 8, "max_iters": 8, "max_samples": 3000, "lloyd_iters": 2, "shot": 256},
	 "refresh": {"mode": "sync", "window": 8192, "min": 2048,
	  "drift_delta": 0.25, "drift_sustain": 2, "drift_warmup": 4, "drift_alpha": 0.05},
	 "workload": {
	  "custom": {"Name": "session-ws", "TotalPages": 4096,
	   "Clusters": [{"CenterPage": 600, "Spread": 40}, {"CenterPage": 2600, "Spread": 60}],
	   "WriteFrac": 0.2},
	  "seed": 7, "rate": 5000000, "burst": 0.3, "drift": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	sess, err := serve.Open(spec, &full)
	if err != nil {
		t.Fatal(err)
	}
	snapFull, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if snapFull.Refreshes == 0 {
		t.Fatal("drift did not trigger a refresh; the test lost its refresh coverage")
	}

	// Checkpoint both before and after the mid-run shift (batch 30).
	for _, at := range []int{20, 45} {
		var pre bytes.Buffer
		sess, err := serve.Open(spec, &pre)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := sess.Step(at); err != nil || n != at {
			t.Fatalf("Step(%d) = %d, %v", at, n, err)
		}
		var ckpt bytes.Buffer
		if err := sess.Checkpoint(&ckpt); err != nil {
			t.Fatal(err)
		}
		var post bytes.Buffer
		resumed, err := serve.Resume(&ckpt, &post)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := resumed.Run()
		if err != nil {
			t.Fatal(err)
		}
		concat := append(append([]byte(nil), pre.Bytes()...), post.Bytes()...)
		if !bytes.Equal(concat, full.Bytes()) {
			t.Errorf("checkpoint at batch %d: resumed JSONL diverges (%d vs %d bytes)", at, len(concat), full.Len())
		}
		if !reflect.DeepEqual(snap, snapFull) {
			t.Errorf("checkpoint at batch %d: resumed snapshot differs", at)
		}
	}
}

// TestSessionLifecycleErrors pins the API's edges: stepping or
// checkpointing a closed session fails, Close is idempotent, and resuming
// garbage or a format the build does not read fails loudly.
func TestSessionLifecycleErrors(t *testing.T) {
	t.Parallel()
	spec := smallSessionSpec(t)
	sess, err := serve.Open(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(2); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := sess.Step(1); err == nil {
		t.Error("Step on a closed session succeeded")
	}
	if err := sess.Checkpoint(&bytes.Buffer{}); err == nil {
		t.Error("Checkpoint on a closed session succeeded")
	}
	if _, err := serve.Resume(bytes.NewReader([]byte("not json")), nil); err == nil {
		t.Error("resumed from garbage")
	}
	if _, err := serve.Resume(bytes.NewReader([]byte(`{"format":"icgmm-session-v999"}`)), nil); err == nil {
		t.Error("resumed from an unknown format")
	}
}

// TestSessionStepDoneMetrics drives the incremental API directly: Step
// bounds, Done transitions, and the Metrics snapshot between steps.
func TestSessionStepDoneMetrics(t *testing.T) {
	t.Parallel()
	spec, err := serve.ParseSpec([]byte(`{
	 "version": 1, "shards": 1, "partitions": 4, "ops": 4096, "warmup": 16000,
	 "batch": 1024, "report": 2, "cache": {"size_mb": 1, "ways": 8},
	 "train": {"k": 4, "max_iters": 5, "max_samples": 2000, "lloyd_iters": 2, "shot": 128},
	 "workload": {"name": "parsec", "rate": 2000000}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := serve.Open(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Done() || sess.Batches() != 0 {
		t.Fatalf("fresh session: done=%v batches=%d", sess.Done(), sess.Batches())
	}
	if n, err := sess.Step(3); err != nil || n != 3 {
		t.Fatalf("Step(3) = %d, %v", n, err)
	}
	mid := sess.Metrics()
	if mid.Ops != 3*1024 || sess.Batches() != 3 {
		t.Errorf("mid-run snapshot ops=%d batches=%d", mid.Ops, sess.Batches())
	}
	// Asking for more batches than remain serves the tail and reports Done.
	if n, err := sess.Step(10); err != nil || n != 1 {
		t.Fatalf("tail Step = %d, %v", n, err)
	}
	if !sess.Done() {
		t.Error("session not done after source exhaustion")
	}
	snap, err := sess.Run() // immediate: just closes and snapshots
	if err != nil {
		t.Fatal(err)
	}
	if snap.Ops != 4096 {
		t.Errorf("final ops = %d", snap.Ops)
	}
}

// TestResumeRejectsCorruptCheckpoints: a checkpoint whose state disagrees
// with the spec it carries (or with itself) must fail to resume with an
// error, never produce a silently-wrong session.
func TestResumeRejectsCorruptCheckpoints(t *testing.T) {
	t.Parallel()
	spec := smallSessionSpec(t)
	sess, err := serve.Open(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(2); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := sess.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	if snap := sess.Metrics(); snap.Refreshes != sess.Metrics().Refreshes {
		t.Fatal("unreachable") // exercise the accessor deterministically
	}

	tamper := func(t *testing.T, mutate func(doc map[string]any)) []byte {
		t.Helper()
		var doc map[string]any
		if err := json.Unmarshal(ckpt.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		mutate(doc)
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	state := func(doc map[string]any) map[string]any { return doc["state"].(map[string]any) }
	cases := map[string]func(doc map[string]any){
		"partition count": func(doc map[string]any) {
			s := state(doc)
			parts := s["partitions"].([]any)
			s["partitions"] = parts[:2]
		},
		"tenant count": func(doc map[string]any) {
			s := state(doc)
			s["tenants"] = []any{}
		},
		"policy geometry": func(doc map[string]any) {
			p := state(doc)["partitions"].([]any)[0].(map[string]any)
			pol := p["policy"].(map[string]any)
			pol["scores"] = []any{}
		},
		"window cursor": func(doc map[string]any) {
			w := state(doc)["window"].(map[string]any)
			w["pos"] = 3.0
			w["full"] = false
			w["items"] = []any{}
		},
		"negative bundle weight": func(doc map[string]any) {
			b := state(doc)["bundle"].(map[string]any)
			b["components"].([]any)[0].(map[string]any)["weight"] = -1.0
		},
		"missing source": func(doc map[string]any) {
			doc["source"] = map[string]any{"remaining": 1.0}
		},
		"source shape mismatch": func(doc map[string]any) {
			src := doc["source"].(map[string]any)
			src["open_loop"] = map[string]any{"seg": 1.0, "pos": 0.0, "emitted": 0.0, "clock_ns": 0.0}
			delete(src, "mux")
		},
		"cache set count": func(doc map[string]any) {
			p := state(doc)["partitions"].([]any)[0].(map[string]any)
			c := p["cache"].(map[string]any)
			c["sets"] = []any{}
		},
		"duplicate page within a set": func(doc map[string]any) {
			p := state(doc)["partitions"].([]any)[0].(map[string]any)
			sets := p["cache"].(map[string]any)["sets"].([]any)
			for _, raw := range sets {
				set := raw.([]any)
				var first map[string]any
				for _, b := range set {
					blk := b.(map[string]any)
					if blk["valid"] != true {
						continue
					}
					if first == nil {
						first = blk
						continue
					}
					blk["page"] = first["page"]
					return
				}
			}
			panic("no set with two valid blocks to duplicate")
		},
	}
	for name, mutate := range cases {
		if _, err := serve.Resume(bytes.NewReader(tamper(t, mutate)), nil); err == nil {
			t.Errorf("%s: corrupt checkpoint resumed", name)
		}
	}
}
