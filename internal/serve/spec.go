package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/fpga"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/ssd"
	"repro/internal/strictjson"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SpecVersion is the wire-format version this package reads and writes.
const SpecVersion = 1

// Spec is the declarative description of one serving run: a single
// versioned JSON document carrying everything cmd/icgmm-serve's flag set
// used to spell — training and trace-transform parameters, the
// partition/shard decomposition, the tenant population, the adaptive
// controller's levers, refresh/drift detection, the workload generators and
// the metrics sink. It is the wire format: ship the document to another
// machine and the run it describes is the same run, bit for bit.
//
// Defaulting happens when a Spec is turned into a runnable configuration
// (Config), never during decoding: a parsed Spec re-marshals to a document
// that parses back to the identical Spec, so specs survive round trips
// through tooling losslessly. Every omitted field takes the default of the
// corresponding legacy CLI flag (documented in the README's migration
// table).
type Spec struct {
	// Version must be SpecVersion; documents from a future format fail
	// loudly instead of being half-understood.
	Version int `json:"version"`
	// Shards sizes the worker pool (0 = one per core). Results are
	// bit-identical at any value.
	Shards int `json:"shards,omitempty"`
	// Partitions is the fixed address-space decomposition (default 16);
	// unlike Shards it is part of the simulated configuration.
	Partitions int `json:"partitions,omitempty"`
	// Ops bounds the run (default 2,000,000 requests).
	Ops uint64 `json:"ops,omitempty"`
	// Warmup is the initial-training trace length (default 200,000).
	Warmup int `json:"warmup,omitempty"`
	// Batch is the ingest batch size, the unit of batched GMM admission
	// (default 8192).
	Batch int `json:"batch,omitempty"`
	// Report is the interval-record period in batches (default 16; -1
	// disables interval records).
	Report int `json:"report,omitempty"`
	// Mode picks the GMM strategy: "gmm-caching-only", "gmm-eviction-only"
	// or "gmm-caching-eviction" (the default).
	Mode string `json:"mode,omitempty"`
	// Scoring picks the admission scorer datapath: "float64" (the default,
	// and the path the determinism goldens pin) or "q16", the Q16.16
	// fixed-point weight-buffer emulation. Checkpoints persist the float
	// model plus this field, so a q16 run resumes by re-quantizing
	// deterministically.
	Scoring string `json:"scoring,omitempty"`
	// Duration is an optional wall-clock ingest bound ("10s"); wall time is
	// non-reproducible by construction, so a spec carrying it trades the
	// determinism contract for a bounded run, exactly like the -duration
	// flag it replaces.
	Duration string `json:"duration,omitempty"`
	// Output is the JSONL metrics sink: a file path, or ""/"-" for stdout.
	// The loader (CLI, example harness) resolves it; the embedded Session
	// API takes an io.Writer directly.
	Output string `json:"output,omitempty"`

	// Cache describes the device cache geometry and backing store.
	Cache *CacheSpec `json:"cache,omitempty"`
	// Train describes GMM training and the Algorithm 1 trace transform.
	Train *TrainSpec `json:"train,omitempty"`
	// Workload is the single anonymous stream; mutually exclusive with
	// Tenants. Both omitted means the default dlrm stream.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Tenants switches to multi-tenant serving (the former -tenants file,
	// absorbed into the spec).
	Tenants []TenantSpec `json:"tenants,omitempty"`
	// Refresh configures online model refresh and its drift trigger.
	Refresh *RefreshSpec `json:"refresh,omitempty"`
	// Control parameterizes the adaptive threshold/share controller.
	Control *ControlSpec `json:"control,omitempty"`
	// Telemetry opts into the live debug server and event trace. Like
	// Output it is loader-resolved (the CLI and cluster workers mount the
	// server; the embedded Session API ignores it) and read-side only: a
	// spec with telemetry produces byte-identical metric output to the same
	// spec without it.
	Telemetry *TelemetrySpec `json:"telemetry,omitempty"`
	// Device selects and parameterizes the device timing backend (flat
	// latency constants, the default, or the fpga dataflow pipeline).
	Device *DeviceSpec `json:"device,omitempty"`
	// Scenario attaches a deterministic timeline of batch-indexed events —
	// tenant churn, rate schedules, workload phase swaps — applied at batch
	// boundaries (requires tenants).
	Scenario *scenario.Spec `json:"scenario,omitempty"`
	// Clients switches every tenant from an open-loop arrival schedule to a
	// closed-loop client population whose offered load reacts to served
	// latency (requires tenants).
	Clients *ClientsSpec `json:"clients,omitempty"`
	// Shadow trains an LSTM admission policy on the same warm-up trace and
	// runs it as a shadow scorer over the live traffic: shadow hit-ratio and
	// latency deltas are recorded per tenant, and the live cache is never
	// touched.
	Shadow *ShadowSpec `json:"shadow,omitempty"`
}

// ClientsSpec configures closed-loop client populations (one per tenant).
// Each tenant's RatePerSec becomes the population's zero-latency target
// rate; once the simulated device saturates, completions (fed back through
// the session at batch boundaries) stretch inter-arrival times, so the
// offered load is a function of served latency — the feedback an open loop
// cannot express. Tenant burst modulation is ignored in this mode: the
// client's clock is its think/completion cycle. The warm-up trace remains
// open-loop (training sees page order, not arrival times).
type ClientsSpec struct {
	// Users is the number of simulated clients per tenant (default 8).
	Users int `json:"users,omitempty"`
	// Alpha is the EWMA weight for folding latency observations into the
	// clients' completion estimate (default 0.2).
	Alpha float64 `json:"alpha,omitempty"`
}

// EffectiveUsers returns the per-tenant client count with its default.
func (c *ClientsSpec) EffectiveUsers() int {
	if c == nil || c.Users == 0 {
		return 8
	}
	return c.Users
}

// Validate checks the client population parameters.
func (c ClientsSpec) Validate() error {
	if c.Users < 0 {
		return fmt.Errorf("serve: spec clients users %d negative", c.Users)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("serve: spec clients alpha %v outside [0,1]", c.Alpha)
	}
	return nil
}

// CacheSpec sizes the device cache and its backing store.
type CacheSpec struct {
	// SizeMB is the total cache capacity in MiB (default 64).
	SizeMB int `json:"size_mb,omitempty"`
	// Ways is the set associativity (default 8).
	Ways int `json:"ways,omitempty"`
	// SSD picks the backing-store profile: "tlc" (default), "slc", "qlc".
	SSD string `json:"ssd,omitempty"`
	// SSDChannels is the channel count per partition (default 8).
	SSDChannels int `json:"ssd_channels,omitempty"`
}

// TrainSpec describes initial training, refit behaviour and the trace
// transform.
type TrainSpec struct {
	// K is the GMM component count (default 64, the -k flag default).
	K int `json:"k,omitempty"`
	// Seed drives training (and, for the single-workload path, doubles as
	// the stream seed the way -seed did). Default 1.
	Seed int64 `json:"seed,omitempty"`
	// MaxIters bounds EM iterations (default 50).
	MaxIters int `json:"max_iters,omitempty"`
	// Tol is the EM convergence threshold (default 1e-4).
	Tol float64 `json:"tol,omitempty"`
	// MaxSamples caps the training set by uniform subsampling (default
	// 20000; -1 means unlimited).
	MaxSamples int `json:"max_samples,omitempty"`
	// LloydIters is the k-means initialization sweep count (default 4).
	LloydIters int `json:"lloyd_iters,omitempty"`
	// DiagonalCov constrains covariances to be diagonal (the
	// cheaper-datapath ablation).
	DiagonalCov bool `json:"diagonal_cov,omitempty"`
	// Window is Algorithm 1 len_window (default 32).
	Window int `json:"window,omitempty"`
	// Shot is Algorithm 1 len_access_shot (default 2000; window*shot must
	// fit the trimmed warm-up).
	Shot int `json:"shot,omitempty"`
	// ThresholdPct is the admission-threshold quantile over training scores
	// (default 0.02).
	ThresholdPct float64 `json:"threshold_pct,omitempty"`
}

// WorkloadSpec is the single anonymous request stream (the non-tenant
// path).
type WorkloadSpec struct {
	// Name picks a registry generator (default "dlrm"); Custom, when set,
	// takes precedence and composes a bespoke working set.
	Name   string                 `json:"name,omitempty"`
	Custom *workload.CustomConfig `json:"custom,omitempty"`
	// Seed drives the stream (default: the training seed).
	Seed int64 `json:"seed,omitempty"`
	// Rate is the open-loop arrival rate in req/s (default 1e6; negative
	// means a saturating source, the old -rate 0).
	Rate float64 `json:"rate,omitempty"`
	// Burst/BurstPeriod sinusoidally modulate the rate.
	Burst       float64 `json:"burst,omitempty"`
	BurstPeriod int     `json:"burst_period,omitempty"`
	// Drift shifts the working set halfway through Ops (the -drift flag).
	Drift bool `json:"drift,omitempty"`
}

// RefreshSpec configures online model refresh.
type RefreshSpec struct {
	// Mode is "off" (default), "sync" or "async".
	Mode string `json:"mode,omitempty"`
	// Window/Min are the refit sample window and its minimum fill
	// (defaults 65536 / 4096).
	Window int `json:"window,omitempty"`
	Min    int `json:"min,omitempty"`
	// DriftDelta/DriftSustain/DriftWarmup/DriftAlpha parameterize the
	// hit-ratio drift detector (defaults 0.10 / 3 / 8 / 0.05).
	DriftDelta   float64 `json:"drift_delta,omitempty"`
	DriftSustain int     `json:"drift_sustain,omitempty"`
	DriftWarmup  int     `json:"drift_warmup,omitempty"`
	DriftAlpha   float64 `json:"drift_alpha,omitempty"`
}

// ControlSpec parameterizes the adaptive per-tenant controller.
type ControlSpec struct {
	// Every is the control period in batches (default 16); Step the
	// multiplicative threshold step (default 1.25).
	Every int     `json:"every,omitempty"`
	Step  float64 `json:"step,omitempty"`
	// MinMult/MaxMult clamp the threshold multiplier (defaults 2^-10,
	// 2^10).
	MinMult float64 `json:"min_mult,omitempty"`
	MaxMult float64 `json:"max_mult,omitempty"`
	// ShareAdapt enables the elastic capacity-share lever.
	ShareAdapt bool `json:"share_adapt,omitempty"`
	// ShareQuantum/ShareHold are the transfer size and bid patience
	// (defaults 8 / 2).
	ShareQuantum int `json:"share_quantum,omitempty"`
	ShareHold    int `json:"share_hold,omitempty"`
	// ShareCooldown pauses the share lever after a transfer (default 4; an
	// explicit 0 means no pause, which is why this field is a pointer).
	ShareCooldown *int `json:"share_cooldown,omitempty"`
	// ShareFloor is the constant per-partition floor a donor may not shrink
	// below (default ShareQuantum) — the fallback when ShareFloorRateFrac
	// is unset.
	ShareFloor int `json:"share_floor,omitempty"`
	// ShareFloorRateFrac, in (0,1], derives each donor's floor from its
	// arrival-rate share instead of the constant: floor_t =
	// max(1, frac * rateShare_t * blocksPerPartition). A tenant carrying
	// half the traffic then keeps a proportionally larger guaranteed
	// footprint than one trickling requests, where the constant floor
	// treated both alike. Zero keeps the constant-ShareFloor behaviour.
	ShareFloorRateFrac float64 `json:"share_floor_rate_frac,omitempty"`
}

// TelemetrySpec enables the opt-in live telemetry layer: an HTTP debug
// server exposing /metrics (Prometheus text), /status (JSON) and
// /debug/pprof, plus a wall-clock-stamped JSONL event trace. All of it is
// read-side: enabling telemetry never changes the deterministic metric
// output.
type TelemetrySpec struct {
	// Addr is the debug server's listen address; "127.0.0.1:0" picks a free
	// port (the loader reports the bound address). Empty disables the
	// server.
	Addr string `json:"addr,omitempty"`
	// Trace is the event-trace JSONL sink: a file path, or "-" for stderr.
	// Empty disables the trace.
	Trace string `json:"trace,omitempty"`
	// SnapshotEvery is how often (in ingest batches) the loader publishes a
	// full Session.Metrics snapshot to the /metrics and /status endpoints
	// (default 16). Snapshots sort retained histogram samples, so very
	// small values trade serving throughput for telemetry freshness.
	SnapshotEvery int `json:"snapshot_every,omitempty"`
}

// EffectiveSnapshotEvery returns the snapshot cadence with its default.
func (t *TelemetrySpec) EffectiveSnapshotEvery() uint64 {
	if t == nil || t.SnapshotEvery == 0 {
		return 16
	}
	return uint64(t.SnapshotEvery)
}

// DeviceSpec selects the device timing backend and overrides its
// parameters. All cycle counts are in device clock cycles (233 MHz, ~4.29 ns
// each); omitted fields keep the paper's measured defaults
// (fpga.DefaultDataflowConfig).
type DeviceSpec struct {
	// Timing is "flat" (the default: per-outcome latency constants, the
	// path the determinism goldens pin) or "dataflow" (the Fig. 5 pipeline:
	// host/link routing in front of per-partition tag-compare / inference /
	// SSD module contention behind a bounded outstanding-request window).
	Timing string `json:"timing,omitempty"`
	// Outstanding is the host's request window under dataflow timing:
	// request i enters the device only after response i-Outstanding left
	// (default 1, a fully synchronous host).
	Outstanding int `json:"outstanding,omitempty"`
	// Overlap, when set, selects whether policy-engine scoring and SSD
	// access start concurrently on a miss (default true; false is the
	// serialized ablation). A pointer because an explicit false must be
	// distinguishable from omitted.
	Overlap *bool `json:"overlap,omitempty"`
	// TagCompareCycles/HitCycles/SSDReadCycles/SSDWriteCycles override the
	// pipeline stage timings (defaults 2 / 233 / 17475 / 209700).
	TagCompareCycles int64 `json:"tag_compare_cycles,omitempty"`
	HitCycles        int64 `json:"hit_cycles,omitempty"`
	SSDReadCycles    int64 `json:"ssd_read_cycles,omitempty"`
	SSDWriteCycles   int64 `json:"ssd_write_cycles,omitempty"`
	// InferenceCycles overrides the policy-engine scoring latency (default:
	// the paper's K=256 engine, 699 cycles).
	InferenceCycles int64 `json:"inference_cycles,omitempty"`
	// HostPages routes pages below it to host DRAM at HostLatencyNs
	// (default 100 ns), bypassing the link and the device entirely
	// (dataflow timing; 0 sends everything to the device).
	HostPages     uint64 `json:"host_pages,omitempty"`
	HostLatencyNs int64  `json:"host_latency_ns,omitempty"`
	// Link overrides the CXL port characteristics (both timing kinds).
	Link *LinkSpec `json:"link,omitempty"`
}

// LinkSpec overrides the CXL link model (cxl.DefaultLinkConfig defaults:
// 150 ns one-way, 25 B/ns, 64 B flits).
type LinkSpec struct {
	OneWayNs   int64   `json:"one_way_ns,omitempty"`
	BytesPerNs float64 `json:"bytes_per_ns,omitempty"`
	FlitBytes  uint64  `json:"flit_bytes,omitempty"`
}

// ParseSpec decodes and validates a spec document. Decoding is strict:
// unknown keys anywhere in the document are rejected with a field-path
// error (e.g. "spec.tenants[1].sahre: unknown field") instead of silently
// configuring defaults.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := strictjson.Unmarshal(data, &s, "spec"); err != nil {
		return Spec{}, err
	}
	// Normalize "tenants": [] to the absent form: omitempty drops an empty
	// array on re-marshal, and the two spell the same run, so keeping the
	// distinction would break the Marshal∘ParseSpec losslessness contract.
	if len(s.Tenants) == 0 {
		s.Tenants = nil
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Marshal renders the spec as an indented JSON document. Marshal and
// ParseSpec are lossless inverses for any valid spec.
func (s Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Validate checks the spec: version, structural exclusions, warm-up
// coverage, and every derived configuration constraint (the same checks
// Config.Validate applies to a hand-built configuration).
func (s Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("serve: spec version %d not supported (this build reads version %d)", s.Version, SpecVersion)
	}
	if s.Workload != nil && len(s.Tenants) > 0 {
		return errors.New("serve: spec sets both workload and tenants; a run is one or the other")
	}
	if s.Report < -1 {
		return fmt.Errorf("serve: spec report %d invalid (use -1 to disable interval records)", s.Report)
	}
	if s.Warmup < 0 {
		return errors.New("serve: negative warmup")
	}
	if s.Duration != "" {
		if _, err := time.ParseDuration(s.Duration); err != nil {
			return fmt.Errorf("serve: spec duration: %w", err)
		}
	}
	if c := s.Cache; c != nil && c.SizeMB < 0 {
		// Guard the sign extension: uint64(-1 MiB) << 20 is a multi-petabyte
		// cache that passes the geometry checks and OOMs at Open. Specs are
		// remotely-supplied input, so fail here, not at allocation.
		return fmt.Errorf("serve: spec cache size_mb %d negative", c.SizeMB)
	}
	if w := s.Workload; w != nil {
		if w.Custom == nil {
			if _, err := workload.ByName(s.workloadName()); err != nil {
				return err
			}
		} else if _, err := workload.NewCustom(*w.Custom); err != nil {
			return fmt.Errorf("serve: spec workload custom: %w", err)
		}
		if w.Burst < 0 || w.Burst >= 1 {
			return errors.New("serve: spec workload burst outside [0,1)")
		}
	}
	if c := s.Control; c != nil && (c.ShareFloorRateFrac < 0 || c.ShareFloorRateFrac > 1) {
		return errors.New("serve: spec control share_floor_rate_frac outside [0,1]")
	}
	if t := s.Telemetry; t != nil && t.SnapshotEvery < 0 {
		return fmt.Errorf("serve: spec telemetry snapshot_every %d negative", t.SnapshotEvery)
	}
	if sc := s.Scenario; sc != nil {
		if len(s.Tenants) == 0 {
			return errors.New("serve: spec scenario requires tenants")
		}
		names := make([]string, len(s.Tenants))
		byName := make(map[string]TenantSpec, len(s.Tenants))
		for i, ts := range s.Tenants {
			names[i] = ts.Name
			byName[ts.Name] = ts
		}
		if err := sc.Validate(names); err != nil {
			return fmt.Errorf("serve: spec scenario: %w", err)
		}
		for _, ev := range sc.Events {
			// A phase swap and a working-set shift race for the same
			// generator slot: OpenLoop.SetGenerator defers swaps while a
			// ShiftTo segment is live, which would make the swap batch
			// non-deterministic relative to the shift point. Reject the
			// combination outright.
			if ev.Kind == scenario.KindPhase && byName[ev.Tenant].ShiftAfter > 0 {
				return fmt.Errorf("serve: spec scenario: phase event at batch %d targets tenant %q which has shift_after; a tenant uses scenario phases or a working-set shift, not both", ev.Batch, ev.Tenant)
			}
		}
	}
	if c := s.Clients; c != nil {
		if len(s.Tenants) == 0 {
			return errors.New("serve: spec clients requires tenants")
		}
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if sh := s.Shadow; sh != nil {
		if err := sh.Validate(); err != nil {
			return err
		}
	}
	cfg, err := s.config()
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	return ValidateWarmup(s.EffectiveWarmup(), cfg.Transform, s.Tenants)
}

// Config derives the runnable serving configuration, applying the
// documented defaults to every omitted field. The spec is validated first.
func (s Spec) Config() (Config, error) {
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	return s.config()
}

// EffectiveOps returns the request bound with its default applied.
func (s Spec) EffectiveOps() uint64 {
	if s.Ops == 0 {
		return 2_000_000
	}
	return s.Ops
}

// EffectiveWarmup returns the warm-up length with its default applied.
func (s Spec) EffectiveWarmup() int {
	if s.Warmup == 0 {
		return 200_000
	}
	return s.Warmup
}

// workloadName returns the single-stream generator name with its default.
func (s Spec) workloadName() string {
	if s.Workload != nil && s.Workload.Name != "" {
		return s.Workload.Name
	}
	return "dlrm"
}

// trainSeed returns the training seed with its default.
func (s Spec) trainSeed() int64 {
	if s.Train != nil && s.Train.Seed != 0 {
		return s.Train.Seed
	}
	return 1
}

// config builds the Config without validating the result.
func (s Spec) config() (Config, error) {
	cfg := DefaultConfig()
	// The CLI flag defaults differ from DefaultConfig in two places; the
	// spec mirrors the flags, which are the documented migration surface.
	cfg.Train.K = 64
	cfg.Transform.LenAccessShot = 2000
	cfg.Train.Seed = s.trainSeed()
	if s.Shards != 0 {
		cfg.Shards = s.Shards
	}
	if s.Partitions != 0 {
		cfg.Partitions = s.Partitions
	}
	if s.Batch != 0 {
		cfg.BatchSize = s.Batch
	}
	switch {
	case s.Report > 0:
		cfg.ReportEvery = s.Report
	case s.Report == -1:
		cfg.ReportEvery = 0
	}
	if s.Mode != "" {
		mode, err := parseGMMMode(s.Mode)
		if err != nil {
			return Config{}, err
		}
		cfg.Mode = mode
	}
	if s.Scoring != "" {
		kind, err := ParseScoringKind(s.Scoring)
		if err != nil {
			return Config{}, err
		}
		cfg.Scoring = kind
	}
	if c := s.Cache; c != nil {
		if c.SizeMB != 0 {
			cfg.Cache.SizeBytes = uint64(c.SizeMB) << 20
		}
		if c.Ways != 0 {
			cfg.Cache.Ways = c.Ways
		}
		if c.SSD != "" {
			prof, err := parseSSDProfile(c.SSD)
			if err != nil {
				return Config{}, err
			}
			cfg.SSD = prof
		}
		if c.SSDChannels != 0 {
			cfg.SSDChannels = c.SSDChannels
		}
	}
	if t := s.Train; t != nil {
		if t.K != 0 {
			cfg.Train.K = t.K
		}
		if t.MaxIters != 0 {
			cfg.Train.MaxIters = t.MaxIters
		}
		if t.Tol != 0 {
			cfg.Train.Tol = t.Tol
		}
		switch {
		case t.MaxSamples > 0:
			cfg.Train.MaxSamples = t.MaxSamples
		case t.MaxSamples < 0:
			cfg.Train.MaxSamples = 0 // unlimited
		}
		if t.LloydIters != 0 {
			cfg.Train.LloydIters = t.LloydIters
		}
		cfg.Train.DiagonalCov = t.DiagonalCov
		if t.Window != 0 {
			cfg.Transform.LenWindow = t.Window
		}
		if t.Shot != 0 {
			cfg.Transform.LenAccessShot = t.Shot
		}
		if t.ThresholdPct != 0 {
			cfg.ThresholdPct = t.ThresholdPct
		}
	}
	if r := s.Refresh; r != nil {
		if r.Mode != "" {
			mode, err := ParseRefreshMode(r.Mode)
			if err != nil {
				return Config{}, err
			}
			cfg.Refresh.Mode = mode
		}
		if r.Window != 0 {
			cfg.Refresh.WindowSamples = r.Window
		}
		if r.Min != 0 {
			cfg.Refresh.MinSamples = r.Min
		}
		if r.DriftDelta != 0 {
			cfg.Refresh.Drift.Delta = r.DriftDelta
		}
		if r.DriftSustain != 0 {
			cfg.Refresh.Drift.Sustain = r.DriftSustain
		}
		if r.DriftWarmup != 0 {
			cfg.Refresh.Drift.Warmup = r.DriftWarmup
		}
		if r.DriftAlpha != 0 {
			cfg.Refresh.Drift.Alpha = r.DriftAlpha
		}
	}
	if c := s.Control; c != nil {
		if c.Every != 0 {
			cfg.Control.Every = c.Every
		}
		if c.Step != 0 {
			cfg.Control.Step = c.Step
		}
		if c.MinMult != 0 {
			cfg.Control.MinMult = c.MinMult
		}
		if c.MaxMult != 0 {
			cfg.Control.MaxMult = c.MaxMult
		}
		cfg.Control.ShareAdapt = c.ShareAdapt
		if c.ShareQuantum != 0 {
			cfg.Control.ShareQuantum = c.ShareQuantum
		}
		if c.ShareHold != 0 {
			cfg.Control.ShareHold = c.ShareHold
		}
		if c.ShareCooldown != nil {
			cfg.Control.ShareCooldown = *c.ShareCooldown
		}
		if c.ShareFloor != 0 {
			cfg.Control.ShareFloor = c.ShareFloor
		}
		cfg.Control.ShareFloorRateFrac = c.ShareFloorRateFrac
	}
	if d := s.Device; d != nil {
		if d.Timing != "" {
			kind, err := ParseTimingKind(d.Timing)
			if err != nil {
				return Config{}, err
			}
			cfg.Device.Timing = kind
		}
		if d.Outstanding != 0 {
			cfg.Device.Dataflow.Outstanding = d.Outstanding
		}
		if d.Overlap != nil {
			cfg.Device.Dataflow.Overlap = *d.Overlap
		}
		if d.TagCompareCycles != 0 {
			cfg.Device.Dataflow.TagCompareCycles = d.TagCompareCycles
		}
		if d.HitCycles != 0 {
			cfg.Device.Dataflow.HitCycles = d.HitCycles
		}
		if d.SSDReadCycles != 0 {
			cfg.Device.Dataflow.SSDReadCycles = d.SSDReadCycles
		}
		if d.SSDWriteCycles != 0 {
			cfg.Device.Dataflow.SSDWriteCycles = d.SSDWriteCycles
		}
		if d.InferenceCycles != 0 {
			// A bare cycle count: an engine with no pipeline ramp whose K-term
			// drain is exactly the requested latency.
			cfg.Device.Dataflow.GMM = fpga.GMMEngineModel{K: int(d.InferenceCycles)}
		}
		cfg.Device.HostPages = d.HostPages
		if d.HostLatencyNs != 0 {
			cfg.Device.HostLatencyNs = d.HostLatencyNs
		}
		if l := d.Link; l != nil {
			if l.OneWayNs != 0 {
				cfg.Link.OneWayLatency = time.Duration(l.OneWayNs) * time.Nanosecond
			}
			if l.BytesPerNs != 0 {
				cfg.Link.BytesPerNs = l.BytesPerNs
			}
			if l.FlitBytes != 0 {
				cfg.Link.FlitBytes = l.FlitBytes
			}
		}
	}
	cfg.Tenants = s.Tenants
	return cfg, nil
}

// parseGMMMode maps a spec mode string to the policy constant.
func parseGMMMode(s string) (policy.GMMMode, error) {
	for _, m := range []policy.GMMMode{policy.GMMCachingOnly, policy.GMMEvictionOnly, policy.GMMCachingEviction} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown GMM mode %q (valid: gmm-caching-only|gmm-eviction-only|gmm-caching-eviction)", s)
}

// parseSSDProfile maps a spec ssd string to its latency profile.
func parseSSDProfile(s string) (ssd.Profile, error) {
	for _, p := range []ssd.Profile{ssd.TLC(), ssd.SLC(), ssd.QLC()} {
		if p.Name == s {
			return p, nil
		}
	}
	return ssd.Profile{}, fmt.Errorf("serve: unknown ssd profile %q (valid: tlc|slc|qlc)", s)
}

// warmTrace materializes the initial-training trace the spec describes: the
// merged multi-tenant view for tenant runs, the raw generator output for the
// single-stream path (matching what the legacy CLI trained on).
func (s Spec) warmTrace() (trace.Trace, error) {
	if len(s.Tenants) > 0 {
		mux, err := NewTenantMux(s.Tenants)
		if err != nil {
			return nil, err
		}
		return mux.Trace(s.EffectiveWarmup()), nil
	}
	gen, err := s.generator()
	if err != nil {
		return nil, err
	}
	return gen.Generate(s.EffectiveWarmup(), s.streamSeed()), nil
}

// generator resolves the single-stream generator.
func (s Spec) generator() (workload.Generator, error) {
	if s.Workload != nil && s.Workload.Custom != nil {
		return workload.NewCustom(*s.Workload.Custom)
	}
	return workload.ByName(s.workloadName())
}

// streamSeed returns the single-stream seed: the workload's own, falling
// back to the training seed exactly as the legacy -seed flag seeded both.
func (s Spec) streamSeed() int64 {
	if s.Workload != nil && s.Workload.Seed != 0 {
		return s.Workload.Seed
	}
	return s.trainSeed()
}

// openLoopConfig builds the single-stream open-loop configuration.
func (s Spec) openLoopConfig() workload.OpenLoopConfig {
	cfg := workload.OpenLoopConfig{RatePerSec: 1e6, Seed: s.streamSeed()}
	if w := s.Workload; w != nil {
		if w.Rate > 0 {
			cfg.RatePerSec = w.Rate
		} else if w.Rate < 0 {
			cfg.RatePerSec = 0 // saturating
		}
		cfg.BurstAmp = w.Burst
		cfg.BurstPeriod = w.BurstPeriod
		if w.Drift {
			cfg.ShiftAfter = s.EffectiveOps() / 2
			cfg.ShiftOffsetPages = 1 << 30
		}
	}
	return cfg
}

// TrainBundleFromSpec runs initial training as the spec describes it and
// packages the scoring bundle (see TrainBundle).
func TrainBundleFromSpec(s Spec) (*Bundle, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	warm, err := s.warmTrace()
	if err != nil {
		return nil, err
	}
	return TrainBundle(warm, cfg)
}
