package serve_test

import (
	"testing"

	"repro/internal/serve"
	"repro/internal/workload"
)

// benchmarkServe measures end-to-end serving throughput (ingest -> batched
// GMM admission -> latency accounting) at the given shard count. The
// ops/sec ratio across shard counts is the serving subsystem's scaling
// curve; results are bit-identical at any shard count, so the comparison is
// pure wall clock.
func benchmarkServe(b *testing.B, shards int) {
	cfg := testConfig(shards)
	cfg.Partitions = 16
	cfg.Cache.SizeBytes = 2 << 20
	bundle := trainTestBundle(b, cfg)
	const ops = 128 * 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, err := serve.New(cfg, bundle)
		if err != nil {
			b.Fatal(err)
		}
		ol, err := workload.NewOpenLoop(testGen(b), workload.OpenLoopConfig{RatePerSec: 5e6, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		snap, err := svc.Run(serve.NewOpenLoopSource(ol, ops))
		if err != nil {
			b.Fatal(err)
		}
		if snap.Ops != ops {
			b.Fatalf("ops = %d", snap.Ops)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "wall-ops/sec")
}

func BenchmarkServeShards1(b *testing.B) { benchmarkServe(b, 1) }
func BenchmarkServeShards2(b *testing.B) { benchmarkServe(b, 2) }
func BenchmarkServeShards4(b *testing.B) { benchmarkServe(b, 4) }
func BenchmarkServeShards8(b *testing.B) { benchmarkServe(b, 8) }
