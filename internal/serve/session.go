package serve

import (
	"bytes"
	"errors"
	"io"

	"repro/internal/scenario"
	"repro/internal/workload"
)

// Session is the resumable form of a serving run: where Service.Run goes to
// completion or nothing, a Session exposes the run's lifecycle — open, step
// a batch at a time, checkpoint the full mutable state to a writer, resume
// from a reader in a fresh process, close. A resumed session is
// byte-identical to the uninterrupted run: the JSONL metric stream it emits,
// concatenated after the bytes emitted before the checkpoint, equals the
// uninterrupted stream at any shard count — the golden determinism contract
// extended across a pause/resume boundary.
//
//	sess, _ := serve.Open(spec, out)
//	sess.Step(80)                  // serve 80 ingest batches
//	sess.Checkpoint(ckptFile)      // full state: model, cache, budgets, RNG cursors
//	...
//	sess, _ = serve.Resume(ckptFile, out) // possibly another process
//	sess.Run()                     // to completion, finals included
//
// Sessions are not safe for concurrent use; like the Service they wrap, all
// calls must come from one goroutine.
type Session struct {
	spec Spec
	cfg  Config
	svc  *Service
	src  Source
	mux  *workload.Mux      // tenant runs; nil otherwise
	ol   *workload.OpenLoop // single-stream runs; nil otherwise
	buf  []Request

	done   bool
	closed bool

	// ckptPending is set by Checkpoint and cleared by the next Step (or by
	// Detach): a session whose last act was a checkpoint is presumed to be
	// resumed elsewhere, and Close refuses to write final records into a
	// stream the resumed half will continue.
	ckptPending bool

	// Periodic checkpoint hook (CheckpointEvery): every ckptEvery batches,
	// Step captures the full checkpoint document and hands it to ckptFn.
	ckptEvery uint64
	ckptFn    func(doc []byte) error

	// Scenario runtime (tenant runs only): the event-timeline cursor, the
	// tenant name index, per-tenant diurnal profiles, and — under clients
	// mode — the closed-loop latency feedback cursors.
	timeline   *scenario.Timeline
	tenantIdx  map[string]int
	diurnal    []diurnalState
	closedLoop bool
	fbLatSum   []int64
	fbOps      []uint64
}

// Open validates the spec, runs initial training on the warm-up trace it
// describes, and returns a session positioned at batch zero. JSONL metric
// records stream to metrics (nil discards them; the spec's Output field is a
// sink *name* for loaders to resolve, not resolved here).
func Open(spec Spec, metrics io.Writer) (*Session, error) {
	bundle, err := TrainBundleFromSpec(spec)
	if err != nil {
		return nil, err
	}
	return openWithBundle(spec, metrics, bundle)
}

// openWithBundle builds the session around an existing scoring bundle — the
// shared tail of Open (freshly trained) and Resume (restored).
func openWithBundle(spec Spec, metrics io.Writer, b *Bundle) (*Session, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.Metrics = metrics
	if spec.Shadow != nil {
		sb, err := trainShadowBundle(spec, cfg)
		if err != nil {
			return nil, err
		}
		cfg.Shadow = sb
	}
	svc, err := New(cfg, b)
	if err != nil {
		return nil, err
	}
	s := &Session{spec: spec, cfg: cfg, svc: svc, buf: make([]Request, cfg.BatchSize)}
	if len(spec.Tenants) > 0 {
		var mux *workload.Mux
		if spec.Clients != nil {
			mux, err = NewClientMux(spec.Tenants, spec.Clients.EffectiveUsers(), spec.Clients.Alpha)
		} else {
			mux, err = NewTenantMux(spec.Tenants)
		}
		if err != nil {
			return nil, err
		}
		s.mux = mux
		s.src = NewMuxSource(mux, spec.EffectiveOps())
		s.initScenario()
	} else {
		gen, err := spec.generator()
		if err != nil {
			return nil, err
		}
		ol, err := workload.NewOpenLoop(gen, spec.openLoopConfig())
		if err != nil {
			return nil, err
		}
		s.ol = ol
		s.src = NewOpenLoopSource(ol, spec.EffectiveOps())
	}
	return s, nil
}

// Step ingests and serves up to n batches, returning how many were
// processed. Fewer than n (including zero) means the source is exhausted;
// call Close to emit the final records.
func (s *Session) Step(n int) (int, error) {
	if s.closed {
		return 0, errors.New("serve: session is closed")
	}
	// Stepping after a checkpoint means the caller is continuing this
	// session locally, not resuming it elsewhere — Close becomes legal again.
	s.ckptPending = false
	steps := 0
	for steps < n && !s.done {
		if err := s.applyScenario(); err != nil {
			return steps, err
		}
		k := s.src.Next(s.buf)
		if k == 0 {
			s.done = true
			break
		}
		if err := s.svc.processBatch(s.buf[:k]); err != nil {
			return steps, err
		}
		s.feedbackLatency()
		steps++
		if s.ckptEvery > 0 && s.svc.batches%s.ckptEvery == 0 {
			var buf bytes.Buffer
			if err := s.checkpointTo(&buf); err != nil {
				return steps, err
			}
			if err := s.ckptFn(buf.Bytes()); err != nil {
				return steps, err
			}
		}
	}
	return steps, nil
}

// CheckpointEvery arranges for Step to capture a full checkpoint document
// every `every` batches (at the batch boundary, counting total batches
// served — a resumed session keeps the original cadence) and pass it to fn.
// The hook is how a supervisor gets periodic recovery points without driving
// the checkpoint cadence itself; it does not arm the Close-after-Checkpoint
// guard, since the session demonstrably keeps running. every = 0 removes
// the hook. A non-nil error from fn aborts the Step that triggered it.
func (s *Session) CheckpointEvery(every uint64, fn func(doc []byte) error) {
	if every > 0 && fn == nil {
		panic("serve: CheckpointEvery requires a callback")
	}
	s.ckptEvery = every
	s.ckptFn = fn
}

// Done reports whether the source is exhausted.
func (s *Session) Done() bool { return s.done }

// Batches returns how many ingest batches the run has served so far
// (counting those served before a checkpoint, for resumed sessions).
func (s *Session) Batches() uint64 { return s.svc.batches }

// Metrics merges the run's current state into an aggregate snapshot. Safe
// between Steps; it does not write metric records.
func (s *Session) Metrics() *Snapshot { return s.svc.Snapshot() }

// Close finishes the run: it waits for any in-flight asynchronous refit and
// emits the final partition/tenant/summary metric records, exactly as
// Service.Run does at source exhaustion. Idempotent.
//
// Closing a session whose last act was Checkpoint is an error: the
// checkpoint exists to resume the run elsewhere, and final records written
// here would corrupt the stream the resumed half continues. Call Detach to
// tear such a session down, or Step it again to keep serving locally (which
// re-arms Close).
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	if s.ckptPending {
		return errors.New("serve: session was checkpointed to be resumed elsewhere; call Detach instead of Close (or Step to keep serving locally)")
	}
	s.closed = true
	s.svc.refresher.wait()
	return s.svc.metrics.writeFinal(s.svc.Snapshot(), len(s.cfg.Tenants) > 0)
}

// Detach tears the session down without emitting final records: it waits
// for any in-flight asynchronous refit and marks the session closed, writing
// nothing. This is the correct end of life for a session that was
// checkpointed for migration — the resumed copy owns the rest of the metric
// stream, including the finals. Idempotent; safe whether or not a
// checkpoint was taken.
func (s *Session) Detach() {
	if s.closed {
		return
	}
	s.closed = true
	s.ckptPending = false
	s.svc.refresher.wait()
}

// Run steps the session to source exhaustion, closes it, and returns the
// final snapshot — Service.Run's contract on top of the session lifecycle.
func (s *Session) Run() (*Snapshot, error) {
	for !s.done {
		if _, err := s.Step(1); err != nil {
			return nil, err
		}
	}
	if err := s.Close(); err != nil {
		return nil, err
	}
	return s.svc.Snapshot(), nil
}
