package serve

import (
	"errors"
	"io"

	"repro/internal/workload"
)

// Session is the resumable form of a serving run: where Service.Run goes to
// completion or nothing, a Session exposes the run's lifecycle — open, step
// a batch at a time, checkpoint the full mutable state to a writer, resume
// from a reader in a fresh process, close. A resumed session is
// byte-identical to the uninterrupted run: the JSONL metric stream it emits,
// concatenated after the bytes emitted before the checkpoint, equals the
// uninterrupted stream at any shard count — the golden determinism contract
// extended across a pause/resume boundary.
//
//	sess, _ := serve.Open(spec, out)
//	sess.Step(80)                  // serve 80 ingest batches
//	sess.Checkpoint(ckptFile)      // full state: model, cache, budgets, RNG cursors
//	...
//	sess, _ = serve.Resume(ckptFile, out) // possibly another process
//	sess.Run()                     // to completion, finals included
//
// Sessions are not safe for concurrent use; like the Service they wrap, all
// calls must come from one goroutine.
type Session struct {
	spec Spec
	cfg  Config
	svc  *Service
	src  Source
	mux  *workload.Mux      // tenant runs; nil otherwise
	ol   *workload.OpenLoop // single-stream runs; nil otherwise
	buf  []Request

	done   bool
	closed bool
}

// Open validates the spec, runs initial training on the warm-up trace it
// describes, and returns a session positioned at batch zero. JSONL metric
// records stream to metrics (nil discards them; the spec's Output field is a
// sink *name* for loaders to resolve, not resolved here).
func Open(spec Spec, metrics io.Writer) (*Session, error) {
	bundle, err := TrainBundleFromSpec(spec)
	if err != nil {
		return nil, err
	}
	return openWithBundle(spec, metrics, bundle)
}

// openWithBundle builds the session around an existing scoring bundle — the
// shared tail of Open (freshly trained) and Resume (restored).
func openWithBundle(spec Spec, metrics io.Writer, b *Bundle) (*Session, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.Metrics = metrics
	svc, err := New(cfg, b)
	if err != nil {
		return nil, err
	}
	s := &Session{spec: spec, cfg: cfg, svc: svc, buf: make([]Request, cfg.BatchSize)}
	if len(spec.Tenants) > 0 {
		mux, err := NewTenantMux(spec.Tenants)
		if err != nil {
			return nil, err
		}
		s.mux = mux
		s.src = NewMuxSource(mux, spec.EffectiveOps())
	} else {
		gen, err := spec.generator()
		if err != nil {
			return nil, err
		}
		ol, err := workload.NewOpenLoop(gen, spec.openLoopConfig())
		if err != nil {
			return nil, err
		}
		s.ol = ol
		s.src = NewOpenLoopSource(ol, spec.EffectiveOps())
	}
	return s, nil
}

// Step ingests and serves up to n batches, returning how many were
// processed. Fewer than n (including zero) means the source is exhausted;
// call Close to emit the final records.
func (s *Session) Step(n int) (int, error) {
	if s.closed {
		return 0, errors.New("serve: session is closed")
	}
	steps := 0
	for steps < n && !s.done {
		k := s.src.Next(s.buf)
		if k == 0 {
			s.done = true
			break
		}
		if err := s.svc.processBatch(s.buf[:k]); err != nil {
			return steps, err
		}
		steps++
	}
	return steps, nil
}

// Done reports whether the source is exhausted.
func (s *Session) Done() bool { return s.done }

// Batches returns how many ingest batches the run has served so far
// (counting those served before a checkpoint, for resumed sessions).
func (s *Session) Batches() uint64 { return s.svc.batches }

// Metrics merges the run's current state into an aggregate snapshot. Safe
// between Steps; it does not write metric records.
func (s *Session) Metrics() *Snapshot { return s.svc.Snapshot() }

// Close finishes the run: it waits for any in-flight asynchronous refit and
// emits the final partition/tenant/summary metric records, exactly as
// Service.Run does at source exhaustion. Idempotent. A session that was
// checkpointed to be resumed elsewhere should be abandoned, not closed —
// closing writes final records into a stream the resumed half will continue.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.svc.refresher.wait()
	return s.svc.metrics.writeFinal(s.svc.Snapshot(), len(s.cfg.Tenants) > 0)
}

// Run steps the session to source exhaustion, closes it, and returns the
// final snapshot — Service.Run's contract on top of the session lifecycle.
func (s *Session) Run() (*Snapshot, error) {
	for !s.done {
		if _, err := s.Step(1); err != nil {
			return nil, err
		}
	}
	if err := s.Close(); err != nil {
		return nil, err
	}
	return s.svc.Snapshot(), nil
}
