package serve

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/strictjson"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TenantSpec describes one named workload stream of a multi-tenant serving
// run: its traffic shape, its slice of the device HBM cache, and (optionally)
// the QoS target the adaptive controller holds it to. The JSON form is the
// cmd/icgmm-serve -tenants wire format.
type TenantSpec struct {
	// Name labels the tenant in metrics and reports. Required, unique.
	Name string `json:"name"`
	// Workload names a registry generator (see workload.ByName); Custom,
	// when set, takes precedence and composes a bespoke working set.
	Workload string                 `json:"workload,omitempty"`
	Custom   *workload.CustomConfig `json:"custom,omitempty"`
	// Seed drives the tenant's private request stream.
	Seed int64 `json:"seed"`
	// RatePerSec is the tenant's open-loop arrival rate (must be > 0: the
	// mux merges streams by arrival time).
	RatePerSec float64 `json:"rate"`
	// BurstAmp/BurstPeriod sinusoidally modulate the rate (see
	// workload.OpenLoopConfig).
	BurstAmp    float64 `json:"burst,omitempty"`
	BurstPeriod int     `json:"burst_period,omitempty"`
	// OffsetPages relocates the tenant's working set so tenants occupy
	// disjoint address regions.
	OffsetPages uint64 `json:"offset_pages,omitempty"`
	// ShiftAfter/ShiftOffsetPages give the tenant a working-set drift (see
	// workload.OpenLoopConfig), exercising refresh under multi-tenancy.
	ShiftAfter       uint64 `json:"shift_after,omitempty"`
	ShiftOffsetPages uint64 `json:"shift_offset_pages,omitempty"`
	// ShiftCustom, when set, swaps the tenant's stream to this working set
	// at the shift point (workload.OpenLoopConfig.ShiftTo), so a drift can
	// also grow or reshape the working set — the capacity-starvation
	// scenario the elastic-share controller reallocates HBM for. Requires
	// ShiftAfter > 0.
	ShiftCustom *workload.CustomConfig `json:"shift_custom,omitempty"`
	// Share is the tenant's fraction of every partition's HBM cache blocks,
	// enforced at admission: once the tenant holds floor(Share*blocks)
	// blocks of a partition it can only replace its own blocks, never grow.
	// Shares must each be in (0, 1] and sum to at most 1.
	Share float64 `json:"share"`
	// QoS, when set, puts the tenant under the adaptive threshold
	// controller.
	QoS *QoSSpec `json:"qos,omitempty"`
}

// QoSSpec is one tenant's service-level objective. Metric selects what the
// controller measures over each control interval:
//
//   - "hit_ratio": Target is a floor on the tenant's interval hit ratio.
//   - "p99_ns":    Target is a ceiling on the tenant's interval p99 sojourn
//     time in nanoseconds.
//   - "mean_ns":   Target is a ceiling on the interval mean sojourn time.
//   - "queue_depth": Target is a ceiling on the mean outstanding-window
//     depth the tenant's requests observe at arrival — the congestion
//     signal. Only meaningful (and only accepted) under "timing":
//     "dataflow", where an outstanding window exists.
//
// Band is the relative hold region around Target (default 0.10): inside it
// the controller leaves the tenant's admission threshold alone, beyond it on
// the violating side the threshold loosens (admit more), and beyond it on the
// comfortable side the threshold tightens (admit less, freeing device
// bandwidth for tenants that need it).
type QoSSpec struct {
	Metric string  `json:"metric"`
	Target float64 `json:"target"`
	Band   float64 `json:"band,omitempty"`
}

// QoS metric names.
const (
	QoSHitRatio   = "hit_ratio"
	QoSP99Ns      = "p99_ns"
	QoSMeanNs     = "mean_ns"
	QoSQueueDepth = "queue_depth"
)

// Validate checks the objective.
func (q QoSSpec) Validate() error {
	switch q.Metric {
	case QoSHitRatio:
		if q.Target <= 0 || q.Target > 1 {
			return fmt.Errorf("serve: hit_ratio QoS target %v outside (0,1]", q.Target)
		}
	case QoSP99Ns, QoSMeanNs:
		if q.Target <= 0 {
			return fmt.Errorf("serve: latency QoS target %v not positive", q.Target)
		}
	case QoSQueueDepth:
		if q.Target <= 0 {
			return fmt.Errorf("serve: queue_depth QoS target %v not positive", q.Target)
		}
	default:
		return fmt.Errorf("serve: unknown QoS metric %q (valid: hit_ratio|p99_ns|mean_ns|queue_depth)", q.Metric)
	}
	if q.Band < 0 || q.Band >= 1 {
		return fmt.Errorf("serve: QoS band %v outside [0,1)", q.Band)
	}
	return nil
}

// band returns the hold-region width with the default applied.
func (q QoSSpec) band() float64 {
	if q.Band > 0 {
		return q.Band
	}
	return 0.10
}

// higherIsBetter reports the metric's direction: hit ratio is a floor,
// latency metrics are ceilings.
func (q QoSSpec) higherIsBetter() bool { return q.Metric == QoSHitRatio }

// classify places a measured value relative to the target band: violated
// (beyond the band on the bad side), comfortable (beyond it on the good
// side), or holding.
func (q QoSSpec) classify(v float64) (violated, comfortable bool) {
	b := q.band()
	if q.higherIsBetter() {
		return v < q.Target*(1-b), v > q.Target*(1+b)
	}
	return v > q.Target*(1+b), v < q.Target*(1-b)
}

// headroom returns how far v sits on the good side of the target, as a
// signed fraction of the target: positive means better than the target,
// negative means violating it. The share lever ranks donors by headroom and
// receivers by its negation, so both comparisons are target-relative and
// commensurable across hit-ratio and latency objectives.
func (q QoSSpec) headroom(v float64) float64 {
	if q.higherIsBetter() {
		return (v - q.Target) / q.Target
	}
	return (q.Target - v) / q.Target
}

// improved reports whether v moved toward the target relative to prev by
// more than 2% of the target — the controller's progress test for keeping
// its hill-climb direction.
func (q QoSSpec) improved(v, prev float64) bool {
	eps := 0.02 * q.Target
	if q.higherIsBetter() {
		return v > prev+eps
	}
	return v < prev-eps
}

// ParseTenantSpecs decodes the -tenants JSON wire format (an array of
// TenantSpec objects) and validates it. Decoding is strict: unknown fields
// anywhere in the document are rejected with a field-path error (e.g.
// "tenants[1].sahre: unknown field") so typos fail loudly — and point at the
// offending key — instead of silently configuring defaults.
func ParseTenantSpecs(data []byte) ([]TenantSpec, error) {
	var specs []TenantSpec
	if err := strictjson.Unmarshal(data, &specs, "tenants"); err != nil {
		return nil, fmt.Errorf("serve: parsing tenant spec: %w", err)
	}
	if err := ValidateTenants(specs); err != nil {
		return nil, err
	}
	return specs, nil
}

// ValidateTenants checks a tenant list: unique non-empty names, resolvable
// workloads, positive rates, and capacity shares that never over-commit the
// cache.
func ValidateTenants(specs []TenantSpec) error {
	if len(specs) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(specs))
	var shareSum float64
	for i, ts := range specs {
		if ts.Name == "" {
			return fmt.Errorf("serve: tenant %d has no name", i)
		}
		if seen[ts.Name] {
			return fmt.Errorf("serve: duplicate tenant name %q", ts.Name)
		}
		seen[ts.Name] = true
		if _, err := ts.generator(); err != nil {
			return fmt.Errorf("serve: tenant %q: %w", ts.Name, err)
		}
		if ts.RatePerSec <= 0 {
			return fmt.Errorf("serve: tenant %q has non-positive rate", ts.Name)
		}
		if ts.BurstAmp < 0 || ts.BurstAmp >= 1 {
			return fmt.Errorf("serve: tenant %q burst amplitude outside [0,1)", ts.Name)
		}
		if ts.Share <= 0 || ts.Share > 1 {
			return fmt.Errorf("serve: tenant %q share %v outside (0,1]", ts.Name, ts.Share)
		}
		if ts.ShiftCustom != nil {
			if ts.ShiftAfter == 0 {
				return fmt.Errorf("serve: tenant %q has shift_custom without shift_after", ts.Name)
			}
			if _, err := workload.NewCustom(*ts.ShiftCustom); err != nil {
				return fmt.Errorf("serve: tenant %q shift_custom: %w", ts.Name, err)
			}
		}
		shareSum += ts.Share
		if ts.QoS != nil {
			if err := ts.QoS.Validate(); err != nil {
				return fmt.Errorf("serve: tenant %q: %w", ts.Name, err)
			}
		}
	}
	if shareSum > 1+1e-9 {
		return fmt.Errorf("serve: tenant shares sum to %.4f > 1 (would over-commit the HBM cache)", shareSum)
	}
	return nil
}

// generator resolves the tenant's workload generator.
func (ts TenantSpec) generator() (workload.Generator, error) {
	if ts.Custom != nil {
		return workload.NewCustom(*ts.Custom)
	}
	if ts.Workload == "" {
		return nil, errors.New("no workload or custom spec")
	}
	return workload.ByName(ts.Workload)
}

// openLoop builds the tenant's private open-loop stream.
func (ts TenantSpec) openLoop() (*workload.OpenLoop, error) {
	gen, err := ts.generator()
	if err != nil {
		return nil, err
	}
	var shiftTo workload.Generator
	if ts.ShiftCustom != nil {
		if shiftTo, err = workload.NewCustom(*ts.ShiftCustom); err != nil {
			return nil, fmt.Errorf("shift_custom: %w", err)
		}
	}
	return workload.NewOpenLoop(gen, workload.OpenLoopConfig{
		RatePerSec:       ts.RatePerSec,
		BurstAmp:         ts.BurstAmp,
		BurstPeriod:      ts.BurstPeriod,
		Seed:             ts.Seed,
		ShiftAfter:       ts.ShiftAfter,
		ShiftOffsetPages: ts.ShiftOffsetPages,
		ShiftTo:          shiftTo,
	})
}

// NewTenantMux builds the deterministic multi-tenant request mux for the
// specs: one open-loop stream per tenant, merged by arrival time. Stream
// index i corresponds to specs[i], and Request.Tenant carries that index
// through the pipeline. Build one mux for warm-up and a fresh one for
// serving: a mux is consumed as it is read.
func NewTenantMux(specs []TenantSpec) (*workload.Mux, error) {
	if err := ValidateTenants(specs); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, errors.New("serve: no tenants")
	}
	streams := make([]workload.MuxStream, len(specs))
	for i, ts := range specs {
		ol, err := ts.openLoop()
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %q: %w", ts.Name, err)
		}
		streams[i] = workload.MuxStream{Stream: ol, OffsetPages: ts.OffsetPages}
	}
	return workload.NewMux(streams)
}

// closedLoop builds the tenant's private closed-loop stream: users
// simulated clients targeting the tenant's configured rate at zero latency.
// Burst modulation does not apply — a closed loop's arrival clock is its
// users' think/completion cycle, not a modulated Poisson-like schedule — so
// BurstAmp/BurstPeriod are deliberately not forwarded.
func (ts TenantSpec) closedLoop(users int, alpha float64) (*workload.ClosedLoop, error) {
	gen, err := ts.generator()
	if err != nil {
		return nil, err
	}
	var shiftTo workload.Generator
	if ts.ShiftCustom != nil {
		if shiftTo, err = workload.NewCustom(*ts.ShiftCustom); err != nil {
			return nil, fmt.Errorf("shift_custom: %w", err)
		}
	}
	return workload.NewClosedLoop(gen, workload.OpenLoopConfig{
		Seed:             ts.Seed,
		ShiftAfter:       ts.ShiftAfter,
		ShiftOffsetPages: ts.ShiftOffsetPages,
		ShiftTo:          shiftTo,
	}, workload.ClosedLoopConfig{
		Users:      users,
		RatePerSec: ts.RatePerSec,
		Alpha:      alpha,
	})
}

// NewClientMux builds the closed-loop variant of NewTenantMux: every tenant
// becomes a population of users simulated clients whose next arrival waits
// on the completion of the previous request (as fed back through
// Mux.ObserveLatency) plus a think time targeting the tenant's configured
// rate. Stream indices and page offsets match NewTenantMux exactly.
func NewClientMux(specs []TenantSpec, users int, alpha float64) (*workload.Mux, error) {
	if err := ValidateTenants(specs); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, errors.New("serve: no tenants")
	}
	streams := make([]workload.MuxStream, len(specs))
	for i, ts := range specs {
		cl, err := ts.closedLoop(users, alpha)
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %q: %w", ts.Name, err)
		}
		streams[i] = workload.MuxStream{Stream: cl, OffsetPages: ts.OffsetPages}
	}
	return workload.NewMux(streams)
}

// ValidateWarmup checks that a warm-up trace of warmupLen requests lets the
// initial GMM see every Algorithm 1 timestamp — globally and for every
// tenant. After trimming (TransformConfig.WarmupFrac/TailFrac), the retained
// trace must cover one full access shot (LenWindow*LenAccessShot requests);
// otherwise serving reaches timestamp ranges the model never trained on,
// scores them as out-of-distribution and bypasses structurally hot pages.
// Per tenant, the tenant's arrival-rate share of one access shot must still
// average at least one sample per timestamp value (share*LenWindow >= 1):
// below that the tenant's (page, time) plane has unseen stripes even when
// the global trace is long enough. A nil spec list means a single tenant
// owning the whole stream.
func ValidateWarmup(warmupLen int, tcfg trace.TransformConfig, specs []TenantSpec) error {
	tcfg = tcfg.Sanitized()
	lo := int(float64(warmupLen) * tcfg.WarmupFrac)
	hi := warmupLen - int(float64(warmupLen)*tcfg.TailFrac)
	trimmed := hi - lo
	span := tcfg.LenWindow * tcfg.LenAccessShot
	if trimmed < span {
		return fmt.Errorf(
			"serve: trimmed warm-up (%d of %d requests) does not cover one access shot (len_window %d * len_access_shot %d = %d requests); the model would see unseen timestamp ranges — raise -warmup or lower -shot",
			trimmed, warmupLen, tcfg.LenWindow, tcfg.LenAccessShot, span)
	}
	if len(specs) == 0 {
		return nil
	}
	var total float64
	for _, ts := range specs {
		total += ts.RatePerSec
	}
	if total <= 0 {
		return errors.New("serve: tenant rates sum to zero")
	}
	for _, ts := range specs {
		share := ts.RatePerSec / total
		perShot := share * float64(span)
		if perShot < float64(tcfg.LenAccessShot) {
			return fmt.Errorf(
				"serve: tenant %q contributes ~%.0f warm-up samples per access shot, fewer than one per timestamp value (len_access_shot %d); its pages would be scored at timestamps the model never saw for them — raise its rate share above 1/len_window (%.4f) or shrink len_window",
				ts.Name, perShot, tcfg.LenAccessShot, 1/float64(tcfg.LenWindow))
		}
	}
	return nil
}

// tenantBudgets derives each tenant's per-partition block budget from its
// share: floor(share*blocks), so the sum never exceeds the partition.
func tenantBudgets(specs []TenantSpec, pc cache.Config) ([]int, error) {
	blocks := int(pc.NumBlocks())
	if len(specs) == 0 {
		return []int{blocks}, nil
	}
	budgets := make([]int, len(specs))
	for i, ts := range specs {
		budgets[i] = int(ts.Share * float64(blocks))
		if budgets[i] < 1 {
			return nil, fmt.Errorf(
				"serve: tenant %q share %.3f yields zero blocks of the %d-block partition cache; grow the cache or the share",
				ts.Name, ts.Share, blocks)
		}
	}
	return budgets, nil
}

// tenantGMM is the partition policy engine of the tenant layer: GMM-scored
// admission and eviction (scores always arrive via Begin from the batched
// inference pass) with per-tenant admission thresholds and per-tenant
// capacity budgets. Budgets are hard ceilings: an admission never grows a
// tenant past its budget, so shares can never over-commit the partition. A
// tenant at its budget admits only by keeping its footprint exactly flat,
// trading one of its own blocks for the new page (see Admit's swap-up
// rule), so a tenant can never be permanently locked out of a hot set its
// budget happens to have no blocks in. Budgets themselves move at batch
// boundaries via shiftBudget, the elastic-share controller's lever.
type tenantGMM struct {
	mode  policy.GMMMode
	nSets int
	ways  int
	cache *cache.Cache // bound after construction; used for block release

	scores  [][]float64 // per-way GMM score, the smart-eviction key
	lastUse [][]uint64  // per-way LRU stamp, the caching-only fallback key
	owner   [][]int16   // per-way owning tenant; -1 while invalid

	thresholds []float64 // per-tenant admission cutoff
	budget     []int     // per-tenant block budget
	resident   []int     // per-tenant valid block count

	curTenant      int
	curScore       float64
	restrictVictim bool // the pending Victim call must stay within curTenant
}

// newTenantGMM builds the policy for nTenants tenants with the given block
// budgets and a uniform initial threshold. The budget slice is copied:
// budgets are per-partition state (the share controller resizes them
// independently-but-identically across partitions), so policies must never
// alias a caller's slice.
func newTenantGMM(mode policy.GMMMode, budgets []int, threshold float64) *tenantGMM {
	n := len(budgets)
	p := &tenantGMM{
		mode:       mode,
		thresholds: make([]float64, n),
		budget:     append([]int(nil), budgets...),
		resident:   make([]int, n),
	}
	for i := range p.thresholds {
		p.thresholds[i] = threshold
	}
	return p
}

// bindCache hands the policy the cache it is attached to. The tenant layer
// needs the back-reference for policy-initiated evictions (cross-set release,
// share-shrink overflow); it is set once, right after cache.New, before any
// traffic.
func (p *tenantGMM) bindCache(c *cache.Cache) { p.cache = c }

// Begin stages the tenant and batched GMM score of the next access. The
// serving pipeline calls it immediately before Cache.Access, so the policy
// never runs its own (shard-local, hence wrong) Algorithm 1 clock.
func (p *tenantGMM) Begin(tenant int, score float64) {
	p.curTenant = tenant
	p.curScore = score
}

// SetThresholds replaces every tenant's admission cutoff. Called only at
// batch boundaries (refresh install, controller step) when no shard is
// draining the partition.
func (p *tenantGMM) SetThresholds(ths []float64) { copy(p.thresholds, ths) }

// Resident returns tenant t's valid block count in this partition.
func (p *tenantGMM) Resident(t int) int { return p.resident[t] }

// Name implements cache.Policy.
func (p *tenantGMM) Name() string { return "tenant-" + p.mode.String() }

// Attach implements cache.Policy.
func (p *tenantGMM) Attach(numSets, ways int) {
	p.nSets, p.ways = numSets, ways
	p.scores = make([][]float64, numSets)
	p.lastUse = make([][]uint64, numSets)
	p.owner = make([][]int16, numSets)
	for i := 0; i < numSets; i++ {
		p.scores[i] = make([]float64, ways)
		p.lastUse[i] = make([]uint64, ways)
		p.owner[i] = make([]int16, ways)
		for w := range p.owner[i] {
			p.owner[i][w] = -1
		}
	}
}

// OnAccess implements cache.Policy. Timestamps derive from the global
// arrival index upstream, so there is no per-access clock to advance here.
func (p *tenantGMM) OnAccess(cache.Request) {}

// OnHit implements cache.Policy.
func (p *tenantGMM) OnHit(setIdx, way int, req cache.Request) {
	p.lastUse[setIdx][way] = req.Seq
}

// Admit implements cache.Policy: the staged score must clear the tenant's
// threshold, and the tenant's capacity budget must allow the insert. At
// budget the footprint must stay exactly flat, and admission trades against
// one of the tenant's own blocks under a swap-up rule: the page must beat
// the block it displaces — its own in-set minimum when the full target set
// holds its blocks, its globally-coldest block otherwise (released first,
// cross-set accounting). Hot pages in sets the tenant has no blocks in are
// therefore admittable instead of permanently bypassed. Only a tenant with
// no resident blocks at all (a zero-budget corner) still bypasses at
// budget.
func (p *tenantGMM) Admit(req cache.Request) bool {
	t := p.curTenant
	p.restrictVictim = false
	if p.mode != policy.GMMEvictionOnly && p.curScore < p.thresholds[t] {
		return false
	}
	if p.resident[t] < p.budget[t] {
		return true
	}
	si := int(req.Page % uint64(p.nSets))
	full, ownMin, ownMinWay := true, 0.0, -1
	for w := 0; w < p.ways; w++ {
		switch {
		case p.owner[si][w] == -1:
			full = false
		case int(p.owner[si][w]) == t:
			if ownMinWay == -1 || p.scores[si][w] < ownMin {
				ownMin, ownMinWay = p.scores[si][w], w
			}
		}
	}
	// Swap-up rule: the bar for an at-budget admission is the block it
	// displaces (or releases) — in scored modes the staged score must beat
	// that block's eviction key, or any barely-above-threshold one-hit page
	// would churn the resident working set. The bar therefore legitimately
	// depends on WHERE the page lands: entering a full set where the tenant
	// holds blocks costs its own in-set minimum; entering anywhere else
	// costs its globally-coldest block. (A single global bar was tried and
	// reverted: it makes displacing *other* tenants' set-minimum blocks the
	// common case, and the resulting cross-tenant eviction cascade collapses
	// everyone's hit ratio.) In caching-only mode recency is the key and a
	// fresh insert is always the most recent.
	if full && ownMinWay >= 0 {
		// In-set self-replacement: replace the tenant's own lowest-valued
		// block here. The restricted Victim reports the eviction through
		// AccessResult, so its write-back is charged to the device path.
		if p.mode != policy.GMMCachingOnly && p.curScore <= ownMin {
			return false
		}
		p.restrictVictim = true
		return true
	}
	// Cross-set accounting: release the tenant's coldest block — wherever
	// it lives — then let the insert land in a free way (or displace the
	// target set's lowest-scored block, shrinking that tenant below its
	// ceiling; ceilings are caps, not guarantees). The release keeps this
	// tenant's footprint flat, so the no-overcommit invariant holds through
	// the whole access.
	if p.cache == nil {
		return false // unbound policy (tests): fall back to deny-at-Admit
	}
	rs, rw := p.coldestOwned(t)
	if rs < 0 {
		return false // no resident block to trade (zero-budget corner)
	}
	if p.mode != policy.GMMCachingOnly && p.curScore <= p.scores[rs][rw] {
		return false
	}
	p.cache.EvictAt(rs, rw)
	return true
}

// coldestOwned returns the (set, way) of tenant t's lowest-valued resident
// block — GMM score in scored modes, LRU stamp in caching-only mode — or
// (-1, -1) when the tenant holds nothing. Ties break to the lowest set, then
// the lowest way, keeping the scan deterministic. The scan is O(sets*ways)
// over the partition (~1k blocks at the paper's geometry) and runs only on
// at-budget misses that cleared the threshold without an in-set
// self-replacement — an accepted simulator cost; a per-tenant heap would
// remove it if admission ever dominates profiles.
func (p *tenantGMM) coldestOwned(t int) (int, int) {
	bs, bw := -1, -1
	for si := range p.owner {
		for w, o := range p.owner[si] {
			if int(o) != t {
				continue
			}
			switch {
			case bs == -1:
				bs, bw = si, w
			case p.mode == policy.GMMCachingOnly:
				if p.lastUse[si][w] < p.lastUse[bs][bw] {
					bs, bw = si, w
				}
			default:
				if p.scores[si][w] < p.scores[bs][bw] {
					bs, bw = si, w
				}
			}
		}
	}
	return bs, bw
}

// shiftBudget moves q blocks of capacity from tenant donor to tenant recv and
// immediately evicts the donor's overflow (coldest blocks first), so the
// no-overcommit invariant is already true again when the call returns. The
// elastic-share controller calls it at batch boundaries only — never while a
// shard is draining the partition. It returns how many blocks were evicted.
func (p *tenantGMM) shiftBudget(donor, recv, q int) int {
	p.budget[donor] -= q
	p.budget[recv] += q
	return p.evictOverflow(donor)
}

// evictOverflow evicts tenant t's coldest blocks until it fits its budget,
// returning the number of evictions.
func (p *tenantGMM) evictOverflow(t int) int {
	if p.cache == nil {
		return 0 // unbound policy (tests): nothing to evict from
	}
	n := 0
	for p.resident[t] > p.budget[t] {
		si, w := p.coldestOwned(t)
		if si < 0 {
			break // residency counter drifted; checkShares will report it
		}
		p.cache.EvictAt(si, w)
		n++
	}
	return n
}

// Budget returns tenant t's current block budget in this partition.
func (p *tenantGMM) Budget(t int) int { return p.budget[t] }

// Victim implements cache.Policy: the lowest-scored way (or least recently
// used in caching-only mode), restricted to the current tenant's own blocks
// when its budget forced a self-replacement.
func (p *tenantGMM) Victim(setIdx int, blocks []cache.BlockView) int {
	restrict := p.restrictVictim
	p.restrictVictim = false
	best := -1
	for w := range blocks {
		if restrict && int(p.owner[setIdx][w]) != p.curTenant {
			continue
		}
		if best == -1 {
			best = w
			continue
		}
		if p.mode == policy.GMMCachingOnly {
			if p.lastUse[setIdx][w] < p.lastUse[setIdx][best] {
				best = w
			}
		} else if p.scores[setIdx][w] < p.scores[setIdx][best] {
			best = w
		}
	}
	// best == -1 means the restricted scan found none of the tenant's blocks
	// — Admit and the owner map disagree. Veto the insertion (the cache
	// counts a bypass) rather than evict a foreign block and grow the tenant
	// past its budget.
	return best
}

// OnEvict implements cache.Policy.
func (p *tenantGMM) OnEvict(setIdx, way int, _ uint64) {
	if o := p.owner[setIdx][way]; o >= 0 {
		p.resident[o]--
		p.owner[setIdx][way] = -1
	}
}

// OnInsert implements cache.Policy: the staged score is stored alongside the
// tag and the block is charged to the inserting tenant.
func (p *tenantGMM) OnInsert(setIdx, way int, req cache.Request) {
	p.scores[setIdx][way] = p.curScore
	p.lastUse[setIdx][way] = req.Seq
	p.owner[setIdx][way] = int16(p.curTenant)
	p.resident[p.curTenant]++
}

// setScore replaces the stored eviction score of one way. Used by the
// refresh path to rebase resident blocks onto a new model's density scale.
func (p *tenantGMM) setScore(setIdx, way int, score float64) {
	p.scores[setIdx][way] = score
}

// checkShares verifies the policy's capacity invariants against the ground
// truth owner map: per-tenant residency counters match, no tenant exceeds
// its budget, and the total never exceeds the partition. The property tests
// call it after random traffic; it is not on the hot path.
func (p *tenantGMM) checkShares() error {
	counts := make([]int, len(p.budget))
	total := 0
	for si := range p.owner {
		for _, o := range p.owner[si] {
			if o >= 0 {
				counts[o]++
				total++
			}
		}
	}
	for t, c := range counts {
		if c != p.resident[t] {
			return fmt.Errorf("tenant %d residency counter %d != owner-map count %d", t, p.resident[t], c)
		}
		if c > p.budget[t] {
			return fmt.Errorf("tenant %d holds %d blocks over budget %d", t, c, p.budget[t])
		}
	}
	if capacity := p.nSets * p.ways; total > capacity {
		return fmt.Errorf("total residency %d exceeds partition capacity %d", total, capacity)
	}
	return nil
}

// tenantPartStats is one (partition, tenant) accounting cell. Touched only
// by the shard draining the partition, merged in partition order at
// reporting boundaries — the same determinism decomposition as the partition
// itself.
type tenantPartStats struct {
	ops           uint64
	hits          uint64
	bytesAdmitted uint64
	// latSumNs is the cumulative sojourn time of every request the tenant
	// completed in this partition — the numerator of the tenant's mean
	// latency, kept as an exact integer sum so the shadow bake-off's
	// mean-latency deltas are reproducible (the histogram's mean would do,
	// but an explicit sum keeps the accounting unambiguous).
	latSumNs int64
	hist     *stats.Histogram // sojourn time
	cxlHist  *stats.Histogram // link round trip
	hbmHist  *stats.Histogram // device time of hits
	ssdHist  *stats.Histogram // device time of misses

	// Control-interval state, reset by the controller after each step.
	ctrlOps  uint64
	ctrlHits uint64
	// ctrlQueueSum sums the outstanding-window depth the tenant's requests
	// observed at arrival (dataflow timing; always zero under flat), the
	// numerator of the queue_depth QoS metric.
	ctrlQueueSum uint64
	ctrlHist     *stats.Histogram // sojourn, only allocated under a controller
}

func newTenantPartStats(withCtrlHist bool) tenantPartStats {
	ts := tenantPartStats{
		hist:    stats.DefaultLatencyHistogram(),
		cxlHist: stats.DefaultLatencyHistogram(),
		hbmHist: stats.DefaultLatencyHistogram(),
		ssdHist: stats.DefaultLatencyHistogram(),
	}
	if withCtrlHist {
		ts.ctrlHist = stats.DefaultLatencyHistogram()
	}
	return ts
}
