package serve

import (
	"repro/internal/trace"
	"repro/internal/workload"
)

// Source feeds requests to the service in batches. Next fills dst and
// returns how many requests it wrote; 0 ends the run. Sources are pulled
// from the ingest loop only, so they need not be safe for concurrent use.
type Source interface {
	Next(dst []Request) int
}

// openLoopSource adapts a workload.OpenLoop stream, bounding it to a total
// operation count.
type openLoopSource struct {
	ol        *workload.OpenLoop
	remaining uint64
	buf       []trace.Record
}

// NewOpenLoopSource serves ops requests from an open-loop workload stream.
func NewOpenLoopSource(ol *workload.OpenLoop, ops uint64) Source {
	return &openLoopSource{ol: ol, remaining: ops}
}

func (s *openLoopSource) Next(dst []Request) int {
	n := len(dst)
	if uint64(n) > s.remaining {
		n = int(s.remaining)
	}
	if n == 0 {
		return 0
	}
	if cap(s.buf) < n {
		s.buf = make([]trace.Record, n)
	}
	recs := s.buf[:n]
	s.ol.Next(recs)
	for i, r := range recs {
		dst[i] = Request{
			Page:      r.Page(),
			Write:     r.Op == trace.Write,
			ArrivalNs: int64(r.Time),
		}
	}
	s.remaining -= uint64(n)
	return n
}

// muxSource adapts a workload.Mux (the multi-tenant merged stream) to the
// service, carrying each record's stream index through as Request.Tenant and
// bounding the run to a total operation count across all tenants.
type muxSource struct {
	mux       *workload.Mux
	remaining uint64
	buf       []workload.MuxRecord
}

// NewMuxSource serves ops merged requests from a multi-tenant mux (see
// NewTenantMux). Stream i of the mux must correspond to Config.Tenants[i].
func NewMuxSource(m *workload.Mux, ops uint64) Source {
	return &muxSource{mux: m, remaining: ops}
}

func (s *muxSource) Next(dst []Request) int {
	n := len(dst)
	if uint64(n) > s.remaining {
		n = int(s.remaining)
	}
	if n == 0 {
		return 0
	}
	if cap(s.buf) < n {
		s.buf = make([]workload.MuxRecord, n)
	}
	recs := s.buf[:n]
	s.mux.Next(recs)
	for i, r := range recs {
		dst[i] = Request{
			Page:      r.Rec.Page(),
			Write:     r.Rec.Op == trace.Write,
			ArrivalNs: int64(r.Rec.Time),
			Tenant:    r.Stream,
		}
	}
	s.remaining -= uint64(n)
	return n
}

// traceSource replays a fixed trace once, with arrivals evenly spaced at the
// given rate (or all at time zero for rate <= 0, a saturating replay).
type traceSource struct {
	tr    trace.Trace
	pos   int
	gapNs float64
	clock float64
}

// NewTraceSource serves a trace as an open-loop stream at ratePerSec.
func NewTraceSource(tr trace.Trace, ratePerSec float64) Source {
	gap := 0.0
	if ratePerSec > 0 {
		gap = 1e9 / ratePerSec
	}
	return &traceSource{tr: tr, gapNs: gap}
}

func (s *traceSource) Next(dst []Request) int {
	n := 0
	for n < len(dst) && s.pos < len(s.tr) {
		r := s.tr[s.pos]
		dst[n] = Request{
			Page:      r.Page(),
			Write:     r.Op == trace.Write,
			ArrivalNs: int64(s.clock),
		}
		s.clock += s.gapNs
		s.pos++
		n++
	}
	return n
}
