package serve

import "fmt"

// ScoringKind selects the admission scorer datapath: the float64 model, or
// the Q16.16 fixed-point weight-buffer emulation the paper's PE pipeline
// scores through. Quantized scoring trades a bounded density error for a
// cheaper datapath; the admission threshold is always calibrated against the
// scorer actually serving, so the two kinds are self-consistent but their
// metric streams are not byte-comparable to each other.
type ScoringKind int

const (
	// ScoringFloat64 scores through the trained float model (the default —
	// and the path the determinism goldens pin).
	ScoringFloat64 ScoringKind = iota
	// ScoringQ16 scores through gmm.QuantizedModel, the Q16.16 form of the
	// same model. Training and refresh still fit in float; each fitted model
	// is quantized at install time and refused if any constant saturates.
	ScoringQ16
)

// String names the kind as the spec's "scoring" field spells it.
func (k ScoringKind) String() string {
	if k == ScoringQ16 {
		return "q16"
	}
	return "float64"
}

// ParseScoringKind maps a spec "scoring" value to its kind.
func ParseScoringKind(s string) (ScoringKind, error) {
	switch s {
	case "float64":
		return ScoringFloat64, nil
	case "q16":
		return ScoringQ16, nil
	}
	return ScoringFloat64, fmt.Errorf("serve: unknown scoring kind %q (valid: float64|q16)", s)
}
