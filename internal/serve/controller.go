package serve

import (
	"errors"

	"repro/internal/stats"
)

// ControlConfig parameterizes the adaptive per-tenant threshold controller.
// Every Every batches the controller measures each QoS-bearing tenant's
// metric over the elapsed control interval and nudges that tenant's
// admission threshold with a deterministic multiplicative hill-climb:
//
//   - QoS violated beyond its band: step the threshold in the tenant's
//     current search direction (loosening first — admit more). If the
//     previous violated step failed to improve the metric, reverse the
//     direction before stepping. The reversal is what finds QoS optima on
//     non-monotone response curves: a tenant whose working set exceeds its
//     capacity share loses hits both when the threshold is too tight (hot
//     pages bypassed) and when it is too loose (admit-everything thrashes
//     its share), and only an intermediate threshold — reachable from
//     either side — holds the hot head stable.
//   - comfortably inside the target: tighten (admit less), freeing device
//     bandwidth for tenants that need it, and arm the next violated step to
//     loosen (the overshoot correction).
//   - inside the band: hold.
//
// The tenant's threshold is base*mult, where base is the active bundle's
// calibrated threshold and mult is the controller's accumulated factor — so
// a model refresh rebases every tenant onto the new calibration while
// preserving the controller's learned offset. The step rule reads only
// virtual-time interval metrics, which in sync-refresh mode are themselves
// bit-identical at any shard count, so controlled runs keep the serving
// subsystem's determinism contract.
//
// # Elastic capacity shares (the second lever)
//
// With ShareAdapt set, the controller also reallocates HBM capacity between
// tenants: a violated tenant whose threshold lever has *saturated* — its
// multiplier pinned at MinMult/MaxMult, or its violated steps no longer
// improving the metric — for ShareHold consecutive violated intervals bids
// for capacity from the most comfortable tenant. A transfer moves a fixed
// ShareQuantum of blocks per partition from donor to receiver at the batch
// boundary (never mid-batch): budgets shift in every partition and the
// donor's overflow blocks are evicted coldest-first immediately, so the
// no-overcommit invariant holds through every resize. Hysteresis keeps
// shares from thrashing: the receiver must be violated beyond its band AND
// resident within one quantum of its current budget (capacity, not the
// threshold or a stale model, is provably its binding constraint), the
// donor must be comfortable beyond its band (tenants merely holding neither
// give nor take), a donor never shrinks below ShareFloor blocks per
// partition, and after any transfer the share lever pauses for ShareCooldown
// control intervals. Donor and receiver selection is deterministic (worst
// relative violation takes, widest relative headroom gives, ties to the
// lowest tenant index), so share-adapted runs keep the bit-identical-at-any-
// shard-count contract. Tenants without a QoS target are never measured and
// therefore neither bid nor donate: their static share is untouched.
type ControlConfig struct {
	// Every is the control period in ingest batches (default 16).
	Every int
	// Step is the multiplicative threshold step, > 1 (default 1.25).
	Step float64
	// MinMult/MaxMult clamp the accumulated multiplier (defaults 2^-10 and
	// 2^10), bounding how far the controller can push a tenant away from
	// the calibrated threshold.
	MinMult float64
	MaxMult float64
	// ShareAdapt enables the capacity-share lever described above.
	ShareAdapt bool
	// ShareQuantum is the number of blocks per partition one transfer moves
	// (default 8).
	ShareQuantum int
	// ShareHold is how many consecutive violated control intervals a
	// tenant's threshold lever must sit saturated before it may bid for
	// capacity (default 2).
	ShareHold int
	// ShareCooldown is how many control intervals the share lever pauses
	// after a transfer. Zero means no pause; the packaged defaults
	// (DefaultControlConfig, the CLI flag) use 4.
	ShareCooldown int
	// ShareFloor is the smallest per-partition block budget a donor may be
	// left holding (default ShareQuantum). It is the fallback when
	// ShareFloorRateFrac is zero.
	ShareFloor int
	// ShareFloorRateFrac, in (0,1], derives each donor's floor from its
	// arrival-rate share instead of the constant ShareFloor: floor_t =
	// max(1, ShareFloorRateFrac * rateShare_t * blocksPerPartition). A
	// tenant carrying half the traffic then keeps a proportionally larger
	// guaranteed footprint than one trickling requests — the constant floor
	// treated both alike, so a high-rate donor could be drained to the same
	// handful of blocks as an idle one. Zero keeps the constant behaviour.
	ShareFloorRateFrac float64
}

// DefaultControlConfig returns the defaults above (share adaptation off).
func DefaultControlConfig() ControlConfig {
	return ControlConfig{
		Every: 16, Step: 1.25, MinMult: 1.0 / 1024, MaxMult: 1024,
		ShareQuantum: 8, ShareHold: 2, ShareCooldown: 4,
	}
}

// sanitized fills zero-valued fields with defaults.
func (c ControlConfig) sanitized() ControlConfig {
	d := DefaultControlConfig()
	if c.Every == 0 {
		c.Every = d.Every
	}
	if c.Step == 0 {
		c.Step = d.Step
	}
	if c.MinMult == 0 {
		c.MinMult = d.MinMult
	}
	if c.MaxMult == 0 {
		c.MaxMult = d.MaxMult
	}
	if c.ShareQuantum == 0 {
		c.ShareQuantum = d.ShareQuantum
	}
	if c.ShareHold == 0 {
		c.ShareHold = d.ShareHold
	}
	// ShareCooldown is NOT zero-filled: 0 is a legal "no pause" setting,
	// and DefaultControlConfig/the CLI flag already carry the default 4.
	if c.ShareFloor == 0 {
		c.ShareFloor = c.ShareQuantum
	}
	return c
}

// clampMult bounds a threshold multiplier to [MinMult, MaxMult].
func (c ControlConfig) clampMult(m float64) float64 {
	if m < c.MinMult {
		return c.MinMult
	}
	if m > c.MaxMult {
		return c.MaxMult
	}
	return m
}

// Validate checks the configuration (after sanitizing defaults).
func (c ControlConfig) Validate() error {
	c = c.sanitized()
	if c.Every < 1 {
		return errors.New("serve: control period below one batch")
	}
	if c.Step <= 1 {
		return errors.New("serve: control step must exceed 1")
	}
	if c.MinMult <= 0 || c.MinMult > 1 || c.MaxMult < 1 {
		return errors.New("serve: control multiplier clamp must satisfy 0 < MinMult <= 1 <= MaxMult")
	}
	if c.ShareAdapt {
		if c.ShareQuantum < 1 {
			return errors.New("serve: share quantum below one block")
		}
		if c.ShareHold < 1 {
			return errors.New("serve: share hold below one interval")
		}
		if c.ShareCooldown < 0 {
			return errors.New("serve: negative share cooldown would disable the anti-thrash hysteresis")
		}
		if c.ShareFloor < 1 {
			return errors.New("serve: share floor below one block (a zero-budget tenant could never serve a hit)")
		}
	}
	if c.ShareFloorRateFrac < 0 || c.ShareFloorRateFrac > 1 {
		return errors.New("serve: share floor rate fraction outside [0,1]")
	}
	return nil
}

// tenantState is the serving-time state of one tenant: its spec plus the
// controller's accumulated threshold multiplier and the last control-interval
// measurement.
type tenantState struct {
	spec TenantSpec
	// mult is the controller's accumulated multiplicative offset from the
	// bundle's calibrated threshold.
	mult float64
	// threshold is the effective admission cutoff, base*mult.
	threshold float64
	// lastMetric/lastWithin record the most recent completed control
	// interval's QoS measurement (valid once lastValid is set).
	lastMetric float64
	lastWithin bool
	lastValid  bool
	// Hill-climb state: the current violated-step direction (+1 tighten,
	// -1 loosen) and whether the previous control step was also violated
	// (enabling the no-improvement reversal against lastMetric).
	ctrlDir         float64
	ctrlPrevViolate bool
	// satHold counts consecutive violated intervals in which the threshold
	// lever was saturated (multiplier clamped, or a violated step that made
	// no progress) — the elastic-share controller's bid condition.
	satHold int
	// headroomEWMA smooths the tenant's measured QoS headroom across control
	// intervals (alpha headroomAlpha, seeded by the first measurement).
	// Donor selection ranks candidates by this smoothed value instead of the
	// instantaneous one, so a tenant whose metric oscillates around its band
	// edge cannot be drained on every comfortable swing.
	headroomEWMA float64
	headroomSeen bool
}

// headroomAlpha is the smoothing factor for tenantState.headroomEWMA.
const headroomAlpha = 0.25

// controller drives the per-tenant threshold adaptation and, with
// ShareAdapt, the capacity-share reallocation. It runs on the ingest
// goroutine at batch boundaries only, so it may touch partition state
// freely.
type controller struct {
	cfg ControlConfig
	svc *Service
	// cooldown is the number of control intervals the share lever still has
	// to sit out after the last transfer.
	cooldown int
	// floors holds each tenant's per-partition donor floor when
	// ShareFloorRateFrac derives floors from arrival-rate shares; nil under
	// the constant-ShareFloor fallback. Derived once at construction — rates
	// are spec constants — so checkpoints need not carry it.
	floors []int
}

// ctrlObs is one tenant's classification for the current control interval,
// shared between the threshold loop and the share lever.
type ctrlObs struct {
	measured    bool
	v           float64
	violated    bool
	comfortable bool
}

// newController returns nil when no tenant carries a QoS target — untargeted
// runs pay zero control overhead.
func newController(svc *Service, cfg ControlConfig) *controller {
	hasQoS := false
	for _, t := range svc.tenants {
		if t.spec.QoS != nil {
			hasQoS = true
			break
		}
	}
	if !hasQoS {
		return nil
	}
	c := &controller{cfg: cfg.sanitized(), svc: svc}
	if c.cfg.ShareFloorRateFrac > 0 {
		c.floors = rateFloors(svc, c.cfg)
	}
	return c
}

// rateFloors derives each tenant's per-partition donor floor from its
// arrival-rate share: max(1, frac * rateShare * blocksPerPartition).
func rateFloors(svc *Service, cfg ControlConfig) []int {
	pc, err := svc.cfg.partitionCache()
	if err != nil {
		return nil // cfg was validated at New; unreachable in practice
	}
	blocks := float64(pc.NumBlocks())
	var total float64
	for _, t := range svc.tenants {
		total += t.spec.RatePerSec
	}
	floors := make([]int, len(svc.tenants))
	for i, t := range svc.tenants {
		f := 1
		if total > 0 {
			f = int(cfg.ShareFloorRateFrac * (t.spec.RatePerSec / total) * blocks)
			if f < 1 {
				f = 1
			}
		}
		floors[i] = f
	}
	return floors
}

// donorFloor returns tenant ti's per-partition floor: rate-derived when
// ShareFloorRateFrac is set, the constant ShareFloor otherwise.
func (c *controller) donorFloor(ti int) int {
	if c.floors != nil {
		return c.floors[ti]
	}
	return c.cfg.ShareFloor
}

// step runs one control interval: measure each QoS tenant, classify against
// its band, apply the threshold step rule, publish the new thresholds, run
// the share lever, emit one "control" metric record per measured tenant (and
// one "share" record per transfer), and reset the interval accumulators.
func (c *controller) step() {
	s := c.svc
	changed := false
	obs := make([]ctrlObs, len(s.tenants))
	for ti, t := range s.tenants {
		if t.spec.QoS == nil {
			continue
		}
		v, ok := c.measure(ti, *t.spec.QoS)
		if !ok {
			// Idle tenant this interval: no ops means no hit ratio and no
			// sojourn samples, so there is nothing to classify. Hold the
			// multiplier, threshold and saturation state — but break the
			// violated-step chain, otherwise the next violated interval
			// would judge "improvement" against a metric from before the
			// gap and could reverse the search direction spuriously.
			t.ctrlPrevViolate = false
			continue
		}
		violated, comfortable := t.spec.QoS.classify(v)
		obs[ti] = ctrlObs{measured: true, v: v, violated: violated, comfortable: comfortable}
		if h := t.spec.QoS.headroom(v); t.headroomSeen {
			t.headroomEWMA += headroomAlpha * (h - t.headroomEWMA)
		} else {
			t.headroomEWMA, t.headroomSeen = h, true
		}
		switch {
		case violated:
			// Reverse the search direction when the previous violated step
			// failed to move the metric toward the target by at least 2% of
			// it — the deterministic hill-climb that escapes the wrong side
			// of a non-monotone response curve.
			stalled := t.ctrlPrevViolate && !t.spec.QoS.improved(v, t.lastMetric)
			if stalled {
				t.ctrlDir = -t.ctrlDir
			}
			if t.ctrlDir > 0 {
				t.mult *= c.cfg.Step
			} else {
				t.mult /= c.cfg.Step
			}
			t.ctrlPrevViolate = true
			changed = true
			t.mult = c.cfg.clampMult(t.mult)
			// Saturation: the threshold lever has nothing left to give —
			// pinned at a clamp, or stepping without progress.
			if stalled || t.mult <= c.cfg.MinMult || t.mult >= c.cfg.MaxMult {
				t.satHold++
			} else {
				t.satHold = 0
			}
		case comfortable:
			t.mult = c.cfg.clampMult(t.mult * c.cfg.Step)
			t.ctrlDir = -1 // an overshoot into violation loosens first
			t.ctrlPrevViolate = false
			t.satHold = 0
			changed = true
		default:
			t.ctrlPrevViolate = false
			t.satHold = 0
		}
		t.lastMetric = v
		t.lastWithin = !violated
		t.lastValid = true
	}
	if changed {
		s.applyThresholds()
	}
	for ti, t := range s.tenants {
		// Emit only for tenants measured this interval: a record with a
		// stale carried-over value would claim a measurement that never
		// happened.
		if !obs[ti].measured {
			continue
		}
		within, v := t.lastWithin, t.lastMetric
		s.metrics.write(metricRecord{
			Kind:      "control",
			Batch:     s.batches,
			Tenant:    t.spec.Name,
			QoSMetric: t.spec.QoS.Metric,
			QoS:       &v,
			WithinQoS: &within,
			Threshold: t.threshold,
			Mult:      t.mult,
		})
	}
	if c.cfg.ShareAdapt {
		c.adaptShares(obs)
	}
	c.reset()
}

// adaptShares runs the capacity-share lever for one control interval: pick
// the most-violated saturated tenant as the receiver, the comfortable tenant
// with the widest relative headroom (that can spare a quantum above the
// floor) as the donor, and move one ShareQuantum between them. At most one
// transfer happens per interval, followed by ShareCooldown quiet intervals —
// the hysteresis that keeps shares from thrashing.
func (c *controller) adaptShares(obs []ctrlObs) {
	if c.cooldown > 0 {
		c.cooldown--
		return
	}
	s := c.svc
	recv, worst := -1, 0.0
	for ti, t := range s.tenants {
		o := obs[ti]
		if !o.measured || !o.violated || t.satHold < c.cfg.ShareHold {
			continue
		}
		// Capacity must be the binding constraint: a tenant that cannot
		// even fill its current budget (its threshold or a stale model is
		// the limiter, not block count) gains nothing from more blocks, and
		// draining a donor for it is pure waste. Require the receiver to be
		// pressing its cap, within one quantum of slack.
		var res, bud int
		for _, p := range s.parts {
			res += p.pol.Resident(ti)
			bud += p.pol.Budget(ti)
		}
		if res+c.cfg.ShareQuantum*len(s.parts) < bud {
			continue
		}
		if d := -t.spec.QoS.headroom(o.v); recv == -1 || d > worst {
			recv, worst = ti, d
		}
	}
	if recv == -1 {
		return
	}
	donor, best := -1, 0.0
	for ti, t := range s.tenants {
		o := obs[ti]
		if ti == recv || !o.measured || !o.comfortable {
			continue
		}
		// Every partition carries the same budgets, so partition 0 speaks
		// for all: the donor must stay at or above its floor after giving.
		if s.parts[0].pol.Budget(ti)-c.cfg.ShareQuantum < c.donorFloor(ti) {
			continue
		}
		// Rank donors by smoothed headroom: eligibility (comfortable this
		// interval) stays instantaneous, but the tie-break across candidates
		// uses the EWMA so oscillating tenants don't win the widest-headroom
		// contest on one good interval.
		if h := t.headroomEWMA; donor == -1 || h > best {
			donor, best = ti, h
		}
	}
	if donor == -1 {
		return
	}
	s.transferShare(donor, recv, c.cfg.ShareQuantum)
	s.tenants[donor].satHold = 0
	s.tenants[recv].satHold = 0
	c.cooldown = c.cfg.ShareCooldown
}

// measure merges tenant ti's control-interval accumulators across partitions
// (in partition order) into one QoS metric value. ok is false when the
// tenant served nothing this interval.
func (c *controller) measure(ti int, q QoSSpec) (v float64, ok bool) {
	s := c.svc
	var ops, hits uint64
	for _, p := range s.parts {
		ops += p.ten[ti].ctrlOps
		hits += p.ten[ti].ctrlHits
	}
	if ops == 0 {
		return 0, false
	}
	switch q.Metric {
	case QoSHitRatio:
		return float64(hits) / float64(ops), true
	case QoSQueueDepth:
		// Mean outstanding-window depth observed at arrival across the
		// tenant's requests (host-routed requests observe depth 0: they
		// never queue on the device).
		var depth uint64
		for _, p := range s.parts {
			depth += p.ten[ti].ctrlQueueSum
		}
		return float64(depth) / float64(ops), true
	case QoSMeanNs:
		var sum, count int64
		for _, p := range s.parts {
			sum += p.ten[ti].ctrlHist.Sum()
			count += p.ten[ti].ctrlHist.Count()
		}
		if count == 0 {
			return 0, false
		}
		return float64(sum) / float64(count), true
	default: // QoSP99Ns
		agg := stats.DefaultLatencyHistogram()
		agg.SetRetention(len(s.parts) << 16)
		for _, p := range s.parts {
			agg.Merge(p.ten[ti].ctrlHist)
		}
		if agg.Count() == 0 {
			return 0, false
		}
		return float64(agg.Percentile(99)), true
	}
}

// reset clears every tenant's control-interval accumulators.
func (c *controller) reset() {
	for _, p := range c.svc.parts {
		for ti := range p.ten {
			ts := &p.ten[ti]
			ts.ctrlOps, ts.ctrlHits, ts.ctrlQueueSum = 0, 0, 0
			if ts.ctrlHist != nil {
				ts.ctrlHist.Reset()
			}
		}
	}
}
