package serve

import (
	"errors"

	"repro/internal/stats"
)

// ControlConfig parameterizes the adaptive per-tenant threshold controller.
// Every Every batches the controller measures each QoS-bearing tenant's
// metric over the elapsed control interval and nudges that tenant's
// admission threshold with a deterministic multiplicative hill-climb:
//
//   - QoS violated beyond its band: step the threshold in the tenant's
//     current search direction (loosening first — admit more). If the
//     previous violated step failed to improve the metric, reverse the
//     direction before stepping. The reversal is what finds QoS optima on
//     non-monotone response curves: a tenant whose working set exceeds its
//     capacity share loses hits both when the threshold is too tight (hot
//     pages bypassed) and when it is too loose (admit-everything thrashes
//     its share), and only an intermediate threshold — reachable from
//     either side — holds the hot head stable.
//   - comfortably inside the target: tighten (admit less), freeing device
//     bandwidth for tenants that need it, and arm the next violated step to
//     loosen (the overshoot correction).
//   - inside the band: hold.
//
// The tenant's threshold is base*mult, where base is the active bundle's
// calibrated threshold and mult is the controller's accumulated factor — so
// a model refresh rebases every tenant onto the new calibration while
// preserving the controller's learned offset. The step rule reads only
// virtual-time interval metrics, which in sync-refresh mode are themselves
// bit-identical at any shard count, so controlled runs keep the serving
// subsystem's determinism contract.
type ControlConfig struct {
	// Every is the control period in ingest batches (default 16).
	Every int
	// Step is the multiplicative threshold step, > 1 (default 1.25).
	Step float64
	// MinMult/MaxMult clamp the accumulated multiplier (defaults 2^-10 and
	// 2^10), bounding how far the controller can push a tenant away from
	// the calibrated threshold.
	MinMult float64
	MaxMult float64
}

// DefaultControlConfig returns the defaults above.
func DefaultControlConfig() ControlConfig {
	return ControlConfig{Every: 16, Step: 1.25, MinMult: 1.0 / 1024, MaxMult: 1024}
}

// sanitized fills zero-valued fields with defaults.
func (c ControlConfig) sanitized() ControlConfig {
	d := DefaultControlConfig()
	if c.Every == 0 {
		c.Every = d.Every
	}
	if c.Step == 0 {
		c.Step = d.Step
	}
	if c.MinMult == 0 {
		c.MinMult = d.MinMult
	}
	if c.MaxMult == 0 {
		c.MaxMult = d.MaxMult
	}
	return c
}

// Validate checks the configuration (after sanitizing defaults).
func (c ControlConfig) Validate() error {
	c = c.sanitized()
	if c.Every < 1 {
		return errors.New("serve: control period below one batch")
	}
	if c.Step <= 1 {
		return errors.New("serve: control step must exceed 1")
	}
	if c.MinMult <= 0 || c.MinMult > 1 || c.MaxMult < 1 {
		return errors.New("serve: control multiplier clamp must satisfy 0 < MinMult <= 1 <= MaxMult")
	}
	return nil
}

// tenantState is the serving-time state of one tenant: its spec plus the
// controller's accumulated threshold multiplier and the last control-interval
// measurement.
type tenantState struct {
	spec TenantSpec
	// mult is the controller's accumulated multiplicative offset from the
	// bundle's calibrated threshold.
	mult float64
	// threshold is the effective admission cutoff, base*mult.
	threshold float64
	// lastMetric/lastWithin record the most recent completed control
	// interval's QoS measurement (valid once lastValid is set).
	lastMetric float64
	lastWithin bool
	lastValid  bool
	// Hill-climb state: the current violated-step direction (+1 tighten,
	// -1 loosen) and whether the previous control step was also violated
	// (enabling the no-improvement reversal against lastMetric).
	ctrlDir         float64
	ctrlPrevViolate bool
}

// controller drives the per-tenant threshold adaptation. It runs on the
// ingest goroutine at batch boundaries only, so it may touch partition state
// freely.
type controller struct {
	cfg ControlConfig
	svc *Service
}

// newController returns nil when no tenant carries a QoS target — untargeted
// runs pay zero control overhead.
func newController(svc *Service, cfg ControlConfig) *controller {
	hasQoS := false
	for _, t := range svc.tenants {
		if t.spec.QoS != nil {
			hasQoS = true
			break
		}
	}
	if !hasQoS {
		return nil
	}
	return &controller{cfg: cfg.sanitized(), svc: svc}
}

// step runs one control interval: measure each QoS tenant, classify against
// its band, apply the threshold step rule, publish the new thresholds, emit
// one "control" metric record per measured tenant, and reset the interval
// accumulators.
func (c *controller) step() {
	s := c.svc
	changed := false
	measured := make([]bool, len(s.tenants))
	for ti, t := range s.tenants {
		if t.spec.QoS == nil {
			continue
		}
		v, ok := c.measure(ti, *t.spec.QoS)
		if !ok {
			continue // idle tenant this interval: hold
		}
		measured[ti] = true
		violated, comfortable := t.spec.QoS.classify(v)
		switch {
		case violated:
			// Reverse the search direction when the previous violated step
			// failed to move the metric toward the target by at least 2% of
			// it — the deterministic hill-climb that escapes the wrong side
			// of a non-monotone response curve.
			if t.ctrlPrevViolate && !t.spec.QoS.improved(v, t.lastMetric) {
				t.ctrlDir = -t.ctrlDir
			}
			if t.ctrlDir > 0 {
				t.mult *= c.cfg.Step
			} else {
				t.mult /= c.cfg.Step
			}
			t.ctrlPrevViolate = true
			changed = true
		case comfortable:
			t.mult *= c.cfg.Step
			t.ctrlDir = -1 // an overshoot into violation loosens first
			t.ctrlPrevViolate = false
			changed = true
		default:
			t.ctrlPrevViolate = false
		}
		if t.mult < c.cfg.MinMult {
			t.mult = c.cfg.MinMult
		}
		if t.mult > c.cfg.MaxMult {
			t.mult = c.cfg.MaxMult
		}
		t.lastMetric = v
		t.lastWithin = !violated
		t.lastValid = true
	}
	if changed {
		s.applyThresholds()
	}
	for ti, t := range s.tenants {
		// Emit only for tenants measured this interval: a record with a
		// stale carried-over value would claim a measurement that never
		// happened.
		if !measured[ti] {
			continue
		}
		within, v := t.lastWithin, t.lastMetric
		s.metrics.write(metricRecord{
			Kind:      "control",
			Batch:     s.batches,
			Tenant:    t.spec.Name,
			QoSMetric: t.spec.QoS.Metric,
			QoS:       &v,
			WithinQoS: &within,
			Threshold: t.threshold,
			Mult:      t.mult,
		})
	}
	c.reset()
}

// measure merges tenant ti's control-interval accumulators across partitions
// (in partition order) into one QoS metric value. ok is false when the
// tenant served nothing this interval.
func (c *controller) measure(ti int, q QoSSpec) (v float64, ok bool) {
	s := c.svc
	var ops, hits uint64
	for _, p := range s.parts {
		ops += p.ten[ti].ctrlOps
		hits += p.ten[ti].ctrlHits
	}
	if ops == 0 {
		return 0, false
	}
	switch q.Metric {
	case QoSHitRatio:
		return float64(hits) / float64(ops), true
	case QoSMeanNs:
		var sum, count int64
		for _, p := range s.parts {
			sum += p.ten[ti].ctrlHist.Sum()
			count += p.ten[ti].ctrlHist.Count()
		}
		if count == 0 {
			return 0, false
		}
		return float64(sum) / float64(count), true
	default: // QoSP99Ns
		agg := stats.DefaultLatencyHistogram()
		agg.SetRetention(len(s.parts) << 16)
		for _, p := range s.parts {
			agg.Merge(p.ten[ti].ctrlHist)
		}
		if agg.Count() == 0 {
			return 0, false
		}
		return float64(agg.Percentile(99)), true
	}
}

// reset clears every tenant's control-interval accumulators.
func (c *controller) reset() {
	for _, p := range c.svc.parts {
		for ti := range p.ten {
			ts := &p.ten[ti]
			ts.ctrlOps, ts.ctrlHits = 0, 0
			if ts.ctrlHist != nil {
				ts.ctrlHist.Reset()
			}
		}
	}
}
