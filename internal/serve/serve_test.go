package serve_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/gmm"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testGen is a small, cacheable working set so hit ratios are high and
// refresh effects are visible.
func testGen(t testing.TB) workload.Generator {
	t.Helper()
	g, err := workload.NewCustom(workload.CustomConfig{
		Name:       "serve-test",
		TotalPages: 4096,
		Clusters:   []workload.ClusterSpec{{CenterPage: 600, Spread: 40}, {CenterPage: 2600, Spread: 60}},
		WriteFrac:  0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testConfig is a laptop-sized serving configuration: 1 MiB cache over 8
// partitions, small GMM, no metrics.
func testConfig(shards int) serve.Config {
	cfg := serve.DefaultConfig()
	cfg.Shards = shards
	cfg.Partitions = 8
	cfg.Cache = cache.Config{SizeBytes: 1 << 20, BlockBytes: trace.PageSize, Ways: 8}
	cfg.Train = gmm.TrainConfig{K: 8, MaxIters: 10, Seed: 1, MaxSamples: 4000, LloydIters: 2}
	// Wrap the Algorithm 1 clock every 32*256 = 8192 requests so the 30k
	// warm-up trace covers full access shots (see Config.Transform).
	cfg.Transform.LenAccessShot = 256
	cfg.BatchSize = 1024
	cfg.ReportEvery = 8
	return cfg
}

func trainTestBundle(t testing.TB, cfg serve.Config) *serve.Bundle {
	t.Helper()
	warm := testGen(t).Generate(30_000, 1)
	b, err := serve.TrainBundle(warm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runService(t testing.TB, cfg serve.Config, ops uint64, olCfg workload.OpenLoopConfig) (*serve.Snapshot, *serve.Service) {
	t.Helper()
	b := trainTestBundle(t, cfg)
	svc, err := serve.New(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	ol, err := workload.NewOpenLoop(testGen(t), olCfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Run(serve.NewOpenLoopSource(ol, ops))
	if err != nil {
		t.Fatal(err)
	}
	return snap, svc
}

// TestServeDeterministicAcrossShards is the subsystem's core contract: for a
// fixed seed, shards=1 and shards=8 produce identical aggregate AND
// per-partition metrics, down to the JSONL metric bytes, with sync refresh
// enabled and firing.
func TestServeDeterministicAcrossShards(t *testing.T) {
	t.Parallel()
	olCfg := workload.OpenLoopConfig{
		RatePerSec: 5e6, BurstAmp: 0.3, Seed: 7,
		// A working-set shift two thirds in makes the refresh path part of
		// the determinism surface, not just steady-state serving.
		ShiftAfter: 40 * 1024, ShiftOffsetPages: 1 << 20,
	}
	run := func(shards int) (*serve.Snapshot, string) {
		var jsonl bytes.Buffer
		cfg := testConfig(shards)
		cfg.Metrics = &jsonl
		cfg.Refresh.Mode = serve.RefreshSync
		cfg.Refresh.Drift = serve.DriftConfig{Delta: 0.25, Sustain: 2, Warmup: 4, Alpha: 0.05}
		cfg.Refresh.WindowSamples = 8192
		cfg.Refresh.MinSamples = 2048
		snap, _ := runService(t, cfg, 60*1024, olCfg)
		return snap, jsonl.String()
	}
	snap1, out1 := run(1)
	snap8, out8 := run(8)
	if !reflect.DeepEqual(snap1, snap8) {
		t.Errorf("snapshots differ between shards=1 and shards=8:\n%+v\n%+v", snap1, snap8)
	}
	if out1 != out8 {
		t.Errorf("JSONL metrics differ between shards=1 and shards=8:\n%s\n---\n%s", out1, out8)
	}
	if snap1.Refreshes == 0 {
		t.Error("working-set shift did not trigger a refresh; determinism test lost its refresh coverage")
	}
	if snap1.Ops != 60*1024 {
		t.Errorf("ops = %d, want %d", snap1.Ops, 60*1024)
	}
}

// TestServeEndToEnd checks the pipeline plumbing: every request is served,
// latency accounting runs, partitions see disjoint page sets, and metrics
// records appear.
func TestServeEndToEnd(t *testing.T) {
	t.Parallel()
	var jsonl bytes.Buffer
	cfg := testConfig(4)
	cfg.Metrics = &jsonl
	snap, _ := runService(t, cfg, 20_000, workload.OpenLoopConfig{RatePerSec: 2e6, Seed: 3})
	if snap.Ops != 20_000 {
		t.Fatalf("ops = %d", snap.Ops)
	}
	if snap.Cache.Accesses() != snap.Ops {
		t.Errorf("cache accesses %d != ops %d", snap.Cache.Accesses(), snap.Ops)
	}
	if snap.Latency.Count != int64(snap.Ops) {
		t.Errorf("latency samples %d != ops %d", snap.Latency.Count, snap.Ops)
	}
	if snap.Latency.Mean <= 0 || snap.MakespanNs <= 0 || snap.Throughput <= 0 {
		t.Errorf("degenerate latency accounting: %+v", snap.Latency)
	}
	// The cache-hit floor: a hit costs at least the CXL round trip plus one
	// HBM access (>300 ns with defaults).
	if snap.Latency.Min < 300*time.Nanosecond {
		t.Errorf("min latency %v below physical floor", snap.Latency.Min)
	}
	var partOps uint64
	for i, ps := range snap.Partitions {
		partOps += ps.Ops
		if ps.Ops == 0 {
			t.Errorf("partition %d served nothing", i)
		}
	}
	if partOps != snap.Ops {
		t.Errorf("partition ops sum %d != %d", partOps, snap.Ops)
	}
	for _, want := range []string{`"kind":"interval"`, `"kind":"partition"`, `"kind":"summary"`} {
		if !bytes.Contains(jsonl.Bytes(), []byte(want)) {
			t.Errorf("metrics missing %s records", want)
		}
	}
}

// TestServeRefreshRecoversHitRatio runs the same drifting workload with
// refresh off and with sync refresh: the refreshed run must fire exactly one
// refresh for the single sustained episode and recover hit ratio the
// stale-model run permanently loses.
func TestServeRefreshRecoversHitRatio(t *testing.T) {
	t.Parallel()
	olCfg := workload.OpenLoopConfig{
		RatePerSec: 5e6, Seed: 11,
		ShiftAfter: 24 * 1024, ShiftOffsetPages: 1 << 20,
	}
	const ops = 96 * 1024
	run := func(mode serve.RefreshMode) *serve.Snapshot {
		cfg := testConfig(2)
		cfg.Refresh.Mode = mode
		cfg.Refresh.Drift = serve.DriftConfig{Delta: 0.25, Sustain: 2, Warmup: 4, Alpha: 0.05}
		cfg.Refresh.WindowSamples = 8192
		cfg.Refresh.MinSamples = 2048
		snap, _ := runService(t, cfg, ops, olCfg)
		return snap
	}
	stale := run(serve.RefreshOff)
	fresh := run(serve.RefreshSync)
	if stale.Refreshes != 0 {
		t.Fatalf("refresh-off run installed %d refreshes", stale.Refreshes)
	}
	if fresh.Refreshes != 1 {
		t.Fatalf("refreshes = %d, want exactly 1 for one sustained drift episode", fresh.Refreshes)
	}
	if fresh.HitRatio() <= stale.HitRatio() {
		t.Errorf("refresh did not help: refreshed hit ratio %.3f <= stale %.3f",
			fresh.HitRatio(), stale.HitRatio())
	}
}

// TestServeRefreshDeferredUntilWindowFills: a drift fire that arrives before
// the sample window reaches MinSamples must not be dropped — the detector
// latches the episode and will not fire again until recovery, so the refit
// has to retry at later batch boundaries once samples accumulate.
func TestServeRefreshDeferredUntilWindowFills(t *testing.T) {
	t.Parallel()
	cfg := testConfig(2)
	cfg.BatchSize = 256
	cfg.Refresh.Mode = serve.RefreshSync
	// 16 warm-up batches (4096 requests) build a warmed-cache baseline; the
	// shift right after makes the detector fire around batch 18, when the
	// window holds ~4.6k samples — far below MinSamples.
	cfg.Refresh.Drift = serve.DriftConfig{Delta: 0.15, Sustain: 2, Warmup: 16, Alpha: 0.05}
	cfg.Refresh.WindowSamples = 8192
	cfg.Refresh.MinSamples = 8192
	olCfg := workload.OpenLoopConfig{
		RatePerSec: 5e6, Seed: 11,
		ShiftAfter: 4096, ShiftOffsetPages: 1 << 20,
	}
	snap, _ := runService(t, cfg, 16*1024, olCfg)
	if snap.Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1 (fire before MinSamples must defer, not drop)", snap.Refreshes)
	}
}

// TestServeRefreshAsync exercises the background-refit path (the atomics run
// under -race in CI): the refit must land without blocking the run and be
// installed by the time Run returns.
func TestServeRefreshAsync(t *testing.T) {
	t.Parallel()
	olCfg := workload.OpenLoopConfig{
		RatePerSec: 5e6, Seed: 11,
		ShiftAfter: 24 * 1024, ShiftOffsetPages: 1 << 20,
	}
	cfg := testConfig(4)
	cfg.Refresh.Mode = serve.RefreshAsync
	cfg.Refresh.Drift = serve.DriftConfig{Delta: 0.25, Sustain: 2, Warmup: 4, Alpha: 0.05}
	cfg.Refresh.WindowSamples = 8192
	cfg.Refresh.MinSamples = 2048
	snap, svc := runService(t, cfg, 64*1024, olCfg)
	if snap.Refreshes == 0 {
		t.Error("async refresh never installed")
	}
	if svc.Bundle() == nil {
		t.Error("nil bundle after run")
	}
}

func TestServeConfigValidation(t *testing.T) {
	t.Parallel()
	b := trainTestBundle(t, testConfig(1))
	bad := func(mut func(*serve.Config)) serve.Config {
		cfg := testConfig(1)
		mut(&cfg)
		return cfg
	}
	cases := map[string]serve.Config{
		"zero partitions":  bad(func(c *serve.Config) { c.Partitions = 0 }),
		"zero batch":       bad(func(c *serve.Config) { c.BatchSize = 0 }),
		"indivisible":      bad(func(c *serve.Config) { c.Partitions = 7 }),
		"bad threshold":    bad(func(c *serve.Config) { c.ThresholdPct = 2 }),
		"bad ssd channels": bad(func(c *serve.Config) { c.SSDChannels = 0 }),
		"bad drift": bad(func(c *serve.Config) {
			c.Refresh.Mode = serve.RefreshSync
			c.Refresh.Drift.Delta = 5
		}),
		"min samples beyond window": bad(func(c *serve.Config) {
			c.Refresh.Mode = serve.RefreshSync
			c.Refresh.WindowSamples = 4096
			c.Refresh.MinSamples = 8192
		}),
	}
	for name, cfg := range cases {
		if _, err := serve.New(cfg, b); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	if _, err := serve.New(testConfig(1), nil); err == nil {
		t.Error("nil bundle accepted")
	}
}

func TestTraceSource(t *testing.T) {
	t.Parallel()
	tr := testGen(t).Generate(5000, 2)
	src := serve.NewTraceSource(tr, 1e6) // 1 us spacing
	var got int
	buf := make([]serve.Request, 1024)
	var lastArrival int64 = -1
	for {
		n := src.Next(buf)
		if n == 0 {
			break
		}
		for _, r := range buf[:n] {
			if r.ArrivalNs <= lastArrival && got > 0 {
				t.Fatal("arrivals not increasing")
			}
			lastArrival = r.ArrivalNs
		}
		got += n
	}
	if got != 5000 {
		t.Fatalf("trace source yielded %d, want 5000", got)
	}
}
