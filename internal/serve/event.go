package serve

// Event kinds emitted through Session.Observe. These are the serving-path
// state transitions worth tracing live: the deterministic metric JSONL
// records them too (as "refresh"/"share" records and detector state), but an
// observer sees them as they happen, which is what a telemetry trace wants.
const (
	// EventDrift: the hit-ratio drift detector fired (one per episode).
	EventDrift = "drift"
	// EventRefresh: a refitted model bundle was installed.
	EventRefresh = "refresh"
	// EventRefreshFailed: a synchronous refit errored; the previous bundle
	// keeps serving. (Asynchronous refit failures happen off the ingest
	// goroutine and surface only in the RefreshesFailed counter.)
	EventRefreshFailed = "refresh-failed"
	// EventShare: the controller moved HBM capacity between tenants.
	EventShare = "share"
	// EventCheckpoint: a checkpoint document was captured (explicit
	// Checkpoint or the CheckpointEvery hook).
	EventCheckpoint = "checkpoint"
	// EventCongestion: under dataflow timing, every device-routed request in
	// a reporting interval stalled on a full outstanding window — the device
	// was saturated for the whole interval.
	EventCongestion = "congestion"
	// EventTenantJoin / EventTenantLeave: a scenario timeline event changed
	// the tenant population and the capacity rebalance ran; Tenant names the
	// churned tenant and Blocks its post-rebalance budget (summed over
	// partitions).
	EventTenantJoin  = "tenant-join"
	EventTenantLeave = "tenant-leave"
	// EventShadowDivergence: at a reporting interval, the shadow policy's
	// cumulative hit ratio diverged from the live policy's beyond the spec's
	// divergence threshold. HitRatio carries the live value, Baseline the
	// shadow's.
	EventShadowDivergence = "shadow_divergence"
)

// Event is one observed serving-path state transition. Batch locates it on
// the deterministic virtual timeline; which fields beyond that are set
// depends on Kind (see the kind constants). Events carry no wall-clock
// time — stamping, if wanted, is the observer's business.
type Event struct {
	Kind  string
	Batch uint64
	// Drift fields: the firing batch's hit ratio against the detector
	// baseline.
	HitRatio float64
	Baseline float64
	// Refresh fields: the new bundle's calibrated threshold and the install
	// count after this one.
	Threshold float64
	Refreshes uint64
	// Refresh-failed field: the refit error text.
	Err string
	// Share fields: receiving and donating tenant names and the blocks
	// moved (summed over partitions).
	Tenant string
	Donor  string
	Blocks uint64
	// Congestion field: the interval's mean outstanding-window depth.
	QueueDepth float64
}

// emit hands an event to the observer, if any. Called only from the
// session's own goroutine at batch boundaries (or within batch-boundary
// work), so observers need no locking against the serving path.
func (s *Service) emit(ev Event) {
	if s.obs != nil {
		ev.Batch = s.batches
		s.obs(ev)
	}
}

// Observe registers fn to receive serving-path events (drift fired, refresh
// installed, share transferred, checkpoint captured). fn is called
// synchronously on the session's goroutine at batch boundaries: it must not
// block, and it needs no locking against the session. A nil fn removes the
// observer. Observers see state transitions only — they cannot influence
// them — so registering one never changes the deterministic output.
func (s *Session) Observe(fn func(Event)) { s.svc.obs = fn }
