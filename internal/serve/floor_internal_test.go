package serve

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/trace"
)

// TestRateDerivedShareFloors: with ShareFloorRateFrac set, each donor's
// per-partition floor scales with its arrival-rate share of the traffic;
// with it unset, every donor falls back to the constant ShareFloor.
func TestRateDerivedShareFloors(t *testing.T) {
	t.Parallel()
	specs := []TenantSpec{
		{Name: "whale", RatePerSec: 3e5, Share: 0.5, QoS: hitQoS(0.8)},
		{Name: "minnow", RatePerSec: 1e5, Share: 0.5, QoS: hitQoS(0.8)},
	}
	svc := &Service{
		cfg: Config{
			Partitions: 2,
			Cache:      cache.Config{SizeBytes: 256 * trace.PageSize, BlockBytes: trace.PageSize, Ways: 8},
			Tenants:    specs,
		},
		runner: engine.NewRunner(1),
		tenants: []*tenantState{
			{spec: specs[0], mult: 1, ctrlDir: -1},
			{spec: specs[1], mult: 1, ctrlDir: -1},
		},
	}
	base := ControlConfig{Every: 1, Step: 2, ShareAdapt: true, ShareQuantum: 4, ShareFloor: 6}

	// 128 blocks per partition: whale carries 3/4 of the traffic -> floor
	// 0.5*0.75*128 = 48; minnow 0.5*0.25*128 = 16.
	cfg := base
	cfg.ShareFloorRateFrac = 0.5
	c := newController(svc, cfg)
	if c == nil {
		t.Fatal("controller did not activate")
	}
	if got := c.donorFloor(0); got != 48 {
		t.Errorf("whale floor = %d, want 48", got)
	}
	if got := c.donorFloor(1); got != 16 {
		t.Errorf("minnow floor = %d, want 16", got)
	}

	// Fallback: no rate fraction -> the constant floor for everyone.
	c = newController(svc, base)
	if c.floors != nil {
		t.Error("constant-floor controller derived rate floors")
	}
	for ti := range specs {
		if got := c.donorFloor(ti); got != 6 {
			t.Errorf("tenant %d constant floor = %d, want 6", ti, got)
		}
	}

	// A vanishing rate share still floors at one block.
	cfg.ShareFloorRateFrac = 0.001
	c = newController(svc, cfg)
	if got := c.donorFloor(1); got != 1 {
		t.Errorf("tiny-share floor = %d, want 1", got)
	}
}

// TestRateFloorGatesDonor: the share lever must refuse a donor whose
// rate-derived floor the transfer would breach, even though the constant
// floor would have allowed it.
func TestRateFloorGatesDonor(t *testing.T) {
	t.Parallel()
	specs := []TenantSpec{
		{Name: "starved", RatePerSec: 1e5, Share: 0.5, QoS: hitQoS(0.8)},
		{Name: "cozy", RatePerSec: 3e5, Share: 0.5, QoS: hitQoS(0.4)},
	}
	cfg := ControlConfig{
		Every: 1, Step: 2, MinMult: 0.5, MaxMult: 2,
		ShareAdapt: true, ShareQuantum: 1, ShareHold: 1, ShareCooldown: 0, ShareFloor: 1,
	}
	run := func(frac float64) (transferred bool) {
		h := newCtrlHarness(t, specs, []int{4, 4}, cfg)
		s := h.svc
		// The harness carries no real cache geometry; install the derived
		// floors directly against its 8-block partitions.
		s.cfg.Partitions = len(s.parts)
		s.cfg.Cache = cache.Config{SizeBytes: 16 * trace.PageSize, BlockBytes: trace.PageSize, Ways: 8}
		fcfg := cfg
		fcfg.ShareFloorRateFrac = frac
		s.ctrl = newController(s, fcfg)
		h.fill(t, 0, 4)
		h.fill(t, 1, 4)
		for i := 0; i < 3; i++ {
			h.observe(0, 100, 10) // starved: violated, saturating its lever
			h.observe(1, 100, 90) // cozy: comfortable
			s.ctrl.step()
		}
		return s.parts[0].pol.Budget(0) > 4
	}
	// Constant floor 1: cozy may donate (budget 4 -> transfer allowed).
	if !run(0) {
		t.Error("constant floor blocked a legal transfer")
	}
	// Rate floors: cozy carries 3/4 of traffic -> floor 0.75*8*0.75 = 4
	// blocks (using frac 0.75); giving even one block would breach it.
	if run(0.75) {
		t.Error("rate-derived floor did not gate the donor")
	}
}
