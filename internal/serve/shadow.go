package serve

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/hbm"
	"repro/internal/lstm"
	"repro/internal/policy"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// ShadowSpec configures the shadow admission policy: an LSTM scorer (the
// paper's Table 2 baseline) trained on the same warm-up trace as the live
// GMM and run over the same traffic in a parallel set of shadow caches. The
// shadow never touches live cache state or the serving clock — it exists to
// answer "what would the other policy have done" with per-tenant hit-ratio
// and latency deltas in the interval records. Presence of the block enables
// the shadow; "lstm" is the only shadow policy.
type ShadowSpec struct {
	// Policy names the shadow scorer; "" and "lstm" both mean the LSTM.
	Policy string `json:"policy,omitempty"`
	// Hidden/Layers/SeqLen shape the network (defaults 32 / 1 / 8).
	Hidden int `json:"hidden,omitempty"`
	Layers int `json:"layers,omitempty"`
	SeqLen int `json:"seq_len,omitempty"`
	// Threshold is the admission cutoff on the predicted access frequency
	// (default 0.1).
	Threshold float64 `json:"threshold,omitempty"`
	// Epochs/MaxExamples bound training (defaults 2 / 256 — BPTT is the
	// expensive part, which is the paper's point).
	Epochs      int `json:"epochs,omitempty"`
	MaxExamples int `json:"max_examples,omitempty"`
	// Seed drives weight initialization (default: the training seed).
	Seed int64 `json:"seed,omitempty"`
	// Divergence is the absolute hit-ratio gap between shadow and live,
	// per tenant, beyond which a shadow_divergence event fires at each
	// reporting interval (default 0.1).
	Divergence float64 `json:"divergence,omitempty"`
}

// Validate checks the shadow parameters.
func (sh ShadowSpec) Validate() error {
	if sh.Policy != "" && sh.Policy != "lstm" {
		return fmt.Errorf("serve: spec shadow policy %q unknown (valid: lstm)", sh.Policy)
	}
	if sh.Hidden < 0 || sh.Layers < 0 || sh.SeqLen < 0 || sh.Epochs < 0 || sh.MaxExamples < 0 {
		return fmt.Errorf("serve: spec shadow has a negative dimension")
	}
	if sh.Divergence < 0 || sh.Divergence > 1 {
		return fmt.Errorf("serve: spec shadow divergence %v outside [0,1]", sh.Divergence)
	}
	return nil
}

func (sh ShadowSpec) effHidden() int {
	if sh.Hidden == 0 {
		return 32
	}
	return sh.Hidden
}

func (sh ShadowSpec) effLayers() int {
	if sh.Layers == 0 {
		return 1
	}
	return sh.Layers
}

func (sh ShadowSpec) effSeqLen() int {
	if sh.SeqLen == 0 {
		return 8
	}
	return sh.SeqLen
}

func (sh ShadowSpec) effThreshold() float64 {
	if sh.Threshold == 0 {
		return 0.1
	}
	return sh.Threshold
}

func (sh ShadowSpec) effEpochs() int {
	if sh.Epochs == 0 {
		return 2
	}
	return sh.Epochs
}

func (sh ShadowSpec) effMaxExamples() int {
	if sh.MaxExamples == 0 {
		return 256
	}
	return sh.MaxExamples
}

func (sh ShadowSpec) effSeed(trainSeed int64) int64 {
	if sh.Seed == 0 {
		return trainSeed
	}
	return sh.Seed
}

func (sh ShadowSpec) effDivergence() float64 {
	if sh.Divergence == 0 {
		return 0.1
	}
	return sh.Divergence
}

// ShadowBundle is the trained shadow scoring state: one network shared by
// every partition's shadow policy (Forward allocates its cell state per
// call, so concurrent partition drains are safe) plus the normalizer fitted
// with it. Weights are never checkpointed — training is deterministic from
// the spec, so Open and Resume both rebuild the identical bundle.
type ShadowBundle struct {
	Net        *lstm.Network
	Norm       trace.Normalizer
	Threshold  float64
	Divergence float64
}

// trainShadowBundle trains the spec's shadow network on the warm-up trace.
func trainShadowBundle(spec Spec, cfg Config) (*ShadowBundle, error) {
	sh := spec.Shadow
	net, err := lstm.New(lstm.Config{
		InputDim:  2,
		HiddenDim: sh.effHidden(),
		Layers:    sh.effLayers(),
		SeqLen:    sh.effSeqLen(),
	}, sh.effSeed(spec.trainSeed()))
	if err != nil {
		return nil, fmt.Errorf("serve: shadow network: %w", err)
	}
	warm, err := spec.warmTrace()
	if err != nil {
		return nil, err
	}
	if _, norm, err := policy.TrainLSTMOnTrace(net, warm, cfg.Transform, sh.effMaxExamples(), sh.effEpochs()); err != nil {
		return nil, fmt.Errorf("serve: shadow training: %w", err)
	} else {
		return &ShadowBundle{
			Net:        net,
			Norm:       norm,
			Threshold:  sh.effThreshold(),
			Divergence: sh.effDivergence(),
		}, nil
	}
}

// shadowTenantStats is one (partition, tenant) shadow accounting cell:
// cumulative, exactly like the live tenantPartStats counters it is compared
// against.
type shadowTenantStats struct {
	ops      uint64
	hits     uint64
	latSumNs int64
}

// shadowPart is one partition's shadow device: its own cache and LSTM
// policy fed the identical request sequence as the live partition, with
// service latency modeled as flat per-outcome constants (link round trip
// plus HBM hit / SSD read / SSD write penalties — no queueing, no inference
// overhead; the shadow estimates decision quality, not device contention).
// Host-routed requests (dataflow timing) never reach the live cache either,
// so the shadow skips them too. Touched only by the shard draining the
// partition, like every other partition field.
type shadowPart struct {
	cache *cache.Cache
	pol   *policy.LSTMPolicy

	hitNs   int64 // HBM access on a hit
	readNs  int64 // SSD read on a miss
	writeNs int64 // SSD write (bypassed write, write-back)
	rtNs    int64 // unloaded link round trip, paid by every request

	ten []shadowTenantStats
}

// newShadowPart builds one partition's shadow cache on the same geometry as
// the live partition. The latency constants come from the partition's own
// hbm/ssd models and an unloaded throwaway link (never the live link — its
// cumulative counters are part of the checkpoint).
func newShadowPart(cfg Config, sb *ShadowBundle, pc cache.Config, nTenants int, mem *hbm.Memory, dev *ssd.Device) (*shadowPart, error) {
	pol := policy.NewLSTMPolicy(policy.LSTMPolicyConfig{
		Net:        sb.Net,
		Normalizer: sb.Norm,
		Transform:  cfg.Transform,
		Threshold:  sb.Threshold,
		Admission:  true,
		Eviction:   true,
	})
	c, err := cache.New(pc, pol)
	if err != nil {
		return nil, fmt.Errorf("serve: shadow cache: %w", err)
	}
	link, err := cxl.NewLink(cfg.Link)
	if err != nil {
		return nil, err
	}
	return &shadowPart{
		cache:   c,
		pol:     pol,
		hitNs:   mem.HitLatency(),
		readNs:  dev.ReadPenalty(),
		writeNs: dev.WritePenalty(),
		rtNs:    link.RoundTrip(true, trace.PageSize, 0),
		ten:     make([]shadowTenantStats, nTenants),
	}, nil
}

// serve runs one request through the shadow cache and accounts its modeled
// latency. Called from drainBatch on the partition's shard goroutine.
func (sp *shadowPart) serve(req Request) {
	res := sp.cache.Access(req.Page, req.Write)
	lat := sp.rtNs
	switch {
	case res.Hit:
		lat += sp.hitNs
	case res.Admitted:
		lat += sp.hitNs
		if !req.Write {
			lat += sp.readNs // miss fill from the SSD
		}
		if res.WriteBack {
			lat += sp.writeNs
		}
	case req.Write:
		lat += sp.writeNs // bypassed write goes straight to the SSD
	default:
		lat += sp.readNs // bypassed read is served from the SSD
	}
	st := &sp.ten[req.Tenant]
	st.ops++
	if res.Hit {
		st.hits++
	}
	st.latSumNs += lat
}

// shadowTenantCell is one shadow accounting cell's persisted form.
type shadowTenantCell struct {
	Ops      uint64 `json:"ops,omitempty"`
	Hits     uint64 `json:"hits,omitempty"`
	LatSumNs int64  `json:"lat_sum_ns,omitempty"`
}

// shadowPartState is one partition's shadow runtime state. The network
// weights are deliberately absent (retrained deterministically at resume);
// everything the traffic mutated — cache contents, the policy's window and
// clock, the accounting cells — is here.
type shadowPartState struct {
	Cache   cache.State            `json:"cache"`
	Policy  policy.LSTMPolicyState `json:"policy"`
	Tenants []shadowTenantCell     `json:"tenants,omitempty"`
}

// exportState captures the shadow partition's mutable state.
func (sp *shadowPart) exportState() shadowPartState {
	st := shadowPartState{
		Cache:   sp.cache.Dump(),
		Policy:  sp.pol.State(),
		Tenants: make([]shadowTenantCell, len(sp.ten)),
	}
	for t, cell := range sp.ten {
		st.Tenants[t] = shadowTenantCell{Ops: cell.ops, Hits: cell.hits, LatSumNs: cell.latSumNs}
	}
	return st
}

// restoreState rewinds the shadow partition to an exported state.
func (sp *shadowPart) restoreState(st shadowPartState) error {
	if err := sp.cache.LoadDump(st.Cache); err != nil {
		return err
	}
	if err := sp.pol.RestoreState(st.Policy); err != nil {
		return err
	}
	if len(st.Tenants) != len(sp.ten) {
		return fmt.Errorf("serve: shadow state has %d tenant cells, spec builds %d", len(st.Tenants), len(sp.ten))
	}
	for t, cs := range st.Tenants {
		sp.ten[t] = shadowTenantStats{ops: cs.Ops, hits: cs.Hits, latSumNs: cs.LatSumNs}
	}
	return nil
}
