package serve

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/trace"
)

// TestTenantSharesNeverOvercommitRandom is the capacity-share property test:
// over 1000 randomized (geometry, budgets, traffic) episodes, no admission
// sequence may push a tenant past its block budget or the partition past its
// capacity, and the policy's residency counters must stay consistent with
// the ground-truth owner map. Random scores around the per-tenant thresholds
// exercise the bypass, grow, self-replace and cross-tenant-evict paths.
func TestTenantSharesNeverOvercommitRandom(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(99))
	modes := []policy.GMMMode{policy.GMMCachingOnly, policy.GMMEvictionOnly, policy.GMMCachingEviction}
	for iter := 0; iter < 1000; iter++ {
		ways := []int{2, 4, 8}[rng.Intn(3)]
		sets := 1 << uint(rng.Intn(4)) // 1..8 sets
		blocks := sets * ways
		nTenants := 1 + rng.Intn(4)

		// Random budgets: a mix of tight, generous and unconstrained, with
		// the sum capped at the partition (the tenantBudgets contract).
		budgets := make([]int, nTenants)
		remaining := blocks
		for i := range budgets {
			b := 1 + rng.Intn(blocks/nTenants+1)
			if b > remaining {
				b = remaining
			}
			budgets[i] = b
			remaining -= b
		}

		mode := modes[rng.Intn(len(modes))]
		pol := newTenantGMM(mode, budgets, 0.5)
		cfg := cache.Config{
			SizeBytes:  uint64(blocks) * trace.PageSize,
			BlockBytes: trace.PageSize,
			Ways:       ways,
		}
		c, err := cache.New(cfg, pol)
		if err != nil {
			t.Fatal(err)
		}
		pol.bindCache(c)

		// Random per-tenant thresholds so bypass and admit interleave.
		ths := make([]float64, nTenants)
		for i := range ths {
			ths[i] = rng.Float64()
		}
		pol.SetThresholds(ths)

		pageSpan := uint64(blocks * (1 + rng.Intn(4))) // contention: up to 4x capacity
		steps := 200 + rng.Intn(400)
		for s := 0; s < steps; s++ {
			tenant := rng.Intn(nTenants)
			pol.Begin(tenant, rng.Float64())
			c.Access(rng.Uint64()%pageSpan, rng.Intn(4) == 0)

			// Occasionally resize shares mid-traffic (the elastic-share
			// lever, at what would be a batch boundary): any legal transfer
			// must leave the invariants intact immediately.
			if s%71 == 70 && nTenants > 1 {
				donor, recv := rng.Intn(nTenants), rng.Intn(nTenants)
				if donor != recv && pol.budget[donor] > 1 {
					q := 1 + rng.Intn(pol.budget[donor]-1)
					pol.shiftBudget(donor, recv, q)
					if err := pol.checkShares(); err != nil {
						t.Fatalf("iter %d mode %v resize at step %d: %v", iter, mode, s, err)
					}
				}
			}

			if s%64 == 0 {
				if err := pol.checkShares(); err != nil {
					t.Fatalf("iter %d mode %v step %d: %v", iter, mode, s, err)
				}
			}
		}
		if err := pol.checkShares(); err != nil {
			t.Fatalf("iter %d mode %v end: %v", iter, mode, err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("iter %d mode %v: %v", iter, mode, err)
		}
		// The policy's total residency must equal the cache's occupancy —
		// the two structures may never drift apart.
		var total uint64
		for ti := range budgets {
			total += uint64(pol.Resident(ti))
		}
		if total != c.Occupancy() {
			t.Fatalf("iter %d: residency sum %d != cache occupancy %d", iter, total, c.Occupancy())
		}
	}
}

// tenantHarness builds a bound (cache, policy) pair plus an access helper
// for the pinned-semantics tests below.
func tenantHarness(t *testing.T, mode policy.GMMMode, budgets []int, blocks, ways int) (*cache.Cache, *tenantGMM, func(tenant int, page uint64, score float64) cache.AccessResult) {
	t.Helper()
	pol := newTenantGMM(mode, budgets, 0)
	cfg := cache.Config{SizeBytes: uint64(blocks) * trace.PageSize, BlockBytes: trace.PageSize, Ways: ways}
	c, err := cache.New(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	pol.bindCache(c)
	return c, pol, func(tenant int, page uint64, score float64) cache.AccessResult {
		pol.Begin(tenant, score)
		return c.Access(page, false)
	}
}

// TestTenantBudgetSelfReplacement pins the at-budget semantics exactly: a
// tenant at its budget admits only with a flat footprint — replacing its own
// lowest-scored block when the full target set holds one, or releasing its
// coldest block first otherwise — and never exceeds its budget.
func TestTenantBudgetSelfReplacement(t *testing.T) {
	t.Parallel()
	// One set of 4 ways, tenant 0 budgeted 2 blocks, tenant 1 budgeted 2.
	c, pol, access := tenantHarness(t, policy.GMMCachingEviction, []int{2, 2}, 4, 4)
	// Tenant 0 fills its budget.
	access(0, 0, 1.0)
	access(0, 1, 2.0)
	if pol.Resident(0) != 2 {
		t.Fatalf("resident = %d", pol.Resident(0))
	}
	// At budget, a page colder than the tenant's coldest resident block must
	// bypass: releasing a warmer block for it would churn the working set.
	if res := access(0, 5, 0.5); res.Admitted {
		t.Fatalf("colder-than-coldest page admitted at budget: %+v", res)
	}
	// At budget with free ways in the set: admit by releasing the tenant's
	// coldest block (page 0, score 1.0) — footprint stays flat, the hot new
	// page is not locked out.
	res := access(0, 2, 9.0)
	if !res.Admitted || res.Evicted || pol.Resident(0) != 2 {
		t.Fatalf("at-budget admission with free ways: %+v resident=%d", res, pol.Resident(0))
	}
	if c.Contains(0) || !c.Contains(1) || !c.Contains(2) {
		t.Fatal("release picked the wrong block")
	}
	// Tenant 1 takes the remaining ways.
	access(1, 3, 5.0)
	access(1, 7, 6.0)
	// Set now full. The swap-up rule applies in-set too: a page that cannot
	// beat tenant 0's own lowest-scored block (page 1, score 2.0) bypasses.
	if res := access(0, 6, 1.5); res.Admitted {
		t.Fatalf("in-set self-replacement admitted a colder page: %+v", res)
	}
	// Tenant 0 at budget must self-replace its lowest-scored block (page 1,
	// score 2.0), never tenant 1's.
	res = access(0, 4, 9.5)
	if !res.Admitted || !res.Evicted || res.VictimPage != 1 {
		t.Fatalf("self-replacement picked wrong victim: %+v", res)
	}
	if pol.Resident(0) != 2 || pol.Resident(1) != 2 {
		t.Fatalf("residency after self-replace: %d/%d", pol.Resident(0), pol.Resident(1))
	}
	if !c.Contains(2) || !c.Contains(4) || !c.Contains(3) || !c.Contains(7) {
		t.Fatal("unexpected resident set after self-replacement")
	}
	if err := pol.checkShares(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantCrossSetAccounting is the lockout regression test: a tenant at
// budget whose blocks all live in other sets must still be able to admit
// into a hot set, by releasing its coldest block elsewhere — before the fix
// it bypassed forever ("admission granted but no victim available" could
// never resolve). The no-overcommit invariant must hold throughout.
func TestTenantCrossSetAccounting(t *testing.T) {
	t.Parallel()
	// Two sets of 2 ways. Tenant 0 fills set 0 (pages 0, 2); tenant 1 fills
	// set 1 (pages 1, 3). Both are at budget.
	c, pol, access := tenantHarness(t, policy.GMMCachingEviction, []int{2, 2}, 4, 2)
	access(0, 0, 1.0)
	access(0, 2, 2.0)
	access(1, 1, 3.0)
	access(1, 3, 4.0)
	// Tenant 0 now needs page 5 (set 1), where it owns nothing: it must
	// release its own coldest block (page 0) and displace set 1's lowest-
	// scored block (tenant 1's page 1) — tenant 0 stays exactly at budget,
	// tenant 1 shrinks below its ceiling (a cap, not a guarantee).
	res := access(0, 5, 9.0)
	if !res.Admitted || !res.Evicted || res.VictimPage != 1 {
		t.Fatalf("cross-set admission = %+v, want admit evicting page 1", res)
	}
	if pol.Resident(0) != 2 || pol.Resident(1) != 1 {
		t.Fatalf("residency after cross-set admit: %d/%d, want 2/1", pol.Resident(0), pol.Resident(1))
	}
	if c.Contains(0) || !c.Contains(2) || !c.Contains(5) || !c.Contains(3) {
		t.Fatal("unexpected resident set after cross-set admission")
	}
	if err := pol.checkShares(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A tenant with no resident blocks and a zero budget still bypasses —
	// there is nothing to release, and growth is forbidden.
	pol.budget[0] = 0
	c.EvictAt(0, ownerWay(pol, 0, 0)) // drop tenant 0's remaining set-0 block
	c.EvictAt(1, ownerWay(pol, 1, 0)) // and its set-1 block
	if pol.Resident(0) != 0 {
		t.Fatalf("resident = %d after dropping all of tenant 0", pol.Resident(0))
	}
	pol.Begin(0, 9.9)
	if res := c.Access(6, false); res.Admitted {
		t.Fatalf("zero-budget tenant admitted: %+v", res)
	}
	if err := pol.checkShares(); err != nil {
		t.Fatal(err)
	}
}

// ownerWay returns the first way of set si owned by tenant t, or -1.
func ownerWay(p *tenantGMM, si, t int) int {
	for w, o := range p.owner[si] {
		if int(o) == t {
			return w
		}
	}
	return -1
}

// TestTenantShiftBudget pins the share-resize primitive: budgets move in
// fixed quanta, the donor's overflow is evicted coldest-first immediately,
// and the invariants hold the moment shiftBudget returns.
func TestTenantShiftBudget(t *testing.T) {
	t.Parallel()
	// Two sets of 2 ways; tenant 0 holds 3 blocks, tenant 1 one block.
	c, pol, access := tenantHarness(t, policy.GMMCachingEviction, []int{3, 1}, 4, 2)
	access(0, 0, 5.0) // set 0
	access(0, 2, 1.0) // set 0 — tenant 0's coldest
	access(0, 1, 4.0) // set 1
	access(1, 3, 2.0) // set 1
	if pol.Resident(0) != 3 || pol.Resident(1) != 1 {
		t.Fatalf("setup residency %d/%d", pol.Resident(0), pol.Resident(1))
	}
	// Move two blocks of capacity from tenant 0 to tenant 1: tenant 0's two
	// coldest blocks (pages 2 then 1) are evicted right away.
	if n := pol.shiftBudget(0, 1, 2); n != 2 {
		t.Fatalf("shiftBudget evicted %d blocks, want 2", n)
	}
	if pol.Budget(0) != 1 || pol.Budget(1) != 3 {
		t.Fatalf("budgets after shift = %d/%d, want 1/3", pol.Budget(0), pol.Budget(1))
	}
	if pol.Resident(0) != 1 || !c.Contains(0) || c.Contains(2) || c.Contains(1) {
		t.Fatalf("overflow eviction kept the wrong blocks (resident=%d)", pol.Resident(0))
	}
	if err := pol.checkShares(); err != nil {
		t.Fatal(err)
	}
	// The receiver can now grow into the freed capacity.
	access(1, 5, 3.0) // set 1, the way freed by the overflow eviction
	access(1, 4, 3.5) // set 0, the other freed way
	if pol.Resident(1) != 3 {
		t.Fatalf("receiver resident = %d, want 3", pol.Resident(1))
	}
	// A shift with no overflow evicts nothing.
	if n := pol.shiftBudget(1, 0, 0); n != 0 {
		t.Fatalf("zero-quantum shift evicted %d blocks", n)
	}
	if err := pol.checkShares(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
