package serve

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/trace"
)

// TestTenantSharesNeverOvercommitRandom is the capacity-share property test:
// over 1000 randomized (geometry, budgets, traffic) episodes, no admission
// sequence may push a tenant past its block budget or the partition past its
// capacity, and the policy's residency counters must stay consistent with
// the ground-truth owner map. Random scores around the per-tenant thresholds
// exercise the bypass, grow, self-replace and cross-tenant-evict paths.
func TestTenantSharesNeverOvercommitRandom(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(99))
	modes := []policy.GMMMode{policy.GMMCachingOnly, policy.GMMEvictionOnly, policy.GMMCachingEviction}
	for iter := 0; iter < 1000; iter++ {
		ways := []int{2, 4, 8}[rng.Intn(3)]
		sets := 1 << uint(rng.Intn(4)) // 1..8 sets
		blocks := sets * ways
		nTenants := 1 + rng.Intn(4)

		// Random budgets: a mix of tight, generous and unconstrained, with
		// the sum capped at the partition (the tenantBudgets contract).
		budgets := make([]int, nTenants)
		remaining := blocks
		for i := range budgets {
			b := 1 + rng.Intn(blocks/nTenants+1)
			if b > remaining {
				b = remaining
			}
			budgets[i] = b
			remaining -= b
		}

		mode := modes[rng.Intn(len(modes))]
		pol := newTenantGMM(mode, budgets, 0.5)
		cfg := cache.Config{
			SizeBytes:  uint64(blocks) * trace.PageSize,
			BlockBytes: trace.PageSize,
			Ways:       ways,
		}
		c, err := cache.New(cfg, pol)
		if err != nil {
			t.Fatal(err)
		}

		// Random per-tenant thresholds so bypass and admit interleave.
		ths := make([]float64, nTenants)
		for i := range ths {
			ths[i] = rng.Float64()
		}
		pol.SetThresholds(ths)

		pageSpan := uint64(blocks * (1 + rng.Intn(4))) // contention: up to 4x capacity
		steps := 200 + rng.Intn(400)
		for s := 0; s < steps; s++ {
			tenant := rng.Intn(nTenants)
			pol.Begin(tenant, rng.Float64())
			c.Access(rng.Uint64()%pageSpan, rng.Intn(4) == 0)

			if s%64 == 0 {
				if err := pol.checkShares(); err != nil {
					t.Fatalf("iter %d mode %v step %d: %v", iter, mode, s, err)
				}
			}
		}
		if err := pol.checkShares(); err != nil {
			t.Fatalf("iter %d mode %v end: %v", iter, mode, err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("iter %d mode %v: %v", iter, mode, err)
		}
		// The policy's total residency must equal the cache's occupancy —
		// the two structures may never drift apart.
		var total uint64
		for ti := range budgets {
			total += uint64(pol.Resident(ti))
		}
		if total != c.Occupancy() {
			t.Fatalf("iter %d: residency sum %d != cache occupancy %d", iter, total, c.Occupancy())
		}
	}
}

// TestTenantBudgetSelfReplacement pins the at-budget semantics exactly: a
// tenant at its budget can admit only by replacing one of its own blocks in
// the same set, and admissions that would grow its footprint bypass.
func TestTenantBudgetSelfReplacement(t *testing.T) {
	t.Parallel()
	// One set of 4 ways, tenant 0 budgeted 2 blocks, tenant 1 budgeted 2.
	pol := newTenantGMM(policy.GMMCachingEviction, []int{2, 2}, 0)
	cfg := cache.Config{SizeBytes: 4 * trace.PageSize, BlockBytes: trace.PageSize, Ways: 4}
	c, err := cache.New(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	access := func(tenant int, page uint64, score float64) cache.AccessResult {
		pol.Begin(tenant, score)
		return c.Access(page, false)
	}
	// Tenant 0 fills its budget.
	access(0, 0, 1.0)
	access(0, 1, 2.0)
	if pol.Resident(0) != 2 {
		t.Fatalf("resident = %d", pol.Resident(0))
	}
	// At budget with free ways in the set: must bypass, not grow.
	res := access(0, 2, 9.0)
	if res.Admitted || pol.Resident(0) != 2 {
		t.Fatalf("at-budget admission grew the footprint: %+v resident=%d", res, pol.Resident(0))
	}
	// Tenant 1 takes the remaining ways.
	access(1, 2, 5.0)
	access(1, 3, 6.0)
	// Set now full. Tenant 0 at budget must self-replace its lowest-scored
	// block (page 0, score 1.0), never tenant 1's.
	res = access(0, 4, 9.0)
	if !res.Admitted || !res.Evicted || res.VictimPage != 0 {
		t.Fatalf("self-replacement picked wrong victim: %+v", res)
	}
	if pol.Resident(0) != 2 || pol.Resident(1) != 2 {
		t.Fatalf("residency after self-replace: %d/%d", pol.Resident(0), pol.Resident(1))
	}
	if !c.Contains(1) || !c.Contains(4) || !c.Contains(2) || !c.Contains(3) {
		t.Fatal("unexpected resident set after self-replacement")
	}
	if err := pol.checkShares(); err != nil {
		t.Fatal(err)
	}
}
