// Package serve is the online serving subsystem: a long-running, sharded
// cache service that models the ICGMM device under live traffic instead of
// the offline batch replay of internal/experiments. Requests from an
// open-loop source are ingested in batches, miss-admission scores are
// computed through the GMM's batched inference path, and every request is
// routed through the cxl/hbm/ssd latency models of its address partition for
// end-to-end service-time accounting. A background drift detector watches
// the hit ratio and triggers a mini-batch EM refit whose result is
// hot-swapped into the scoring path (see refresh.go).
//
// # Determinism
//
// The service carries the experiment engine's contract over to serving:
// results are bit-identical at any shard count. The decomposition that makes
// that possible is fixed logical *partitions* (each owning a slice of the
// cache, its own policy engine, latency models and histograms, keyed by page
// address) driven by a pool of *shards* — worker goroutines that drain
// partitions concurrently within each batch. Admission scores derive from
// the request's global arrival index alone (timestampFor is a pure function,
// so per-partition policies never run shard-local Algorithm 1 clocks), and
// aggregate metrics merge per-partition state in partition order. Shard
// count therefore affects wall clock only; partition count is part of the
// configuration and does change results, exactly like cache geometry.
package serve

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/fpga"
	"repro/internal/gmm"
	"repro/internal/hbm"
	"repro/internal/policy"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Request is one page-granular operation presented to the service.
type Request struct {
	// Page is the 4 KiB device page index.
	Page uint64
	// Write marks store requests.
	Write bool
	// ArrivalNs is the open-loop arrival time in virtual nanoseconds.
	ArrivalNs int64
	// Seq is the global arrival index; the service assigns it at ingest.
	Seq uint64
	// Tenant indexes Config.Tenants (0 for single-tenant sources); the
	// service accounts and capacity-shares the request under it.
	Tenant int
}

// Config assembles the serving subsystem.
type Config struct {
	// Shards is the worker pool draining partitions each batch: 0 = one per
	// core, 1 = sequential. Results are bit-identical at any value.
	Shards int
	// Partitions is the fixed logical decomposition of the address space;
	// each partition owns Cache.SizeBytes/Partitions of cache plus its own
	// latency models. Unlike Shards it is part of the simulated
	// configuration: changing it changes results.
	Partitions int
	// Cache is the total device cache geometry, split evenly across
	// partitions.
	Cache cache.Config
	// SSD is the backing-store latency profile; SSDChannels is the channel
	// count per partition.
	SSD         ssd.Profile
	SSDChannels int
	// HBM models each partition's device-DRAM banks.
	HBM hbm.Config
	// Link characterizes the CXL port; every request pays one round trip.
	Link cxl.LinkConfig
	// Mode picks the GMM strategy (default caching+eviction).
	Mode policy.GMMMode
	// Scoring picks the admission scorer datapath (default float64; see
	// ScoringKind). Training always fits in float; q16 quantizes each fitted
	// model at install time.
	Scoring ScoringKind
	// GMMInference is the policy engine's per-miss inference latency;
	// Overlap hides it behind the SSD access as in Sec. 4.3.
	GMMInference time.Duration
	Overlap      bool
	// Transform supplies the Algorithm 1 windowing parameters; timestamps
	// derive from the global arrival index through it. For online serving
	// the warm-up trace must cover at least one full access shot
	// (LenWindow*LenAccessShot requests after trimming): otherwise the
	// model never sees the upper timestamp range, scores it as
	// out-of-distribution once the serving clock passes the warm-up
	// horizon, and bypasses structurally hot pages.
	Transform trace.TransformConfig
	// Train configures initial training and refresh refits; Workers
	// defaults to Shards so the E-step fans out over the same pool.
	Train gmm.TrainConfig
	// ThresholdPct is the admission-threshold quantile over training
	// scores (see policy.CalibrateThreshold).
	ThresholdPct float64
	// BatchSize is the ingest batch length — the unit of batched GMM
	// admission scoring and of drift-detector observation.
	BatchSize int
	// Refresh configures online model refresh (off by default).
	Refresh RefreshConfig
	// Tenants, when non-empty, turns on multi-tenant serving: requests are
	// accounted under Request.Tenant (an index into this slice) and each
	// tenant's HBM capacity share is enforced at admission. Empty means one
	// anonymous tenant owning the whole cache.
	Tenants []TenantSpec
	// Control parameterizes the adaptive per-tenant threshold controller;
	// it activates only for tenants that declare a QoS target.
	Control ControlConfig
	// Device selects the timing backend requests are served through: the
	// flat latency-constant model (default — the historical behaviour) or
	// the fpga dataflow pipeline with host routing and a bounded
	// outstanding-request window. See DeviceConfig.
	Device DeviceConfig
	// Shadow, when non-nil, runs the trained shadow policy bundle alongside
	// the live GMM: every partition gets a shadow cache fed the identical
	// request sequence, and interval/final records carry per-tenant shadow
	// hit-ratio and latency deltas. The shadow is strictly read-side — it
	// never touches live cache state, the serving clock, or (absent a
	// shadow block in the spec) the metric byte stream.
	Shadow *ShadowBundle
	// Metrics, when non-nil, receives JSONL metric records: one "interval"
	// record every ReportEvery batches, one "refresh" record per installed
	// model, and "partition" + "summary" records when the run ends.
	Metrics     io.Writer
	ReportEvery int
}

// DefaultConfig mirrors the paper's device configuration as an online
// service: 64 MiB cache over 16 partitions, TLC SSD, 1 us DRAM hits, 3 us
// GMM inference overlapped with the SSD access.
func DefaultConfig() Config {
	return Config{
		Shards:       0,
		Partitions:   16,
		Cache:        cache.DefaultConfig(),
		SSD:          ssd.TLC(),
		SSDChannels:  8,
		HBM:          hbm.DefaultConfig(),
		Link:         cxl.DefaultLinkConfig(),
		Mode:         policy.GMMCachingEviction,
		GMMInference: 3 * time.Microsecond,
		Overlap:      true,
		Transform:    trace.DefaultTransformConfig(),
		Train:        gmm.DefaultTrainConfig(),
		ThresholdPct: 0.02,
		BatchSize:    8192,
		Refresh:      DefaultRefreshConfig(),
		Control:      DefaultControlConfig(),
		Device:       DefaultDeviceConfig(),
		ReportEvery:  16,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Partitions <= 0 {
		return errors.New("serve: need at least one partition")
	}
	if c.BatchSize <= 0 {
		return errors.New("serve: non-positive batch size")
	}
	if c.SSDChannels <= 0 {
		return errors.New("serve: non-positive SSD channel count")
	}
	if c.ThresholdPct < 0 || c.ThresholdPct > 1 {
		return errors.New("serve: threshold percentile outside [0,1]")
	}
	if c.Scoring != ScoringFloat64 && c.Scoring != ScoringQ16 {
		return fmt.Errorf("serve: unknown scoring kind %d", c.Scoring)
	}
	if err := c.SSD.Validate(); err != nil {
		return err
	}
	if err := c.HBM.Validate(); err != nil {
		return err
	}
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if err := c.Refresh.Validate(); err != nil {
		return err
	}
	if err := ValidateTenants(c.Tenants); err != nil {
		return err
	}
	if err := c.Control.Validate(); err != nil {
		return err
	}
	if err := c.Device.Validate(); err != nil {
		return err
	}
	// Queue depth only exists under dataflow timing: the flat model has no
	// outstanding window, so a queue-depth QoS target could never measure.
	if c.Device.Timing != TimingDataflow {
		for _, t := range c.Tenants {
			if t.QoS != nil && t.QoS.Metric == QoSQueueDepth {
				return fmt.Errorf("serve: tenant %q: %q QoS needs \"timing\": \"dataflow\"", t.Name, QoSQueueDepth)
			}
		}
	}
	pc, err := c.partitionCache()
	if err != nil {
		return err
	}
	if _, err := tenantBudgets(c.Tenants, pc); err != nil {
		return err
	}
	return nil
}

// partitionCache derives one partition's cache geometry from the total.
func (c Config) partitionCache() (cache.Config, error) {
	pc := c.Cache
	if pc.SizeBytes%uint64(c.Partitions) != 0 {
		return pc, fmt.Errorf("serve: cache size %d not divisible by %d partitions", pc.SizeBytes, c.Partitions)
	}
	pc.SizeBytes /= uint64(c.Partitions)
	if err := pc.Validate(); err != nil {
		return pc, fmt.Errorf("serve: per-partition cache: %w", err)
	}
	return pc, nil
}

// trainConfig is the refit configuration with the worker default applied.
func (c Config) trainConfig() gmm.TrainConfig {
	t := c.Train
	if t.Workers == 0 {
		t.Workers = c.Shards
	}
	return t
}

// Bundle is the hot-swappable scoring state: the serving scorer, the float
// model behind it, the coordinate normalizer fitted with it, and the
// calibrated admission threshold. The service publishes bundles through an
// atomic pointer, so a refresh replaces all of it together without blocking
// serving.
type Bundle struct {
	// Scorer is what the admission path scores through: the float Model
	// itself, or its quantized form under ScoringQ16.
	Scorer    policy.Scorer
	Norm      trace.Normalizer
	Threshold float64
	// Model is the float64 model behind Scorer. It is what checkpoints
	// persist (the quantized form is re-derived deterministically at
	// resume); nil only for hand-assembled bundles, where a *gmm.Model
	// Scorer stands in.
	Model *gmm.Model
	// Quant reports the quantization fidelity when Scorer is the q16 form.
	Quant gmm.QuantReport
}

// buildBundle packages a fitted float model for serving under the configured
// scoring kind: pick (and, for q16, derive) the scorer, then calibrate the
// admission threshold against the scorer that will actually serve — GMM
// densities are only comparable within one datapath, so a threshold
// calibrated in float would sit on the wrong scale for quantized scores.
// A model whose constants saturate Q16.16 is refused: its fixed-point
// densities are unfaithful with no other signal.
func buildBundle(model *gmm.Model, norm trace.Normalizer, normed []trace.Sample, cfg Config) (*Bundle, error) {
	b := &Bundle{Model: model, Norm: norm}
	switch cfg.Scoring {
	case ScoringQ16:
		qm, rep := gmm.Quantize(model)
		if rep.Saturated > 0 {
			return nil, fmt.Errorf("serve: q16 scoring: %d model constants saturate Q16.16 (max representable error %.3g); refusing unfaithful fixed-point model", rep.Saturated, rep.MaxAbsErr)
		}
		b.Scorer = qm
		b.Quant = rep
	default:
		b.Scorer = model
	}
	b.Threshold = policy.CalibrateThreshold(b.Scorer, normed, cfg.ThresholdPct)
	return b, nil
}

// TrainBundle runs the offline Sec. 3 flow on a warm-up trace and packages
// the result for serving: preprocess, fit the normalizer and the GMM (E-step
// sharded per Config.Shards), and calibrate the admission threshold against
// the configured scoring datapath.
func TrainBundle(tr trace.Trace, cfg Config) (*Bundle, error) {
	samples := trace.Preprocess(tr, cfg.Transform)
	if len(samples) < 2 {
		return nil, errors.New("serve: warm-up trace too short after preprocessing")
	}
	norm := trace.FitNormalizer(samples)
	normed := norm.ApplyAll(samples)
	res, err := gmm.Fit(normed, cfg.trainConfig())
	if err != nil {
		return nil, fmt.Errorf("serve: training bundle: %w", err)
	}
	b, err := buildBundle(res.Model, norm, normed, cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: training bundle: %w", err)
	}
	return b, nil
}

// timestampFor is the Algorithm 1 timestamp of the request with global
// arrival index seq — the closed form of trace.TimestampTransformer, which
// emits floor(i/LenWindow) mod LenAccessShot for the i-th call. Being a pure
// function of seq (never of which shard serves the request), it is what
// keeps batched admission scoring identical at any shard count.
func timestampFor(seq uint64, lenWindow, lenAccessShot int) int {
	return int((seq / uint64(lenWindow)) % uint64(lenAccessShot))
}

// partitionOf routes a page to its partition through a fixed bit-mixing hash
// (the splitmix64 finalizer). Routing by page%nParts instead would correlate
// with the partition cache's own set indexing (page%numSets): when nParts
// divides numSets — every power-of-two geometry — each partition's pages
// alias into only numSets/nParts of its sets, silently wasting most of the
// cache. The hash decorrelates the two mappings; it is a pure function of
// the page, so routing stays deterministic at any shard count.
func partitionOf(page, nParts uint64) uint64 {
	x := page
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x % nParts
}

// scoredReq is one routed request with its Algorithm 1 timestamp.
// Normalization and scoring happen partition-side, on the shard pool.
type scoredReq struct {
	req Request
	ts  int
}

// partition is one address-partition's worth of device state. All fields are
// touched only by the shard draining the partition (inside a batch) or by
// the ingest loop (between batches), so no locking is needed.
type partition struct {
	cache *cache.Cache
	pol   *tenantGMM
	mem   *hbm.Memory
	dev   *ssd.Device
	link  *cxl.Link

	// model is the timing backend every request is served through; timing
	// names which kind it is (flat gates requests on the partition clock,
	// dataflow queues them in the fpga timeline).
	model  deviceModel
	timing TimingKind

	// shadow, when non-nil, is the partition's shadow cache + policy
	// (Config.Shadow); it replays the batch after the live drain.
	shadow *shadowPart

	now        int64 // completion time of the last request served here
	engineBusy int64
	ops        uint64
	hist       *stats.Histogram
	ten        []tenantPartStats // per-tenant accounting cells

	// Dataflow accounting (zero under flat timing): requests routed to host
	// DRAM, device-routed requests, the summed outstanding-window depth
	// those observed at arrival, and how many of them stalled on a full
	// window.
	hostOps    uint64
	dfOps      uint64
	dfQueueSum uint64
	dfStalls   uint64

	batchOps, batchHits uint64

	queue  []scoredReq
	pages  []float64
	times  []float64
	scores []float64
	// scratch holds the partition's batched-scoring workspace. Each
	// partition owns its own because partitions score the shared bundle
	// concurrently on shard goroutines; sharing one through the model would
	// race.
	scratch gmm.Scratch
	// rsLocs is rescoreResident's resident-block location buffer, kept here
	// (with pages/times/scores reuse) so periodic refreshes stop allocating.
	rsLocs []scoreLoc
}

// scoreLoc addresses one resident cache block for batched rescoring.
type scoreLoc struct{ set, way int }

// Service is the running subsystem. Build with New, drive with Run.
type Service struct {
	cfg     Config
	tcfg    trace.TransformConfig
	runner  *engine.Runner
	parts   []*partition
	tenants []*tenantState
	seq     uint64
	batches uint64

	refresher *refresher
	ctrl      *controller
	window    *sampleWindow
	metrics   *metricsWriter
	// obs, when non-nil, receives serving-path events (see Session.Observe).
	// Called only at batch boundaries on the session's goroutine; purely
	// read-side, so it never affects the deterministic output.
	obs func(Event)

	intervalThroughput stats.Welford
	lastIntervalOps    uint64
	lastMakespan       int64

	// Dataflow interval cursors: the last-emitted values of the cumulative
	// queue/stall/busy counters, so emitInterval reports per-interval deltas
	// (see metrics.go). All zero under flat timing.
	lastDFQueueSum uint64
	lastDFOps      uint64
	lastDFStalls   uint64
	lastGMMBusy    int64
	lastSSDBusy    int64
	lastCtrlBusy   int64
	lastWallCycles int64
}

// New builds a service around an initial scoring bundle (see TrainBundle).
func New(cfg Config, b *Bundle) (*Service, error) {
	if b == nil || b.Scorer == nil {
		return nil, errors.New("serve: nil scoring bundle")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pc, err := cfg.partitionCache()
	if err != nil {
		return nil, err
	}
	tcfg := cfg.Transform.Sanitized()
	// The tenant list always has at least one entry: an anonymous default
	// tenant owning the whole cache when Config.Tenants is empty.
	specs := cfg.Tenants
	if len(specs) == 0 {
		specs = []TenantSpec{{Name: "default", Share: 1}}
	}
	tenants := make([]*tenantState, len(specs))
	for i, ts := range specs {
		tenants[i] = &tenantState{spec: ts, mult: 1, threshold: b.Threshold, ctrlDir: -1}
	}
	budgets, err := tenantBudgets(cfg.Tenants, pc)
	if err != nil {
		return nil, err
	}
	hasQoS := false
	for _, ts := range specs {
		if ts.QoS != nil {
			hasQoS = true
		}
	}
	parts := make([]*partition, cfg.Partitions)
	for i := range parts {
		// Every admission score reaches the policy through Begin, fed from
		// the batched inference pass; threshold updates arrive via
		// SetThresholds at batch boundaries.
		pol := newTenantGMM(cfg.Mode, budgets, b.Threshold)
		c, err := cache.New(pc, pol)
		if err != nil {
			return nil, err
		}
		pol.bindCache(c)
		mem, err := hbm.New(cfg.HBM)
		if err != nil {
			return nil, err
		}
		dev, err := ssd.New(cfg.SSD, cfg.SSDChannels)
		if err != nil {
			return nil, err
		}
		link, err := cxl.NewLink(cfg.Link)
		if err != nil {
			return nil, err
		}
		ten := make([]tenantPartStats, len(specs))
		for t := range ten {
			ten[t] = newTenantPartStats(hasQoS)
		}
		var model deviceModel
		switch cfg.Device.Timing {
		case TimingDataflow:
			tl, err := fpga.NewDeviceTimeline(cfg.Device.Dataflow)
			if err != nil {
				return nil, err
			}
			model = &dataflowModel{df: device.Dataflow{
				Link:      link,
				Timeline:  tl,
				HostPages: cfg.Device.HostPages,
				HostLatNs: cfg.Device.HostLatencyNs,
			}}
		default:
			model = &flatModel{flat: device.Flat{
				Mem:        mem,
				Dev:        dev,
				Link:       link,
				OverheadNs: cfg.GMMInference.Nanoseconds(),
				Overlap:    cfg.Overlap,
			}}
		}
		var shadow *shadowPart
		if cfg.Shadow != nil {
			if shadow, err = newShadowPart(cfg, cfg.Shadow, pc, len(specs), mem, dev); err != nil {
				return nil, err
			}
		}
		parts[i] = &partition{
			cache:  c,
			pol:    pol,
			mem:    mem,
			dev:    dev,
			link:   link,
			model:  model,
			timing: cfg.Device.Timing,
			shadow: shadow,
			hist:   stats.DefaultLatencyHistogram(),
			ten:    ten,
		}
	}
	s := &Service{
		cfg:     cfg,
		tcfg:    tcfg,
		runner:  engine.NewRunner(cfg.Shards),
		parts:   parts,
		tenants: tenants,
		window:  newSampleWindow(cfg.Refresh.WindowSamples),
		metrics: newMetricsWriter(cfg.Metrics),
	}
	s.refresher = newRefresher(s, b)
	s.ctrl = newController(s, cfg.Control)
	return s, nil
}

// applyThresholds recomputes every tenant's effective admission threshold
// (active bundle base x controller multiplier) and publishes the result to
// every partition's policy engine. Called only at batch boundaries.
func (s *Service) applyThresholds() {
	base := s.refresher.bundle.Load().Threshold
	ths := make([]float64, len(s.tenants))
	for i, t := range s.tenants {
		t.threshold = base * t.mult
		ths[i] = t.threshold
	}
	for _, p := range s.parts {
		p.pol.SetThresholds(ths)
	}
}

// transferShare moves q blocks per partition of HBM capacity from tenant
// donor to tenant recv: every partition's budgets shift identically and the
// donor's overflow blocks are evicted coldest-first, all at the current batch
// boundary — never mid-batch — so the no-overcommit invariant holds through
// the resize. The per-partition work is partition-local and fans out over
// the shard pool; one "share" metric record documents the move. The evicted
// blocks' write-backs land in the cache statistics (like any eviction);
// their device time is not charged to the serving clock, modeling a
// background migration drained off the critical path between batches.
func (s *Service) transferShare(donor, recv, q int) {
	evicted := make([]int, len(s.parts))
	_ = engine.ForEach(s.runner, s.parts, func(i int, p *partition) error {
		evicted[i] = p.pol.shiftBudget(donor, recv, q)
		return nil
	})
	var freed, donorBudget, recvBudget uint64
	for i, p := range s.parts {
		freed += uint64(evicted[i])
		donorBudget += uint64(p.pol.Budget(donor))
		recvBudget += uint64(p.pol.Budget(recv))
	}
	s.metrics.write(metricRecord{
		Kind:              "share",
		Batch:             s.batches,
		Tenant:            s.tenants[recv].spec.Name,
		Donor:             s.tenants[donor].spec.Name,
		QuantumBlocks:     uint64(q * len(s.parts)),
		BudgetBlocks:      recvBudget,
		DonorBudgetBlocks: donorBudget,
		EvictedBlocks:     &freed,
	})
	s.emit(Event{
		Kind:   EventShare,
		Tenant: s.tenants[recv].spec.Name,
		Donor:  s.tenants[donor].spec.Name,
		Blocks: uint64(q * len(s.parts)),
	})
}

// rescoreResident re-derives every resident block's stored eviction score
// under the given bundle, at the install-time Algorithm 1 timestamp. GMM
// densities are only comparable within one model: after a refresh, scores
// stored by the previous model sit on an arbitrarily different scale, and
// min-score eviction comparing across scales can make stale blocks immortal
// (observed as a tenant never re-warming its share after a working-set
// shift). Runs at batch boundaries on the shard pool; block order within a
// partition is fixed (set, then way), so results are deterministic at any
// shard count.
func (s *Service) rescoreResident(b *Bundle) {
	ts := timestampFor(s.seq, s.tcfg.LenWindow, s.tcfg.LenAccessShot)
	_ = engine.ForEach(s.runner, s.parts, func(_ int, p *partition) error {
		// Reuse the partition's batch buffers: refreshes arrive at batch
		// boundaries, when the queue is drained and pages/times/scores are
		// idle, so growing them here just pre-sizes the next drain.
		locs, pages, times := p.rsLocs[:0], p.pages[:0], p.times[:0]
		p.cache.Scan(func(set, way int, page uint64, _ bool) {
			np, nt := b.Norm.ApplyPageTime(page, ts)
			locs = append(locs, scoreLoc{set, way})
			pages = append(pages, np)
			times = append(times, nt)
		})
		p.rsLocs, p.pages, p.times = locs, pages, times
		if len(locs) == 0 {
			return nil
		}
		if cap(p.scores) < len(locs) {
			p.scores = make([]float64, len(locs))
		}
		scores := p.scores[:len(locs)]
		scoreBatch(b.Scorer, pages, times, scores, &p.scratch)
		for i, l := range locs {
			p.pol.setScore(l.set, l.way, scores[i])
		}
		return nil
	})
}

// Bundle returns the currently active scoring bundle.
func (s *Service) Bundle() *Bundle { return s.refresher.bundle.Load() }

// Refreshes returns how many refreshed models have been installed.
func (s *Service) Refreshes() uint64 { return s.refresher.installed }

// Run ingests the source until it is exhausted, then waits for any in-flight
// asynchronous refresh, emits the final metric records, and returns the
// aggregate snapshot.
func (s *Service) Run(src Source) (*Snapshot, error) {
	buf := make([]Request, s.cfg.BatchSize)
	for {
		n := src.Next(buf)
		if n == 0 {
			break
		}
		if err := s.processBatch(buf[:n]); err != nil {
			return nil, err
		}
	}
	s.refresher.wait()
	snap := s.Snapshot()
	if err := s.metrics.writeFinal(snap, len(s.cfg.Tenants) > 0); err != nil {
		return nil, err
	}
	return snap, nil
}

// processBatch runs one batch through the pipeline: ingest (assign global
// sequence numbers, derive Algorithm 1 timestamps, route to partitions),
// batched GMM admission scoring plus cache/latency accounting per partition
// on the shard pool, then batch-boundary work (drift detection, refresh
// installation, metrics).
func (s *Service) processBatch(batch []Request) error {
	s.refresher.installPending()
	b := s.refresher.bundle.Load()
	nParts := uint64(len(s.parts))
	// The ingest loop is the pipeline's only serial segment, so it does the
	// bare minimum per request: sequence assignment, timestamp derivation,
	// routing, and — only when refresh can ever read it — the refit window.
	windowOn := s.cfg.Refresh.Mode != RefreshOff
	for i := range batch {
		if t := batch[i].Tenant; t < 0 || t >= len(s.tenants) {
			return fmt.Errorf("serve: request tenant %d outside configured tenants [0,%d)", t, len(s.tenants))
		}
		batch[i].Seq = s.seq
		ts := timestampFor(s.seq, s.tcfg.LenWindow, s.tcfg.LenAccessShot)
		if windowOn {
			s.window.push(float64(batch[i].Page), float64(ts))
		}
		p := s.parts[partitionOf(batch[i].Page, nParts)]
		p.queue = append(p.queue, scoredReq{req: batch[i], ts: ts})
		s.seq++
	}
	if err := engine.ForEach(s.runner, s.parts, func(_ int, p *partition) error {
		p.drainBatch(b)
		return nil
	}); err != nil {
		return err
	}

	var ops, hits uint64
	for _, p := range s.parts {
		ops += p.batchOps
		hits += p.batchHits
		p.batchOps, p.batchHits = 0, 0
	}
	s.batches++
	hitRatio := 0.0
	if ops > 0 {
		hitRatio = float64(hits) / float64(ops)
	}
	s.refresher.observe(hitRatio)

	if s.ctrl != nil && s.batches%uint64(s.ctrl.cfg.Every) == 0 {
		s.ctrl.step()
	}
	if s.cfg.ReportEvery > 0 && s.batches%uint64(s.cfg.ReportEvery) == 0 {
		s.emitInterval(hitRatio)
	}
	// Surface metrics-sink write failures at the batch that hit them (any
	// record kind — interval, refresh, share, control — may have tripped the
	// sticky error) instead of letting a full disk go unnoticed until Close.
	if s.metrics.err != nil {
		return fmt.Errorf("serve: metrics sink: %w", s.metrics.err)
	}
	return nil
}

// drainBatch scores the partition's queued requests in one batched inference
// call and serves them in arrival order. Runs on a shard goroutine; touches
// only partition-local state plus the immutable bundle.
func (p *partition) drainBatch(b *Bundle) {
	n := len(p.queue)
	if n == 0 {
		return
	}
	// Grow each buffer on its own: rescoreResident reuses them and appends
	// independently, so their capacities can diverge.
	if cap(p.pages) < n {
		p.pages = make([]float64, n)
	}
	if cap(p.times) < n {
		p.times = make([]float64, n)
	}
	if cap(p.scores) < n {
		p.scores = make([]float64, n)
	}
	pages, times, scores := p.pages[:n], p.times[:n], p.scores[:n]
	for i, sr := range p.queue {
		pages[i], times[i] = b.Norm.ApplyPageTime(sr.req.Page, sr.ts)
	}
	scoreBatch(b.Scorer, pages, times, scores, &p.scratch)
	for i, sr := range p.queue {
		p.serveOne(sr.req, scores[i])
	}
	if p.shadow != nil {
		// Replay the identical request sequence through the shadow cache.
		// Host-routed pages never reached the live cache, so the shadow skips
		// them too (hostRoute is a pure function of the page).
		for _, sr := range p.queue {
			if _, ok := p.model.hostRoute(sr.req.Page); ok {
				continue
			}
			p.shadow.serve(sr.req)
		}
	}
	p.queue = p.queue[:0]
}

// scoreBatch dispatches one batched scoring call through the fastest
// interface the scorer offers: scratch-threaded (zero steady-state
// allocations — both gmm.Model and gmm.QuantizedModel land here), plain
// batched, or a scalar fallback for minimal test scorers.
func scoreBatch(sc policy.Scorer, pages, times, scores []float64, s *gmm.Scratch) {
	switch bs := sc.(type) {
	case policy.ScratchBatchScorer:
		bs.ScorePageTimeBatchScratch(pages, times, scores, s)
	case policy.BatchScorer:
		bs.ScorePageTimeBatch(pages, times, scores)
	default:
		for i := range scores {
			scores[i] = sc.ScorePageTime(pages[i], times[i])
		}
	}
}

// serveOne routes one request through the partition's device model. Pages
// the model routes to host DRAM (dataflow timing with host-resident pages)
// are served locally — no policy, no cache, no link — and counted as hits.
// Device-routed requests go cache-lookup-first, then the model times the
// access: under flat timing the partition is a single server (a request
// begins at its arrival time or when the previous request here completed,
// whichever is later); under dataflow timing queueing lives in the fpga
// timeline's module cursors and outstanding window. Either way the recorded
// latency is the sojourn time (queueing plus service).
func (p *partition) serveOne(req Request, score float64) {
	if lat, ok := p.model.hostRoute(req.Page); ok {
		done := req.ArrivalNs + lat
		if done > p.now {
			p.now = done
		}
		p.hostOps++
		p.ops++
		p.batchOps++
		p.batchHits++
		p.hist.Observe(lat)
		ts := &p.ten[req.Tenant]
		ts.ops++
		ts.ctrlOps++
		ts.hits++
		ts.ctrlHits++
		ts.latSumNs += lat
		ts.hist.Observe(lat)
		ts.hbmHist.Observe(lat)
		if ts.ctrlHist != nil {
			ts.ctrlHist.Observe(lat)
		}
		return
	}

	p.pol.Begin(req.Tenant, score)
	res := p.cache.Access(req.Page, req.Write)
	r := p.model.serveReq(req.Page, device.OutcomeOf(res, req.Write), req.ArrivalNs, p.now)
	p.engineBusy += r.busyNs
	if r.doneNs > p.now {
		p.now = r.doneNs
	}
	sojourn := r.doneNs - req.ArrivalNs
	p.hist.Observe(sojourn)
	p.ops++
	p.batchOps++
	if res.Hit {
		p.batchHits++
	}
	if p.timing == TimingDataflow {
		p.dfOps++
		p.dfQueueSum += uint64(r.queueDepth)
		if r.stalled {
			p.dfStalls++
		}
	}

	// Per-tenant accounting: sojourn plus the cxl/hbm/ssd components, split
	// by where the device time was spent.
	ts := &p.ten[req.Tenant]
	ts.ops++
	ts.ctrlOps++
	ts.ctrlQueueSum += uint64(r.queueDepth)
	ts.latSumNs += sojourn
	ts.hist.Observe(sojourn)
	ts.cxlHist.Observe(r.linkNs)
	if res.Hit {
		ts.hits++
		ts.ctrlHits++
		ts.hbmHist.Observe(r.devNs)
	} else {
		ts.ssdHist.Observe(r.devNs)
	}
	if res.Admitted {
		ts.bytesAdmitted += trace.PageSize
	}
	if ts.ctrlHist != nil {
		ts.ctrlHist.Observe(sojourn)
	}
}
