package serve_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
)

// minSpec is a small, fully valid spec used as the base of the table tests:
// warmup/window/shot sized so warm-up validation passes quickly.
func minSpec() string {
	return `{
	 "version": 1,
	 "ops": 4096, "warmup": 16000, "batch": 1024,
	 "train": {"k": 4, "shot": 128}
	}`
}

func TestParseSpecDefaults(t *testing.T) {
	t.Parallel()
	s, err := serve.ParseSpec([]byte(minSpec()))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	// Omitted fields take the legacy CLI flag defaults.
	if cfg.Partitions != 16 || cfg.Cache.SizeBytes != 64<<20 || cfg.Cache.Ways != 8 {
		t.Errorf("geometry defaults wrong: %+v", cfg)
	}
	if cfg.Train.Seed != 1 || cfg.Train.MaxIters != 50 || cfg.Train.MaxSamples != 20000 {
		t.Errorf("train defaults wrong: %+v", cfg.Train)
	}
	if cfg.Transform.LenWindow != 32 || cfg.Transform.LenAccessShot != 128 {
		t.Errorf("transform wrong: %+v", cfg.Transform)
	}
	if cfg.ReportEvery != 16 || cfg.SSDChannels != 8 || cfg.SSD.Name != "tlc" {
		t.Errorf("serve defaults wrong: %+v", cfg)
	}
	if s.EffectiveOps() != 4096 || s.EffectiveWarmup() != 16000 {
		t.Errorf("effective ops/warmup wrong: %d/%d", s.EffectiveOps(), s.EffectiveWarmup())
	}
}

func TestParseSpecFieldPathErrors(t *testing.T) {
	t.Parallel()
	cases := map[string]struct {
		in   string
		path string
	}{
		"top-level typo": {
			in:   `{"version":1,"shrads":4}`,
			path: "spec.shrads",
		},
		"nested typo": {
			in:   `{"version":1,"train":{"k":4,"max_itres":10}}`,
			path: "spec.train.max_itres",
		},
		"tenant typo carries its index": {
			in: `{"version":1,
			 "tenants":[
			  {"name":"a","workload":"dlrm","rate":1e6,"share":0.4},
			  {"name":"b","workload":"dlrm","rate":1e6,"share":0.4,"sahre":0.4}
			 ]}`,
			path: "spec.tenants[1].sahre",
		},
		"qos typo": {
			in: `{"version":1,
			 "tenants":[{"name":"a","workload":"dlrm","rate":1e6,"share":0.4,
			  "qos":{"metric":"hit_ratio","targett":0.7}}]}`,
			path: "spec.tenants[0].qos.targett",
		},
	}
	for name, tc := range cases {
		_, err := serve.ParseSpec([]byte(tc.in))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.path) {
			t.Errorf("%s: error %q does not carry field path %q", name, err, tc.path)
		}
	}
}

// TestParseTenantSpecsFieldPath is the regression test for the strict
// tenant decoder: a typo'd key must be rejected with its full path, not a
// bare field name (and never silently ignored).
func TestParseTenantSpecsFieldPath(t *testing.T) {
	t.Parallel()
	_, err := serve.ParseTenantSpecs([]byte(
		`[{"name":"a","workload":"dlrm","rate":1e6,"share":0.5},
		  {"name":"b","workload":"dlrm","rate":1e6,"share":0.5,"sahre":0.5}]`))
	if err == nil {
		t.Fatal("typo'd tenant key accepted")
	}
	if !strings.Contains(err.Error(), "tenants[1].sahre") {
		t.Errorf("error %q does not carry the field path", err)
	}
}

func TestParseSpecRejects(t *testing.T) {
	t.Parallel()
	bad := map[string]string{
		"missing version":       `{"ops":4096,"warmup":16000,"train":{"shot":128}}`,
		"future version":        `{"version":2,"ops":4096,"warmup":16000,"train":{"shot":128}}`,
		"workload and tenants":  `{"version":1,"warmup":16000,"train":{"shot":128},"workload":{"name":"dlrm"},"tenants":[{"name":"a","workload":"dlrm","rate":1,"share":0.5}]}`,
		"unknown workload":      `{"version":1,"warmup":16000,"train":{"shot":128},"workload":{"name":"nope"}}`,
		"unknown mode":          `{"version":1,"warmup":16000,"train":{"shot":128},"mode":"lru"}`,
		"unknown ssd":           `{"version":1,"warmup":16000,"train":{"shot":128},"cache":{"ssd":"mlc"}}`,
		"unknown refresh":       `{"version":1,"warmup":16000,"train":{"shot":128},"refresh":{"mode":"maybe"}}`,
		"bad duration":          `{"version":1,"warmup":16000,"train":{"shot":128},"duration":"soon"}`,
		"bad report":            `{"version":1,"warmup":16000,"train":{"shot":128},"report":-2}`,
		"warmup too short":      `{"version":1,"warmup":1000,"train":{"shot":2000}}`,
		"bad burst":             `{"version":1,"warmup":16000,"train":{"shot":128},"workload":{"burst":1.5}}`,
		"bad floor frac":        `{"version":1,"warmup":16000,"train":{"shot":128},"control":{"share_floor_rate_frac":1.5}}`,
		"indivisible partition": `{"version":1,"warmup":16000,"train":{"shot":128},"partitions":7}`,
		"trailing data":         `{"version":1,"warmup":16000,"train":{"shot":128}} extra`,
		"negative cache size":   `{"version":1,"warmup":16000,"train":{"shot":128},"cache":{"size_mb":-1}}`,
	}
	for name, in := range bad {
		if _, err := serve.ParseSpec([]byte(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

// TestSpecRoundTrip: Marshal and ParseSpec are lossless inverses for a spec
// exercising every section, including pointer-valued fields like the
// explicit zero share_cooldown.
func TestSpecRoundTrip(t *testing.T) {
	t.Parallel()
	in := `{
	 "version": 1, "shards": 4, "partitions": 8, "ops": 163840, "warmup": 30000,
	 "batch": 1024, "report": 16, "mode": "gmm-caching-eviction",
	 "output": "metrics.jsonl",
	 "cache": {"size_mb": 4, "ways": 8, "ssd": "slc", "ssd_channels": 4},
	 "train": {"k": 8, "seed": 3, "max_iters": 10, "max_samples": 4000,
	  "lloyd_iters": 2, "window": 32, "shot": 256, "threshold_pct": 0.05},
	 "refresh": {"mode": "sync", "window": 8192, "min": 2048,
	  "drift_delta": 0.08, "drift_sustain": 8, "drift_warmup": 8, "drift_alpha": 0.2},
	 "control": {"every": 8, "step": 1.6, "min_mult": 0.0625, "max_mult": 16,
	  "share_adapt": true, "share_quantum": 8, "share_hold": 2,
	  "share_cooldown": 0, "share_floor": 8, "share_floor_rate_frac": 0.5},
	 "tenants": [
	  {"name": "a", "workload": "dlrm", "seed": 1, "rate": 15000, "share": 0.5,
	   "qos": {"metric": "hit_ratio", "target": 0.75, "band": 0.1}},
	  {"name": "b", "workload": "memtier", "seed": 2, "rate": 9000, "share": 0.3}
	 ]
	}`
	s, err := serve.ParseSpec([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Control.ShareCooldown == nil || *s.Control.ShareCooldown != 0 {
		t.Fatalf("explicit zero share_cooldown not preserved: %+v", s.Control)
	}
	out, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	again, err := serve.ParseSpec(out)
	if err != nil {
		t.Fatalf("re-parsing marshalled spec: %v\n%s", err, out)
	}
	if !reflect.DeepEqual(s, again) {
		t.Errorf("round trip changed the spec:\n%+v\n%+v", s, again)
	}
}

// TestSpecConfigMatchesHandBuilt: the committed elastic scenario spec builds
// exactly the configuration the golden test constructs by hand, field for
// field — the guarantee behind `icgmm-serve -spec` reproducing the golden
// run.
func TestSpecConfigMatchesHandBuilt(t *testing.T) {
	t.Parallel()
	spec := elasticSpec(t, 1)
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	want := tenantConfig(1)
	// The hand-built config leaves Train zero-fields for gmm to sanitize;
	// the spec path resolves the same defaults eagerly. Compare effective
	// values.
	want.Train.Tol = cfg.Train.Tol
	want.Train.CovReg = cfg.Train.CovReg
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("spec-built config diverges from the golden test's:\n got %+v\nwant %+v", cfg, want)
	}
}

// TestSpecEffectiveDefaults pins the omitted-field defaults that don't
// surface through Config: the ops/warmup bounds and the single-stream
// generator fallbacks.
func TestSpecEffectiveDefaults(t *testing.T) {
	t.Parallel()
	s, err := serve.ParseSpec([]byte(`{"version":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.EffectiveOps() != 2_000_000 || s.EffectiveWarmup() != 200_000 {
		t.Errorf("effective defaults = %d/%d, want 2000000/200000", s.EffectiveOps(), s.EffectiveWarmup())
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	// The two places the CLI flag defaults diverge from serve.DefaultConfig.
	if cfg.Train.K != 64 || cfg.Transform.LenAccessShot != 2000 {
		t.Errorf("flag-default divergences not applied: K=%d shot=%d", cfg.Train.K, cfg.Transform.LenAccessShot)
	}
	// Training against the default spec resolves the dlrm generator with the
	// training seed.
	if _, err := serve.TrainBundleFromSpec(serve.Spec{Version: 99}); err == nil {
		t.Error("TrainBundleFromSpec accepted an invalid spec")
	}
	// "tenants": [] normalizes to the absent form, keeping Marshal/ParseSpec
	// lossless (omitempty drops an empty array on re-marshal).
	e, err := serve.ParseSpec([]byte(`{"version":1,"warmup":16000,"train":{"shot":128},"tenants":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Tenants != nil {
		t.Errorf("empty tenants array not normalized to nil: %#v", e.Tenants)
	}
	out, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	again, err := serve.ParseSpec(out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, again) {
		t.Error("empty-tenants spec does not round trip")
	}
}
