package serve

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gmm"
	"repro/internal/linalg"
	"repro/internal/trace"
)

func TestScoringKindStrings(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		in   string
		kind ScoringKind
	}{{"float64", ScoringFloat64}, {"q16", ScoringQ16}} {
		k, err := ParseScoringKind(tc.in)
		if err != nil || k != tc.kind {
			t.Errorf("ParseScoringKind(%q) = %v, %v", tc.in, k, err)
		}
		if k.String() != tc.in {
			t.Errorf("String() round trip: %q -> %q", tc.in, k.String())
		}
	}
	if _, err := ParseScoringKind("fixed"); err == nil {
		t.Error("unknown scoring kind accepted")
	}
	cfg := DefaultConfig()
	cfg.Scoring = ScoringKind(99)
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-range scoring kind passed Validate")
	}
}

// scoringTestModel is a moderate one-component model whose densities are
// comfortably inside the Q16.16 range.
func scoringTestModel(t testing.TB) *gmm.Model {
	t.Helper()
	m, err := gmm.New([]gmm.Component{
		{Weight: 1, Mean: linalg.V2(0.5, 0.1), Cov: linalg.SymDiag(0.25, 0.25)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildBundleRefusesSaturatedQ16(t *testing.T) {
	t.Parallel()
	tight, err := gmm.New([]gmm.Component{
		{Weight: 1, Mean: linalg.V2(0.5, 0.5), Cov: linalg.SymDiag(1e-6, 1e-6)},
	})
	if err != nil {
		t.Fatal(err)
	}
	normed := []trace.Sample{{Page: 0.5, Timestamp: 0.5}, {Page: 0.4, Timestamp: 0.6}}
	cfg := DefaultConfig()
	cfg.Scoring = ScoringQ16
	if _, err := buildBundle(tight, trace.Normalizer{PageScale: 1, TimeScale: 1}, normed, cfg); err == nil {
		t.Fatal("saturating model accepted for q16 serving")
	} else if !strings.Contains(err.Error(), "saturate") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The same model serves fine in float.
	cfg.Scoring = ScoringFloat64
	b, err := buildBundle(tight, trace.Normalizer{PageScale: 1, TimeScale: 1}, normed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Model != tight {
		t.Error("float bundle dropped its float model")
	}
	if sm, ok := b.Scorer.(*gmm.Model); !ok || sm != tight {
		t.Errorf("float bundle serves %T, want the model it was built from", b.Scorer)
	}
}

func TestBuildBundleQ16CalibratesOnQuantizedScale(t *testing.T) {
	t.Parallel()
	m := scoringTestModel(t)
	normed := make([]trace.Sample, 256)
	for i := range normed {
		normed[i] = trace.Sample{Page: float64(i) / 256, Timestamp: 0.1}
	}
	cfg := DefaultConfig()
	cfg.Scoring = ScoringQ16
	b, err := buildBundle(m, trace.Normalizer{PageScale: 1, TimeScale: 1}, normed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := b.Scorer.(*gmm.QuantizedModel)
	if !ok {
		t.Fatalf("q16 bundle serves %T", b.Scorer)
	}
	if b.Model != m {
		t.Error("q16 bundle dropped its float model")
	}
	// The threshold must be attainable by the quantized scorer itself: some
	// calibration points sit below it, some above (ThresholdPct = 0.02).
	below := 0
	for _, s := range normed {
		if q.ScorePageTime(s.Page, s.Timestamp) < b.Threshold {
			below++
		}
	}
	if below == 0 || below == len(normed) {
		t.Errorf("threshold %v does not partition the quantized scores (below = %d/%d)", b.Threshold, below, len(normed))
	}
}

func TestRestoreBundleQ16Saturation(t *testing.T) {
	t.Parallel()
	bs := bundleState{
		Components: []componentState{{Weight: 1, Mean: [2]float64{0.5, 0.5}, Cov: [3]float64{1e-6, 0, 1e-6}}},
		Norm:       trace.Normalizer{PageScale: 1, TimeScale: 1},
		Threshold:  0.5,
	}
	if _, err := bs.restore(ScoringQ16); err == nil {
		t.Fatal("saturating checkpoint model restored for q16")
	}
	b, err := bs.restore(ScoringFloat64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Scorer.(*gmm.Model); !ok {
		t.Fatalf("float restore serves %T", b.Scorer)
	}
}

// allocService builds a one-partition service around a hand-made bundle whose
// threshold splits traffic deterministically: pages in the hot window score
// above it (admitted, then hits), pages far outside score ~0 (bypassed, so
// every access misses straight to the SSD).
func allocService(t *testing.T, scoring ScoringKind) (*Service, *Bundle) {
	t.Helper()
	m := scoringTestModel(t)
	cfg := DefaultConfig()
	cfg.Partitions = 1
	cfg.Shards = 1
	cfg.Scoring = scoring
	norm := trace.Normalizer{PageScale: 1.0 / 32, TimeScale: 1e-4}
	b := &Bundle{Model: m, Scorer: m, Norm: norm, Threshold: 1e-3}
	if scoring == ScoringQ16 {
		qm, rep := gmm.Quantize(m)
		if rep.Saturated > 0 {
			t.Fatalf("test model saturated %d constants", rep.Saturated)
		}
		b.Scorer = qm
	}
	svc, err := New(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	return svc, b
}

// TestDrainBatchSteadyStateAllocs pins the serving hot path at zero
// steady-state allocations for both scoring datapaths. The warm-up must
// saturate every latency histogram's raw-sample retention (65536 samples on
// the hit side and the miss side independently) — until then Observe still
// appends, and the measurement would blame the scorer for histogram growth.
func TestDrainBatchSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("histogram saturation warm-up is slow in -short mode")
	}
	for _, scoring := range []ScoringKind{ScoringFloat64, ScoringQ16} {
		t.Run(scoring.String(), func(t *testing.T) {
			svc, b := allocService(t, scoring)
			p := svc.parts[0]
			var seq, cold uint64
			const batch = 512
			fill := func() {
				p.queue = p.queue[:0]
				for i := 0; i < batch; i++ {
					var page uint64
					if i%2 == 0 {
						page = seq % 16 // hot window: admitted, hits
					} else {
						cold++
						page = 1<<20 + cold // never repeats: bypassed misses
					}
					p.queue = append(p.queue, scoredReq{
						req: Request{Page: page, ArrivalNs: int64(seq) * 1000, Seq: seq},
						ts:  int(seq % 2000),
					})
					seq++
				}
			}
			// 280 batches x 256 per side = ~71k hits and ~71k misses, past the
			// 65536-sample retention cap on both sides.
			for it := 0; it < 280; it++ {
				fill()
				p.drainBatch(b)
			}
			if p.batchHits == 0 || p.batchHits == p.batchOps {
				t.Fatalf("warm-up traffic not mixed: %d hits / %d ops", p.batchHits, p.batchOps)
			}
			if got := testing.AllocsPerRun(10, func() {
				fill()
				p.drainBatch(b)
			}); got != 0 {
				t.Errorf("drainBatch allocates %v per batch at steady state, want 0", got)
			}
		})
	}
}

// TestRescoreResidentReusesBuffers: after one rescore has sized the partition
// buffers, further refreshes allocate only the constant shard fan-out
// closures — never per-resident-block buffer growth (the old path built
// fresh locs/pages/times/scores slices on every refresh).
func TestRescoreResidentReusesBuffers(t *testing.T) {
	svc, b := allocService(t, ScoringFloat64)
	p := svc.parts[0]
	// Make a few hundred blocks resident.
	for i := 0; i < 400; i++ {
		p.queue = append(p.queue, scoredReq{req: Request{Page: uint64(i % 16)}, ts: i % 2000})
	}
	p.drainBatch(b)
	svc.rescoreResident(b) // size rsLocs and the score buffers
	resident := len(p.rsLocs)
	if resident == 0 {
		t.Fatal("warm-up admitted nothing; rescore has no work")
	}
	got := testing.AllocsPerRun(10, func() { svc.rescoreResident(b) })
	if got > 4 {
		t.Errorf("rescoreResident allocates %v per refresh over %d resident blocks; want a scan-independent constant (<= 4)", got, resident)
	}
	if math.IsNaN(b.Threshold) {
		t.Fatal("threshold corrupted by rescore")
	}
}
