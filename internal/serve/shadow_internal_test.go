package serve

import "testing"

// TestShadowSpecDefaults pins the effective defaults an empty shadow block
// expands to — the shapes the README documents and goldens depend on.
func TestShadowSpecDefaults(t *testing.T) {
	var sh ShadowSpec
	if err := sh.Validate(); err != nil {
		t.Fatalf("empty shadow block rejected: %v", err)
	}
	if got := sh.effHidden(); got != 32 {
		t.Errorf("effHidden = %d, want 32", got)
	}
	if got := sh.effLayers(); got != 1 {
		t.Errorf("effLayers = %d, want 1", got)
	}
	if got := sh.effSeqLen(); got != 8 {
		t.Errorf("effSeqLen = %d, want 8", got)
	}
	if got := sh.effThreshold(); got != 0.1 {
		t.Errorf("effThreshold = %v, want 0.1", got)
	}
	if got := sh.effEpochs(); got != 2 {
		t.Errorf("effEpochs = %d, want 2", got)
	}
	if got := sh.effMaxExamples(); got != 256 {
		t.Errorf("effMaxExamples = %d, want 256", got)
	}
	if got := sh.effSeed(77); got != 77 {
		t.Errorf("effSeed falls back to %d, want the training seed 77", got)
	}
	if got := sh.effDivergence(); got != 0.1 {
		t.Errorf("effDivergence = %v, want 0.1", got)
	}

	full := ShadowSpec{Policy: "lstm", Hidden: 8, Layers: 2, SeqLen: 4,
		Threshold: 0.2, Epochs: 1, MaxExamples: 64, Seed: 5, Divergence: 0.05}
	if err := full.Validate(); err != nil {
		t.Fatalf("explicit shadow block rejected: %v", err)
	}
	if full.effHidden() != 8 || full.effLayers() != 2 || full.effSeqLen() != 4 ||
		full.effThreshold() != 0.2 || full.effEpochs() != 1 || full.effMaxExamples() != 64 ||
		full.effSeed(77) != 5 || full.effDivergence() != 0.05 {
		t.Error("explicit shadow parameters not passed through verbatim")
	}
}

func TestShadowSpecValidate(t *testing.T) {
	bad := []ShadowSpec{
		{Policy: "gmm2"},
		{Hidden: -1},
		{Layers: -1},
		{SeqLen: -2},
		{Epochs: -1},
		{MaxExamples: -8},
		{Divergence: -0.1},
		{Divergence: 1.5},
	}
	for i, sh := range bad {
		if err := sh.Validate(); err == nil {
			t.Errorf("bad shadow spec %d accepted: %+v", i, sh)
		}
	}
}
