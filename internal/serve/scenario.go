package serve

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/workload"
)

// This file is the session-side scenario engine: it walks the spec's event
// timeline (internal/scenario) and applies each event at the batch boundary
// it names, on the ingest goroutine, before that batch is pulled from the
// source. Every effect is a pure function of (spec, batches) — never of
// shard count or wall time — so scenario runs keep the bit-identical
// determinism contract, and a resumed session re-derives the already-applied
// prefix via replayScenario instead of checkpointing configuration state.

// diurnalState tracks one tenant's active sinusoidal rate profile. The
// offered rate is recomputed from it at every batch boundary
// (scenario.DiurnalRate is pure), so the state is just the profile's
// parameters; a later rate event deactivates it.
type diurnalState struct {
	active bool
	base   float64
	amp    float64
	start  uint64
	period uint64
}

// initScenario wires the session's scenario runtime after the tenant mux is
// built: the timeline cursor, the tenant name index, per-tenant diurnal
// slots, and — under clients mode — the closed-loop feedback cursors.
func (s *Session) initScenario() {
	s.timeline = scenario.NewTimeline(s.spec.Scenario)
	s.tenantIdx = make(map[string]int, len(s.spec.Tenants))
	for i, t := range s.spec.Tenants {
		s.tenantIdx[t.Name] = i
	}
	s.diurnal = make([]diurnalState, len(s.spec.Tenants))
	if s.spec.Clients != nil {
		s.closedLoop = true
		s.fbLatSum = make([]int64, len(s.spec.Tenants))
		s.fbOps = make([]uint64, len(s.spec.Tenants))
	}
}

// applyScenario applies the events scheduled for the current batch boundary
// and re-evaluates active diurnal profiles. Called at the top of every Step
// iteration, before the batch is pulled; single-stream sessions have no
// timeline and return immediately.
func (s *Session) applyScenario() error {
	if s.timeline == nil {
		return nil
	}
	for _, ev := range s.timeline.Take(s.svc.batches) {
		if err := s.applyEvent(ev, false); err != nil {
			return err
		}
	}
	// Diurnal rates are recomputed at every boundary as a pure function of
	// the batch index, so a resumed run lands on the identical schedule
	// without any rate state in the checkpoint.
	for ti := range s.diurnal {
		if d := &s.diurnal[ti]; d.active {
			s.mux.SetRate(ti, scenario.DiurnalRate(d.base, d.amp, d.start, d.period, s.svc.batches))
		}
	}
	return nil
}

// applyEvent applies one timeline event. With replay set (resume) only the
// configuration side effects run — no rebalance (budgets are restored from
// the checkpoint), no metric records, no observer events.
func (s *Session) applyEvent(ev scenario.Event, replay bool) error {
	ti, ok := s.tenantIdx[ev.Tenant]
	if !ok {
		return fmt.Errorf("serve: scenario event names unknown tenant %q", ev.Tenant)
	}
	switch ev.Kind {
	case scenario.KindJoin, scenario.KindLeave:
		s.mux.SetActive(ti, ev.Kind == scenario.KindJoin)
		if !replay {
			s.rebalanceShares(ev, ti)
		}
	case scenario.KindRate:
		s.diurnal[ti].active = false
		s.mux.SetRate(ti, ev.Rate)
		if !replay {
			rate := ev.Rate
			s.svc.metrics.write(metricRecord{
				Kind:       "scenario",
				Batch:      s.svc.batches,
				Tenant:     ev.Tenant,
				Event:      ev.Kind,
				RatePerSec: &rate,
			})
		}
	case scenario.KindDiurnal:
		s.diurnal[ti] = diurnalState{
			active: true,
			base:   ev.Rate,
			amp:    ev.Amp,
			start:  ev.Batch,
			period: ev.Period,
		}
		if !replay {
			rate := ev.Rate
			s.svc.metrics.write(metricRecord{
				Kind:       "scenario",
				Batch:      s.svc.batches,
				Tenant:     ev.Tenant,
				Event:      ev.Kind,
				RatePerSec: &rate,
			})
		}
	case scenario.KindPhase:
		gen, err := workload.ByName(ev.Workload)
		if err != nil {
			return fmt.Errorf("serve: scenario phase event: %w", err)
		}
		s.mux.SetGenerator(ti, gen)
		if !replay {
			s.svc.metrics.write(metricRecord{
				Kind:     "scenario",
				Batch:    s.svc.batches,
				Tenant:   ev.Tenant,
				Event:    ev.Kind,
				Workload: ev.Workload,
			})
		}
	default:
		return fmt.Errorf("serve: scenario event kind %q unknown", ev.Kind)
	}
	return nil
}

// rebalanceShares redistributes per-partition HBM budgets after tenant
// churn: active tenants split the available capacity in proportion to their
// spec shares, departed tenants keep a single block per partition (a
// zero-budget tenant is a validated-away corner in the policy engine), and
// the per-partition total is conserved exactly. Every move goes through the
// existing transferShare machinery, so the rebalance is documented in the
// metric stream as ordinary "share" records followed by one "scenario"
// record naming the churn event.
func (s *Session) rebalanceShares(ev scenario.Event, churned int) {
	svc := s.svc
	n := len(svc.tenants)
	if n < 2 {
		return
	}
	// Budgets are identical across partitions (transferShare moves them in
	// lockstep), so partition 0 is the ledger.
	cur := make([]int, n)
	total := 0
	for ti := range cur {
		cur[ti] = svc.parts[0].pol.Budget(ti)
		total += cur[ti]
	}
	active := make([]bool, n)
	nInactive := 0
	var activeSum float64
	for ti, t := range svc.tenants {
		active[ti] = s.mux.Active(ti)
		if active[ti] {
			activeSum += t.spec.Share
		} else {
			nInactive++
		}
	}
	avail := total - nInactive
	target := make([]int, n)
	sum := 0
	for ti, t := range svc.tenants {
		if active[ti] {
			target[ti] = int(t.spec.Share / activeSum * float64(avail))
			if target[ti] < 1 {
				target[ti] = 1
			}
		} else {
			target[ti] = 1
		}
		sum += target[ti]
	}
	// Normalize the rounded targets to exactly the conserved total: shave
	// the largest target (> 1, ties to the lowest index) while over, pad
	// active tenants round-robin in index order while under.
	for sum > total {
		big, bigV := -1, 1
		for ti, v := range target {
			if v > bigV {
				big, bigV = ti, v
			}
		}
		if big == -1 {
			break
		}
		target[big]--
		sum--
	}
	for sum < total {
		grew := false
		for ti := range target {
			if sum == total {
				break
			}
			if active[ti] {
				target[ti]++
				sum++
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	// Settle the deltas as pairwise moves: first tenant needing blocks
	// receives from the first tenant holding surplus, index order on both
	// sides — deterministic, and each move is an ordinary share transfer.
	for {
		recv := -1
		for ti := range target {
			if cur[ti] < target[ti] {
				recv = ti
				break
			}
		}
		if recv == -1 {
			break
		}
		donor := -1
		for ti := range target {
			if cur[ti] > target[ti] {
				donor = ti
				break
			}
		}
		if donor == -1 {
			break
		}
		q := target[recv] - cur[recv]
		if surplus := cur[donor] - target[donor]; surplus < q {
			q = surplus
		}
		svc.transferShare(donor, recv, q)
		cur[donor] -= q
		cur[recv] += q
	}
	var budget uint64
	for _, p := range svc.parts {
		budget += uint64(p.pol.Budget(churned))
	}
	svc.metrics.write(metricRecord{
		Kind:         "scenario",
		Batch:        svc.batches,
		Tenant:       ev.Tenant,
		Event:        ev.Kind,
		BudgetBlocks: budget,
	})
	kind := EventTenantJoin
	if ev.Kind == scenario.KindLeave {
		kind = EventTenantLeave
	}
	svc.emit(Event{Kind: kind, Tenant: ev.Tenant, Blocks: budget})
}

// replayScenario fast-forwards the timeline through the prefix a resumed
// session has already applied, re-deriving the configuration effects (active
// flags, rates, diurnal profiles, generator swaps) without re-running
// rebalances or re-emitting records. It must run before the mux's cursor is
// restored: OpenLoop.RestoreState regenerates the in-flight trace segment
// from the generator current at restore time, so phase swaps have to land
// first.
func (s *Session) replayScenario() error {
	if s.timeline == nil {
		return nil
	}
	for _, ev := range s.timeline.Replay(s.svc.batches) {
		if err := s.applyEvent(ev, true); err != nil {
			return err
		}
	}
	return nil
}

// feedbackLatency closes the loop between served latency and client arrival
// pacing: after each batch, every tenant's latency delta over the batch
// (cumulative sojourn and op counters against the session's cursors) is
// folded into its closed-loop stream's completion estimate. No-op for
// open-loop runs.
func (s *Session) feedbackLatency() {
	if !s.closedLoop {
		return
	}
	for ti := range s.fbOps {
		lat, ops := s.tenantTotals(ti)
		if dOps := ops - s.fbOps[ti]; dOps > 0 {
			s.mux.ObserveLatency(ti, float64(lat-s.fbLatSum[ti])/float64(dOps))
		}
		s.fbLatSum[ti], s.fbOps[ti] = lat, ops
	}
}

// syncFeedbackCursors aligns the feedback cursors with the current
// cumulative counters without observing anything — a resumed session starts
// from the checkpointed totals (the latency estimate itself rides in the
// closed-loop stream's own state).
func (s *Session) syncFeedbackCursors() {
	if !s.closedLoop {
		return
	}
	for ti := range s.fbOps {
		s.fbLatSum[ti], s.fbOps[ti] = s.tenantTotals(ti)
	}
}

// tenantTotals sums tenant ti's cumulative sojourn and op counters across
// partitions, in partition order.
func (s *Session) tenantTotals(ti int) (latSumNs int64, ops uint64) {
	for _, p := range s.svc.parts {
		cell := &p.ten[ti]
		latSumNs += cell.latSumNs
		ops += cell.ops
	}
	return latSumNs, ops
}
