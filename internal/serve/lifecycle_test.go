package serve_test

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestSessionDetachLifecycle pins the checkpoint-then-migrate lifecycle:
// after Checkpoint, Close is a documented error (the resumed copy owns the
// rest of the stream), Detach tears the session down emitting nothing, and
// Step re-arms Close for callers who checkpointed but kept serving locally.
func TestSessionDetachLifecycle(t *testing.T) {
	t.Parallel()
	spec := smallSessionSpec(t)

	var out bytes.Buffer
	sess, err := serve.Open(spec, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(3); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := sess.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Close after Checkpoint: refused, pointing at Detach.
	err = sess.Close()
	if err == nil {
		t.Fatal("Close after Checkpoint succeeded; final records would corrupt the resumed stream")
	}
	if !strings.Contains(err.Error(), "Detach") {
		t.Errorf("Close-after-Checkpoint error %q does not point at Detach", err)
	}

	// Detach: emits nothing, closes the session, and is idempotent.
	emitted := out.Len()
	sess.Detach()
	sess.Detach()
	if out.Len() != emitted {
		t.Errorf("Detach emitted %d bytes", out.Len()-emitted)
	}
	if _, err := sess.Step(1); err == nil {
		t.Error("Step on a detached session succeeded")
	}
	if err := sess.Checkpoint(&bytes.Buffer{}); err == nil {
		t.Error("Checkpoint on a detached session succeeded")
	}
	if err := sess.Close(); err != nil {
		t.Errorf("Close on a detached session: %v (idempotent close must stay nil)", err)
	}

	// The checkpoint the detached session left behind must resume into the
	// full golden stream — detach released resources, not the contract.
	var rest bytes.Buffer
	resumed, err := serve.Resume(bytes.NewReader(ckpt.Bytes()), &rest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Run(); err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	ref, err := serve.Open(spec, &full)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	concat := append(append([]byte(nil), out.Bytes()...), rest.Bytes()...)
	if !bytes.Equal(concat, full.Bytes()) {
		t.Errorf("detach-then-resume stream diverges from uninterrupted run (%d vs %d bytes)", len(concat), full.Len())
	}

	// Stepping after a checkpoint re-arms Close: the caller demonstrably
	// kept serving locally, so the resumed-elsewhere presumption is off.
	sess2, err := serve.Open(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Step(2); err != nil {
		t.Fatal(err)
	}
	if err := sess2.Checkpoint(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Step(1); err != nil {
		t.Fatal(err)
	}
	if err := sess2.Close(); err != nil {
		t.Errorf("Close after Checkpoint+Step: %v", err)
	}
}

// TestSessionCheckpointEveryHook drives the periodic-checkpoint hook: with
// a cadence of 4 over a 16-batch run the hook fires at batches 4, 8, 12 and
// 16, each captured document resumes into the exact remainder of the metric
// stream, and the hook never arms the Close-after-Checkpoint guard.
func TestSessionCheckpointEveryHook(t *testing.T) {
	t.Parallel()
	spec := smallSessionSpec(t)
	var full bytes.Buffer
	sess, err := serve.Open(spec, &full)
	if err != nil {
		t.Fatal(err)
	}
	type mark struct {
		batch  uint64
		prefix int
		doc    []byte
	}
	var marks []mark
	sess.CheckpointEvery(4, func(doc []byte) error {
		marks = append(marks, mark{
			batch:  sess.Batches(),
			prefix: full.Len(),
			doc:    append([]byte(nil), doc...),
		})
		return nil
	})
	snapFull, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 4 {
		t.Fatalf("hook fired %d times, want 4", len(marks))
	}
	for i, m := range marks {
		if want := uint64(4 * (i + 1)); m.batch != want {
			t.Errorf("hook %d fired at batch %d, want %d", i, m.batch, want)
		}
		var post bytes.Buffer
		resumed, err := serve.Resume(bytes.NewReader(m.doc), &post)
		if err != nil {
			t.Fatalf("batch %d: resume: %v", m.batch, err)
		}
		snap, err := resumed.Run()
		if err != nil {
			t.Fatal(err)
		}
		concat := append(append([]byte(nil), full.Bytes()[:m.prefix]...), post.Bytes()...)
		if !bytes.Equal(concat, full.Bytes()) {
			t.Errorf("batch %d: hook checkpoint resume diverges (%d vs %d bytes)", m.batch, len(concat), full.Len())
		}
		if !reflect.DeepEqual(snap, snapFull) {
			t.Errorf("batch %d: resumed snapshot differs", m.batch)
		}
	}
}

// TestSessionCheckpointEveryErrors: a failing hook aborts the Step that
// triggered it; cadence 0 removes the hook; a cadence without a callback is
// a programming error.
func TestSessionCheckpointEveryErrors(t *testing.T) {
	t.Parallel()
	spec := smallSessionSpec(t)
	sess, err := serve.Open(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink full")
	fired := 0
	sess.CheckpointEvery(2, func(doc []byte) error {
		fired++
		return boom
	})
	if _, err := sess.Step(4); !errors.Is(err, boom) {
		t.Errorf("Step did not surface the hook error: %v", err)
	}
	if fired != 1 {
		t.Errorf("hook fired %d times after failing, want 1", fired)
	}
	// Removing the hook lets the run continue.
	sess.CheckpointEvery(0, nil)
	if _, err := sess.Step(2); err != nil {
		t.Errorf("Step after removing the hook: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("CheckpointEvery(2, nil) did not panic")
		}
	}()
	sess.CheckpointEvery(2, nil)
}
