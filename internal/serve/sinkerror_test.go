package serve_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/serve"
)

// brokenWriter fails every write — a full disk under the metrics sink.
type brokenWriter struct{ writes int }

func (w *brokenWriter) Write(p []byte) (int, error) {
	w.writes++
	return 0, errors.New("disk full")
}

// TestMetricsSinkErrorSurfacesAtStep pins the failure-visibility contract: a
// sink write error surfaces from Step at the batch boundary that produced
// it — not silently deferred until Close — and a Checkpoint taken after the
// failure refuses, because a checkpoint whose preceding records were dropped
// would resume into a provably incomplete stream.
func TestMetricsSinkErrorSurfacesAtStep(t *testing.T) {
	t.Parallel()
	spec := smallSessionSpec(t)
	sink := &brokenWriter{}
	sess, err := serve.Open(spec, sink)
	if err != nil {
		t.Fatal(err)
	}

	// The first record emitted (a control-interval record at batch 2 —
	// before the first report boundary at 4) fails the sink, and that same
	// Step must return the error.
	var stepErr error
	batches := 0
	for batches < 16 {
		n, err := sess.Step(1)
		if err != nil {
			stepErr = err
			break
		}
		if n == 0 {
			break
		}
		batches++
	}
	if stepErr == nil {
		t.Fatal("Step never surfaced the sink error")
	}
	if !strings.Contains(stepErr.Error(), "metrics sink") {
		t.Fatalf("Step error = %v, want a metrics-sink error", stepErr)
	}
	if batches >= 4 {
		// The batch whose boundary produced the first record must surface
		// the failure itself — by the report boundary at the latest.
		t.Errorf("error surfaced only after %d clean batches", batches)
	}
	if sink.writes == 0 {
		t.Fatal("sink never saw a write")
	}

	var ckpt bytes.Buffer
	if err := sess.Checkpoint(&ckpt); err == nil || !strings.Contains(err.Error(), "metrics sink") {
		t.Fatalf("Checkpoint after a sink failure = %v, want a metrics-sink refusal", err)
	}
	if ckpt.Len() != 0 {
		t.Errorf("refused checkpoint still wrote %d bytes", ckpt.Len())
	}
}
