package serve

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// PartitionSnapshot summarizes one partition (shard-local state).
type PartitionSnapshot struct {
	Partition  int
	Ops        uint64
	Cache      cache.Stats
	SSD        ssd.Stats
	Link       cxl.Stats
	Latency    stats.Summary // sojourn time: queueing + service
	EngineBusy time.Duration
	// LastCompletionNs is the partition's virtual clock at the end of the
	// run; the makespan is the maximum across partitions.
	LastCompletionNs int64
}

// Snapshot is the aggregate view of a run, merged from partitions in
// partition order so it is deterministic at any shard count.
type Snapshot struct {
	Ops     uint64
	Batches uint64
	// Refreshes counts installed refreshed models; RefreshesFailed counts
	// refits that errored (the previous bundle kept serving).
	Refreshes       uint64
	RefreshesFailed uint64
	Cache           cache.Stats
	SSDReads        uint64
	SSDWrites       uint64
	Latency         stats.Summary
	// MakespanNs is the virtual completion time of the whole run;
	// Throughput is Ops divided by it (virtual ops/sec).
	MakespanNs int64
	Throughput float64
	// IntervalThroughputMean/Std summarize per-reporting-interval virtual
	// throughput (Welford over intervals).
	IntervalThroughputMean float64
	IntervalThroughputStd  float64
	Partitions             []PartitionSnapshot
}

// HitRatio returns the aggregate cache hit ratio.
func (s *Snapshot) HitRatio() float64 { return s.Cache.HitRate() }

// Snapshot merges per-partition state, in partition order, into the
// aggregate view. Safe to call between batches (never concurrently with
// Run).
func (s *Service) Snapshot() *Snapshot {
	agg := stats.DefaultLatencyHistogram()
	// Size the aggregate's sample retention for every partition's retained
	// samples, so merged percentiles weigh all partitions instead of
	// filling the default cap from partition 0 alone.
	agg.SetRetention(len(s.parts) << 16)
	snap := &Snapshot{
		Batches:         s.batches,
		Refreshes:       s.refresher.installed,
		RefreshesFailed: s.refresher.failed.Load(),
		Partitions:      make([]PartitionSnapshot, len(s.parts)),
	}
	for i, p := range s.parts {
		cs := p.cache.Stats()
		ds := p.dev.Stats()
		agg.Merge(p.hist)
		snap.Ops += p.ops
		snap.Cache.Hits += cs.Hits
		snap.Cache.Misses += cs.Misses
		snap.Cache.Bypasses += cs.Bypasses
		snap.Cache.Evictions += cs.Evictions
		snap.Cache.WriteBacks += cs.WriteBacks
		snap.Cache.Inserts += cs.Inserts
		snap.SSDReads += ds.Reads
		snap.SSDWrites += ds.Writes
		if p.now > snap.MakespanNs {
			snap.MakespanNs = p.now
		}
		snap.Partitions[i] = PartitionSnapshot{
			Partition:        i,
			Ops:              p.ops,
			Cache:            cs,
			SSD:              ds,
			Link:             p.link.Stats(),
			Latency:          p.hist.Summarize(),
			EngineBusy:       time.Duration(p.engineBusy),
			LastCompletionNs: p.now,
		}
	}
	snap.Latency = agg.Summarize()
	if snap.MakespanNs > 0 {
		snap.Throughput = float64(snap.Ops) / (float64(snap.MakespanNs) / 1e9)
	}
	snap.IntervalThroughputMean = s.intervalThroughput.Mean()
	snap.IntervalThroughputStd = s.intervalThroughput.Std()
	return snap
}

// metricRecord is one JSONL line. Kind distinguishes the record types:
// "interval" (periodic aggregate), "refresh" (a model install), "partition"
// (final per-partition summary) and "summary" (final aggregate). All values
// are virtual-time quantities, so sync-refresh runs emit byte-identical
// metric streams at any shard count.
type metricRecord struct {
	Kind      string `json:"kind"`
	Batch     uint64 `json:"batch,omitempty"`
	Partition *int   `json:"partition,omitempty"`
	Ops       uint64 `json:"ops,omitempty"`
	// HitRatio is cumulative over the record's scope (the run so far for
	// interval/summary records, the partition for partition records);
	// BatchHitRatio is the most recent batch alone — the drift detector's
	// input — and appears only on interval records.
	HitRatio        float64  `json:"hit_ratio"`
	BatchHitRatio   *float64 `json:"batch_hit_ratio,omitempty"`
	Bypasses        uint64   `json:"bypasses,omitempty"`
	MeanNs          int64    `json:"mean_ns,omitempty"`
	P50Ns           int64    `json:"p50_ns,omitempty"`
	P99Ns           int64    `json:"p99_ns,omitempty"`
	MaxNs           int64    `json:"max_ns,omitempty"`
	OpsPerSec       float64  `json:"virtual_ops_per_sec,omitempty"`
	Refreshes       uint64   `json:"refreshes,omitempty"`
	RefreshesFailed uint64   `json:"refreshes_failed,omitempty"`
	Threshold       float64  `json:"threshold,omitempty"`
	SSDReads        uint64   `json:"ssd_reads,omitempty"`
	SSDWrites       uint64   `json:"ssd_writes,omitempty"`
}

// metricsWriter serializes metric records as JSONL. A nil writer turns every
// call into a no-op; encode errors are sticky and surfaced at the end of the
// run instead of failing a batch mid-flight.
type metricsWriter struct {
	enc *json.Encoder
	err error
}

func newMetricsWriter(w io.Writer) *metricsWriter {
	mw := &metricsWriter{}
	if w != nil {
		mw.enc = json.NewEncoder(w)
	}
	return mw
}

func (m *metricsWriter) write(rec metricRecord) {
	if m.enc == nil || m.err != nil {
		return
	}
	m.err = m.enc.Encode(rec)
}

func (m *metricsWriter) writeRefresh(batch, installed uint64, threshold float64) {
	m.write(metricRecord{Kind: "refresh", Batch: batch, Refreshes: installed, Threshold: threshold})
}

// emitInterval writes one periodic aggregate record and feeds the interval
// throughput Welford. It reads only O(partitions) counters — no histogram
// percentile sorting — so periodic reporting stays off the ingest loop's
// critical path; p50/p99 appear in the final partition/summary records.
func (s *Service) emitInterval(batchHitRatio float64) error {
	var ops, hits, misses, bypasses uint64
	var latSum, latCount, makespan int64
	for _, p := range s.parts {
		cs := p.cache.Stats()
		hits += cs.Hits
		misses += cs.Misses
		bypasses += cs.Bypasses
		ops += p.ops
		latSum += p.hist.Sum()
		latCount += p.hist.Count()
		if p.now > makespan {
			makespan = p.now
		}
	}
	var hitRatio, throughput, mean float64
	if hits+misses > 0 {
		hitRatio = float64(hits) / float64(hits+misses)
	}
	if makespan > 0 {
		throughput = float64(ops) / (float64(makespan) / 1e9)
	}
	if latCount > 0 {
		mean = float64(latSum) / float64(latCount)
	}
	if makespan > s.lastMakespan {
		dOps := ops - s.lastIntervalOps
		dNs := makespan - s.lastMakespan
		s.intervalThroughput.Observe(float64(dOps) / (float64(dNs) / 1e9))
	}
	s.lastIntervalOps = ops
	s.lastMakespan = makespan
	s.metrics.write(metricRecord{
		Kind:          "interval",
		Batch:         s.batches,
		Ops:           ops,
		HitRatio:      hitRatio,
		BatchHitRatio: &batchHitRatio,
		Bypasses:      bypasses,
		MeanNs:        int64(mean),
		OpsPerSec:     throughput,
		Refreshes:     s.refresher.installed,
	})
	return s.metrics.err
}

// writeFinal emits the per-partition and aggregate summary records.
func (m *metricsWriter) writeFinal(snap *Snapshot) error {
	for i := range snap.Partitions {
		ps := &snap.Partitions[i]
		idx := ps.Partition
		ops := float64(0)
		if snap.MakespanNs > 0 {
			ops = float64(ps.Ops) / (float64(snap.MakespanNs) / 1e9)
		}
		m.write(metricRecord{
			Kind:      "partition",
			Partition: &idx,
			Ops:       ps.Ops,
			HitRatio:  ps.Cache.HitRate(),
			Bypasses:  ps.Cache.Bypasses,
			MeanNs:    int64(ps.Latency.Mean),
			P50Ns:     int64(ps.Latency.P50),
			P99Ns:     int64(ps.Latency.P99),
			MaxNs:     int64(ps.Latency.Max),
			OpsPerSec: ops,
			SSDReads:  ps.SSD.Reads,
			SSDWrites: ps.SSD.Writes,
		})
	}
	m.write(metricRecord{
		Kind:            "summary",
		Ops:             snap.Ops,
		HitRatio:        snap.HitRatio(),
		Bypasses:        snap.Cache.Bypasses,
		MeanNs:          int64(snap.Latency.Mean),
		P50Ns:           int64(snap.Latency.P50),
		P99Ns:           int64(snap.Latency.P99),
		MaxNs:           int64(snap.Latency.Max),
		OpsPerSec:       snap.Throughput,
		Refreshes:       snap.Refreshes,
		RefreshesFailed: snap.RefreshesFailed,
		SSDReads:        snap.SSDReads,
		SSDWrites:       snap.SSDWrites,
	})
	return m.err
}
