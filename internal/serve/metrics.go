package serve

import (
	"encoding/json"
	"io"
	"math"
	"time"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// PartitionSnapshot summarizes one partition (shard-local state).
type PartitionSnapshot struct {
	Partition  int
	Ops        uint64
	Cache      cache.Stats
	SSD        ssd.Stats
	Link       cxl.Stats
	Latency    stats.Summary // sojourn time: queueing + service
	EngineBusy time.Duration
	// LastCompletionNs is the partition's virtual clock at the end of the
	// run; the makespan is the maximum across partitions.
	LastCompletionNs int64
	// Dataflow timing view (all zero under flat timing): requests served
	// from host DRAM, device-routed requests with the mean
	// outstanding-window depth they observed at arrival, arrivals stalled on
	// a full window, and each pipeline module's cumulative busy fraction of
	// the timeline's wall clock.
	HostOps        uint64
	DeviceOps      uint64
	QueueDepthMean float64
	Stalls         uint64
	GMMBusyRatio   float64
	SSDBusyRatio   float64
	CtrlBusyRatio  float64
}

// TenantSnapshot summarizes one tenant, merged across partitions in
// partition order.
type TenantSnapshot struct {
	// Tenant is the spec name ("default" for single-tenant runs).
	Tenant string
	Ops    uint64
	Hits   uint64
	// BytesAdmitted counts cache fills charged to the tenant.
	BytesAdmitted uint64
	// Latency is the end-to-end sojourn distribution; CXL/HBM/SSD break the
	// service time down by component (link round trip, hit device time,
	// miss device time).
	Latency stats.Summary
	CXL     stats.Summary
	HBM     stats.Summary
	SSD     stats.Summary
	// ResidentBlocks / BudgetBlocks are the tenant's cache footprint and
	// capacity share at the end of the run, summed over partitions.
	ResidentBlocks uint64
	BudgetBlocks   uint64
	// Threshold/Mult are the tenant's final admission threshold and the
	// controller's accumulated multiplier.
	Threshold float64
	Mult      float64
	// QoS echoes the spec; QoSValue/WithinQoS report the last completed
	// control interval's measurement (valid only when QoSValid).
	QoS       *QoSSpec
	QoSValue  float64
	WithinQoS bool
	QoSValid  bool
	// Shadow-policy accounting (zero unless the run configures a shadow
	// scorer): the shadow cache's cumulative ops, hits and modeled mean
	// latency over the tenant's device-routed traffic.
	ShadowOps    uint64
	ShadowHits   uint64
	ShadowMeanNs float64
}

// HitRatio returns the tenant's cumulative hit ratio.
func (t *TenantSnapshot) HitRatio() float64 {
	if t.Ops == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Ops)
}

// Snapshot is the aggregate view of a run, merged from partitions in
// partition order so it is deterministic at any shard count.
type Snapshot struct {
	Ops     uint64
	Batches uint64
	// Refreshes counts installed refreshed models; RefreshesFailed counts
	// refits that errored (the previous bundle kept serving).
	Refreshes       uint64
	RefreshesFailed uint64
	Cache           cache.Stats
	SSDReads        uint64
	SSDWrites       uint64
	Latency         stats.Summary
	// MakespanNs is the virtual completion time of the whole run;
	// Throughput is Ops divided by it (virtual ops/sec).
	MakespanNs int64
	Throughput float64
	// IntervalThroughputMean/Std summarize per-reporting-interval virtual
	// throughput (Welford over intervals).
	IntervalThroughputMean float64
	IntervalThroughputStd  float64
	// Timing names the device timing backend the run served through
	// ("flat" or "dataflow"); the per-partition dataflow fields are only
	// populated under "dataflow".
	Timing string
	// Shadow reports whether a shadow policy ran alongside the live one
	// (the per-tenant Shadow* fields are only populated when set).
	Shadow     bool
	Partitions []PartitionSnapshot
	// Tenants holds one entry per configured tenant (exactly one for
	// single-tenant runs), in Config.Tenants order.
	Tenants []TenantSnapshot
}

// HitRatio returns the aggregate cache hit ratio.
func (s *Snapshot) HitRatio() float64 { return s.Cache.HitRate() }

// Snapshot merges per-partition state, in partition order, into the
// aggregate view. Safe to call between batches (never concurrently with
// Run).
func (s *Service) Snapshot() *Snapshot {
	agg := stats.DefaultLatencyHistogram()
	// Size the aggregate's sample retention for every partition's retained
	// samples, so merged percentiles weigh all partitions instead of
	// filling the default cap from partition 0 alone.
	agg.SetRetention(len(s.parts) << 16)
	snap := &Snapshot{
		Batches:         s.batches,
		Refreshes:       s.refresher.installed,
		RefreshesFailed: s.refresher.failed.Load(),
		Timing:          s.cfg.Device.Timing.String(),
		Shadow:          s.cfg.Shadow != nil,
		Partitions:      make([]PartitionSnapshot, len(s.parts)),
	}
	for i, p := range s.parts {
		cs := p.cache.Stats()
		ds := p.dev.Stats()
		agg.Merge(p.hist)
		snap.Ops += p.ops
		snap.Cache.Hits += cs.Hits
		snap.Cache.Misses += cs.Misses
		snap.Cache.Bypasses += cs.Bypasses
		snap.Cache.Evictions += cs.Evictions
		snap.Cache.WriteBacks += cs.WriteBacks
		snap.Cache.Inserts += cs.Inserts
		snap.SSDReads += ds.Reads
		snap.SSDWrites += ds.Writes
		if p.now > snap.MakespanNs {
			snap.MakespanNs = p.now
		}
		ps := PartitionSnapshot{
			Partition:        i,
			Ops:              p.ops,
			Cache:            cs,
			SSD:              ds,
			Link:             p.link.Stats(),
			Latency:          p.hist.Summarize(),
			EngineBusy:       time.Duration(p.engineBusy),
			LastCompletionNs: p.now,
			HostOps:          p.hostOps,
			DeviceOps:        p.dfOps,
			Stalls:           p.dfStalls,
		}
		if p.dfOps > 0 {
			ps.QueueDepthMean = float64(p.dfQueueSum) / float64(p.dfOps)
		}
		if tl := p.model.timeline(); tl != nil {
			if wall := tl.WallCycles(); wall > 0 {
				gmmB, ssdB, ctrlB, _ := tl.Busy()
				ps.GMMBusyRatio = float64(gmmB) / float64(wall)
				ps.SSDBusyRatio = float64(ssdB) / float64(wall)
				ps.CtrlBusyRatio = float64(ctrlB) / float64(wall)
			}
		}
		snap.Partitions[i] = ps
	}
	snap.Latency = agg.Summarize()
	if snap.MakespanNs > 0 {
		snap.Throughput = float64(snap.Ops) / (float64(snap.MakespanNs) / 1e9)
	}
	snap.IntervalThroughputMean = s.intervalThroughput.Mean()
	snap.IntervalThroughputStd = s.intervalThroughput.Std()
	snap.Tenants = s.tenantSnapshots()
	return snap
}

// tenantCounters sums tenant ti's accounting counters across partitions —
// the single O(partitions) merge behind both the periodic tenant-interval
// records and the final snapshots, so the two can never drift apart.
func (s *Service) tenantCounters(ti int) (ops, hits, bytesAdmitted, resident uint64) {
	for _, p := range s.parts {
		cell := &p.ten[ti]
		ops += cell.ops
		hits += cell.hits
		bytesAdmitted += cell.bytesAdmitted
		resident += uint64(p.pol.Resident(ti))
	}
	return ops, hits, bytesAdmitted, resident
}

// tenantLatSum sums tenant ti's cumulative sojourn-time counter across
// partitions — the exact integer sum behind the live side of the shadow
// mean-latency deltas.
func (s *Service) tenantLatSum(ti int) (latSumNs int64) {
	for _, p := range s.parts {
		latSumNs += p.ten[ti].latSumNs
	}
	return latSumNs
}

// shadowCounters sums tenant ti's shadow accounting cells across partitions.
// All zero when no shadow policy is configured.
func (s *Service) shadowCounters(ti int) (ops, hits uint64, latSumNs int64) {
	for _, p := range s.parts {
		if p.shadow == nil {
			continue
		}
		cell := &p.shadow.ten[ti]
		ops += cell.ops
		hits += cell.hits
		latSumNs += cell.latSumNs
	}
	return ops, hits, latSumNs
}

// tenantSnapshots merges per-(partition, tenant) accounting cells, in
// partition order within each tenant, into one TenantSnapshot per tenant.
func (s *Service) tenantSnapshots() []TenantSnapshot {
	out := make([]TenantSnapshot, len(s.tenants))
	for ti, t := range s.tenants {
		hist := stats.DefaultLatencyHistogram()
		cxlH := stats.DefaultLatencyHistogram()
		hbmH := stats.DefaultLatencyHistogram()
		ssdH := stats.DefaultLatencyHistogram()
		for _, h := range []*stats.Histogram{hist, cxlH, hbmH, ssdH} {
			h.SetRetention(len(s.parts) << 16)
		}
		ts := TenantSnapshot{
			Tenant:    t.spec.Name,
			Threshold: t.threshold,
			Mult:      t.mult,
			QoS:       t.spec.QoS,
			QoSValue:  t.lastMetric,
			WithinQoS: t.lastWithin,
			QoSValid:  t.lastValid,
		}
		ts.Ops, ts.Hits, ts.BytesAdmitted, ts.ResidentBlocks = s.tenantCounters(ti)
		for _, p := range s.parts {
			cell := &p.ten[ti]
			ts.BudgetBlocks += uint64(p.pol.Budget(ti))
			hist.Merge(cell.hist)
			cxlH.Merge(cell.cxlHist)
			hbmH.Merge(cell.hbmHist)
			ssdH.Merge(cell.ssdHist)
		}
		var shadowLat int64
		ts.ShadowOps, ts.ShadowHits, shadowLat = s.shadowCounters(ti)
		if ts.ShadowOps > 0 {
			ts.ShadowMeanNs = float64(shadowLat) / float64(ts.ShadowOps)
		}
		ts.Latency = hist.Summarize()
		ts.CXL = cxlH.Summarize()
		ts.HBM = hbmH.Summarize()
		ts.SSD = ssdH.Summarize()
		out[ti] = ts
	}
	return out
}

// metricRecord is one JSONL line. Kind distinguishes the record types:
// "interval" (periodic aggregate), "tenant-interval" (periodic per-tenant),
// "control" (one adaptive-controller step for one tenant), "share" (one
// capacity-share transfer between tenants, Tenant receiving from Donor),
// "refresh" (a model install), "partition" (final per-partition summary),
// "tenant" (final per-tenant summary) and "summary" (final aggregate). All
// values are virtual-time quantities, so sync-refresh runs emit
// byte-identical metric streams at any shard count.
type metricRecord struct {
	Kind      string `json:"kind"`
	Batch     uint64 `json:"batch,omitempty"`
	Partition *int   `json:"partition,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	Ops       uint64 `json:"ops,omitempty"`
	// HitRatio is cumulative over the record's scope (the run so far for
	// interval/summary records, the partition for partition records);
	// BatchHitRatio is the most recent batch alone — the drift detector's
	// input — and appears only on interval records.
	HitRatio        float64  `json:"hit_ratio"`
	BatchHitRatio   *float64 `json:"batch_hit_ratio,omitempty"`
	Bypasses        uint64   `json:"bypasses,omitempty"`
	MeanNs          int64    `json:"mean_ns,omitempty"`
	P50Ns           int64    `json:"p50_ns,omitempty"`
	P99Ns           int64    `json:"p99_ns,omitempty"`
	MaxNs           int64    `json:"max_ns,omitempty"`
	OpsPerSec       float64  `json:"virtual_ops_per_sec,omitempty"`
	Refreshes       uint64   `json:"refreshes,omitempty"`
	RefreshesFailed uint64   `json:"refreshes_failed,omitempty"`
	Threshold       float64  `json:"threshold,omitempty"`
	SSDReads        uint64   `json:"ssd_reads,omitempty"`
	SSDWrites       uint64   `json:"ssd_writes,omitempty"`
	// Tenant-record fields.
	BytesAdmitted  uint64  `json:"bytes_admitted,omitempty"`
	ResidentBlocks uint64  `json:"resident_blocks,omitempty"`
	BudgetBlocks   uint64  `json:"budget_blocks,omitempty"`
	Mult           float64 `json:"mult,omitempty"`
	CXLP99Ns       int64   `json:"cxl_p99_ns,omitempty"`
	HBMP99Ns       int64   `json:"hbm_p99_ns,omitempty"`
	SSDP99Ns       int64   `json:"ssd_p99_ns,omitempty"`
	// Share-record fields: the donor tenant, how many blocks the transfer
	// moved (summed over partitions), both tenants' new total budgets, and
	// how many of the donor's resident blocks the shrink evicted.
	// EvictedBlocks is a pointer so share records always carry the key —
	// zero is the meaningful "donor was not resident-full" case — while
	// every other record kind omits it.
	Donor             string  `json:"donor,omitempty"`
	QuantumBlocks     uint64  `json:"quantum_blocks,omitempty"`
	DonorBudgetBlocks uint64  `json:"donor_budget_blocks,omitempty"`
	EvictedBlocks     *uint64 `json:"evicted_blocks,omitempty"`
	// Controller fields: the measured QoS value against its metric name,
	// and whether the tenant sat within its band.
	// QoS is a pointer so a legitimately-zero measurement (e.g. a cold
	// interval's hit ratio) still appears, while unmeasured records omit
	// the key entirely.
	QoSMetric string   `json:"qos_metric,omitempty"`
	QoS       *float64 `json:"qos,omitempty"`
	WithinQoS *bool    `json:"within_qos,omitempty"`
	// Dataflow interval fields (emitted only under "timing": "dataflow"):
	// the interval's mean outstanding-window depth at arrival, how many
	// arrivals stalled on a full window, and each pipeline module's busy
	// fraction of the interval's wall cycles. Pointers so flat-timing metric
	// streams omit the keys and stay byte-identical to their goldens.
	QueueDepthMean *float64 `json:"queue_depth_mean,omitempty"`
	StalledOps     uint64   `json:"stalled_ops,omitempty"`
	GMMBusyRatio   *float64 `json:"gmm_busy_ratio,omitempty"`
	SSDBusyRatio   *float64 `json:"ssd_busy_ratio,omitempty"`
	CtrlBusyRatio  *float64 `json:"ctrl_busy_ratio,omitempty"`
	// Scenario fields ("scenario" records): the timeline event kind that
	// fired, the offered rate it set (rate/diurnal events), and the workload
	// it swapped in (phase events).
	Event      string   `json:"event,omitempty"`
	RatePerSec *float64 `json:"rate_per_sec,omitempty"`
	Workload   string   `json:"workload,omitempty"`
	// Shadow-policy fields (interval / tenant-interval / tenant records,
	// only when a shadow scorer is configured): the shadow cache's
	// cumulative hit ratio and modeled mean latency over the same
	// device-routed traffic, and their deltas against the live policy
	// (shadow minus live). Pointers so shadow-less streams stay
	// byte-identical to their goldens.
	ShadowHitRatio    *float64 `json:"shadow_hit_ratio,omitempty"`
	ShadowHitDelta    *float64 `json:"shadow_hit_delta,omitempty"`
	ShadowMeanNs      *int64   `json:"shadow_mean_ns,omitempty"`
	ShadowMeanDeltaNs *int64   `json:"shadow_mean_delta_ns,omitempty"`
}

// metricsWriter serializes metric records as JSONL. A nil writer turns every
// call into a no-op. Encode errors are sticky — once a write fails, later
// records are dropped — and are surfaced at the next batch boundary
// (processBatch) or checkpoint, so a dead sink fails the run promptly
// rather than at Close.
type metricsWriter struct {
	enc *json.Encoder
	err error
}

func newMetricsWriter(w io.Writer) *metricsWriter {
	mw := &metricsWriter{}
	if w != nil {
		mw.enc = json.NewEncoder(w)
	}
	return mw
}

func (m *metricsWriter) write(rec metricRecord) {
	if m.enc == nil || m.err != nil {
		return
	}
	m.err = m.enc.Encode(rec)
}

func (m *metricsWriter) writeRefresh(batch, installed uint64, threshold float64) {
	m.write(metricRecord{Kind: "refresh", Batch: batch, Refreshes: installed, Threshold: threshold})
}

// emitInterval writes one periodic aggregate record and feeds the interval
// throughput Welford. It reads only O(partitions) counters — no histogram
// percentile sorting — so periodic reporting stays off the ingest loop's
// critical path; p50/p99 appear in the final partition/summary records.
// Write errors stick in the metricsWriter and are surfaced by processBatch.
func (s *Service) emitInterval(batchHitRatio float64) {
	var ops, hits, misses, bypasses uint64
	var latSum, latCount, makespan int64
	for _, p := range s.parts {
		cs := p.cache.Stats()
		hits += cs.Hits
		misses += cs.Misses
		bypasses += cs.Bypasses
		ops += p.ops
		latSum += p.hist.Sum()
		latCount += p.hist.Count()
		if p.now > makespan {
			makespan = p.now
		}
	}
	var hitRatio, throughput, mean float64
	if hits+misses > 0 {
		hitRatio = float64(hits) / float64(hits+misses)
	}
	if makespan > 0 {
		throughput = float64(ops) / (float64(makespan) / 1e9)
	}
	if latCount > 0 {
		mean = float64(latSum) / float64(latCount)
	}
	if makespan > s.lastMakespan {
		dOps := ops - s.lastIntervalOps
		dNs := makespan - s.lastMakespan
		s.intervalThroughput.Observe(float64(dOps) / (float64(dNs) / 1e9))
	}
	s.lastIntervalOps = ops
	s.lastMakespan = makespan
	rec := metricRecord{
		Kind:          "interval",
		Batch:         s.batches,
		Ops:           ops,
		HitRatio:      hitRatio,
		BatchHitRatio: &batchHitRatio,
		Bypasses:      bypasses,
		MeanNs:        int64(mean),
		OpsPerSec:     throughput,
		Refreshes:     s.refresher.installed,
	}
	if s.cfg.Device.Timing == TimingDataflow {
		s.addDataflowInterval(&rec)
	}
	if s.cfg.Shadow != nil {
		s.addShadowInterval(&rec)
	}
	s.metrics.write(rec)
	// Explicit multi-tenant runs also get one cumulative per-tenant line —
	// O(partitions) counter sums, no percentile sorting.
	if len(s.cfg.Tenants) > 0 {
		for ti, t := range s.tenants {
			tOps, tHits, tBytes, tResident := s.tenantCounters(ti)
			hr := 0.0
			if tOps > 0 {
				hr = float64(tHits) / float64(tOps)
			}
			var tBudget uint64
			for _, p := range s.parts {
				tBudget += uint64(p.pol.Budget(ti))
			}
			trec := metricRecord{
				Kind:           "tenant-interval",
				Batch:          s.batches,
				Tenant:         t.spec.Name,
				Ops:            tOps,
				HitRatio:       hr,
				BytesAdmitted:  tBytes,
				ResidentBlocks: tResident,
				BudgetBlocks:   tBudget,
				Threshold:      t.threshold,
				Mult:           t.mult,
			}
			if s.cfg.Shadow != nil {
				if sOps, sHits, sLat := s.shadowCounters(ti); sOps > 0 {
					shr := float64(sHits) / float64(sOps)
					delta := shr - hr
					smean := sLat / int64(sOps)
					trec.ShadowHitRatio = &shr
					trec.ShadowHitDelta = &delta
					trec.ShadowMeanNs = &smean
					if tOps > 0 {
						dmean := smean - s.tenantLatSum(ti)/int64(tOps)
						trec.ShadowMeanDeltaNs = &dmean
					}
					if math.Abs(delta) > s.cfg.Shadow.Divergence {
						s.emit(Event{Kind: EventShadowDivergence, Tenant: t.spec.Name, HitRatio: hr, Baseline: shr})
					}
				}
			}
			s.metrics.write(trec)
		}
	}
}

// addShadowInterval attaches the run-wide shadow bake-off view to an
// interval record: the shadow caches' cumulative hit ratio and modeled mean
// latency, with deltas against the live policy. Both sides are computed from
// the per-tenant accounting cells, so the ratios compare like with like —
// note the shadow only sees device-routed traffic, while the live ratio
// includes host-routed hits (a deliberate, documented asymmetry under
// dataflow timing).
func (s *Service) addShadowInterval(rec *metricRecord) {
	var sOps, sHits, lOps, lHits uint64
	var sLat, lLat int64
	for ti := range s.tenants {
		o, h, l := s.shadowCounters(ti)
		sOps += o
		sHits += h
		sLat += l
		to, th, _, _ := s.tenantCounters(ti)
		lOps += to
		lHits += th
		lLat += s.tenantLatSum(ti)
	}
	if sOps == 0 {
		return
	}
	shr := float64(sHits) / float64(sOps)
	lhr := 0.0
	if lOps > 0 {
		lhr = float64(lHits) / float64(lOps)
	}
	delta := shr - lhr
	smean := sLat / int64(sOps)
	rec.ShadowHitRatio = &shr
	rec.ShadowHitDelta = &delta
	rec.ShadowMeanNs = &smean
	if lOps > 0 {
		dmean := smean - lLat/int64(lOps)
		rec.ShadowMeanDeltaNs = &dmean
	}
}

// addDataflowInterval attaches the dataflow congestion view to an interval
// record: per-interval deltas of the cumulative queue/stall/busy counters
// against the cursors left by the previous interval. When every
// device-routed request of the interval stalled on a full outstanding
// window, the device was saturated for the whole interval and an
// EventCongestion is emitted.
func (s *Service) addDataflowInterval(rec *metricRecord) {
	var qsum, dops, stalls uint64
	var gmmB, ssdB, ctrlB, wall int64
	for _, p := range s.parts {
		qsum += p.dfQueueSum
		dops += p.dfOps
		stalls += p.dfStalls
		if tl := p.model.timeline(); tl != nil {
			g, sd, c, _ := tl.Busy()
			gmmB += g
			ssdB += sd
			ctrlB += c
			wall += tl.WallCycles()
		}
	}
	dQ := qsum - s.lastDFQueueSum
	dOps := dops - s.lastDFOps
	dStalls := stalls - s.lastDFStalls
	depthMean := 0.0
	if dOps > 0 {
		depthMean = float64(dQ) / float64(dOps)
	}
	var gmmR, ssdR, ctrlR float64
	if dWall := wall - s.lastWallCycles; dWall > 0 {
		gmmR = float64(gmmB-s.lastGMMBusy) / float64(dWall)
		ssdR = float64(ssdB-s.lastSSDBusy) / float64(dWall)
		ctrlR = float64(ctrlB-s.lastCtrlBusy) / float64(dWall)
	}
	rec.QueueDepthMean = &depthMean
	rec.StalledOps = dStalls
	rec.GMMBusyRatio = &gmmR
	rec.SSDBusyRatio = &ssdR
	rec.CtrlBusyRatio = &ctrlR
	s.lastDFQueueSum, s.lastDFOps, s.lastDFStalls = qsum, dops, stalls
	s.lastGMMBusy, s.lastSSDBusy, s.lastCtrlBusy, s.lastWallCycles = gmmB, ssdB, ctrlB, wall
	if dOps > 0 && dStalls == dOps {
		s.emit(Event{Kind: EventCongestion, QueueDepth: depthMean})
	}
}

// writeFinal emits the per-partition, per-tenant and aggregate summary
// records. Tenant records appear only for explicit multi-tenant runs, so
// single-tenant metric streams are unchanged.
func (m *metricsWriter) writeFinal(snap *Snapshot, emitTenants bool) error {
	for i := range snap.Partitions {
		ps := &snap.Partitions[i]
		idx := ps.Partition
		ops := float64(0)
		if snap.MakespanNs > 0 {
			ops = float64(ps.Ops) / (float64(snap.MakespanNs) / 1e9)
		}
		m.write(metricRecord{
			Kind:      "partition",
			Partition: &idx,
			Ops:       ps.Ops,
			HitRatio:  ps.Cache.HitRate(),
			Bypasses:  ps.Cache.Bypasses,
			MeanNs:    int64(ps.Latency.Mean),
			P50Ns:     int64(ps.Latency.P50),
			P99Ns:     int64(ps.Latency.P99),
			MaxNs:     int64(ps.Latency.Max),
			OpsPerSec: ops,
			SSDReads:  ps.SSD.Reads,
			SSDWrites: ps.SSD.Writes,
		})
	}
	if emitTenants {
		for i := range snap.Tenants {
			ts := &snap.Tenants[i]
			rec := metricRecord{
				Kind:           "tenant",
				Tenant:         ts.Tenant,
				Ops:            ts.Ops,
				HitRatio:       ts.HitRatio(),
				BytesAdmitted:  ts.BytesAdmitted,
				ResidentBlocks: ts.ResidentBlocks,
				BudgetBlocks:   ts.BudgetBlocks,
				MeanNs:         int64(ts.Latency.Mean),
				P50Ns:          int64(ts.Latency.P50),
				P99Ns:          int64(ts.Latency.P99),
				MaxNs:          int64(ts.Latency.Max),
				CXLP99Ns:       int64(ts.CXL.P99),
				HBMP99Ns:       int64(ts.HBM.P99),
				SSDP99Ns:       int64(ts.SSD.P99),
				Threshold:      ts.Threshold,
				Mult:           ts.Mult,
			}
			if ts.QoS != nil && ts.QoSValid {
				within, v := ts.WithinQoS, ts.QoSValue
				rec.QoSMetric = ts.QoS.Metric
				rec.QoS = &v
				rec.WithinQoS = &within
			}
			if snap.Shadow && ts.ShadowOps > 0 {
				shr := float64(ts.ShadowHits) / float64(ts.ShadowOps)
				delta := shr - ts.HitRatio()
				smean := int64(ts.ShadowMeanNs)
				rec.ShadowHitRatio = &shr
				rec.ShadowHitDelta = &delta
				rec.ShadowMeanNs = &smean
				if ts.Ops > 0 {
					// The tenant histogram's sum/count equals the integer
					// latency sum over ops exactly, so this delta matches the
					// interval records' arithmetic.
					dmean := smean - int64(ts.Latency.Mean)
					rec.ShadowMeanDeltaNs = &dmean
				}
			}
			m.write(rec)
		}
	}
	m.write(metricRecord{
		Kind:            "summary",
		Ops:             snap.Ops,
		HitRatio:        snap.HitRatio(),
		Bypasses:        snap.Cache.Bypasses,
		MeanNs:          int64(snap.Latency.Mean),
		P50Ns:           int64(snap.Latency.P50),
		P99Ns:           int64(snap.Latency.P99),
		MaxNs:           int64(snap.Latency.Max),
		OpsPerSec:       snap.Throughput,
		Refreshes:       snap.Refreshes,
		RefreshesFailed: snap.RefreshesFailed,
		SSDReads:        snap.SSDReads,
		SSDWrites:       snap.SSDWrites,
	})
	return m.err
}
