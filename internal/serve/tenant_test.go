package serve_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/gmm"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// updateGolden regenerates the pinned golden files:
//
//	go test ./internal/serve -run TestServeTenantGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

// tenantSpecs is the pinned 3-tenant QoS scenario: distinct rates, working
// sets and QoS targets. alpha fits its share entirely (hit-ratio floor) and
// runs comfortable — the natural capacity donor. beta only partially fits
// (latency ceiling the controller must trade admissions against) and holds
// near its band edge. gamma starts inside its share, then a mid-run drift
// both relocates its working set (invalidating the model: sync-refresh
// coverage) and grows it well past gamma's fixed HBM share — the capacity
// starvation only an elastic share transfer can cure.
func tenantSpecs() []serve.TenantSpec {
	return []serve.TenantSpec{
		{
			Name: "alpha",
			Custom: &workload.CustomConfig{
				Name: "alpha-ws", TotalPages: 400,
				Clusters:  []workload.ClusterSpec{{CenterPage: 100, Spread: 30}, {CenterPage: 300, Spread: 20}},
				WriteFrac: 0.2,
			},
			Seed: 1, RatePerSec: 15e3, Share: 0.5,
			QoS: &serve.QoSSpec{Metric: serve.QoSHitRatio, Target: 0.75, Band: 0.10},
		},
		{
			Name: "beta",
			Custom: &workload.CustomConfig{
				Name: "beta-ws", TotalPages: 2048,
				Clusters:  []workload.ClusterSpec{{CenterPage: 500, Spread: 120}, {CenterPage: 1500, Spread: 160}},
				WriteFrac: 0.1,
			},
			Seed: 2, RatePerSec: 9e3, BurstAmp: 0.3, OffsetPages: 1 << 16, Share: 0.3,
			QoS: &serve.QoSSpec{Metric: serve.QoSMeanNs, Target: 200e3, Band: 0.30},
		},
		{
			Name: "gamma",
			Custom: &workload.CustomConfig{
				Name: "gamma-ws", TotalPages: 192,
				Clusters: []workload.ClusterSpec{{CenterPage: 100, Spread: 25}},
				TailFrac: 0.3, TailZipfS: 1.35,
				WriteFrac: 0.3,
			},
			Seed: 3, RatePerSec: 6e3, OffsetPages: 1 << 17, Share: 0.2,
			ShiftAfter: 8 * 1024, ShiftOffsetPages: 1 << 18,
			// The post-shift working set (~480 hot pages) far exceeds
			// gamma's 200-block share: no admission threshold can hold the
			// hit-ratio floor inside it, so the threshold lever saturates
			// and the controller must move capacity.
			ShiftCustom: &workload.CustomConfig{
				Name: "gamma-ws-grown", TotalPages: 480,
				Clusters:  []workload.ClusterSpec{{CenterPage: 120, Spread: 55}, {CenterPage: 360, Spread: 55}},
				WriteFrac: 0.3,
			},
			QoS: &serve.QoSSpec{Metric: serve.QoSHitRatio, Target: 0.60, Band: 0.15},
		},
	}
}

// tenantConfig is the serving configuration of the pinned scenario.
func tenantConfig(shards int) serve.Config {
	cfg := serve.DefaultConfig()
	cfg.Shards = shards
	cfg.Partitions = 8
	cfg.Cache = cache.Config{SizeBytes: 4 << 20, BlockBytes: trace.PageSize, Ways: 8}
	cfg.Train = gmm.TrainConfig{K: 8, MaxIters: 10, Seed: 1, MaxSamples: 4000, LloydIters: 2}
	cfg.Transform.LenAccessShot = 256
	cfg.BatchSize = 1024
	cfg.ReportEvery = 16
	cfg.Tenants = tenantSpecs()
	cfg.Control.Every = 8
	cfg.Control.Step = 1.6
	// Elastic shares: a tight multiplier clamp saturates the threshold lever
	// quickly, so a capacity-starved tenant escalates to a share bid within
	// a few control intervals; quantum/cooldown keep transfers slow and
	// deterministic.
	cfg.Control.MinMult = 1.0 / 16
	cfg.Control.MaxMult = 16
	cfg.Control.ShareAdapt = true
	cfg.Control.ShareQuantum = 8
	cfg.Control.ShareHold = 2
	cfg.Control.ShareCooldown = 1
	cfg.Control.ShareFloor = 8
	cfg.Refresh.Mode = serve.RefreshSync
	cfg.Refresh.Drift = serve.DriftConfig{Delta: 0.08, Sustain: 8, Warmup: 8, Alpha: 0.2}
	cfg.Refresh.WindowSamples = 8192
	cfg.Refresh.MinSamples = 2048
	return cfg
}

// runTenantScenario trains on the muxed warm-up and serves ops requests,
// returning the snapshot and the JSONL metric bytes.
func runTenantScenario(t testing.TB, cfg serve.Config, ops uint64) (*serve.Snapshot, string) {
	t.Helper()
	warmMux, err := serve.NewTenantMux(cfg.Tenants)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := serve.TrainBundle(warmMux.Trace(30_000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := serve.New(cfg, bundle)
	if err != nil {
		t.Fatal(err)
	}
	mux, err := serve.NewTenantMux(cfg.Tenants)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Run(serve.NewMuxSource(mux, ops))
	if err != nil {
		t.Fatal(err)
	}
	return snap, ""
}

// TestServeTenantGoldenDeterminism is the tenant path's determinism
// contract, pinned to bytes on disk: the 3-tenant QoS scenario (sync
// refresh + adaptive controller) must produce the exact committed JSONL
// metric stream at shards=1, 2 and 8, and the controller must have converged
// every tenant to within its QoS band by the end of the run.
func TestServeTenantGoldenDeterminism(t *testing.T) {
	t.Parallel()
	const ops = 160 * 1024
	run := func(shards int) (*serve.Snapshot, []byte) {
		var jsonl bytes.Buffer
		cfg := tenantConfig(shards)
		cfg.Metrics = &jsonl
		snap, _ := runTenantScenario(t, cfg, ops)
		return snap, jsonl.Bytes()
	}
	snap1, out1 := run(1)

	golden := filepath.Join("testdata", "tenant_golden.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, out1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(out1))
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(out1, want) {
		t.Errorf("shards=1 JSONL diverges from %s (%d vs %d bytes); if the change is intentional, regenerate with -update",
			golden, len(out1), len(want))
	}

	for _, shards := range []int{2, 8} {
		snapN, outN := run(shards)
		if !bytes.Equal(outN, want) {
			t.Errorf("shards=%d JSONL diverges from the golden file", shards)
		}
		if !reflect.DeepEqual(snap1, snapN) {
			t.Errorf("snapshots differ between shards=1 and shards=%d", shards)
		}
	}

	if snap1.Refreshes == 0 {
		t.Error("gamma's working-set shift did not trigger a sync refresh; the golden scenario lost its refresh coverage")
	}
	if snap1.Ops != ops {
		t.Errorf("ops = %d, want %d", snap1.Ops, ops)
	}
	// The elastic-share lever must have fired: gamma's grown working set is
	// unservable inside its static 200-block share, so the run needs at
	// least one deterministic transfer, visible both as a "share" record and
	// as final budgets away from the static split (alpha 512/beta 304/gamma
	// 200 blocks).
	if n := bytes.Count(out1, []byte(`"kind":"share"`)); n == 0 {
		t.Error("no share transfer in the golden run; the scenario lost its elastic-share coverage")
	}
	if a, g := snap1.Tenants[0].BudgetBlocks, snap1.Tenants[2].BudgetBlocks; a >= 512 || g <= 200 {
		t.Errorf("final budgets alpha=%d gamma=%d; expected capacity to have moved alpha→gamma", a, g)
	}
	for i := range snap1.Tenants {
		ts := &snap1.Tenants[i]
		if ts.QoS == nil {
			continue
		}
		if !ts.QoSValid {
			t.Errorf("tenant %s: controller never measured its QoS", ts.Tenant)
			continue
		}
		if !ts.WithinQoS {
			t.Errorf("tenant %s: did not converge to within its QoS band: %s=%.4g target %.4g (band %.2f)",
				ts.Tenant, ts.QoS.Metric, ts.QoSValue, ts.QoS.Target, ts.QoS.Band)
		}
	}
}

// TestServeTenantAccounting checks the per-tenant bookkeeping: tenant ops
// sum to the total, every tenant is served and admits bytes, capacity shares
// hold (residency never exceeds budget, budgets never over-commit the
// cache), and the multi-tenant metric stream carries the tenant record
// kinds.
func TestServeTenantAccounting(t *testing.T) {
	t.Parallel()
	var jsonl bytes.Buffer
	cfg := tenantConfig(4)
	cfg.Metrics = &jsonl
	snap, _ := runTenantScenario(t, cfg, 64*1024)

	var tenantOps, budgetTotal uint64
	for i := range snap.Tenants {
		ts := &snap.Tenants[i]
		tenantOps += ts.Ops
		budgetTotal += ts.BudgetBlocks
		if ts.Ops == 0 {
			t.Errorf("tenant %s served nothing", ts.Tenant)
		}
		if ts.BytesAdmitted == 0 {
			t.Errorf("tenant %s admitted nothing", ts.Tenant)
		}
		if ts.ResidentBlocks > ts.BudgetBlocks {
			t.Errorf("tenant %s resident %d exceeds budget %d", ts.Tenant, ts.ResidentBlocks, ts.BudgetBlocks)
		}
		if ts.Latency.Count != int64(ts.Ops) {
			t.Errorf("tenant %s latency samples %d != ops %d", ts.Tenant, ts.Latency.Count, ts.Ops)
		}
		if ts.CXL.Count != int64(ts.Ops) {
			t.Errorf("tenant %s cxl samples %d != ops %d", ts.Tenant, ts.CXL.Count, ts.Ops)
		}
		if ts.HBM.Count != int64(ts.Hits) {
			t.Errorf("tenant %s hbm samples %d != hits %d", ts.Tenant, ts.HBM.Count, ts.Hits)
		}
		if ts.SSD.Count != int64(ts.Ops-ts.Hits) {
			t.Errorf("tenant %s ssd samples %d != misses %d", ts.Tenant, ts.SSD.Count, ts.Ops-ts.Hits)
		}
	}
	if tenantOps != snap.Ops {
		t.Errorf("tenant ops sum %d != total %d", tenantOps, snap.Ops)
	}
	if cacheBlocks := uint64(4<<20) / trace.PageSize; budgetTotal > cacheBlocks {
		t.Errorf("budgets sum to %d blocks, over-committing the %d-block cache", budgetTotal, cacheBlocks)
	}
	// Arrival-rate proportions must hold: alpha gets 150k of 300k req/s.
	if frac := float64(snap.Tenants[0].Ops) / float64(snap.Ops); frac < 0.45 || frac > 0.55 {
		t.Errorf("alpha served %.3f of traffic, want ~0.5", frac)
	}
	for _, want := range []string{`"kind":"tenant-interval"`, `"kind":"control"`, `"kind":"tenant"`, `"kind":"summary"`} {
		if !bytes.Contains(jsonl.Bytes(), []byte(want)) {
			t.Errorf("metrics missing %s records", want)
		}
	}
}

// TestServeSingleTenantStreamUnchanged: runs without Config.Tenants must not
// grow tenant record kinds, so PR 2's single-stream JSONL consumers are
// unaffected.
func TestServeSingleTenantStreamUnchanged(t *testing.T) {
	t.Parallel()
	var jsonl bytes.Buffer
	cfg := testConfig(2)
	cfg.Metrics = &jsonl
	snap, _ := runService(t, cfg, 16*1024, workload.OpenLoopConfig{RatePerSec: 2e6, Seed: 3})
	for _, kind := range []string{`"kind":"tenant-interval"`, `"kind":"tenant"`, `"kind":"control"`} {
		if bytes.Contains(jsonl.Bytes(), []byte(kind)) {
			t.Errorf("single-tenant metric stream contains %s records", kind)
		}
	}
	// The snapshot still accounts the anonymous stream as one tenant.
	if len(snap.Tenants) != 1 || snap.Tenants[0].Tenant != "default" {
		t.Fatalf("single-tenant snapshot tenants = %+v", snap.Tenants)
	}
	if snap.Tenants[0].Ops != snap.Ops {
		t.Errorf("default tenant ops %d != total %d", snap.Tenants[0].Ops, snap.Ops)
	}
}

func TestParseTenantSpecs(t *testing.T) {
	t.Parallel()
	valid := `[
	 {"name":"a","workload":"dlrm","seed":1,"rate":1e6,"share":0.5,
	  "qos":{"metric":"hit_ratio","target":0.7}},
	 {"name":"b","workload":"memtier","seed":2,"rate":5e5,"share":0.25}
	]`
	specs, err := serve.ParseTenantSpecs([]byte(valid))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if len(specs) != 2 || specs[0].Name != "a" || specs[1].RatePerSec != 5e5 {
		t.Fatalf("parsed specs = %+v", specs)
	}

	bad := map[string]string{
		"unknown workload": `[{"name":"a","workload":"nope","rate":1,"share":0.5}]`,
		"no workload":      `[{"name":"a","rate":1,"share":0.5}]`,
		"empty name":       `[{"workload":"dlrm","rate":1,"share":0.5}]`,
		"duplicate name":   `[{"name":"a","workload":"dlrm","rate":1,"share":0.4},{"name":"a","workload":"dlrm","rate":1,"share":0.4}]`,
		"zero rate":        `[{"name":"a","workload":"dlrm","rate":0,"share":0.5}]`,
		"zero share":       `[{"name":"a","workload":"dlrm","rate":1,"share":0}]`,
		"shares over 1":    `[{"name":"a","workload":"dlrm","rate":1,"share":0.7},{"name":"b","workload":"dlrm","rate":1,"share":0.6}]`,
		"bad qos metric":   `[{"name":"a","workload":"dlrm","rate":1,"share":0.5,"qos":{"metric":"p42","target":1}}]`,
		"bad qos target":   `[{"name":"a","workload":"dlrm","rate":1,"share":0.5,"qos":{"metric":"hit_ratio","target":2}}]`,
		"unknown field":    `[{"name":"a","workload":"dlrm","rate":1,"share":0.5,"sahre":0.5}]`,
		"trailing data":    `[{"name":"a","workload":"dlrm","rate":1,"share":0.5}] garbage`,
		"not an array":     `{"name":"a"}`,
	}
	for name, in := range bad {
		if _, err := serve.ParseTenantSpecs([]byte(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

func TestValidateWarmup(t *testing.T) {
	t.Parallel()
	tcfg := trace.TransformConfig{LenWindow: 32, LenAccessShot: 256, WarmupFrac: 0.2, TailFrac: 0.1}
	span := 32 * 256 // 8192
	// Global coverage: trimmed warm-up (70%) must reach one access shot.
	if err := serve.ValidateWarmup(span*2, tcfg, nil); err != nil {
		t.Errorf("ample warm-up rejected: %v", err)
	}
	if err := serve.ValidateWarmup(span, tcfg, nil); err == nil {
		t.Error("warm-up shorter than an access shot after trimming was accepted")
	}
	// Per tenant: a rate share below 1/len_window leaves unseen timestamp
	// stripes even when the global trace is long enough.
	starved := []serve.TenantSpec{
		{Name: "big", Workload: "dlrm", RatePerSec: 99e4, Share: 0.5},
		{Name: "tiny", Workload: "dlrm", RatePerSec: 1e4, Share: 0.5}, // 1% < 1/32
	}
	err := serve.ValidateWarmup(span*4, tcfg, starved)
	if err == nil {
		t.Fatal("starved tenant accepted")
	}
	if !strings.Contains(err.Error(), `"tiny"`) {
		t.Errorf("error does not name the starved tenant: %v", err)
	}
	balanced := []serve.TenantSpec{
		{Name: "big", Workload: "dlrm", RatePerSec: 6e5, Share: 0.5},
		{Name: "small", Workload: "dlrm", RatePerSec: 4e5, Share: 0.5},
	}
	if err := serve.ValidateWarmup(span*4, tcfg, balanced); err != nil {
		t.Errorf("balanced tenants rejected: %v", err)
	}
}
