package serve_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
)

// scenarioSpec loads the committed scenario spec — timeline events, closed-loop
// clients and an LSTM shadow policy over three tenants — and pins it to the
// given shard count. Like elasticSpec, the same document is the CLI's smoke
// input, so the fixture and the shipped spec can never drift apart.
func scenarioSpec(t testing.TB, shards int) serve.Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "cmd", "icgmm-serve", "testdata", "spec-scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := serve.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = shards
	return spec
}

// TestServeScenarioGolden pins the full scenario-engine feature set to a
// golden byte stream: a diurnal rate schedule (batch 16), a tenant leave
// (batch 24) and re-join (batch 56) with deterministic capacity rebalance, a
// workload-phase swap (batch 40), closed-loop clients, and a shadow LSTM
// policy. The stream must be bit-identical at shards 1, 2 and 8, and across a
// checkpoint/resume at batch 40 — a boundary that straddles the leave and the
// join, with the phase event landing exactly on it (it must fire once, in the
// resumed half, as it would in an uninterrupted run).
func TestServeScenarioGolden(t *testing.T) {
	t.Parallel()
	goldenPath := filepath.Join("testdata", "scenario_golden.jsonl")

	var full bytes.Buffer
	sess, err := serve.Open(scenarioSpec(t, 1), &full)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	sess.Observe(func(ev serve.Event) { kinds[ev.Kind]++ })
	snapFull, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if kinds[serve.EventTenantLeave] != 1 || kinds[serve.EventTenantJoin] != 1 {
		t.Errorf("tenant churn events = %d leave / %d join, want 1 / 1",
			kinds[serve.EventTenantLeave], kinds[serve.EventTenantJoin])
	}
	if kinds[serve.EventShadowDivergence] == 0 {
		t.Error("no shadow_divergence events despite the committed 0.05 threshold")
	}

	if *updateGolden {
		if err := os.WriteFile(goldenPath, full.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, full.Len())
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(full.Bytes(), golden) {
		t.Errorf("uninterrupted scenario run diverges from the golden file (%d vs %d bytes)", full.Len(), len(golden))
	}

	// The stream must carry every scenario event, at least one rebalance
	// share transfer, and shadow-policy deltas.
	for _, want := range []string{
		`"event":"diurnal"`, `"event":"leave"`, `"event":"phase"`, `"event":"join"`,
		`"kind":"share"`, `"shadow_hit_ratio"`,
	} {
		if !bytes.Contains(golden, []byte(want)) {
			t.Errorf("golden stream lacks %s", want)
		}
	}
	if snapFull.Ops == 0 || !snapFull.Shadow {
		t.Fatalf("scenario snapshot lost its run: ops=%d shadow=%v", snapFull.Ops, snapFull.Shadow)
	}

	for _, shards := range []int{1, 2, 8} {
		var pre bytes.Buffer
		sess, err := serve.Open(scenarioSpec(t, shards), &pre)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := sess.Step(40); err != nil || n != 40 {
			t.Fatalf("shards=%d: Step(40) = %d, %v", shards, n, err)
		}
		var ckpt bytes.Buffer
		if err := sess.Checkpoint(&ckpt); err != nil {
			t.Fatalf("shards=%d: checkpoint: %v", shards, err)
		}
		var post bytes.Buffer
		resumed, err := serve.Resume(bytes.NewReader(ckpt.Bytes()), &post)
		if err != nil {
			t.Fatalf("shards=%d: resume: %v", shards, err)
		}
		snap, err := resumed.Run()
		if err != nil {
			t.Fatal(err)
		}
		concat := append(append([]byte(nil), pre.Bytes()...), post.Bytes()...)
		if !bytes.Equal(concat, golden) {
			t.Errorf("shards=%d: checkpoint-resumed JSONL diverges from the golden file (%d vs %d bytes)",
				shards, len(concat), len(golden))
		}
		// The leave fired before the boundary, the join after it; the phase
		// swap sits exactly on the boundary and must fire in the resumed
		// half only.
		if !bytes.Contains(pre.Bytes(), []byte(`"event":"leave"`)) {
			t.Errorf("shards=%d: leave event missing from the pre-checkpoint stream", shards)
		}
		for _, want := range []string{`"event":"phase"`, `"event":"join"`} {
			if bytes.Contains(pre.Bytes(), []byte(want)) {
				t.Errorf("shards=%d: %s fired before the checkpoint boundary", shards, want)
			}
			if !bytes.Contains(post.Bytes(), []byte(want)) {
				t.Errorf("shards=%d: %s missing from the post-resume stream", shards, want)
			}
		}
		if !reflect.DeepEqual(snap, snapFull) {
			t.Errorf("shards=%d: resumed final snapshot differs from the uninterrupted run", shards)
		}
	}
}

// TestScenarioShadowNoLiveEffect proves the bake-off harness is a pure
// observer: running the committed scenario spec with the shadow block removed
// must produce the exact same stream as the shadowed run once the shadow-only
// JSON fields are stripped, and the live cache/tenant counters must match
// field for field.
func TestScenarioShadowNoLiveEffect(t *testing.T) {
	t.Parallel()
	withSpec := scenarioSpec(t, 1)
	withoutSpec := scenarioSpec(t, 1)
	withoutSpec.Shadow = nil

	var withBuf, withoutBuf bytes.Buffer
	run := func(spec serve.Spec, out *bytes.Buffer) *serve.Snapshot {
		sess, err := serve.Open(spec, out)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	withSnap := run(withSpec, &withBuf)
	withoutSnap := run(withoutSpec, &withoutBuf)

	stripped := stripShadowFields(t, withBuf.String())
	plain := decodeJSONL(t, withoutBuf.String())
	if len(stripped) != len(plain) {
		t.Fatalf("record counts differ: %d with shadow stripped vs %d without", len(stripped), len(plain))
	}
	for i := range plain {
		if !reflect.DeepEqual(stripped[i], plain[i]) {
			t.Fatalf("record %d differs once shadow fields are stripped:\nwith:    %v\nwithout: %v", i, stripped[i], plain[i])
		}
	}

	// Live counters are untouched: identical ops, hits and budgets per
	// tenant, identical aggregate hit ratio and latency distribution.
	if withSnap.Ops != withoutSnap.Ops || withSnap.Cache != withoutSnap.Cache || withSnap.Latency != withoutSnap.Latency {
		t.Errorf("shadow perturbed aggregate counters: with=%+v without=%+v", withSnap, withoutSnap)
	}
	if len(withSnap.Tenants) != len(withoutSnap.Tenants) {
		t.Fatalf("tenant counts differ: %d vs %d", len(withSnap.Tenants), len(withoutSnap.Tenants))
	}
	sawShadowOps := false
	for i := range withSnap.Tenants {
		a, b := withSnap.Tenants[i], withoutSnap.Tenants[i]
		if a.Ops != b.Ops || a.Hits != b.Hits || a.BudgetBlocks != b.BudgetBlocks || a.Latency != b.Latency {
			t.Errorf("tenant %s live counters perturbed by shadow: with=%+v without=%+v", a.Tenant, a, b)
		}
		if a.ShadowOps > 0 {
			sawShadowOps = true
		}
		if b.ShadowOps != 0 || b.ShadowHits != 0 {
			t.Errorf("tenant %s reports shadow counters without a shadow policy", b.Tenant)
		}
	}
	if !sawShadowOps {
		t.Error("shadow run scored no traffic")
	}
}

// stripShadowFields decodes a JSONL stream and deletes every shadow-only key,
// so a shadowed stream can be compared structurally against a shadow-less one.
func stripShadowFields(t testing.TB, stream string) []map[string]any {
	t.Helper()
	recs := decodeJSONL(t, stream)
	out := recs[:0]
	for _, rec := range recs {
		if rec["kind"] == "event" && rec["event"] == "shadow_divergence" {
			continue
		}
		for k := range rec {
			if strings.HasPrefix(k, "shadow_") {
				delete(rec, k)
			}
		}
		out = append(out, rec)
	}
	return out
}

func decodeJSONL(t testing.TB, stream string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(stream), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("decoding %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// TestScenarioRateEvent covers the step-rate event kind: a one-shot rate cut
// mid-run must emit its scenario record and cancel any diurnal schedule in
// force, and the whole thing must survive a checkpoint straddling the events.
func TestScenarioRateEvent(t *testing.T) {
	t.Parallel()
	const doc = `{
		"version": 1,
		"shards": 1,
		"partitions": 4,
		"ops": 24576,
		"warmup": 12000,
		"batch": 1024,
		"report": 4,
		"cache": {"size_mb": 1, "ways": 8},
		"train": {"k": 4, "seed": 1, "max_iters": 5, "max_samples": 2000, "lloyd_iters": 2, "shot": 128},
		"scenario": {"events": [
			{"batch": 4, "kind": "diurnal", "tenant": "a", "rate": 20000, "amp": 0.5, "period": 8},
			{"batch": 16, "kind": "rate", "tenant": "a", "rate": 5000}
		]},
		"tenants": [
			{
				"name": "a",
				"custom": {"Name": "a-ws", "TotalPages": 256, "Clusters": [{"CenterPage": 100, "Spread": 30}], "WriteFrac": 0.2},
				"seed": 1, "rate": 20000, "share": 0.6
			},
			{
				"name": "b",
				"custom": {"Name": "b-ws", "TotalPages": 256, "Clusters": [{"CenterPage": 100, "Spread": 30}], "WriteFrac": 0.2},
				"seed": 2, "rate": 10000, "offset_pages": 65536, "share": 0.4
			}
		]
	}`
	spec, err := serve.ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	sess, err := serve.Open(spec, &full)
	if err != nil {
		t.Fatal(err)
	}
	snapFull, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"event":"diurnal"`, `"event":"rate"`, `"rate_per_sec":5000`} {
		if !bytes.Contains(full.Bytes(), []byte(want)) {
			t.Errorf("stream lacks %s", want)
		}
	}

	// Checkpoint at batch 8: the diurnal schedule is live across the
	// boundary (its per-batch rates must be replayed), the rate cut lands
	// after it.
	spec2, err := serve.ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	var pre bytes.Buffer
	sess2, err := serve.Open(spec2, &pre)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := sess2.Step(8); err != nil || n != 8 {
		t.Fatalf("Step(8) = %d, %v", n, err)
	}
	var ckpt bytes.Buffer
	if err := sess2.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	var post bytes.Buffer
	resumed, err := serve.Resume(bytes.NewReader(ckpt.Bytes()), &post)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	concat := append(append([]byte(nil), pre.Bytes()...), post.Bytes()...)
	if !bytes.Equal(concat, full.Bytes()) {
		t.Errorf("checkpoint-resumed stream diverges from the uninterrupted run (%d vs %d bytes)", len(concat), full.Len())
	}
	if !reflect.DeepEqual(snap, snapFull) {
		t.Error("resumed final snapshot differs from the uninterrupted run")
	}
}

// TestClosedLoopFeedback demonstrates that the closed loop actually closes:
// with two tenants whose open-loop rates differ 5×, unbounded open-loop
// arrivals keep the 5:1 interleaving, while closed-loop clients gate their
// next arrival on simulated completion latency — under saturation the
// think-time term vanishes and the mix collapses toward the user-population
// ratio. The per-tenant ops split must differ measurably between the modes.
func TestClosedLoopFeedback(t *testing.T) {
	t.Parallel()
	const doc = `{
		"version": 1,
		"shards": 1,
		"partitions": 4,
		"ops": 16384,
		"warmup": 12000,
		"batch": 1024,
		"report": 4,
		"cache": {"size_mb": 1, "ways": 8},
		"train": {"k": 4, "seed": 1, "max_iters": 5, "max_samples": 2000, "lloyd_iters": 2, "shot": 128},
		"tenants": [
			{
				"name": "hot",
				"custom": {"Name": "hot-ws", "TotalPages": 256, "Clusters": [{"CenterPage": 100, "Spread": 30}], "WriteFrac": 0.2},
				"seed": 1, "rate": 5000000, "share": 0.5
			},
			{
				"name": "cold",
				"custom": {"Name": "cold-ws", "TotalPages": 256, "Clusters": [{"CenterPage": 100, "Spread": 30}], "WriteFrac": 0.2},
				"seed": 2, "rate": 1000000, "offset_pages": 65536, "share": 0.5
			}
		]
	}`
	open, err := serve.ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	closed, err := serve.ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	closed.Clients = &serve.ClientsSpec{Users: 2}

	tenantOps := func(spec serve.Spec) map[string]uint64 {
		sess, err := serve.Open(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]uint64, len(snap.Tenants))
		for _, ts := range snap.Tenants {
			out[ts.Tenant] = ts.Ops
		}
		return out
	}
	openOps := tenantOps(open)
	closedOps := tenantOps(closed)

	if openOps["hot"] == 0 || closedOps["hot"] == 0 {
		t.Fatalf("missing tenant ops: open=%v closed=%v", openOps, closedOps)
	}
	openFrac := float64(openOps["hot"]) / float64(openOps["hot"]+openOps["cold"])
	closedFrac := float64(closedOps["hot"]) / float64(closedOps["hot"]+closedOps["cold"])
	if openFrac <= closedFrac {
		t.Errorf("closed loop did not feed back: hot tenant fraction open=%.3f closed=%.3f (want open > closed)", openFrac, closedFrac)
	}
	if openFrac-closedFrac < 0.05 {
		t.Errorf("closed-loop arrival mix barely moved: open=%.3f closed=%.3f", openFrac, closedFrac)
	}
}
