package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/fpga"
	"repro/internal/gmm"
	"repro/internal/hbm"
	"repro/internal/linalg"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// checkpointFormat versions the on-disk checkpoint document.
const checkpointFormat = "icgmm-session-v1"

// checkpointDoc is the complete persisted form of a paused session: the
// spec that opened it plus every piece of mutable state the run has
// accumulated. The contract is byte-identity: a session resumed from this
// document emits exactly the metric bytes the uninterrupted run would have
// emitted from this batch boundary on, at any shard count. That forces the
// document to be exhaustive — the scoring bundle (whose stored resident
// scores were possibly rescored by refreshes), every cache's contents and
// owner map, tenant budgets and residency, the controller's hill-climb and
// cooldown state, every histogram including its retained raw samples, and
// the workload streams' RNG cursors. Floats survive the JSON round trip
// exactly (encoding/json emits the shortest representation that re-parses
// to identical bits), so nothing here is approximate.
type checkpointDoc struct {
	Format string       `json:"format"`
	Spec   Spec         `json:"spec"`
	State  serviceState `json:"state"`
	Source sourceState  `json:"source"`
}

type serviceState struct {
	Seq                uint64             `json:"seq"`
	Batches            uint64             `json:"batches"`
	IntervalThroughput stats.WelfordState `json:"interval_throughput"`
	LastIntervalOps    uint64             `json:"last_interval_ops"`
	LastMakespanNs     int64              `json:"last_makespan_ns"`

	Bundle             bundleState      `json:"bundle"`
	Refresher          refresherState   `json:"refresher"`
	Window             windowState      `json:"window"`
	Tenants            []tenantCtlState `json:"tenants"`
	ControllerCooldown int              `json:"controller_cooldown,omitempty"`
	Partitions         []partitionState `json:"partitions"`

	// Dataflow interval cursors (see Service; all omitted under flat timing
	// so flat checkpoints are byte-compatible with earlier builds).
	LastDFQueueSum uint64 `json:"last_df_queue_sum,omitempty"`
	LastDFOps      uint64 `json:"last_df_ops,omitempty"`
	LastDFStalls   uint64 `json:"last_df_stalls,omitempty"`
	LastGMMBusy    int64  `json:"last_gmm_busy,omitempty"`
	LastSSDBusy    int64  `json:"last_ssd_busy,omitempty"`
	LastCtrlBusy   int64  `json:"last_ctrl_busy,omitempty"`
	LastWallCycles int64  `json:"last_wall_cycles,omitempty"`
}

// bundleState is the active scoring bundle: the GMM's components verbatim
// (restored without renormalization, see gmm.RestoreModel), the fitted
// normalizer, and the calibrated base threshold.
type bundleState struct {
	Components []componentState `json:"components"`
	Norm       trace.Normalizer `json:"norm"`
	Threshold  float64          `json:"threshold"`
}

type componentState struct {
	Weight float64    `json:"weight"`
	Mean   [2]float64 `json:"mean"`
	Cov    [3]float64 `json:"cov"` // xx, xy, yy of the symmetric covariance
}

type refresherState struct {
	Started     uint64        `json:"started"`
	Installed   uint64        `json:"installed"`
	Failed      uint64        `json:"failed,omitempty"`
	PendingFire bool          `json:"pending_fire,omitempty"`
	Detector    detectorState `json:"detector"`
}

type detectorState struct {
	Baseline float64 `json:"baseline"`
	Seen     int     `json:"seen"`
	Bad      int     `json:"bad,omitempty"`
	Good     int     `json:"good,omitempty"`
	Fired    bool    `json:"fired,omitempty"`
}

// windowState captures the refit sample ring in its exact layout: Items is
// buf[:pos] while filling, the whole ring (wrap point and all) once full.
type windowState struct {
	Items []trace.Sample `json:"items,omitempty"`
	Pos   int            `json:"pos"`
	Full  bool           `json:"full,omitempty"`
}

// tenantCtlState is one tenant's serving-time state: the controller's
// accumulated multiplier and hill-climb memory.
type tenantCtlState struct {
	Mult            float64 `json:"mult"`
	Threshold       float64 `json:"threshold"`
	LastMetric      float64 `json:"last_metric,omitempty"`
	LastWithin      bool    `json:"last_within,omitempty"`
	LastValid       bool    `json:"last_valid,omitempty"`
	CtrlDir         float64 `json:"ctrl_dir"`
	CtrlPrevViolate bool    `json:"ctrl_prev_violate,omitempty"`
	SatHold         int     `json:"sat_hold,omitempty"`
	// EWMA of the tenant's measured headroom (donor selection); omitted for
	// tenants that were never measured so earlier checkpoints round-trip.
	HeadroomEWMA float64 `json:"headroom_ewma,omitempty"`
	HeadroomSeen bool    `json:"headroom_seen,omitempty"`
}

// partitionState is one partition's complete device state.
type partitionState struct {
	Cache        cache.State          `json:"cache"`
	Policy       policyState          `json:"policy"`
	HBM          hbm.State            `json:"hbm"`
	SSD          ssd.State            `json:"ssd"`
	Link         cxl.Stats            `json:"link"`
	NowNs        int64                `json:"now_ns"`
	EngineBusyNs int64                `json:"engine_busy_ns,omitempty"`
	Ops          uint64               `json:"ops"`
	Hist         stats.HistogramState `json:"hist"`
	Tenants      []tenantCellState    `json:"tenants"`

	// Dataflow timing state (omitted under flat timing): the fpga timeline's
	// cursors and outstanding-window occupancy, plus the partition's
	// host-routing and queue-depth accounting.
	Dataflow   *fpga.TimelineState `json:"dataflow,omitempty"`
	HostOps    uint64              `json:"host_ops,omitempty"`
	DFOps      uint64              `json:"df_ops,omitempty"`
	DFQueueSum uint64              `json:"df_queue_sum,omitempty"`
	DFStalls   uint64              `json:"df_stalls,omitempty"`

	// Shadow-policy state (omitted when no shadow is configured, keeping
	// shadow-less checkpoints byte-compatible with earlier builds).
	Shadow *shadowPartState `json:"shadow,omitempty"`
}

// policyState is the tenant policy engine's per-partition state: the stored
// eviction keys, the owner map, and the capacity ledger.
type policyState struct {
	Scores     [][]float64 `json:"scores"`
	LastUse    [][]uint64  `json:"last_use"`
	Owner      [][]int16   `json:"owner"`
	Thresholds []float64   `json:"thresholds"`
	Budget     []int       `json:"budget"`
	Resident   []int       `json:"resident"`
}

// tenantCellState is one (partition, tenant) accounting cell.
type tenantCellState struct {
	Ops           uint64                `json:"ops,omitempty"`
	Hits          uint64                `json:"hits,omitempty"`
	BytesAdmitted uint64                `json:"bytes_admitted,omitempty"`
	Hist          stats.HistogramState  `json:"hist"`
	CXL           stats.HistogramState  `json:"cxl"`
	HBM           stats.HistogramState  `json:"hbm"`
	SSD           stats.HistogramState  `json:"ssd"`
	CtrlOps       uint64                `json:"ctrl_ops,omitempty"`
	CtrlHits      uint64                `json:"ctrl_hits,omitempty"`
	CtrlQueueSum  uint64                `json:"ctrl_queue_sum,omitempty"`
	CtrlHist      *stats.HistogramState `json:"ctrl_hist,omitempty"`
	LatSumNs      int64                 `json:"lat_sum_ns,omitempty"`
}

// sourceState is the workload stream's cursor: which of the two source
// shapes the spec built, how many requests remain, and the underlying
// generator state (segment index, in-segment position, virtual clock, shift
// flags — everything needed to regenerate the stream mid-flight).
type sourceState struct {
	Remaining uint64                  `json:"remaining"`
	Mux       *workload.MuxState      `json:"mux,omitempty"`
	OpenLoop  *workload.OpenLoopState `json:"open_loop,omitempty"`
}

// Checkpoint serializes the session's full mutable state to w. It may only
// be called between Steps — which is the only time a caller can call it,
// since sessions are single-goroutine — and is non-destructive: the session
// keeps serving afterwards, and the same session may be checkpointed many
// times. Under asynchronous refresh an in-flight refit is drained and
// installed first (async runs have already traded away byte-determinism;
// sync and off modes are unaffected).
//
// A checkpoint taken here is presumed to seed a resume elsewhere: until the
// session Steps again, Close is an error and Detach is the way to tear it
// down (see Close). The periodic CheckpointEvery hook does not carry this
// presumption.
func (s *Session) Checkpoint(w io.Writer) error {
	if err := s.checkpointTo(w); err != nil {
		return err
	}
	s.ckptPending = true
	return nil
}

// checkpointTo is Checkpoint without the resume-elsewhere presumption — the
// shared core of the public method and the CheckpointEvery hook.
func (s *Session) checkpointTo(w io.Writer) error {
	if s.closed {
		return errors.New("serve: cannot checkpoint a closed session")
	}
	// A checkpoint presumes the metric stream up to here reached the sink:
	// fail now if it didn't, rather than resume from a checkpoint whose
	// preceding records were silently dropped.
	if s.svc.metrics.err != nil {
		return fmt.Errorf("serve: metrics sink: %w", s.svc.metrics.err)
	}
	s.svc.refresher.wait()
	st, err := s.svc.exportState()
	if err != nil {
		return err
	}
	doc := checkpointDoc{Format: checkpointFormat, Spec: s.spec, State: st}
	doc.Source.Remaining = s.spec.EffectiveOps() - s.svc.seq
	switch {
	case s.mux != nil:
		ms := s.mux.State()
		doc.Source.Mux = &ms
	case s.ol != nil:
		os := s.ol.State()
		doc.Source.OpenLoop = &os
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	s.svc.emit(Event{Kind: EventCheckpoint})
	return nil
}

// Resume rebuilds a session from a checkpoint written by Checkpoint,
// possibly in another process. The restored session continues the run
// exactly where it paused: no retraining happens (the scoring bundle is
// part of the checkpoint), and the metric records it writes to metrics
// continue the paused session's stream byte for byte.
func Resume(r io.Reader, metrics io.Writer) (*Session, error) {
	var doc checkpointDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("serve: decoding checkpoint: %w", err)
	}
	if doc.Format != checkpointFormat {
		return nil, fmt.Errorf("serve: unknown checkpoint format %q (this build reads %q)", doc.Format, checkpointFormat)
	}
	kind := ScoringFloat64
	if doc.Spec.Scoring != "" {
		k, err := ParseScoringKind(doc.Spec.Scoring)
		if err != nil {
			return nil, err
		}
		kind = k
	}
	bundle, err := doc.State.Bundle.restore(kind)
	if err != nil {
		return nil, err
	}
	sess, err := openWithBundle(doc.Spec, metrics, bundle)
	if err != nil {
		return nil, err
	}
	if err := sess.svc.restoreState(doc.State); err != nil {
		return nil, err
	}
	switch {
	case doc.Source.Mux != nil:
		if sess.mux == nil {
			return nil, errors.New("serve: checkpoint carries a mux source but the spec is single-stream")
		}
		// Replay the scenario timeline's already-applied prefix before the
		// mux cursor lands: restoring an open-loop stream regenerates its
		// in-flight trace segment from the current generator, so phase swaps
		// (and rates, which are not part of the stream state) must be
		// re-derived first.
		if err := sess.replayScenario(); err != nil {
			return nil, err
		}
		if err := sess.mux.RestoreState(*doc.Source.Mux); err != nil {
			return nil, err
		}
		sess.src.(*muxSource).remaining = doc.Source.Remaining
		sess.syncFeedbackCursors()
	case doc.Source.OpenLoop != nil:
		if sess.ol == nil {
			return nil, errors.New("serve: checkpoint carries an open-loop source but the spec is multi-tenant")
		}
		if err := sess.ol.RestoreState(*doc.Source.OpenLoop); err != nil {
			return nil, err
		}
		sess.src.(*openLoopSource).remaining = doc.Source.Remaining
	default:
		return nil, errors.New("serve: checkpoint carries no source state")
	}
	return sess, nil
}

// exportState captures the service's mutable state at a batch boundary.
func (s *Service) exportState() (serviceState, error) {
	b := s.refresher.bundle.Load()
	bs, err := exportBundle(b)
	if err != nil {
		return serviceState{}, err
	}
	st := serviceState{
		Seq:                s.seq,
		Batches:            s.batches,
		IntervalThroughput: s.intervalThroughput.State(),
		LastIntervalOps:    s.lastIntervalOps,
		LastMakespanNs:     s.lastMakespan,
		Bundle:             bs,
		Refresher: refresherState{
			Started:     s.refresher.started,
			Installed:   s.refresher.installed,
			Failed:      s.refresher.failed.Load(),
			PendingFire: s.refresher.pendingFire,
			Detector: detectorState{
				Baseline: s.refresher.detector.baseline,
				Seen:     s.refresher.detector.seen,
				Bad:      s.refresher.detector.bad,
				Good:     s.refresher.detector.good,
				Fired:    s.refresher.detector.fired,
			},
		},
		Window:  s.window.state(),
		Tenants: make([]tenantCtlState, len(s.tenants)),
	}
	for i, t := range s.tenants {
		st.Tenants[i] = tenantCtlState{
			Mult:            t.mult,
			Threshold:       t.threshold,
			LastMetric:      t.lastMetric,
			LastWithin:      t.lastWithin,
			LastValid:       t.lastValid,
			CtrlDir:         t.ctrlDir,
			CtrlPrevViolate: t.ctrlPrevViolate,
			SatHold:         t.satHold,
			HeadroomEWMA:    t.headroomEWMA,
			HeadroomSeen:    t.headroomSeen,
		}
	}
	if s.ctrl != nil {
		st.ControllerCooldown = s.ctrl.cooldown
	}
	st.LastDFQueueSum = s.lastDFQueueSum
	st.LastDFOps = s.lastDFOps
	st.LastDFStalls = s.lastDFStalls
	st.LastGMMBusy = s.lastGMMBusy
	st.LastSSDBusy = s.lastSSDBusy
	st.LastCtrlBusy = s.lastCtrlBusy
	st.LastWallCycles = s.lastWallCycles
	st.Partitions = make([]partitionState, len(s.parts))
	for i, p := range s.parts {
		ps := partitionState{
			Cache:        p.cache.Dump(),
			Policy:       p.pol.exportState(),
			HBM:          p.mem.State(),
			SSD:          p.dev.State(),
			Link:         p.link.Stats(),
			NowNs:        p.now,
			EngineBusyNs: p.engineBusy,
			Ops:          p.ops,
			Hist:         p.hist.State(),
			Tenants:      make([]tenantCellState, len(p.ten)),
			HostOps:      p.hostOps,
			DFOps:        p.dfOps,
			DFQueueSum:   p.dfQueueSum,
			DFStalls:     p.dfStalls,
		}
		if tl := p.model.timeline(); tl != nil {
			tls := tl.State()
			ps.Dataflow = &tls
		}
		if p.shadow != nil {
			ss := p.shadow.exportState()
			ps.Shadow = &ss
		}
		for t := range p.ten {
			cell := &p.ten[t]
			cs := tenantCellState{
				Ops:           cell.ops,
				Hits:          cell.hits,
				BytesAdmitted: cell.bytesAdmitted,
				Hist:          cell.hist.State(),
				CXL:           cell.cxlHist.State(),
				HBM:           cell.hbmHist.State(),
				SSD:           cell.ssdHist.State(),
				CtrlOps:       cell.ctrlOps,
				CtrlHits:      cell.ctrlHits,
				CtrlQueueSum:  cell.ctrlQueueSum,
				LatSumNs:      cell.latSumNs,
			}
			if cell.ctrlHist != nil {
				hs := cell.ctrlHist.State()
				cs.CtrlHist = &hs
			}
			ps.Tenants[t] = cs
		}
		st.Partitions[i] = ps
	}
	return st, nil
}

// restoreState replaces the freshly-built service's mutable state with the
// checkpointed one. The service must have been built from the same spec.
func (s *Service) restoreState(st serviceState) error {
	if len(st.Partitions) != len(s.parts) {
		return fmt.Errorf("serve: checkpoint has %d partitions, spec builds %d", len(st.Partitions), len(s.parts))
	}
	if len(st.Tenants) != len(s.tenants) {
		return fmt.Errorf("serve: checkpoint has %d tenants, spec builds %d", len(st.Tenants), len(s.tenants))
	}
	s.seq = st.Seq
	s.batches = st.Batches
	s.intervalThroughput.RestoreState(st.IntervalThroughput)
	s.lastIntervalOps = st.LastIntervalOps
	s.lastMakespan = st.LastMakespanNs
	s.refresher.started = st.Refresher.Started
	s.refresher.installed = st.Refresher.Installed
	s.refresher.failed.Store(st.Refresher.Failed)
	s.refresher.pendingFire = st.Refresher.PendingFire
	s.refresher.detector.baseline = st.Refresher.Detector.Baseline
	s.refresher.detector.seen = st.Refresher.Detector.Seen
	s.refresher.detector.bad = st.Refresher.Detector.Bad
	s.refresher.detector.good = st.Refresher.Detector.Good
	s.refresher.detector.fired = st.Refresher.Detector.Fired
	if err := s.window.restore(st.Window); err != nil {
		return err
	}
	for i, ts := range st.Tenants {
		t := s.tenants[i]
		t.mult = ts.Mult
		t.threshold = ts.Threshold
		t.lastMetric = ts.LastMetric
		t.lastWithin = ts.LastWithin
		t.lastValid = ts.LastValid
		t.ctrlDir = ts.CtrlDir
		t.ctrlPrevViolate = ts.CtrlPrevViolate
		t.satHold = ts.SatHold
		t.headroomEWMA = ts.HeadroomEWMA
		t.headroomSeen = ts.HeadroomSeen
	}
	if s.ctrl != nil {
		s.ctrl.cooldown = st.ControllerCooldown
	}
	s.lastDFQueueSum = st.LastDFQueueSum
	s.lastDFOps = st.LastDFOps
	s.lastDFStalls = st.LastDFStalls
	s.lastGMMBusy = st.LastGMMBusy
	s.lastSSDBusy = st.LastSSDBusy
	s.lastCtrlBusy = st.LastCtrlBusy
	s.lastWallCycles = st.LastWallCycles
	for i, ps := range st.Partitions {
		p := s.parts[i]
		if err := p.cache.LoadDump(ps.Cache); err != nil {
			return err
		}
		if err := p.pol.restoreState(ps.Policy); err != nil {
			return err
		}
		if err := p.mem.RestoreState(ps.HBM); err != nil {
			return err
		}
		if err := p.dev.RestoreState(ps.SSD); err != nil {
			return err
		}
		p.link.RestoreStats(ps.Link)
		p.now = ps.NowNs
		p.engineBusy = ps.EngineBusyNs
		p.ops = ps.Ops
		p.hostOps = ps.HostOps
		p.dfOps = ps.DFOps
		p.dfQueueSum = ps.DFQueueSum
		p.dfStalls = ps.DFStalls
		switch tl := p.model.timeline(); {
		case tl == nil && ps.Dataflow != nil:
			return fmt.Errorf("serve: checkpoint partition %d carries dataflow timeline state but the spec's timing is flat", i)
		case tl != nil && ps.Dataflow == nil:
			return fmt.Errorf("serve: spec timing is dataflow but checkpoint partition %d has no timeline state", i)
		case tl != nil:
			if err := tl.RestoreState(*ps.Dataflow); err != nil {
				return fmt.Errorf("serve: checkpoint partition %d: %w", i, err)
			}
		}
		switch {
		case ps.Shadow != nil && p.shadow != nil:
			if err := p.shadow.restoreState(*ps.Shadow); err != nil {
				return fmt.Errorf("serve: checkpoint partition %d shadow: %w", i, err)
			}
		case ps.Shadow != nil || p.shadow != nil:
			return fmt.Errorf("serve: checkpoint partition %d shadow-policy presence mismatch with the spec", i)
		}
		if err := p.hist.RestoreState(ps.Hist); err != nil {
			return err
		}
		if len(ps.Tenants) != len(p.ten) {
			return fmt.Errorf("serve: checkpoint partition %d has %d tenant cells, spec builds %d", i, len(ps.Tenants), len(p.ten))
		}
		for t, cs := range ps.Tenants {
			cell := &p.ten[t]
			cell.ops = cs.Ops
			cell.hits = cs.Hits
			cell.bytesAdmitted = cs.BytesAdmitted
			if err := cell.hist.RestoreState(cs.Hist); err != nil {
				return err
			}
			if err := cell.cxlHist.RestoreState(cs.CXL); err != nil {
				return err
			}
			if err := cell.hbmHist.RestoreState(cs.HBM); err != nil {
				return err
			}
			if err := cell.ssdHist.RestoreState(cs.SSD); err != nil {
				return err
			}
			cell.ctrlOps = cs.CtrlOps
			cell.ctrlHits = cs.CtrlHits
			cell.ctrlQueueSum = cs.CtrlQueueSum
			cell.latSumNs = cs.LatSumNs
			switch {
			case cs.CtrlHist != nil && cell.ctrlHist != nil:
				if err := cell.ctrlHist.RestoreState(*cs.CtrlHist); err != nil {
					return err
				}
			case cs.CtrlHist != nil || (cell.ctrlHist != nil && cell.ctrlHist.Count() != 0):
				return fmt.Errorf("serve: checkpoint partition %d tenant %d control-histogram presence mismatch", i, t)
			}
		}
	}
	return nil
}

// exportBundle flattens the active bundle. Checkpoints always persist the
// float model: under q16 scoring the quantized form is a pure function of it
// (and of the spec's scoring field), so resume re-derives it bit-identically
// instead of widening the wire format.
func exportBundle(b *Bundle) (bundleState, error) {
	model := b.Model
	if model == nil {
		var ok bool
		model, ok = b.Scorer.(*gmm.Model)
		if !ok {
			return bundleState{}, fmt.Errorf("serve: cannot checkpoint scorer of type %T without its float model", b.Scorer)
		}
	}
	bs := bundleState{
		Components: make([]componentState, len(model.Components)),
		Norm:       b.Norm,
		Threshold:  b.Threshold,
	}
	for i, c := range model.Components {
		bs.Components[i] = componentState{
			Weight: c.Weight,
			Mean:   [2]float64{c.Mean.X, c.Mean.Y},
			Cov:    [3]float64{c.Cov.XX, c.Cov.XY, c.Cov.YY},
		}
	}
	return bs, nil
}

// restore rebuilds the bundle, bit-identically: components are fed through
// gmm.RestoreModel, which re-derives cached quantities without the weight
// renormalization that would perturb low-order bits. Under q16 scoring the
// quantized scorer is re-derived from the restored float model — Quantize is
// deterministic, so the resumed run scores the same bits the paused one did.
func (bs bundleState) restore(kind ScoringKind) (*Bundle, error) {
	comps := make([]gmm.Component, len(bs.Components))
	for i, c := range bs.Components {
		comps[i] = gmm.Component{
			Weight: c.Weight,
			Mean:   linalg.V2(c.Mean[0], c.Mean[1]),
			Cov:    linalg.Sym2{XX: c.Cov[0], XY: c.Cov[1], YY: c.Cov[2]},
		}
	}
	model, err := gmm.RestoreModel(comps)
	if err != nil {
		return nil, fmt.Errorf("serve: restoring checkpoint bundle: %w", err)
	}
	b := &Bundle{Model: model, Scorer: model, Norm: bs.Norm, Threshold: bs.Threshold}
	if kind == ScoringQ16 {
		qm, rep := gmm.Quantize(model)
		if rep.Saturated > 0 {
			return nil, fmt.Errorf("serve: restoring checkpoint bundle: %d model constants saturate Q16.16", rep.Saturated)
		}
		b.Scorer = qm
		b.Quant = rep
	}
	return b, nil
}

// exportState snapshots the policy engine's per-partition state.
func (p *tenantGMM) exportState() policyState {
	st := policyState{
		Scores:     make([][]float64, p.nSets),
		LastUse:    make([][]uint64, p.nSets),
		Owner:      make([][]int16, p.nSets),
		Thresholds: append([]float64(nil), p.thresholds...),
		Budget:     append([]int(nil), p.budget...),
		Resident:   append([]int(nil), p.resident...),
	}
	for i := 0; i < p.nSets; i++ {
		st.Scores[i] = append([]float64(nil), p.scores[i]...)
		st.LastUse[i] = append([]uint64(nil), p.lastUse[i]...)
		st.Owner[i] = append([]int16(nil), p.owner[i]...)
	}
	return st
}

// restoreState replaces the policy engine's state. Geometry and tenant
// count must match the freshly-attached engine.
func (p *tenantGMM) restoreState(st policyState) error {
	if len(st.Scores) != p.nSets || len(st.LastUse) != p.nSets || len(st.Owner) != p.nSets {
		return fmt.Errorf("serve: checkpoint policy state has %d sets, engine has %d", len(st.Scores), p.nSets)
	}
	if len(st.Thresholds) != len(p.thresholds) || len(st.Budget) != len(p.budget) || len(st.Resident) != len(p.resident) {
		return errors.New("serve: checkpoint policy state tenant count mismatch")
	}
	for i := 0; i < p.nSets; i++ {
		if len(st.Scores[i]) != p.ways || len(st.LastUse[i]) != p.ways || len(st.Owner[i]) != p.ways {
			return fmt.Errorf("serve: checkpoint policy state set %d has wrong way count", i)
		}
		copy(p.scores[i], st.Scores[i])
		copy(p.lastUse[i], st.LastUse[i])
		copy(p.owner[i], st.Owner[i])
	}
	copy(p.thresholds, st.Thresholds)
	copy(p.budget, st.Budget)
	copy(p.resident, st.Resident)
	return nil
}

// state exports the refit sample ring in its exact layout.
func (w *sampleWindow) state() windowState {
	st := windowState{Pos: w.pos, Full: w.full}
	if w.full {
		st.Items = append([]trace.Sample(nil), w.buf...)
	} else if w.pos > 0 {
		st.Items = append([]trace.Sample(nil), w.buf[:w.pos]...)
	}
	return st
}

// restore rebuilds the ring. The receiver's capacity (from the spec) must
// accommodate the checkpointed layout.
func (w *sampleWindow) restore(st windowState) error {
	switch {
	case st.Full:
		if len(st.Items) != len(w.buf) {
			return fmt.Errorf("serve: checkpoint window holds %d samples, spec sizes the ring at %d", len(st.Items), len(w.buf))
		}
		copy(w.buf, st.Items)
	default:
		if len(st.Items) != st.Pos || st.Pos > len(w.buf) {
			return errors.New("serve: checkpoint window cursor inconsistent with its samples")
		}
		copy(w.buf[:st.Pos], st.Items)
	}
	w.pos, w.full = st.Pos, st.Full
	return nil
}
