package serve

import (
	"testing"

	"repro/internal/trace"
)

// feed pushes a constant hit ratio n times and returns how many fires.
func feed(d *DriftDetector, hr float64, n int) int {
	fires := 0
	for i := 0; i < n; i++ {
		if d.Observe(hr) {
			fires++
		}
	}
	return fires
}

// TestDriftDetectorFiresOncePerEpisode pins the exactly-once contract: a
// sustained drop fires one refresh no matter how long it lasts, recovery
// re-arms, and a second episode fires exactly once more.
func TestDriftDetectorFiresOncePerEpisode(t *testing.T) {
	d := NewDriftDetector(DriftConfig{Delta: 0.2, Sustain: 3, Warmup: 5, Alpha: 0.1})

	if got := feed(d, 0.9, 5); got != 0 {
		t.Fatalf("fired %d times during warmup", got)
	}
	if got := feed(d, 0.88, 10); got != 0 {
		t.Fatalf("fired %d times on steady traffic", got)
	}

	// Episode 1: a sustained collapse fires exactly once, however long the
	// episode drags on before the refreshed model takes hold.
	if got := feed(d, 0.3, 40); got != 1 {
		t.Fatalf("episode 1: fired %d times, want 1", got)
	}
	if !d.Fired() {
		t.Fatal("detector should still be inside the fired episode")
	}

	// Recovery re-arms after Sustain good batches.
	if got := feed(d, 0.88, 5); got != 0 {
		t.Fatalf("fired %d times during recovery", got)
	}
	if d.Fired() {
		t.Fatal("detector did not re-arm after recovery")
	}

	// Episode 2 fires exactly once more.
	if got := feed(d, 0.3, 20); got != 1 {
		t.Fatalf("episode 2: fired %d times, want 1", got)
	}
}

// TestDriftDetectorIgnoresBlips: fewer than Sustain bad batches never fire,
// and the baseline keeps tracking slow decay without firing.
func TestDriftDetectorIgnoresBlips(t *testing.T) {
	d := NewDriftDetector(DriftConfig{Delta: 0.2, Sustain: 3, Warmup: 5, Alpha: 0.1})
	feed(d, 0.9, 8)
	for i := 0; i < 10; i++ {
		// Two bad batches then a good one, repeatedly: never sustained.
		if feed(d, 0.3, 2) != 0 || feed(d, 0.9, 1) != 0 {
			t.Fatal("blip fired the detector")
		}
	}
	// A slow decay the EWMA can follow: baseline tracks it down, no fire.
	d2 := NewDriftDetector(DriftConfig{Delta: 0.2, Sustain: 3, Warmup: 5, Alpha: 0.5})
	feed(d2, 0.9, 8)
	hr := 0.9
	for i := 0; i < 50; i++ {
		hr -= 0.005
		if d2.Observe(hr) {
			t.Fatalf("slow decay fired at step %d (baseline %.3f, hr %.3f)", i, d2.Baseline(), hr)
		}
	}
}

func TestDriftDetectorBaselineFrozenWhileFired(t *testing.T) {
	d := NewDriftDetector(DriftConfig{Delta: 0.2, Sustain: 2, Warmup: 3, Alpha: 0.5})
	feed(d, 0.9, 3)
	feed(d, 0.3, 2) // fires
	base := d.Baseline()
	feed(d, 0.3, 20) // still drifting: baseline must not chase the collapse
	if d.Baseline() != base {
		t.Fatalf("baseline moved during fired episode: %v -> %v", base, d.Baseline())
	}
}

func TestSampleWindow(t *testing.T) {
	w := newSampleWindow(4)
	for i := 0; i < 3; i++ {
		w.push(float64(i), float64(i))
	}
	if w.size() != 3 {
		t.Fatalf("size = %d", w.size())
	}
	snap := w.snapshot()
	if len(snap) != 3 || snap[0].Page != 0 || snap[2].Page != 2 {
		t.Fatalf("partial snapshot = %v", snap)
	}
	for i := 3; i < 10; i++ {
		w.push(float64(i), float64(i))
	}
	if w.size() != 4 {
		t.Fatalf("full size = %d", w.size())
	}
	snap = w.snapshot()
	// Chronological order, oldest first: 6,7,8,9.
	for i, s := range snap {
		if s.Page != float64(6+i) {
			t.Fatalf("wrapped snapshot = %v", snap)
		}
	}
}

func TestTimestampForMatchesTransformer(t *testing.T) {
	// The sanitized zero config is the paper's (32, 10000) windowing; 700k
	// steps cover two full access-shot wraps.
	cfg := trace.TransformConfig{}.Sanitized()
	tt := trace.NewTimestampTransformer(cfg)
	for seq := uint64(0); seq < 700_000; seq++ {
		want := tt.Next()
		if got := timestampFor(seq, cfg.LenWindow, cfg.LenAccessShot); got != want {
			t.Fatalf("seq %d: timestampFor = %d, transformer = %d", seq, got, want)
		}
	}
}

func TestParseRefreshMode(t *testing.T) {
	for s, want := range map[string]RefreshMode{"off": RefreshOff, "sync": RefreshSync, "async": RefreshAsync} {
		got, err := ParseRefreshMode(s)
		if err != nil || got != want {
			t.Errorf("ParseRefreshMode(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("String() round trip: %q != %q", got.String(), s)
		}
	}
	if _, err := ParseRefreshMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}
