package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/gmm"
	"repro/internal/trace"
)

// RefreshMode selects how online model refresh runs.
type RefreshMode int

const (
	// RefreshOff disables refresh: the initial bundle serves forever.
	RefreshOff RefreshMode = iota
	// RefreshSync refits at the batch boundary that triggered it: serving
	// pauses for one refit (itself sharded over the worker pool), and
	// results stay bit-identical at any shard count — the deterministic
	// mode the tests pin.
	RefreshSync
	// RefreshAsync refits on a background goroutine and installs the new
	// bundle at the first batch boundary after training completes, so
	// serving never blocks on training. Which batch that is depends on
	// wall-clock training time, so async runs trade the determinism
	// contract for zero serving stalls.
	RefreshAsync
)

// String names the mode as the -refresh flag spells it.
func (m RefreshMode) String() string {
	switch m {
	case RefreshSync:
		return "sync"
	case RefreshAsync:
		return "async"
	default:
		return "off"
	}
}

// ParseRefreshMode maps a -refresh flag value to its mode.
func ParseRefreshMode(s string) (RefreshMode, error) {
	switch s {
	case "off":
		return RefreshOff, nil
	case "sync":
		return RefreshSync, nil
	case "async":
		return RefreshAsync, nil
	}
	return RefreshOff, fmt.Errorf("serve: unknown refresh mode %q (valid: off|sync|async)", s)
}

// DriftConfig parameterizes the hit-ratio drift detector.
type DriftConfig struct {
	// Delta is how far (in absolute hit-ratio) a batch must fall below the
	// baseline to count as drifting.
	Delta float64
	// Sustain is the number of consecutive drifting batches required to
	// fire — one noisy batch never triggers a refit — and, symmetrically,
	// the number of consecutive recovered batches required to re-arm.
	Sustain int
	// Warmup is the number of batches used to seed the baseline before the
	// detector arms.
	Warmup int
	// Alpha is the EWMA coefficient of the baseline tracker.
	Alpha float64
}

// DefaultDriftConfig returns a detector tuned for ~8k-request batches: a
// sustained 10-point hit-ratio drop over 3 batches fires.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{Delta: 0.10, Sustain: 3, Warmup: 8, Alpha: 0.05}
}

// Validate checks the parameters.
func (c DriftConfig) Validate() error {
	if c.Delta <= 0 || c.Delta >= 1 {
		return errors.New("serve: drift delta outside (0,1)")
	}
	if c.Sustain <= 0 || c.Warmup < 1 {
		return errors.New("serve: non-positive drift sustain/warmup")
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return errors.New("serve: drift alpha outside (0,1]")
	}
	return nil
}

// DriftDetector is a hysteresis state machine over per-batch hit ratios: it
// fires exactly once per sustained drift episode. While armed, Sustain
// consecutive batches below baseline-Delta fire it; once fired it stays
// silent (and freezes the baseline) until Sustain consecutive batches back
// within Delta of the baseline re-arm it — so a refresh that restores the
// hit ratio re-arms the detector for the next episode, while an episode the
// refresh cannot cure does not retrain in a loop.
type DriftDetector struct {
	cfg      DriftConfig
	baseline float64
	seen     int
	bad      int
	good     int
	fired    bool
}

// NewDriftDetector builds a detector; zero-valued fields take defaults.
func NewDriftDetector(cfg DriftConfig) *DriftDetector {
	d := DefaultDriftConfig()
	if cfg.Delta == 0 {
		cfg.Delta = d.Delta
	}
	if cfg.Sustain == 0 {
		cfg.Sustain = d.Sustain
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = d.Warmup
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = d.Alpha
	}
	return &DriftDetector{cfg: cfg}
}

// Baseline returns the current EWMA hit-ratio baseline.
func (d *DriftDetector) Baseline() float64 { return d.baseline }

// Fired reports whether the detector is inside a fired episode.
func (d *DriftDetector) Fired() bool { return d.fired }

// Observe feeds one batch hit ratio and reports whether a refresh should
// fire now.
func (d *DriftDetector) Observe(hitRatio float64) bool {
	d.seen++
	if d.seen <= d.cfg.Warmup {
		if d.seen == 1 {
			d.baseline = hitRatio
		} else {
			d.baseline += d.cfg.Alpha * (hitRatio - d.baseline)
		}
		return false
	}
	drifting := hitRatio < d.baseline-d.cfg.Delta
	if d.fired {
		if drifting {
			d.good = 0
			return false
		}
		d.baseline += d.cfg.Alpha * (hitRatio - d.baseline)
		d.good++
		if d.good >= d.cfg.Sustain {
			d.fired = false
			d.good = 0
		}
		return false
	}
	if drifting {
		d.bad++
		if d.bad >= d.cfg.Sustain {
			d.fired = true
			d.bad = 0
			return true
		}
		return false
	}
	d.bad = 0
	d.baseline += d.cfg.Alpha * (hitRatio - d.baseline)
	return false
}

// RefreshConfig configures online model refresh.
type RefreshConfig struct {
	// Mode selects off/sync/async (see RefreshMode).
	Mode RefreshMode
	// Drift parameterizes the trigger.
	Drift DriftConfig
	// WindowSamples is the ring of recent (page, timestamp) observations a
	// refit trains on (default 65536).
	WindowSamples int
	// MinSamples is the minimum window fill before a refit is attempted.
	MinSamples int
}

// DefaultRefreshConfig returns refresh disabled with sensible refit
// parameters, so enabling is just setting Mode.
func DefaultRefreshConfig() RefreshConfig {
	return RefreshConfig{
		Mode:          RefreshOff,
		Drift:         DefaultDriftConfig(),
		WindowSamples: 1 << 16,
		MinSamples:    4096,
	}
}

// Validate checks the configuration.
func (c RefreshConfig) Validate() error {
	if c.Mode == RefreshOff {
		return nil
	}
	if c.WindowSamples <= 1 {
		return errors.New("serve: refresh window too small")
	}
	if c.MinSamples < 2 {
		return errors.New("serve: refresh minimum sample count too small")
	}
	if c.MinSamples > c.WindowSamples {
		// The window caps at WindowSamples, so a larger MinSamples could
		// never be met: a latched drift fire would wait forever.
		return fmt.Errorf("serve: refresh MinSamples %d exceeds WindowSamples %d", c.MinSamples, c.WindowSamples)
	}
	return c.Drift.Validate()
}

// sampleWindow is a ring of the most recent raw (page, timestamp) samples.
// Only the ingest loop touches it; refits snapshot it into a fresh slice.
type sampleWindow struct {
	buf  []trace.Sample
	pos  int
	full bool
}

func newSampleWindow(capacity int) *sampleWindow {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &sampleWindow{buf: make([]trace.Sample, capacity)}
}

func (w *sampleWindow) push(page, ts float64) {
	w.buf[w.pos] = trace.Sample{Page: page, Timestamp: ts}
	w.pos++
	if w.pos == len(w.buf) {
		w.pos = 0
		w.full = true
	}
}

func (w *sampleWindow) size() int {
	if w.full {
		return len(w.buf)
	}
	return w.pos
}

// snapshot copies the window in chronological order (oldest first).
func (w *sampleWindow) snapshot() []trace.Sample {
	if !w.full {
		out := make([]trace.Sample, w.pos)
		copy(out, w.buf[:w.pos])
		return out
	}
	out := make([]trace.Sample, 0, len(w.buf))
	out = append(out, w.buf[w.pos:]...)
	return append(out, w.buf[:w.pos]...)
}

// refresher owns the live bundle and the refresh machinery. The bundle
// pointer and pending slot are atomic so an async refit can publish from its
// goroutine; everything else runs on the ingest loop.
type refresher struct {
	svc      *Service
	detector *DriftDetector

	bundle  atomic.Pointer[Bundle]
	pending atomic.Pointer[Bundle]

	inflight  atomic.Bool
	wg        sync.WaitGroup
	started   uint64 // refits launched, also the refit seed index
	installed uint64 // bundles installed
	// failed counts refits that errored (the old bundle is kept). Atomic
	// because async refits increment it from their goroutine; surfaced in
	// Snapshot and the summary metrics so "no drift" and "every refit
	// errored" are distinguishable.
	failed atomic.Uint64

	// pendingFire holds a detector fire that arrived before the sample
	// window reached MinSamples; the refit retries at the next batch
	// boundary instead of dropping the episode (the detector latches fired
	// and will not fire again until recovery).
	pendingFire bool
}

func newRefresher(s *Service, b *Bundle) *refresher {
	r := &refresher{svc: s, detector: NewDriftDetector(s.cfg.Refresh.Drift)}
	r.bundle.Store(b)
	return r
}

// observe feeds the batch hit ratio to the detector and launches a refit
// when it fires.
func (r *refresher) observe(hitRatio float64) {
	if r.svc.cfg.Refresh.Mode == RefreshOff {
		return
	}
	fired := r.detector.Observe(hitRatio)
	if fired {
		r.svc.emit(Event{Kind: EventDrift, HitRatio: hitRatio, Baseline: r.detector.Baseline()})
	}
	if !fired && !r.pendingFire {
		return
	}
	if r.svc.window.size() < r.svc.cfg.Refresh.MinSamples {
		r.pendingFire = true
		return
	}
	r.pendingFire = false
	samples := r.svc.window.snapshot()
	seed := engine.DeriveSeed(r.svc.cfg.Train.Seed, r.started)
	r.started++
	switch r.svc.cfg.Refresh.Mode {
	case RefreshSync:
		nb, err := r.refit(samples, seed)
		if err != nil {
			r.failed.Add(1)
			r.svc.emit(Event{Kind: EventRefreshFailed, Err: err.Error()})
			return
		}
		r.install(nb)
	case RefreshAsync:
		if !r.inflight.CompareAndSwap(false, true) {
			return // one refit at a time; the episode already has one
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer r.inflight.Store(false)
			nb, err := r.refit(samples, seed)
			if err != nil {
				r.failed.Add(1)
				return
			}
			r.pending.Store(nb)
		}()
	}
}

// refit trains a fresh bundle on the sample window: refit the normalizer to
// the drifted working set, EM with the E-step sharded over engine.Map, and
// threshold recalibration on the window scores. Under q16 scoring a refitted
// model that saturates Q16.16 fails the refit (the service keeps serving the
// old bundle and counts a failed refresh) rather than installing a scorer
// whose fixed-point densities are unfaithful.
func (r *refresher) refit(samples []trace.Sample, seed int64) (*Bundle, error) {
	norm := trace.FitNormalizer(samples)
	normed := norm.ApplyAll(samples)
	tcfg := r.svc.cfg.trainConfig()
	tcfg.Seed = seed
	res, err := gmm.Fit(normed, tcfg)
	if err != nil {
		return nil, err
	}
	return buildBundle(res.Model, norm, normed, r.svc.cfg)
}

// installPending swaps in an async-completed bundle, if any. Called at batch
// boundaries, when no shard is touching partition state, so the per-partition
// threshold update below is race-free.
func (r *refresher) installPending() {
	if nb := r.pending.Swap(nil); nb != nil {
		r.install(nb)
	}
}

// install publishes the bundle, rebases every tenant's effective threshold
// (new calibrated base x preserved controller multiplier) into every
// partition's policy engine, and rescores resident blocks onto the new
// model's density scale so eviction never compares scores across models.
func (r *refresher) install(nb *Bundle) {
	r.bundle.Store(nb)
	r.svc.applyThresholds()
	r.svc.rescoreResident(nb)
	r.installed++
	r.svc.metrics.writeRefresh(r.svc.batches, r.installed, nb.Threshold)
	r.svc.emit(Event{Kind: EventRefresh, Threshold: nb.Threshold, Refreshes: r.installed})
}

// wait blocks until an in-flight async refit finishes, then installs it so
// run summaries reflect every completed refit.
func (r *refresher) wait() {
	r.wg.Wait()
	r.installPending()
}
