package serve_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
)

// q16Spec loads the committed q16 scenario — the same document
// cmd/icgmm-serve ships in its testdata — pinned to the given shard count.
// Its page geometry is deliberately compact: tenants with 65536-page offsets
// (the elastic scenario) collapse each working set to a normalized page
// variance below Q16.16's representable precision, and training refuses to
// serve the saturating model. That refusal has its own test below.
func q16Spec(t testing.TB, shards int) serve.Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "cmd", "icgmm-serve", "testdata", "spec-q16.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := serve.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = shards
	return spec
}

// TestQ16RefusesWideOffsetScenario pins the saturation guard end to end: the
// elastic scenario's 65536-page tenant offsets are unrepresentable in Q16.16
// precision, and training under q16 must refuse the model rather than serve
// unfaithful densities.
func TestQ16RefusesWideOffsetScenario(t *testing.T) {
	t.Parallel()
	spec := elasticSpec(t, 1)
	spec.Scoring = "q16"
	if _, err := serve.TrainBundleFromSpec(spec); err == nil {
		t.Fatal("q16 training accepted the wide-offset elastic scenario")
	} else if !strings.Contains(err.Error(), "saturate") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestQ16DeterministicAcrossShards extends the shard-count determinism
// contract to the quantized datapath: the q16 scenario must emit
// byte-identical JSONL at shards 1, 2 and 8. (The float goldens pin the
// default path; q16 is a different density scale, so it gets its own
// determinism check rather than a shared golden.)
func TestQ16DeterministicAcrossShards(t *testing.T) {
	t.Parallel()
	var ref bytes.Buffer
	sess, err := serve.Open(q16Spec(t, 1), &ref)
	if err != nil {
		t.Fatal(err)
	}
	refSnap, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if refSnap.Ops == 0 {
		t.Fatal("q16 run served nothing")
	}
	for _, shards := range []int{2, 8} {
		var out bytes.Buffer
		sess, err := serve.Open(q16Spec(t, shards), &out)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), ref.Bytes()) {
			t.Errorf("shards=%d: q16 JSONL diverges from shards=1 (%d vs %d bytes)", shards, out.Len(), ref.Len())
		}
		if !reflect.DeepEqual(snap, refSnap) {
			t.Errorf("shards=%d: q16 snapshot differs from shards=1", shards)
		}
	}
}

// TestQ16CheckpointResume: a q16 session checkpointed mid-run and resumed in
// a fresh session must continue its metric stream byte for byte — the
// checkpoint persists only the float model and the spec's scoring field, so
// this proves re-quantization at resume is deterministic.
func TestQ16CheckpointResume(t *testing.T) {
	t.Parallel()
	var full bytes.Buffer
	sess, err := serve.Open(q16Spec(t, 2), &full)
	if err != nil {
		t.Fatal(err)
	}
	snapFull, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if snapFull.Refreshes == 0 {
		t.Error("q16 scenario lost its refresh coverage")
	}

	// Batches 8 and 16 bracket both tenants' working-set shifts (batches 9
	// and 12), so refit-under-q16 state crosses the second boundary.
	for _, at := range []int{8, 16} {
		var pre bytes.Buffer
		sess, err := serve.Open(q16Spec(t, 2), &pre)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := sess.Step(at); err != nil || n != at {
			t.Fatalf("Step(%d) = %d, %v", at, n, err)
		}
		var ckpt bytes.Buffer
		if err := sess.Checkpoint(&ckpt); err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(ckpt.Bytes(), []byte(`"scoring": "q16"`)) &&
			!bytes.Contains(ckpt.Bytes(), []byte(`"scoring":"q16"`)) {
			t.Fatal("checkpoint does not carry the scoring field")
		}
		var post bytes.Buffer
		resumed, err := serve.Resume(bytes.NewReader(ckpt.Bytes()), &post)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := resumed.Run()
		if err != nil {
			t.Fatal(err)
		}
		concat := append(append([]byte(nil), pre.Bytes()...), post.Bytes()...)
		if !bytes.Equal(concat, full.Bytes()) {
			t.Errorf("checkpoint at batch %d: resumed q16 JSONL diverges (%d vs %d bytes)", at, len(concat), full.Len())
		}
		if !reflect.DeepEqual(snap, snapFull) {
			t.Errorf("checkpoint at batch %d: resumed q16 snapshot differs", at)
		}
	}
}

// TestSpecScoringRoundTrip: the scoring field survives the
// Marshal∘ParseSpec losslessness contract, defaults to the float path, and
// rejects unknown values at parse time.
func TestSpecScoringRoundTrip(t *testing.T) {
	t.Parallel()
	spec := q16Spec(t, 2)
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := serve.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Error("q16 spec did not survive Marshal -> ParseSpec")
	}
	cfg, err := back.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scoring != serve.ScoringQ16 {
		t.Errorf("config scoring = %v, want q16", cfg.Scoring)
	}
	// Default: omitted field means the float path the goldens pin.
	defCfg, err := smallSessionSpec(t).Config()
	if err != nil {
		t.Fatal(err)
	}
	if defCfg.Scoring != serve.ScoringFloat64 {
		t.Errorf("default scoring = %v, want float64", defCfg.Scoring)
	}
	bad := smallSessionSpec(t)
	bad.Scoring = "bfloat16"
	if err := bad.Validate(); err == nil {
		t.Error("unknown scoring value passed Validate")
	}
}
