package serve

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/gmm"
	"repro/internal/trace"
	"repro/internal/workload"
)

// auditResidency cross-checks every partition's three residency views after
// a batch boundary: the policy's per-tenant counters, its owner map, and the
// cache's actual valid blocks. Any drift between them means a tenant is
// being charged for blocks it does not hold (or holding blocks it is not
// charged for) — exactly the failure mode a refresh rescore or a share
// resize could introduce silently.
func auditResidency(s *Service) error {
	for pi, p := range s.parts {
		if err := p.pol.checkShares(); err != nil {
			return fmt.Errorf("partition %d: %w", pi, err)
		}
		counts := make([]int, len(s.tenants))
		scanned := 0
		var orphan error
		p.cache.Scan(func(set, way int, page uint64, _ bool) {
			scanned++
			if o := p.pol.owner[set][way]; o < 0 {
				orphan = fmt.Errorf("partition %d: page %d at (%d,%d) valid in cache but unowned", pi, page, set, way)
			} else {
				counts[o]++
			}
		})
		if orphan != nil {
			return orphan
		}
		owned := 0
		for si := range p.pol.owner {
			for _, o := range p.pol.owner[si] {
				if o >= 0 {
					owned++
				}
			}
		}
		if owned != scanned {
			return fmt.Errorf("partition %d: owner map holds %d blocks, cache holds %d", pi, owned, scanned)
		}
		for ti := range counts {
			if counts[ti] != p.pol.Resident(ti) {
				return fmt.Errorf("partition %d tenant %d: cache-derived count %d != resident counter %d",
					pi, ti, counts[ti], p.pol.Resident(ti))
			}
		}
	}
	return nil
}

// TestResidencyAuditAcrossRefreshAndResize is the share/residency audit: a
// 3-tenant run with a mid-run working-set shift (sync refresh + resident
// rescore), elastic shares enabled, and one forced share resize, audited
// after every single batch. The owner map, the residency counters and the
// cache contents must agree at every batch boundary of the run.
func TestResidencyAuditAcrossRefreshAndResize(t *testing.T) {
	t.Parallel()
	specs := []TenantSpec{
		{
			Name: "alpha",
			Custom: &workload.CustomConfig{
				Name: "alpha-ws", TotalPages: 400,
				Clusters:  []workload.ClusterSpec{{CenterPage: 100, Spread: 30}},
				WriteFrac: 0.2,
			},
			Seed: 1, RatePerSec: 15e3, Share: 0.5,
			QoS: &QoSSpec{Metric: QoSHitRatio, Target: 0.75, Band: 0.10},
		},
		{
			Name: "beta",
			Custom: &workload.CustomConfig{
				Name: "beta-ws", TotalPages: 2048,
				Clusters:  []workload.ClusterSpec{{CenterPage: 500, Spread: 120}},
				WriteFrac: 0.1,
			},
			Seed: 2, RatePerSec: 9e3, OffsetPages: 1 << 16, Share: 0.3,
			QoS: &QoSSpec{Metric: QoSMeanNs, Target: 200e3, Band: 0.30},
		},
		{
			Name: "gamma",
			Custom: &workload.CustomConfig{
				Name: "gamma-ws", TotalPages: 192,
				Clusters:  []workload.ClusterSpec{{CenterPage: 100, Spread: 25}},
				WriteFrac: 0.3,
			},
			Seed: 3, RatePerSec: 6e3, OffsetPages: 1 << 17, Share: 0.2,
			ShiftAfter: 8 * 1024, ShiftOffsetPages: 1 << 18,
			QoS: &QoSSpec{Metric: QoSHitRatio, Target: 0.40, Band: 0.15},
		},
	}
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.Partitions = 4
	cfg.Cache = cache.Config{SizeBytes: 2 << 20, BlockBytes: trace.PageSize, Ways: 8}
	cfg.Train = gmm.TrainConfig{K: 8, MaxIters: 10, Seed: 1, MaxSamples: 4000, LloydIters: 2}
	cfg.Transform.LenAccessShot = 256
	cfg.BatchSize = 1024
	cfg.ReportEvery = 0
	cfg.Tenants = specs
	cfg.Control = ControlConfig{
		Every: 8, Step: 1.6, MinMult: 1.0 / 16, MaxMult: 16,
		ShareAdapt: true, ShareQuantum: 4, ShareHold: 2, ShareCooldown: 2, ShareFloor: 4,
	}
	cfg.Refresh.Mode = RefreshSync
	cfg.Refresh.Drift = DriftConfig{Delta: 0.08, Sustain: 8, Warmup: 8, Alpha: 0.2}
	cfg.Refresh.WindowSamples = 8192
	cfg.Refresh.MinSamples = 2048

	warmMux, err := NewTenantMux(specs)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := TrainBundle(warmMux.Trace(30_000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(cfg, bundle)
	if err != nil {
		t.Fatal(err)
	}
	mux, err := NewTenantMux(specs)
	if err != nil {
		t.Fatal(err)
	}
	src := NewMuxSource(mux, 96*1024)
	buf := make([]Request, cfg.BatchSize)
	for {
		n := src.Next(buf)
		if n == 0 {
			break
		}
		if err := svc.processBatch(buf[:n]); err != nil {
			t.Fatal(err)
		}
		if err := auditResidency(svc); err != nil {
			t.Fatalf("batch %d: %v", svc.batches, err)
		}
		// A forced mid-run resize (beyond whatever the controller does on
		// its own) pins the shrink path even if this configuration's
		// controller never transfers naturally.
		if svc.batches == 20 {
			svc.transferShare(0, 2, 4)
			if err := auditResidency(svc); err != nil {
				t.Fatalf("after forced resize: %v", err)
			}
		}
	}
	if svc.refresher.installed == 0 {
		t.Error("no refresh installed; the audit lost its rescore coverage")
	}
	// End the run with the cache's own structural invariants on top of the
	// per-batch agreement checks.
	for pi, p := range svc.parts {
		if err := p.cache.CheckInvariants(); err != nil {
			t.Errorf("partition %d: %v", pi, err)
		}
	}
}
