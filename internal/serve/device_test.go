package serve_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
)

// dataflowSpec loads the committed dataflow scenario spec — the document
// cmd/icgmm-serve ships in its testdata — and pins it to the given shard
// count, exactly as elasticSpec does for the flat golden.
func dataflowSpec(t testing.TB, shards int) serve.Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "cmd", "icgmm-serve", "testdata", "spec-dataflow.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := serve.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = shards
	return spec
}

// TestServeDataflowGolden pins the dataflow timing backend to bytes on disk:
// the committed 3-tenant dataflow scenario (host routing, outstanding window
// of 4, queue-depth QoS on beta) must produce the exact committed JSONL
// stream at shards 1, 2 and 8, uninterrupted or checkpoint-resumed mid-run —
// the same determinism contract the flat goldens enforce, extended to the
// fpga timeline's cursor and FIFO state.
func TestServeDataflowGolden(t *testing.T) {
	t.Parallel()
	var full bytes.Buffer
	sess, err := serve.Open(dataflowSpec(t, 1), &full)
	if err != nil {
		t.Fatal(err)
	}
	snapFull, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "dataflow_golden.jsonl")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, full.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, full.Len())
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(full.Bytes(), golden) {
		t.Errorf("shards=1 JSONL diverges from %s (%d vs %d bytes); if the change is intentional, regenerate with -update",
			goldenPath, full.Len(), len(golden))
	}

	// The scenario must actually exercise the new machinery, or the golden
	// pins nothing: host routing, stalls on the outstanding window, and
	// queue-depth measurements feeding beta's controller.
	if snapFull.Timing != "dataflow" {
		t.Errorf("snapshot timing %q, want dataflow", snapFull.Timing)
	}
	var hostOps, devOps, stalls uint64
	for _, ps := range snapFull.Partitions {
		hostOps += ps.HostOps
		devOps += ps.DeviceOps
		stalls += ps.Stalls
		if ps.HostOps+ps.DeviceOps != ps.Ops {
			t.Errorf("partition %d: host %d + device %d != ops %d", ps.Partition, ps.HostOps, ps.DeviceOps, ps.Ops)
		}
	}
	if hostOps == 0 {
		t.Error("no host-routed requests; the scenario lost its host-path coverage")
	}
	if stalls == 0 {
		t.Error("no outstanding-window stalls; the scenario lost its queueing coverage")
	}
	if !bytes.Contains(golden, []byte(`"queue_depth_mean"`)) {
		t.Error("no queue_depth_mean in the golden interval records")
	}
	if !bytes.Contains(golden, []byte(`"qos_metric":"queue_depth"`)) {
		t.Error("no queue_depth control records; beta's controller never measured the queue")
	}

	for _, shards := range []int{1, 2, 8} {
		var pre bytes.Buffer
		sess, err := serve.Open(dataflowSpec(t, shards), &pre)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := sess.Step(40); err != nil || n != 40 {
			t.Fatalf("shards=%d: Step(40) = %d, %v", shards, n, err)
		}
		var ckpt bytes.Buffer
		if err := sess.Checkpoint(&ckpt); err != nil {
			t.Fatalf("shards=%d: checkpoint: %v", shards, err)
		}
		var post bytes.Buffer
		resumed, err := serve.Resume(bytes.NewReader(ckpt.Bytes()), &post)
		if err != nil {
			t.Fatalf("shards=%d: resume: %v", shards, err)
		}
		snap, err := resumed.Run()
		if err != nil {
			t.Fatal(err)
		}
		concat := append(append([]byte(nil), pre.Bytes()...), post.Bytes()...)
		if !bytes.Equal(concat, golden) {
			t.Errorf("shards=%d: checkpoint-resumed JSONL diverges from the golden file (%d vs %d bytes)",
				shards, len(concat), len(golden))
		}
		if !reflect.DeepEqual(snap, snapFull) {
			t.Errorf("shards=%d: resumed final snapshot differs from the uninterrupted run", shards)
		}
	}
}

// TestDataflowSnapshotUtilization is the serve-path utilization property:
// after any dataflow run, every partition's per-module busy fraction sits in
// [0,1] — a module cannot be busy longer than its timeline's wall clock —
// and the queue-depth mean is bounded by the outstanding window.
func TestDataflowSnapshotUtilization(t *testing.T) {
	t.Parallel()
	sess, err := serve.Open(dataflowSpec(t, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	window := 4.0 // the spec's outstanding window
	for _, ps := range snap.Partitions {
		for name, r := range map[string]float64{
			"gmm": ps.GMMBusyRatio, "ssd": ps.SSDBusyRatio, "ctrl": ps.CtrlBusyRatio,
		} {
			if r < 0 || r > 1 {
				t.Errorf("partition %d: %s busy ratio %v outside [0,1]", ps.Partition, name, r)
			}
		}
		if ps.QueueDepthMean < 0 || ps.QueueDepthMean > window {
			t.Errorf("partition %d: queue depth mean %v outside [0,%v]", ps.Partition, ps.QueueDepthMean, window)
		}
		if ps.DeviceOps > 0 && ps.SSDBusyRatio == 0 {
			t.Errorf("partition %d: served %d device ops with zero SSD busy time", ps.Partition, ps.DeviceOps)
		}
	}
}

// TestDataflowIntervalRecords checks the interval JSONL under dataflow
// timing: every interval record must carry the queue-depth mean and the
// per-module busy ratios, with in-range values.
func TestDataflowIntervalRecords(t *testing.T) {
	t.Parallel()
	var jsonl bytes.Buffer
	sess, err := serve.Open(dataflowSpec(t, 1), &jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Kind           string   `json:"kind"`
		QueueDepthMean *float64 `json:"queue_depth_mean"`
		GMMBusyRatio   *float64 `json:"gmm_busy_ratio"`
		SSDBusyRatio   *float64 `json:"ssd_busy_ratio"`
		CtrlBusyRatio  *float64 `json:"ctrl_busy_ratio"`
	}
	intervals := 0
	for _, line := range strings.Split(strings.TrimSpace(jsonl.String()), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if r.Kind != "interval" {
			continue
		}
		intervals++
		if r.QueueDepthMean == nil {
			t.Fatalf("interval record without queue_depth_mean: %s", line)
		}
		for name, p := range map[string]*float64{
			"gmm_busy_ratio": r.GMMBusyRatio, "ssd_busy_ratio": r.SSDBusyRatio, "ctrl_busy_ratio": r.CtrlBusyRatio,
		} {
			if p == nil {
				t.Fatalf("interval record without %s: %s", name, line)
			}
			if *p < 0 || *p > 1 {
				t.Errorf("interval %s %v outside [0,1]", name, *p)
			}
		}
	}
	if intervals == 0 {
		t.Fatal("no interval records emitted")
	}
}

// queueLeverSpec is a single-QoS scenario where only the queue-depth lever
// can resolve the violation: the training threshold quantile (0.9) bypasses
// nearly everything, so every request pays the 75 us SSD read and arrivals
// outrun the device — the outstanding window backs up well past the QoS
// target of 1.0. No hit-ratio or latency target exists; the only signal the
// controller has is the queue depth, and the only lever that can move it is
// loosening the admission threshold until the working set is served from
// HBM. qos toggles the target so the test can compare against an
// uncontrolled baseline.
func queueLeverSpec(t testing.TB, qos bool) serve.Spec {
	t.Helper()
	q := ""
	if qos {
		q = `,"qos": {"metric": "queue_depth", "target": 1.0, "band": 0.3}`
	}
	spec, err := serve.ParseSpec([]byte(`{
	 "version": 1, "shards": 2, "partitions": 4, "ops": 49152, "warmup": 16000,
	 "batch": 1024, "report": 8,
	 "cache": {"size_mb": 2, "ways": 8},
	 "train": {"k": 4, "max_iters": 6, "max_samples": 2000, "lloyd_iters": 2,
	  "shot": 128, "threshold_pct": 0.9},
	 "control": {"every": 4, "step": 2.0, "min_mult": 0.00048828125, "max_mult": 2048},
	 "device": {"timing": "dataflow", "outstanding": 16},
	 "tenants": [
	  {"name": "hot",
	   "custom": {"Name": "hot-ws", "TotalPages": 320,
	    "Clusters": [{"CenterPage": 100, "Spread": 30}, {"CenterPage": 250, "Spread": 20}],
	    "WriteFrac": 0.1},
	   "seed": 1, "rate": 120000, "share": 1.0` + q + `}
	 ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestQueueDepthLeverResolvesViolation is the controller regression for the
// queue-depth QoS signal: with the target configured, the controller must
// loosen the admission threshold (multiplier driven away from 1) and land
// the measured queue depth inside the band by the end of the run; without
// it, the same workload must stay backed up. If the queue-depth measurement
// ever stops reaching the controller, the controlled run degenerates into
// the baseline and this test fails.
func TestQueueDepthLeverResolvesViolation(t *testing.T) {
	t.Parallel()
	run := func(qos bool) *serve.Snapshot {
		sess, err := serve.Open(queueLeverSpec(t, qos), nil)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	depth := func(snap *serve.Snapshot) float64 {
		var sum float64
		var n int
		for _, ps := range snap.Partitions {
			if ps.DeviceOps > 0 {
				sum += ps.QueueDepthMean
				n++
			}
		}
		if n == 0 {
			t.Fatal("no device-routed ops")
		}
		return sum / float64(n)
	}

	base := run(false)
	ctl := run(true)
	baseDepth, ctlDepth := depth(base), depth(ctl)
	if ctlDepth >= baseDepth {
		t.Errorf("controlled run depth %v not below baseline %v; the queue lever did nothing", ctlDepth, baseDepth)
	}
	ten := &ctl.Tenants[0]
	if ten.Mult == 1 {
		t.Error("controller never moved the threshold multiplier off 1")
	}
	if !ten.QoSValid {
		t.Fatal("no completed queue-depth control measurement")
	}
	if !ten.WithinQoS {
		t.Errorf("queue-depth QoS still violated at end of run (last measured %v, target 1.0±0.3)", ten.QoSValue)
	}
	if ctl.Tenants[0].HitRatio() <= base.Tenants[0].HitRatio() {
		t.Errorf("controlled hit ratio %v not above baseline %v; depth should have fallen via admissions",
			ctl.Tenants[0].HitRatio(), base.Tenants[0].HitRatio())
	}
}

// TestDataflowCongestionEvent saturates a window-1 device — arrivals every
// 400 ns against microsecond-scale service — so after the first interval
// every device-routed request stalls, and the session must emit a congestion
// event per saturated interval with the interval's mean depth attached.
func TestDataflowCongestionEvent(t *testing.T) {
	t.Parallel()
	spec, err := serve.ParseSpec([]byte(`{
	 "version": 1, "shards": 1, "partitions": 4, "ops": 8192, "warmup": 16000,
	 "batch": 1024, "report": 1,
	 "cache": {"size_mb": 1, "ways": 8},
	 "train": {"k": 4, "max_iters": 5, "max_samples": 2000, "lloyd_iters": 2, "shot": 128},
	 "device": {"timing": "dataflow", "outstanding": 1},
	 "workload": {"name": "dlrm", "rate": 10000000}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := serve.Open(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var congested []serve.Event
	sess.Observe(func(ev serve.Event) {
		if ev.Kind == serve.EventCongestion {
			congested = append(congested, ev)
		}
	})
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if len(congested) == 0 {
		t.Fatal("saturated run emitted no congestion events")
	}
	for _, ev := range congested {
		if ev.QueueDepth <= 0 {
			t.Errorf("congestion event at batch %d carries depth %v", ev.Batch, ev.QueueDepth)
		}
	}
}

// TestFlatDeviceBlockIsDefault pins the refactor's compatibility contract
// beyond the committed goldens: a spec with an explicit {"timing": "flat"}
// device block produces byte-identical metric output to the same spec with
// no device block at all — the block's presence alone changes nothing.
func TestFlatDeviceBlockIsDefault(t *testing.T) {
	t.Parallel()
	run := func(device string) []byte {
		spec, err := serve.ParseSpec([]byte(`{
		 "version": 1, "shards": 2, "partitions": 4, "ops": 8192, "warmup": 16000,
		 "batch": 1024, "report": 2,
		 "cache": {"size_mb": 1, "ways": 8},
		 "train": {"k": 4, "max_iters": 5, "max_samples": 2000, "lloyd_iters": 2, "shot": 128},
		 "workload": {"name": "dlrm", "rate": 2000000}` + device + `
		}`))
		if err != nil {
			t.Fatal(err)
		}
		var jsonl bytes.Buffer
		sess, err := serve.Open(spec, &jsonl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(); err != nil {
			t.Fatal(err)
		}
		return jsonl.Bytes()
	}
	bare := run("")
	explicit := run(`,"device": {"timing": "flat"}`)
	if !bytes.Equal(bare, explicit) {
		t.Errorf("explicit flat device block changed the metric stream (%d vs %d bytes)", len(explicit), len(bare))
	}
	if bytes.Contains(bare, []byte("queue_depth_mean")) {
		t.Error("flat run leaked dataflow fields into the interval records")
	}
}

// TestQueueDepthQoSNeedsDataflow: a queue-depth QoS target is meaningless
// under flat timing (the depth is identically zero), so the spec must be
// rejected, not silently held at zero forever.
func TestQueueDepthQoSNeedsDataflow(t *testing.T) {
	t.Parallel()
	_, err := serve.ParseSpec([]byte(`{
	 "version": 1, "ops": 4096, "warmup": 16000,
	 "train": {"k": 4, "shot": 128},
	 "tenants": [{"name": "a", "workload": "dlrm", "rate": 1000, "share": 1.0,
	  "qos": {"metric": "queue_depth", "target": 2, "band": 0.5}}]
	}`))
	if err == nil {
		t.Fatal("queue-depth QoS under flat timing accepted")
	}
	if !strings.Contains(err.Error(), "dataflow") {
		t.Errorf("error %q does not point at the timing requirement", err)
	}
}
