package serve

import (
	"errors"
	"fmt"

	"repro/internal/device"
	"repro/internal/fpga"
)

// TimingKind selects a partition's device timing backend: the flat
// latency-constant model (the historical behaviour and the path the
// determinism goldens pin) or the fpga dataflow pipeline, where tag compare,
// policy-engine inference and SSD access contend as pipelined modules behind
// a bounded outstanding-request window, so sojourn times reflect queueing and
// backpressure. The two kinds are separately deterministic but their metric
// streams are not byte-comparable to each other.
type TimingKind int

const (
	// TimingFlat serves through device.Flat: per-outcome latency constants
	// with a fixed per-miss inference overhead (the default).
	TimingFlat TimingKind = iota
	// TimingDataflow serves through device.Dataflow: host/link routing in
	// front of a per-partition fpga.DeviceTimeline.
	TimingDataflow
)

// String names the kind as the spec's "device".{"timing"} field spells it.
func (k TimingKind) String() string {
	if k == TimingDataflow {
		return "dataflow"
	}
	return "flat"
}

// ParseTimingKind maps a spec "timing" value to its kind.
func ParseTimingKind(s string) (TimingKind, error) {
	switch s {
	case "flat":
		return TimingFlat, nil
	case "dataflow":
		return TimingDataflow, nil
	}
	return TimingFlat, fmt.Errorf("serve: unknown timing kind %q (valid: flat|dataflow)", s)
}

// DeviceConfig selects and parameterizes the device timing backend.
type DeviceConfig struct {
	// Timing picks the backend (default flat).
	Timing TimingKind
	// Dataflow times the Fig. 5 pipeline under TimingDataflow: tag-compare /
	// inference / SSD cycles, overlap, and the outstanding-request window.
	Dataflow fpga.DataflowConfig
	// HostPages bounds the host-DRAM-resident prefix of the page space under
	// TimingDataflow; requests below it are served locally at HostLatencyNs
	// and never reach the device (0 routes everything to the device).
	HostPages     uint64
	HostLatencyNs int64
}

// DefaultDeviceConfig is flat timing, with the paper's measured dataflow
// parameters staged for a spec that switches the backend on.
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{
		Timing:        TimingFlat,
		Dataflow:      fpga.DefaultDataflowConfig(),
		HostLatencyNs: 100,
	}
}

// Validate checks the device timing configuration.
func (c DeviceConfig) Validate() error {
	switch c.Timing {
	case TimingFlat:
	case TimingDataflow:
		if err := c.Dataflow.Validate(); err != nil {
			return err
		}
		if c.Dataflow.Outstanding < 0 {
			return errors.New("serve: negative outstanding-request window")
		}
		if c.Dataflow.PolicyEnabled && c.Dataflow.GMM.InferenceCycles() <= 0 {
			return errors.New("serve: non-positive policy-engine inference cycles")
		}
		if c.HostPages > 0 && c.HostLatencyNs <= 0 {
			return errors.New("serve: host-resident pages need a positive host latency")
		}
	default:
		return fmt.Errorf("serve: unknown timing kind %d", c.Timing)
	}
	if c.HostLatencyNs < 0 {
		return errors.New("serve: negative host latency")
	}
	return nil
}

// deviceResult is one request's timing through a partition's device model.
type deviceResult struct {
	// doneNs is the completion time on the partition clock; linkNs and devNs
	// are the CXL round-trip and device-internal components of the service.
	doneNs, linkNs, devNs int64
	// busyNs is policy-engine busy time this request accounted for (flat
	// timing only; the dataflow timeline tracks busy cycles itself).
	busyNs int64
	// queueDepth/stalled report the outstanding-window view at arrival
	// (dataflow timing only).
	queueDepth int
	stalled    bool
}

// deviceModel is a partition's timing backend. Implementations are
// partition-local (one per partition, touched only by the shard draining it)
// and must be deterministic functions of the request sequence.
type deviceModel interface {
	// hostRoute reports whether the page is host-DRAM resident — served
	// locally, bypassing the cache and the device — and its latency.
	hostRoute(page uint64) (int64, bool)
	// serveReq times one device-routed request given its arrival time and
	// the partition clock (the completion time of the previous request).
	serveReq(page uint64, out device.Outcome, arrivalNs, nowNs int64) deviceResult
	// timeline exposes the dataflow cursor state for checkpointing and
	// utilization metrics; nil under flat timing.
	timeline() *fpga.DeviceTimeline
}

// flatModel adapts device.Flat to the partition serving loop: the partition
// is a single server, so a request starts at its arrival time or when the
// previous request completed, whichever is later.
type flatModel struct {
	flat device.Flat
}

func (m *flatModel) hostRoute(uint64) (int64, bool) { return 0, false }

func (m *flatModel) serveReq(page uint64, out device.Outcome, arrivalNs, nowNs int64) deviceResult {
	start := arrivalNs
	if nowNs > start {
		start = nowNs
	}
	rt, dev, busy := m.flat.Serve(page, out, start)
	return deviceResult{doneNs: start + rt + dev, linkNs: rt, devNs: dev, busyNs: busy}
}

func (m *flatModel) timeline() *fpga.DeviceTimeline { return nil }

// dataflowModel adapts device.Dataflow: queueing lives in the timeline's
// module cursors and outstanding window, so requests enter at their arrival
// time and the partition clock only records the latest completion.
type dataflowModel struct {
	df device.Dataflow
}

func (m *dataflowModel) hostRoute(page uint64) (int64, bool) { return m.df.HostRoute(page) }

func (m *dataflowModel) serveReq(page uint64, out device.Outcome, arrivalNs, _ int64) deviceResult {
	r := m.df.Serve(page, out, arrivalNs)
	return deviceResult{
		doneNs:     r.DoneNs,
		linkNs:     r.LinkNs,
		devNs:      r.DevNs,
		queueDepth: r.QueueDepth,
		stalled:    r.Stalled,
	}
}

func (m *dataflowModel) timeline() *fpga.DeviceTimeline { return m.df.Timeline }
