package workload_test

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func newClosed(t *testing.T, users int, rate float64) *workload.ClosedLoop {
	t.Helper()
	cl, err := workload.NewClosedLoop(workload.NewDLRM(), workload.OpenLoopConfig{Seed: 7},
		workload.ClosedLoopConfig{Users: users, RatePerSec: rate})
	if err != nil {
		t.Fatalf("NewClosedLoop: %v", err)
	}
	return cl
}

func TestClosedLoopConfigValidate(t *testing.T) {
	bad := []workload.ClosedLoopConfig{
		{Users: 0, RatePerSec: 1},
		{Users: 4, RatePerSec: 0},
		{Users: 4, RatePerSec: 1, Alpha: 1.5},
	}
	for _, cfg := range bad {
		if _, err := workload.NewClosedLoop(workload.NewDLRM(), workload.OpenLoopConfig{}, cfg); err == nil {
			t.Errorf("accepted invalid config %+v", cfg)
		}
	}
}

// At zero service latency a closed loop's aggregate offered rate equals an
// open loop's configured rate: Users requests every think time.
func TestClosedLoopZeroLatencyRateMatchesOpenLoop(t *testing.T) {
	const rate = 10_000.0
	cl := newClosed(t, 8, rate)
	n := 4096
	buf := make([]trace.Record, n)
	cl.Next(buf)
	span := float64(buf[n-1].Time) // first arrivals are at 0
	gotRate := float64(n-8) / span * 1e9
	if gotRate < rate*0.95 || gotRate > rate*1.05 {
		t.Fatalf("zero-latency offered rate %.0f, want ~%.0f", gotRate, rate)
	}
}

// The feedback loop: a latency observation slows arrivals down, so fewer
// requests land inside a fixed virtual-time window than in the unloaded
// stream — offered load drops when the device saturates.
func TestClosedLoopLatencyFeedbackStretchesArrivals(t *testing.T) {
	fast := newClosed(t, 4, 10_000)
	slow := newClosed(t, 4, 10_000)
	slow.ObserveLatency(5e6) // 5 ms completions dominate the 0.4 ms think time
	n := 1024
	fbuf := make([]trace.Record, n)
	sbuf := make([]trace.Record, n)
	fast.Next(fbuf)
	slow.Next(sbuf)
	const windowNs = 50e6
	countIn := func(buf []trace.Record) int {
		c := 0
		for _, r := range buf {
			if float64(r.Time) < windowNs {
				c++
			}
		}
		return c
	}
	nf, ns := countIn(fbuf), countIn(sbuf)
	if ns >= nf {
		t.Fatalf("saturated stream emitted %d arrivals in the window, unloaded %d — no feedback", ns, nf)
	}
	// Saturated inter-arrival ~ (lat+think)/users; check the right ballpark.
	if ns == 0 || ns > nf/2 {
		t.Fatalf("saturated window count %d outside expected range (unloaded %d)", ns, nf)
	}
}

// The EWMA folds observations in order and SetRate retargets think time.
func TestClosedLoopObserveAndSetRate(t *testing.T) {
	cl := newClosed(t, 2, 1000)
	cl.ObserveLatency(1000)
	if got := cl.LatencyEstimateNs(); got != 1000 {
		t.Fatalf("first observation EWMA = %v, want 1000", got)
	}
	cl.ObserveLatency(2000)
	if got := cl.LatencyEstimateNs(); got != 0.2*2000+0.8*1000 {
		t.Fatalf("second observation EWMA = %v", got)
	}
	cl.ObserveLatency(-5) // negative observations are dropped
	if got := cl.LatencyEstimateNs(); got != 0.2*2000+0.8*1000 {
		t.Fatalf("negative observation changed EWMA to %v", got)
	}
	cl.SetRate(2000)
	if got := cl.Rate(); got != 2000 {
		t.Fatalf("rate after SetRate = %v", got)
	}
}

// A restored closed loop continues bit-identically to one that never paused,
// including the user clocks and the latency estimate.
func TestClosedLoopStateRoundTrip(t *testing.T) {
	a := newClosed(t, 4, 5000)
	buf := make([]trace.Record, 700)
	a.Next(buf)
	a.ObserveLatency(3e5)
	a.Next(buf[:100])

	b := newClosed(t, 4, 5000)
	if err := b.RestoreState(a.State()); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	av := make([]trace.Record, 500)
	bv := make([]trace.Record, 500)
	a.Next(av)
	b.Next(bv)
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("restored stream diverged at %d: %+v vs %+v", i, av[i], bv[i])
		}
	}

	c := newClosed(t, 3, 5000)
	if err := c.RestoreState(a.State()); err == nil {
		t.Fatalf("restore with mismatched user count accepted")
	}
}

// OpenLoop.SetGenerator swaps the source mid-segment: the swap is visible at
// the very next record, and a stream built fresh on the new generator with
// the same restored cursor produces the identical remainder (the replay
// property resume depends on).
func TestOpenLoopSetGeneratorMidSegment(t *testing.T) {
	ol, err := workload.NewOpenLoop(workload.NewDLRM(), workload.OpenLoopConfig{RatePerSec: 1000, Seed: 3})
	if err != nil {
		t.Fatalf("NewOpenLoop: %v", err)
	}
	buf := make([]trace.Record, 300)
	ol.Next(buf)
	ol.SetGenerator(workload.NewStream())
	st := ol.State()
	a := make([]trace.Record, 400)
	ol.Next(a)

	re, err := workload.NewOpenLoop(workload.NewStream(), workload.OpenLoopConfig{RatePerSec: 1000, Seed: 3})
	if err != nil {
		t.Fatalf("NewOpenLoop: %v", err)
	}
	if err := re.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	b := make([]trace.Record, 400)
	re.Next(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("post-swap stream not replayable at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// A departed stream's records are discarded at the merge point while its
// clock keeps advancing, so a rejoin resumes at the current virtual time
// with no backlog burst.
func TestMuxSetActiveDiscardsAndResumes(t *testing.T) {
	mk := func() *workload.Mux {
		a, _ := workload.NewOpenLoop(workload.NewDLRM(), workload.OpenLoopConfig{RatePerSec: 1000, Seed: 1})
		b, _ := workload.NewOpenLoop(workload.NewParsec(), workload.OpenLoopConfig{RatePerSec: 1000, Seed: 2})
		m, err := workload.NewMux([]workload.MuxStream{{Stream: a}, {Stream: b, OffsetPages: 1 << 20}})
		if err != nil {
			t.Fatalf("NewMux: %v", err)
		}
		return m
	}
	m := mk()
	buf := make([]workload.MuxRecord, 256)
	m.Next(buf)
	m.SetActive(1, false)
	m.Next(buf)
	for _, r := range buf {
		if r.Stream == 1 {
			t.Fatalf("departed stream emitted a record: %+v", r)
		}
	}
	m.SetActive(1, true)
	m.Next(buf)
	// The rejoined stream's first record must not predate the already-merged
	// output (its clock advanced while departed).
	seen := false
	for _, r := range buf {
		if r.Stream == 1 {
			seen = true
			if r.Rec.Time < buf[0].Rec.Time {
				t.Fatalf("rejoined stream burst from the past: %+v before %+v", r, buf[0])
			}
		}
	}
	if !seen {
		t.Fatalf("rejoined stream never emitted")
	}
}

// Mux state round-trips through churn and closed-loop streams: the restored
// mux continues bit-identically, active flags and user clocks included.
func TestMuxStateRoundTripWithChurnAndClosedLoops(t *testing.T) {
	mk := func() *workload.Mux {
		a, err := workload.NewClosedLoop(workload.NewDLRM(), workload.OpenLoopConfig{Seed: 1},
			workload.ClosedLoopConfig{Users: 4, RatePerSec: 2000})
		if err != nil {
			t.Fatalf("NewClosedLoop: %v", err)
		}
		b, err := workload.NewClosedLoop(workload.NewParsec(), workload.OpenLoopConfig{Seed: 2},
			workload.ClosedLoopConfig{Users: 2, RatePerSec: 1000})
		if err != nil {
			t.Fatalf("NewClosedLoop: %v", err)
		}
		m, err := workload.NewMux([]workload.MuxStream{{Stream: a}, {Stream: b, OffsetPages: 1 << 20}})
		if err != nil {
			t.Fatalf("NewMux: %v", err)
		}
		return m
	}
	m := mk()
	buf := make([]workload.MuxRecord, 300)
	m.Next(buf)
	m.ObserveLatency(0, 2e5)
	m.ObserveLatency(1, 4e5)
	m.SetActive(1, false)
	m.Next(buf[:64])
	st := m.State()
	if st.Active == nil || st.Active[1] {
		t.Fatalf("state did not record the departed stream: %+v", st.Active)
	}
	if st.Closed == nil {
		t.Fatalf("state did not record closed-loop cursors")
	}

	re := mk()
	if err := re.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if re.Active(1) {
		t.Fatalf("restored mux lost the departed flag")
	}
	av := make([]workload.MuxRecord, 400)
	bv := make([]workload.MuxRecord, 400)
	m.Next(av)
	re.Next(bv)
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("restored mux diverged at %d: %+v vs %+v", i, av[i], bv[i])
		}
	}
}
