package workload

import (
	"testing"

	"repro/internal/trace"
)

func validCustomConfig() CustomConfig {
	return CustomConfig{
		Name:       "mytest",
		TotalPages: 10000,
		Clusters: []ClusterSpec{
			{CenterPage: 1000, Spread: 100},
			{CenterPage: 8000, Spread: 50},
		},
		TailFrac:  0.05,
		WriteFrac: 0.2,
	}
}

func TestNewCustomValid(t *testing.T) {
	g, err := NewCustom(validCustomConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "mytest" {
		t.Errorf("Name = %q", g.Name())
	}
	tr := g.Generate(20000, 1)
	if len(tr) != 20000 {
		t.Fatalf("generated %d records", len(tr))
	}
	s := trace.Summarize(tr)
	if s.MaxPage >= 10000 {
		t.Errorf("page %d outside footprint", s.MaxPage)
	}
	if s.Writes == 0 || s.Reads == 0 {
		t.Error("write mix missing")
	}
	// Cluster concentration: most pages near the two centers.
	near := 0
	for _, r := range tr {
		p := r.Page()
		if (p >= 600 && p <= 1400) || (p >= 7800 && p <= 8200) {
			near++
		}
	}
	if frac := float64(near) / float64(len(tr)); frac < 0.85 {
		t.Errorf("cluster concentration %.2f too low", frac)
	}
}

func TestNewCustomValidation(t *testing.T) {
	cases := []func(*CustomConfig){
		func(c *CustomConfig) { c.Name = "" },
		func(c *CustomConfig) { c.TotalPages = 0 },
		func(c *CustomConfig) { c.Clusters[0].CenterPage = 99999 },
		func(c *CustomConfig) { c.TailFrac = -1 },
		func(c *CustomConfig) { c.TailFrac = 0.7; c.ScanFrac = 0.7 },
		func(c *CustomConfig) { c.WriteFrac = 2 },
		func(c *CustomConfig) { c.PhaseWeights = [][]float64{{1}} },     // row length 1 != 2 clusters
		func(c *CustomConfig) { c.PhaseWeights = [][]float64{{-1, 1}} }, // negative
		func(c *CustomConfig) { c.PhaseWeights = [][]float64{{0, 0}} },  // zero sum
		func(c *CustomConfig) { c.Clusters = nil; c.TailFrac = 0; c.ScanFrac = 0 },
	}
	for i, mutate := range cases {
		cfg := validCustomConfig()
		mutate(&cfg)
		if _, err := NewCustom(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCustomPureScanWorkload(t *testing.T) {
	g, err := NewCustom(CustomConfig{
		Name:       "scanner",
		TotalPages: 5000,
		ScanFrac:   1.0,
		ScanStride: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Generate(1000, 1)
	// Strided sweep: each page advances by 2.
	for i := 1; i < len(tr); i++ {
		d := (tr[i].Page() - tr[i-1].Page() + 5000) % 5000
		if d != 2 {
			t.Fatalf("scan stride broken at %d: %d -> %d", i, tr[i-1].Page(), tr[i].Page())
		}
	}
}

func TestCustomPhases(t *testing.T) {
	g, err := NewCustom(CustomConfig{
		Name:       "phased",
		TotalPages: 10000,
		Clusters: []ClusterSpec{
			{CenterPage: 1000, Spread: 10},
			{CenterPage: 9000, Spread: 10},
		},
		PhaseWeights: [][]float64{{1, 0}, {0, 1}},
		PhaseLen:     1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Generate(2000, 1)
	// First phase: cluster 0 only.
	for _, r := range tr[:1000] {
		if r.Page() > 5000 {
			t.Fatalf("phase 0 touched cluster 1 page %d", r.Page())
		}
	}
	for _, r := range tr[1000:] {
		if r.Page() < 5000 {
			t.Fatalf("phase 1 touched cluster 0 page %d", r.Page())
		}
	}
}

func TestCustomDefaults(t *testing.T) {
	g, err := NewCustom(CustomConfig{
		Name:       "defaults",
		TotalPages: 100,
		Clusters:   []ClusterSpec{{CenterPage: 50, Spread: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Generate(500, 1)
	if len(tr) != 500 {
		t.Fatal("generation with defaults failed")
	}
}
