package workload

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// ArrivalStream is a deterministic, timestamped request stream a Mux can
// merge: OpenLoop (arrivals on an independent clock) or ClosedLoop (arrivals
// gated on completion-latency feedback). The mutator methods exist for the
// scenario engine — both take effect at batch boundaries only, keeping
// streams pure functions of their (config, event, observation) history.
type ArrivalStream interface {
	// Next fills dst and returns len(dst); streams never end. Each record's
	// Time field carries the arrival time in nanoseconds.
	Next(dst []trace.Record) int
	// Rate returns the stream's current mean offered rate in req/s.
	Rate() float64
	// SetRate changes the offered rate for future arrivals.
	SetRate(r float64)
	// SetGenerator swaps the trace generator (workload-phase event).
	SetGenerator(g Generator)
}

// MuxStream is one tenant-shaped input to a Mux: a request stream plus a
// static page offset that relocates the stream's working set, so co-located
// tenants occupy disjoint regions of the device address space.
type MuxStream struct {
	// Stream produces the records; its config fixes the tenant's seed,
	// rate, bursts and working-set drift.
	Stream ArrivalStream
	// OffsetPages is added to every record's page index.
	OffsetPages uint64
}

// MuxRecord is one merged record tagged with the stream it came from.
type MuxRecord struct {
	Rec trace.Record
	// Stream is the index of the originating MuxStream.
	Stream int
}

// Mux deterministically interleaves several open-loop streams into one
// arrival-ordered request stream: the next record is always the one with the
// earliest arrival time, ties broken by stream index. The merge is a pure
// function of the streams alone — never of how many records a caller pulls
// per batch — so a multi-tenant serving run consumes the same global arrival
// order at any batch size or shard count.
type Mux struct {
	streams []MuxStream
	heads   []trace.Record // one-record lookahead per stream
	active  []bool
	emitted uint64
	one     [1]trace.Record
}

// NewMux validates the streams and builds the mux. Every stream must have a
// positive arrival rate: a saturating stream (all arrivals at time zero)
// would win every tie-break and starve the rest.
func NewMux(streams []MuxStream) (*Mux, error) {
	if len(streams) == 0 {
		return nil, errors.New("workload: mux needs at least one stream")
	}
	m := &Mux{
		streams: make([]MuxStream, len(streams)),
		heads:   make([]trace.Record, len(streams)),
		active:  make([]bool, len(streams)),
	}
	for i, s := range streams {
		if s.Stream == nil {
			return nil, fmt.Errorf("workload: mux stream %d is nil", i)
		}
		if s.Stream.Rate() <= 0 {
			return nil, fmt.Errorf("workload: mux stream %d has no arrival rate (a saturating stream would starve the others)", i)
		}
		m.streams[i] = s
		m.active[i] = true
		m.heads[i] = m.pull(i)
	}
	return m, nil
}

// pull draws the next record from stream i with its page offset applied.
func (m *Mux) pull(i int) trace.Record {
	s := m.streams[i]
	s.Stream.Next(m.one[:])
	r := m.one[0]
	r.Addr += s.OffsetPages << trace.PageShift
	return r
}

// Streams returns the number of muxed streams.
func (m *Mux) Streams() int { return len(m.streams) }

// Stream returns the i-th underlying stream.
func (m *Mux) Stream(i int) ArrivalStream { return m.streams[i].Stream }

// Active reports whether stream i currently contributes records.
func (m *Mux) Active(i int) bool { return m.active[i] }

// SetActive marks a stream joined or departed (scenario join/leave events).
// A departed stream keeps producing records — the merge discards them when
// they win, so its virtual clock advances alongside the others and a later
// rejoin resumes at the current virtual time instead of replaying a backlog
// burst. At least one stream must stay active (the spec validates this).
func (m *Mux) SetActive(i int, active bool) { m.active[i] = active }

// SetRate forwards a rate change to stream i.
func (m *Mux) SetRate(i int, r float64) { m.streams[i].Stream.SetRate(r) }

// SetGenerator forwards a workload-phase swap to stream i.
func (m *Mux) SetGenerator(i int, g Generator) { m.streams[i].Stream.SetGenerator(g) }

// ObserveLatency feeds a completion-latency observation to stream i. Only
// closed-loop streams consume it; for open-loop streams it is a no-op.
func (m *Mux) ObserveLatency(i int, meanNs float64) {
	if cl, ok := m.streams[i].Stream.(*ClosedLoop); ok {
		cl.ObserveLatency(meanNs)
	}
}

// Emitted returns how many merged records have been produced.
func (m *Mux) Emitted() uint64 { return m.emitted }

// Next fills dst with the next len(dst) merged records and returns len(dst);
// the merged stream never ends. Each record keeps the arrival time its own
// stream assigned, so merged times are globally non-decreasing. Records from
// departed streams are pulled and discarded when they win the merge, which
// both advances their clocks and preserves the invariant that the merge
// order is a pure function of the streams alone.
func (m *Mux) Next(dst []MuxRecord) int {
	for i := range dst {
		for {
			best := 0
			for s := 1; s < len(m.heads); s++ {
				if m.heads[s].Time < m.heads[best].Time {
					best = s
				}
			}
			active := m.active[best]
			if active {
				dst[i] = MuxRecord{Rec: m.heads[best], Stream: best}
			}
			m.heads[best] = m.pull(best)
			if active {
				m.emitted++
				break
			}
		}
	}
	return len(dst)
}

// MuxState is the mux's full mutable state: the one-record lookahead heads,
// the merged-output count, and every underlying stream's cursor. Streams
// carries the open-loop cursor of every stream (for closed-loop streams,
// the inner generator cursor); Closed, present only when at least one
// stream is closed-loop, carries the per-stream user clocks and latency
// EWMA aligned by index. Active, present only when at least one stream has
// departed, records the join/leave flags. The all-open, all-active encoding
// is byte-identical to the historical format.
type MuxState struct {
	Emitted uint64            `json:"emitted"`
	Heads   []trace.Record    `json:"heads"`
	Streams []OpenLoopState   `json:"streams"`
	Closed  []ClosedLoopState `json:"closed,omitempty"`
	Active  []bool            `json:"active,omitempty"`
}

// State exports the mux's mutable state.
func (m *Mux) State() MuxState {
	s := MuxState{
		Emitted: m.emitted,
		Heads:   append([]trace.Record(nil), m.heads...),
		Streams: make([]OpenLoopState, len(m.streams)),
	}
	anyClosed, allActive := false, true
	for i, st := range m.streams {
		switch cl := st.Stream.(type) {
		case *OpenLoop:
			s.Streams[i] = cl.State()
		case *ClosedLoop:
			anyClosed = true
			cs := cl.State()
			s.Streams[i] = cs.Inner
		}
		if !m.active[i] {
			allActive = false
		}
	}
	if anyClosed {
		s.Closed = make([]ClosedLoopState, len(m.streams))
		for i, st := range m.streams {
			if cl, ok := st.Stream.(*ClosedLoop); ok {
				s.Closed[i] = cl.State()
				s.Closed[i].Inner = OpenLoopState{} // lives in Streams[i]
			}
		}
	}
	if !allActive {
		s.Active = append([]bool(nil), m.active...)
	}
	return s
}

// RestoreState rewinds the mux to an exported state. The receiver must have
// been built from the same stream configurations as the exporter.
func (m *Mux) RestoreState(s MuxState) error {
	if len(s.Heads) != len(m.streams) || len(s.Streams) != len(m.streams) {
		return fmt.Errorf("workload: mux state has %d/%d streams, mux has %d",
			len(s.Heads), len(s.Streams), len(m.streams))
	}
	if s.Closed != nil && len(s.Closed) != len(m.streams) {
		return fmt.Errorf("workload: mux state has %d closed-loop entries, mux has %d streams",
			len(s.Closed), len(m.streams))
	}
	if s.Active != nil && len(s.Active) != len(m.streams) {
		return fmt.Errorf("workload: mux state has %d active flags, mux has %d streams",
			len(s.Active), len(m.streams))
	}
	for i, st := range m.streams {
		switch cl := st.Stream.(type) {
		case *OpenLoop:
			if err := cl.RestoreState(s.Streams[i]); err != nil {
				return fmt.Errorf("workload: mux stream %d: %w", i, err)
			}
		case *ClosedLoop:
			if s.Closed == nil {
				return fmt.Errorf("workload: mux stream %d is closed-loop but the state has no closed-loop entries", i)
			}
			cs := s.Closed[i]
			cs.Inner = s.Streams[i]
			if err := cl.RestoreState(cs); err != nil {
				return fmt.Errorf("workload: mux stream %d: %w", i, err)
			}
		default:
			return fmt.Errorf("workload: mux stream %d has unrestorable type %T", i, st.Stream)
		}
	}
	copy(m.heads, s.Heads)
	for i := range m.active {
		m.active[i] = s.Active == nil || s.Active[i]
	}
	m.emitted = s.Emitted
	return nil
}

// Trace materializes the next n merged records as a plain trace, dropping the
// stream tags. The serving subsystem warms up its initial GMM on exactly this
// merged view so the model trains on the same interleaving it will serve.
func (m *Mux) Trace(n int) trace.Trace {
	buf := make([]MuxRecord, n)
	m.Next(buf)
	out := make(trace.Trace, n)
	for i, r := range buf {
		out[i] = r.Rec
	}
	return out
}
