package workload

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// MuxStream is one tenant-shaped input to a Mux: an open-loop stream plus a
// static page offset that relocates the stream's working set, so co-located
// tenants occupy disjoint regions of the device address space.
type MuxStream struct {
	// Stream produces the records; its OpenLoopConfig fixes the tenant's
	// seed, rate, bursts and working-set drift.
	Stream *OpenLoop
	// OffsetPages is added to every record's page index.
	OffsetPages uint64
}

// MuxRecord is one merged record tagged with the stream it came from.
type MuxRecord struct {
	Rec trace.Record
	// Stream is the index of the originating MuxStream.
	Stream int
}

// Mux deterministically interleaves several open-loop streams into one
// arrival-ordered request stream: the next record is always the one with the
// earliest arrival time, ties broken by stream index. The merge is a pure
// function of the streams alone — never of how many records a caller pulls
// per batch — so a multi-tenant serving run consumes the same global arrival
// order at any batch size or shard count.
type Mux struct {
	streams []MuxStream
	heads   []trace.Record // one-record lookahead per stream
	emitted uint64
	one     [1]trace.Record
}

// NewMux validates the streams and builds the mux. Every stream must have a
// positive arrival rate: a saturating stream (all arrivals at time zero)
// would win every tie-break and starve the rest.
func NewMux(streams []MuxStream) (*Mux, error) {
	if len(streams) == 0 {
		return nil, errors.New("workload: mux needs at least one stream")
	}
	m := &Mux{
		streams: make([]MuxStream, len(streams)),
		heads:   make([]trace.Record, len(streams)),
	}
	for i, s := range streams {
		if s.Stream == nil {
			return nil, fmt.Errorf("workload: mux stream %d is nil", i)
		}
		if s.Stream.cfg.RatePerSec <= 0 {
			return nil, fmt.Errorf("workload: mux stream %d has no arrival rate (a saturating stream would starve the others)", i)
		}
		m.streams[i] = s
		m.heads[i] = m.pull(i)
	}
	return m, nil
}

// pull draws the next record from stream i with its page offset applied.
func (m *Mux) pull(i int) trace.Record {
	s := m.streams[i]
	s.Stream.Next(m.one[:])
	r := m.one[0]
	r.Addr += s.OffsetPages << trace.PageShift
	return r
}

// Streams returns the number of muxed streams.
func (m *Mux) Streams() int { return len(m.streams) }

// Emitted returns how many merged records have been produced.
func (m *Mux) Emitted() uint64 { return m.emitted }

// Next fills dst with the next len(dst) merged records and returns len(dst);
// the merged stream never ends. Each record keeps the arrival time its own
// stream assigned, so merged times are globally non-decreasing.
func (m *Mux) Next(dst []MuxRecord) int {
	for i := range dst {
		best := 0
		for s := 1; s < len(m.heads); s++ {
			if m.heads[s].Time < m.heads[best].Time {
				best = s
			}
		}
		dst[i] = MuxRecord{Rec: m.heads[best], Stream: best}
		m.heads[best] = m.pull(best)
		m.emitted++
	}
	return len(dst)
}

// MuxState is the mux's full mutable state: the one-record lookahead heads,
// the merged-output count, and every underlying stream's cursor.
type MuxState struct {
	Emitted uint64          `json:"emitted"`
	Heads   []trace.Record  `json:"heads"`
	Streams []OpenLoopState `json:"streams"`
}

// State exports the mux's mutable state.
func (m *Mux) State() MuxState {
	s := MuxState{
		Emitted: m.emitted,
		Heads:   append([]trace.Record(nil), m.heads...),
		Streams: make([]OpenLoopState, len(m.streams)),
	}
	for i, st := range m.streams {
		s.Streams[i] = st.Stream.State()
	}
	return s
}

// RestoreState rewinds the mux to an exported state. The receiver must have
// been built from the same stream configurations as the exporter.
func (m *Mux) RestoreState(s MuxState) error {
	if len(s.Heads) != len(m.streams) || len(s.Streams) != len(m.streams) {
		return fmt.Errorf("workload: mux state has %d/%d streams, mux has %d",
			len(s.Heads), len(s.Streams), len(m.streams))
	}
	for i, st := range m.streams {
		if err := st.Stream.RestoreState(s.Streams[i]); err != nil {
			return fmt.Errorf("workload: mux stream %d: %w", i, err)
		}
	}
	copy(m.heads, s.Heads)
	m.emitted = s.Emitted
	return nil
}

// Trace materializes the next n merged records as a plain trace, dropping the
// stream tags. The serving subsystem warms up its initial GMM on exactly this
// merged view so the model trains on the same interleaving it will serve.
func (m *Mux) Trace(n int) trace.Trace {
	buf := make([]MuxRecord, n)
	m.Next(buf)
	out := make(trace.Trace, n)
	for i, r := range buf {
		out[i] = r.Rec
	}
	return out
}
