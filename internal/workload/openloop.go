package workload

import (
	"errors"
	"math"

	"repro/internal/engine"
	"repro/internal/trace"
)

// OpenLoopConfig describes an open-loop arrival process layered over a
// trace generator: requests arrive on their own clock regardless of how fast
// the service drains them, the load shape a production memory expander sees
// from independent hosts (as opposed to the closed-loop replay of
// internal/core, where each request waits for the previous completion).
type OpenLoopConfig struct {
	// RatePerSec is the mean arrival rate in requests per second. Zero or
	// negative means a saturating source: every request arrives at time 0
	// and the service runs as fast as its own latency model allows.
	RatePerSec float64
	// BurstAmp sinusoidally modulates the instantaneous rate by ±BurstAmp
	// (0 <= BurstAmp < 1); 0 keeps arrivals evenly spaced. Bursts stress
	// per-shard queueing without adding a second RNG stream — the arrival
	// clock stays a pure function of the request index.
	BurstAmp float64
	// BurstPeriod is the modulation period in requests (default 100000).
	BurstPeriod int
	// SegmentLen is how many records are drawn from the generator per
	// segment (default 65536). Each segment uses a seed derived from
	// (Seed, segment index), so the stream is reproducible and unbounded
	// without materializing one giant trace.
	SegmentLen int
	// Seed drives segment seed derivation.
	Seed int64
	// ShiftAfter, when positive, remaps every page by ShiftOffsetPages
	// once that many requests have been emitted — a sustained working-set
	// drift that invalidates a model trained before the shift. Used to
	// exercise online model refresh.
	ShiftAfter uint64
	// ShiftOffsetPages is the page offset applied after the shift point.
	ShiftOffsetPages uint64
	// ShiftTo, when set, also swaps the stream's generator at the shift
	// point, so the working set does not merely relocate but changes shape
	// or size — e.g. a tenant whose post-shift working set outgrows its HBM
	// capacity share, the scenario the elastic-share controller exists for.
	// The swap is exact: the rest of the in-flight segment is discarded and
	// the next segment is drawn from ShiftTo, continuing the same derived
	// seed sequence, so streams stay reproducible bit for bit.
	ShiftTo Generator
}

// OpenLoop is a deterministic open-loop request stream: workload records from
// a Generator, stamped with arrival times in nanoseconds. The stream is
// unbounded; callers stop pulling when they have served enough requests (or
// enough virtual time has passed).
type OpenLoop struct {
	g   Generator
	cfg OpenLoopConfig

	buf     trace.Trace // current segment
	pos     int
	seg     uint64
	emitted uint64
	clockNs float64
	shifted bool
	// bufShifted records whether the current segment was drawn from ShiftTo
	// rather than the base generator — the one bit State needs to regenerate
	// the segment from the right source on restore.
	bufShifted bool
}

// NewOpenLoop validates the config and builds the stream.
func NewOpenLoop(g Generator, cfg OpenLoopConfig) (*OpenLoop, error) {
	if g == nil {
		return nil, errors.New("workload: open loop needs a generator")
	}
	if cfg.BurstAmp < 0 || cfg.BurstAmp >= 1 {
		return nil, errors.New("workload: burst amplitude outside [0, 1)")
	}
	if cfg.ShiftTo != nil && cfg.ShiftAfter == 0 {
		return nil, errors.New("workload: ShiftTo configured without ShiftAfter — the swap would never happen")
	}
	if cfg.BurstPeriod <= 0 {
		cfg.BurstPeriod = 100_000
	}
	if cfg.SegmentLen <= 0 {
		cfg.SegmentLen = 1 << 16
	}
	return &OpenLoop{g: g, cfg: cfg}, nil
}

// Name labels the stream after its generator.
func (ol *OpenLoop) Name() string { return ol.g.Name() }

// Rate returns the configured mean arrival rate in requests per second.
func (ol *OpenLoop) Rate() float64 { return ol.cfg.RatePerSec }

// SetRate changes the arrival rate at a batch boundary. Already-stamped
// arrivals keep their times; only future interarrival gaps use the new rate,
// so a rate schedule replayed at the same boundaries reproduces the same
// stream bit for bit.
func (ol *OpenLoop) SetRate(r float64) { ol.cfg.RatePerSec = r }

// SetGenerator swaps the stream's trace generator — the scenario engine's
// workload-phase event. The in-flight segment is regenerated in place from
// the new generator (same derived seed, same cursor), so the swap takes
// effect at the very next record and a resumed stream, which regenerates its
// segment from the post-swap generator, stays bit-identical. The swap is
// skipped while a ShiftTo segment is live: phase events and working-set
// shifts are mutually exclusive per stream (the spec validates this).
func (ol *OpenLoop) SetGenerator(g Generator) {
	ol.g = g
	if len(ol.buf) > 0 && !ol.bufShifted {
		ol.buf = g.Generate(ol.cfg.SegmentLen, engine.DeriveSeed(ol.cfg.Seed, ol.seg-1))
	}
}

// Emitted returns how many requests have been produced so far.
func (ol *OpenLoop) Emitted() uint64 { return ol.emitted }

// Next fills dst with the next len(dst) requests of the stream and returns
// how many were written (always len(dst); the stream never ends). Each
// record's Time field carries the arrival time in nanoseconds.
func (ol *OpenLoop) Next(dst []trace.Record) int {
	for i := range dst {
		if ol.cfg.ShiftAfter > 0 && !ol.shifted && ol.emitted >= ol.cfg.ShiftAfter {
			ol.shifted = true
			if ol.cfg.ShiftTo != nil {
				ol.pos = len(ol.buf) // discard the pre-shift remainder
			}
		}
		if ol.pos >= len(ol.buf) {
			g := ol.g
			ol.bufShifted = ol.shifted && ol.cfg.ShiftTo != nil
			if ol.bufShifted {
				g = ol.cfg.ShiftTo
			}
			ol.buf = g.Generate(ol.cfg.SegmentLen, engine.DeriveSeed(ol.cfg.Seed, ol.seg))
			ol.pos = 0
			ol.seg++
		}
		r := ol.buf[ol.pos]
		ol.pos++
		if ol.shifted {
			r.Addr += ol.cfg.ShiftOffsetPages << trace.PageShift
		}
		r.Time = uint64(ol.clockNs)
		dst[i] = r
		ol.clockNs += ol.interarrivalNs()
		ol.emitted++
	}
	return len(dst)
}

// OpenLoopState is the stream's full mutable state. The in-flight segment
// buffer is NOT stored: it is a pure function of (Seed, Seg-1) and the
// generator choice recorded in BufShifted, so RestoreState regenerates it —
// which is what keeps a checkpoint small and a restored stream bit-identical
// to one that never paused.
type OpenLoopState struct {
	Seg        uint64  `json:"seg"`
	Pos        int     `json:"pos"`
	Emitted    uint64  `json:"emitted"`
	ClockNs    float64 `json:"clock_ns"`
	Shifted    bool    `json:"shifted,omitempty"`
	BufShifted bool    `json:"buf_shifted,omitempty"`
}

// State exports the stream's mutable state (the RNG cursor of the serving
// subsystem's checkpoint).
func (ol *OpenLoop) State() OpenLoopState {
	return OpenLoopState{
		Seg:        ol.seg,
		Pos:        ol.pos,
		Emitted:    ol.emitted,
		ClockNs:    ol.clockNs,
		Shifted:    ol.shifted,
		BufShifted: ol.bufShifted,
	}
}

// RestoreState rewinds (or fast-forwards) the stream to an exported state,
// regenerating the in-flight segment deterministically. The receiver must
// have been built with the same generator and config as the exporter.
func (ol *OpenLoop) RestoreState(s OpenLoopState) error {
	if s.Seg == 0 && s.Pos != 0 {
		return errors.New("workload: open-loop state has a cursor into a segment that was never generated")
	}
	if s.Pos < 0 || s.Pos > ol.cfg.SegmentLen {
		return errors.New("workload: open-loop state cursor outside the segment")
	}
	if s.BufShifted && ol.cfg.ShiftTo == nil {
		return errors.New("workload: open-loop state needs a ShiftTo generator the config does not have")
	}
	ol.seg, ol.pos, ol.emitted = s.Seg, s.Pos, s.Emitted
	ol.clockNs, ol.shifted, ol.bufShifted = s.ClockNs, s.Shifted, s.BufShifted
	ol.buf = nil
	if s.Seg > 0 {
		g := ol.g
		if s.BufShifted {
			g = ol.cfg.ShiftTo
		}
		ol.buf = g.Generate(ol.cfg.SegmentLen, engine.DeriveSeed(ol.cfg.Seed, s.Seg-1))
	}
	return nil
}

// interarrivalNs returns the gap to the next arrival: 1e9/rate scaled by the
// sinusoidal burst modulation at the current request index. A pure function
// of the emitted count, so arrival times are reproducible bit for bit.
func (ol *OpenLoop) interarrivalNs() float64 {
	if ol.cfg.RatePerSec <= 0 {
		return 0
	}
	gap := 1e9 / ol.cfg.RatePerSec
	if ol.cfg.BurstAmp > 0 {
		phase := 2 * math.Pi * float64(ol.emitted) / float64(ol.cfg.BurstPeriod)
		// Modulating the gap by (1 - amp*sin) speeds arrivals up during the
		// positive half-cycle — a burst — and thins them after.
		gap *= 1 - ol.cfg.BurstAmp*math.Sin(phase)
	}
	return gap
}
