package workload

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func TestRegistryNames(t *testing.T) {
	want := []string{"parsec", "memtier", "hashmap", "heap", "sysbench", "stream", "dlrm"}
	gens := Registry()
	if len(gens) != len(want) {
		t.Fatalf("Registry has %d generators, want %d", len(gens), len(want))
	}
	for i, g := range gens {
		if g.Name() != want[i] {
			t.Errorf("Registry[%d] = %q, want %q", i, g.Name(), want[i])
		}
	}
}

func TestByName(t *testing.T) {
	g, err := ByName("dlrm")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "dlrm" {
		t.Errorf("ByName returned %q", g.Name())
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestGeneratorsBasicContract(t *testing.T) {
	const n = 20000
	for _, g := range Registry() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			tr := g.Generate(n, 1)
			if len(tr) != n {
				t.Fatalf("generated %d records, want %d", len(tr), n)
			}
			s := trace.Summarize(tr)
			if s.Reads == 0 {
				t.Error("no reads generated")
			}
			if s.Writes == 0 {
				t.Error("no writes generated")
			}
			if s.UniquePages < 100 {
				t.Errorf("only %d unique pages; generator degenerate", s.UniquePages)
			}
			// Timestamps must be arrival-ordered.
			for i := 1; i < len(tr); i++ {
				if tr[i].Time != tr[i-1].Time+1 {
					t.Fatal("records not stamped in arrival order")
				}
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range Registry() {
		a := g.Generate(5000, 42)
		b := g.Generate(5000, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: records differ at %d for same seed", g.Name(), i)
			}
		}
		c := g.Generate(5000, 43)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical traces", g.Name())
		}
	}
}

func TestGeneratorsReuseExists(t *testing.T) {
	// Every benchmark must exhibit page reuse — a cache is useless otherwise.
	for _, g := range Registry() {
		tr := g.Generate(50000, 7)
		s := trace.Summarize(tr)
		if s.ReusedPages == 0 {
			t.Errorf("%s: no page reuse", g.Name())
		}
		if float64(s.UniquePages) >= 0.95*float64(s.Records) {
			t.Errorf("%s: %d unique pages in %d records — no locality",
				g.Name(), s.UniquePages, s.Records)
		}
	}
}

func TestStreamIsSequentialHeavy(t *testing.T) {
	tr := NewStream().Generate(30000, 3)
	// Stream mixes sequential sweeps with a hot control region, so many
	// consecutive requests should land on the same or an adjacent page.
	small := 0
	total := 0
	for i := 1; i < len(tr); i++ {
		d := int64(tr[i].Page()) - int64(tr[i-1].Page())
		if d < 0 {
			d = -d
		}
		total++
		if d <= 1 {
			small++
		}
	}
	if float64(small)/float64(total) < 0.3 {
		t.Errorf("stream locality structure missing: %d/%d small steps", small, total)
	}
}

func TestDLRMFootprintExceedsCache(t *testing.T) {
	d := NewDLRM()
	tr := d.Generate(100000, 5)
	s := trace.Summarize(tr)
	cachePages := uint64(16384) // 64 MiB / 4 KiB
	if uint64(s.UniquePages) < cachePages {
		t.Errorf("dlrm unique pages %d should exceed cache capacity %d",
			s.UniquePages, cachePages)
	}
}

func TestParsecHotSetMostlyFitsCache(t *testing.T) {
	// The parsec hot working set is designed to (mostly) fit in the
	// 64 MiB cache, giving the low miss rates of Fig. 6: the pages
	// covering the bulk of accesses must number below cache capacity.
	tr := NewParsec().Generate(200000, 1)
	hot := trace.HotPages(tr, 16384)
	counts := make(map[uint64]bool, len(hot))
	for _, p := range hot {
		counts[p] = true
	}
	covered := 0
	for _, r := range tr {
		if counts[r.Page()] {
			covered++
		}
	}
	if frac := float64(covered) / float64(len(tr)); frac < 0.9 {
		t.Errorf("top-16384 pages cover only %.1f%% of parsec accesses", 100*frac)
	}
}

func TestClusterSampleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := cluster{center: 10, spread: 100}
	for i := 0; i < 10000; i++ {
		p := c.sample(rng, 50)
		if p > 50 {
			t.Fatalf("sample %d outside [0, 50]", p)
		}
	}
}

func TestZipfPagesBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	zp := newZipfPages(rng, 100, 1000, 1.2, true)
	seen := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		p := zp.sample()
		if p < 100 || p >= 1100 {
			t.Fatalf("zipf sample %d outside [100, 1100)", p)
		}
		seen[p]++
	}
	// Skewed: the most popular page should dominate.
	max := 0
	for _, c := range seen {
		if c > max {
			max = c
		}
	}
	if max < 500 {
		t.Errorf("zipf max frequency %d; distribution not skewed", max)
	}
}

func TestZipfZeroSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	zp := newZipfPages(rng, 5, 0, 1.2, false)
	if p := zp.sample(); p != 5 {
		t.Errorf("zero-span zipf sample = %d, want 5", p)
	}
}

func TestPhaseSchedule(t *testing.T) {
	ps := newPhaseSchedule(3, 2)
	var got []int
	for i := 0; i < 9; i++ {
		got = append(got, ps.next())
	}
	want := []int{0, 0, 0, 1, 1, 1, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phases = %v, want %v", got, want)
		}
	}
}

func TestPhaseScheduleDegenerate(t *testing.T) {
	ps := newPhaseSchedule(0, 0)
	for i := 0; i < 10; i++ {
		if p := ps.next(); p != 0 {
			t.Fatal("degenerate schedule should stay in phase 0")
		}
	}
}

func TestPageRecordOffsetWithinPage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		r := pageRecord(rng, 42, i%2 == 0)
		if r.Page() != 42 {
			t.Fatalf("record page = %d, want 42", r.Page())
		}
		if r.Addr%64 != 0 {
			t.Fatalf("address %d not 64-byte aligned", r.Addr)
		}
	}
}
