package workload

import (
	"testing"

	"repro/internal/trace"
)

// stateTestGen builds a small custom generator for stream-state tests.
func stateTestGen(t *testing.T, name string, pages uint64) Generator {
	t.Helper()
	g, err := NewCustom(CustomConfig{
		Name:       name,
		TotalPages: pages,
		Clusters:   []ClusterSpec{{CenterPage: pages / 4, Spread: 10}, {CenterPage: pages / 2, Spread: 15}},
		WriteFrac:  0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestOpenLoopStateRoundTrip: exporting a stream's state mid-flight and
// restoring it into a freshly built stream must reproduce the exact
// remaining record sequence — including across segment boundaries and the
// working-set shift (with and without a generator swap).
func TestOpenLoopStateRoundTrip(t *testing.T) {
	t.Parallel()
	cases := map[string]OpenLoopConfig{
		"plain": {RatePerSec: 1e6, Seed: 7, SegmentLen: 512},
		"burst": {RatePerSec: 1e6, BurstAmp: 0.4, BurstPeriod: 300, Seed: 3, SegmentLen: 512},
		"offset shift": {RatePerSec: 1e6, Seed: 5, SegmentLen: 512,
			ShiftAfter: 700, ShiftOffsetPages: 1 << 20},
	}
	gen := func(t *testing.T) Generator { return stateTestGen(t, "state-ws", 2048) }
	for name, cfg := range cases {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, cut := range []int{0, 100, 512, 900, 1500} {
				orig, err := NewOpenLoop(gen(t), cfg)
				if err != nil {
					t.Fatal(err)
				}
				buf := make([]trace.Record, cut)
				orig.Next(buf)
				st := orig.State()
				want := make([]trace.Record, 400)
				orig.Next(want)

				fresh, err := NewOpenLoop(gen(t), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := fresh.RestoreState(st); err != nil {
					t.Fatal(err)
				}
				if got := fresh.Emitted(); got != uint64(cut) {
					t.Fatalf("cut %d: restored Emitted = %d", cut, got)
				}
				got := make([]trace.Record, 400)
				fresh.Next(got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("cut %d: record %d differs after restore: %+v vs %+v", cut, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestOpenLoopStateShiftTo covers the generator-swap drift: a restore landing
// after the swap must regenerate the in-flight segment from the ShiftTo
// generator, not the base one.
func TestOpenLoopStateShiftTo(t *testing.T) {
	t.Parallel()
	mk := func(t *testing.T) OpenLoopConfig {
		return OpenLoopConfig{
			RatePerSec: 1e6, Seed: 11, SegmentLen: 256,
			ShiftAfter: 400, ShiftOffsetPages: 1 << 18,
			ShiftTo: stateTestGen(t, "grown-ws", 4096),
		}
	}
	for _, cut := range []int{0, 399, 400, 401, 700} {
		orig, err := NewOpenLoop(stateTestGen(t, "base-ws", 512), mk(t))
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]trace.Record, cut)
		orig.Next(buf)
		st := orig.State()
		want := make([]trace.Record, 300)
		orig.Next(want)

		fresh, err := NewOpenLoop(stateTestGen(t, "base-ws", 512), mk(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreState(st); err != nil {
			t.Fatal(err)
		}
		got := make([]trace.Record, 300)
		fresh.Next(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut %d: record %d differs after restore", cut, i)
			}
		}
	}
}

// TestOpenLoopRestoreStateRejects pins the restore error paths.
func TestOpenLoopRestoreStateRejects(t *testing.T) {
	t.Parallel()
	ol, err := NewOpenLoop(stateTestGen(t, "r-ws", 512), OpenLoopConfig{RatePerSec: 1e6, SegmentLen: 128})
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string]OpenLoopState{
		"cursor without segment": {Seg: 0, Pos: 5},
		"cursor past segment":    {Seg: 1, Pos: 129},
		"negative cursor":        {Seg: 1, Pos: -1},
		"missing shift-to":       {Seg: 1, Pos: 4, BufShifted: true},
	}
	for name, st := range bad {
		if err := ol.RestoreState(st); err == nil {
			t.Errorf("%s: accepted %+v", name, st)
		}
	}
	if ol.Name() == "" {
		t.Error("stream lost its generator name")
	}
}

// TestMuxStateRoundTrip: a mux restored from mid-flight state must reproduce
// the exact remaining merged sequence, stream tags included.
func TestMuxStateRoundTrip(t *testing.T) {
	t.Parallel()
	mk := func(t *testing.T) *Mux {
		t.Helper()
		a, err := NewOpenLoop(stateTestGen(t, "mux-a", 512), OpenLoopConfig{RatePerSec: 2e4, Seed: 1, SegmentLen: 256})
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewOpenLoop(stateTestGen(t, "mux-b", 256), OpenLoopConfig{
			RatePerSec: 1e4, Seed: 2, SegmentLen: 256,
			ShiftAfter: 300, ShiftOffsetPages: 1 << 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMux([]MuxStream{{Stream: a}, {Stream: b, OffsetPages: 1 << 14}})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	for _, cut := range []int{0, 77, 500, 1000} {
		orig := mk(t)
		buf := make([]MuxRecord, cut)
		orig.Next(buf)
		st := orig.State()
		want := make([]MuxRecord, 400)
		orig.Next(want)

		fresh := mk(t)
		if err := fresh.RestoreState(st); err != nil {
			t.Fatal(err)
		}
		if fresh.Emitted() != uint64(cut) {
			t.Fatalf("cut %d: restored Emitted = %d", cut, fresh.Emitted())
		}
		got := make([]MuxRecord, 400)
		fresh.Next(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut %d: merged record %d differs after restore: %+v vs %+v", cut, i, got[i], want[i])
			}
		}
	}

	// Stream-count mismatches are rejected.
	orig := mk(t)
	st := orig.State()
	st.Heads = st.Heads[:1]
	if err := mk(t).RestoreState(st); err == nil {
		t.Error("accepted a state with a missing head")
	}
	st = orig.State()
	st.Streams = append(st.Streams, OpenLoopState{})
	if err := mk(t).RestoreState(st); err == nil {
		t.Error("accepted a state with an extra stream")
	}
}
