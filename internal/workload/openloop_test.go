package workload

import (
	"testing"

	"repro/internal/trace"
)

func TestOpenLoopDeterministic(t *testing.T) {
	mk := func() *OpenLoop {
		ol, err := NewOpenLoop(NewDLRM(), OpenLoopConfig{
			RatePerSec: 1e6, BurstAmp: 0.5, Seed: 3, SegmentLen: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ol
	}
	a, b := mk(), mk()
	bufA := make([]trace.Record, 600)
	bufB := make([]trace.Record, 600)
	for round := 0; round < 4; round++ {
		a.Next(bufA)
		b.Next(bufB)
		for i := range bufA {
			if bufA[i] != bufB[i] {
				t.Fatalf("round %d record %d differs: %v vs %v", round, i, bufA[i], bufB[i])
			}
		}
	}
	if a.Emitted() != 2400 {
		t.Fatalf("emitted = %d", a.Emitted())
	}
}

func TestOpenLoopArrivalClock(t *testing.T) {
	ol, err := NewOpenLoop(NewStream(), OpenLoopConfig{RatePerSec: 1e9}) // 1 req/ns
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]trace.Record, 100)
	ol.Next(buf)
	for i, r := range buf {
		if r.Time != uint64(i) {
			t.Fatalf("record %d arrival = %d, want %d", i, r.Time, i)
		}
	}

	// Saturating source: every arrival at t=0.
	sat, err := NewOpenLoop(NewStream(), OpenLoopConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sat.Next(buf)
	for i, r := range buf {
		if r.Time != 0 {
			t.Fatalf("saturating record %d arrival = %d, want 0", i, r.Time)
		}
	}
}

func TestOpenLoopBurstModulation(t *testing.T) {
	ol, err := NewOpenLoop(NewStream(), OpenLoopConfig{
		RatePerSec: 1e6, BurstAmp: 0.9, BurstPeriod: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]trace.Record, 1000)
	ol.Next(buf)
	// During the first (positive) half-cycle gaps shrink, so the first 500
	// arrivals must be denser than the steady 1 us spacing.
	steady := uint64(500 * 1000)
	if buf[499].Time >= steady {
		t.Fatalf("burst half-cycle not denser: arrival 499 at %d ns, steady would be %d", buf[499].Time, steady)
	}
	// Arrival times stay monotonically non-decreasing despite modulation.
	for i := 1; i < len(buf); i++ {
		if buf[i].Time < buf[i-1].Time {
			t.Fatalf("arrival clock went backwards at %d", i)
		}
	}
}

func TestOpenLoopShiftMovesWorkingSet(t *testing.T) {
	const offset = 1 << 30 // pages, far beyond any generator footprint
	ol, err := NewOpenLoop(NewDLRM(), OpenLoopConfig{
		Seed: 1, SegmentLen: 500, ShiftAfter: 700, ShiftOffsetPages: offset,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]trace.Record, 1400)
	ol.Next(buf)
	for i, r := range buf {
		shifted := r.Page() >= offset
		if i < 700 && shifted {
			t.Fatalf("record %d shifted before the shift point", i)
		}
		if i >= 700 && !shifted {
			t.Fatalf("record %d not shifted after the shift point", i)
		}
	}
}

func TestOpenLoopConfigValidation(t *testing.T) {
	if _, err := NewOpenLoop(nil, OpenLoopConfig{}); err == nil {
		t.Error("nil generator accepted")
	}
	if _, err := NewOpenLoop(NewStream(), OpenLoopConfig{BurstAmp: 1}); err == nil {
		t.Error("burst amplitude 1 accepted")
	}
	if _, err := NewOpenLoop(NewStream(), OpenLoopConfig{BurstAmp: -0.1}); err == nil {
		t.Error("negative burst amplitude accepted")
	}
}

// TestOpenLoopShiftTo: with a second generator configured, the shift point
// swaps working sets exactly (plus the page offset), and the stream stays
// deterministic — the elastic-share scenarios lean on a drift that grows the
// working set beyond a tenant's capacity share.
func TestOpenLoopShiftTo(t *testing.T) {
	t.Parallel()
	small, err := NewCustom(CustomConfig{Name: "small", TotalPages: 64, TailFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewCustom(CustomConfig{Name: "big", TotalPages: 4096, TailFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	const (
		shiftAt = 100
		offset  = 1 << 20
	)
	build := func() *OpenLoop {
		ol, err := NewOpenLoop(small, OpenLoopConfig{
			RatePerSec: 1e6, Seed: 5, SegmentLen: 64,
			ShiftAfter: shiftAt, ShiftOffsetPages: offset, ShiftTo: big,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ol
	}
	ol := build()
	buf := make([]trace.Record, 300)
	ol.Next(buf)
	sawBigOnly := false
	for i, r := range buf {
		page := r.Page()
		if i < shiftAt {
			if page >= 64 {
				t.Fatalf("record %d: pre-shift page %d outside the small working set", i, page)
			}
			continue
		}
		if page < offset {
			t.Fatalf("record %d: post-shift page %d missing the shift offset", i, page)
		}
		if page-offset >= 4096 {
			t.Fatalf("record %d: post-shift page %d outside the big working set", i, page)
		}
		if page-offset >= 64 {
			sawBigOnly = true
		}
	}
	if !sawBigOnly {
		t.Error("post-shift stream never left the small working set; ShiftTo did not take over")
	}
	// Bit-identical replay: the swap must not depend on read batch sizes.
	ol2 := build()
	buf2 := make([]trace.Record, 300)
	for lo := 0; lo < len(buf2); {
		n := 7
		if lo+n > len(buf2) {
			n = len(buf2) - lo
		}
		ol2.Next(buf2[lo : lo+n])
		lo += n
	}
	for i := range buf {
		if buf[i] != buf2[i] {
			t.Fatalf("record %d differs across batch sizes: %+v vs %+v", i, buf[i], buf2[i])
		}
	}
}

func TestOpenLoopShiftToRequiresShiftAfter(t *testing.T) {
	t.Parallel()
	g, err := NewCustom(CustomConfig{Name: "g", TotalPages: 64, TailFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOpenLoop(g, OpenLoopConfig{RatePerSec: 1, ShiftTo: g}); err == nil {
		t.Fatal("ShiftTo without ShiftAfter accepted: the swap would silently never happen")
	}
}
