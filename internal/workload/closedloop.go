package workload

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// ClosedLoopConfig describes a closed-loop client population: N users who
// each issue one request, wait for its (estimated) completion, think, and
// issue the next. Unlike OpenLoop — whose arrival clock ignores the service
// entirely — a closed-loop stream's offered load falls when the device
// saturates, because every user's next arrival is gated on the completion
// latency the serving path feeds back. This is the mode where QoS decisions
// change the traffic that judges them.
type ClosedLoopConfig struct {
	// Users is the number of concurrent users in the population.
	Users int
	// RatePerSec is the target offered rate at zero service latency; the
	// per-user think time is Users/RatePerSec seconds, so an unloaded device
	// sees the same mean rate an OpenLoop with this rate would offer.
	RatePerSec float64
	// Alpha is the EWMA weight of new latency observations (default 0.2).
	Alpha float64
}

// Validate checks the client population parameters.
func (c ClosedLoopConfig) Validate() error {
	if c.Users <= 0 {
		return errors.New("workload: closed loop needs at least one user")
	}
	if c.RatePerSec <= 0 {
		return errors.New("workload: closed loop needs a positive rate")
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return errors.New("workload: closed-loop alpha outside [0, 1]")
	}
	return nil
}

// ClosedLoop is a deterministic closed-loop request stream: records come
// from the same segmented generator machinery as OpenLoop (an inner stream
// with a zero rate supplies pages; its arrival clock is unused), but arrival
// times are the virtual instants users become free — previous completion
// estimate plus think time. The latency estimate is an EWMA updated by
// ObserveLatency at batch boundaries, so the stream stays a pure function of
// the (record sequence, observation sequence) pair and replays exactly
// through checkpoint/resume.
type ClosedLoop struct {
	inner   *OpenLoop
	cfg     ClosedLoopConfig
	rate    float64
	thinkNs float64
	// users holds each user's next-free virtual time in nanoseconds.
	users    []float64
	latEstNs float64
	seen     bool
	one      [1]trace.Record
}

// NewClosedLoop builds the stream. The generator and open-loop config govern
// page selection exactly as for NewOpenLoop; olCfg.RatePerSec is ignored
// (arrivals are gated by the users, not a clock).
func NewClosedLoop(g Generator, olCfg OpenLoopConfig, cfg ClosedLoopConfig) (*ClosedLoop, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.2
	}
	olCfg.RatePerSec = 0 // the inner clock must stay at zero
	inner, err := NewOpenLoop(g, olCfg)
	if err != nil {
		return nil, err
	}
	cl := &ClosedLoop{
		inner: inner,
		cfg:   cfg,
		users: make([]float64, cfg.Users),
	}
	cl.setRate(cfg.RatePerSec)
	return cl, nil
}

// Name labels the stream after its generator.
func (cl *ClosedLoop) Name() string { return cl.inner.Name() }

// Rate returns the zero-latency target rate.
func (cl *ClosedLoop) Rate() float64 { return cl.rate }

// SetRate retargets the population: the think time is recomputed so the
// zero-latency offered rate matches, exactly like an OpenLoop rate change.
func (cl *ClosedLoop) SetRate(r float64) { cl.setRate(r) }

func (cl *ClosedLoop) setRate(r float64) {
	cl.rate = r
	if r > 0 {
		cl.thinkNs = float64(cl.cfg.Users) * 1e9 / r
	} else {
		cl.thinkNs = 0
	}
}

// SetGenerator swaps the page-selection generator (scenario phase event).
func (cl *ClosedLoop) SetGenerator(g Generator) { cl.inner.SetGenerator(g) }

// Emitted returns how many requests have been produced so far.
func (cl *ClosedLoop) Emitted() uint64 { return cl.inner.Emitted() }

// LatencyEstimateNs returns the current completion-latency EWMA.
func (cl *ClosedLoop) LatencyEstimateNs() float64 { return cl.latEstNs }

// ObserveLatency folds one completion-latency observation (the mean sojourn
// of the tenant's requests in the last batch, in nanoseconds) into the EWMA
// that gates future arrivals. Called at batch boundaries on the ingest
// goroutine, so the feedback sequence is deterministic.
func (cl *ClosedLoop) ObserveLatency(meanNs float64) {
	if meanNs < 0 {
		return
	}
	if !cl.seen {
		cl.latEstNs = meanNs
		cl.seen = true
		return
	}
	cl.latEstNs = cl.cfg.Alpha*meanNs + (1-cl.cfg.Alpha)*cl.latEstNs
}

// Next fills dst with the next len(dst) requests. Each record's page comes
// from the inner generator stream; its Time is the instant the next-free
// user issues it (ties broken by lowest user index), after which that user
// is busy for the estimated completion latency plus the think time.
func (cl *ClosedLoop) Next(dst []trace.Record) int {
	for i := range dst {
		cl.inner.Next(cl.one[:])
		r := cl.one[0]
		u := 0
		for v := 1; v < len(cl.users); v++ {
			if cl.users[v] < cl.users[u] {
				u = v
			}
		}
		r.Time = uint64(cl.users[u])
		cl.users[u] += cl.latEstNs + cl.thinkNs
		dst[i] = r
	}
	return len(dst)
}

// ClosedLoopState is the stream's full mutable state: the inner generator
// cursor plus the user clocks and the latency EWMA.
type ClosedLoopState struct {
	Inner    OpenLoopState `json:"inner"`
	Users    []float64     `json:"users"`
	LatEstNs float64       `json:"lat_est_ns"`
	Seen     bool          `json:"seen,omitempty"`
	Rate     float64       `json:"rate"`
}

// State exports the stream's mutable state.
func (cl *ClosedLoop) State() ClosedLoopState {
	return ClosedLoopState{
		Inner:    cl.inner.State(),
		Users:    append([]float64(nil), cl.users...),
		LatEstNs: cl.latEstNs,
		Seen:     cl.seen,
		Rate:     cl.rate,
	}
}

// RestoreState rewinds the stream to an exported state. The receiver must
// have been built with the same generator and configs as the exporter.
func (cl *ClosedLoop) RestoreState(s ClosedLoopState) error {
	if len(s.Users) != len(cl.users) {
		return fmt.Errorf("workload: closed-loop state has %d users, stream has %d", len(s.Users), len(cl.users))
	}
	if err := cl.inner.RestoreState(s.Inner); err != nil {
		return err
	}
	copy(cl.users, s.Users)
	cl.latEstNs = s.LatEstNs
	cl.seen = s.Seen
	cl.setRate(s.Rate)
	return nil
}
