package workload_test

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func muxStreams(t *testing.T, rates []float64) []workload.MuxStream {
	t.Helper()
	streams := make([]workload.MuxStream, len(rates))
	for i, r := range rates {
		g, err := workload.NewCustom(workload.CustomConfig{
			Name:       "mux-ws",
			TotalPages: 2048,
			Clusters:   []workload.ClusterSpec{{CenterPage: 512, Spread: 100}},
			WriteFrac:  0.25,
		})
		if err != nil {
			t.Fatal(err)
		}
		ol, err := workload.NewOpenLoop(g, workload.OpenLoopConfig{RatePerSec: r, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = workload.MuxStream{Stream: ol, OffsetPages: uint64(i) << 20}
	}
	return streams
}

// TestMuxDeterministicAcrossBatchSizes: the merged sequence must be a pure
// function of the streams, never of how many records the caller pulls per
// Next — the property multi-tenant serving's determinism contract rides on.
func TestMuxDeterministicAcrossBatchSizes(t *testing.T) {
	t.Parallel()
	const total = 20_000
	pull := func(batch int) []workload.MuxRecord {
		m, err := workload.NewMux(muxStreams(t, []float64{5e6, 3e6, 2e6}))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]workload.MuxRecord, 0, total)
		buf := make([]workload.MuxRecord, batch)
		for len(out) < total {
			n := m.Next(buf)
			out = append(out, buf[:n]...)
		}
		return out[:total]
	}
	want := pull(1)
	for _, batch := range []int{7, 1024} {
		got := pull(batch)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: record %d = %+v, want %+v", batch, i, got[i], want[i])
			}
		}
	}
}

// TestMuxMergeOrder: merged arrival times are non-decreasing, every stream
// appears in rate proportion, and per-stream subsequences match each
// stream's own record order with the page offset applied.
func TestMuxMergeOrder(t *testing.T) {
	t.Parallel()
	const total = 30_000
	rates := []float64{6e6, 3e6, 1e6}
	m, err := workload.NewMux(muxStreams(t, rates))
	if err != nil {
		t.Fatal(err)
	}
	if m.Streams() != 3 {
		t.Fatalf("streams = %d", m.Streams())
	}
	buf := make([]workload.MuxRecord, total)
	m.Next(buf)
	if m.Emitted() != total {
		t.Fatalf("emitted = %d", m.Emitted())
	}

	var lastTime uint64
	counts := make([]int, 3)
	perStream := make([][]trace.Record, 3)
	for i, r := range buf {
		if r.Rec.Time < lastTime {
			t.Fatalf("record %d: arrival %d before %d", i, r.Rec.Time, lastTime)
		}
		lastTime = r.Rec.Time
		if r.Stream < 0 || r.Stream >= 3 {
			t.Fatalf("record %d: stream %d out of range", i, r.Stream)
		}
		counts[r.Stream]++
		perStream[r.Stream] = append(perStream[r.Stream], r.Rec)
	}
	// Rate proportions: stream 0 carries 60% of the traffic.
	for s, want := range []float64{0.6, 0.3, 0.1} {
		got := float64(counts[s]) / total
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("stream %d carried %.3f of traffic, want ~%.1f", s, got, want)
		}
	}
	// Per-stream subsequences must be each stream's own records, with the
	// static page offset applied and arrival times preserved.
	for s := range perStream {
		fresh := muxStreams(t, rates)[s]
		refBuf := make([]trace.Record, len(perStream[s]))
		fresh.Stream.Next(refBuf)
		for i, got := range perStream[s] {
			wantRec := refBuf[i]
			wantRec.Addr += fresh.OffsetPages << trace.PageShift
			if got != wantRec {
				t.Fatalf("stream %d record %d = %+v, want %+v", s, i, got, wantRec)
			}
		}
	}
}

// TestMuxTrace: the warm-up view drops tags but preserves the merge.
func TestMuxTrace(t *testing.T) {
	t.Parallel()
	m1, err := workload.NewMux(muxStreams(t, []float64{4e6, 2e6}))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := workload.NewMux(muxStreams(t, []float64{4e6, 2e6}))
	if err != nil {
		t.Fatal(err)
	}
	tr := m1.Trace(5000)
	buf := make([]workload.MuxRecord, 5000)
	m2.Next(buf)
	for i := range tr {
		if tr[i] != buf[i].Rec {
			t.Fatalf("trace record %d = %+v, want %+v", i, tr[i], buf[i].Rec)
		}
	}
}

func TestMuxValidation(t *testing.T) {
	t.Parallel()
	if _, err := workload.NewMux(nil); err == nil {
		t.Error("empty mux accepted")
	}
	if _, err := workload.NewMux([]workload.MuxStream{{}}); err == nil {
		t.Error("nil stream accepted")
	}
	// A saturating (rate<=0) stream would win every tie-break.
	g, err := workload.NewCustom(workload.CustomConfig{
		Name: "sat", TotalPages: 64, Clusters: []workload.ClusterSpec{{CenterPage: 10, Spread: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ol, err := workload.NewOpenLoop(g, workload.OpenLoopConfig{RatePerSec: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.NewMux([]workload.MuxStream{{Stream: ol}}); err == nil {
		t.Error("saturating stream accepted")
	}
}
