package workload

import (
	"math/rand"

	"repro/internal/trace"
)

// The generators below all follow the structure the paper's Fig. 2 reports
// for its traces: access frequency over the address space is a mixture of
// stationary Gaussian clusters ("Spatial distribution can be fitted with
// different Gaussian functions"), while activity within those clusters
// varies over time in phases ("access frequency distribution is uneven in
// temporal"). Hot clusters stay at fixed addresses — what changes over time
// is how much traffic they receive — so a frequency model trained offline
// remains valid during replay, exactly the property ICGMM depends on.
//
// Each benchmark mixes three traffic classes:
//
//   - clustered: Gaussian-cluster traffic with per-phase activity weights
//     (the cacheable, GMM-learnable majority);
//   - tail: low-locality traffic over the whole footprint (uniform or
//     Zipf) that an LRU cache caches pointlessly, polluting the sets;
//   - scan: sequential sweeps (table scans, rehashing, GC marking) — the
//     classic LRU-killer.
//
// Footprints are expressed in 4 KiB pages against the paper's case-study
// cache of 64 MiB = 16384 pages (8-way). Mix fractions are calibrated so
// simulated LRU miss rates land near the paper's Fig. 6 bars and the GMM
// strategies beat LRU by comparable margins.

// mixConfig is the shared generator core.
type mixConfig struct {
	name string
	// totalPages is the benchmark footprint.
	totalPages uint64
	// clusters are the stationary hot blobs.
	clusters []cluster
	// phaseWeights[p][c] is the relative activity of cluster c in phase p;
	// rows are normalized internally.
	phaseWeights [][]float64
	// phaseLen is the phase length in requests.
	phaseLen int
	// tailFrac of requests go to the tail distribution.
	tailFrac float64
	// tailZipfS > 0 selects a Zipf tail with that skew; otherwise uniform.
	tailZipfS float64
	// scanFrac of requests advance a sequential sweep.
	scanFrac float64
	// scanStride is the sweep step in pages.
	scanStride uint64
	// burstEvery > 0 inserts a sequential scan burst (burstLen requests of
	// consecutive pages) every burstEvery requests — a GC mark phase or
	// reporting query that floods the cache with one-shot pages.
	burstEvery, burstLen int
	// pageRepeat issues this many consecutive requests to each chosen page
	// (host 64 B requests landing in the same 4 KiB page).
	pageRepeat int
	// writeFrac of requests are stores.
	writeFrac float64
}

// generate runs the mixture machine.
func (m mixConfig) generate(n int, seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := make(trace.Trace, 0, n)
	ps := newPhaseSchedule(m.phaseLen, len(m.phaseWeights))

	// Normalize phase weights into sampling CDFs.
	cdfs := make([][]float64, len(m.phaseWeights))
	for p, ws := range m.phaseWeights {
		cdf := make([]float64, len(ws))
		sum := 0.0
		for _, w := range ws {
			sum += w
		}
		acc := 0.0
		for i, w := range ws {
			acc += w / sum
			cdf[i] = acc
		}
		cdfs[p] = cdf
	}

	var tail *zipfPages
	if m.tailZipfS > 0 {
		tail = newZipfPages(rng, 0, m.totalPages, m.tailZipfS, true)
	}

	var scanPos uint64
	repeat := 0
	burstLeft := 0
	var curPage uint64
	for len(tr) < n {
		phase := ps.next()
		if m.burstEvery > 0 && len(tr) > 0 && len(tr)%m.burstEvery == 0 {
			burstLeft = m.burstLen
		}
		switch {
		case burstLeft > 0:
			burstLeft--
			repeat = 0
			scanPos = (scanPos + m.scanStride) % m.totalPages
			curPage = scanPos
		case repeat > 0:
			repeat--
		default:
			r := rng.Float64()
			switch {
			case r < m.scanFrac:
				scanPos = (scanPos + m.scanStride) % m.totalPages
				curPage = scanPos
			case r < m.scanFrac+m.tailFrac:
				if tail != nil {
					curPage = tail.sample()
				} else {
					curPage = uint64(rng.Int63n(int64(m.totalPages)))
				}
			default:
				cdf := cdfs[phase]
				u := rng.Float64()
				ci := len(cdf) - 1
				for i, c := range cdf {
					if u <= c {
						ci = i
						break
					}
				}
				curPage = m.clusters[ci].sample(rng, m.totalPages-1)
			}
			if m.pageRepeat > 1 {
				repeat = m.pageRepeat - 1
			}
		}
		tr = append(tr, pageRecord(rng, curPage, rng.Float64() < m.writeFrac))
	}
	tr.Stamp()
	return tr
}

// spreadClusters places k clusters evenly through the footprint with the
// given per-cluster spread (standard deviation, in pages).
func spreadClusters(k int, totalPages uint64, spread float64) []cluster {
	cs := make([]cluster, k)
	for i := range cs {
		cs[i] = cluster{
			center: uint64(i*2+1) * totalPages / uint64(2*k),
			spread: spread,
		}
	}
	return cs
}

// rotatingWeights builds phase weights where each phase concentrates
// activity on a subset of clusters (hotShare of traffic) while the rest
// share the remainder — stationary clusters, phased intensity.
func rotatingWeights(phases, clusters int, hotShare float64) [][]float64 {
	out := make([][]float64, phases)
	perPhase := clusters / phases
	if perPhase < 1 {
		perPhase = 1
	}
	for p := range out {
		w := make([]float64, clusters)
		for c := range w {
			w[c] = (1 - hotShare) / float64(clusters)
		}
		for j := 0; j < perPhase; j++ {
			w[(p*perPhase+j)%clusters] += hotShare / float64(perPhase)
		}
		out[p] = w
	}
	return out
}

// uniformWeights gives every cluster equal stationary activity.
func uniformWeights(phases, clusters int) [][]float64 {
	out := make([][]float64, phases)
	for p := range out {
		w := make([]float64, clusters)
		for c := range w {
			w[c] = 1
		}
		out[p] = w
	}
	return out
}

// Parsec models a PARSEC-style shared-memory HPC run: a compact set of hot
// regions (shared structures per pipeline stage) that phase activity walks
// over, with a light strided scan (data loading). The Fig. 6 target is a
// low LRU miss rate (~1.5%) where GMM's smart eviction protects the hot
// regions from scan pollution.
type Parsec struct{ cfg mixConfig }

// NewParsec returns the default parsec configuration.
func NewParsec() *Parsec {
	total := uint64(1 << 16) // 256 MiB footprint
	return &Parsec{cfg: mixConfig{
		name:         "parsec",
		totalPages:   total,
		clusters:     spreadClusters(6, total/3, 540), // hot regions in the low third
		phaseWeights: rotatingWeights(3, 6, 0.35),
		phaseLen:     60000,
		tailFrac:     0.002,
		scanFrac:     0.002,
		scanStride:   3,
		burstEvery:   120000,
		burstLen:     1024,
		pageRepeat:   4,
		writeFrac:    0.25,
	}}
}

// Name implements Generator.
func (p *Parsec) Name() string { return "parsec" }

// Generate implements Generator.
func (p *Parsec) Generate(n int, seed int64) trace.Trace { return p.cfg.generate(n, seed) }

// Memtier models a memtier_benchmark-driven key-value store: most traffic
// on popular key clusters, a Zipf long tail over the keyspace, and expiry
// sweeps.
type Memtier struct{ cfg mixConfig }

// NewMemtier returns the default memtier configuration.
func NewMemtier() *Memtier {
	total := uint64(1 << 17) // 512 MiB keyspace
	return &Memtier{cfg: mixConfig{
		name:         "memtier",
		totalPages:   total,
		clusters:     spreadClusters(8, total/6, 560),
		phaseWeights: rotatingWeights(4, 8, 0.15),
		phaseLen:     70000,
		tailFrac:     0.018,
		scanFrac:     0.004,
		scanStride:   1,
		burstEvery:   100000,
		burstLen:     2048,
		pageRepeat:   2,
		writeFrac:    0.1,
	}}
}

// Name implements Generator.
func (m *Memtier) Name() string { return "memtier" }

// Generate implements Generator.
func (m *Memtier) Generate(n int, seed int64) trace.Trace { return m.cfg.generate(n, seed) }

// Hashmap models the synthetic hashmap benchmark of the CXL-SSD study:
// bucket lookups concentrated on hash-chain islands plus uniform probe
// noise and occasional rehash bursts sweeping the table.
type Hashmap struct{ cfg mixConfig }

// NewHashmap returns the default hashmap configuration.
func NewHashmap() *Hashmap {
	total := uint64(1 << 16) // 256 MiB table
	return &Hashmap{cfg: mixConfig{
		name:         "hashmap",
		totalPages:   total,
		clusters:     spreadClusters(8, total/4, 480),
		phaseWeights: uniformWeights(1, 8),
		phaseLen:     1 << 30, // stationary
		tailFrac:     0.010,
		scanFrac:     0.002,
		scanStride:   1,
		burstEvery:   110000,
		burstLen:     2048,
		pageRepeat:   2,
		writeFrac:    0.3,
	}}
}

// Name implements Generator.
func (h *Hashmap) Name() string { return "hashmap" }

// Generate implements Generator.
func (h *Hashmap) Generate(n int, seed int64) trace.Trace { return h.cfg.generate(n, seed) }

// Heap models the synthetic heap benchmark: allocator generations at fixed
// arena offsets whose activity rotates with allocation phases, plus GC-style
// mark sweeps over the arena.
type Heap struct{ cfg mixConfig }

// NewHeap returns the default heap configuration.
func NewHeap() *Heap {
	total := uint64(1 << 16) // 256 MiB arena
	return &Heap{cfg: mixConfig{
		name:         "heap",
		totalPages:   total,
		clusters:     spreadClusters(6, total/3, 560),
		phaseWeights: rotatingWeights(3, 6, 0.3),
		phaseLen:     80000,
		tailFrac:     0.004,
		scanFrac:     0.003,
		scanStride:   2,
		burstEvery:   130000,
		burstLen:     1536,
		pageRepeat:   3,
		writeFrac:    0.35,
	}}
}

// Name implements Generator.
func (h *Heap) Name() string { return "heap" }

// Generate implements Generator.
func (h *Heap) Generate(n int, seed int64) trace.Trace { return h.cfg.generate(n, seed) }

// Sysbench models sysbench OLTP: hot B-tree index clusters, a Zipf row
// tail over a large table, and reporting-query scans.
type Sysbench struct{ cfg mixConfig }

// NewSysbench returns the default sysbench configuration.
func NewSysbench() *Sysbench {
	total := uint64(1 << 17) // 512 MiB of rows + index
	return &Sysbench{cfg: mixConfig{
		name:         "sysbench",
		totalPages:   total,
		clusters:     spreadClusters(6, total/8, 640),
		phaseWeights: rotatingWeights(3, 6, 0.3),
		phaseLen:     90000,
		tailFrac:     0.025,
		scanFrac:     0.005,
		scanStride:   1,
		burstEvery:   90000,
		burstLen:     3072,
		pageRepeat:   2,
		writeFrac:    0.3,
	}}
}

// Name implements Generator.
func (s *Sysbench) Name() string { return "sysbench" }

// Generate implements Generator.
func (s *Sysbench) Generate(n int, seed int64) trace.Trace { return s.cfg.generate(n, seed) }

// Stream models the STREAM triad kernel: hot control/reduction pages plus
// long sequential sweeps over three arrays larger than the cache. The
// sweeps give the high baseline miss rate (~13% under LRU in Fig. 6); the
// GMM wins by refusing to let one-pass array pages displace the control
// set.
type Stream struct{ cfg mixConfig }

// NewStream returns the default stream configuration.
func NewStream() *Stream {
	total := uint64(56 << 10) // 224 MiB: control region + three arrays
	return &Stream{cfg: mixConfig{
		name:       "stream",
		totalPages: total,
		// Control region: accumulators, loop state, lookup tables.
		clusters:     []cluster{{center: 8192, spread: 2600}},
		phaseWeights: uniformWeights(1, 1),
		phaseLen:     1 << 30,
		tailFrac:     0,
		scanFrac:     0,
		scanStride:   1,
		burstEvery:   40, // the triad sweeps: 4 one-touch pages every 40 requests
		burstLen:     4,
		pageRepeat:   3,
		writeFrac:    0.3,
	}}
}

// Name implements Generator.
func (s *Stream) Name() string { return "stream" }

// Generate implements Generator.
func (s *Stream) Generate(n int, seed int64) trace.Trace { return s.cfg.generate(n, seed) }

// DLRM models recommendation-inference embedding gathers: per-table popular
// rows (stationary clusters, intensity shifting with traffic mix) over a
// footprint far larger than the cache, plus a heavy Zipf tail of cold rows
// — the structure behind dlrm's ~37% LRU miss rate in Fig. 6.
type DLRM struct{ cfg mixConfig }

// NewDLRM returns the default dlrm configuration.
func NewDLRM() *DLRM {
	total := uint64(1 << 18) // 1 GiB of embedding tables
	return &DLRM{cfg: mixConfig{
		name:         "dlrm",
		totalPages:   total,
		clusters:     spreadClusters(8, total, 750),
		phaseWeights: rotatingWeights(2, 8, 0.2),
		phaseLen:     100000,
		tailFrac:     0.10, // the long tail of one-shot rows
		scanFrac:     0,
		scanStride:   1,
		pageRepeat:   1,
		writeFrac:    0.02,
	}}
}

// Name implements Generator.
func (d *DLRM) Name() string { return "dlrm" }

// Generate implements Generator.
func (d *DLRM) Generate(n int, seed int64) trace.Trace { return d.cfg.generate(n, seed) }
