package workload

import (
	"errors"

	"repro/internal/trace"
)

// Custom lets library users compose their own benchmark from the same
// building blocks the seven paper workloads use: stationary Gaussian
// clusters with per-phase activity, a uniform or Zipf tail, steady scans
// and periodic scan bursts. It is the public face of the internal mixture
// machine.
type Custom struct {
	cfg mixConfig
}

// CustomConfig describes a custom workload.
type CustomConfig struct {
	// Name labels the generator in reports.
	Name string
	// TotalPages is the footprint in 4 KiB pages.
	TotalPages uint64
	// Clusters are the stationary hot blobs: (center page, spread) pairs.
	Clusters []ClusterSpec
	// PhaseWeights[p][c] is cluster c's relative activity in phase p; nil
	// means one stationary phase with equal weights.
	PhaseWeights [][]float64
	// PhaseLen is the phase length in requests.
	PhaseLen int
	// TailFrac of requests go to the tail; TailZipfS > 0 makes it Zipf.
	TailFrac  float64
	TailZipfS float64
	// ScanFrac of requests advance a strided sweep.
	ScanFrac   float64
	ScanStride uint64
	// BurstEvery/BurstLen insert periodic sequential scan bursts.
	BurstEvery, BurstLen int
	// PageRepeat issues consecutive requests per chosen page.
	PageRepeat int
	// WriteFrac of requests are stores.
	WriteFrac float64
}

// ClusterSpec is one Gaussian hot region.
type ClusterSpec struct {
	CenterPage uint64
	Spread     float64
}

// NewCustom validates the config and builds the generator.
func NewCustom(cfg CustomConfig) (*Custom, error) {
	if cfg.Name == "" {
		return nil, errors.New("workload: custom generator needs a name")
	}
	if cfg.TotalPages == 0 {
		return nil, errors.New("workload: zero footprint")
	}
	if len(cfg.Clusters) == 0 && cfg.TailFrac+cfg.ScanFrac <= 0 && cfg.BurstEvery <= 0 {
		return nil, errors.New("workload: no traffic sources configured")
	}
	if cfg.TailFrac < 0 || cfg.ScanFrac < 0 || cfg.TailFrac+cfg.ScanFrac > 1 {
		return nil, errors.New("workload: invalid traffic fractions")
	}
	if cfg.WriteFrac < 0 || cfg.WriteFrac > 1 {
		return nil, errors.New("workload: invalid write fraction")
	}
	clusters := make([]cluster, len(cfg.Clusters))
	for i, c := range cfg.Clusters {
		if c.CenterPage >= cfg.TotalPages {
			return nil, errors.New("workload: cluster center outside footprint")
		}
		clusters[i] = cluster{center: c.CenterPage, spread: c.Spread}
	}
	// Some cluster must exist for the phase machinery; synthesize a
	// degenerate one when the workload is pure tail/scan.
	if len(clusters) == 0 {
		clusters = []cluster{{center: 0, spread: 1}}
	}
	weights := cfg.PhaseWeights
	if len(weights) == 0 {
		weights = uniformWeights(1, len(clusters))
	}
	for p, row := range weights {
		if len(row) != len(clusters) {
			return nil, errors.New("workload: phase weight row length mismatch")
		}
		sum := 0.0
		for _, w := range row {
			if w < 0 {
				return nil, errors.New("workload: negative phase weight")
			}
			sum += w
		}
		if sum <= 0 {
			return nil, errors.New("workload: phase has zero total weight")
		}
		_ = p
	}
	phaseLen := cfg.PhaseLen
	if phaseLen <= 0 {
		phaseLen = 1 << 30
	}
	stride := cfg.ScanStride
	if stride == 0 {
		stride = 1
	}
	repeat := cfg.PageRepeat
	if repeat <= 0 {
		repeat = 1
	}
	return &Custom{cfg: mixConfig{
		name:         cfg.Name,
		totalPages:   cfg.TotalPages,
		clusters:     clusters,
		phaseWeights: weights,
		phaseLen:     phaseLen,
		tailFrac:     cfg.TailFrac,
		tailZipfS:    cfg.TailZipfS,
		scanFrac:     cfg.ScanFrac,
		scanStride:   stride,
		burstEvery:   cfg.BurstEvery,
		burstLen:     cfg.BurstLen,
		pageRepeat:   repeat,
		writeFrac:    cfg.WriteFrac,
	}}, nil
}

// Name implements Generator.
func (c *Custom) Name() string { return c.cfg.name }

// Generate implements Generator.
func (c *Custom) Generate(n int, seed int64) trace.Trace { return c.cfg.generate(n, seed) }
