// Package workload synthesizes the seven trace benchmarks the paper
// evaluates on (Sec. 5.1): dlrm, parsec, stream, memtier, sysbench from
// real-world domains, plus the synthetic hashmap and heap workloads of the
// CXL-SSD study the paper builds on.
//
// The original traces were collected from live applications with a kernel
// tracing tool; that tooling and those applications are not available here,
// so each generator reproduces the published qualitative structure instead:
// spatial access frequency that is a mixture of Gaussian clusters, and
// temporal phase behaviour where different address regions are hot at
// different times (the two Fig. 2 observations that motivate a 2-D GMM).
// All generators are deterministic given a seed.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/trace"
)

// Generator produces a synthetic memory-access trace.
type Generator interface {
	// Name is the benchmark name as it appears in the paper's tables.
	Name() string
	// Generate produces n records using the given seed.
	Generate(n int, seed int64) trace.Trace
}

// Registry returns all seven paper benchmarks in the order the paper's
// Table 1 lists them.
func Registry() []Generator {
	return []Generator{
		NewParsec(),
		NewMemtier(),
		NewHashmap(),
		NewHeap(),
		NewSysbench(),
		NewStream(),
		NewDLRM(),
	}
}

// ByName returns the named generator, or an error listing valid names.
func ByName(name string) (Generator, error) {
	for _, g := range Registry() {
		if g.Name() == name {
			return g, nil
		}
	}
	names := make([]string, 0, 7)
	for _, g := range Registry() {
		names = append(names, g.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("workload: unknown benchmark %q (valid: %v)", name, names)
}

// pageRecord builds a record touching the given page with a random offset
// inside it, mimicking host 64 B cacheline-granularity requests landing in a
// 4 KiB page.
func pageRecord(rng *rand.Rand, page uint64, write bool) trace.Record {
	op := trace.Read
	if write {
		op = trace.Write
	}
	offset := uint64(rng.Intn(trace.PageSize/64)) * 64
	return trace.Record{Op: op, Addr: page<<trace.PageShift | offset}
}

// cluster is a Gaussian blob of pages: the spatial building block behind the
// Fig. 2 distributions.
type cluster struct {
	center uint64  // center page index
	spread float64 // standard deviation in pages
}

// sample draws a page from the cluster, clamped to [0, maxPage].
func (c cluster) sample(rng *rand.Rand, maxPage uint64) uint64 {
	p := float64(c.center) + rng.NormFloat64()*c.spread
	if p < 0 {
		p = 0
	}
	if p > float64(maxPage) {
		p = float64(maxPage)
	}
	return uint64(p)
}

// zipfPages draws from a Zipf distribution over [base, base+span) with the
// given skew (s > 1). Rank-to-page mapping is scrambled by a fixed
// multiplicative hash so the hot pages are spread through the region rather
// than packed at its start, as in a real key-value store.
type zipfPages struct {
	base, span uint64
	z          *rand.Zipf
	scramble   bool
}

func newZipfPages(rng *rand.Rand, base, span uint64, s float64, scramble bool) *zipfPages {
	if span == 0 {
		span = 1
	}
	return &zipfPages{
		base:     base,
		span:     span,
		z:        rand.NewZipf(rng, s, 1, span-1),
		scramble: scramble,
	}
}

func (zp *zipfPages) sample() uint64 {
	rank := zp.z.Uint64()
	if zp.scramble {
		// Fibonacci-hash permutation of ranks within the span.
		rank = (rank * 11400714819323198485) % zp.span
	}
	return zp.base + rank
}

// phaseSchedule rotates through phases of fixed length, giving traces the
// temporal block structure visible in the right-hand plots of Fig. 2.
type phaseSchedule struct {
	length int
	count  int
	pos    int
	cur    int
}

func newPhaseSchedule(length, count int) *phaseSchedule {
	if length <= 0 {
		length = 1
	}
	if count <= 0 {
		count = 1
	}
	return &phaseSchedule{length: length, count: count}
}

// next advances one request and returns the current phase index.
func (ps *phaseSchedule) next() int {
	phase := ps.cur
	ps.pos++
	if ps.pos >= ps.length {
		ps.pos = 0
		ps.cur = (ps.cur + 1) % ps.count
	}
	return phase
}
