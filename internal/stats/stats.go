// Package stats provides the measurement substrate shared by the ICGMM
// simulator: counters, latency accumulators, histograms with percentile
// queries, and renderers that print results in the same row/series formats
// as the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio is a hit/total style ratio tracker.
type Ratio struct {
	Hits, Total uint64
}

// Observe records one event, hit or not.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Rate returns hits/total, or 0 when nothing was observed.
func (r *Ratio) Rate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// MissRate returns 1 - Rate() when anything was observed, otherwise 0.
func (r *Ratio) MissRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return 1 - r.Rate()
}

// LatencyAccumulator tracks a running sum/count/min/max of latencies in
// nanoseconds. It is the cheap always-on companion to Histogram.
type LatencyAccumulator struct {
	sum   int64
	count int64
	min   int64
	max   int64
}

// Observe records one latency sample.
func (a *LatencyAccumulator) Observe(ns int64) {
	if a.count == 0 || ns < a.min {
		a.min = ns
	}
	if ns > a.max {
		a.max = ns
	}
	a.sum += ns
	a.count++
}

// ObserveDuration records one latency sample from a time.Duration.
func (a *LatencyAccumulator) ObserveDuration(d time.Duration) {
	a.Observe(d.Nanoseconds())
}

// Count returns the number of samples.
func (a *LatencyAccumulator) Count() int64 { return a.count }

// Sum returns the total of all samples in nanoseconds.
func (a *LatencyAccumulator) Sum() int64 { return a.sum }

// Mean returns the average sample in nanoseconds, or 0 with no samples.
func (a *LatencyAccumulator) Mean() float64 {
	if a.count == 0 {
		return 0
	}
	return float64(a.sum) / float64(a.count)
}

// MeanDuration returns the mean as a time.Duration.
func (a *LatencyAccumulator) MeanDuration() time.Duration {
	return time.Duration(a.Mean())
}

// Min returns the smallest sample, or 0 with no samples.
func (a *LatencyAccumulator) Min() int64 { return a.min }

// Max returns the largest sample, or 0 with no samples.
func (a *LatencyAccumulator) Max() int64 { return a.max }

// Histogram is a log-bucketed latency histogram. Buckets grow geometrically
// from Base by Growth per bucket, which keeps memory constant regardless of
// the latency range (nanoseconds to seconds).
type Histogram struct {
	base    float64
	growth  float64
	buckets []uint64
	under   uint64 // samples below base
	acc     LatencyAccumulator
	samples []int64 // raw retention for exact percentiles, bounded
	maxKeep int
}

// NewHistogram creates a histogram with the given base (smallest bucketed
// value, ns), per-bucket growth factor (>1) and bucket count.
func NewHistogram(base float64, growth float64, nbuckets int) *Histogram {
	if base <= 0 {
		base = 1
	}
	if growth <= 1 {
		growth = 2
	}
	if nbuckets <= 0 {
		nbuckets = 64
	}
	return &Histogram{
		base:    base,
		growth:  growth,
		buckets: make([]uint64, nbuckets),
		maxKeep: 1 << 16,
	}
}

// DefaultLatencyHistogram covers 100 ns .. ~1 s with ~7% resolution.
func DefaultLatencyHistogram() *Histogram {
	return NewHistogram(100, 1.07, 240)
}

// Observe records one sample in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	h.acc.Observe(ns)
	if len(h.samples) < h.maxKeep {
		h.samples = append(h.samples, ns)
	}
	v := float64(ns)
	if v < h.base {
		h.under++
		return
	}
	idx := int(math.Log(v/h.base) / math.Log(h.growth))
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
}

// Merge folds other into h. Both histograms must share bucket geometry
// (base, growth, bucket count); Merge panics otherwise, since silently mixing
// geometries would corrupt every percentile afterwards. The accumulator merge
// is exact (integer sums and counts); retained raw samples are appended up to
// h's retention cap, so merged percentiles carry the same reservoir caveat as
// Observe — and a caller folding many histograms into one should first
// SetRetention(sources * per-source cap) on the destination, otherwise the
// cap fills from the first sources and later ones stop contributing to
// percentiles. Merging per-shard histograms in a fixed order yields
// deterministic aggregate summaries — the property the serving subsystem's
// determinism contract leans on.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.acc.count == 0 {
		return
	}
	if h.base != other.base || h.growth != other.growth || len(h.buckets) != len(other.buckets) {
		panic("stats: merging histograms with different geometry")
	}
	if h.acc.count == 0 || other.acc.min < h.acc.min {
		h.acc.min = other.acc.min
	}
	if other.acc.max > h.acc.max {
		h.acc.max = other.acc.max
	}
	h.acc.sum += other.acc.sum
	h.acc.count += other.acc.count
	h.under += other.under
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	if room := h.maxKeep - len(h.samples); room > 0 {
		take := other.samples
		if len(take) > room {
			take = take[:room]
		}
		h.samples = append(h.samples, take...)
	}
}

// SetRetention raises the raw-sample retention cap (default 65536). Call it
// on a fresh histogram before observing or merging; it never drops samples
// already retained.
func (h *Histogram) SetRetention(n int) {
	if n > h.maxKeep {
		h.maxKeep = n
	}
}

// Reset empties the histogram while keeping its geometry, retention cap and
// retained-sample capacity, so interval accumulators (the adaptive
// controller's per-control-window histograms) can be reused without
// reallocating.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.under = 0
	h.acc = LatencyAccumulator{}
	h.samples = h.samples[:0]
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 { return h.acc.Count() }

// Sum returns the exact total of all observed samples in nanoseconds — an
// O(1) accessor for callers that need aggregate means without the
// percentile-sorting cost of Summarize.
func (h *Histogram) Sum() int64 { return h.acc.Sum() }

// Mean returns the mean of observed samples in nanoseconds.
func (h *Histogram) Mean() float64 { return h.acc.Mean() }

// Percentile returns the p-th percentile of the retained raw samples, with
// linear interpolation between ranks. The edges are pinned: an empty
// histogram returns 0, p <= 0 returns the minimum retained sample, p >= 100
// the maximum, and a NaN p returns 0 (it is a caller bug, but an
// unanswerable query must not panic the metrics path). Percentiles are exact
// while the sample count is at or below the retention cap and an
// approximation from the retained prefix beyond it (Count keeps the true
// total either way).
func (h *Histogram) Percentile(p float64) int64 {
	if len(h.samples) == 0 || math.IsNaN(p) {
		return 0
	}
	s := make([]int64, len(h.samples))
	copy(s, h.samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return int64(float64(s[lo])*(1-frac) + float64(s[hi])*frac)
}

// BucketBounds returns the lower bound of bucket i in nanoseconds.
func (h *Histogram) BucketBounds(i int) float64 {
	return h.base * math.Pow(h.growth, float64(i))
}

// NonEmptyBuckets returns (lowerBoundNs, count) pairs for buckets with data.
func (h *Histogram) NonEmptyBuckets() []BucketCount {
	var out []BucketCount
	if h.under > 0 {
		out = append(out, BucketCount{Lower: 0, Count: h.under})
	}
	for i, c := range h.buckets {
		if c > 0 {
			out = append(out, BucketCount{Lower: h.BucketBounds(i), Count: c})
		}
	}
	return out
}

// BucketCount is one (lower bound, count) histogram entry.
type BucketCount struct {
	Lower float64
	Count uint64
}

// Summary is a compact snapshot of a latency distribution.
type Summary struct {
	Count      int64
	Mean       time.Duration
	Min, Max   time.Duration
	P50, P99   time.Duration
	SumNanosec int64
}

// Summarize extracts a Summary from the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:      h.acc.Count(),
		Mean:       time.Duration(h.acc.Mean()),
		Min:        time.Duration(h.acc.Min()),
		Max:        time.Duration(h.acc.Max()),
		P50:        time.Duration(h.Percentile(50)),
		P99:        time.Duration(h.Percentile(99)),
		SumNanosec: h.acc.Sum(),
	}
}

// String renders the summary on a single line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v p50=%v p99=%v max=%v",
		s.Count, s.Mean, s.Min, s.P50, s.P99, s.Max)
}
