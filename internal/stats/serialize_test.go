package stats

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// TestHistogramStateRoundTrip: State/RestoreState must reproduce the
// histogram exactly — counts, accumulator, retained samples in order — and
// survive a JSON round trip, since the serving checkpoint ships the state
// as JSON.
func TestHistogramStateRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	h := DefaultLatencyHistogram()
	h.SetRetention(1 << 17)
	for i := 0; i < 5000; i++ {
		h.Observe(int64(rng.ExpFloat64() * 2e5))
	}
	h.Observe(3) // below-base bucket

	data, err := json.Marshal(h.State())
	if err != nil {
		t.Fatal(err)
	}
	var st HistogramState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	restored := DefaultLatencyHistogram()
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.State(), h.State()) {
		t.Fatal("state round trip not exact")
	}
	if restored.Count() != h.Count() || restored.Sum() != h.Sum() {
		t.Errorf("count/sum diverged: %d/%d vs %d/%d", restored.Count(), restored.Sum(), h.Count(), h.Sum())
	}
	for _, p := range []float64{0, 50, 90, 99, 100} {
		if restored.Percentile(p) != h.Percentile(p) {
			t.Errorf("p%.0f diverged after restore", p)
		}
	}
	// The restored histogram continues exactly like the original.
	h.Observe(12345)
	restored.Observe(12345)
	if !reflect.DeepEqual(restored.State(), h.State()) {
		t.Error("restored histogram diverged on the next observation")
	}

	// Invalid states are rejected.
	bad := map[string]HistogramState{
		"zero geometry":       {},
		"over-cap samples":    {Base: 100, Growth: 1.07, NBucket: 4, MaxKeep: 1, Samples: []int64{1, 2}},
		"bucket out of range": {Base: 100, Growth: 1.07, NBucket: 4, MaxKeep: 8, Buckets: map[int]uint64{9: 1}},
	}
	for name, st := range bad {
		if err := DefaultLatencyHistogram().RestoreState(st); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestAccumulatorWelfordStateRoundTrip covers the two scalar accumulators'
// exports.
func TestAccumulatorWelfordStateRoundTrip(t *testing.T) {
	t.Parallel()
	var a LatencyAccumulator
	var w Welford
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*1e4 + 5e4
		a.Observe(int64(v))
		w.Observe(v)
	}
	var a2 LatencyAccumulator
	a2.RestoreState(a.State())
	if a2 != a {
		t.Errorf("accumulator round trip: %+v vs %+v", a2, a)
	}
	var w2 Welford
	w2.RestoreState(w.State())
	if w2 != w {
		t.Errorf("welford round trip: %+v vs %+v", w2, w)
	}
	if w2.Mean() != w.Mean() || w2.Std() != w.Std() {
		t.Error("welford statistics diverged")
	}
}
