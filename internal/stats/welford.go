package stats

import "math"

// Welford accumulates mean and variance in one pass with Welford's online
// algorithm — numerically stable regardless of magnitude. The experiment
// harness uses it to report mean ± std across repeated seeds.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Observe adds one sample.
func (w *Welford) Observe(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of samples.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.Std() / math.Sqrt(float64(w.n))
}
