package stats

import "errors"

// This file is the measurement substrate's checkpoint surface: exact,
// JSON-friendly state exports for the accumulators the serving subsystem
// must carry across a pause/resume boundary. Go's encoding/json emits the
// shortest float64 representation that parses back to the identical bits,
// so every exported float round-trips exactly and a restored accumulator is
// indistinguishable from one that was never serialized — the property the
// byte-identical resume contract leans on.

// AccumulatorState is the full state of a LatencyAccumulator.
type AccumulatorState struct {
	Sum   int64 `json:"sum"`
	Count int64 `json:"count"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// State exports the accumulator.
func (a *LatencyAccumulator) State() AccumulatorState {
	return AccumulatorState{Sum: a.sum, Count: a.count, Min: a.min, Max: a.max}
}

// RestoreState replaces the accumulator's contents with the exported state.
func (a *LatencyAccumulator) RestoreState(s AccumulatorState) {
	a.sum, a.count, a.min, a.max = s.Sum, s.Count, s.Min, s.Max
}

// WelfordState is the full state of a Welford accumulator.
type WelfordState struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// State exports the accumulator.
func (w *Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2}
}

// RestoreState replaces the accumulator's contents with the exported state.
func (w *Welford) RestoreState(s WelfordState) {
	w.n, w.mean, w.m2 = s.N, s.Mean, s.M2
}

// HistogramState is the full state of a Histogram: geometry, bucket counts,
// the exact accumulator, and the retained raw samples in observation order.
// Sample order matters — Merge truncates at the destination's retention cap,
// so two histograms with the same samples in different orders can diverge
// after a capped merge — which is why State preserves it.
type HistogramState struct {
	Base    float64          `json:"base"`
	Growth  float64          `json:"growth"`
	NBucket int              `json:"nbuckets"`
	Buckets map[int]uint64   `json:"buckets,omitempty"` // sparse: only non-zero
	Under   uint64           `json:"under,omitempty"`
	Acc     AccumulatorState `json:"acc"`
	Samples []int64          `json:"samples,omitempty"`
	MaxKeep int              `json:"max_keep"`
}

// State exports the histogram. Bucket counts are stored sparsely (most of a
// latency histogram's 240 buckets are empty), samples verbatim.
func (h *Histogram) State() HistogramState {
	s := HistogramState{
		Base:    h.base,
		Growth:  h.growth,
		NBucket: len(h.buckets),
		Under:   h.under,
		Acc:     h.acc.State(),
		MaxKeep: h.maxKeep,
	}
	for i, c := range h.buckets {
		if c > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]uint64)
			}
			s.Buckets[i] = c
		}
	}
	if len(h.samples) > 0 {
		s.Samples = append([]int64(nil), h.samples...)
	}
	return s
}

// RestoreState replaces the histogram's entire contents — geometry included —
// with the exported state.
func (h *Histogram) RestoreState(s HistogramState) error {
	if s.Base <= 0 || s.Growth <= 1 || s.NBucket <= 0 {
		return errors.New("stats: histogram state with invalid geometry")
	}
	if len(s.Samples) > s.MaxKeep {
		return errors.New("stats: histogram state retains more samples than its cap")
	}
	h.base, h.growth = s.Base, s.Growth
	h.buckets = make([]uint64, s.NBucket)
	for i, c := range s.Buckets {
		if i < 0 || i >= s.NBucket {
			return errors.New("stats: histogram state bucket index out of range")
		}
		h.buckets[i] = c
	}
	h.under = s.Under
	h.acc.RestoreState(s.Acc)
	h.samples = append(h.samples[:0], s.Samples...)
	h.maxKeep = s.MaxKeep
	return nil
}
