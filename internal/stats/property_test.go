package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestHistogramMergePropertyRandom is the randomized merge contract: over
// 1000 random partitionings and merge orders, folding per-shard histograms
// into an aggregate is order-independent and exactly Sum/Count-preserving —
// the property the serving subsystem's deterministic partition-order merges
// and the controller's interval measurements both lean on. (Retention is
// sized to hold every sample, so percentile queries — which sort internally
// — must also be permutation-invariant.)
func TestHistogramMergePropertyRandom(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 1000; iter++ {
		nParts := 1 + rng.Intn(6)
		samples := make([][]int64, nParts)
		var all []int64
		var wantSum int64
		total := 0
		for p := range samples {
			n := rng.Intn(200)
			samples[p] = make([]int64, n)
			for i := range samples[p] {
				// Cover the under-base bucket (base 100) through the
				// overflow bucket.
				v := int64(rng.Intn(1 << uint(2+rng.Intn(30))))
				samples[p][i] = v
				all = append(all, v)
				wantSum += v
			}
			total += n
		}

		build := func(order []int) *Histogram {
			agg := DefaultLatencyHistogram()
			agg.SetRetention(total + 1)
			for _, p := range order {
				h := DefaultLatencyHistogram()
				for _, v := range samples[p] {
					h.Observe(v)
				}
				agg.Merge(h)
			}
			return agg
		}

		fwd := make([]int, nParts)
		for i := range fwd {
			fwd[i] = i
		}
		shuffled := append([]int(nil), fwd...)
		rng.Shuffle(nParts, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		a, b := build(fwd), build(shuffled)
		if a.Count() != int64(total) || b.Count() != int64(total) {
			t.Fatalf("iter %d: count %d/%d, want %d", iter, a.Count(), b.Count(), total)
		}
		if a.Sum() != wantSum || b.Sum() != wantSum {
			t.Fatalf("iter %d: sum %d/%d, want %d (merge must be exactly sum-preserving)", iter, a.Sum(), b.Sum(), wantSum)
		}
		if total > 0 {
			if a.acc.Min() != b.acc.Min() || a.acc.Max() != b.acc.Max() {
				t.Fatalf("iter %d: min/max differ across merge orders", iter)
			}
		}
		if a.under != b.under {
			t.Fatalf("iter %d: under-base counts differ: %d vs %d", iter, a.under, b.under)
		}
		for i := range a.buckets {
			if a.buckets[i] != b.buckets[i] {
				t.Fatalf("iter %d: bucket %d differs: %d vs %d", iter, i, a.buckets[i], b.buckets[i])
			}
		}
		// Percentile queries cover the full edge surface: the p<=0 and
		// p>=100 pins, interpolated interior quantiles, and out-of-range
		// values — all must be permutation-invariant, including on the
		// iterations where some (or all) partitions are empty and the merge
		// degenerates to empty+nonempty or empty+empty.
		for _, p := range []float64{0, -1, 1, 50, 90, 99, 100, 101} {
			if a.Percentile(p) != b.Percentile(p) {
				t.Fatalf("iter %d: p%v differs across merge orders: %d vs %d",
					iter, p, a.Percentile(p), b.Percentile(p))
			}
		}
		if a.Percentile(math.NaN()) != 0 || b.Percentile(math.NaN()) != 0 {
			t.Fatalf("iter %d: Percentile(NaN) must be 0", iter)
		}
	}
}

// TestHistogramMergeMatchesDirectObserve: merging shards equals observing
// the concatenated stream directly (counts, sums, buckets), for any split.
func TestHistogramMergeMatchesDirectObserve(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 1000; iter++ {
		n := rng.Intn(300)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(1 << 28))
		}
		direct := DefaultLatencyHistogram()
		direct.SetRetention(n + 1)
		for _, v := range vals {
			direct.Observe(v)
		}
		merged := DefaultLatencyHistogram()
		merged.SetRetention(n + 1)
		for lo := 0; lo < n; {
			hi := lo + 1 + rng.Intn(n-lo)
			h := DefaultLatencyHistogram()
			for _, v := range vals[lo:hi] {
				h.Observe(v)
			}
			merged.Merge(h)
			lo = hi
		}
		if direct.Count() != merged.Count() || direct.Sum() != merged.Sum() {
			t.Fatalf("iter %d: merged (n=%d,sum=%d) != direct (n=%d,sum=%d)",
				iter, merged.Count(), merged.Sum(), direct.Count(), direct.Sum())
		}
		for i := range direct.buckets {
			if direct.buckets[i] != merged.buckets[i] {
				t.Fatalf("iter %d: bucket %d differs", iter, i)
			}
		}
	}
}

func TestHistogramReset(t *testing.T) {
	t.Parallel()
	h := DefaultLatencyHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 100)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Percentile(99) != 0 {
		t.Fatalf("reset left state: count=%d sum=%d", h.Count(), h.Sum())
	}
	for i, c := range h.buckets {
		if c != 0 {
			t.Fatalf("reset left bucket %d = %d", i, c)
		}
	}
	h.Observe(500)
	if h.Count() != 1 || h.Sum() != 500 {
		t.Fatal("histogram unusable after reset")
	}
}
