package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them as aligned text or CSV. The
// experiment harness uses it to print the same rows the paper's tables
// report.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowStrings appends one pre-formatted row.
func (t *Table) AddRowStrings(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values, headers first.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named (x, y) sequence, the unit the figure-regeneration
// harness emits (one Series per curve in a paper figure).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// CSV renders the series as "x,y" lines with a header naming the series.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x,%s\n", s.Name)
	for i := range s.X {
		fmt.Fprintf(&b, "%g,%g\n", s.X[i], s.Y[i])
	}
	return b.String()
}
