package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Inc()
	c.Add(3)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("Value after Reset = %d, want 0", c.Value())
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Rate() != 0 || r.MissRate() != 0 {
		t.Error("empty ratio should report 0")
	}
	for i := 0; i < 10; i++ {
		r.Observe(i < 7)
	}
	if r.Rate() != 0.7 {
		t.Errorf("Rate = %v, want 0.7", r.Rate())
	}
	if got := r.MissRate(); got < 0.2999 || got > 0.3001 {
		t.Errorf("MissRate = %v, want 0.3", got)
	}
}

func TestLatencyAccumulator(t *testing.T) {
	var a LatencyAccumulator
	for _, ns := range []int64{10, 20, 30} {
		a.Observe(ns)
	}
	if a.Count() != 3 || a.Sum() != 60 {
		t.Errorf("Count=%d Sum=%d", a.Count(), a.Sum())
	}
	if a.Mean() != 20 {
		t.Errorf("Mean = %v, want 20", a.Mean())
	}
	if a.Min() != 10 || a.Max() != 30 {
		t.Errorf("Min=%d Max=%d", a.Min(), a.Max())
	}
	a.ObserveDuration(100 * time.Nanosecond)
	if a.Count() != 4 || a.Max() != 100 {
		t.Error("ObserveDuration not recorded")
	}
}

func TestLatencyAccumulatorFirstSampleIsMin(t *testing.T) {
	var a LatencyAccumulator
	a.Observe(50)
	if a.Min() != 50 || a.Max() != 50 {
		t.Errorf("single sample Min=%d Max=%d, want 50/50", a.Min(), a.Max())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := DefaultLatencyHistogram()
	// 1..1000 ns uniformly.
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}
	p50 := h.Percentile(50)
	if p50 < 480_000 || p50 > 520_000 {
		t.Errorf("P50 = %d, want ~500000", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 980_000 || p99 > 1_000_000 {
		t.Errorf("P99 = %d, want ~990000", p99)
	}
	if h.Percentile(0) != 1000 {
		t.Errorf("P0 = %d, want 1000", h.Percentile(0))
	}
	if h.Percentile(100) != 1_000_000 {
		t.Errorf("P100 = %d, want 1000000", h.Percentile(100))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := DefaultLatencyHistogram()
	if h.Percentile(50) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	s := h.Summarize()
	if s.Count != 0 {
		t.Error("empty summary should report 0 count")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(100, 2, 10)
	h.Observe(50)   // under base
	h.Observe(150)  // bucket 0 [100, 200)
	h.Observe(300)  // bucket 1 [200, 400)
	h.Observe(1e12) // clamps to last bucket
	bs := h.NonEmptyBuckets()
	if len(bs) != 4 {
		t.Fatalf("NonEmptyBuckets = %d entries, want 4: %+v", len(bs), bs)
	}
	if bs[0].Lower != 0 || bs[0].Count != 1 {
		t.Errorf("under-bucket = %+v", bs[0])
	}
}

func TestHistogramSummary(t *testing.T) {
	h := DefaultLatencyHistogram()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		h.Observe(1000 + r.Int63n(9000))
	}
	s := h.Summarize()
	if s.Count != 5000 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean < 5*time.Microsecond || s.Mean > 6*time.Microsecond {
		t.Errorf("Mean = %v, want ~5.5us", s.Mean)
	}
	if !strings.Contains(s.String(), "n=5000") {
		t.Errorf("Summary.String = %q", s.String())
	}
}

func TestHistogramDefensiveConstruction(t *testing.T) {
	h := NewHistogram(-5, 0.5, -1)
	h.Observe(10)
	if h.Count() != 1 {
		t.Error("histogram with corrected params should still work")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1", "Benchmark", "LRU", "GMM", "Reduction (%)")
	tb.AddRow("parsec", 3.92, 3.29, 16.23)
	tb.AddRow("memtier", 2.98, 2.09, 29.87)
	out := tb.String()
	for _, want := range []string{"Table 1", "Benchmark", "parsec", "3.92", "29.87"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "Benchmark,LRU,GMM,Reduction (%)\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Errorf("CSV has %d lines, want 3", len(lines))
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`with,comma`, `with"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Errorf("comma not escaped: %q", csv)
	}
	if !strings.Contains(csv, `"with""quote"`) {
		t.Errorf("quote not escaped: %q", csv)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "missrate"
	s.Append(1, 0.5)
	s.Append(2, 0.25)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "x,missrate\n") || !strings.Contains(csv, "2,0.25") {
		t.Errorf("Series CSV = %q", csv)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Std() != 0 || w.StdErr() != 0 {
		t.Error("empty Welford should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d", w.Count())
	}
	if w.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic dataset: 32/7.
	want := 32.0 / 7
	if diff := w.Variance() - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), want)
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset: naive sum-of-squares would lose all precision.
	var w Welford
	const offset = 1e9
	for _, x := range []float64{offset + 1, offset + 2, offset + 3} {
		w.Observe(x)
	}
	if diff := w.Mean() - (offset + 2); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("Mean drifted: %v", w.Mean())
	}
	if diff := w.Variance() - 1; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("Variance = %v, want 1", w.Variance())
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Observe(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Error("single sample stats wrong")
	}
	if w.StdErr() != 0 {
		t.Error("single-sample StdErr should be 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(100, 2, 16)
	b := NewHistogram(100, 2, 16)
	for _, v := range []int64{50, 150, 400} {
		a.Observe(v)
	}
	for _, v := range []int64{25, 1000, 3000} {
		b.Observe(v)
	}
	want := NewHistogram(100, 2, 16)
	for _, v := range []int64{50, 150, 400, 25, 1000, 3000} {
		want.Observe(v)
	}
	a.Merge(b)
	if a.Count() != want.Count() {
		t.Fatalf("count = %d, want %d", a.Count(), want.Count())
	}
	sa, sw := a.Summarize(), want.Summarize()
	if sa != sw {
		t.Fatalf("merged summary %+v != direct summary %+v", sa, sw)
	}
	// Merging an empty histogram is a no-op.
	before := a.Summarize()
	a.Merge(NewHistogram(100, 2, 16))
	a.Merge(nil)
	if a.Summarize() != before {
		t.Fatal("merging empty histogram changed the summary")
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	a := NewHistogram(100, 2, 16)
	b := NewHistogram(100, 2, 16)
	b.Observe(500)
	b.Observe(200)
	a.Merge(b)
	if a.Count() != 2 || a.Summarize().Min != 200 || a.Summarize().Max != 500 {
		t.Fatalf("merge into empty: %+v", a.Summarize())
	}
}

func TestHistogramMergeRetention(t *testing.T) {
	// Without raised retention, a full first source crowds later sources out
	// of the percentile reservoir; SetRetention makes room for all of them.
	big := NewHistogram(100, 2, 16)
	for i := 0; i < 1<<16; i++ {
		big.Observe(100)
	}
	small := NewHistogram(100, 2, 16)
	small.Observe(10_000)

	crowded := NewHistogram(100, 2, 16)
	crowded.Merge(big)
	crowded.Merge(small)
	if got := crowded.Percentile(100); got != 100 {
		t.Fatalf("default retention: max retained sample = %d, expected later source crowded out", got)
	}

	roomy := NewHistogram(100, 2, 16)
	roomy.SetRetention(2 << 16)
	roomy.Merge(big)
	roomy.Merge(small)
	if got := roomy.Percentile(100); got != 10_000 {
		t.Fatalf("raised retention: max retained sample = %d, want 10000", got)
	}
}

func TestHistogramMergeGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("geometry mismatch did not panic")
		}
	}()
	a := NewHistogram(100, 2, 16)
	b := NewHistogram(10, 2, 16)
	b.Observe(500)
	a.Merge(b)
}

// TestHistogramPercentileEdgeCases pins the percentile contract at and
// around its edges: empty histograms, a single sample, the q=1.0 boundary
// and beyond, non-finite quantiles (a NaN p used to panic with an index
// derived from int(NaN)), and merges where one side is empty.
func TestHistogramPercentileEdgeCases(t *testing.T) {
	t.Parallel()
	t.Run("empty", func(t *testing.T) {
		h := DefaultLatencyHistogram()
		for _, p := range []float64{0, 50, 99, 100, 101, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
			if got := h.Percentile(p); got != 0 {
				t.Errorf("empty Percentile(%v) = %d, want 0", p, got)
			}
		}
	})
	t.Run("single sample", func(t *testing.T) {
		h := DefaultLatencyHistogram()
		h.Observe(777)
		for _, p := range []float64{0, 1, 50, 99, 100, 250, -5, math.Inf(1)} {
			if got := h.Percentile(p); got != 777 {
				t.Errorf("single-sample Percentile(%v) = %d, want 777", p, got)
			}
		}
		if got := h.Percentile(math.NaN()); got != 0 {
			t.Errorf("Percentile(NaN) = %d, want 0 (defined, not a panic)", got)
		}
	})
	t.Run("quantile boundaries", func(t *testing.T) {
		h := DefaultLatencyHistogram()
		for i := int64(1); i <= 100; i++ {
			h.Observe(i * 10)
		}
		cases := []struct {
			p    float64
			want int64
		}{
			{0, 10},      // p <= 0 is the minimum
			{-10, 10},    // clamped below
			{100, 1000},  // q = 1.0 is the maximum
			{1000, 1000}, // clamped above
			{math.Inf(1), 1000},
			{math.Inf(-1), 10},
			{50, 505}, // interpolated between ranks 49 and 50 (500, 510)
		}
		for _, c := range cases {
			if got := h.Percentile(c.p); got != c.want {
				t.Errorf("Percentile(%v) = %d, want %d", c.p, got, c.want)
			}
		}
		if got := h.Percentile(math.NaN()); got != 0 {
			t.Errorf("Percentile(NaN) = %d, want 0", got)
		}
	})
	t.Run("merge empty and nonempty", func(t *testing.T) {
		full := DefaultLatencyHistogram()
		for i := int64(1); i <= 10; i++ {
			full.Observe(i * 100)
		}
		// Empty into nonempty: a no-op.
		a := DefaultLatencyHistogram()
		for i := int64(1); i <= 10; i++ {
			a.Observe(i * 100)
		}
		a.Merge(DefaultLatencyHistogram())
		// Nonempty into empty: adopts the source exactly (including min).
		b := DefaultLatencyHistogram()
		b.Merge(full)
		for _, h := range []*Histogram{a, b} {
			if h.Count() != 10 || h.Sum() != 5500 {
				t.Fatalf("count/sum = %d/%d, want 10/5500", h.Count(), h.Sum())
			}
			if h.acc.Min() != 100 || h.acc.Max() != 1000 {
				t.Fatalf("min/max = %d/%d, want 100/1000", h.acc.Min(), h.acc.Max())
			}
			for _, p := range []float64{0, 50, 100} {
				if h.Percentile(p) != full.Percentile(p) {
					t.Fatalf("Percentile(%v) = %d, want %d", p, h.Percentile(p), full.Percentile(p))
				}
			}
		}
		// Empty into empty stays empty.
		c := DefaultLatencyHistogram()
		c.Merge(DefaultLatencyHistogram())
		if c.Count() != 0 || c.Percentile(50) != 0 {
			t.Fatal("empty+empty merge produced samples")
		}
	})
}

// TestHistogramRetentionBoundary pins behavior at and beyond the exact-
// retention cap: percentiles are exact up to maxKeep samples, the cap is hit
// without an off-by-one, and past it Count keeps the true total while
// percentiles answer from the retained prefix.
func TestHistogramRetentionBoundary(t *testing.T) {
	t.Parallel()
	h := NewHistogram(100, 1.07, 240)
	h.maxKeep = 16 // shrink the cap; SetRetention can only raise it
	for i := int64(1); i <= 16; i++ {
		h.Observe(i * 100)
	}
	if len(h.samples) != 16 {
		t.Fatalf("retained %d of 16 samples at the boundary", len(h.samples))
	}
	if got := h.Percentile(100); got != 1600 {
		t.Fatalf("exact p100 at the boundary = %d, want 1600", got)
	}
	// Beyond the cap: counts stay true, retained samples freeze.
	h.Observe(5000)
	h.Observe(6000)
	if h.Count() != 18 || h.acc.Max() != 6000 {
		t.Fatalf("count/max = %d/%d, want 18/6000", h.Count(), h.acc.Max())
	}
	if len(h.samples) != 16 {
		t.Fatalf("retention cap overflowed to %d samples", len(h.samples))
	}
	if got := h.Percentile(100); got != 1600 {
		t.Fatalf("p100 beyond the cap = %d, want 1600 (answered from the retained prefix)", got)
	}
	if got := h.Summarize().Max; got != 6000*time.Nanosecond {
		t.Fatalf("Summary.Max = %v, want 6us (accumulator, not reservoir)", got)
	}
}
