package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// newTestWorker mounts a Worker on an httptest server and returns a client
// for it.
func newTestWorker(t *testing.T) *Client {
	t.Helper()
	srv := httptest.NewServer(NewWorker())
	t.Cleanup(srv.Close)
	return NewClient(srv.URL)
}

// TestWorkerSessionLifecycle drives one session through the whole protocol
// — open, lockstep steps, auto-close at exhaustion — and checks the
// returned metric bytes reassemble the exact stream an in-process run of
// the same spec writes, periodic checkpoints riding along at their
// boundaries.
func TestWorkerSessionLifecycle(t *testing.T) {
	t.Parallel()
	specJSON := serveSpecJSON(2, 5, 8192) // 8 batches
	c := newTestWorker(t)
	if err := c.Open("s", []byte(specJSON), 3); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Health(time.Second); err != nil || n != 1 {
		t.Fatalf("health = %d, %v", n, err)
	}

	var got bytes.Buffer
	var ckpts []checkpointInfo
	closed := false
	for target := uint64(1); ; target++ {
		resp, err := c.Step("s", target)
		if err != nil {
			t.Fatal(err)
		}
		got.Write(resp.Metrics)
		if resp.Checkpoint != nil {
			ckpts = append(ckpts, *resp.Checkpoint)
		}
		if resp.Done {
			if !resp.Closed {
				t.Fatal("done without closed: finals would be stranded")
			}
			closed = true
			if resp.Batches != 8 {
				t.Fatalf("finished at %d batches, want 8", resp.Batches)
			}
			break
		}
		if resp.Batches != target {
			t.Fatalf("batches = %d after stepping to %d", resp.Batches, target)
		}
	}
	if !closed {
		t.Fatal("never finished")
	}
	// Boundaries 3 and 6 fire the cadence-3 hook (the final boundary 8 ends
	// the run before another multiple of 3).
	if len(ckpts) != 2 || ckpts[0].Batches != 3 || ckpts[1].Batches != 6 {
		t.Fatalf("checkpoints at %+v, want batches 3 and 6", ckpts)
	}

	spec, err := serve.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	sess, err := serve.Open(spec, &want)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("worker metric stream diverges from in-process run (%d vs %d bytes)", got.Len(), want.Len())
	}

	// A checkpoint's Emitted offset must mark exactly the bytes a resume
	// regenerates: resuming the last checkpoint and running to completion
	// must reproduce the stream's tail.
	last := ckpts[len(ckpts)-1]
	var tail bytes.Buffer
	resumed, err := serve.Resume(bytes.NewReader(last.Doc), &tail)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail.Bytes(), want.Bytes()[last.Emitted:]) {
		t.Errorf("resume from worker checkpoint does not regenerate the stream past Emitted=%d", last.Emitted)
	}
}

// TestWorkerMigrationEndpoints covers the checkpoint → resume → detach
// sequence across two workers — a migration driven by hand.
func TestWorkerMigrationEndpoints(t *testing.T) {
	t.Parallel()
	specJSON := serveSpecJSON(1, 7, 6144) // 6 batches
	src, dst := newTestWorker(t), newTestWorker(t)
	if err := src.Open("m", []byte(specJSON), 0); err != nil {
		t.Fatal(err)
	}
	var pre bytes.Buffer
	resp, err := src.Step("m", 3)
	if err != nil {
		t.Fatal(err)
	}
	pre.Write(resp.Metrics)
	info, err := src.Checkpoint("m")
	if err != nil {
		t.Fatal(err)
	}
	if info.Batches != 3 || info.Emitted != uint64(pre.Len()) {
		t.Fatalf("checkpoint batches=%d emitted=%d, want 3/%d", info.Batches, info.Emitted, pre.Len())
	}
	b, err := dst.Resume("m", info.Doc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b != 3 {
		t.Fatalf("resumed at batch %d", b)
	}
	if err := src.Detach("m"); err != nil {
		t.Fatal(err)
	}
	if n, _ := src.Health(time.Second); n != 0 {
		t.Errorf("source still holds %d sessions after detach", n)
	}
	// Finish on the target; concatenated stream must equal an uninterrupted
	// run.
	var post bytes.Buffer
	for target := uint64(4); ; target++ {
		resp, err := dst.Step("m", target)
		if err != nil {
			t.Fatal(err)
		}
		post.Write(resp.Metrics)
		if resp.Done {
			break
		}
	}
	spec, err := serve.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	sess, err := serve.Open(spec, &want)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	concat := append(pre.Bytes(), post.Bytes()...)
	if !bytes.Equal(concat, want.Bytes()) {
		t.Errorf("migrated stream diverges from uninterrupted run (%d vs %d bytes)", len(concat), want.Len())
	}
}

// TestWorkerRejects pins the protocol's error edges: strict request
// decoding with field paths, unknown sessions, duplicate opens, bad
// endpoints and methods.
func TestWorkerRejects(t *testing.T) {
	t.Parallel()
	srv := httptest.NewServer(NewWorker())
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)

	post := func(t *testing.T, endpoint, body string) string {
		t.Helper()
		resp, err := http.Post(srv.URL+"/"+protocolVersion+"/"+endpoint, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s accepted %q", endpoint, body)
		}
		return e.Error
	}

	// Unknown fields are rejected by path, at both the envelope and the
	// embedded serve document.
	if msg := post(t, "step", `{"session": "s", "tagret": 3}`); !strings.Contains(msg, "step.tagret: unknown field") {
		t.Errorf("step typo error = %q", msg)
	}
	if msg := post(t, "open", `{"session": "s", "spec": {"version": 1, "sahre": 1}}`); !strings.Contains(msg, "spec.sahre: unknown field") {
		t.Errorf("open bad-spec error = %q", msg)
	}
	if msg := post(t, "resume", `{"session": "s", "checkpoint": {}, "every": 1}`); !strings.Contains(msg, "resume.every: unknown field") {
		t.Errorf("resume typo error = %q", msg)
	}
	if msg := post(t, "open", `{"spec": {"version": 1}}`); !strings.Contains(msg, "empty session name") {
		t.Errorf("unnamed open error = %q", msg)
	}

	// Session bookkeeping errors.
	if _, err := c.Step("ghost", 1); err == nil || !strings.Contains(err.Error(), `no session "ghost"`) {
		t.Errorf("step unknown session: %v", err)
	}
	if _, err := c.Checkpoint("ghost"); err == nil || !strings.Contains(err.Error(), `no session "ghost"`) {
		t.Errorf("checkpoint unknown session: %v", err)
	}
	if err := c.Detach("ghost"); err == nil || !strings.Contains(err.Error(), `no session "ghost"`) {
		t.Errorf("detach unknown session: %v", err)
	}
	specJSON := serveSpecJSON(1, 9, 2048)
	if err := c.Open("dup", []byte(specJSON), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Open("dup", []byte(specJSON), 0); err == nil || !strings.Contains(err.Error(), "already open") {
		t.Errorf("duplicate open: %v", err)
	}

	// Transport-level edges: wrong method, unknown endpoint, dead worker.
	resp, err := http.Get(srv.URL + "/" + protocolVersion + "/step")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET step = HTTP %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v999/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown version = HTTP %d", resp.StatusCode)
	}
	dead := NewClient("http://127.0.0.1:1")
	var te *TransportError
	if _, err := dead.Step("s", 1); !errors.As(err, &te) {
		t.Errorf("dead worker step error = %v, want TransportError", err)
	}
	if _, err := dead.Health(100 * time.Millisecond); !errors.As(err, &te) {
		t.Errorf("dead worker health error = %v, want TransportError", err)
	}
}

// TestLocalLauncherKill: killing an in-process worker closes its Done
// channel and makes it unreachable — the liveness signals the coordinator's
// death detection is built on.
func TestLocalLauncherKill(t *testing.T) {
	t.Parallel()
	var l LocalLauncher
	t.Cleanup(l.Close)
	h, err := l.Launch("w")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(h.URL)
	if _, err := c.Health(time.Second); err != nil {
		t.Fatalf("fresh worker unhealthy: %v", err)
	}
	if err := h.Kill(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done:
	case <-time.After(5 * time.Second):
		t.Fatal("Done not closed after Kill")
	}
	var te *TransportError
	if _, err := c.Health(time.Second); !errors.As(err, &te) {
		t.Errorf("killed worker health = %v, want TransportError", err)
	}
}
