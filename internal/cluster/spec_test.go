package cluster

import (
	"fmt"
	"strings"
	"testing"
)

// serveSpecJSON renders a fast single-stream serve spec for cluster tests:
// drift + sync refresh keep the checkpointed state interesting, while the
// small warm-up keeps training cheap.
func serveSpecJSON(shards int, seed int64, ops int) string {
	return fmt.Sprintf(`{
	 "version": 1, "shards": %d, "partitions": 4, "ops": %d, "warmup": 16000,
	 "batch": 1024, "report": 4,
	 "cache": {"size_mb": 1, "ways": 8},
	 "train": {"k": 4, "seed": %d, "max_iters": 6, "max_samples": 2000, "lloyd_iters": 2, "shot": 128},
	 "refresh": {"mode": "sync", "window": 4096, "min": 1024,
	  "drift_delta": 0.1, "drift_sustain": 1, "drift_warmup": 4, "drift_alpha": 0.2},
	 "workload": {"custom": {"Name": "ws", "TotalPages": 600,
	   "Clusters": [{"CenterPage": 150, "Spread": 40}, {"CenterPage": 450, "Spread": 30}],
	   "WriteFrac": 0.2}, "seed": %d, "rate": 3000000, "drift": true}
	}`, shards, ops, seed, seed+1)
}

// tenantSpecJSON renders a fast 2-tenant serve spec exercising the QoS
// controller with elastic shares and a mid-run working-set shift — the
// richest checkpointed state the serving path has.
func tenantSpecJSON(shards int) string {
	return fmt.Sprintf(`{
	 "version": 1, "shards": %d, "partitions": 4, "ops": 16384, "warmup": 16000,
	 "batch": 1024, "report": 4,
	 "cache": {"size_mb": 1, "ways": 8},
	 "train": {"k": 4, "max_iters": 6, "max_samples": 2000, "lloyd_iters": 2, "shot": 128},
	 "refresh": {"mode": "sync", "window": 4096, "min": 1024,
	  "drift_delta": 0.10, "drift_sustain": 1, "drift_warmup": 4, "drift_alpha": 0.2},
	 "control": {"every": 2, "step": 1.6, "min_mult": 0.125, "max_mult": 8,
	  "share_adapt": true, "share_quantum": 4, "share_hold": 2, "share_cooldown": 1, "share_floor": 4},
	 "tenants": [
	  {"name": "a",
	   "custom": {"Name": "a-ws", "TotalPages": 300,
	    "Clusters": [{"CenterPage": 80, "Spread": 25}, {"CenterPage": 220, "Spread": 20}],
	    "WriteFrac": 0.2},
	   "seed": 1, "rate": 20000, "share": 0.6,
	   "shift_after": 8192, "shift_offset_pages": 524288,
	   "qos": {"metric": "hit_ratio", "target": 0.7, "band": 0.1}},
	  {"name": "b",
	   "custom": {"Name": "b-ws", "TotalPages": 160,
	    "Clusters": [{"CenterPage": 60, "Spread": 20}], "WriteFrac": 0.3},
	   "seed": 2, "rate": 10000, "offset_pages": 65536, "share": 0.4,
	   "qos": {"metric": "hit_ratio", "target": 0.6, "band": 0.15}}
	 ]
	}`, shards)
}

// clusterSpecJSON assembles a 2-worker, 2-session cluster document with the
// given fault schedule fragment (empty string for none).
func clusterSpecJSON(shards int, faults string) string {
	if faults != "" {
		faults = `, "faults": ` + faults
	}
	return fmt.Sprintf(`{
	 "version": 1, "workers": 2, "checkpoint_every": 4,
	 "sessions": [
	  {"name": "tenants", "spec": %s},
	  {"name": "stream", "spec": %s}
	 ]%s
	}`, tenantSpecJSON(shards), serveSpecJSON(shards, 11, 12288), faults)
}

func TestParseSpecDefaults(t *testing.T) {
	t.Parallel()
	spec, err := ParseSpec([]byte(clusterSpecJSON(1, "")))
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.EffectiveWorkers(); got != 2 {
		t.Errorf("EffectiveWorkers() = %d", got)
	}
	if got := spec.EffectiveCheckpointEvery(); got != 4 {
		t.Errorf("EffectiveCheckpointEvery() = %d", got)
	}

	// Defaults when omitted; explicit 0 for checkpoint_every means off.
	min, err := ParseSpec([]byte(fmt.Sprintf(
		`{"version": 1, "sessions": [{"name": "s", "spec": %s}]}`, serveSpecJSON(1, 3, 4096))))
	if err != nil {
		t.Fatal(err)
	}
	if min.EffectiveWorkers() != 2 || min.EffectiveCheckpointEvery() != defaultCheckpointEvery {
		t.Errorf("defaults: workers=%d every=%d", min.EffectiveWorkers(), min.EffectiveCheckpointEvery())
	}
	off, err := ParseSpec([]byte(fmt.Sprintf(
		`{"version": 1, "checkpoint_every": 0, "sessions": [{"name": "s", "spec": %s}]}`, serveSpecJSON(1, 3, 4096))))
	if err != nil {
		t.Fatal(err)
	}
	if off.EffectiveCheckpointEvery() != 0 {
		t.Errorf("explicit 0 checkpoint_every read back as %d", off.EffectiveCheckpointEvery())
	}
}

// TestParseSpecRejects pins the validation and strict-decode errors,
// including the field paths strict decoding reports.
func TestParseSpecRejects(t *testing.T) {
	t.Parallel()
	ok := serveSpecJSON(1, 3, 4096)
	cases := map[string]struct {
		doc     string
		wantErr string
	}{
		"unknown top-level field": {
			doc:     fmt.Sprintf(`{"version": 1, "workrs": 2, "sessions": [{"name": "s", "spec": %s}]}`, ok),
			wantErr: "cluster.workrs: unknown field",
		},
		"unknown fault field by path": {
			doc: fmt.Sprintf(`{"version": 1, "sessions": [{"name": "s", "spec": %s}],
			 "faults": [{"kind": "kill", "after": 2, "wroker": 1}]}`, ok),
			wantErr: "cluster.faults[0].wroker: unknown field",
		},
		"unknown field inside embedded serve spec": {
			doc:     `{"version": 1, "sessions": [{"name": "s", "spec": {"version": 1, "sahre": 2}}]}`,
			wantErr: "spec.sahre: unknown field",
		},
		"bad version": {
			doc:     fmt.Sprintf(`{"version": 9, "sessions": [{"name": "s", "spec": %s}]}`, ok),
			wantErr: "version 9 not supported",
		},
		"no sessions": {
			doc:     `{"version": 1, "sessions": []}`,
			wantErr: "no sessions",
		},
		"duplicate session name": {
			doc:     fmt.Sprintf(`{"version": 1, "sessions": [{"name": "s", "spec": %s}, {"name": "s", "spec": %s}]}`, ok, ok),
			wantErr: `duplicate session name "s"`,
		},
		"unnamed session": {
			doc:     fmt.Sprintf(`{"version": 1, "sessions": [{"name": "", "spec": %s}]}`, ok),
			wantErr: "session 0 has no name",
		},
		"fault worker out of range": {
			doc: fmt.Sprintf(`{"version": 1, "sessions": [{"name": "s", "spec": %s}],
			 "faults": [{"kind": "kill", "after": 2, "worker": 5}]}`, ok),
			wantErr: "targets worker 5 of 2",
		},
		"migrate unknown session": {
			doc: fmt.Sprintf(`{"version": 1, "sessions": [{"name": "s", "spec": %s}],
			 "faults": [{"kind": "migrate", "after": 2, "session": "ghost", "worker": 1}]}`, ok),
			wantErr: `migrates unknown session "ghost"`,
		},
		"kill with session": {
			doc: fmt.Sprintf(`{"version": 1, "sessions": [{"name": "s", "spec": %s}],
			 "faults": [{"kind": "kill", "after": 2, "session": "s", "worker": 1}]}`, ok),
			wantErr: "kill targets a worker, not a session",
		},
		"unknown fault kind": {
			doc: fmt.Sprintf(`{"version": 1, "sessions": [{"name": "s", "spec": %s}],
			 "faults": [{"kind": "explode", "after": 2, "worker": 1}]}`, ok),
			wantErr: `unknown kind "explode"`,
		},
	}
	for name, tc := range cases {
		_, err := ParseSpec([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: parsed", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantErr)
		}
	}
}

func TestPlacement(t *testing.T) {
	t.Parallel()
	p := NewPlacement(3)
	// A fresh fleet round-robins (least-loaded with lowest-slot ties).
	got := []int{p.Assign(), p.Assign(), p.Assign(), p.Assign()}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignments = %v, want %v", got, want)
		}
	}
	// After a release, the emptiest slot wins.
	p.Release(1)
	if slot := p.Assign(); slot != 1 {
		t.Errorf("post-release assignment = %d, want 1", slot)
	}
	p.Move(0, 2)
	if p.Load(0) != 1 || p.Load(2) != 2 {
		t.Errorf("after move: load0=%d load2=%d", p.Load(0), p.Load(2))
	}
}
