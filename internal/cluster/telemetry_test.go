package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// TestClusterTelemetryGolden runs the standing fault scenario — one live
// migration, one worker kill with a two-session replay — with the full
// telemetry hookup: coordinator registry, cluster trace, and a scraper
// hitting the debug server throughout. The committed per-session streams
// must still be byte-identical to uninterrupted telemetry-free runs, and
// the registry/trace must have seen every fault.
func TestClusterTelemetryGolden(t *testing.T) {
	t.Parallel()
	spec, err := ParseSpec([]byte(clusterSpecJSON(2, goldenFaults)))
	if err != nil {
		t.Fatal(err)
	}
	var launcher LocalLauncher
	t.Cleanup(launcher.Close)

	reg := telemetry.NewRegistry()
	var traceBuf bytes.Buffer
	tracer := telemetry.NewTracer(&traceBuf)
	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // live scraper for the whole run
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/status"} {
				resp, err := http.Get("http://" + srv.Addr() + path)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	perSession := make(map[string]*bytes.Buffer)
	var merged bytes.Buffer
	rep, err := Run(spec, &launcher, Options{
		Merged: &merged,
		SessionWriter: func(name string) io.Writer {
			buf := &bytes.Buffer{}
			perSession[name] = buf
			return buf
		},
		Logf:      t.Logf,
		Telemetry: reg,
		Trace:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Telemetry on, faults and all: streams still byte-identical to the
	// telemetry-free uninterrupted runs.
	goldens := map[string][]byte{
		"tenants": uninterruptedStream(t, []byte(tenantSpecJSON(2))),
		"stream":  uninterruptedStream(t, []byte(serveSpecJSON(2, 11, 12288))),
	}
	for name, want := range goldens {
		got := perSession[name]
		if got == nil || !bytes.Equal(got.Bytes(), want) {
			gotLen := 0
			if got != nil {
				gotLen = got.Len()
			}
			t.Errorf("session %q: telemetry-on stream diverges from telemetry-off run (%d vs %d bytes)",
				name, gotLen, len(want))
		}
	}

	// The registry saw the whole failure story.
	st := reg.Status()
	if len(st.Workers) != 2 {
		t.Fatalf("registry has %d workers, want 2: %+v", len(st.Workers), st.Workers)
	}
	for _, w := range st.Workers {
		if w.URL == "" || w.Steps == 0 || w.StepLatencyEWMASeconds <= 0 {
			t.Errorf("worker %d never observed stepping: %+v", w.Worker, w)
		}
	}
	if st.Workers[1].Restarts != uint64(rep.WorkerRestarts) || rep.WorkerRestarts != 1 {
		t.Errorf("worker 1 restarts = %d (report %d), want 1", st.Workers[1].Restarts, rep.WorkerRestarts)
	}
	if len(st.Sessions) != 2 {
		t.Fatalf("registry has %d sessions: %+v", len(st.Sessions), st.Sessions)
	}
	byName := map[string]telemetry.SessionStatus{}
	for _, s := range st.Sessions {
		if !s.Done || s.Batches == 0 || s.Worker == nil {
			t.Errorf("session %q incomplete in registry: %+v", s.Name, s)
		}
		byName[s.Name] = s
	}
	if byName["tenants"].Migrations != 1 {
		t.Errorf("tenants migrations = %d, want 1", byName["tenants"].Migrations)
	}
	// The kill hits worker 1 when it hosts both sessions: both replay.
	for _, name := range []string{"tenants", "stream"} {
		if byName[name].Replays != 1 {
			t.Errorf("%s replays = %d, want 1", name, byName[name].Replays)
		}
		if byName[name].LastCheckpointBatch == nil {
			t.Errorf("%s has no checkpoint recorded", name)
		}
	}
	for _, kind := range []string{telemetry.EventMigration, telemetry.EventWorkerDeath, telemetry.EventReplay, serve.EventCheckpoint} {
		if st.Events[kind] == 0 {
			t.Errorf("registry saw no %q events: %v", kind, st.Events)
		}
	}

	// The trace recorded the same transitions, stamped and well-formed.
	kinds := map[string]int{}
	for _, line := range bytes.Split(bytes.TrimSpace(traceBuf.Bytes()), []byte("\n")) {
		var ev telemetry.TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if ev.TimeUnixNs == 0 {
			t.Fatalf("unstamped trace event %+v", ev)
		}
		kinds[ev.Kind]++
	}
	if kinds[telemetry.EventMigration] != 1 || kinds[telemetry.EventWorkerDeath] != 1 || kinds[telemetry.EventReplay] != 2 {
		t.Errorf("trace kinds = %v, want 1 migration, 1 worker-death, 2 replays", kinds)
	}
	if kinds[serve.EventCheckpoint] == 0 {
		t.Errorf("trace has no checkpoint commits: %v", kinds)
	}

	// The coordinator's own /metrics reflects it too.
	body := string(reg.RenderPrometheus())
	for _, want := range []string{"icgmm_worker_up", "icgmm_worker_restarts_total", "icgmm_session_replays_total", "icgmm_session_migrations_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("coordinator /metrics missing %s", want)
		}
	}
}

// TestWorkerDebugEndpoints exercises the worker-side observability surface:
// the protocol listener also answers /metrics, /status and /debug/pprof/,
// the rich health detail tracks hosted sessions, and none of it touches the
// session mutex path.
func TestWorkerDebugEndpoints(t *testing.T) {
	t.Parallel()
	w := NewWorker()
	srv := httptest.NewServer(w)
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL)

	if err := client.Open("s", []byte(serveSpecJSON(1, 3, 4096)), 2); err != nil {
		t.Fatal(err)
	}
	// Target past the end: the worker serves the remaining 4 batches, sees
	// the source exhausted, closes the session, and publishes its final
	// snapshot.
	if _, err := client.Step("s", 5); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b), resp.Header.Get("Content-Type")
	}

	code, body, ct := get("/metrics")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics = %d %q", code, ct)
	}
	if !strings.Contains(body, `icgmm_session_batches_total{session="s"} 4`) {
		t.Errorf("/metrics missing session progress:\n%s", body)
	}
	if !strings.Contains(body, "icgmm_session_ops_total") {
		t.Errorf("/metrics missing snapshot families (final snapshot should have published):\n%s", body)
	}

	code, body, _ = get("/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	var st telemetry.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if len(st.Sessions) != 1 || st.Sessions[0].Name != "s" || st.Sessions[0].Batches != 4 || !st.Sessions[0].Done {
		t.Fatalf("/status sessions = %+v", st.Sessions)
	}
	if st.Sessions[0].LastCheckpointBatch == nil || *st.Sessions[0].LastCheckpointBatch != 4 {
		t.Errorf("periodic checkpoint hook not recorded: %+v", st.Sessions[0])
	}

	code, body, _ = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d:\n%s", code, body)
	}

	// Health carries the per-session detail, built from the same registry.
	code, body, _ = get("/" + protocolVersion + "/health")
	if code != http.StatusOK {
		t.Fatalf("health = %d", code)
	}
	var h healthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Sessions != 1 || len(h.Detail) != 1 || h.Detail[0].Session != "s" || h.Detail[0].Batches != 4 || !h.Detail[0].Done {
		t.Fatalf("health = %+v", h)
	}

	// Unknown protocol endpoints still 404 as protocol errors.
	if code, _, _ := get("/" + protocolVersion + "/bogus"); code != http.StatusNotFound {
		t.Errorf("protocol 404 = %d", code)
	}
}
