package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// MergedRecord is one line of the coordinator's merged stream: a session
// name plus one of that session's metric records, embedded verbatim. The
// inner record keeps its exact bytes (json.RawMessage round-trips them
// untouched), so filtering the merged stream by session and unwrapping
// reproduces each per-session stream bit for bit.
type MergedRecord struct {
	Session string          `json:"session"`
	Record  json.RawMessage `json:"record"`
}

// mergedSink serializes committed per-session JSONL chunks into one merged
// ordered stream. The coordinator commits chunks in deterministic (round,
// session-index) order, so the merged stream is a pure function of the
// cluster spec and its fault schedule.
type mergedSink struct {
	w   io.Writer
	err error
}

// emit wraps each line of a committed chunk and appends it to the merged
// stream. Chunks always end on a line boundary — sessions emit whole
// records and commits cut at checkpoint positions, which fall between
// records. The error is sticky, like the serve metrics writer's.
func (s *mergedSink) emit(session string, chunk []byte) error {
	if s.err != nil {
		return s.err
	}
	if s.w == nil || len(chunk) == 0 {
		return nil
	}
	rest := chunk
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			s.err = fmt.Errorf("cluster: committed chunk for %q does not end on a record boundary", session)
			return s.err
		}
		line := rest[:nl]
		rest = rest[nl+1:]
		out, err := json.Marshal(MergedRecord{Session: session, Record: json.RawMessage(line)})
		if err != nil {
			s.err = err
			return s.err
		}
		out = append(out, '\n')
		if _, err := s.w.Write(out); err != nil {
			s.err = err
			return s.err
		}
	}
	return nil
}
