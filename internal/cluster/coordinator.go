package cluster

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// Options configures a coordinator run.
type Options struct {
	// Merged receives the merged ordered stream: every committed metric
	// record from every session, wrapped as a MergedRecord line. Nil
	// discards it.
	Merged io.Writer
	// SessionWriter, if set, supplies a per-session sink for each session's
	// raw committed JSONL — byte-identical to the stream an uninterrupted
	// single-process run of the same serve spec would write. Called once
	// per session, before any bytes flow.
	SessionWriter func(name string) io.Writer
	// Heartbeat is the worker health-probe period (default 250ms). The
	// heartbeat is one of three death signals — transport errors on step
	// and the process-exit channel are the others — so runs work without
	// it, just with detection latency tied to the stepping cadence.
	Heartbeat time.Duration
	// Logf, if set, receives progress lines (placements, faults, deaths,
	// replays).
	Logf func(format string, args ...any)
	// Telemetry, if set, receives the coordinator's cluster-wide live view:
	// per-worker step-latency EWMAs and heartbeat/step miss counts (signals
	// the drive loop measures anyway), session placement and progress, and
	// fault/replay counters. Purely read-side — nil changes nothing.
	Telemetry *telemetry.Registry
	// Trace, if set, receives wall-clock-stamped cluster events (checkpoint
	// commits, migrations, worker deaths, replays) as JSONL.
	Trace *telemetry.Tracer
}

// Report summarizes a completed cluster run.
type Report struct {
	// Sessions, in spec order.
	Sessions []SessionReport `json:"sessions"`
	// WorkerRestarts counts workers respawned after a death.
	WorkerRestarts int `json:"worker_restarts"`
}

// SessionReport is one session's life story.
type SessionReport struct {
	Name string `json:"name"`
	// Batches served in total.
	Batches uint64 `json:"batches"`
	// Worker is the slot the session finished on.
	Worker int `json:"worker"`
	// Migrations counts live migrations; Replays counts crash recoveries
	// (resume-from-checkpoint or full reopen after a worker death).
	Migrations int `json:"migrations"`
	Replays    int `json:"replays"`
}

// coordinator is the run's mutable state. All fields are owned by the
// driving goroutine; workers' death flags are the only cross-goroutine
// state (written by monitor goroutines, atomically).
type coordinator struct {
	spec     Spec
	launcher Launcher
	opts     Options
	ckEvery  uint64

	workers  []*workerState
	sessions []*sessionState
	place    *Placement
	merged   *mergedSink
	fired    []bool // per spec fault, set once injected
	restarts int
}

type workerState struct {
	slot   int
	handle *Handle
	client *Client
	// dead is set by the heartbeat monitor or the process-exit watcher;
	// the drive loop checks it between rounds and recovers proactively.
	dead *atomic.Bool
	// stop tears down this incarnation's monitor goroutines.
	stop chan struct{}
	gen  int
}

type sessionState struct {
	index int
	name  string
	doc   []byte // serve.Spec document, for checkpoint-less replays
	out   io.Writer

	worker  int
	batches uint64
	closed  bool

	// Commit accounting for the current incarnation (reset on every resume):
	// pending holds received-but-uncommitted metric bytes; committed and
	// received count this incarnation's bytes below and including them.
	pending   []byte
	committed uint64
	received  uint64

	// ckpt is the newest replay point: the last periodic checkpoint or the
	// last migration checkpoint, whichever is later. Nil until the first —
	// a worker death then costs a full replay from batch zero.
	ckpt *checkpointInfo

	migrations int
	replays    int
}

// Run executes a cluster spec to completion: launch the fleet, place the
// sessions, drive them in lockstep rounds (injecting the spec's faults at
// their batch boundaries), and tear the fleet down. On success every
// session has emitted its complete metric stream — finals included — into
// the merged sink and its per-session sink, byte-identical to an
// uninterrupted single-process run of its serve spec.
func Run(spec Spec, launcher Launcher, opts Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 250 * time.Millisecond
	}
	c := &coordinator{
		spec:     spec,
		launcher: launcher,
		opts:     opts,
		ckEvery:  spec.EffectiveCheckpointEvery(),
		place:    NewPlacement(spec.EffectiveWorkers()),
		merged:   &mergedSink{w: opts.Merged},
		fired:    make([]bool, len(spec.Faults)),
	}
	defer c.shutdown()
	if err := c.launchFleet(); err != nil {
		return nil, err
	}
	if err := c.placeSessions(); err != nil {
		return nil, err
	}
	if err := c.drive(); err != nil {
		return nil, err
	}
	rep := &Report{WorkerRestarts: c.restarts}
	for _, s := range c.sessions {
		rep.Sessions = append(rep.Sessions, SessionReport{
			Name:       s.name,
			Batches:    s.batches,
			Worker:     s.worker,
			Migrations: s.migrations,
			Replays:    s.replays,
		})
	}
	return rep, nil
}

func (c *coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// launchFleet starts the spec's worker count and their monitors.
func (c *coordinator) launchFleet() error {
	n := c.spec.EffectiveWorkers()
	c.workers = make([]*workerState, n)
	for i := 0; i < n; i++ {
		ws := &workerState{slot: i, dead: &atomic.Bool{}}
		if err := c.spawn(ws); err != nil {
			return err
		}
		c.workers[i] = ws
		c.logf("worker %d up at %s", i, ws.handle.URL)
	}
	return nil
}

// spawn launches (or relaunches) the worker for a slot and starts its
// death monitors: a heartbeat prober and a process-exit watcher. Monitors
// capture this incarnation's handle and client so a later respawn cannot
// race them.
func (c *coordinator) spawn(ws *workerState) error {
	h, err := c.launcher.Launch(fmt.Sprintf("worker%d-g%d", ws.slot, ws.gen))
	if err != nil {
		return fmt.Errorf("cluster: launching worker %d: %w", ws.slot, err)
	}
	ws.gen++
	ws.handle = h
	ws.client = NewClient(h.URL)
	ws.dead = &atomic.Bool{}
	ws.stop = make(chan struct{})
	c.opts.Telemetry.RecordWorker(ws.slot, h.URL)
	dead, stop, client := ws.dead, ws.stop, ws.client
	go func() { // process-exit watcher
		select {
		case <-h.Done:
			dead.Store(true)
		case <-stop:
		}
	}()
	hb, slot, reg := c.opts.Heartbeat, ws.slot, c.opts.Telemetry
	go func() { // heartbeat prober
		t := time.NewTicker(hb)
		defer t.Stop()
		misses := 0
		for {
			select {
			case <-t.C:
				_, err := client.Health(hb)
				var te *TransportError
				if err != nil && errors.As(err, &te) {
					reg.Heartbeat(slot, false)
					// Three consecutive misses before declaring death: a
					// single slow probe (a loaded machine, a long GC pause)
					// must not trigger a replay of a healthy worker.
					if misses++; misses >= 3 {
						dead.Store(true)
						return
					}
				} else {
					reg.Heartbeat(slot, true)
					misses = 0
				}
			case <-stop:
				return
			}
		}
	}()
	return nil
}

// stopMonitors ends the current incarnation's monitor goroutines.
func (ws *workerState) stopMonitors() {
	if ws.stop != nil {
		close(ws.stop)
		ws.stop = nil
	}
}

// shutdown kills every worker and stops the monitors (end of run, success
// or not).
func (c *coordinator) shutdown() {
	for _, ws := range c.workers {
		if ws == nil {
			continue
		}
		ws.stopMonitors()
		if ws.handle != nil {
			ws.handle.Kill() //nolint:errcheck // teardown
		}
	}
}

// placeSessions assigns every session a slot (deterministically) and opens
// it there.
func (c *coordinator) placeSessions() error {
	for i, ss := range c.spec.Sessions {
		st := &sessionState{index: i, name: ss.Name, doc: append([]byte(nil), ss.Spec...)}
		if c.opts.SessionWriter != nil {
			st.out = c.opts.SessionWriter(ss.Name)
		}
		st.worker = c.place.Assign()
		if err := c.workers[st.worker].client.Open(st.name, st.doc, c.ckEvery); err != nil {
			return fmt.Errorf("cluster: opening session %q on worker %d: %w", st.name, st.worker, err)
		}
		c.sessions = append(c.sessions, st)
		c.opts.Telemetry.SetPlacement(st.name, st.worker)
		c.logf("session %q placed on worker %d", st.name, st.worker)
	}
	return nil
}

// drive runs the lockstep rounds: in round t every live session is stepped
// to a total of t batches, responses are absorbed in session order, and
// spec faults fire at their batch boundaries between rounds. The loop ends
// when every session has closed.
func (c *coordinator) drive() error {
	for t := uint64(1); ; t++ {
		if err := c.fireFaults(t - 1); err != nil {
			return err
		}
		live := c.liveSessions()
		if len(live) == 0 {
			return nil
		}
		if err := c.recoverFlagged(); err != nil {
			return err
		}
		// Up to a few attempts per round: a worker death fails its
		// sessions' steps, recovery replays them, and the retry re-steps
		// them to the same target. Anything still failing after that is a
		// real error, not a fault to ride out.
		for attempt := 0; ; attempt++ {
			failed, err := c.stepRound(live, t)
			if err != nil {
				return err
			}
			if len(failed) == 0 {
				break
			}
			if attempt >= 3 {
				return fmt.Errorf("cluster: round %d: %d sessions still failing after %d recovery attempts", t, len(failed), attempt)
			}
			if err := c.recoverSlots(failed); err != nil {
				return err
			}
			live = failed
		}
	}
}

// liveSessions returns the not-yet-closed sessions in spec order.
func (c *coordinator) liveSessions() []*sessionState {
	var out []*sessionState
	for _, s := range c.sessions {
		if !s.closed {
			out = append(out, s)
		}
	}
	return out
}

// stepRound steps each given session to target concurrently (workers
// serialize their own sessions; distinct workers genuinely overlap) and
// absorbs the responses in session-index order, which keeps the merged
// stream deterministic. It returns the sessions whose workers died
// mid-step; any other failure is an error.
func (c *coordinator) stepRound(live []*sessionState, target uint64) ([]*sessionState, error) {
	type outcome struct {
		resp stepResponse
		err  error
	}
	results := make([]outcome, len(live))
	var wg sync.WaitGroup
	for i, s := range live {
		client := c.workers[s.worker].client
		name, slot := s.name, s.worker
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-round, per-worker step wall time feeds the telemetry
			// registry's latency EWMA — the load signal a future rebalancer
			// wants, measured here anyway.
			start := time.Now()
			resp, err := client.Step(name, target)
			c.opts.Telemetry.ObserveStep(slot, time.Since(start), err == nil)
			results[i] = outcome{resp: resp, err: err}
		}()
	}
	wg.Wait()
	var failed []*sessionState
	for i, s := range live {
		r := results[i]
		if r.err != nil {
			var te *TransportError
			if errors.As(r.err, &te) {
				c.logf("session %q: worker %d unreachable: %v", s.name, s.worker, r.err)
				failed = append(failed, s)
				continue
			}
			return nil, fmt.Errorf("cluster: stepping session %q: %w", s.name, r.err)
		}
		if err := c.absorb(s, r.resp); err != nil {
			return nil, err
		}
	}
	return failed, nil
}

// absorb folds one step response into a session: buffer its metric bytes,
// commit through any checkpoint it carries, and finish it if the run
// ended. Commits are the only writes to the sinks, and they happen in
// deterministic order — absorb is called in session-index order per round.
func (c *coordinator) absorb(s *sessionState, resp stepResponse) error {
	s.batches = resp.Batches
	if len(resp.Metrics) > 0 {
		s.pending = append(s.pending, resp.Metrics...)
		s.received += uint64(len(resp.Metrics))
	}
	c.opts.Telemetry.PublishProgress(s.name, s.batches, resp.Closed)
	if resp.Checkpoint != nil {
		if err := c.commitTo(s, resp.Checkpoint.Emitted); err != nil {
			return err
		}
		s.ckpt = resp.Checkpoint
		c.opts.Telemetry.RecordCheckpoint(s.name, resp.Checkpoint.Batches)
		c.opts.Telemetry.CountEvent(serve.EventCheckpoint, s.name)
		c.opts.Trace.Emit(telemetry.TraceEvent{
			Kind:    serve.EventCheckpoint,
			Session: s.name,
			Batch:   resp.Checkpoint.Batches,
			Worker:  &s.worker,
		})
	}
	if resp.Closed {
		if err := c.commitAll(s); err != nil {
			return err
		}
		s.closed = true
		c.place.Release(s.worker)
		c.logf("session %q finished at %d batches on worker %d", s.name, s.batches, s.worker)
	}
	return nil
}

// commitTo releases the session's buffered bytes up to an incarnation
// offset — a checkpoint position, so a worker death past this point can
// regenerate everything after it, byte for byte. Committed bytes flow to
// the per-session sink raw and to the merged sink wrapped.
func (c *coordinator) commitTo(s *sessionState, emitted uint64) error {
	if emitted < s.committed {
		return fmt.Errorf("cluster: session %q checkpoint offset %d behind committed %d", s.name, emitted, s.committed)
	}
	if emitted > s.received {
		return fmt.Errorf("cluster: session %q checkpoint offset %d beyond received %d", s.name, emitted, s.received)
	}
	n := emitted - s.committed
	if n == 0 {
		return nil
	}
	chunk := s.pending[:n]
	if s.out != nil {
		if _, err := s.out.Write(chunk); err != nil {
			return err
		}
	}
	if err := c.merged.emit(s.name, chunk); err != nil {
		return err
	}
	s.pending = append([]byte(nil), s.pending[n:]...)
	s.committed = emitted
	return nil
}

// commitAll releases everything buffered — the clean end of a session's
// run (finals included) or a migration boundary, where the explicit
// checkpoint covers every byte received.
func (c *coordinator) commitAll(s *sessionState) error {
	return c.commitTo(s, s.received)
}

// fireFaults injects the spec faults scheduled after batch boundary b.
func (c *coordinator) fireFaults(b uint64) error {
	for i := range c.spec.Faults {
		f := c.spec.Faults[i]
		if f.After != b || c.fired[i] {
			continue
		}
		c.fired[i] = true
		switch f.Kind {
		case FaultMigrate:
			if err := c.migrate(f.Session, f.Worker); err != nil {
				return err
			}
		case FaultKill:
			c.logf("fault: killing worker %d after batch %d", f.Worker, b)
			c.workers[f.Worker].handle.Kill() //nolint:errcheck // death is the point
		}
	}
	return nil
}

// migrate live-migrates a session: explicit checkpoint on its current
// worker, commit every byte the checkpoint covers, resume on the target,
// then detach the original (tear-down without final records). The
// checkpoint doubles as the session's newest replay point.
func (c *coordinator) migrate(name string, target int) error {
	s := c.byName(name)
	if s == nil || s.closed {
		c.logf("fault: migrate %q skipped (already finished)", name)
		return nil
	}
	if s.worker == target {
		c.logf("fault: migrate %q skipped (already on worker %d)", name, target)
		return nil
	}
	src, dst := c.workers[s.worker], c.workers[target]
	info, err := src.client.Checkpoint(name)
	if err != nil {
		return fmt.Errorf("cluster: migrating %q: checkpoint: %w", name, err)
	}
	// Between steps nothing new is emitted, so the checkpoint covers every
	// byte received — this commit drains the buffer exactly.
	if info.Emitted != s.received {
		return fmt.Errorf("cluster: migrating %q: checkpoint covers %d bytes, coordinator received %d", name, info.Emitted, s.received)
	}
	if err := c.commitAll(s); err != nil {
		return err
	}
	b, err := dst.client.Resume(name, info.Doc, c.ckEvery)
	if err != nil {
		return fmt.Errorf("cluster: migrating %q: resume on worker %d: %w", name, target, err)
	}
	if err := src.client.Detach(name); err != nil {
		return fmt.Errorf("cluster: migrating %q: detach: %w", name, err)
	}
	c.place.Move(s.worker, target)
	c.logf("fault: migrated %q from worker %d to worker %d at batch %d", name, s.worker, target, info.Batches)
	s.worker = target
	s.batches = b
	s.ckpt = &info
	s.pending = nil
	s.committed, s.received = 0, 0
	s.migrations++
	c.opts.Telemetry.RecordMigration(name)
	c.opts.Telemetry.SetPlacement(name, target)
	c.opts.Trace.Emit(telemetry.TraceEvent{
		Kind:    telemetry.EventMigration,
		Session: name,
		Batch:   info.Batches,
		Worker:  &target,
	})
	return nil
}

func (c *coordinator) byName(name string) *sessionState {
	for _, s := range c.sessions {
		if s.name == name {
			return s
		}
	}
	return nil
}

// recoverFlagged respawns workers whose monitors flagged them dead since
// the last round — the heartbeat / process-exit legs of death detection.
// (The step-error leg recovers through recoverSlots instead.)
func (c *coordinator) recoverFlagged() error {
	for _, ws := range c.workers {
		if ws.dead.Load() {
			if err := c.recoverWorker(ws); err != nil {
				return err
			}
		}
	}
	return nil
}

// recoverSlots recovers the workers behind a set of failed sessions.
func (c *coordinator) recoverSlots(failed []*sessionState) error {
	done := make(map[int]bool)
	for _, s := range failed {
		if done[s.worker] {
			continue
		}
		done[s.worker] = true
		if err := c.recoverWorker(c.workers[s.worker]); err != nil {
			return err
		}
	}
	return nil
}

// recoverWorker replaces a dead worker: kill whatever is left of it, spawn
// a fresh one into the same slot, and replay every session that lived
// there from its last checkpoint (or from batch zero, retraining and all,
// if it never reached one). Buffered uncommitted bytes are discarded — the
// replay regenerates them byte-identically, which is the whole contract.
func (c *coordinator) recoverWorker(ws *workerState) error {
	c.logf("worker %d dead; respawning", ws.slot)
	c.opts.Telemetry.SetWorkerUp(ws.slot, false)
	c.opts.Telemetry.CountEvent(telemetry.EventWorkerDeath, "")
	c.opts.Trace.Emit(telemetry.TraceEvent{Kind: telemetry.EventWorkerDeath, Worker: &ws.slot})
	ws.stopMonitors()
	ws.handle.Kill() //nolint:errcheck // it is already dying
	if err := c.spawn(ws); err != nil {
		return err
	}
	c.restarts++
	c.opts.Telemetry.RecordRestart(ws.slot)
	for _, s := range c.sessions {
		if s.closed || s.worker != ws.slot {
			continue
		}
		s.pending = nil
		s.committed, s.received = 0, 0
		if s.ckpt != nil {
			b, err := ws.client.Resume(s.name, s.ckpt.Doc, c.ckEvery)
			if err != nil {
				return fmt.Errorf("cluster: replaying session %q on worker %d: %w", s.name, ws.slot, err)
			}
			s.batches = b
			c.logf("session %q replayed from checkpoint at batch %d", s.name, b)
		} else {
			if err := ws.client.Open(s.name, s.doc, c.ckEvery); err != nil {
				return fmt.Errorf("cluster: reopening session %q on worker %d: %w", s.name, ws.slot, err)
			}
			s.batches = 0
			c.logf("session %q replayed from scratch (no checkpoint yet)", s.name)
		}
		s.replays++
		c.opts.Telemetry.RecordReplay(s.name)
		c.opts.Telemetry.PublishProgress(s.name, s.batches, false)
		c.opts.Trace.Emit(telemetry.TraceEvent{
			Kind:    telemetry.EventReplay,
			Session: s.name,
			Batch:   s.batches,
			Worker:  &ws.slot,
		})
	}
	return nil
}
