package cluster

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/serve"
	"repro/internal/strictjson"
)

// SpecVersion is the cluster wire-format version this package reads.
const SpecVersion = 1

// Spec describes one cluster run: the worker fleet, the sessions to place
// on it, the periodic-checkpoint cadence, and (optionally) a deterministic
// fault schedule. Like serve.Spec it is a versioned, strictly-decoded JSON
// document: the same document replayed against the same build produces the
// same run — faults included, which is what makes crash-recovery testable
// by byte-diff.
type Spec struct {
	// Version must be SpecVersion.
	Version int `json:"version"`
	// Workers sizes the fleet (default 2).
	Workers int `json:"workers,omitempty"`
	// CheckpointEvery is the periodic-checkpoint cadence in batches
	// (default 8; it is each session's replay granularity after a worker
	// dies). 0 disables periodic checkpoints — a session killed before its
	// first migration then replays from batch zero, retraining included.
	CheckpointEvery *uint64 `json:"checkpoint_every,omitempty"`
	// Sessions are the serving runs to place, in placement order.
	Sessions []SessionSpec `json:"sessions"`
	// Faults is the deterministic fault schedule.
	Faults []FaultSpec `json:"faults,omitempty"`
	// Telemetry opts the *coordinator* into the live debug server (Addr)
	// and the cluster event trace (Trace). Workers always expose /metrics,
	// /status and /debug/pprof on their own protocol listeners regardless.
	// Loader-resolved, read-side only: the merged and per-session metric
	// streams are byte-identical with or without it.
	Telemetry *serve.TelemetrySpec `json:"telemetry,omitempty"`
}

// SessionSpec names one serving run and embeds its serve.Spec document.
type SessionSpec struct {
	// Name labels the session in the merged stream and reports. Required,
	// unique.
	Name string `json:"name"`
	// Spec is the serve.Spec document, embedded verbatim (serve.ParseSpec
	// strictly decodes it in turn).
	Spec json.RawMessage `json:"spec"`
}

// FaultSpec schedules one injected fault at a batch boundary: after every
// live session has served After batches (and its metrics are accounted),
// the fault fires, before any session steps further.
type FaultSpec struct {
	// Kind is "migrate" (checkpoint → transfer → resume a session onto
	// Worker) or "kill" (SIGKILL the worker in slot Worker; the coordinator
	// must detect the death and replay its sessions from their last
	// checkpoints).
	Kind string `json:"kind"`
	// After is the batch boundary the fault fires at.
	After uint64 `json:"after"`
	// Session names the session to migrate (migrate only).
	Session string `json:"session,omitempty"`
	// Worker is the migration target slot, or the kill victim slot.
	Worker int `json:"worker"`
}

const (
	// FaultMigrate live-migrates a session: checkpoint on its current
	// worker, resume on the target, detach the original.
	FaultMigrate = "migrate"
	// FaultKill kills a worker process outright.
	FaultKill = "kill"
)

// defaultCheckpointEvery is the periodic-checkpoint cadence when the spec
// leaves it unset.
const defaultCheckpointEvery = 8

// EffectiveWorkers returns the fleet size with its default applied.
func (s Spec) EffectiveWorkers() int {
	if s.Workers == 0 {
		return 2
	}
	return s.Workers
}

// EffectiveCheckpointEvery returns the checkpoint cadence with its default
// applied (the field is a pointer so an explicit 0 — checkpoints off — is
// distinguishable from absent).
func (s Spec) EffectiveCheckpointEvery() uint64 {
	if s.CheckpointEvery == nil {
		return defaultCheckpointEvery
	}
	return *s.CheckpointEvery
}

// ParseSpec decodes and validates a cluster spec document. Decoding is
// strict: unknown keys anywhere (outside the embedded serve documents,
// which run their own strict pass) are rejected with a field-path error.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := strictjson.Unmarshal(data, &s, "cluster"); err != nil {
		return Spec{}, err
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks the spec: version, fleet size, session names and their
// embedded serve specs, and that every fault refers to a real session and a
// real worker slot.
func (s Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("cluster: spec version %d not supported (this build reads version %d)", s.Version, SpecVersion)
	}
	if s.Workers < 0 {
		return fmt.Errorf("cluster: %d workers", s.Workers)
	}
	if len(s.Sessions) == 0 {
		return errors.New("cluster: spec has no sessions")
	}
	names := make(map[string]bool, len(s.Sessions))
	for i, sess := range s.Sessions {
		if sess.Name == "" {
			return fmt.Errorf("cluster: session %d has no name", i)
		}
		if names[sess.Name] {
			return fmt.Errorf("cluster: duplicate session name %q", sess.Name)
		}
		names[sess.Name] = true
		if _, err := serve.ParseSpec(sess.Spec); err != nil {
			return fmt.Errorf("cluster: session %q: %w", sess.Name, err)
		}
	}
	if t := s.Telemetry; t != nil && t.SnapshotEvery < 0 {
		return fmt.Errorf("cluster: spec telemetry snapshot_every %d negative", t.SnapshotEvery)
	}
	for i, f := range s.Faults {
		if f.Worker < 0 || f.Worker >= s.EffectiveWorkers() {
			return fmt.Errorf("cluster: fault %d targets worker %d of %d", i, f.Worker, s.EffectiveWorkers())
		}
		switch f.Kind {
		case FaultMigrate:
			if !names[f.Session] {
				return fmt.Errorf("cluster: fault %d migrates unknown session %q", i, f.Session)
			}
		case FaultKill:
			if f.Session != "" {
				return fmt.Errorf("cluster: fault %d: kill targets a worker, not a session", i)
			}
		default:
			return fmt.Errorf("cluster: fault %d has unknown kind %q", i, f.Kind)
		}
	}
	return nil
}
