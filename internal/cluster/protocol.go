// Package cluster runs spec-described serving sessions across worker
// processes. A coordinator places each session on a worker, drives the
// fleet in deterministic lockstep rounds, streams every session's interval
// JSONL back into a merged ordered sink, live-migrates sessions between
// workers via checkpoint → transfer → resume, and survives worker death by
// replaying the lost sessions from their last periodic checkpoint.
//
// The whole layer leans on one property inherited from internal/serve: a
// resumed session's metric stream, concatenated after the bytes emitted
// before its checkpoint, is byte-identical to the uninterrupted run. The
// coordinator therefore commits a session's bytes to its sinks only up to
// checkpoint boundaries it could replay from (plus the clean end of run);
// whatever a dead worker emitted past its last checkpoint is discarded and
// regenerated, bit for bit, by the replay. Migration and crash recovery
// both reduce to a byte-diff against an uninterrupted single-process run —
// which is exactly how the package tests itself.
//
// Coordinator and worker speak versioned JSON over HTTP (all endpoints
// under /v1/). Workers bind localhost TCP, but nothing in the protocol
// cares: a worker's address is just a URL, so a future transport only needs
// to produce one. Request bodies are decoded strictly — an unknown field
// anywhere fails with its path (e.g. "step.tagret: unknown field") rather
// than being silently dropped.
package cluster

import "encoding/json"

// protocolVersion prefixes every endpoint path. A coordinator and worker
// from different protocol generations fail with 404s instead of
// half-understanding each other.
const protocolVersion = "v1"

// handshakePrefix starts the single line a spawned worker process prints to
// stdout once its listener is bound: "ICGMM-WORKER LISTEN <addr>". The
// launcher scans for it to learn the worker's address.
const handshakePrefix = "ICGMM-WORKER LISTEN "

// openRequest asks a worker to open a fresh session: validate the embedded
// serve spec, run initial training, and hold the session at batch zero.
type openRequest struct {
	// Session names the session; all later requests refer to it by name.
	Session string `json:"session"`
	// Spec is a serve.Spec document, passed through verbatim; the worker
	// runs serve.ParseSpec's own strict pass on it.
	Spec json.RawMessage `json:"spec"`
	// CheckpointEvery arms the periodic checkpoint hook: every N batches the
	// worker captures a full checkpoint document and returns it with the
	// step response that covered the boundary. 0 disables (the coordinator
	// then has no replay point until the first migration).
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
}

// resumeRequest asks a worker to rebuild a session from a checkpoint
// document (taken on any worker) and continue it.
type resumeRequest struct {
	Session string `json:"session"`
	// Checkpoint is the serve checkpoint document, verbatim.
	Checkpoint      json.RawMessage `json:"checkpoint"`
	CheckpointEvery uint64          `json:"checkpoint_every,omitempty"`
}

// openResponse answers open and resume with where the session stands.
type openResponse struct {
	// Batches already served (0 for a fresh open, the checkpoint's batch
	// count for a resume).
	Batches uint64 `json:"batches"`
}

// stepRequest drives a session forward to a target total batch count. The
// coordinator's lockstep rounds make Target monotone; a freshly resumed
// session simply has further to go to reach the same target.
type stepRequest struct {
	Session string `json:"session"`
	// Target is the total batch count to reach (not a delta).
	Target uint64 `json:"target"`
}

// stepResponse reports the step's outcome and carries everything the
// session emitted while stepping.
type stepResponse struct {
	// Batches is the session's total served batch count after the step.
	Batches uint64 `json:"batches"`
	// Done is set once the source is exhausted. The worker then closes the
	// session itself, so Done implies the final partition/tenant/summary
	// records are already in Metrics and Closed is set.
	Done   bool `json:"done,omitempty"`
	Closed bool `json:"closed,omitempty"`
	// Metrics is the raw JSONL the session wrote during this step range
	// (base64 on the wire via encoding/json's []byte rule).
	Metrics []byte `json:"metrics,omitempty"`
	// Checkpoint is the latest periodic checkpoint captured inside this step
	// range, if any boundary was crossed — the coordinator's commit point
	// and replay seed.
	Checkpoint *checkpointInfo `json:"checkpoint,omitempty"`
}

// checkpointInfo pins a checkpoint document to its position in the
// session's metric stream.
type checkpointInfo struct {
	// Batches served when the checkpoint was taken.
	Batches uint64 `json:"batches"`
	// Emitted counts the metric bytes this incarnation of the session had
	// written when the checkpoint was taken. Bytes up to Emitted are exactly
	// the bytes a resume from Doc will not re-emit — the coordinator's
	// commit horizon.
	Emitted uint64 `json:"emitted"`
	// Doc is the serve checkpoint document.
	Doc json.RawMessage `json:"doc"`
}

// checkpointRequest takes an explicit checkpoint of an idle session — the
// first half of a migration. The session stays open (Detach tears it down
// once the checkpoint has landed elsewhere).
type checkpointRequest struct {
	Session string `json:"session"`
}

// detachRequest tears a session down without emitting final records — the
// second half of a migration, once the checkpoint has been resumed on the
// target worker.
type detachRequest struct {
	Session string `json:"session"`
}

// detachResponse acknowledges a detach.
type detachResponse struct {
	Detached bool `json:"detached"`
}

// healthResponse answers the heartbeat probe. The whole body is built from
// the worker's telemetry registry — never from session state — so a worker
// mid-step answers instantly.
type healthResponse struct {
	// Sessions is how many open sessions the worker holds.
	Sessions int `json:"sessions"`
	// Detail lists the hosted sessions (sorted by name) with their last
	// published progress.
	Detail []sessionHealth `json:"detail,omitempty"`
}

// sessionHealth is one hosted session's live view inside a health reply.
type sessionHealth struct {
	Session string `json:"session"`
	// Batches is the session's served batch count as last published (it can
	// trail the true count by the in-flight step).
	Batches uint64 `json:"batches"`
	Done    bool   `json:"done,omitempty"`
	// LastCheckpointBatch is the newest periodic/explicit checkpoint
	// boundary, absent before the first.
	LastCheckpointBatch *uint64 `json:"last_checkpoint_batch,omitempty"`
}

// errorResponse is the body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}
