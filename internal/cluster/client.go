package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/strictjson"
)

// Client speaks the worker protocol to one worker. The worker is addressed
// purely by URL — the client neither knows nor cares whether the other end
// is a spawned process on localhost, an in-process test worker, or a remote
// machine.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the worker at base (e.g.
// "http://127.0.0.1:41873").
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimSuffix(base, "/"),
		// Requests carry whole serving steps, so no overall timeout; dead
		// workers are caught by connection errors and the heartbeat.
		hc: &http.Client{},
	}
}

// call POSTs a request document and strictly decodes the response into
// out. Non-2xx replies surface as errors carrying the worker's message;
// transport errors surface as *TransportError so the coordinator can tell a
// dead worker from a live one rejecting a request.
func (c *Client) call(endpoint string, req, out any, root string) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+"/"+protocolVersion+"/"+endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		return &TransportError{Endpoint: endpoint, Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return &TransportError{Endpoint: endpoint, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("cluster: worker %s: %s", endpoint, e.Error)
		}
		return fmt.Errorf("cluster: worker %s: HTTP %d", endpoint, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return strictjson.Unmarshal(data, out, root)
}

// TransportError wraps a failure to reach the worker at all — the signal,
// along with missed heartbeats and process exit, that a worker is dead (as
// opposed to alive and rejecting a bad request).
type TransportError struct {
	Endpoint string
	Err      error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("cluster: worker unreachable (%s): %v", e.Endpoint, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// Open opens a fresh session from a serve spec document.
func (c *Client) Open(session string, spec json.RawMessage, checkpointEvery uint64) error {
	var resp openResponse
	return c.call("open", openRequest{Session: session, Spec: spec, CheckpointEvery: checkpointEvery}, &resp, "open")
}

// Resume rebuilds a session from a checkpoint document and returns the
// batch count it resumed at.
func (c *Client) Resume(session string, checkpoint json.RawMessage, checkpointEvery uint64) (uint64, error) {
	var resp openResponse
	err := c.call("resume", resumeRequest{Session: session, Checkpoint: checkpoint, CheckpointEvery: checkpointEvery}, &resp, "resume")
	return resp.Batches, err
}

// Step drives a session to a target total batch count.
func (c *Client) Step(session string, target uint64) (stepResponse, error) {
	var resp stepResponse
	err := c.call("step", stepRequest{Session: session, Target: target}, &resp, "step")
	return resp, err
}

// Checkpoint takes an explicit checkpoint of an idle session (the first
// half of a migration).
func (c *Client) Checkpoint(session string) (checkpointInfo, error) {
	var resp checkpointInfo
	err := c.call("checkpoint", checkpointRequest{Session: session}, &resp, "checkpoint")
	return resp, err
}

// Detach tears a session down without final records (the second half of a
// migration).
func (c *Client) Detach(session string) error {
	var resp detachResponse
	return c.call("detach", detachRequest{Session: session}, &resp, "detach")
}

// Health probes the worker, returning its open session count. It is the
// heartbeat: a transport failure here marks the worker dead.
func (c *Client) Health(timeout time.Duration) (int, error) {
	hc := &http.Client{Timeout: timeout}
	resp, err := hc.Get(c.base + "/" + protocolVersion + "/health")
	if err != nil {
		return 0, &TransportError{Endpoint: "health", Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, &TransportError{Endpoint: "health", Err: err}
	}
	var h healthResponse
	if err := strictjson.Unmarshal(data, &h, "health"); err != nil {
		return 0, err
	}
	return h.Sessions, nil
}
