package cluster

// Placement assigns sessions to worker slots deterministically:
// least-loaded slot, ties broken toward the lowest index. Placing a batch
// of sessions onto an idle fleet therefore round-robins them; placing a
// replacement session later lands it on whichever slot carries the least.
// Determinism matters more than cleverness here — the merged metric stream
// is only reproducible if placement is a pure function of the spec.
type Placement struct {
	load []int
}

// NewPlacement tracks a fleet of n worker slots, all idle.
func NewPlacement(n int) *Placement {
	return &Placement{load: make([]int, n)}
}

// Assign picks the slot for one new session and records it.
func (p *Placement) Assign() int {
	best := 0
	for i, l := range p.load {
		if l < p.load[best] {
			best = i
		}
	}
	p.load[best]++
	return best
}

// Move re-homes one session from slot from to slot to (a migration).
func (p *Placement) Move(from, to int) {
	p.load[from]--
	p.load[to]++
}

// Release removes one session from a slot (it finished or was torn down).
func (p *Placement) Release(slot int) {
	p.load[slot]--
}

// Load returns slot's session count.
func (p *Placement) Load(slot int) int { return p.load[slot] }
