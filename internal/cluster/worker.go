package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/serve"
	"repro/internal/strictjson"
)

// Worker hosts serving sessions behind the cluster protocol. It is an
// http.Handler: mount it on any listener and its URL is a worker address.
// The same type backs both the spawned `icgmm-cluster worker` process and
// the in-process workers the tests run.
//
// Sessions are single-goroutine; the worker serializes all session-touching
// requests behind one mutex, so a coordinator may issue requests for
// different sessions on the same worker concurrently and they simply queue.
type Worker struct {
	mu       sync.Mutex
	sessions map[string]*workerSession
	// count mirrors len(sessions) atomically so the health endpoint never
	// waits on the session mutex: a worker mid-step must still answer
	// heartbeats, or a long step reads as a death.
	count atomic.Int64
}

// workerSession is one hosted session plus its incarnation-local metric
// accounting. emitted counts every byte the session has written since it
// was opened or resumed here; the buffer holds the bytes not yet drained
// into a step response.
type workerSession struct {
	sess    *serve.Session
	buf     bytes.Buffer
	emitted uint64
	// lastCkpt is the most recent periodic checkpoint captured by the hook,
	// waiting to ride out on the next step response.
	lastCkpt *checkpointInfo
	closed   bool
}

// Write is the session's metrics sink: into the drain buffer, counting.
func (ws *workerSession) Write(p []byte) (int, error) {
	ws.emitted += uint64(len(p))
	return ws.buf.Write(p)
}

// NewWorker returns an empty worker.
func NewWorker() *Worker {
	return &Worker{sessions: make(map[string]*workerSession)}
}

// ServeHTTP routes the protocol endpoints.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/" + protocolVersion + "/open":
		w.post(rw, r, w.handleOpen)
	case "/" + protocolVersion + "/resume":
		w.post(rw, r, w.handleResume)
	case "/" + protocolVersion + "/step":
		w.post(rw, r, w.handleStep)
	case "/" + protocolVersion + "/checkpoint":
		w.post(rw, r, w.handleCheckpoint)
	case "/" + protocolVersion + "/detach":
		w.post(rw, r, w.handleDetach)
	case "/" + protocolVersion + "/health":
		writeJSON(rw, http.StatusOK, healthResponse{Sessions: int(w.count.Load())})
	default:
		writeJSON(rw, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("cluster: unknown endpoint %s (this worker speaks %s)", r.URL.Path, protocolVersion)})
	}
}

// post reads the body and dispatches to an endpoint handler, mapping its
// error to a JSON error reply.
func (w *Worker) post(rw http.ResponseWriter, r *http.Request, h func(body []byte) (any, error)) {
	if r.Method != http.MethodPost {
		writeJSON(rw, http.StatusMethodNotAllowed, errorResponse{Error: "cluster: POST required"})
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp, err := h(body)
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(rw, http.StatusOK, resp)
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(v) //nolint:errcheck // nothing to do about a dead client
}

func (w *Worker) handleOpen(body []byte) (any, error) {
	var req openRequest
	if err := strictjson.Unmarshal(body, &req, "open"); err != nil {
		return nil, err
	}
	if req.Session == "" {
		return nil, fmt.Errorf("cluster: open: empty session name")
	}
	spec, err := serve.ParseSpec(req.Spec)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.sessions[req.Session]; ok {
		return nil, fmt.Errorf("cluster: session %q already open on this worker", req.Session)
	}
	ws := &workerSession{}
	sess, err := serve.Open(spec, ws)
	if err != nil {
		return nil, err
	}
	ws.sess = sess
	armCheckpointHook(ws, req.CheckpointEvery)
	w.sessions[req.Session] = ws
	w.count.Store(int64(len(w.sessions)))
	return openResponse{Batches: sess.Batches()}, nil
}

func (w *Worker) handleResume(body []byte) (any, error) {
	var req resumeRequest
	if err := strictjson.Unmarshal(body, &req, "resume"); err != nil {
		return nil, err
	}
	if req.Session == "" {
		return nil, fmt.Errorf("cluster: resume: empty session name")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.sessions[req.Session]; ok {
		return nil, fmt.Errorf("cluster: session %q already open on this worker", req.Session)
	}
	ws := &workerSession{}
	sess, err := serve.Resume(bytes.NewReader(req.Checkpoint), ws)
	if err != nil {
		return nil, err
	}
	ws.sess = sess
	armCheckpointHook(ws, req.CheckpointEvery)
	w.sessions[req.Session] = ws
	w.count.Store(int64(len(w.sessions)))
	return openResponse{Batches: sess.Batches()}, nil
}

// armCheckpointHook registers the periodic-checkpoint hook: at every
// boundary it snapshots the document together with the session's position
// in its metric stream. The hook fires mid-Step, so emitted is read at the
// boundary — before any bytes the rest of the step will add.
func armCheckpointHook(ws *workerSession, every uint64) {
	if every == 0 {
		return
	}
	ws.sess.CheckpointEvery(every, func(doc []byte) error {
		ws.lastCkpt = &checkpointInfo{
			Batches: ws.sess.Batches(),
			Emitted: ws.emitted,
			Doc:     json.RawMessage(append([]byte(nil), doc...)),
		}
		return nil
	})
}

func (w *Worker) handleStep(body []byte) (any, error) {
	var req stepRequest
	if err := strictjson.Unmarshal(body, &req, "step"); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ws, ok := w.sessions[req.Session]
	if !ok {
		return nil, fmt.Errorf("cluster: no session %q on this worker", req.Session)
	}
	if ws.closed {
		return nil, fmt.Errorf("cluster: session %q already finished", req.Session)
	}
	for ws.sess.Batches() < req.Target && !ws.sess.Done() {
		n, err := ws.sess.Step(1)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
	}
	resp := stepResponse{Batches: ws.sess.Batches(), Done: ws.sess.Done()}
	if ws.sess.Done() {
		// Close here so the final records travel back in this response;
		// the coordinator never has to make a separate closing round-trip.
		if err := ws.sess.Close(); err != nil {
			return nil, err
		}
		ws.closed = true
		resp.Closed = true
	}
	if ws.buf.Len() > 0 {
		resp.Metrics = append([]byte(nil), ws.buf.Bytes()...)
		ws.buf.Reset()
	}
	resp.Checkpoint = ws.lastCkpt
	ws.lastCkpt = nil
	return resp, nil
}

func (w *Worker) handleCheckpoint(body []byte) (any, error) {
	var req checkpointRequest
	if err := strictjson.Unmarshal(body, &req, "checkpoint"); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ws, ok := w.sessions[req.Session]
	if !ok {
		return nil, fmt.Errorf("cluster: no session %q on this worker", req.Session)
	}
	if ws.closed {
		return nil, fmt.Errorf("cluster: session %q already finished", req.Session)
	}
	var doc bytes.Buffer
	if err := ws.sess.Checkpoint(&doc); err != nil {
		return nil, err
	}
	return checkpointInfo{
		Batches: ws.sess.Batches(),
		Emitted: ws.emitted,
		Doc:     json.RawMessage(doc.Bytes()),
	}, nil
}

func (w *Worker) handleDetach(body []byte) (any, error) {
	var req detachRequest
	if err := strictjson.Unmarshal(body, &req, "detach"); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ws, ok := w.sessions[req.Session]
	if !ok {
		return nil, fmt.Errorf("cluster: no session %q on this worker", req.Session)
	}
	ws.sess.Detach()
	delete(w.sessions, req.Session)
	w.count.Store(int64(len(w.sessions)))
	return detachResponse{Detached: true}, nil
}
