package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/strictjson"
	"repro/internal/telemetry"
)

// Worker hosts serving sessions behind the cluster protocol. It is an
// http.Handler: mount it on any listener and its URL is a worker address.
// The same type backs both the spawned `icgmm-cluster worker` process and
// the in-process workers the tests run.
//
// Sessions are single-goroutine; the worker serializes all session-touching
// requests behind one mutex, so a coordinator may issue requests for
// different sessions on the same worker concurrently and they simply queue.
type Worker struct {
	mu       sync.Mutex
	sessions map[string]*workerSession
	// count mirrors len(sessions) atomically so the health endpoint never
	// waits on the session mutex: a worker mid-step must still answer
	// heartbeats, or a long step reads as a death.
	count atomic.Int64
	// reg is the worker's telemetry registry: session progress, snapshots
	// and event counters, published at batch boundaries. The health endpoint
	// and the debug endpoints (/metrics, /status, /debug/pprof) read only
	// it, which is what keeps them independent of the session mutex.
	reg   *telemetry.Registry
	debug http.Handler
}

// workerSession is one hosted session plus its incarnation-local metric
// accounting. emitted counts every byte the session has written since it
// was opened or resumed here; the buffer holds the bytes not yet drained
// into a step response.
type workerSession struct {
	sess    *serve.Session
	buf     bytes.Buffer
	emitted uint64
	// lastCkpt is the most recent periodic checkpoint captured by the hook,
	// waiting to ride out on the next step response.
	lastCkpt *checkpointInfo
	closed   bool
	// lastPub is when the session's full snapshot was last published to the
	// telemetry registry. Snapshots sort retained histogram samples, so
	// publishing is time-gated (snapshotMinGap) rather than per-step.
	lastPub time.Time
}

// snapshotMinGap is the minimum wall-clock spacing between full snapshot
// publications for one session. Cheap progress counters publish every step
// regardless.
const snapshotMinGap = 500 * time.Millisecond

// Write is the session's metrics sink: into the drain buffer, counting.
func (ws *workerSession) Write(p []byte) (int, error) {
	ws.emitted += uint64(len(p))
	return ws.buf.Write(p)
}

// NewWorker returns an empty worker.
func NewWorker() *Worker {
	reg := telemetry.NewRegistry()
	return &Worker{
		sessions: make(map[string]*workerSession),
		reg:      reg,
		debug:    telemetry.NewHandler(reg),
	}
}

// Registry exposes the worker's telemetry registry (read-side state the
// debug endpoints serve); embedding callers can scrape it directly.
func (w *Worker) Registry() *telemetry.Registry { return w.reg }

// ServeHTTP routes the protocol endpoints; everything outside /v1/ goes to
// the telemetry debug handler (/metrics, /status, /debug/pprof/).
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/" + protocolVersion + "/open":
		w.post(rw, r, w.handleOpen)
	case "/" + protocolVersion + "/resume":
		w.post(rw, r, w.handleResume)
	case "/" + protocolVersion + "/step":
		w.post(rw, r, w.handleStep)
	case "/" + protocolVersion + "/checkpoint":
		w.post(rw, r, w.handleCheckpoint)
	case "/" + protocolVersion + "/detach":
		w.post(rw, r, w.handleDetach)
	case "/" + protocolVersion + "/health":
		writeJSON(rw, http.StatusOK, w.health())
	default:
		if !strings.HasPrefix(r.URL.Path, "/"+protocolVersion+"/") {
			w.debug.ServeHTTP(rw, r)
			return
		}
		writeJSON(rw, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("cluster: unknown endpoint %s (this worker speaks %s)", r.URL.Path, protocolVersion)})
	}
}

// health assembles the heartbeat reply from the telemetry registry alone:
// no session mutex, so a worker mid-step (which can hold the mutex for a
// long refit) still answers within the prober's deadline.
func (w *Worker) health() healthResponse {
	resp := healthResponse{Sessions: int(w.count.Load())}
	st := w.reg.Status()
	for i := range st.Sessions {
		s := &st.Sessions[i]
		resp.Detail = append(resp.Detail, sessionHealth{
			Session:             s.Name,
			Batches:             s.Batches,
			Done:                s.Done,
			LastCheckpointBatch: s.LastCheckpointBatch,
		})
	}
	return resp
}

// post reads the body and dispatches to an endpoint handler, mapping its
// error to a JSON error reply.
func (w *Worker) post(rw http.ResponseWriter, r *http.Request, h func(body []byte) (any, error)) {
	if r.Method != http.MethodPost {
		writeJSON(rw, http.StatusMethodNotAllowed, errorResponse{Error: "cluster: POST required"})
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp, err := h(body)
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(rw, http.StatusOK, resp)
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(v) //nolint:errcheck // nothing to do about a dead client
}

func (w *Worker) handleOpen(body []byte) (any, error) {
	var req openRequest
	if err := strictjson.Unmarshal(body, &req, "open"); err != nil {
		return nil, err
	}
	if req.Session == "" {
		return nil, fmt.Errorf("cluster: open: empty session name")
	}
	spec, err := serve.ParseSpec(req.Spec)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.sessions[req.Session]; ok {
		return nil, fmt.Errorf("cluster: session %q already open on this worker", req.Session)
	}
	ws := &workerSession{}
	sess, err := serve.Open(spec, ws)
	if err != nil {
		return nil, err
	}
	ws.sess = sess
	w.adopt(req.Session, ws, req.CheckpointEvery)
	return openResponse{Batches: sess.Batches()}, nil
}

func (w *Worker) handleResume(body []byte) (any, error) {
	var req resumeRequest
	if err := strictjson.Unmarshal(body, &req, "resume"); err != nil {
		return nil, err
	}
	if req.Session == "" {
		return nil, fmt.Errorf("cluster: resume: empty session name")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.sessions[req.Session]; ok {
		return nil, fmt.Errorf("cluster: session %q already open on this worker", req.Session)
	}
	ws := &workerSession{}
	sess, err := serve.Resume(bytes.NewReader(req.Checkpoint), ws)
	if err != nil {
		return nil, err
	}
	ws.sess = sess
	w.adopt(req.Session, ws, req.CheckpointEvery)
	return openResponse{Batches: sess.Batches()}, nil
}

// adopt is the shared tail of open and resume: arm the periodic-checkpoint
// hook, wire the session's event observer into the telemetry registry,
// publish its starting position, and register it. Caller holds w.mu.
func (w *Worker) adopt(name string, ws *workerSession, every uint64) {
	w.armCheckpointHook(name, ws, every)
	ws.sess.Observe(telemetry.SessionObserver(w.reg, nil, name))
	w.reg.PublishProgress(name, ws.sess.Batches(), false)
	w.sessions[name] = ws
	w.count.Store(int64(len(w.sessions)))
}

// armCheckpointHook registers the periodic-checkpoint hook: at every
// boundary it snapshots the document together with the session's position
// in its metric stream. The hook fires mid-Step, so emitted is read at the
// boundary — before any bytes the rest of the step will add.
func (w *Worker) armCheckpointHook(name string, ws *workerSession, every uint64) {
	if every == 0 {
		return
	}
	ws.sess.CheckpointEvery(every, func(doc []byte) error {
		ws.lastCkpt = &checkpointInfo{
			Batches: ws.sess.Batches(),
			Emitted: ws.emitted,
			Doc:     json.RawMessage(append([]byte(nil), doc...)),
		}
		w.reg.RecordCheckpoint(name, ws.sess.Batches())
		return nil
	})
}

func (w *Worker) handleStep(body []byte) (any, error) {
	var req stepRequest
	if err := strictjson.Unmarshal(body, &req, "step"); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ws, ok := w.sessions[req.Session]
	if !ok {
		return nil, fmt.Errorf("cluster: no session %q on this worker", req.Session)
	}
	if ws.closed {
		return nil, fmt.Errorf("cluster: session %q already finished", req.Session)
	}
	for ws.sess.Batches() < req.Target && !ws.sess.Done() {
		n, err := ws.sess.Step(1)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
	}
	resp := stepResponse{Batches: ws.sess.Batches(), Done: ws.sess.Done()}
	if ws.sess.Done() {
		// Close here so the final records travel back in this response;
		// the coordinator never has to make a separate closing round-trip.
		if err := ws.sess.Close(); err != nil {
			return nil, err
		}
		ws.closed = true
		resp.Closed = true
	}
	// Telemetry: cheap progress counters every step; the full snapshot
	// (which sorts retained histogram samples) only when snapshotMinGap has
	// passed or the session just finished. Both happen at a batch boundary
	// on the session's own goroutine, so Metrics() is legal, and neither
	// writes to the metric stream.
	w.reg.PublishProgress(req.Session, ws.sess.Batches(), ws.closed)
	if now := time.Now(); ws.closed || now.Sub(ws.lastPub) >= snapshotMinGap {
		ws.lastPub = now
		w.reg.PublishSnapshot(req.Session, ws.sess.Metrics())
	}
	if ws.buf.Len() > 0 {
		resp.Metrics = append([]byte(nil), ws.buf.Bytes()...)
		ws.buf.Reset()
	}
	resp.Checkpoint = ws.lastCkpt
	ws.lastCkpt = nil
	return resp, nil
}

func (w *Worker) handleCheckpoint(body []byte) (any, error) {
	var req checkpointRequest
	if err := strictjson.Unmarshal(body, &req, "checkpoint"); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ws, ok := w.sessions[req.Session]
	if !ok {
		return nil, fmt.Errorf("cluster: no session %q on this worker", req.Session)
	}
	if ws.closed {
		return nil, fmt.Errorf("cluster: session %q already finished", req.Session)
	}
	var doc bytes.Buffer
	if err := ws.sess.Checkpoint(&doc); err != nil {
		return nil, err
	}
	w.reg.RecordCheckpoint(req.Session, ws.sess.Batches())
	return checkpointInfo{
		Batches: ws.sess.Batches(),
		Emitted: ws.emitted,
		Doc:     json.RawMessage(doc.Bytes()),
	}, nil
}

func (w *Worker) handleDetach(body []byte) (any, error) {
	var req detachRequest
	if err := strictjson.Unmarshal(body, &req, "detach"); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ws, ok := w.sessions[req.Session]
	if !ok {
		return nil, fmt.Errorf("cluster: no session %q on this worker", req.Session)
	}
	ws.sess.Detach()
	delete(w.sessions, req.Session)
	w.count.Store(int64(len(w.sessions)))
	// The session's live state now belongs to whoever resumed it; keep this
	// worker's telemetry to sessions it actually hosts.
	w.reg.Remove(req.Session)
	return detachResponse{Detached: true}, nil
}
