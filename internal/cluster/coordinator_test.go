package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/internal/serve"
)

// goldenFaults is the standing fault schedule for the golden tests: the
// tenants session is live-migrated from worker 0 to worker 1 after batch 6,
// then worker 1 — by that point hosting both sessions — is killed after
// batch 10, forcing the coordinator to detect the death and replay both
// sessions from their batch-8 periodic checkpoints.
const goldenFaults = `[
 {"kind": "migrate", "after": 6, "session": "tenants", "worker": 1},
 {"kind": "kill", "after": 10, "worker": 1}
]`

// uninterruptedStream runs a serve spec document to completion in-process
// and returns its full metric stream — the golden every cluster run is
// diffed against.
func uninterruptedStream(t *testing.T, doc []byte) []byte {
	t.Helper()
	spec, err := serve.ParseSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sess, err := serve.Open(spec, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// runCluster executes a cluster spec document on in-process workers,
// returning the per-session committed streams, the merged stream, and the
// report.
func runCluster(t *testing.T, doc string) (map[string]*bytes.Buffer, []byte, *Report) {
	t.Helper()
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	var launcher LocalLauncher
	t.Cleanup(launcher.Close)
	perSession := make(map[string]*bytes.Buffer)
	var merged bytes.Buffer
	rep, err := Run(spec, &launcher, Options{
		Merged: &merged,
		SessionWriter: func(name string) io.Writer {
			buf := &bytes.Buffer{}
			perSession[name] = buf
			return buf
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return perSession, merged.Bytes(), rep
}

// TestClusterGoldenAcrossFaults is the acceptance test: a 2-session run on
// 2 workers, with one forced live migration and one forced worker kill (the
// kill taking down both sessions), must commit per-session metric streams
// byte-identical to uninterrupted single-process runs of the same serve
// specs — at shards 1, 2 and 8. The byte-identical-resume contract makes
// the whole cluster failure model a byte-diff.
func TestClusterGoldenAcrossFaults(t *testing.T) {
	t.Parallel()
	for _, shards := range []int{1, 2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			t.Parallel()
			perSession, merged, rep := runCluster(t, clusterSpecJSON(shards, goldenFaults))

			// Per-session streams must match the uninterrupted goldens.
			goldens := map[string][]byte{
				"tenants": uninterruptedStream(t, []byte(tenantSpecJSON(shards))),
				"stream":  uninterruptedStream(t, []byte(serveSpecJSON(shards, 11, 12288))),
			}
			for name, want := range goldens {
				got, ok := perSession[name]
				if !ok {
					t.Fatalf("no per-session stream for %q", name)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Errorf("session %q: cluster stream diverges from uninterrupted run (%d vs %d bytes)",
						name, got.Len(), len(want))
				}
			}

			// The merged stream, filtered by session and unwrapped, must
			// reproduce each per-session stream exactly.
			unwrapped := map[string]*bytes.Buffer{}
			sc := bufio.NewScanner(bytes.NewReader(merged))
			sc.Buffer(nil, 1<<20)
			for sc.Scan() {
				var rec MergedRecord
				if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
					t.Fatalf("merged line: %v", err)
				}
				buf := unwrapped[rec.Session]
				if buf == nil {
					buf = &bytes.Buffer{}
					unwrapped[rec.Session] = buf
				}
				buf.Write(rec.Record)
				buf.WriteByte('\n')
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			for name, want := range goldens {
				if got := unwrapped[name]; got == nil || !bytes.Equal(got.Bytes(), want) {
					t.Errorf("session %q: unwrapped merged stream diverges from uninterrupted run", name)
				}
			}

			// The faults must actually have happened.
			if rep.WorkerRestarts != 1 {
				t.Errorf("worker restarts = %d, want 1", rep.WorkerRestarts)
			}
			byName := map[string]SessionReport{}
			for _, s := range rep.Sessions {
				byName[s.Name] = s
			}
			if s := byName["tenants"]; s.Migrations != 1 || s.Replays != 1 || s.Batches != 16 {
				t.Errorf("tenants report = %+v, want 1 migration, 1 replay, 16 batches", s)
			}
			if s := byName["stream"]; s.Migrations != 0 || s.Replays != 1 || s.Batches != 12 {
				t.Errorf("stream report = %+v, want 1 replay, 12 batches", s)
			}
		})
	}
}

// TestClusterMergedDeterminism: the merged stream is a pure function of the
// cluster spec, fault schedule included — two runs of the same document
// produce byte-identical merged output.
func TestClusterMergedDeterminism(t *testing.T) {
	t.Parallel()
	doc := clusterSpecJSON(2, goldenFaults)
	_, merged1, _ := runCluster(t, doc)
	_, merged2, _ := runCluster(t, doc)
	if !bytes.Equal(merged1, merged2) {
		t.Error("merged streams of two identical runs differ")
	}
	if len(merged1) == 0 {
		t.Error("merged stream empty")
	}
}

// TestClusterNoFaults: the undisturbed path — sessions of different lengths
// finish cleanly, streams match, nothing restarts.
func TestClusterNoFaults(t *testing.T) {
	t.Parallel()
	perSession, _, rep := runCluster(t, clusterSpecJSON(1, ""))
	if rep.WorkerRestarts != 0 {
		t.Errorf("worker restarts = %d on a fault-free run", rep.WorkerRestarts)
	}
	for _, s := range rep.Sessions {
		if s.Migrations != 0 || s.Replays != 0 {
			t.Errorf("session %q: %d migrations, %d replays on a fault-free run", s.Name, s.Migrations, s.Replays)
		}
	}
	want := uninterruptedStream(t, []byte(serveSpecJSON(1, 11, 12288)))
	if got := perSession["stream"]; !bytes.Equal(got.Bytes(), want) {
		t.Errorf("fault-free stream diverges (%d vs %d bytes)", got.Len(), len(want))
	}
}

// TestClusterKillBeforeFirstCheckpoint: a worker killed before any periodic
// checkpoint forces the full-replay path — reopen from the spec, retraining
// included — and the stream must still come out byte-identical.
func TestClusterKillBeforeFirstCheckpoint(t *testing.T) {
	t.Parallel()
	doc := fmt.Sprintf(`{
	 "version": 1, "workers": 2, "checkpoint_every": 8,
	 "sessions": [{"name": "solo", "spec": %s}],
	 "faults": [{"kind": "kill", "after": 3, "worker": 0}]
	}`, serveSpecJSON(1, 21, 6144))
	perSession, _, rep := runCluster(t, doc)
	if rep.WorkerRestarts != 1 || rep.Sessions[0].Replays != 1 {
		t.Errorf("report = %+v, want 1 restart / 1 replay", rep)
	}
	want := uninterruptedStream(t, []byte(serveSpecJSON(1, 21, 6144)))
	if got := perSession["solo"]; !bytes.Equal(got.Bytes(), want) {
		t.Errorf("from-scratch replay diverges (%d vs %d bytes)", got.Len(), len(want))
	}
}
