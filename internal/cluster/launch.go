package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"sync"
)

// Launcher spawns workers. The coordinator only ever sees the Handle — a
// URL plus liveness and kill hooks — so the same coordinator drives
// separate processes (ProcLauncher) and in-process test workers
// (LocalLauncher) unchanged.
type Launcher interface {
	// Launch starts one worker and returns once it is reachable.
	Launch(name string) (*Handle, error)
}

// Handle is a running worker as the coordinator sees it.
type Handle struct {
	// Name labels the worker in logs and reports.
	Name string
	// URL is the worker's protocol base address.
	URL string
	// Done is closed when the worker terminates for any reason — the
	// process-exit leg of death detection.
	Done <-chan struct{}
	kill func() error
}

// Kill terminates the worker. Idempotent in effect: killing an
// already-dead worker is not an error the coordinator cares about.
func (h *Handle) Kill() error { return h.kill() }

// ProcLauncher spawns each worker as a child process running the
// `icgmm-cluster worker` entrypoint, learning its address from the
// "ICGMM-WORKER LISTEN <addr>" handshake line the worker prints once its
// listener is bound.
type ProcLauncher struct {
	// Argv is the worker command line, e.g.
	// []string{"/path/to/icgmm-cluster", "worker"}. The worker must bind an
	// ephemeral localhost port and print the handshake line on stdout.
	Argv []string
}

// Launch starts the process and waits for the handshake.
func (l *ProcLauncher) Launch(name string) (*Handle, error) {
	if len(l.Argv) == 0 {
		return nil, fmt.Errorf("cluster: ProcLauncher has no worker command")
	}
	cmd := exec.Command(l.Argv[0], l.Argv[1:]...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	// Scan stdout for the handshake. The worker prints nothing before it;
	// anything after it is the worker's business.
	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, handshakePrefix) {
			addr = strings.TrimSpace(strings.TrimPrefix(line, handshakePrefix))
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill() //nolint:errcheck // already failing
		cmd.Wait()         //nolint:errcheck
		return nil, fmt.Errorf("cluster: worker %s exited without handshake", name)
	}
	done := make(chan struct{})
	go func() {
		// Drain the rest of stdout so the child never blocks on a full pipe,
		// then reap it.
		for sc.Scan() {
		}
		cmd.Wait() //nolint:errcheck // exit status is not liveness; Done is
		close(done)
	}()
	return &Handle{
		Name: name,
		URL:  "http://" + addr,
		Done: done,
		kill: func() error { return cmd.Process.Kill() },
	}, nil
}

// ServeWorker is the body of a spawned worker process: bind an ephemeral
// loopback listener, print the handshake line ProcLauncher scans for on
// announce, and serve the cluster protocol until the process is killed. It
// only returns on a serve error.
func ServeWorker(announce io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Fprintf(announce, "%s%s\n", handshakePrefix, ln.Addr())
	return http.Serve(ln, NewWorker())
}

// LocalLauncher runs workers in-process: each Launch binds an ephemeral
// localhost listener and serves a fresh Worker on it. Kill force-closes the
// server and every open connection, which is as abrupt as a SIGKILL from
// the coordinator's point of view — in-flight requests fail with transport
// errors and the worker's state is unreachable forever. Tests use it to
// exercise the full protocol, fault handling included, without spawning
// processes.
type LocalLauncher struct {
	mu      sync.Mutex
	handles []*Handle
}

// Launch starts an in-process worker.
func (l *LocalLauncher) Launch(name string) (*Handle, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewWorker()}
	done := make(chan struct{})
	go func() {
		srv.Serve(ln) //nolint:errcheck // Serve always returns non-nil on Close
		close(done)
	}()
	h := &Handle{
		Name: name,
		URL:  "http://" + ln.Addr().String(),
		Done: done,
		kill: srv.Close,
	}
	l.mu.Lock()
	l.handles = append(l.handles, h)
	l.mu.Unlock()
	return h, nil
}

// Close kills every worker this launcher ever started (test cleanup).
func (l *LocalLauncher) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, h := range l.handles {
		h.Kill() //nolint:errcheck // teardown
	}
}
