package engine

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	t.Parallel()
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 200} {
		got, err := Map(NewRunner(workers), items, func(i, item int) (int, error) {
			return item * item, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapNilRunnerIsSequential(t *testing.T) {
	t.Parallel()
	var maxInFlight, inFlight atomic.Int64
	_, err := Map[int, int](nil, []int{1, 2, 3, 4}, func(i, item int) (int, error) {
		if n := inFlight.Add(1); n > maxInFlight.Load() {
			maxInFlight.Store(n)
		}
		defer inFlight.Add(-1)
		return item, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInFlight.Load() != 1 {
		t.Errorf("nil runner ran %d tasks concurrently", maxInFlight.Load())
	}
}

func TestMapConcurrencyBound(t *testing.T) {
	t.Parallel()
	const workers = 3
	var maxInFlight, inFlight atomic.Int64
	var mu sync.Mutex
	_, err := Map(NewRunner(workers), make([]struct{}, 64), func(i int, _ struct{}) (int, error) {
		n := inFlight.Add(1)
		mu.Lock()
		if n > maxInFlight.Load() {
			maxInFlight.Store(n)
		}
		mu.Unlock()
		defer inFlight.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := maxInFlight.Load(); got > workers {
		t.Errorf("observed %d concurrent tasks, want <= %d", got, workers)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	t.Parallel()
	items := make([]int, 50)
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(NewRunner(workers), items, func(i, _ int) (int, error) {
			if i%7 == 3 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return 0, nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Errorf("workers=%d: err = %v, want task 3 failed", workers, err)
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	t.Parallel()
	want := errors.New("boom")
	err := ForEach(NewRunner(4), []int{0, 1, 2}, func(i, _ int) error {
		if i == 0 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Errorf("err = %v, want %v", err, want)
	}
}

func TestRunnerWorkers(t *testing.T) {
	t.Parallel()
	if (*Runner)(nil).Workers() != 1 {
		t.Error("nil runner workers != 1")
	}
	if new(Runner).Workers() != 1 {
		t.Error("zero runner workers != 1")
	}
	if NewRunner(5).Workers() != 5 {
		t.Error("NewRunner(5) workers != 5")
	}
	if NewRunner(0).Workers() < 1 {
		t.Error("NewRunner(0) workers < 1")
	}
}

func TestOrderedEmitterStreamsInOrder(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	e := NewOrderedEmitter(&sb)
	e.Emit(2, "c")
	e.Emit(1, "b")
	if sb.String() != "" {
		t.Fatalf("premature flush: %q", sb.String())
	}
	e.Emit(0, "a")
	if sb.String() != "abc" {
		t.Fatalf("after index 0: %q, want abc", sb.String())
	}
	e.Emit(3, "d")
	if sb.String() != "abcd" {
		t.Fatalf("after index 3: %q, want abcd", sb.String())
	}
}

func TestOrderedEmitterFlush(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	e := NewOrderedEmitter(&sb)
	e.Emit(5, "f")
	e.Emit(3, "d")
	e.Flush()
	if sb.String() != "df" {
		t.Errorf("flush wrote %q, want df", sb.String())
	}
}

func TestOrderedEmitterNilWriter(t *testing.T) {
	t.Parallel()
	e := NewOrderedEmitter(nil)
	e.Emit(0, "x") // must not panic
	e.Flush()
	var nilEmitter *OrderedEmitter
	nilEmitter.Emit(0, "x")
	nilEmitter.Flush()
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	t.Parallel()
	// A task that mixes its derived seed must produce the same outputs for
	// any worker count: the canonical engine contract.
	run := func(workers int) []int64 {
		out, err := Map(NewRunner(workers), make([]struct{}, 64), func(i int, _ struct{}) (int64, error) {
			return DeriveSeed(42, uint64(i)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d diverged from sequential", w)
		}
	}
}
