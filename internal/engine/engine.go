// Package engine provides the parallel sharded experiment runner: a
// worker-pool Map over an indexed task list, deterministic per-task seed
// derivation, and the scenario-grid types behind the -grid flag.
//
// The design contract is bit-identical results regardless of worker count:
// tasks are identified by their index, outputs land in an index-ordered
// slice, per-task randomness derives from (base seed, task index) alone, and
// error selection is by lowest task index — so a grid run at -workers=1 and
// -workers=8 produces the same bytes.
package engine

import (
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Runner bounds the concurrency of experiment task fan-out. The zero value
// and nil both mean "sequential"; NewRunner(0) sizes the pool to
// runtime.GOMAXPROCS.
type Runner struct {
	workers int
}

// NewRunner builds a runner with the given worker count; workers <= 0 uses
// runtime.GOMAXPROCS(0), i.e. one worker per available core.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// Workers reports the concurrency bound (1 for a nil or zero runner).
func (r *Runner) Workers() int {
	if r == nil || r.workers < 1 {
		return 1
	}
	return r.workers
}

// Extra worker goroutines are budgeted process-wide: nested Map calls
// (a grid fanning out comparisons that fan out threshold sweeps) would
// otherwise multiply their worker counts into far more runnable goroutines
// than cores. Each Map runs tasks inline on its calling goroutine and only
// spawns extra workers while the global budget — one per core — has room,
// so total extra concurrency stays bounded no matter how deep fan-outs
// nest, and a starved Map still progresses (inline) instead of
// deadlocking.
var (
	extraWorkers    atomic.Int64
	maxExtraWorkers = int64(runtime.GOMAXPROCS(0))
)

// Map runs fn over every item on the runner's worker pool and returns the
// results in item order. fn receives the item index and the item; it must be
// safe for concurrent invocation across distinct indices.
//
// Concurrency is bounded twice: per call by the runner's worker count, and
// process-wide by the extra-worker budget above. Neither bound affects
// results — only wall clock.
//
// On failure Map returns the error of the lowest-index failing task — the
// same error a sequential loop would surface — and skips tasks beyond that
// index (tasks below it always complete, preserving the sequential
// contract).
func Map[T, R any](r *Runner, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	workers := r.Workers()
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i, item := range items {
			v, err := fn(i, item)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var next atomic.Int64
	// errIdx is the lowest task index that failed so far; len(items) is the
	// "none" sentinel.
	errIdx := int64(len(items))
	var errVal error
	var errMu sync.Mutex

	loadErrIdx := func() int64 {
		errMu.Lock()
		defer errMu.Unlock()
		return errIdx
	}
	runTasks := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(len(items)) {
				return
			}
			if i > loadErrIdx() {
				// A lower-index task already failed; this task's result
				// can never be observed.
				continue
			}
			v, err := fn(int(i), items[i])
			if err != nil {
				errMu.Lock()
				if i < errIdx {
					errIdx, errVal = i, err
				}
				errMu.Unlock()
				continue
			}
			out[i] = v
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers-1; w++ {
		if extraWorkers.Add(1) > maxExtraWorkers {
			extraWorkers.Add(-1)
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer extraWorkers.Add(-1)
			runTasks()
		}()
	}
	runTasks()
	wg.Wait()

	if errVal != nil {
		return nil, errVal
	}
	return out, nil
}

// ForEach is Map without results.
func ForEach[T any](r *Runner, items []T, fn func(i int, item T) error) error {
	_, err := Map(r, items, func(i int, item T) (struct{}, error) {
		return struct{}{}, fn(i, item)
	})
	return err
}

// OrderedEmitter serializes per-task progress output into task-index order:
// each task Emits its lines under its own index, and the emitter writes the
// longest contiguous prefix as it completes. With a nil writer every call is
// a no-op, so callers can pass their (possibly nil) progress writer through
// unconditionally.
type OrderedEmitter struct {
	w    io.Writer
	mu   sync.Mutex
	next int
	buf  map[int]string
}

// NewOrderedEmitter wraps w (which may be nil).
func NewOrderedEmitter(w io.Writer) *OrderedEmitter {
	return &OrderedEmitter{w: w, buf: make(map[int]string)}
}

// Emit records task i's output and flushes everything up to the first
// still-running task.
func (e *OrderedEmitter) Emit(i int, s string) {
	if e == nil || e.w == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.buf[i] = s
	for {
		s, ok := e.buf[e.next]
		if !ok {
			return
		}
		delete(e.buf, e.next)
		e.next++
		io.WriteString(e.w, s)
	}
}

// Flush writes any buffered output that never became contiguous (tasks
// skipped after an error), in index order.
func (e *OrderedEmitter) Flush() {
	if e == nil || e.w == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	idxs := make([]int, 0, len(e.buf))
	for i := range e.buf {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		io.WriteString(e.w, e.buf[i])
		delete(e.buf, i)
	}
}
