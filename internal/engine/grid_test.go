package engine

import (
	"strings"
	"testing"
)

func TestGridExpandCrossProduct(t *testing.T) {
	t.Parallel()
	g := Grid{
		Workloads: []string{"dlrm", "stream"},
		Policies:  []string{"lru", "gmm-caching-eviction"},
		CacheMB:   []int{64, 128},
		Seeds:     []int64{1, 2, 3},
	}
	scens, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 2*2*2*3 {
		t.Fatalf("expanded %d scenarios, want 24", len(scens))
	}
	for i, s := range scens {
		if s.Index != i {
			t.Errorf("scenario %d has index %d", i, s.Index)
		}
		if s.Requests != 600_000 || s.Ways != 8 || s.K != 256 || !s.Overlap {
			t.Errorf("scenario %d defaults wrong: %+v", i, s)
		}
	}
	// Deterministic order: workload outermost, policy innermost.
	if scens[0].Workload != "dlrm" || scens[0].Policy != "lru" ||
		scens[1].Policy != "gmm-caching-eviction" {
		t.Errorf("unexpected expansion order: %+v %+v", scens[0], scens[1])
	}
}

func TestGridExpandDefaults(t *testing.T) {
	t.Parallel()
	scens, err := Grid{Workloads: []string{"heap"}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != len(DefaultGridPolicies) {
		t.Fatalf("expanded %d scenarios, want %d", len(scens), len(DefaultGridPolicies))
	}
	if scens[0].Seed != DeriveSeed(0, 0) {
		t.Errorf("default seed = %d, want derived %d", scens[0].Seed, DeriveSeed(0, 0))
	}
}

func TestGridExpandDerivedSeeds(t *testing.T) {
	t.Parallel()
	g := Grid{Workloads: []string{"heap"}, Policies: []string{"lru"}, NumSeeds: 3, BaseSeed: 9}
	scens, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 3 {
		t.Fatalf("expanded %d scenarios, want 3", len(scens))
	}
	for i, s := range scens {
		if want := DeriveSeed(9, uint64(i)); s.Seed != want {
			t.Errorf("scenario %d seed = %d, want %d", i, s.Seed, want)
		}
	}
}

func TestGridExpandRejectsEmptyWorkloads(t *testing.T) {
	t.Parallel()
	if _, err := (Grid{}).Expand(); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestGridExpandRejectsBadCache(t *testing.T) {
	t.Parallel()
	g := Grid{Workloads: []string{"heap"}, CacheMB: []int{-1}}
	if _, err := g.Expand(); err == nil {
		t.Error("negative cache size accepted")
	}
}

func TestParseGrid(t *testing.T) {
	t.Parallel()
	in := `{"workloads": ["dlrm"], "policies": ["lru"], "cache_mb": [32], "seeds": [5], "requests": 1000, "k": 8}`
	g, err := ParseGrid(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	scens, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 1 {
		t.Fatalf("expanded %d scenarios, want 1", len(scens))
	}
	s := scens[0]
	if s.Workload != "dlrm" || s.Policy != "lru" || s.CacheMB != 32 || s.Seed != 5 || s.Requests != 1000 || s.K != 8 {
		t.Errorf("scenario = %+v", s)
	}
}

func TestParseGridRejectsUnknownFields(t *testing.T) {
	t.Parallel()
	if _, err := ParseGrid(strings.NewReader(`{"workload": ["typo"]}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestScenarioLabel(t *testing.T) {
	t.Parallel()
	s := Scenario{Workload: "dlrm", Policy: "lru", CacheMB: 64, Seed: 3}
	for _, want := range []string{"dlrm", "lru", "64", "seed=3"} {
		if !strings.Contains(s.Label(), want) {
			t.Errorf("label %q missing %q", s.Label(), want)
		}
	}
}
