package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Scenario is one cell of the experiment grid: a (workload, policy,
// cache-config, seed) combination plus the trace length. The engine keeps it
// to plain values so grids serialize as JSON and expansion stays independent
// of the simulator packages; the experiments package maps a Scenario onto a
// core.Config and runs it.
type Scenario struct {
	// Index is the cell's position in the expanded grid, recorded so
	// results stay identifiable after filtering or re-ordering. (Seeds are
	// carried explicitly in Seed; when a grid derives them, Expand keys
	// DeriveSeed by seed-list position, not by cell index.)
	Index int `json:"index"`
	// Workload names the trace generator (see internal/workload).
	Workload string `json:"workload"`
	// Policy names the cache policy to simulate (lru, fifo, ...,
	// gmm-caching-eviction).
	Policy string `json:"policy"`
	// Requests is the trace length.
	Requests int `json:"requests"`
	// Seed drives the workload generator.
	Seed int64 `json:"seed"`
	// CacheMB and Ways set the DRAM cache geometry.
	CacheMB int `json:"cache_mb"`
	Ways    int `json:"ways"`
	// K is the GMM component count for GMM policies.
	K int `json:"k"`
	// Overlap mirrors core.Config.Overlap (dataflow overlap of inference
	// with SSD access).
	Overlap bool `json:"overlap"`
	// Quantized runs GMM inference through the fixed-point weight buffer.
	Quantized bool `json:"quantized"`
}

// Label renders the cell for progress lines and result tables.
func (s Scenario) Label() string {
	return fmt.Sprintf("%s/%s cache=%dMiB seed=%d", s.Workload, s.Policy, s.CacheMB, s.Seed)
}

// Grid declares an experiment sweep as the cross product
// workloads × policies × cache sizes × seeds. Zero-valued fields fall back
// to the paper's defaults, so a minimal grid file is just
// {"workloads": ["dlrm"]}.
type Grid struct {
	Workloads []string `json:"workloads"`
	// Policies defaults to the four Fig. 6 policies (lru plus the three GMM
	// strategies).
	Policies []string `json:"policies"`
	// CacheMB defaults to the paper's 64 MiB case study.
	CacheMB []int `json:"cache_mb"`
	// Ways defaults to 8.
	Ways int `json:"ways"`
	// Seeds lists explicit generator seeds. When empty, NumSeeds seeds are
	// derived from BaseSeed via DeriveSeed; NumSeeds 0 means one derived
	// seed.
	Seeds    []int64 `json:"seeds"`
	NumSeeds int     `json:"num_seeds"`
	BaseSeed int64   `json:"base_seed"`
	// Requests defaults to 600000, the laptop-friendly trace length.
	Requests int `json:"requests"`
	// K defaults to 256, the paper's deployed component count.
	K int `json:"k"`
	// NoOverlap serializes GMM inference after the SSD access.
	NoOverlap bool `json:"no_overlap"`
	// Quantized runs GMM inference through the fixed-point weight buffer.
	Quantized bool `json:"quantized"`
}

// DefaultGridPolicies is the Fig. 6 policy set a grid sweeps when none is
// given.
var DefaultGridPolicies = []string{
	"lru", "gmm-caching-only", "gmm-eviction-only", "gmm-caching-eviction",
}

// Expand materializes the cross product in deterministic order (workload
// outermost, then cache size, then seed, then policy) and assigns each cell
// its grid index.
func (g Grid) Expand() ([]Scenario, error) {
	if len(g.Workloads) == 0 {
		return nil, fmt.Errorf("engine: grid needs at least one workload")
	}
	policies := g.Policies
	if len(policies) == 0 {
		policies = DefaultGridPolicies
	}
	cacheMB := g.CacheMB
	if len(cacheMB) == 0 {
		cacheMB = []int{64}
	}
	ways := g.Ways
	if ways == 0 {
		ways = 8
	}
	requests := g.Requests
	if requests == 0 {
		requests = 600_000
	}
	k := g.K
	if k == 0 {
		k = 256
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		n := g.NumSeeds
		if n <= 0 {
			n = 1
		}
		seeds = make([]int64, n)
		for i := range seeds {
			seeds[i] = DeriveSeed(g.BaseSeed, uint64(i))
		}
	}

	out := make([]Scenario, 0, len(g.Workloads)*len(cacheMB)*len(seeds)*len(policies))
	for _, w := range g.Workloads {
		for _, mb := range cacheMB {
			if mb <= 0 {
				return nil, fmt.Errorf("engine: non-positive cache size %d MiB", mb)
			}
			for _, seed := range seeds {
				for _, pol := range policies {
					out = append(out, Scenario{
						Index:     len(out),
						Workload:  w,
						Policy:    pol,
						Requests:  requests,
						Seed:      seed,
						CacheMB:   mb,
						Ways:      ways,
						K:         k,
						Overlap:   !g.NoOverlap,
						Quantized: g.Quantized,
					})
				}
			}
		}
	}
	return out, nil
}

// ParseGrid decodes a grid declaration from JSON, rejecting unknown fields
// so typos in sweep files fail loudly instead of silently running the
// default.
func ParseGrid(r io.Reader) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("engine: parsing grid: %w", err)
	}
	return g, nil
}

// LoadGrid reads and parses a grid file.
func LoadGrid(path string) (Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return Grid{}, err
	}
	defer f.Close()
	return ParseGrid(f)
}
