package engine

// SplitMix64 advances the splitmix64 generator one step from state x and
// returns the mixed output. It is the standard seeding PRNG (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014): a single
// Weyl-sequence increment followed by a finalizing mix, giving a bijective,
// well-distributed mapping from consecutive states.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed maps (base seed, task index) to an independent per-task seed.
// Tasks seeded this way draw from statistically independent streams while
// staying a pure function of their grid position, which is what makes
// sharded runs bit-identical regardless of worker count or completion
// order.
//
// The derived seed is forced non-negative because several stdlib consumers
// (rand.NewZipf via rand.NewSource in older idioms) treat negative seeds
// inconsistently; losing one bit costs nothing for seeding purposes.
func DeriveSeed(base int64, index uint64) int64 {
	z := SplitMix64(uint64(base) ^ SplitMix64(index))
	return int64(z &^ (1 << 63))
}
