package engine

import "testing"

func TestSplitMix64KnownVectors(t *testing.T) {
	t.Parallel()
	// Outputs of the canonical splitmix64 mix for states 0, 1, 2 (state 0
	// matches the first output of Vigna's reference stream seeded with 0).
	// Pinned so the derivation can never drift silently: changing it would
	// change every derived-seed grid.
	want := map[uint64]uint64{
		0: 0xe220a8397b1dcdaf,
		1: 0x910a2dec89025cc1,
		2: 0x975835de1c9756ce,
	}
	for in, out := range want {
		if got := SplitMix64(in); got != out {
			t.Errorf("SplitMix64(%d) = %#x, want %#x", in, got, out)
		}
	}
}

func TestDeriveSeedStable(t *testing.T) {
	t.Parallel()
	// The derivation is part of the experiment-reproducibility contract:
	// changing it silently would change every derived-seed grid. Pin a few
	// values.
	if a, b := DeriveSeed(1, 0), DeriveSeed(1, 0); a != b {
		t.Fatalf("DeriveSeed not deterministic: %d vs %d", a, b)
	}
	if DeriveSeed(1, 0) == DeriveSeed(1, 1) {
		t.Error("adjacent indices collide")
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("distinct bases collide")
	}
}

func TestDeriveSeedNonNegative(t *testing.T) {
	t.Parallel()
	for base := int64(-3); base <= 3; base++ {
		for idx := uint64(0); idx < 1000; idx++ {
			if s := DeriveSeed(base, idx); s < 0 {
				t.Fatalf("DeriveSeed(%d, %d) = %d < 0", base, idx, s)
			}
		}
	}
}

func TestDeriveSeedSpread(t *testing.T) {
	t.Parallel()
	// Derived seeds across a realistic grid must be collision-free.
	seen := make(map[int64]bool)
	for idx := uint64(0); idx < 4096; idx++ {
		s := DeriveSeed(7, idx)
		if seen[s] {
			t.Fatalf("collision at index %d", idx)
		}
		seen[s] = true
	}
}
