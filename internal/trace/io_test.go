package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func randomTrace(n int, seed int64) Trace {
	r := rand.New(rand.NewSource(seed))
	tr := make(Trace, n)
	for i := range tr {
		op := Read
		if r.Intn(4) == 0 {
			op = Write
		}
		tr[i] = Record{Op: op, Addr: r.Uint64() >> 20, Time: uint64(i)}
	}
	return tr
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := randomTrace(1000, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("round trip length %d, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], tr[i])
		}
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty round trip produced %d records", len(got))
	}
}

func TestBinaryBadMagic(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("NOTATRACEFILE...."))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	tr := randomTrace(10, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("truncated file decoded without error")
	}
}

func TestBinaryInvalidOp(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Trace{{Op: Read, Addr: 1, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[16] = 99 // first record's op byte (8 magic + 8 count)
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Error("invalid op decoded without error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := randomTrace(200, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "op,addr,time\n") {
		t.Error("CSV missing header")
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("round trip length %d, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], tr[i])
		}
	}
}

func TestCSVTolerantParsing(t *testing.T) {
	in := "op,addr,time\nR,4096,0\n\nW, 8192 , 1\nr,100,2\n1,200,3\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d records, want 4", len(got))
	}
	if got[0] != (Record{Op: Read, Addr: 4096, Time: 0}) {
		t.Errorf("record 0 = %+v", got[0])
	}
	if got[1].Op != Write || got[1].Addr != 8192 {
		t.Errorf("record 1 = %+v", got[1])
	}
	if got[3].Op != Write {
		t.Errorf("numeric op form not accepted: %+v", got[3])
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"X,1,2\n",
		"R,notanumber,2\n",
		"R,1\n",
		"R,1,nan\n",
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q parsed without error", in)
		}
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Error("Op string forms wrong")
	}
	r := Record{Op: Write, Addr: 123, Time: 456}
	if r.String() != "W,123,456" {
		t.Errorf("Record.String = %q", r.String())
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := Trace{
		{Op: Read, Addr: 0},
		{Op: Read, Addr: PageSize},
		{Op: Read, Addr: PageSize + 8},
	}
	tr.Stamp()
	if tr[2].Time != 2 {
		t.Error("Stamp did not assign indices")
	}
	pages := tr.Pages()
	if len(pages) != 2 {
		t.Errorf("Pages = %d distinct, want 2", len(pages))
	}
	cl := tr.Clone()
	cl[0].Addr = 999
	if tr[0].Addr == 999 {
		t.Error("Clone aliases original")
	}
}
