package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The binary trace container starts with a magic header so truncated or
// foreign files fail fast instead of decoding garbage.
var binaryMagic = [8]byte{'I', 'C', 'G', 'M', 'M', 'T', 'R', '1'}

// ErrBadMagic is returned when a binary trace file has the wrong header.
var ErrBadMagic = errors.New("trace: not an ICGMM binary trace (bad magic)")

// WriteBinary writes the trace in the compact binary container:
// 8-byte magic, uint64 record count, then per record 1 byte op + uint64
// address + uint64 time, all little endian.
func WriteBinary(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t))); err != nil {
		return err
	}
	var rec [17]byte
	for _, r := range t {
		rec[0] = byte(r.Op)
		binary.LittleEndian.PutUint64(rec[1:9], r.Addr)
		binary.LittleEndian.PutUint64(rec[9:17], r.Time)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a trace written by WriteBinary.
func ReadBinary(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, ErrBadMagic
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxReasonable = 1 << 32
	if count > maxReasonable {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	out := make(Trace, 0, count)
	var rec [17]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		op := Op(rec[0])
		if op != Read && op != Write {
			return nil, fmt.Errorf("trace: record %d: invalid op %d", i, rec[0])
		}
		out = append(out, Record{
			Op:   op,
			Addr: binary.LittleEndian.Uint64(rec[1:9]),
			Time: binary.LittleEndian.Uint64(rec[9:17]),
		})
	}
	return out, nil
}

// WriteCSV writes the trace in the human-readable "op,addr,time" format with
// a header line, matching the open-source trace collector's output layout.
func WriteCSV(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("op,addr,time\n"); err != nil {
		return err
	}
	for _, r := range t {
		if _, err := fmt.Fprintf(bw, "%s,%d,%d\n", r.Op, r.Addr, r.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads a trace written by WriteCSV. A missing header is tolerated;
// blank lines are skipped.
func ReadCSV(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out Trace
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || (lineNo == 1 && strings.HasPrefix(line, "op,")) {
			continue
		}
		rec, err := parseCSVRecord(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseCSVRecord(line string) (Record, error) {
	parts := strings.Split(line, ",")
	if len(parts) != 3 {
		return Record{}, fmt.Errorf("want 3 fields, got %d", len(parts))
	}
	var op Op
	switch strings.TrimSpace(parts[0]) {
	case "R", "r", "0":
		op = Read
	case "W", "w", "1":
		op = Write
	default:
		return Record{}, fmt.Errorf("invalid op %q", parts[0])
	}
	addr, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("invalid addr: %w", err)
	}
	tm, err := strconv.ParseUint(strings.TrimSpace(parts[2]), 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("invalid time: %w", err)
	}
	return Record{Op: op, Addr: addr, Time: tm}, nil
}
