package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Streaming access to binary trace files. Traces from long-running
// collections reach billions of records; the streaming reader/writer pair
// processes them at constant memory, record at a time, where the slurping
// ReadBinary/WriteBinary would not fit.

// StreamWriter writes records incrementally in the binary container format.
// The record count is written on Close by rewriting the header, so the
// destination must support Seek; use CountlessWriter for pure pipes.
type StreamWriter struct {
	ws    io.WriteSeeker
	bw    *bufio.Writer
	count uint64
	done  bool
}

// NewStreamWriter starts a binary trace stream on ws.
func NewStreamWriter(ws io.WriteSeeker) (*StreamWriter, error) {
	w := &StreamWriter{ws: ws, bw: bufio.NewWriter(ws)}
	if _, err := w.bw.Write(binaryMagic[:]); err != nil {
		return nil, err
	}
	// Placeholder count, fixed up by Close.
	if err := binary.Write(w.bw, binary.LittleEndian, uint64(0)); err != nil {
		return nil, err
	}
	return w, nil
}

// Write appends one record.
func (w *StreamWriter) Write(r Record) error {
	if w.done {
		return errors.New("trace: write after Close")
	}
	var rec [17]byte
	rec[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(rec[1:9], r.Addr)
	binary.LittleEndian.PutUint64(rec[9:17], r.Time)
	if _, err := w.bw.Write(rec[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *StreamWriter) Count() uint64 { return w.count }

// Close flushes buffered records and patches the header's record count.
func (w *StreamWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if _, err := w.ws.Seek(int64(len(binaryMagic)), io.SeekStart); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], w.count)
	if _, err := w.ws.Write(cnt[:]); err != nil {
		return err
	}
	_, err := w.ws.Seek(0, io.SeekEnd)
	return err
}

// StreamReader iterates a binary trace file record at a time.
type StreamReader struct {
	br        *bufio.Reader
	remaining uint64
}

// NewStreamReader validates the header and prepares iteration.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, ErrBadMagic
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	return &StreamReader{br: br, remaining: count}, nil
}

// Remaining returns how many records have not been read yet.
func (r *StreamReader) Remaining() uint64 { return r.remaining }

// Next returns the next record, or io.EOF after the last one.
func (r *StreamReader) Next() (Record, error) {
	if r.remaining == 0 {
		return Record{}, io.EOF
	}
	var rec [17]byte
	if _, err := io.ReadFull(r.br, rec[:]); err != nil {
		return Record{}, fmt.Errorf("trace: reading record: %w", err)
	}
	op := Op(rec[0])
	if op != Read && op != Write {
		return Record{}, fmt.Errorf("trace: invalid op %d", rec[0])
	}
	r.remaining--
	return Record{
		Op:   op,
		Addr: binary.LittleEndian.Uint64(rec[1:9]),
		Time: binary.LittleEndian.Uint64(rec[9:17]),
	}, nil
}

// ForEach iterates the rest of the stream, stopping early if fn returns an
// error (which is returned verbatim).
func (r *StreamReader) ForEach(fn func(Record) error) error {
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Filter returns the records for which keep returns true, preserving order.
func Filter(t Trace, keep func(Record) bool) Trace {
	var out Trace
	for _, r := range t {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// Merge interleaves traces by their Time fields (stable for equal times,
// in argument order). Inputs must be individually time-sorted, which holds
// for anything produced by Stamp.
func Merge(traces ...Trace) Trace {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	out := make(Trace, 0, total)
	idx := make([]int, len(traces))
	for len(out) < total {
		best := -1
		var bestTime uint64
		for i, t := range traces {
			if idx[i] >= len(t) {
				continue
			}
			if best == -1 || t[idx[i]].Time < bestTime {
				best = i
				bestTime = t[idx[i]].Time
			}
		}
		out = append(out, traces[best][idx[best]])
		idx[best]++
	}
	return out
}

// SliceTime returns the sub-trace with Time in [from, to).
func SliceTime(t Trace, from, to uint64) Trace {
	var out Trace
	for _, r := range t {
		if r.Time >= from && r.Time < to {
			out = append(out, r)
		}
	}
	return out
}
