package trace

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseRecord fuzzes the CSV trace record parser: no input may panic,
// and every accepted line must round-trip exactly through the canonical
// "op,addr,time" rendering.
func FuzzParseRecord(f *testing.F) {
	f.Add("R,4096,17")
	f.Add("W,18446744073709551615,0")
	f.Add("r, 12 , 9")
	f.Add("0,1,2")
	f.Add("x,1,2")
	f.Add("R,,")
	f.Add("R,-1,2")
	f.Add("R,1,2,3")
	f.Add("R,0x10,2")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := parseCSVRecord(line)
		if err != nil {
			return
		}
		if rec.Op != Read && rec.Op != Write {
			t.Fatalf("accepted record with invalid op %d from %q", rec.Op, line)
		}
		canon := fmt.Sprintf("%s,%d,%d", rec.Op, rec.Addr, rec.Time)
		again, err := parseCSVRecord(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted line %q rejected: %v", canon, line, err)
		}
		if again != rec {
			t.Fatalf("round trip changed record: %+v -> %+v (via %q)", rec, again, canon)
		}
	})
}

// FuzzReadCSV drives the whole-file CSV reader: arbitrary bytes must never
// panic, and accepted traces must survive WriteCSV/ReadCSV unchanged.
func FuzzReadCSV(f *testing.F) {
	f.Add("op,addr,time\nR,4096,0\nW,8192,1\n")
	f.Add("R,1,1\n\n\nW,2,2")
	f.Add("op,\xff\xfe")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var out strings.Builder
		if err := WriteCSV(&out, tr); err != nil {
			t.Fatalf("writing accepted trace: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("re-reading written trace: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round trip changed length: %d -> %d", len(tr), len(back))
		}
		for i := range tr {
			if tr[i] != back[i] {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, tr[i], back[i])
			}
		}
	})
}
