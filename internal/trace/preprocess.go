package trace

import "fmt"

// Sample is one GMM training/inference input: the page index and the
// transformed timestamp produced by Algorithm 1. Both are carried as float64
// because the GMM operates in R^2.
type Sample struct {
	Page      float64
	Timestamp float64
}

// TransformConfig carries the Sec. 3.1 preprocessing parameters. The paper
// empirically selects LenWindow = 32 and LenAccessShot = 10000.
type TransformConfig struct {
	// LenWindow is the number of consecutive requests that share one
	// timestamp (the "time window" of Sec. 3.1).
	LenWindow int
	// LenAccessShot bounds the timestamp before it wraps to zero, i.e. the
	// number of time windows in one "access shot" (Algorithm 1 compares the
	// timestamp itself against this bound).
	LenAccessShot int
	// WarmupFrac is the fraction of the trace discarded from the front to
	// remove program warm-up bias (paper: 0.20).
	WarmupFrac float64
	// TailFrac is the fraction discarded from the end (paper: 0.10).
	TailFrac float64
}

// DefaultTransformConfig returns the configuration the paper evaluates with:
// len_window = 32, len_access_shot = 10000, drop first 20% and last 10%.
func DefaultTransformConfig() TransformConfig {
	return TransformConfig{
		LenWindow:     32,
		LenAccessShot: 10000,
		WarmupFrac:    0.20,
		TailFrac:      0.10,
	}
}

// Sanitized returns the config with invalid fields replaced by defaults, the
// exact normalization every transformer in this package applies internally.
// Exported so consumers that derive timestamps themselves (the serving
// subsystem's closed-form clock) see the same effective parameters as the
// streaming TimestampTransformer.
func (c TransformConfig) Sanitized() TransformConfig { return c.sanitized() }

// sanitized returns the config with invalid fields replaced by defaults so a
// zero value is still usable.
func (c TransformConfig) sanitized() TransformConfig {
	d := DefaultTransformConfig()
	if c.LenWindow <= 0 {
		c.LenWindow = d.LenWindow
	}
	if c.LenAccessShot <= 0 {
		c.LenAccessShot = d.LenAccessShot
	}
	if c.WarmupFrac < 0 || c.WarmupFrac >= 1 {
		c.WarmupFrac = 0
	}
	if c.TailFrac < 0 || c.TailFrac >= 1 {
		c.TailFrac = 0
	}
	if c.WarmupFrac+c.TailFrac >= 1 {
		c.WarmupFrac, c.TailFrac = 0, 0
	}
	return c
}

// Trim drops the warm-up prefix and cool-down suffix of the trace per
// Sec. 3.1 (first 20%, last 10% with the default config) and returns the
// retained middle slice (aliasing the input's backing array).
func Trim(t Trace, cfg TransformConfig) Trace {
	cfg = cfg.sanitized()
	n := len(t)
	lo := int(float64(n) * cfg.WarmupFrac)
	hi := n - int(float64(n)*cfg.TailFrac)
	if lo >= hi {
		return Trace{}
	}
	return t[lo:hi]
}

// TimestampTransformer implements Algorithm 1 of the paper as a streaming
// transformer: every LenWindow requests the timestamp increments, and when it
// reaches LenAccessShot it wraps to zero, restarting the access shot.
type TimestampTransformer struct {
	cfg       TransformConfig
	timestamp int
	index     int
}

// NewTimestampTransformer creates a transformer with the given config.
func NewTimestampTransformer(cfg TransformConfig) *TimestampTransformer {
	return &TimestampTransformer{cfg: cfg.sanitized()}
}

// Next consumes one request arrival and returns the transformed timestamp to
// assign to it. The sequencing follows Algorithm 1 line by line: the window
// rollover check precedes the shot wrap check, and the index increments after
// the timestamp is read.
func (tt *TimestampTransformer) Next() int {
	if tt.index >= tt.cfg.LenWindow {
		tt.timestamp++
		tt.index = 0
	}
	if tt.timestamp >= tt.cfg.LenAccessShot {
		tt.timestamp = 0
	}
	tt.index++
	return tt.timestamp
}

// Reset returns the transformer to its initial state.
func (tt *TimestampTransformer) Reset() {
	tt.timestamp = 0
	tt.index = 0
}

// State exports the Algorithm 1 cursor: the current timestamp and the index
// within the current window. Together with the config these fully determine
// every future output, which is what lets a checkpointed consumer resume its
// clock bit-identically.
func (tt *TimestampTransformer) State() (timestamp, index int) {
	return tt.timestamp, tt.index
}

// RestoreState rewinds the cursor to an exported state. The receiver must
// have been built with the same config as the exporter.
func (tt *TimestampTransformer) RestoreState(timestamp, index int) error {
	if timestamp < 0 || timestamp >= tt.cfg.LenAccessShot {
		return fmt.Errorf("trace: timestamp %d outside access shot [0, %d)", timestamp, tt.cfg.LenAccessShot)
	}
	if index < 0 || index > tt.cfg.LenWindow {
		return fmt.Errorf("trace: window index %d outside [0, %d]", index, tt.cfg.LenWindow)
	}
	tt.timestamp = timestamp
	tt.index = index
	return nil
}

// MaxTimestamp returns the largest timestamp the transformer can emit.
func (tt *TimestampTransformer) MaxTimestamp() int { return tt.cfg.LenAccessShot - 1 }

// Preprocess runs the full Sec. 3.1 pipeline on a raw trace: trim warm-up and
// tail, derive page indices, and apply the Algorithm 1 timestamp transform.
// The returned samples are the GMM inputs; their order matches the retained
// trace order.
func Preprocess(t Trace, cfg TransformConfig) []Sample {
	cfg = cfg.sanitized()
	kept := Trim(t, cfg)
	tt := NewTimestampTransformer(cfg)
	out := make([]Sample, len(kept))
	for i, r := range kept {
		out[i] = Sample{
			Page:      float64(r.Page()),
			Timestamp: float64(tt.Next()),
		}
	}
	return out
}

// Normalizer maps samples into a numerically friendly range for EM. Raw page
// indices can span 2^40 while timestamps span 10^4; without rescaling the
// covariance matrices are catastrophically ill-conditioned. The hardware
// design bakes the same affine map into the trace decoder.
type Normalizer struct {
	PageOffset, PageScale float64
	TimeOffset, TimeScale float64
}

// FitNormalizer computes an affine map that sends the observed page-index
// and timestamp ranges each onto [0, 1]. Degenerate (constant) dimensions
// map to 0 with unit scale.
func FitNormalizer(samples []Sample) Normalizer {
	n := Normalizer{PageScale: 1, TimeScale: 1}
	if len(samples) == 0 {
		return n
	}
	minP, maxP := samples[0].Page, samples[0].Page
	minT, maxT := samples[0].Timestamp, samples[0].Timestamp
	for _, s := range samples[1:] {
		if s.Page < minP {
			minP = s.Page
		}
		if s.Page > maxP {
			maxP = s.Page
		}
		if s.Timestamp < minT {
			minT = s.Timestamp
		}
		if s.Timestamp > maxT {
			maxT = s.Timestamp
		}
	}
	n.PageOffset = minP
	if maxP > minP {
		n.PageScale = 1 / (maxP - minP)
	}
	n.TimeOffset = minT
	if maxT > minT {
		n.TimeScale = 1 / (maxT - minT)
	}
	return n
}

// Apply maps one sample through the normalizer.
func (n Normalizer) Apply(s Sample) Sample {
	return Sample{
		Page:      (s.Page - n.PageOffset) * n.PageScale,
		Timestamp: (s.Timestamp - n.TimeOffset) * n.TimeScale,
	}
}

// ApplyAll maps a slice of samples, returning a new slice.
func (n Normalizer) ApplyAll(samples []Sample) []Sample {
	out := make([]Sample, len(samples))
	for i, s := range samples {
		out[i] = n.Apply(s)
	}
	return out
}

// ApplyPageTime maps a raw (page, transformed timestamp) pair, the form used
// on the inference path where no Sample has been materialized.
func (n Normalizer) ApplyPageTime(page uint64, timestamp int) (float64, float64) {
	return (float64(page) - n.PageOffset) * n.PageScale,
		(float64(timestamp) - n.TimeOffset) * n.TimeScale
}
