package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestStreamWriterReaderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	want := randomTrace(5000, 9)
	for _, r := range want {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5000 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Streamed file must be readable by the slurping reader too.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	slurped, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(slurped) != len(want) {
		t.Fatalf("slurped %d records, want %d", len(slurped), len(want))
	}

	// And by the streaming reader.
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	sr, err := NewStreamReader(rf)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Remaining() != 5000 {
		t.Errorf("Remaining = %d", sr.Remaining())
	}
	for i := range want {
		got, err := sr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got, want[i])
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Errorf("after last record err = %v, want EOF", err)
	}
}

func TestStreamWriterDoubleCloseAndWriteAfterClose(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "t.trace"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close errored: %v", err)
	}
	if err := w.Write(Record{}); err == nil {
		t.Error("write after Close accepted")
	}
}

func TestStreamReaderForEach(t *testing.T) {
	var buf bytes.Buffer
	tr := randomTrace(100, 3)
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := sr.ForEach(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("visited %d records", n)
	}

	// Early stop propagates the error.
	var buf2 bytes.Buffer
	if err := WriteBinary(&buf2, tr); err != nil {
		t.Fatal(err)
	}
	sr2, _ := NewStreamReader(&buf2)
	sentinel := errors.New("stop")
	count := 0
	err = sr2.ForEach(func(Record) error {
		count++
		if count == 10 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || count != 10 {
		t.Errorf("early stop failed: err=%v count=%d", err, count)
	}
}

func TestStreamReaderBadInput(t *testing.T) {
	if _, err := NewStreamReader(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := NewStreamReader(bytes.NewReader(append([]byte("XXXXXXXX"), make([]byte, 8)...))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic gave %v", err)
	}
}

func TestFilter(t *testing.T) {
	tr := Trace{
		{Op: Read, Addr: 0}, {Op: Write, Addr: PageSize}, {Op: Read, Addr: 2 * PageSize},
	}
	reads := Filter(tr, func(r Record) bool { return r.Op == Read })
	if len(reads) != 2 {
		t.Errorf("filtered %d records, want 2", len(reads))
	}
	if got := Filter(tr, func(Record) bool { return false }); len(got) != 0 {
		t.Error("reject-all filter returned records")
	}
}

func TestMerge(t *testing.T) {
	a := Trace{{Addr: 1, Time: 0}, {Addr: 2, Time: 4}, {Addr: 3, Time: 8}}
	b := Trace{{Addr: 10, Time: 1}, {Addr: 11, Time: 5}}
	m := Merge(a, b)
	if len(m) != 5 {
		t.Fatalf("merged %d records", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].Time < m[i-1].Time {
			t.Fatalf("merge not time-ordered: %+v", m)
		}
	}
	if m[0].Addr != 1 || m[1].Addr != 10 {
		t.Errorf("interleave order wrong: %+v", m)
	}
	if got := Merge(); len(got) != 0 {
		t.Error("empty merge should be empty")
	}
	if got := Merge(a); len(got) != 3 {
		t.Error("single-input merge wrong")
	}
}

func TestMergeStableOnEqualTimes(t *testing.T) {
	a := Trace{{Addr: 1, Time: 5}}
	b := Trace{{Addr: 2, Time: 5}}
	m := Merge(a, b)
	if m[0].Addr != 1 || m[1].Addr != 2 {
		t.Errorf("equal-time merge not stable: %+v", m)
	}
}

func TestSliceTime(t *testing.T) {
	tr := make(Trace, 10)
	tr.Stamp()
	s := SliceTime(tr, 3, 7)
	if len(s) != 4 {
		t.Fatalf("slice has %d records, want 4", len(s))
	}
	if s[0].Time != 3 || s[3].Time != 6 {
		t.Errorf("slice bounds wrong: %+v", s)
	}
	if got := SliceTime(tr, 100, 200); len(got) != 0 {
		t.Error("out-of-range slice should be empty")
	}
}
