// Package trace defines the memory-access trace format shared by every part
// of the ICGMM reproduction and implements the paper's trace-processing
// pipeline (Sec. 3.1): warm-up trimming, page-index derivation from physical
// addresses, and the Algorithm 1 timestamp transformation that converts raw
// arrival order into access-shot/time-window coordinates for the GMM.
package trace

import "fmt"

// Op is the kind of a memory request.
type Op uint8

const (
	// Read is a host load served from cache or SSD.
	Read Op = iota
	// Write is a host store; on a miss with a dirty victim it incurs the
	// SSD write-back penalty.
	Write
)

// String renders the op as "R" or "W", the format used in trace files.
func (o Op) String() string {
	if o == Write {
		return "W"
	}
	return "R"
}

// PageShift is the log2 of the SSD access granularity (4 KiB pages). The
// paper's Sec. 3.1 derives the page index from the physical address at this
// granularity. (The paper's text types the derivation as PA << 12; shifting
// left would multiply the address, so as in every page-table design the
// intended operation is PA >> 12, which we implement.)
const PageShift = 12

// PageSize is the SSD access granularity in bytes.
const PageSize = 1 << PageShift

// Record is one raw trace entry as produced by trace collection: the
// request kind, the physical byte address, and the collection time expressed
// as a monotonically increasing request counter.
type Record struct {
	Op   Op
	Addr uint64 // physical byte address
	Time uint64 // arrival index assigned at collection
}

// Page returns the 4 KiB page index of the record's address.
func (r Record) Page() uint64 { return r.Addr >> PageShift }

// String renders the record in the CSV trace format.
func (r Record) String() string {
	return fmt.Sprintf("%s,%d,%d", r.Op, r.Addr, r.Time)
}

// Trace is an in-memory sequence of records.
type Trace []Record

// Stamp assigns each record's Time field its index, the convention used by
// the trace collector (arrival order is the clock).
func (t Trace) Stamp() {
	for i := range t {
		t[i].Time = uint64(i)
	}
}

// Pages returns the set of distinct pages touched by the trace.
func (t Trace) Pages() map[uint64]struct{} {
	set := make(map[uint64]struct{})
	for _, r := range t {
		set[r.Page()] = struct{}{}
	}
	return set
}

// Clone returns a deep copy of the trace.
func (t Trace) Clone() Trace {
	out := make(Trace, len(t))
	copy(out, t)
	return out
}
