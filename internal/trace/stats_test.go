package trace

import "testing"

func TestSummarize(t *testing.T) {
	tr := Trace{
		{Op: Read, Addr: 0},
		{Op: Write, Addr: 100},         // same page 0
		{Op: Read, Addr: PageSize},     // page 1
		{Op: Read, Addr: 5 * PageSize}, // page 5
	}
	s := Summarize(tr)
	if s.Records != 4 || s.Reads != 3 || s.Writes != 1 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.UniquePages != 3 {
		t.Errorf("UniquePages = %d, want 3", s.UniquePages)
	}
	if s.FootprintBytes != 3*PageSize {
		t.Errorf("FootprintBytes = %d", s.FootprintBytes)
	}
	if s.MinPage != 0 || s.MaxPage != 5 {
		t.Errorf("page range [%d, %d], want [0, 5]", s.MinPage, s.MaxPage)
	}
	if s.ReusedPages != 1 {
		t.Errorf("ReusedPages = %d, want 1", s.ReusedPages)
	}
	if got := s.ReadFraction(); got != 0.75 {
		t.Errorf("ReadFraction = %v, want 0.75", got)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(Trace{})
	if s.Records != 0 || s.UniquePages != 0 || s.ReadFraction() != 0 {
		t.Errorf("empty summary wrong: %+v", s)
	}
}

func TestSpatialHistogram(t *testing.T) {
	// 100 accesses on page 0, 50 on page 9.
	var tr Trace
	for i := 0; i < 100; i++ {
		tr = append(tr, Record{Addr: 0})
	}
	for i := 0; i < 50; i++ {
		tr = append(tr, Record{Addr: 9 * PageSize})
	}
	centers, counts := SpatialHistogram(tr, 10)
	if len(centers) != 10 || len(counts) != 10 {
		t.Fatalf("got %d bins", len(centers))
	}
	if counts[0] != 100 {
		t.Errorf("bin 0 = %d, want 100", counts[0])
	}
	if counts[9] != 50 {
		t.Errorf("bin 9 = %d, want 50", counts[9])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(tr) {
		t.Errorf("histogram total %d != trace size %d", total, len(tr))
	}
}

func TestSpatialHistogramDegenerate(t *testing.T) {
	c, n := SpatialHistogram(Trace{}, 10)
	if c != nil || n != nil {
		t.Error("empty trace should yield nil histogram")
	}
	c, n = SpatialHistogram(Trace{{Addr: 0}}, 0)
	if c != nil || n != nil {
		t.Error("zero bins should yield nil histogram")
	}
	// Single page trace: everything in one bin.
	tr := Trace{{Addr: 0}, {Addr: 1}, {Addr: 2}}
	_, counts := SpatialHistogram(tr, 4)
	if counts[0] != 3 {
		t.Errorf("single-page histogram = %v", counts)
	}
}

func TestTemporalScatter(t *testing.T) {
	tr := make(Trace, 1000)
	for i := range tr {
		tr[i] = Record{Addr: uint64(i) * PageSize, Time: uint64(i)}
	}
	times, pages := TemporalScatter(tr, 100)
	if len(times) == 0 || len(times) != len(pages) {
		t.Fatalf("scatter sizes %d/%d", len(times), len(pages))
	}
	if len(times) > 110 {
		t.Errorf("scatter has %d points, want <= ~100", len(times))
	}
	if times[0] != 0 || pages[0] != 0 {
		t.Errorf("first point (%v, %v)", times[0], pages[0])
	}
}

func TestTemporalScatterDegenerate(t *testing.T) {
	if ts, _ := TemporalScatter(Trace{}, 10); ts != nil {
		t.Error("empty trace should yield nil scatter")
	}
	ts, ps := TemporalScatter(Trace{{Addr: 0, Time: 5}}, 10)
	if len(ts) != 1 || ps[0] != 0 {
		t.Error("single record scatter wrong")
	}
}

func TestHotPages(t *testing.T) {
	var tr Trace
	add := func(page uint64, n int) {
		for i := 0; i < n; i++ {
			tr = append(tr, Record{Addr: page * PageSize})
		}
	}
	add(3, 10)
	add(7, 20)
	add(1, 5)
	hot := HotPages(tr, 2)
	if len(hot) != 2 || hot[0] != 7 || hot[1] != 3 {
		t.Errorf("HotPages = %v, want [7 3]", hot)
	}
	all := HotPages(tr, 100)
	if len(all) != 3 {
		t.Errorf("HotPages clamp failed: %v", all)
	}
}

func TestHotPagesDeterministicTieBreak(t *testing.T) {
	tr := Trace{
		{Addr: 5 * PageSize}, {Addr: 2 * PageSize}, {Addr: 9 * PageSize},
	}
	hot := HotPages(tr, 3)
	want := []uint64{2, 5, 9}
	for i := range want {
		if hot[i] != want[i] {
			t.Fatalf("HotPages = %v, want %v", hot, want)
		}
	}
}
