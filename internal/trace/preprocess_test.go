package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPageIndex(t *testing.T) {
	cases := []struct {
		addr uint64
		page uint64
	}{
		{0, 0},
		{4095, 0},
		{4096, 1},
		{8191, 1},
		{1 << 30, 1 << 18},
	}
	for _, c := range cases {
		r := Record{Addr: c.addr}
		if got := r.Page(); got != c.page {
			t.Errorf("Page(%d) = %d, want %d", c.addr, got, c.page)
		}
	}
}

func TestTrim(t *testing.T) {
	tr := make(Trace, 100)
	tr.Stamp()
	kept := Trim(tr, DefaultTransformConfig())
	if len(kept) != 70 {
		t.Fatalf("Trim kept %d records, want 70", len(kept))
	}
	// First kept record should be original index 20 (first 20% dropped).
	if kept[0].Time != 20 {
		t.Errorf("first kept Time = %d, want 20", kept[0].Time)
	}
	if kept[len(kept)-1].Time != 89 {
		t.Errorf("last kept Time = %d, want 89", kept[len(kept)-1].Time)
	}
}

func TestTrimEdgeCases(t *testing.T) {
	if got := Trim(Trace{}, DefaultTransformConfig()); len(got) != 0 {
		t.Error("trimming empty trace should be empty")
	}
	// Fractions summing >= 1 are ignored rather than producing nothing.
	cfg := TransformConfig{WarmupFrac: 0.6, TailFrac: 0.6}
	tr := make(Trace, 10)
	if got := Trim(tr, cfg); len(got) != 10 {
		t.Errorf("invalid fractions should disable trimming, kept %d", len(got))
	}
	// Zero-value config uses defaults for window params but keeps 0 trims.
	cfg2 := TransformConfig{}
	if got := Trim(tr, cfg2); len(got) != 10 {
		t.Errorf("zero config should keep everything, kept %d", len(got))
	}
}

// TestAlgorithm1Verbatim checks the transformer against a direct transliteration
// of the paper's Algorithm 1 pseudocode.
func TestAlgorithm1Verbatim(t *testing.T) {
	cfg := TransformConfig{LenWindow: 4, LenAccessShot: 3}
	tt := NewTimestampTransformer(cfg)

	// Reference implementation, literally Algorithm 1.
	timestamp, index := 0, 0
	ref := func() int {
		if index >= cfg.LenWindow {
			timestamp++
			index = 0
		}
		if timestamp >= cfg.LenAccessShot {
			timestamp = 0
		}
		index++
		return timestamp
	}

	for i := 0; i < 200; i++ {
		want := ref()
		if got := tt.Next(); got != want {
			t.Fatalf("request %d: Next() = %d, want %d", i, got, want)
		}
	}
}

func TestTimestampTransformerWindowing(t *testing.T) {
	cfg := TransformConfig{LenWindow: 32, LenAccessShot: 10000}
	tt := NewTimestampTransformer(cfg)
	// First 32 requests share timestamp 0.
	for i := 0; i < 32; i++ {
		if got := tt.Next(); got != 0 {
			t.Fatalf("request %d: timestamp = %d, want 0", i, got)
		}
	}
	// Next 32 share timestamp 1.
	for i := 0; i < 32; i++ {
		if got := tt.Next(); got != 1 {
			t.Fatalf("request %d: timestamp = %d, want 1", 32+i, got)
		}
	}
}

func TestTimestampTransformerShotWrap(t *testing.T) {
	cfg := TransformConfig{LenWindow: 2, LenAccessShot: 3}
	tt := NewTimestampTransformer(cfg)
	var got []int
	for i := 0; i < 14; i++ {
		got = append(got, tt.Next())
	}
	// windows of 2: ts 0,0 1,1 2,2 then wrap to 0,0 1,1 2,2 0,0
	want := []int{0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestTimestampTransformerReset(t *testing.T) {
	tt := NewTimestampTransformer(TransformConfig{LenWindow: 1, LenAccessShot: 100})
	for i := 0; i < 10; i++ {
		tt.Next()
	}
	tt.Reset()
	if got := tt.Next(); got != 0 {
		t.Errorf("after Reset, Next() = %d, want 0", got)
	}
}

func TestTimestampTransformerMaxTimestamp(t *testing.T) {
	tt := NewTimestampTransformer(TransformConfig{LenWindow: 1, LenAccessShot: 5})
	maxSeen := 0
	for i := 0; i < 1000; i++ {
		if v := tt.Next(); v > maxSeen {
			maxSeen = v
		}
	}
	if maxSeen != tt.MaxTimestamp() || maxSeen != 4 {
		t.Errorf("max emitted = %d, MaxTimestamp = %d, want 4", maxSeen, tt.MaxTimestamp())
	}
}

// Property: the timestamp emitted is always within [0, LenAccessShot).
func TestTimestampBoundsProperty(t *testing.T) {
	f := func(w, s uint8, n uint16) bool {
		cfg := TransformConfig{LenWindow: int(w%60) + 1, LenAccessShot: int(s%50) + 1}
		tt := NewTimestampTransformer(cfg)
		for i := 0; i < int(n); i++ {
			v := tt.Next()
			if v < 0 || v >= cfg.LenAccessShot {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPreprocessPipeline(t *testing.T) {
	// 1000 records over pages 0..9.
	tr := make(Trace, 1000)
	for i := range tr {
		tr[i] = Record{Op: Read, Addr: uint64(i%10) * PageSize}
	}
	tr.Stamp()
	samples := Preprocess(tr, DefaultTransformConfig())
	if len(samples) != 700 {
		t.Fatalf("Preprocess kept %d samples, want 700", len(samples))
	}
	// First sample corresponds to original record 200 → page 0.
	if samples[0].Page != 0 {
		t.Errorf("first sample page = %v, want 0", samples[0].Page)
	}
	// Timestamps restart at 0 for the retained window.
	if samples[0].Timestamp != 0 {
		t.Errorf("first sample timestamp = %v, want 0", samples[0].Timestamp)
	}
	// With LenWindow=32, sample 32 is in window 1.
	if samples[32].Timestamp != 1 {
		t.Errorf("sample 32 timestamp = %v, want 1", samples[32].Timestamp)
	}
}

func TestFitNormalizer(t *testing.T) {
	samples := []Sample{
		{Page: 100, Timestamp: 0},
		{Page: 300, Timestamp: 50},
		{Page: 200, Timestamp: 100},
	}
	n := FitNormalizer(samples)
	out := n.ApplyAll(samples)
	if out[0].Page != 0 || out[1].Page != 1 {
		t.Errorf("page normalization wrong: %+v", out)
	}
	if out[0].Timestamp != 0 || out[2].Timestamp != 1 {
		t.Errorf("time normalization wrong: %+v", out)
	}
	if out[2].Page != 0.5 {
		t.Errorf("midpoint page = %v, want 0.5", out[2].Page)
	}
	p, tm := n.ApplyPageTime(200, 50)
	if p != 0.5 || tm != 0.5 {
		t.Errorf("ApplyPageTime = %v, %v, want 0.5, 0.5", p, tm)
	}
}

func TestFitNormalizerDegenerate(t *testing.T) {
	// All samples identical: scales stay 1, offsets map to 0.
	samples := []Sample{{Page: 7, Timestamp: 3}, {Page: 7, Timestamp: 3}}
	n := FitNormalizer(samples)
	out := n.Apply(samples[0])
	if out.Page != 0 || out.Timestamp != 0 {
		t.Errorf("degenerate normalization = %+v, want zeros", out)
	}
	if FitNormalizer(nil).PageScale != 1 {
		t.Error("empty normalizer should have unit scale")
	}
}

// Property: normalized samples always land in [0,1] for the fitted range.
func TestNormalizerRangeProperty(t *testing.T) {
	f := func(pages []uint32, times []uint16) bool {
		if len(pages) == 0 {
			return true
		}
		n := len(pages)
		if len(times) < n {
			n = len(times)
		}
		if n == 0 {
			return true
		}
		samples := make([]Sample, n)
		for i := 0; i < n; i++ {
			samples[i] = Sample{Page: float64(pages[i]), Timestamp: float64(times[i])}
		}
		norm := FitNormalizer(samples)
		for _, s := range norm.ApplyAll(samples) {
			if s.Page < -1e-12 || s.Page > 1+1e-12 || math.IsNaN(s.Page) {
				return false
			}
			if s.Timestamp < -1e-12 || s.Timestamp > 1+1e-12 || math.IsNaN(s.Timestamp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
