package trace

import "sort"

// Stats summarizes a trace: volume, read/write mix, footprint, and reuse.
type Stats struct {
	Records     int
	Reads       int
	Writes      int
	UniquePages int
	// FootprintBytes is UniquePages * PageSize.
	FootprintBytes uint64
	// MaxPage and MinPage bound the touched page-index range.
	MinPage, MaxPage uint64
	// ReusedPages counts pages touched more than once.
	ReusedPages int
}

// ReadFraction returns reads / records, or 0 for an empty trace.
func (s Stats) ReadFraction() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Records)
}

// Summarize computes Stats over the trace.
func Summarize(t Trace) Stats {
	var s Stats
	s.Records = len(t)
	counts := make(map[uint64]int)
	for i, r := range t {
		if r.Op == Read {
			s.Reads++
		} else {
			s.Writes++
		}
		p := r.Page()
		counts[p]++
		if i == 0 {
			s.MinPage, s.MaxPage = p, p
		} else {
			if p < s.MinPage {
				s.MinPage = p
			}
			if p > s.MaxPage {
				s.MaxPage = p
			}
		}
	}
	s.UniquePages = len(counts)
	s.FootprintBytes = uint64(s.UniquePages) * PageSize
	for _, c := range counts {
		if c > 1 {
			s.ReusedPages++
		}
	}
	return s
}

// SpatialHistogram bins page accesses into nbins equal-width page-index bins
// across the touched range and returns (bin center page, count) pairs. It is
// the data behind the paper's Fig. 2 left-hand plots.
func SpatialHistogram(t Trace, nbins int) (centers []float64, counts []int) {
	if len(t) == 0 || nbins <= 0 {
		return nil, nil
	}
	s := Summarize(t)
	span := s.MaxPage - s.MinPage + 1
	counts = make([]int, nbins)
	centers = make([]float64, nbins)
	width := float64(span) / float64(nbins)
	for i := range centers {
		centers[i] = float64(s.MinPage) + (float64(i)+0.5)*width
	}
	for _, r := range t {
		idx := int(float64(r.Page()-s.MinPage) / width)
		if idx >= nbins {
			idx = nbins - 1
		}
		counts[idx]++
	}
	return centers, counts
}

// TemporalScatter subsamples up to maxPoints (time, page) points from the
// trace, the data behind the paper's Fig. 2 right-hand plots.
func TemporalScatter(t Trace, maxPoints int) (times []float64, pages []float64) {
	if len(t) == 0 || maxPoints <= 0 {
		return nil, nil
	}
	stride := len(t) / maxPoints
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(t); i += stride {
		times = append(times, float64(t[i].Time))
		pages = append(pages, float64(t[i].Page()))
	}
	return times, pages
}

// HotPages returns the n most frequently accessed pages in descending
// frequency order, breaking ties by page index for determinism.
func HotPages(t Trace, n int) []uint64 {
	counts := make(map[uint64]int)
	for _, r := range t {
		counts[r.Page()]++
	}
	pages := make([]uint64, 0, len(counts))
	for p := range counts {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool {
		ci, cj := counts[pages[i]], counts[pages[j]]
		if ci != cj {
			return ci > cj
		}
		return pages[i] < pages[j]
	})
	if n < len(pages) {
		pages = pages[:n]
	}
	return pages
}
